/**
 * @file
 * Ablations of the DSA design knobs DESIGN.md calls out — the
 * configurable resources §3.4 and the guidelines are built on:
 *
 *  A1. Read buffers per group (QoS): fewer buffers cannot cover the
 *      bandwidth-delay product, so achievable read bandwidth drops,
 *      and the effect grows with memory latency (CXL > local DRAM).
 *  A2. WQ priority (F3): with two WQs saturating one group, the
 *      arbiter's priority setting shifts throughput between them.
 *  A3. Cache-control hint (G3): a consumer core reading DSA-written
 *      data sees LLC-latency with the hint on, memory latency off.
 *  A4. Block-on-fault PE stalls (G5): a faulting stream stalls its
 *      PE; adding a second PE isolates a co-running clean stream.
 */

#include "bench/common.hh"
#include "driver/pcm.hh"

namespace dsasim::bench
{
namespace
{

// ---- A1: read buffers -------------------------------------------

double
readBufferRun(unsigned buffers, MemKind src_kind)
{
    Simulation sim;
    Platform plat(sim, PlatformConfig::spr());
    DsaDevice &dev = plat.dsa(0);
    Group &g = dev.addGroup();
    dev.addWorkQueue(g, WorkQueue::Mode::Dedicated, 32);
    dev.addEngine(g);
    dev.setGroupReadBuffers(g, buffers);
    dev.enable();
    AddressSpace &as = plat.mem().createSpace();
    dml::ExecutorConfig ec;
    ec.path = dml::Path::Hardware;
    dml::Executor exec(sim, plat.mem(), plat.kernels(), {&dev}, ec);

    const std::uint64_t n = 256 << 10;
    const int jobs = 24;
    Addr src = as.alloc(n * jobs, src_kind);
    Addr dst = as.alloc(n * jobs, MemKind::DramLocal);
    Tick elapsed = 0;

    struct Drv
    {
        static SimTask
        go(Simulation &s, Platform &p, dml::Executor &ex,
           AddressSpace &sp, Addr so, Addr dk, std::uint64_t len,
           int count, Tick &el)
        {
            Tick t0 = s.now();
            std::vector<std::unique_ptr<dml::Job>> inflight;
            for (int i = 0; i < count; ++i) {
                auto job = ex.prepare(dml::Executor::memMove(
                    sp, dk + static_cast<Addr>(i) * len,
                    so + static_cast<Addr>(i) * len, len));
                co_await ex.submit(p.core(0), *job);
                inflight.push_back(std::move(job));
            }
            dml::OpResult r;
            for (auto &j : inflight)
                co_await ex.wait(p.core(0), *j, r);
            el = s.now() - t0;
        }
    };
    Drv::go(sim, plat, exec, as, src, dst, n, jobs, elapsed);
    sim.run();
    return achievedGBps(static_cast<std::uint64_t>(jobs) * n,
                        elapsed);
}

// ---- A2: WQ priority --------------------------------------------

void
priorityRun(unsigned prio_a, unsigned prio_b, double &gbps_a,
            double &gbps_b)
{
    Simulation sim;
    Platform plat(sim, PlatformConfig::spr());
    DsaDevice &dev = plat.dsa(0);
    Group &g = dev.addGroup();
    WorkQueue &wqa =
        dev.addWorkQueue(g, WorkQueue::Mode::Dedicated, 16, prio_a);
    WorkQueue &wqb =
        dev.addWorkQueue(g, WorkQueue::Mode::Dedicated, 16, prio_b);
    dev.addEngine(g);
    dev.enable();
    AddressSpace &as = plat.mem().createSpace();

    const std::uint64_t n = 16 << 10;
    const Tick horizon = fromUs(400);
    std::uint64_t done_a = 0, done_b = 0;

    struct Pump
    {
        static SimTask
        go(Simulation &s, Platform &p, AddressSpace &sp,
           DsaDevice &d, WorkQueue &wq, int core_id,
           std::uint64_t len, Tick until, std::uint64_t &done)
        {
            Core &core = p.core(static_cast<std::size_t>(core_id));
            Submitter sub(core, d.params());
            Addr src = sp.alloc(len * 8);
            Addr dst = sp.alloc(len * 8);
            Semaphore window(s, 8);
            std::vector<std::unique_ptr<CompletionRecord>> crs;
            struct W
            {
                static SimTask
                drain(CompletionRecord &cr, Semaphore &win,
                      std::uint64_t &n_done)
                {
                    if (!cr.isDone())
                        co_await cr.done.wait();
                    win.release();
                    ++n_done;
                }
            };
            for (int i = 0; s.now() < until; ++i) {
                co_await window.acquire();
                crs.push_back(
                    std::make_unique<CompletionRecord>(s));
                WorkDescriptor wd = dml::Executor::memMove(
                    sp, dst + static_cast<Addr>(i % 8) * len,
                    src + static_cast<Addr>(i % 8) * len, len);
                wd.completion = crs.back().get();
                co_await sub.movdir64b(d, wq, wd);
                W::drain(*crs.back(), window, done);
            }
            // Keep this frame (and the completion records it owns)
            // alive until every drain task has finished.
            for (int k = 0; k < 8; ++k)
                co_await window.acquire();
        }
    };
    Pump::go(sim, plat, as, dev, wqa, 0, n, horizon, done_a);
    Pump::go(sim, plat, as, dev, wqb, 1, n, horizon, done_b);
    sim.runUntil(horizon);
    sim.run(); // drain
    gbps_a = static_cast<double>(done_a) * n / toNs(horizon);
    gbps_b = static_cast<double>(done_b) * n / toNs(horizon);
}

// ---- A3: cache hint ---------------------------------------------

void
cacheHintRun(bool hint, double &consumer_ns, double &llc_hit_rate)
{
    Rig::Options o;
    Rig rig(o);
    Core &producer = rig.plat.core(0);
    Core &consumer = rig.plat.core(1);
    const std::uint64_t n = 64 << 10;
    Addr src = rig.as->alloc(n);
    Addr dst = rig.as->alloc(n);
    Histogram lat;
    std::uint64_t hits = 0, total = 0;

    struct Drv
    {
        static SimTask
        go(Rig &r, Core &prod, Core &cons, Addr s, Addr d,
           std::uint64_t len, bool use_hint, Histogram &h,
           std::uint64_t &hit_n, std::uint64_t &tot_n)
        {
            for (int i = 0; i < 30; ++i) {
                r.plat.mem().cache().invalidateAll();
                WorkDescriptor wd =
                    dml::Executor::memMove(*r.as, d, s, len);
                if (use_hint)
                    wd.flags |= descflags::cacheControl;
                dml::OpResult res;
                co_await r.exec->executeHardware(prod, wd, res);
                // Where did the data land? (non-mutating probe)
                for (Addr a = d; a < d + len; a += cacheLineSize) {
                    Addr pa = r.as->translate(a);
                    ++tot_n;
                    hit_n += r.plat.mem().cache().probe(pa) ? 1 : 0;
                }
                // Consumer reads the freshly written data.
                auto k = r.plat.kernels().comparePatternOp(
                    cons, *r.as, d, 0, len);
                h.add(toNs(k.duration));
                co_await cons.busyFor(k.duration, "consume");
            }
        }
    };
    Drv::go(rig, producer, consumer, src, dst, n, hint, lat, hits,
            total);
    rig.sim.run();
    consumer_ns = lat.mean();
    llc_hit_rate =
        total ? 100.0 * static_cast<double>(hits) /
                    static_cast<double>(total)
              : 0.0;
}

// ---- A4: block-on-fault stalls ----------------------------------

double
faultStallRun(unsigned engines, bool inject_faults)
{
    Rig::Options o;
    o.engines = engines;
    Rig rig(o);
    const std::uint64_t n = 32 << 10;
    const Tick horizon = fromUs(600);

    // Clean stream on core 0, measured.
    std::uint64_t clean_done = 0;
    struct Clean
    {
        static SimTask
        go(Rig &r, std::uint64_t len, Tick until, std::uint64_t &done)
        {
            Core &core = r.plat.core(0);
            Addr src = r.as->alloc(len * 8);
            Addr dst = r.as->alloc(len * 8);
            int i = 0;
            while (r.sim.now() < until) {
                dml::OpResult res;
                co_await r.exec->executeHardware(
                    core,
                    dml::Executor::memMove(
                        *r.as, dst + static_cast<Addr>(i % 8) * len,
                        src + static_cast<Addr>(i % 8) * len, len),
                    res);
                ++done;
                ++i;
            }
        }
    };

    // Faulting stream on core 1: every source page is evicted first,
    // so every descriptor takes the block-on-fault path.
    struct Faulty
    {
        static SimTask
        go(Rig &r, std::uint64_t len, Tick until)
        {
            Core &core = r.plat.core(1);
            Addr src = r.as->alloc(len);
            Addr dst = r.as->alloc(len);
            while (r.sim.now() < until) {
                for (Addr a = src; a < src + len; a += 4096)
                    r.as->evictPage(a);
                dml::OpResult res;
                co_await r.exec->executeHardware(
                    core,
                    dml::Executor::memMove(*r.as, dst, src, len),
                    res);
            }
        }
    };

    Clean::go(rig, n, horizon, clean_done);
    if (inject_faults)
        Faulty::go(rig, n, horizon);
    rig.sim.runUntil(horizon);
    rig.sim.run();
    return static_cast<double>(clean_done) * n / toNs(horizon);
}

} // namespace
} // namespace dsasim::bench

int
main()
{
    using namespace dsasim;
    using namespace dsasim::bench;

    {
        Table tbl("A1: read buffers per group vs async memcpy GB/s "
                  "(256KB transfers)",
                  {"buffers", "src local DRAM", "src CXL"});
        for (unsigned bufs : {8u, 16u, 32u, 64u, 96u}) {
            tbl.addRow({std::to_string(bufs),
                        fmt(readBufferRun(bufs, MemKind::DramLocal)),
                        fmt(readBufferRun(bufs, MemKind::Cxl))});
        }
        tbl.print();
    }

    {
        Table tbl("A2: WQ priority split of one saturated PE "
                  "(16KB copies)",
                  {"priorities (A,B)", "WQ-A GB/s", "WQ-B GB/s"});
        for (auto pr : {std::pair<unsigned, unsigned>{0, 0},
                        {4, 0},
                        {7, 0}}) {
            double a = 0, b = 0;
            priorityRun(pr.first, pr.second, a, b);
            tbl.addRow({"(" + std::to_string(pr.first) + "," +
                            std::to_string(pr.second) + ")",
                        fmt(a), fmt(b)});
        }
        tbl.print();
    }

    {
        Table tbl("A3: cache-control hint and the consumer (G3)",
                  {"hint", "consumer scan ns (64KB)",
                   "consumer LLC hit %"});
        for (bool hint : {false, true}) {
            double ns = 0, hit = 0;
            cacheHintRun(hint, ns, hit);
            tbl.addRow({hint ? "LLC (1)" : "memory (0)", fmt(ns, 0),
                        fmt(hit, 1)});
        }
        tbl.print();
    }

    {
        Table tbl("A4: PE stalls from a faulting co-runner (G5)",
                  {"config", "clean-stream GB/s"});
        tbl.addRow({"1 PE, no faults", fmt(faultStallRun(1, false))});
        tbl.addRow({"1 PE, faulting co-runner",
                    fmt(faultStallRun(1, true))});
        tbl.addRow({"2 PEs, faulting co-runner",
                    fmt(faultStallRun(2, true))});
        tbl.print();
    }
    return 0;
}
