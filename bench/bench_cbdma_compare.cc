/**
 * @file
 * §4.2 headline: DSA (SPR) delivers on average ~2.1x the throughput
 * of CBDMA (ICX) over varying transfer sizes, using logically
 * equivalent resources (one DSA PE vs one CBDMA channel).
 */

#include "bench/common.hh"

namespace dsasim::bench
{
namespace
{

SimTask
cbdmaLoop(Simulation &sim, Platform &plat, AddressSpace &as,
          std::uint64_t ts, int jobs, int depth, Measure &out)
{
    CbdmaDevice &dev = plat.cbdma(0);
    Core &core = plat.core(0);
    Semaphore window(sim, static_cast<std::uint64_t>(depth));
    Latch all(sim, static_cast<std::uint64_t>(jobs));
    const int slots = 8;
    Addr src = as.alloc(ts * slots);
    Addr dst = as.alloc(ts * slots);
    std::vector<std::unique_ptr<CompletionRecord>> crs;

    struct W
    {
        static SimTask
        drain(CompletionRecord &cr, Semaphore &win, Latch &a)
        {
            if (!cr.isDone())
                co_await cr.done.wait();
            win.release();
            a.arrive();
        }
    };

    Tick t0 = sim.now();
    for (int i = 0; i < jobs; ++i) {
        co_await window.acquire();
        // CBDMA requires pinning + physical addresses up front.
        Addr so = src + static_cast<Addr>(i % slots) * ts;
        Addr dk = dst + static_cast<Addr>(i % slots) * ts;
        auto ssegs = CbdmaDevice::pinRange(as, so, ts);
        auto dsegs = CbdmaDevice::pinRange(as, dk, ts);
        crs.push_back(std::make_unique<CompletionRecord>(sim));
        CbdmaDescriptor d;
        d.op = CbdmaDescriptor::Op::Copy;
        d.srcPa = ssegs.front().first;
        d.dstPa = dsegs.front().first;
        d.size = ts;
        d.completion = crs.back().get();
        // Doorbell write from the core.
        co_await core.busyFor(dev.params().doorbellCost, "submit");
        while (!dev.post(0, d))
            co_await sim.delay(dev.params().doorbellCost);
        W::drain(*crs.back(), window, all);
    }
    co_await all.wait();
    out.gbps = achievedGBps(static_cast<std::uint64_t>(jobs) * ts,
                            sim.now() - t0);
}

} // namespace
} // namespace dsasim::bench

int
main()
{
    using namespace dsasim;
    using namespace dsasim::bench;

    const std::vector<std::uint64_t> sizes = {
        4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 2 << 20};

    Table tbl("DSA (SPR, 1 PE) vs CBDMA (ICX, 1 channel): "
              "async memcpy GB/s",
              {"size", "CBDMA", "DSA", "ratio"});

    double ratio_sum = 0;
    for (auto ts : sizes) {
        // CBDMA on the ICX platform. The region allocator backs each
        // region with physically contiguous frames, so pinRange
        // yields a single segment per buffer.
        Simulation sim;
        Platform icx(sim, PlatformConfig::icx());
        AddressSpace &as = icx.mem().createSpace();
        Measure cb;
        cbdmaLoop(sim, icx, as, ts,
                  static_cast<int>(std::max<std::uint64_t>(
                      32, (24ull << 20) / ts)),
                  16, cb);
        sim.run();

        // DSA on the SPR platform, one PE.
        Rig rig{Rig::Options{}};
        auto ring = memMoveRing(rig, ts, 8);
        Measure dsa = asyncHw(rig, ring);

        double ratio = dsa.gbps / cb.gbps;
        ratio_sum += ratio;
        tbl.addRow({fmtSize(ts), fmt(cb.gbps), fmt(dsa.gbps),
                    fmt(ratio)});
    }
    tbl.addRow({"average", "", "",
                fmt(ratio_sum / static_cast<double>(sizes.size()))});
    tbl.print();
    return 0;
}
