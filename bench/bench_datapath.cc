/**
 * @file
 * Host-side throughput of the simulator's *functional* data path —
 * the code that actually moves bytes when descriptors execute. This
 * is a self-benchmark (host seconds, not simulated ticks): the
 * figure sweeps stream gigabytes through AddressSpace::read/write
 * and the engine opcode kernels, so their host throughput bounds how
 * many scenarios a sweep can cover.
 *
 * Metrics (GB/s of payload moved per host second):
 *   read/write/copy at 64 B, 4 KiB and 1 MiB access granularity —
 *   small accesses expose per-access translation cost, large ones
 *   the raw copy bandwidth; fill at 1 MiB; a 2 MiB-page read
 *   stream.
 *
 *   composite_gbps is the geometric mean of the *data-path-bound*
 *   metrics — the 64 B set plus the VA-to-VA copies, where
 *   simulator overhead (translation, dispatch, double-copying)
 *   rather than host memcpy bandwidth dominates. This is the
 *   PR-over-PR trend number. bulk_gbps is the geomean of the
 *   memcpy-bound bulk metrics (4 KiB/1 MiB read/write, fill, the
 *   2 MiB-page stream); it is pinned near the host's DRAM bandwidth
 *   and is tracked only to catch regressions.
 *
 *   engine_gbps / engine_desc_per_sec run real memmove descriptors
 *   through a DSA engine (functional + timing model together).
 *
 * Usage:
 *   bench_datapath [--json=PATH] [--check=PATH [--tol=0.2]]
 *
 * --json writes the metrics as a JSON object. --check loads a
 * previously committed JSON and exits nonzero if any metric fell
 * more than --tol (default 20%) below it — the CI regression gate.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.hh"
#include "sim/random.hh"

namespace dsasim::bench
{
namespace
{

using Clock = std::chrono::steady_clock;

double
seconds(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/**
 * Run @p fn (moving @p bytes_per_iter each call) for >= min_secs,
 * three trials, best rate. Best-of damps scheduler noise on shared
 * hosts; peak sustained rate is the stable capability number.
 */
template <typename Fn>
double
gbps(std::uint64_t bytes_per_iter, Fn &&fn, double min_secs = 0.25)
{
    // Warm-up pass materializes backing chunks and caches.
    fn();
    double best = 0;
    for (int trial = 0; trial < 3; ++trial) {
        std::uint64_t bytes = 0;
        auto t0 = Clock::now();
        double el = 0;
        do {
            fn();
            bytes += bytes_per_iter;
            el = seconds(t0);
        } while (el < min_secs);
        best = std::max(best,
                        static_cast<double>(bytes) / el / 1e9);
    }
    return best;
}

struct Metrics
{
    double read64 = 0, read4k = 0, read1m = 0;
    double write64 = 0, write4k = 0, write1m = 0;
    double copy64 = 0, copy4k = 0, copy1m = 0;
    double fill1m = 0;
    double read2mPage = 0;
    double composite = 0;
    double bulk = 0;
    double engineGbps = 0;
    double engineDescPerSec = 0;
};

Metrics
measure()
{
    Metrics m;
    const std::uint64_t region = 64ull << 20;
    const std::uint64_t batch = 8ull << 20; // payload per timed call

    {
        Simulation sim;
        MemSystem ms(sim, PlatformConfig::spr().mem);
        AddressSpace &as = ms.createSpace();
        Addr src = as.alloc(region);
        Addr dst = as.alloc(region);
        std::vector<std::uint8_t> buf(1 << 20);
        Rng rng(7);
        for (auto &b : buf)
            b = static_cast<std::uint8_t>(rng.next32());
        for (std::uint64_t off = 0; off < region; off += buf.size())
            as.write(src + off, buf.data(), buf.size());

        std::uint64_t cursor = 0;
        auto advance = [&](std::uint64_t bs) {
            std::uint64_t off = cursor;
            cursor = cursor + bs <= region - bs ? cursor + bs : 0;
            return off;
        };
        auto readAt = [&](std::uint64_t bs) {
            return gbps(batch, [&] {
                for (std::uint64_t done = 0; done < batch; done += bs)
                    as.read(src + advance(bs), buf.data(), bs);
            });
        };
        auto writeAt = [&](std::uint64_t bs) {
            return gbps(batch, [&] {
                for (std::uint64_t done = 0; done < batch; done += bs)
                    as.write(dst + advance(bs), buf.data(), bs);
            });
        };
        // Copy: VA-to-VA, the memmove kernel's data plane (was a
        // scratch double copy; now the zero-copy span path).
        auto copyAt = [&](std::uint64_t bs) {
            return gbps(batch, [&] {
                for (std::uint64_t done = 0; done < batch;
                     done += bs) {
                    std::uint64_t off = advance(bs);
                    as.copy(dst + off, src + off, bs);
                }
            });
        };

        m.read64 = readAt(64);
        m.read4k = readAt(4096);
        m.read1m = readAt(1 << 20);
        m.write64 = writeAt(64);
        m.write4k = writeAt(4096);
        m.write1m = writeAt(1 << 20);
        m.copy64 = copyAt(64);
        m.copy4k = copyAt(4096);
        m.copy1m = copyAt(1 << 20);
        m.fill1m = gbps(batch, [&] {
            for (std::uint64_t done = 0; done < batch;
                 done += 1 << 20)
                as.fill(dst + advance(1 << 20), 0x5a, 1 << 20);
        });
    }

    {
        Simulation sim;
        MemSystem ms(sim, PlatformConfig::spr().mem);
        AddressSpace &as = ms.createSpace();
        Addr src = as.alloc(region, MemKind::DramLocal,
                            PageSize::Size2M);
        std::vector<std::uint8_t> buf(1 << 20, 0x11);
        for (std::uint64_t off = 0; off < region; off += buf.size())
            as.write(src + off, buf.data(), buf.size());
        std::uint64_t cursor = 0;
        m.read2mPage = gbps(batch, [&] {
            for (std::uint64_t done = 0; done < batch;
                 done += 1 << 20) {
                as.read(src + cursor, buf.data(), 1 << 20);
                cursor = cursor + (2 << 20) <= region - (1 << 20)
                             ? cursor + (1 << 20)
                             : 0;
            }
        });
    }

    auto geomean = [](std::initializer_list<double> parts) {
        double log_sum = 0;
        for (double p : parts)
            log_sum += std::log(std::max(p, 1e-9));
        return std::exp(log_sum /
                        static_cast<double>(parts.size()));
    };
    m.composite = geomean(
        {m.read64, m.write64, m.copy64, m.copy4k, m.copy1m});
    m.bulk = geomean({m.read4k, m.read1m, m.write4k, m.write1m,
                      m.fill1m, m.read2mPage});

    {
        // End-to-end engine throughput (functional + timing model).
        // Best of two fresh rigs, same noise-damping rationale.
        auto run = [](std::uint64_t size, int total) {
            double best = 1e99;
            for (int trial = 0; trial < 2; ++trial) {
                Rig::Options o;
                Rig rig(o);
                auto ring = memMoveRing(rig, size, 16);
                auto t0 = Clock::now();
                asyncHw(rig, ring, total, 32);
                best = std::min(best, seconds(t0));
            }
            return best;
        };
        {
            const std::uint64_t size = 256 << 10;
            const int total = 512;
            double el = run(size, total);
            m.engineGbps =
                static_cast<double>(size) * total / el / 1e9;
        }
        {
            const std::uint64_t size = 4096;
            const int total = 4096;
            double el = run(size, total);
            m.engineDescPerSec = total / el;
        }
    }
    return m;
}

void
emit(std::FILE *f, const Metrics &m)
{
    std::fprintf(f,
                 "{\n"
                 "  \"benchmark\": \"datapath\",\n"
                 "  \"read_64_gbps\": %.3f,\n"
                 "  \"read_4k_gbps\": %.3f,\n"
                 "  \"read_1m_gbps\": %.3f,\n"
                 "  \"write_64_gbps\": %.3f,\n"
                 "  \"write_4k_gbps\": %.3f,\n"
                 "  \"write_1m_gbps\": %.3f,\n"
                 "  \"copy_64_gbps\": %.3f,\n"
                 "  \"copy_4k_gbps\": %.3f,\n"
                 "  \"copy_1m_gbps\": %.3f,\n"
                 "  \"fill_1m_gbps\": %.3f,\n"
                 "  \"read_2m_page_gbps\": %.3f,\n"
                 "  \"composite_gbps\": %.3f,\n"
                 "  \"bulk_gbps\": %.3f,\n"
                 "  \"engine_gbps\": %.3f,\n"
                 "  \"engine_desc_per_sec\": %.0f\n"
                 "}\n",
                 m.read64, m.read4k, m.read1m, m.write64, m.write4k,
                 m.write1m, m.copy64, m.copy4k, m.copy1m, m.fill1m,
                 m.read2mPage, m.composite, m.bulk, m.engineGbps,
                 m.engineDescPerSec);
}

/** Pull `"key": <number>` out of a JSON blob (flat, known keys). */
bool
jsonNumber(const std::string &text, const std::string &key,
           double &out)
{
    auto at = text.find("\"" + key + "\"");
    if (at == std::string::npos)
        return false;
    at = text.find(':', at);
    if (at == std::string::npos)
        return false;
    out = std::strtod(text.c_str() + at + 1, nullptr);
    return true;
}

int
check(const Metrics &m, const std::string &path, double tol)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "bench_datapath: cannot open %s\n",
                     path.c_str());
        return 2;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();

    struct Item
    {
        const char *key;
        double cur;
    } items[] = {
        {"composite_gbps", m.composite},
        {"bulk_gbps", m.bulk},
        {"read_64_gbps", m.read64},
        {"read_4k_gbps", m.read4k},
        {"read_1m_gbps", m.read1m},
        {"write_4k_gbps", m.write4k},
        {"copy_4k_gbps", m.copy4k},
        {"copy_1m_gbps", m.copy1m},
        {"fill_1m_gbps", m.fill1m},
        {"read_2m_page_gbps", m.read2mPage},
        {"engine_gbps", m.engineGbps},
        {"engine_desc_per_sec", m.engineDescPerSec},
    };
    int failures = 0;
    for (const Item &it : items) {
        double want = 0;
        if (!jsonNumber(text, it.key, want) || want <= 0)
            continue;
        double floor = want * (1.0 - tol);
        const bool ok = it.cur >= floor;
        std::printf("%-22s %10.3f  committed %10.3f  %s\n", it.key,
                    it.cur, want, ok ? "ok" : "REGRESSED");
        failures += ok ? 0 : 1;
    }
    return failures ? 1 : 0;
}

} // namespace
} // namespace dsasim::bench

int
main(int argc, char **argv)
{
    using namespace dsasim::bench;
    std::string json_path, check_path;
    double tol = 0.20;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a.rfind("--json=", 0) == 0)
            json_path = a.substr(7);
        else if (a.rfind("--check=", 0) == 0)
            check_path = a.substr(8);
        else if (a.rfind("--tol=", 0) == 0)
            tol = std::strtod(a.c_str() + 6, nullptr);
    }

    Metrics m = measure();
    emit(stdout, m);
    if (!json_path.empty()) {
        std::FILE *f = std::fopen(json_path.c_str(), "w");
        if (!f) {
            std::perror("bench_datapath: fopen");
            return 2;
        }
        emit(f, m);
        std::fclose(f);
    }
    if (!check_path.empty())
        return check(m, check_path, tol);
    return 0;
}
