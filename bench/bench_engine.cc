/**
 * @file
 * Host-side throughput of the engine timing walk — the code that
 * charges LLC/DDIO hits, misses, evictions and writebacks while a
 * descriptor streams through `Engine::process`. This is a
 * self-benchmark (host seconds, not simulated ticks): every figure
 * sweep, forked sweep and serving scenario funnels through this walk,
 * so its host throughput bounds how many scenarios a run can cover.
 *
 * Scenarios cover the walk's three span paths across hit/miss/DDIO
 * mixes:
 *   memmove_1m_gbps       1 MiB moves, cache-control on: DDIO-way
 *                         fills + cold source misses (ring flushed
 *                         per pass).
 *   memmove_1m_nocc_gbps  cache-control off: non-allocating dest
 *                         evictions + memory writes.
 *   memmove_1m_warm_gbps  no flushing: the source hit path (lines
 *                         stay resident between passes).
 *   fill_1m_gbps          FILL descriptors (write-only stream).
 *   crc_1m_gbps           CRC32 descriptors (read-only stream).
 *   engine_desc_per_sec   4 KiB moves: per-descriptor overhead.
 *   engine_gbps           alias of memmove_1m_gbps, the headline
 *                         bulk-walk number (ROADMAP target: >=5x the
 *                         pre-batching 1.0 GB/s).
 *
 * stream_hash is the event-stream fingerprint of a fixed mixed run
 * (sizes, opcodes and flags pinned): the timing walk must produce
 * byte-identical event streams no matter how the accounting is
 * implemented, so --check asserts it exactly — a regression gate for
 * the batched-vs-line equivalence contract (DESIGN.md §13) as well as
 * for accidental timing changes.
 *
 * Usage:
 *   bench_engine [--json=PATH] [--check=PATH [--tol=0.2]]
 *
 * --json writes the metrics as a JSON object. --check loads a
 * previously committed JSON and exits nonzero if any throughput
 * metric fell more than --tol (default 20%) below it or the stream
 * hash differs — the CI regression gate.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.hh"

namespace dsasim::bench
{
namespace
{

using Clock = std::chrono::steady_clock;

double
seconds(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/**
 * Async driver mirroring detail::asyncHwLoop but with per-pass cache
 * flushing optional — the warm scenario needs lines to stay resident
 * so the walk takes the hit-classification path.
 */
SimTask
ringLoop(Rig &rig, const std::vector<WorkDescriptor> &ring, int total,
         int depth, bool flush_per_pass)
{
    Core &core = rig.plat.core(0);
    Semaphore window(rig.sim, static_cast<std::uint64_t>(depth));
    Latch all(rig.sim, static_cast<std::uint64_t>(total));

    struct Waiter
    {
        static SimTask
        drain(std::unique_ptr<dml::Job> job, Semaphore &win,
              Latch &done)
        {
            if (!job->cr.isDone())
                co_await job->cr.done.wait();
            win.release();
            done.arrive();
        }
    };

    for (int i = 0; i < total; ++i) {
        const WorkDescriptor &d =
            ring[static_cast<std::size_t>(i) % ring.size()];
        if (flush_per_pass && i > 0 &&
            static_cast<std::size_t>(i) % ring.size() == 0)
            rig.plat.mem().cache().invalidateAll();
        co_await window.acquire();
        auto job = rig.exec->prepare(d);
        co_await rig.exec->submit(core, *job);
        Waiter::drain(std::move(job), window, all);
    }
    co_await all.wait();
}

enum class Op { MemMove, Fill, Crc };

std::vector<WorkDescriptor>
buildRing(Rig &rig, Op op, std::uint64_t size, int count,
          bool cache_control)
{
    AddressSpace &as = *rig.as;
    std::uint64_t n = static_cast<std::uint64_t>(count);
    Addr src = as.alloc(size * n);
    Addr dst = as.alloc(size * n);
    std::vector<WorkDescriptor> ring;
    for (int i = 0; i < count; ++i) {
        Addr s = src + static_cast<Addr>(i) * size;
        Addr t = dst + static_cast<Addr>(i) * size;
        WorkDescriptor d;
        switch (op) {
          case Op::MemMove:
            d = dml::Executor::memMove(as, t, s, size);
            break;
          case Op::Fill:
            d = dml::Executor::fill(as, t, 0x5a5a5a5a5a5a5a5aull,
                                    size);
            break;
          case Op::Crc:
            d = dml::Executor::crc32(as, s, size);
            break;
        }
        if (!cache_control)
            d.flags &= ~descflags::cacheControl;
        ring.push_back(d);
    }
    return ring;
}

/**
 * Wall-clock seconds for @p total descriptors of one scenario on a
 * fresh rig; best of three fresh-rig trials (damps scheduler noise —
 * peak sustained rate is the stable capability number).
 */
double
run(Op op, std::uint64_t size, int total, bool cache_control,
    bool flush_per_pass, int ring_count = 8, int depth = 32)
{
    double best = 1e99;
    for (int trial = 0; trial < 3; ++trial) {
        Rig::Options o;
        Rig rig(o);
        auto ring =
            buildRing(rig, op, size, ring_count, cache_control);
        auto t0 = Clock::now();
        ringLoop(rig, ring, total, depth, flush_per_pass);
        rig.sim.run();
        best = std::min(best, seconds(t0));
    }
    return best;
}

struct Metrics
{
    double memmove1m = 0;
    double memmove1mNocc = 0;
    double memmove1mWarm = 0;
    double fill1m = 0;
    double crc1m = 0;
    double descPerSec = 0;
    std::uint64_t streamHash = 0;
};

/**
 * Fixed mixed workload with event-stream hashing on: 4 KiB / 64 KiB
 * MEMMOVE (with and without cache control), FILL and CRC descriptors
 * interleaved over one rig. Everything is pinned, so the resulting
 * fingerprint is host-independent and must never move unless the
 * timing model intentionally changes.
 */
std::uint64_t
fingerprint()
{
    Rig::Options o;
    Rig rig(o);
    rig.sim.enableStreamHash(true);
    std::vector<WorkDescriptor> ring;
    for (const auto &r : {
             buildRing(rig, Op::MemMove, 4096, 4, true),
             buildRing(rig, Op::MemMove, 64 << 10, 4, false),
             buildRing(rig, Op::Fill, 64 << 10, 4, true),
             buildRing(rig, Op::Crc, 64 << 10, 4, true),
         })
        ring.insert(ring.end(), r.begin(), r.end());
    ringLoop(rig, ring, 96, 16, true);
    rig.sim.run();
    return rig.sim.streamHash();
}

Metrics
measure()
{
    Metrics m;
    const std::uint64_t mb = 1 << 20;
    auto gbps = [](std::uint64_t size, int total, double el) {
        return static_cast<double>(size) * total / el / 1e9;
    };

    m.memmove1m = gbps(mb, 192, run(Op::MemMove, mb, 192, true, true));
    m.memmove1mNocc =
        gbps(mb, 192, run(Op::MemMove, mb, 192, false, true));
    m.memmove1mWarm =
        gbps(mb, 192, run(Op::MemMove, mb, 192, true, false));
    m.fill1m = gbps(mb, 192, run(Op::Fill, mb, 192, true, true));
    m.crc1m = gbps(mb, 192, run(Op::Crc, mb, 192, true, true));
    {
        const int total = 16384;
        m.descPerSec =
            total / run(Op::MemMove, 4096, total, true, true, 16);
    }
    m.streamHash = fingerprint();
    return m;
}

void
emit(std::FILE *f, const Metrics &m)
{
    std::fprintf(f,
                 "{\n"
                 "  \"benchmark\": \"engine\",\n"
                 "  \"memmove_1m_gbps\": %.3f,\n"
                 "  \"memmove_1m_nocc_gbps\": %.3f,\n"
                 "  \"memmove_1m_warm_gbps\": %.3f,\n"
                 "  \"fill_1m_gbps\": %.3f,\n"
                 "  \"crc_1m_gbps\": %.3f,\n"
                 "  \"engine_desc_per_sec\": %.0f,\n"
                 "  \"engine_gbps\": %.3f,\n"
                 "  \"stream_hash\": \"%016llx\"\n"
                 "}\n",
                 m.memmove1m, m.memmove1mNocc, m.memmove1mWarm,
                 m.fill1m, m.crc1m, m.descPerSec, m.memmove1m,
                 static_cast<unsigned long long>(m.streamHash));
}

/** Pull `"key": <number>` out of a JSON blob (flat, known keys). */
bool
jsonNumber(const std::string &text, const std::string &key,
           double &out)
{
    auto at = text.find("\"" + key + "\"");
    if (at == std::string::npos)
        return false;
    at = text.find(':', at);
    if (at == std::string::npos)
        return false;
    out = std::strtod(text.c_str() + at + 1, nullptr);
    return true;
}

/** Pull `"key": "value"` out of a JSON blob (flat, known keys). */
bool
jsonString(const std::string &text, const std::string &key,
           std::string &out)
{
    auto at = text.find("\"" + key + "\"");
    if (at == std::string::npos)
        return false;
    at = text.find(':', at);
    if (at == std::string::npos)
        return false;
    auto open = text.find('"', at);
    if (open == std::string::npos)
        return false;
    auto close = text.find('"', open + 1);
    if (close == std::string::npos)
        return false;
    out = text.substr(open + 1, close - open - 1);
    return true;
}

int
check(const Metrics &m, const std::string &path, double tol)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "bench_engine: cannot open %s\n",
                     path.c_str());
        return 2;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();

    struct Item
    {
        const char *key;
        double cur;
    } items[] = {
        {"engine_gbps", m.memmove1m},
        {"engine_desc_per_sec", m.descPerSec},
        {"memmove_1m_gbps", m.memmove1m},
        {"memmove_1m_nocc_gbps", m.memmove1mNocc},
        {"memmove_1m_warm_gbps", m.memmove1mWarm},
        {"fill_1m_gbps", m.fill1m},
        {"crc_1m_gbps", m.crc1m},
    };
    int failures = 0;
    for (const Item &it : items) {
        double want = 0;
        if (!jsonNumber(text, it.key, want) || want <= 0)
            continue;
        double floor = want * (1.0 - tol);
        const bool ok = it.cur >= floor;
        std::printf("%-22s %12.3f  committed %12.3f  %s\n", it.key,
                    it.cur, want, ok ? "ok" : "REGRESSED");
        failures += ok ? 0 : 1;
    }
    // The fingerprint is exact: any drift means the timing walk's
    // event stream changed, which a perf-only PR must never do.
    std::string want_hash;
    if (jsonString(text, "stream_hash", want_hash)) {
        char cur[32];
        std::snprintf(cur, sizeof(cur), "%016llx",
                      static_cast<unsigned long long>(m.streamHash));
        const bool ok = want_hash == cur;
        std::printf("%-22s %16s  committed %16s  %s\n", "stream_hash",
                    cur, want_hash.c_str(), ok ? "ok" : "MISMATCH");
        failures += ok ? 0 : 1;
    }
    return failures ? 1 : 0;
}

} // namespace
} // namespace dsasim::bench

int
main(int argc, char **argv)
{
    using namespace dsasim::bench;
    std::string json_path, check_path;
    double tol = 0.20;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a.rfind("--json=", 0) == 0)
            json_path = a.substr(7);
        else if (a.rfind("--check=", 0) == 0)
            check_path = a.substr(8);
        else if (a.rfind("--tol=", 0) == 0)
            tol = std::strtod(a.c_str() + 6, nullptr);
    }

    Metrics m = measure();
    emit(stdout, m);
    if (!json_path.empty()) {
        std::FILE *f = std::fopen(json_path.c_str(), "w");
        if (!f) {
            std::perror("bench_engine: fopen");
            return 2;
        }
        emit(f, m);
        std::fclose(f);
    }
    if (!check_path.empty())
        return check(m, check_path, tol);
    return 0;
}
