/**
 * @file
 * Figure 2: throughput improvement of DSA data-streaming operations
 * over their software counterparts with varying transfer sizes
 * (batch size 1).
 *
 *   (a) synchronous offload: one descriptor submitted and completed
 *       at a time — DSA wins above ~4 KB.
 *   (b) asynchronous offload (queue depth 32): DSA overtakes the
 *       core around ~256 B.
 *
 * Buffers are flushed between iterations, per the paper's §4.1.
 */

#include <functional>

#include "bench/common.hh"

namespace dsasim::bench
{
namespace
{

struct OpSpec
{
    const char *name;
    std::uint64_t minSize;
    std::uint64_t maxSize;
    /** Build a descriptor for buffers at (src, dst) of `size`. */
    std::function<WorkDescriptor(Rig &, Addr, Addr, std::uint64_t)>
        make;
    /** Destination bytes per source byte (region sizing). */
    double dstScale = 1.0;
};

std::vector<OpSpec>
opSpecs()
{
    using E = dml::Executor;
    std::vector<OpSpec> ops;
    ops.push_back({"Memory Copy", 64, 2 << 20,
                   [](Rig &r, Addr s, Addr d, std::uint64_t n) {
                       return E::memMove(*r.as, d, s, n);
                   },
                   1.0});
    ops.push_back({"Dualcast", 64, 1 << 20,
                   [](Rig &r, Addr s, Addr d, std::uint64_t n) {
                       return E::dualcast(*r.as, d, d + n, s, n);
                   },
                   2.0});
    ops.push_back({"CRC Gen", 64, 2 << 20,
                   [](Rig &r, Addr s, Addr, std::uint64_t n) {
                       return E::crc32(*r.as, s, n);
                   },
                   0.0});
    ops.push_back({"Copy+CRC", 64, 2 << 20,
                   [](Rig &r, Addr s, Addr d, std::uint64_t n) {
                       return E::copyCrc(*r.as, d, s, n);
                   },
                   1.0});
    ops.push_back({"Memory Fill", 64, 2 << 20,
                   [](Rig &r, Addr, Addr d, std::uint64_t n) {
                       WorkDescriptor w = E::fill(*r.as, d, 0x5aa5, n);
                       // allocating-store baseline / LLC-directed
                       w.flags |= descflags::cacheControl;
                       return w;
                   },
                   1.0});
    ops.push_back({"NT-Memory Fill", 64, 2 << 20,
                   [](Rig &r, Addr, Addr d, std::uint64_t n) {
                       WorkDescriptor w = E::fill(*r.as, d, 0x5aa5, n);
                       // cache-control off: NT stores / non-alloc
                       w.flags &= ~descflags::cacheControl;
                       return w;
                   },
                   1.0});
    ops.push_back({"Memory Compare", 64, 2 << 20,
                   [](Rig &r, Addr s, Addr d, std::uint64_t n) {
                       return E::compare(*r.as, s, d, n);
                   },
                   1.0});
    ops.push_back({"Compare Pattern", 64, 2 << 20,
                   [](Rig &r, Addr s, Addr, std::uint64_t n) {
                       return E::comparePattern(*r.as, s, 0, n);
                   },
                   0.0});
    ops.push_back({"DIF Insert", 4096, 1 << 20,
                   [](Rig &r, Addr s, Addr d, std::uint64_t n) {
                       return E::difInsert(*r.as, s, d, 4096, n, 1, 1);
                   },
                   1.1});
    ops.push_back({"DIF Check", 4096, 1 << 20,
                   [](Rig &r, Addr s, Addr, std::uint64_t n) {
                       WorkDescriptor w =
                           E::difCheck(*r.as, s, 4096, n, 1, 1);
                       return w;
                   },
                   0.0});
    ops.push_back({"Create Delta", 64, 256 << 10,
                   [](Rig &r, Addr s, Addr d, std::uint64_t n) {
                       // src2 = modified copy lives past the source.
                       return E::createDelta(*r.as, s, s + n, n,
                                             d, 2 * n);
                   },
                   2.0});
    return ops;
}

void
prepareBuffers(Rig &rig, const OpSpec &op, Addr &src, Addr &dst,
               std::uint64_t max_size)
{
    // Source region holds src (+ src2 for delta) back to back.
    src = rig.as->alloc(2 * max_size + 4096);
    std::uint64_t dst_bytes = static_cast<std::uint64_t>(
        static_cast<double>(2 * max_size) * (op.dstScale + 0.5) +
        8192);
    dst = rig.as->alloc(dst_bytes);
    // Memory Compare scans fully only on equal inputs (both the
    // core and DSA exit early at the first difference), so mirror
    // the source into the destination region.
    if (std::string(op.name) == "Memory Compare") {
        std::vector<std::uint8_t> buf(1 << 20);
        for (std::uint64_t off = 0; off < 2 * max_size;
             off += buf.size()) {
            std::uint64_t run = std::min<std::uint64_t>(
                buf.size(), 2 * max_size - off);
            rig.as->read(src + off, buf.data(), run);
            rig.as->write(dst + off, buf.data(), run);
        }
    }
    // DIF check needs a pre-protected source: build it in place.
    if (std::string(op.name) == "DIF Check") {
        // Protect max_size bytes of data at src.
        Core &core = rig.plat.core(2);
        Addr tmp = rig.as->alloc(max_size);
        rig.plat.kernels().difInsertOp(core, *rig.as, tmp, src, 4096,
                                       max_size / 4096, 1, 1);
    }
}

} // namespace
} // namespace dsasim::bench

int
main()
{
    using namespace dsasim;
    using namespace dsasim::bench;

    const std::vector<std::uint64_t> sizes = {
        64,       256,      1 << 10, 4 << 10, 16 << 10,
        64 << 10, 256 << 10, 1 << 20, 2 << 20};

    const std::vector<OpSpec> ops = opSpecs();
    SweepRunner sweep;

    // ---- (a) synchronous speedup -----------------------------------
    {
        std::vector<std::string> cols = {"operation"};
        for (auto s : sizes)
            cols.push_back(fmtSize(s));
        Table tbl("Fig 2a: sync speedup over software (x)", cols);
        // Each op row forks a private rig off one shared snapshot,
        // so rows sweep in parallel.
        auto rows = sweepScenario(
            sweep, Scenario(Rig::Options{}), ops.size(),
            [&](Rig &rig, std::size_t oi) {
            const OpSpec &op = ops[oi];
            Addr src = 0, dst = 0;
            prepareBuffers(rig, op, src, dst, op.maxSize);
            std::vector<std::string> row = {op.name};
            for (auto s : sizes) {
                if (s < op.minSize || s > op.maxSize) {
                    row.push_back("-");
                    continue;
                }
                WorkDescriptor d = op.make(rig, src, dst, s);
                Measure hw = syncHw(rig, d);
                Measure sw = syncSw(rig, d);
                row.push_back(fmt(sw.meanNs / hw.meanNs));
            }
            return row;
        });
        for (auto &row : rows)
            tbl.addRow(std::move(row));
        tbl.print();
    }

    // ---- (b) asynchronous speedup ----------------------------------
    {
        std::vector<std::string> cols = {"operation"};
        for (auto s : sizes)
            cols.push_back(fmtSize(s));
        Table tbl("Fig 2b: async (depth 32) speedup over software (x)",
                  cols);
        auto rows = sweepScenario(
            sweep, Scenario(Rig::Options{}), ops.size(),
            [&](Rig &rig, std::size_t oi) {
            const OpSpec &op = ops[oi];
            const int ring_n = 16;
            Addr src = 0, dst = 0;
            // Strided ring within one pair of large regions.
            prepareBuffers(rig, op, src, dst,
                           op.maxSize * ring_n);
            std::vector<std::string> row = {op.name};
            for (auto s : sizes) {
                if (s < op.minSize || s > op.maxSize) {
                    row.push_back("-");
                    continue;
                }
                std::vector<WorkDescriptor> ring;
                for (int i = 0; i < ring_n; ++i) {
                    Addr so = src + static_cast<Addr>(i) * 2 * s;
                    Addr dk = dst + static_cast<Addr>(i) *
                                        static_cast<Addr>(
                                            2 * s * (op.dstScale +
                                                     0.5));
                    if (std::string(op.name) == "DIF Check") {
                        // Each slot needs valid protected data.
                        Addr tmp = src; // any data source works
                        rig.plat.kernels().difInsertOp(
                            rig.plat.core(2), *rig.as, tmp, so, 4096,
                            s / 4096, 1, 1);
                    }
                    ring.push_back(op.make(rig, so, dk, s));
                }
                Measure hw = asyncHw(rig, ring);
                Measure sw = syncSw(rig, ring.front());
                row.push_back(fmt(hw.gbps / sw.gbps));
            }
            return row;
        });
        for (auto &row : rows)
            tbl.addRow(std::move(row));
        tbl.print();
    }
    return 0;
}
