/**
 * @file
 * Figure 3: throughput of DSA's Memory Copy with varying transfer
 * sizes and batch sizes (BS), synchronous and asynchronous.
 *
 * Paper shape: synchronously, batching small transfers raises
 * throughput dramatically; above ~256 KB the gains level off. A DWQ
 * streamed asynchronously reaches peak throughput even at BS 1;
 * saturation is ~30 GB/s (the I/O fabric limit).
 */

#include "bench/common.hh"

namespace dsasim::bench
{
namespace
{

std::vector<WorkDescriptor>
batchSubs(Rig &rig, Addr src, Addr dst, std::uint64_t ts, int bs)
{
    std::vector<WorkDescriptor> subs;
    for (int i = 0; i < bs; ++i) {
        subs.push_back(dml::Executor::memMove(
            *rig.as, dst + static_cast<Addr>(i) * ts,
            src + static_cast<Addr>(i) * ts, ts));
    }
    return subs;
}

SimTask
syncBatchLoop(Rig &rig, Addr src, Addr dst, std::uint64_t ts, int bs,
              int iters, Measure &out)
{
    Core &core = rig.plat.core(0);
    Histogram lat;
    auto subs = batchSubs(rig, src, dst, ts, bs);
    for (int i = 0; i < iters; ++i) {
        rig.plat.mem().cache().invalidateAll();
        dml::OpResult r;
        if (bs == 1)
            co_await rig.exec->executeHardware(core, subs[0], r);
        else
            co_await rig.exec->executeBatch(core, subs, r);
        lat.add(toNs(r.latency));
    }
    out.meanNs = lat.mean();
    out.gbps = static_cast<double>(ts) * bs / out.meanNs;
}

SimTask
asyncBatchLoop(Rig &rig, Addr src, Addr dst, std::uint64_t ts, int bs,
               int jobs, int depth, Measure &out)
{
    Core &core = rig.plat.core(0);
    Semaphore window(rig.sim, static_cast<std::uint64_t>(depth));
    Latch all(rig.sim, static_cast<std::uint64_t>(jobs));
    Tick t0 = rig.sim.now();

    struct Waiter
    {
        static SimTask
        drain(std::unique_ptr<dml::Job> job, Semaphore &win,
              Latch &done)
        {
            if (!job->cr.isDone())
                co_await job->cr.done.wait();
            win.release();
            done.arrive();
        }
    };

    // Cycle over a few buffer slots so data stays cold-ish.
    const int slots = 4;
    for (int i = 0; i < jobs; ++i) {
        if (i > 0 && i % slots == 0)
            rig.plat.mem().cache().invalidateAll();
        Addr so = src + static_cast<Addr>(i % slots) *
                            static_cast<Addr>(ts) * bs;
        Addr dk = dst + static_cast<Addr>(i % slots) *
                            static_cast<Addr>(ts) * bs;
        co_await window.acquire();
        std::unique_ptr<dml::Job> job;
        if (bs == 1) {
            job = rig.exec->prepare(
                dml::Executor::memMove(*rig.as, dk, so, ts));
        } else {
            job = rig.exec->prepareBatch(
                rig.as->pasid(), batchSubs(rig, so, dk, ts, bs));
        }
        co_await rig.exec->submit(core, *job);
        Waiter::drain(std::move(job), window, all);
    }
    co_await all.wait();
    Tick elapsed = rig.sim.now() - t0;
    out.gbps =
        achievedGBps(static_cast<std::uint64_t>(jobs) * bs * ts,
                     elapsed);
}

} // namespace
} // namespace dsasim::bench

int
main()
{
    using namespace dsasim;
    using namespace dsasim::bench;

    const std::vector<std::uint64_t> sizes = {64,       256,
                                              1 << 10,  4 << 10,
                                              16 << 10, 64 << 10,
                                              256 << 10, 1 << 20};
    const std::vector<int> batch_sizes = {1, 4, 16, 64, 128};

    SweepRunner sweep;
    for (bool async : {false, true}) {
        std::vector<std::string> cols = {"BS \\ TS"};
        for (auto s : sizes)
            cols.push_back(fmtSize(s));
        Table tbl(async ? "Fig 3 (async, depth 32): memcpy GB/s"
                        : "Fig 3 (sync): memcpy GB/s",
                  cols);
        // Every (BS, TS) cell shares one rig snapshot; cells fork and
        // sweep concurrently, and rows reassemble in order.
        const std::size_t n = batch_sizes.size() * sizes.size();
        auto cells = sweepScenario(
            sweep, Scenario(Rig::Options{}), n,
            [&](Rig &rig, std::size_t i) -> std::string {
            const int bs = batch_sizes[i / sizes.size()];
            const std::uint64_t ts = sizes[i % sizes.size()];
            if (static_cast<std::uint64_t>(bs) * ts > (64u << 20))
                return "-";
            const std::uint64_t span =
                static_cast<std::uint64_t>(ts) * bs * 4;
            Addr src = rig.as->alloc(span);
            Addr dst = rig.as->alloc(span);
            Measure m;
            if (async) {
                int depth = std::max(1, 32 / bs);
                int jobs = std::max(
                    16,
                    itersFor(ts * static_cast<std::uint64_t>(bs),
                             160));
                asyncBatchLoop(rig, src, dst, ts, bs, jobs, depth, m);
            } else {
                int iters = itersFor(
                    ts * static_cast<std::uint64_t>(bs), 60);
                syncBatchLoop(rig, src, dst, ts, bs, iters, m);
            }
            rig.sim.run();
            return fmt(m.gbps);
        });
        for (std::size_t b = 0; b < batch_sizes.size(); ++b) {
            std::vector<std::string> row = {
                "BS:" + std::to_string(batch_sizes[b])};
            for (std::size_t s = 0; s < sizes.size(); ++s)
                row.push_back(
                    std::move(cells[b * sizes.size() + s]));
            tbl.addRow(std::move(row));
        }
        tbl.print();
    }
    return 0;
}
