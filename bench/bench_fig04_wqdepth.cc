/**
 * @file
 * Figure 4: throughput of asynchronous Memory Copy with different WQ
 * sizes (WQS) — more in-flight descriptors hide the offload cost
 * until the fabric saturates; small transfers need deeper queues.
 */

#include "bench/common.hh"

int
main()
{
    using namespace dsasim;
    using namespace dsasim::bench;

    const std::vector<unsigned> wq_sizes = {1, 2, 4, 8, 16, 32, 64,
                                            128};
    const std::vector<std::uint64_t> sizes = {256, 1 << 10, 4 << 10,
                                              16 << 10, 64 << 10};

    std::vector<std::string> cols = {"WQS \\ TS"};
    for (auto s : sizes)
        cols.push_back(fmtSize(s));
    Table tbl("Fig 4: async memcpy GB/s vs WQ size", cols);

    // One rig per (WQS, TS) cell; cells in the same WQS row share
    // one snapshotted rig and fork per transfer size.
    SweepRunner sweep;
    std::vector<Scenario> pts;
    for (std::size_t i = 0; i < wq_sizes.size() * sizes.size(); ++i) {
        Rig::Options o;
        o.wqSize = wq_sizes[i / sizes.size()];
        pts.emplace_back(o);
    }
    auto cells = sweepScenarios(
        sweep, pts, [&](Rig &rig, std::size_t i) -> std::string {
            const unsigned wqs = wq_sizes[i / sizes.size()];
            const std::uint64_t ts = sizes[i % sizes.size()];
            auto ring = memMoveRing(rig, ts, 16);
            // The client keeps at most WQS descriptors in flight
            // (MOVDIR64B occupancy tracking).
            Measure m = asyncHw(rig, ring, /*total=*/0,
                                /*depth=*/static_cast<int>(wqs));
            return fmt(m.gbps);
        });
    for (std::size_t w = 0; w < wq_sizes.size(); ++w) {
        std::vector<std::string> row = {
            "WQS:" + std::to_string(wq_sizes[w])};
        for (std::size_t s = 0; s < sizes.size(); ++s)
            row.push_back(std::move(cells[w * sizes.size() + s]));
        tbl.addRow(std::move(row));
    }
    tbl.print();
    return 0;
}
