/**
 * @file
 * Figure 5: breakdown of memcpy() latency on the CPU versus the
 * Memory Copy offload latency on DSA (transfer size 4 KB) across
 * batch sizes, split into the paper's four phases:
 *
 *   allocate  - descriptor + completion-record memory allocation
 *   prepare   - filling in descriptor fields
 *   submit    - MOVDIR64B / batch submission
 *   wait      - queueing + processing + completion detection
 *
 * As in the paper, allocation dominates (and is amortizable by
 * pre-allocating descriptor rings), preparation is negligible, and
 * waiting is where the actual work happens.
 */

#include "bench/common.hh"

namespace dsasim::bench
{
namespace
{

// Modeled software costs of the allocation/preparation phases (the
// other phases are measured from the simulation clock).
constexpr double allocNsPerDescriptor = 380.0; // malloc + zeroing
constexpr double allocNsBatchArray = 180.0;    // batch list alloc
constexpr double prepNsPerDescriptor = 22.0;   // field stores

struct Breakdown
{
    double alloc = 0, prep = 0, submit = 0, wait = 0;
    double total() const { return alloc + prep + submit + wait; }
};

SimTask
measureDsa(Rig &rig, std::uint64_t ts, int bs, int iters,
           Breakdown &out)
{
    Core &core = rig.plat.core(0);
    Addr src = rig.as->alloc(ts * static_cast<std::uint64_t>(bs));
    Addr dst = rig.as->alloc(ts * static_cast<std::uint64_t>(bs));
    Histogram submit_ns, wait_ns;

    for (int i = 0; i < iters; ++i) {
        rig.plat.mem().cache().invalidateAll();
        std::vector<WorkDescriptor> subs;
        for (int b = 0; b < bs; ++b) {
            subs.push_back(dml::Executor::memMove(
                *rig.as, dst + static_cast<Addr>(b) * ts,
                src + static_cast<Addr>(b) * ts, ts));
        }
        std::unique_ptr<dml::Job> job =
            bs == 1 ? rig.exec->prepare(subs[0])
                    : rig.exec->prepareBatch(rig.as->pasid(), subs);

        Tick t0 = rig.sim.now();
        co_await rig.exec->submit(core, *job);
        Tick t1 = rig.sim.now();
        dml::OpResult r;
        co_await rig.exec->wait(core, *job, r);
        Tick t2 = rig.sim.now();
        submit_ns.add(toNs(t1 - t0));
        wait_ns.add(toNs(t2 - t1));
    }

    out.alloc = allocNsPerDescriptor * bs +
                (bs > 1 ? allocNsBatchArray : 0.0);
    out.prep = prepNsPerDescriptor * bs;
    out.submit = submit_ns.mean();
    out.wait = wait_ns.mean();
}

SimTask
measureCpu(Rig &rig, std::uint64_t ts, int bs, int iters, double &ns)
{
    Core &core = rig.plat.core(1);
    Addr src = rig.as->alloc(ts * static_cast<std::uint64_t>(bs));
    Addr dst = rig.as->alloc(ts * static_cast<std::uint64_t>(bs));
    Histogram lat;
    for (int i = 0; i < iters; ++i) {
        rig.plat.mem().cache().invalidateAll();
        Tick t0 = rig.sim.now();
        for (int b = 0; b < bs; ++b) {
            auto r = rig.plat.kernels().memcpyOp(
                core, *rig.as, dst + static_cast<Addr>(b) * ts,
                src + static_cast<Addr>(b) * ts, ts);
            co_await core.busyFor(r.duration);
        }
        lat.add(toNs(rig.sim.now() - t0));
    }
    ns = lat.mean();
}

} // namespace
} // namespace dsasim::bench

int
main()
{
    using namespace dsasim;
    using namespace dsasim::bench;

    const std::uint64_t ts = 4096;
    const std::vector<int> batch_sizes = {1, 4, 16, 64, 128};

    Table tbl("Fig 5: latency breakdown at TS=4KB (ns)",
              {"config", "alloc", "prepare", "submit", "wait",
               "total", "cpu-memcpy"});

    SweepRunner sweep;
    auto rows = sweepScenario(
        sweep, Scenario(Rig::Options{}), batch_sizes.size(),
        [&](Rig &rig, std::size_t i) -> std::vector<std::string> {
            const int bs = batch_sizes[i];
            Breakdown dsa;
            measureDsa(rig, ts, bs, 40, dsa);
            rig.sim.run();
            double cpu = 0;
            measureCpu(rig, ts, bs, 40, cpu);
            rig.sim.run();
            return {"BS:" + std::to_string(bs), fmt(dsa.alloc),
                    fmt(dsa.prep), fmt(dsa.submit), fmt(dsa.wait),
                    fmt(dsa.total()), fmt(cpu)};
        });
    for (auto &row : rows)
        tbl.addRow(std::move(row));
    tbl.print();

    std::printf("\nNote: alloc/prepare are modeled constants (the "
                "paper amortizes them\nvia pre-allocated descriptor "
                "rings and so do the other benches here).\n");
    return 0;
}
