/**
 * @file
 * Figure 6: Memory Copy throughput (and latency) across memory
 * placements, synchronous mode, batch size 1.
 *
 *  (a) NUMA: [<device>: <src>,<dst>] over local (D) / remote (R)
 *      DRAM. DSA hides the UPI hop with pipelining; mixed
 *      placements enjoy slightly more channel parallelism.
 *  (b) CXL: local DRAM (D) vs CXL-attached memory (C). CXL writes
 *      are slower than reads, so (C src, D dst) beats (D src, C dst).
 */

#include "bench/common.hh"

namespace dsasim::bench
{
namespace
{

struct Placement
{
    const char *label;
    MemKind src;
    MemKind dst;
};

void
panel(const char *title, const std::vector<Placement> &placements,
      const std::vector<std::uint64_t> &sizes)
{
    std::vector<std::string> cols = {"config", "metric"};
    for (auto s : sizes)
        cols.push_back(fmtSize(s));
    Table tbl(title, cols);

    for (const auto &p : placements) {
        Rig rig{Rig::Options{}};
        std::uint64_t max_size = sizes.back();
        Addr src = rig.as->alloc(max_size, p.src);
        Addr dst = rig.as->alloc(max_size, p.dst);
        std::vector<std::string> thr = {std::string("DSA: ") +
                                            p.label,
                                        "GB/s"};
        std::vector<std::string> lat = {std::string("DSA: ") +
                                            p.label,
                                        "ns"};
        for (auto s : sizes) {
            Measure m = syncHw(
                rig, dml::Executor::memMove(*rig.as, dst, src, s));
            thr.push_back(fmt(m.gbps));
            lat.push_back(fmt(m.meanNs, 0));
        }
        tbl.addRow(thr);
        tbl.addRow(lat);
    }

    // CPU reference lines, as in the paper's panels.
    for (const auto &p : placements) {
        Rig rig{Rig::Options{}};
        std::uint64_t max_size = sizes.back();
        Addr src = rig.as->alloc(max_size, p.src);
        Addr dst = rig.as->alloc(max_size, p.dst);
        std::vector<std::string> thr = {std::string("CPU: ") +
                                            p.label,
                                        "GB/s"};
        std::vector<std::string> lat = {std::string("CPU: ") +
                                            p.label,
                                        "ns"};
        for (auto s : sizes) {
            Measure m = syncSw(
                rig, dml::Executor::memMove(*rig.as, dst, src, s));
            thr.push_back(fmt(m.gbps));
            lat.push_back(fmt(m.meanNs, 0));
        }
        tbl.addRow(thr);
        tbl.addRow(lat);
        if (&p - placements.data() >= 1)
            break; // paper shows one or two CPU references
    }
    tbl.print();
}

} // namespace
} // namespace dsasim::bench

int
main()
{
    using namespace dsasim;
    using namespace dsasim::bench;

    const std::vector<std::uint64_t> sizes = {
        1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20};

    panel("Fig 6a: NUMA placements (sync, BS 1)",
          {{"D,D", MemKind::DramLocal, MemKind::DramLocal},
           {"D,R", MemKind::DramLocal, MemKind::DramRemote},
           {"R,D", MemKind::DramRemote, MemKind::DramLocal},
           {"R,R", MemKind::DramRemote, MemKind::DramRemote}},
          sizes);

    panel("Fig 6b: CXL placements (sync, BS 1)",
          {{"D,D", MemKind::DramLocal, MemKind::DramLocal},
           {"C,D", MemKind::Cxl, MemKind::DramLocal},
           {"D,C", MemKind::DramLocal, MemKind::Cxl},
           {"C,C", MemKind::Cxl, MemKind::Cxl}},
          sizes);
    return 0;
}
