/**
 * @file
 * Figure 6: Memory Copy throughput (and latency) across memory
 * placements, synchronous mode, batch size 1.
 *
 *  (a) NUMA: [<device>: <src>,<dst>] over local (D) / remote (R)
 *      DRAM. DSA hides the UPI hop with pipelining; mixed
 *      placements enjoy slightly more channel parallelism.
 *  (b) CXL: local DRAM (D) vs CXL-attached memory (C). CXL writes
 *      are slower than reads, so (C src, D dst) beats (D src, C dst).
 */

#include "bench/common.hh"

namespace dsasim::bench
{
namespace
{

struct Placement
{
    const char *label;
    MemKind src;
    MemKind dst;
};

void
panel(const char *title, const std::vector<Placement> &placements,
      const std::vector<std::uint64_t> &sizes)
{
    std::vector<std::string> cols = {"config", "metric"};
    for (auto s : sizes)
        cols.push_back(fmtSize(s));
    Table tbl(title, cols);

    // Placement rows fork off one shared rig snapshot. The paper
    // shows only one or two CPU reference lines.
    SweepRunner sweep;
    const std::size_t cpu_rows =
        std::min<std::size_t>(2, placements.size());
    auto rows = sweepScenario(
        sweep, Scenario(Rig::Options{}),
        placements.size() + cpu_rows,
        [&](Rig &rig,
            std::size_t i) -> std::vector<std::vector<std::string>> {
            const bool cpu = i >= placements.size();
            const Placement &p =
                placements[cpu ? i - placements.size() : i];
            std::uint64_t max_size = sizes.back();
            Addr src = rig.as->alloc(max_size, p.src);
            Addr dst = rig.as->alloc(max_size, p.dst);
            const std::string who = cpu ? "CPU: " : "DSA: ";
            std::vector<std::string> thr = {who + p.label, "GB/s"};
            std::vector<std::string> lat = {who + p.label, "ns"};
            for (auto s : sizes) {
                WorkDescriptor d =
                    dml::Executor::memMove(*rig.as, dst, src, s);
                Measure m = cpu ? syncSw(rig, d) : syncHw(rig, d);
                thr.push_back(fmt(m.gbps));
                lat.push_back(fmt(m.meanNs, 0));
            }
            return {thr, lat};
        });
    for (auto &pair : rows)
        for (auto &row : pair)
            tbl.addRow(std::move(row));
    tbl.print();
}

} // namespace
} // namespace dsasim::bench

int
main()
{
    using namespace dsasim;
    using namespace dsasim::bench;

    const std::vector<std::uint64_t> sizes = {
        1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20};

    panel("Fig 6a: NUMA placements (sync, BS 1)",
          {{"D,D", MemKind::DramLocal, MemKind::DramLocal},
           {"D,R", MemKind::DramLocal, MemKind::DramRemote},
           {"R,D", MemKind::DramRemote, MemKind::DramLocal},
           {"R,R", MemKind::DramRemote, MemKind::DramRemote}},
          sizes);

    panel("Fig 6b: CXL placements (sync, BS 1)",
          {{"D,D", MemKind::DramLocal, MemKind::DramLocal},
           {"C,D", MemKind::Cxl, MemKind::DramLocal},
           {"D,C", MemKind::DramLocal, MemKind::Cxl},
           {"C,C", MemKind::Cxl, MemKind::Cxl}},
          sizes);
    return 0;
}
