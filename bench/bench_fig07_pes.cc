/**
 * @file
 * Figure 7: performance impact of the number of PEs per group on
 * Memory Copy, varying transfer size (TS) and batch size (BS), one
 * WQ. Small/gap-bound transfers scale with PE count; large transfers
 * level off because one PE already reaches peak bandwidth (G5).
 */

#include "bench/common.hh"

namespace dsasim::bench
{
namespace
{

SimTask
asyncBatched(Rig &rig, std::uint64_t ts, int bs, int jobs, int depth,
             Measure &out)
{
    Core &core = rig.plat.core(0);
    const int slots = 4;
    Addr src = rig.as->alloc(static_cast<std::uint64_t>(slots) * bs *
                             ts);
    Addr dst = rig.as->alloc(static_cast<std::uint64_t>(slots) * bs *
                             ts);
    Semaphore window(rig.sim, static_cast<std::uint64_t>(depth));
    Latch all(rig.sim, static_cast<std::uint64_t>(jobs));
    Tick t0 = rig.sim.now();

    struct Waiter
    {
        static SimTask
        drain(std::unique_ptr<dml::Job> job, Semaphore &win,
              Latch &done)
        {
            if (!job->cr.isDone())
                co_await job->cr.done.wait();
            win.release();
            done.arrive();
        }
    };

    for (int i = 0; i < jobs; ++i) {
        if (i > 0 && i % slots == 0)
            rig.plat.mem().cache().invalidateAll();
        Addr so = src + static_cast<Addr>(i % slots) *
                            static_cast<Addr>(bs) * ts;
        Addr dk = dst + static_cast<Addr>(i % slots) *
                            static_cast<Addr>(bs) * ts;
        co_await window.acquire();
        std::unique_ptr<dml::Job> job;
        if (bs == 1) {
            job = rig.exec->prepare(
                dml::Executor::memMove(*rig.as, dk, so, ts));
        } else {
            std::vector<WorkDescriptor> subs;
            for (int b = 0; b < bs; ++b) {
                subs.push_back(dml::Executor::memMove(
                    *rig.as, dk + static_cast<Addr>(b) * ts,
                    so + static_cast<Addr>(b) * ts, ts));
            }
            job = rig.exec->prepareBatch(rig.as->pasid(), subs);
        }
        co_await rig.exec->submit(core, *job);
        Waiter::drain(std::move(job), window, all);
    }
    co_await all.wait();
    out.gbps = achievedGBps(
        static_cast<std::uint64_t>(jobs) * bs * ts,
        rig.sim.now() - t0);
}

} // namespace
} // namespace dsasim::bench

int
main()
{
    using namespace dsasim;
    using namespace dsasim::bench;

    const std::vector<unsigned> pes = {1, 2, 4};
    struct Cfg
    {
        std::uint64_t ts;
        int bs;
    };
    const std::vector<Cfg> cfgs = {{512, 1},      {512, 32},
                                   {1 << 10, 1},  {1 << 10, 32},
                                   {4 << 10, 1},  {4 << 10, 32},
                                   {64 << 10, 1}, {64 << 10, 32}};

    std::vector<std::string> cols = {"TS:BS"};
    for (auto p : pes)
        cols.push_back("PEs:" + std::to_string(p));
    Table tbl("Fig 7: async memcpy GB/s vs PEs per group (1 WQ)",
              cols);

    // Cells in one PE column share a snapshotted rig; the grid
    // sweeps concurrently and rows reassemble in order.
    SweepRunner sweep;
    std::vector<Scenario> points;
    for (std::size_t i = 0; i < cfgs.size() * pes.size(); ++i) {
        Rig::Options o;
        o.engines = pes[i % pes.size()];
        points.emplace_back(o);
    }
    auto cells = sweepScenarios(
        sweep, points, [&](Rig &rig, std::size_t i) -> std::string {
            const Cfg &c = cfgs[i / pes.size()];
            Measure m;
            int depth = c.bs == 1 ? 32 : 8;
            int jobs = std::max(
                32, itersFor(c.ts * static_cast<std::uint64_t>(c.bs),
                             240));
            asyncBatched(rig, c.ts, c.bs, jobs, depth, m);
            rig.sim.run();
            return fmt(m.gbps);
        });
    for (std::size_t ci = 0; ci < cfgs.size(); ++ci) {
        const Cfg &c = cfgs[ci];
        std::vector<std::string> row = {fmtSize(c.ts) + ":" +
                                        std::to_string(c.bs)};
        for (std::size_t p = 0; p < pes.size(); ++p)
            row.push_back(std::move(cells[ci * pes.size() + p]));
        tbl.addRow(row);
    }
    tbl.print();
    return 0;
}
