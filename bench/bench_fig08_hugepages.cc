/**
 * @file
 * Figure 8: performance impact of huge pages with varying transfer
 * sizes. With the ATC warm and page walks pipelined behind the data
 * stream, throughput is nearly unaffected by page size; the table
 * also reports the cold (first-touch) pass where 2M pages help.
 */

#include "bench/common.hh"

namespace dsasim::bench
{
namespace
{

SimTask
coldPass(Rig &rig, Addr src, Addr dst, std::uint64_t ts,
         Measure &out)
{
    Core &core = rig.plat.core(0);
    dml::OpResult r;
    Tick t0 = rig.sim.now();
    co_await rig.exec->executeHardware(
        core, dml::Executor::memMove(*rig.as, dst, src, ts), r);
    out.meanNs = toNs(rig.sim.now() - t0);
    out.gbps = static_cast<double>(ts) / out.meanNs;
}

} // namespace
} // namespace dsasim::bench

int
main()
{
    using namespace dsasim;
    using namespace dsasim::bench;

    const std::vector<std::uint64_t> sizes = {
        4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20};

    std::vector<std::string> cols = {"pages", "metric"};
    for (auto s : sizes)
        cols.push_back(fmtSize(s));
    Table tbl("Fig 8: huge-page impact on async memcpy", cols);

    const std::vector<PageSize> pss = {PageSize::Size4K,
                                       PageSize::Size2M};
    SweepRunner sweep;

    // Cold rows keep one rig per page size (the row *is* the cold
    // first-touch measurement); warm cells fork off one snapshot.
    for (PageSize ps : pss) {
        const char *label = ps == PageSize::Size4K ? "4K" : "2M";

        // Cold first touch (ATC empty, every page walked).
        tbl.addRow(runScenario(
            Scenario(Rig::Options{}),
            [&](Rig &rig) -> std::vector<std::string> {
                std::vector<std::string> row = {label, "cold GB/s"};
                for (auto s : sizes) {
                    Addr src =
                        rig.as->alloc(s, MemKind::DramLocal, ps);
                    Addr dst =
                        rig.as->alloc(s, MemKind::DramLocal, ps);
                    Measure m;
                    coldPass(rig, src, dst, s, m);
                    rig.sim.run();
                    row.push_back(fmt(m.gbps));
                }
                return row;
            }));

        // Steady state (warm ATC), async depth 32.
        std::vector<std::string> row = {label, "warm GB/s"};
        auto cells = sweepScenario(
            sweep, Scenario(Rig::Options{}), sizes.size(),
            [&](Rig &rig, std::size_t si) -> std::string {
                const std::uint64_t s = sizes[si];
                Addr src =
                    rig.as->alloc(s * 8, MemKind::DramLocal, ps);
                Addr dst =
                    rig.as->alloc(s * 8, MemKind::DramLocal, ps);
                std::vector<WorkDescriptor> ring;
                for (int i = 0; i < 8; ++i) {
                    ring.push_back(dml::Executor::memMove(
                        *rig.as, dst + static_cast<Addr>(i) * s,
                        src + static_cast<Addr>(i) * s, s));
                }
                Measure m = asyncHw(rig, ring);
                return fmt(m.gbps);
            });
        for (auto &c : cells)
            row.push_back(std::move(c));
        tbl.addRow(row);
    }
    tbl.print();
    return 0;
}
