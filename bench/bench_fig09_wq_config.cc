/**
 * @file
 * Figure 9: throughput impact of WQ configurations:
 *
 *   BS:N    - one DWQ, batches of N (group has N PEs)
 *   DWQ:N   - N DWQs, one submitting thread and one PE per queue
 *   SWQ:N   - one SWQ, one PE, N threads submitting with ENQCMD
 *
 * Paper shape: batching to one DWQ and multiple DWQs are nearly
 * identical; a single-threaded SWQ trails between 1-8 KB (the
 * ENQCMD round trip), and enough SWQ threads close the gap.
 */

#include "bench/common.hh"

namespace dsasim::bench
{
namespace
{

double
runConfig(unsigned n, const char *kind, std::uint64_t ts)
{
    Simulation sim;
    PlatformConfig pc = PlatformConfig::spr();
    Platform plat(sim, pc);
    AddressSpace &as = plat.mem().createSpace();
    DsaDevice &dev = plat.dsa(0);

    DsaTopology topo;
    if (std::string(kind) == "DWQ") {
        // N groups: one DWQ + one PE each, one thread per queue.
        for (unsigned i = 0; i < n; ++i) {
            topo.groups.push_back({});
            topo.wqs.push_back({static_cast<int>(i),
                                WorkQueue::Mode::Dedicated, 16, 0, 0});
            topo.engines.push_back(static_cast<int>(i));
        }
    } else {
        // One SWQ + one PE, N submitting threads.
        topo = DsaTopology::basic(32, 1, WorkQueue::Mode::Shared);
    }
    topo.apply(dev);
    std::vector<WorkQueue *> queues;
    for (std::size_t w = 0; w < dev.wqCount(); ++w)
        queues.push_back(&dev.wq(w));

    // Threads share the device; each gets private buffers.
    const int jobs_per_thread = static_cast<int>(
        std::max<std::uint64_t>(48, (12ull << 20) / ts / n));
    Latch done(sim, n);

    struct Thread
    {
        static SimTask
        go(Simulation &s, Platform &p, AddressSpace &space,
           DsaDevice &d, WorkQueue &wq, int core_id, Addr src,
           Addr dst, std::uint64_t size, int jobs, int depth,
           Latch &l)
        {
            Core &core = p.core(static_cast<std::size_t>(core_id));
            Submitter sub(core, d.params());
            Semaphore window(s, static_cast<std::uint64_t>(depth));
            Latch all(s, static_cast<std::uint64_t>(jobs));
            std::vector<std::unique_ptr<CompletionRecord>> crs;
            struct W
            {
                static SimTask
                drain(CompletionRecord &cr, Semaphore &win, Latch &a)
                {
                    if (!cr.isDone())
                        co_await cr.done.wait();
                    win.release();
                    a.arrive();
                }
            };
            const int slots = 8;
            for (int i = 0; i < jobs; ++i) {
                co_await window.acquire();
                crs.push_back(
                    std::make_unique<CompletionRecord>(s));
                WorkDescriptor wd = dml::Executor::memMove(
                    space,
                    dst + static_cast<Addr>(i % slots) * size,
                    src + static_cast<Addr>(i % slots) * size, size);
                wd.completion = crs.back().get();
                if (wq.mode == WorkQueue::Mode::Dedicated)
                    co_await sub.movdir64b(d, wq, wd);
                else
                    co_await sub.enqcmdRetry(d, wq, wd);
                W::drain(*crs.back(), window, all);
            }
            co_await all.wait();
            l.arrive();
        }
    };

    Tick t0 = sim.now();
    for (unsigned t = 0; t < n; ++t) {
        Addr src = as.alloc(ts * 8);
        Addr dst = as.alloc(ts * 8);
        WorkQueue &wq = std::string(kind) == "DWQ"
                            ? *queues[t]
                            : *queues[0];
        int depth = std::string(kind) == "DWQ" ? 16 : 8;
        Thread::go(sim, plat, as, dev, wq, static_cast<int>(t), src,
                   dst, ts, jobs_per_thread, depth, done);
    }
    sim.run();
    Tick elapsed = sim.now() - t0;
    std::uint64_t bytes = static_cast<std::uint64_t>(n) *
                          static_cast<std::uint64_t>(
                              jobs_per_thread) *
                          ts;
    return achievedGBps(bytes, elapsed);
}

/** BS:N — one DWQ with batches of N on a group with N engines. */
double
runBatched(unsigned n, std::uint64_t ts)
{
    Rig::Options o;
    o.engines = n;
    return runScenario(Scenario(o), [&](Rig &rig) {
    Core &core = rig.plat.core(0);
    Addr src = rig.as->alloc(ts * n * 8);
    Addr dst = rig.as->alloc(ts * n * 8);
    const int jobs = static_cast<int>(
        std::max<std::uint64_t>(48, (12ull << 20) / ts / n));
    Measure m;

    struct Drv
    {
        static SimTask
        go(Rig &r, Core &c, Addr s, Addr d, std::uint64_t size,
           unsigned bs, int jobs_n, Measure &out)
        {
            Semaphore window(r.sim, 8);
            Latch all(r.sim, static_cast<std::uint64_t>(jobs_n));
            struct W
            {
                static SimTask
                drain(std::unique_ptr<dml::Job> j, Semaphore &win,
                      Latch &a)
                {
                    if (!j->cr.isDone())
                        co_await j->cr.done.wait();
                    win.release();
                    a.arrive();
                }
            };
            Tick t0 = r.sim.now();
            const int slots = 8;
            for (int i = 0; i < jobs_n; ++i) {
                co_await window.acquire();
                std::vector<WorkDescriptor> subs;
                Addr so = s + static_cast<Addr>(i % slots) * size *
                                  bs;
                Addr dk = d + static_cast<Addr>(i % slots) * size *
                                  bs;
                for (unsigned b = 0; b < bs; ++b) {
                    subs.push_back(dml::Executor::memMove(
                        *r.as, dk + b * size, so + b * size, size));
                }
                auto job =
                    r.exec->prepareBatch(r.as->pasid(), subs);
                co_await r.exec->submit(c, *job);
                W::drain(std::move(job), window, all);
            }
            co_await all.wait();
            out.gbps = achievedGBps(
                static_cast<std::uint64_t>(jobs_n) * bs * size,
                r.sim.now() - t0);
        }
    };
    Drv::go(rig, core, src, dst, ts, n, jobs, m);
    rig.sim.run();
    return m.gbps;
    });
}

} // namespace
} // namespace dsasim::bench

int
main()
{
    using namespace dsasim;
    using namespace dsasim::bench;

    const std::vector<std::uint64_t> sizes = {
        256, 1 << 10, 4 << 10, 8 << 10, 16 << 10, 64 << 10};
    const unsigned n = 4;

    std::vector<std::string> cols = {"config"};
    for (auto s : sizes)
        cols.push_back(fmtSize(s));
    Table tbl("Fig 9: WQ configurations, memcpy GB/s", cols);

    std::vector<std::string> r1 = {"BS:4 (1 DWQ, 4 PE)"};
    std::vector<std::string> r2 = {"DWQ:4 (4 thr, 4 PE)"};
    std::vector<std::string> r3 = {"SWQ:1 (1 thr, 1 PE)"};
    std::vector<std::string> r4 = {"SWQ:8 (8 thr, 1 PE)"};
    for (auto ts : sizes) {
        r1.push_back(fmt(runBatched(n, ts)));
        r2.push_back(fmt(runConfig(n, "DWQ", ts)));
        r3.push_back(fmt(runConfig(1, "SWQ", ts)));
        r4.push_back(fmt(runConfig(8, "SWQ", ts)));
    }
    tbl.addRow(r1);
    tbl.addRow(r2);
    tbl.addRow(r3);
    tbl.addRow(r4);
    tbl.print();
    return 0;
}
