/**
 * @file
 * Figure 10: throughput using multiple DSA instances.
 *
 * Paper shape: throughput scales linearly with the number of
 * devices, but beyond 64 KB transfers the aggregate write footprint
 * overflows the DDIO partition of the LLC ("leaky DMA"): dirty DDIO
 * lines are evicted to DRAM, the extra writeback traffic saturates
 * memory write bandwidth, and 3-4 instances land around 70-90 GB/s
 * instead of 90-120.
 */

#include "bench/common.hh"

namespace dsasim::bench
{
namespace
{

SimTask
devicePump(Rig &rig, int dev_idx, std::uint64_t ts, int jobs,
           Latch &done, std::uint64_t &bytes)
{
    // One submitting core per device, each with a private executor
    // ring through its own buffers; destination footprint per device
    // is sized to overflow the DDIO partition when aggregated.
    Core &core = rig.plat.core(static_cast<std::size_t>(dev_idx));
    DsaDevice &dev = rig.plat.dsa(static_cast<std::size_t>(dev_idx));
    Submitter sub(core, dev.params());
    WorkQueue &wq = dev.wq(0);
    Semaphore window(rig.sim, 32);
    Latch all(rig.sim, static_cast<std::uint64_t>(jobs));

    // 128 in-flight buffers per device, as dsa-perf-micros uses:
    // the write footprint is 128 * TS per device, so the aggregate
    // overflows the 14 MB DDIO partition only for TS >= ~32-64 KB.
    const int slots = 128;
    Addr src = rig.as->alloc(ts * static_cast<std::uint64_t>(slots));
    Addr dst = rig.as->alloc(ts * static_cast<std::uint64_t>(slots));

    std::vector<std::unique_ptr<CompletionRecord>> crs;
    struct W
    {
        static SimTask
        drain(CompletionRecord &cr, Semaphore &win, Latch &a)
        {
            if (!cr.isDone())
                co_await cr.done.wait();
            win.release();
            a.arrive();
        }
    };

    for (int i = 0; i < jobs; ++i) {
        co_await window.acquire();
        crs.push_back(std::make_unique<CompletionRecord>(rig.sim));
        WorkDescriptor d = dml::Executor::memMove(
            *rig.as, dst + static_cast<Addr>(i % slots) * ts,
            src + static_cast<Addr>(i % slots) * ts, ts);
        // Fig. 10 runs with DDIO-style allocating writes — that is
        // what makes the write footprint overflow the LLC's DDIO
        // ways and leak to DRAM.
        d.flags |= descflags::cacheControl;
        d.completion = crs.back().get();
        co_await sub.movdir64b(dev, wq, d);
        W::drain(*crs.back(), window, all);
        bytes += ts;
    }
    co_await all.wait();
    done.arrive();
}

} // namespace
} // namespace dsasim::bench

int
main()
{
    using namespace dsasim;
    using namespace dsasim::bench;

    const std::vector<std::uint64_t> sizes = {
        4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 2 << 20};
    const std::vector<unsigned> device_counts = {1, 2, 3, 4};

    std::vector<std::string> cols = {"devices"};
    for (auto s : sizes)
        cols.push_back(fmtSize(s));
    Table tbl("Fig 10: aggregate memcpy GB/s vs DSA instances", cols);

    // One rig per (devices, TS) cell; cells in a device-count row
    // fork off a shared snapshot and sweep concurrently.
    SweepRunner sweep;
    std::vector<Scenario> points;
    for (std::size_t i = 0;
         i < device_counts.size() * sizes.size(); ++i) {
        Rig::Options o;
        o.devices = device_counts[i / sizes.size()];
        points.emplace_back(o);
    }
    auto cells = sweepScenarios(
        sweep, points, [&](Rig &rig, std::size_t i) -> std::string {
            const unsigned n = device_counts[i / sizes.size()];
            const std::uint64_t ts = sizes[i % sizes.size()];
            const int jobs = static_cast<int>(
                std::max<std::uint64_t>(64, (48ull << 20) / ts));
            Latch done(rig.sim, n);
            std::vector<std::uint64_t> bytes(n, 0);
            Tick t0 = rig.sim.now();
            for (unsigned d = 0; d < n; ++d) {
                devicePump(rig, static_cast<int>(d), ts, jobs, done,
                           bytes[d]);
            }
            rig.sim.run();
            Tick elapsed = rig.sim.now() - t0;
            std::uint64_t total = 0;
            for (auto b : bytes)
                total += b;
            return fmt(achievedGBps(total, elapsed), 1);
        });
    for (std::size_t d = 0; d < device_counts.size(); ++d) {
        std::vector<std::string> row = {
            std::to_string(device_counts[d]) + " DSA"};
        for (std::size_t s = 0; s < sizes.size(); ++s)
            row.push_back(std::move(cells[d * sizes.size() + s]));
        tbl.addRow(std::move(row));
    }
    tbl.print();

    std::printf("\nDDIO partition: %.1f MB; destination footprint "
                "128 x TS per device.\n",
                static_cast<double>(
                    CacheModel(PlatformConfig::spr().mem.llc)
                        .ddioCapacityBytes()) /
                    (1 << 20));
    return 0;
}
