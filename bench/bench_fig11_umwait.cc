/**
 * @file
 * Figure 11: share of CPU cycles spent inside the UMWAIT intrinsic
 * (an optimized low-power wait state) while offloading Memory Copy
 * synchronously, across transfer sizes and batch sizes.
 *
 * Paper shape: from 4 KB upward the majority of cycles sit in
 * UMWAIT; with batching, almost all cycles do, at every size —
 * cycles the host can spend on other work.
 */

#include "bench/common.hh"

namespace dsasim::bench
{
namespace
{

SimTask
offloadLoop(Rig &rig, std::uint64_t ts, int bs, int iters,
            double &umwait_frac)
{
    Core &core = rig.plat.core(0);
    core.resetAccounting();
    Addr src = rig.as->alloc(ts * static_cast<std::uint64_t>(bs));
    Addr dst = rig.as->alloc(ts * static_cast<std::uint64_t>(bs));

    Tick t0 = rig.sim.now();
    for (int i = 0; i < iters; ++i) {
        rig.plat.mem().cache().invalidateAll();
        dml::OpResult r;
        if (bs == 1) {
            co_await rig.exec->executeHardware(
                core, dml::Executor::memMove(*rig.as, dst, src, ts),
                r);
        } else {
            std::vector<WorkDescriptor> subs;
            for (int b = 0; b < bs; ++b) {
                subs.push_back(dml::Executor::memMove(
                    *rig.as, dst + static_cast<Addr>(b) * ts,
                    src + static_cast<Addr>(b) * ts, ts));
            }
            co_await rig.exec->executeBatch(core, subs, r);
        }
    }
    Tick wall = rig.sim.now() - t0;
    umwait_frac = wall
        ? static_cast<double>(core.umwaitTicks()) /
              static_cast<double>(wall)
        : 0.0;
}

} // namespace
} // namespace dsasim::bench

int
main()
{
    using namespace dsasim;
    using namespace dsasim::bench;

    const std::vector<std::uint64_t> sizes = {
        64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10};
    const std::vector<int> batch_sizes = {1, 8, 64, 128};

    std::vector<std::string> cols = {"BS \\ TS"};
    for (auto s : sizes)
        cols.push_back(fmtSize(s));
    Table tbl("Fig 11: % of cycles in UMWAIT (sync offload)", cols);

    // All cells share one rig snapshot and fork concurrently.
    SweepRunner sweep;
    auto cells = sweepScenario(
        sweep, Scenario(Rig::Options{}),
        batch_sizes.size() * sizes.size(),
        [&](Rig &rig, std::size_t i) -> std::string {
            const int bs = batch_sizes[i / sizes.size()];
            const std::uint64_t ts = sizes[i % sizes.size()];
            double frac = 0;
            int iters = itersFor(
                ts * static_cast<std::uint64_t>(bs), 60);
            offloadLoop(rig, ts, bs, iters, frac);
            rig.sim.run();
            return fmt(100.0 * frac, 1);
        });
    for (std::size_t b = 0; b < batch_sizes.size(); ++b) {
        std::vector<std::string> row = {
            "BS:" + std::to_string(batch_sizes[b])};
        for (std::size_t s = 0; s < sizes.size(); ++s)
            row.push_back(std::move(cells[b * sizes.size() + s]));
        tbl.addRow(row);
    }
    tbl.print();
    return 0;
}
