/**
 * @file
 * Figure 12: per-core LLC occupancy over time while eight X-Mem
 * probes (4 MB working sets) co-run with four background copy
 * streams, either on cores (memcpy) or offloaded to DSA.
 *
 * The timeline mirrors the paper's: the background copiers run for
 * the whole window, the probes from ~1/12 to ~3/4 of it. With
 * software copies the copier cores dominate LLC occupancy; with DSA
 * offload the device's footprint stays pinned inside the small DDIO
 * partition.
 */

#include "apps/xmem.hh"
#include "bench/common.hh"

namespace dsasim::bench
{
namespace
{

constexpr Tick epoch = fromUs(100);
constexpr int epochs = 60;

SimTask
softwareCopier(Rig &rig, int core_id, Tick until)
{
    Core &core = rig.plat.core(static_cast<std::size_t>(core_id));
    const std::uint64_t ts = 4096;
    const std::uint64_t span = 32ull << 20;
    Addr src = rig.as->alloc(span);
    Addr dst = rig.as->alloc(span);
    std::uint64_t off = 0;
    while (rig.sim.now() < until) {
        auto r = rig.plat.kernels().memcpyOp(core, *rig.as, dst + off,
                                             src + off, ts);
        co_await core.busyFor(r.duration, "memcpy-bg");
        off = (off + ts) % span;
    }
}

SimTask
dsaCopier(Rig &rig, int core_id, Tick until)
{
    Core &core = rig.plat.core(static_cast<std::size_t>(core_id));
    const std::uint64_t ts = 4096;
    const int bs = 128;
    const std::uint64_t span = 32ull << 20;
    Addr src = rig.as->alloc(span);
    Addr dst = rig.as->alloc(span);
    std::uint64_t off = 0;
    while (rig.sim.now() < until) {
        std::vector<WorkDescriptor> subs;
        for (int b = 0; b < bs; ++b) {
            WorkDescriptor d = dml::Executor::memMove(
                *rig.as, dst + off, src + off, ts);
            d.flags |= descflags::cacheControl;
            subs.push_back(d);
            off = (off + ts) % span;
        }
        dml::OpResult r;
        co_await rig.exec->executeBatch(core, subs, r);
    }
}

SimTask
sampler(Rig &rig, TimeSeries &xmem_mb, TimeSeries &bg_mb,
        bool dsa_mode)
{
    CacheModel &llc = rig.plat.mem().cache();
    for (int e = 0; e <= epochs; ++e) {
        std::uint64_t xmem = 0, bg = 0;
        for (int c = 0; c < 8; ++c)
            xmem += llc.occupancyBytes(c);
        if (dsa_mode) {
            for (std::size_t d = 0; d < rig.plat.dsaCount(); ++d)
                bg += llc.occupancyBytes(
                    rig.plat.dsa(d).cacheOwnerId());
        } else {
            for (int c = 8; c < 12; ++c)
                bg += llc.occupancyBytes(c);
        }
        xmem_mb.add(rig.sim.now(),
                    static_cast<double>(xmem) / (1 << 20));
        bg_mb.add(rig.sim.now(),
                  static_cast<double>(bg) / (1 << 20));
        co_await rig.sim.delay(epoch);
    }
}

void
runPanel(const char *kind)
{
    Rig::Options o;
    o.devices = 4;
    runScenario(Scenario(o), [&](Rig &rig) {
    const bool dsa = std::string(kind) == "DSA";

    // Background copies: epochs 0..60; probes: epochs 5..45.
    Tick bg_until = static_cast<Tick>(epochs) * epoch;
    for (int c = 8; c < 12; ++c) {
        if (dsa)
            dsaCopier(rig, c, bg_until);
        else
            softwareCopier(rig, c, bg_until);
    }

    std::vector<std::unique_ptr<apps::XMemProbe>> probes;
    Histogram hist;
    struct Starter
    {
        static SimTask
        go(Rig &r, std::vector<std::unique_ptr<apps::XMemProbe>> &ps,
           Histogram &h)
        {
            co_await r.sim.delay(5 * epoch);
            for (int i = 0; i < 8; ++i) {
                ps.push_back(std::make_unique<apps::XMemProbe>(
                    r.plat, *r.as,
                    r.plat.core(static_cast<std::size_t>(i)),
                    4ull << 20, 2000 + static_cast<std::uint64_t>(i)));
                ps.back()->run(45 * epoch, h);
            }
        }
    };
    Starter::go(rig, probes, hist);

    TimeSeries xmem_mb, bg_mb;
    sampler(rig, xmem_mb, bg_mb, dsa);
    rig.sim.runUntil(bg_until + epoch);

    std::printf("\n== Fig 12 (%s): LLC occupancy (MB) over time ==\n",
                kind);
    std::printf("%-8s %-12s %-12s\n", "epoch", "xmem(8 cores)",
                dsa ? "DSA devices" : "memcpy(4 cores)");
    for (std::size_t i = 0; i < xmem_mb.size(); i += 5) {
        std::printf("%-8zu %-12.1f %-12.1f\n", i,
                    xmem_mb.data()[i].value, bg_mb.data()[i].value);
    }
    });
}

} // namespace
} // namespace dsasim::bench

int
main()
{
    dsasim::bench::runPanel("Software");
    dsasim::bench::runPanel("DSA");
    return 0;
}
