/**
 * @file
 * Figure 13: average access latency of eight X-Mem instances with
 * varying working-set sizes under three co-running scenarios:
 *
 *   None      - probes only
 *   Software  - four memcpy() processes streaming on separate cores
 *   DSA       - the same four copy streams offloaded to DSA
 *               (TS 4 KB, batch 128)
 *
 * Paper shape: software copies pollute the LLC and inflate probe
 * latency (~43% at a 4 MB working set); DSA offload leaves the
 * probes essentially at the None baseline because device reads do
 * not allocate and writes stay within the DDIO ways.
 */

#include "apps/xmem.hh"
#include "bench/common.hh"

namespace dsasim::bench
{
namespace
{

/** Four cores running a glibc-memcpy loop over a large footprint. */
SimTask
softwareCopier(Rig &rig, int core_id, Tick until)
{
    Core &core = rig.plat.core(static_cast<std::size_t>(core_id));
    const std::uint64_t ts = 4096;
    const std::uint64_t span = 32ull << 20;
    Addr src = rig.as->alloc(span);
    Addr dst = rig.as->alloc(span);
    std::uint64_t off = 0;
    while (rig.sim.now() < until) {
        auto r = rig.plat.kernels().memcpyOp(core, *rig.as,
                                             dst + off, src + off,
                                             ts);
        co_await core.busyFor(r.duration, "memcpy-bg");
        off = (off + ts) % span;
    }
}

/** One submitter streaming 4KB x BS:128 batches to DSA. */
SimTask
dsaCopier(Rig &rig, int core_id, Tick until)
{
    Core &core = rig.plat.core(static_cast<std::size_t>(core_id));
    const std::uint64_t ts = 4096;
    const int bs = 128;
    const std::uint64_t span = 32ull << 20;
    Addr src = rig.as->alloc(span);
    Addr dst = rig.as->alloc(span);
    std::uint64_t off = 0;
    while (rig.sim.now() < until) {
        std::vector<WorkDescriptor> subs;
        for (int b = 0; b < bs; ++b) {
            WorkDescriptor d = dml::Executor::memMove(
                *rig.as, dst + off, src + off, ts);
            d.flags |= descflags::cacheControl; // DDIO-confined
            subs.push_back(d);
            off = (off + ts) % span;
        }
        dml::OpResult r;
        co_await rig.exec->executeBatch(core, subs, r);
    }
}

double
scenario(const char *kind, std::uint64_t ws)
{
    // One DSA instance (the paper offloads to four groups of one
    // device); its four copy streams share the 30 GB/s fabric.
    Rig::Options o;
    o.devices = 1;
    const Tick horizon = fromUs(3000);

    std::vector<std::unique_ptr<apps::XMemProbe>> probes;
    std::vector<std::unique_ptr<Histogram>> hists;

    // Warm-up: probe working sets touched, background copiers
    // launched, and half a horizon of pollution build-up before the
    // measured window opens.
    Scenario sc(o, [&](Rig &rig) {
        for (int i = 0; i < 8; ++i) {
            probes.push_back(std::make_unique<apps::XMemProbe>(
                rig.plat, *rig.as,
                rig.plat.core(static_cast<std::size_t>(i)), ws,
                1000 + static_cast<std::uint64_t>(i)));
            hists.push_back(std::make_unique<Histogram>());
            probes.back()->warmAll();
        }
        if (std::string(kind) == "Software") {
            for (int c = 8; c < 12; ++c)
                softwareCopier(rig, c, rig.sim.now() + 2 * horizon);
        } else if (std::string(kind) == "DSA") {
            for (int c = 8; c < 12; ++c)
                dsaCopier(rig, c, rig.sim.now() + 2 * horizon);
        }
        rig.sim.runUntil(rig.sim.now() + horizon / 2);
    });

    return runScenario(sc, [&](Rig &rig) {
        // Measured probe phase.
        Tick until = rig.sim.now() + horizon;
        for (int i = 0; i < 8; ++i)
            probes[static_cast<std::size_t>(i)]->run(
                until, *hists[static_cast<std::size_t>(i)]);
        rig.sim.runUntil(until);

        double sum = 0;
        for (auto &h : hists)
            sum += h->mean();
        return sum / 8.0;
    });
}

} // namespace
} // namespace dsasim::bench

int
main()
{
    using namespace dsasim;
    using namespace dsasim::bench;

    const std::vector<std::uint64_t> working_sets = {
        1ull << 20, 2ull << 20, 4ull << 20, 8ull << 20,
        16ull << 20, 32ull << 20, 64ull << 20};

    std::vector<std::string> cols = {"scenario"};
    for (auto ws : working_sets)
        cols.push_back(fmtSize(ws));
    Table tbl("Fig 13: X-Mem mean read latency (ns), 8 instances",
              cols);

    std::vector<double> base;
    for (const char *kind : {"None", "Software", "DSA"}) {
        std::vector<std::string> row = {kind};
        std::size_t idx = 0;
        for (auto ws : working_sets) {
            double ns = scenario(kind, ws);
            if (std::string(kind) == "None")
                base.push_back(ns);
            char cell[64];
            if (std::string(kind) == "None") {
                std::snprintf(cell, sizeof(cell), "%.1f", ns);
            } else {
                std::snprintf(cell, sizeof(cell), "%.1f (+%.0f%%)",
                              ns,
                              100.0 * (ns - base[idx]) / base[idx]);
            }
            row.push_back(cell);
            ++idx;
        }
        tbl.addRow(row);
    }
    tbl.print();
    return 0;
}
