/**
 * @file
 * Figure 14: the G1 guideline — for a fixed total amount of work,
 * trade transfer size against batch size (<TS:BS> with TS*BS const).
 *
 * Paper shape: larger batches of smaller descriptors generally lose
 * a little throughput to per-descriptor management overhead; in
 * synchronous mode a weak optimum sits around 4-8 descriptors.
 */

#include "bench/common.hh"

namespace dsasim::bench
{
namespace
{

SimTask
syncTotal(Rig &rig, std::uint64_t total, int bs, int iters,
          Measure &out)
{
    Core &core = rig.plat.core(0);
    std::uint64_t ts = total / static_cast<std::uint64_t>(bs);
    Addr src = rig.as->alloc(total);
    Addr dst = rig.as->alloc(total);
    Histogram lat;
    for (int i = 0; i < iters; ++i) {
        rig.plat.mem().cache().invalidateAll();
        dml::OpResult r;
        if (bs == 1) {
            co_await rig.exec->executeHardware(
                core, dml::Executor::memMove(*rig.as, dst, src, ts),
                r);
        } else {
            std::vector<WorkDescriptor> subs;
            for (int b = 0; b < bs; ++b) {
                subs.push_back(dml::Executor::memMove(
                    *rig.as, dst + static_cast<Addr>(b) * ts,
                    src + static_cast<Addr>(b) * ts, ts));
            }
            co_await rig.exec->executeBatch(core, subs, r);
        }
        lat.add(toNs(r.latency));
    }
    out.meanNs = lat.mean();
    out.gbps = static_cast<double>(total) / out.meanNs;
}

} // namespace
} // namespace dsasim::bench

int
main()
{
    using namespace dsasim;
    using namespace dsasim::bench;

    const std::vector<std::uint64_t> totals = {256 << 10, 1 << 20,
                                               4 << 20};
    const std::vector<int> batch_sizes = {1,  2,  4,  8,
                                          16, 32, 64, 128};

    for (bool async : {false, true}) {
        std::vector<std::string> cols = {"total"};
        for (int bs : batch_sizes)
            cols.push_back("BS:" + std::to_string(bs));
        Table tbl(async
                      ? "Fig 14 (async depth 4): GB/s, TS = total/BS"
                      : "Fig 14 (sync): GB/s, TS = total/BS",
                  cols);
        // Cells share one rig snapshot and fork concurrently.
        SweepRunner sweep;
        auto cells = sweepScenario(
            sweep, Scenario(Rig::Options{}),
            totals.size() * batch_sizes.size(),
            [&](Rig &rig, std::size_t ci) -> std::string {
                const std::uint64_t total =
                    totals[ci / batch_sizes.size()];
                const int bs = batch_sizes[ci % batch_sizes.size()];
                Measure m;
                if (!async) {
                    syncTotal(rig, total, bs, 24, m);
                    rig.sim.run();
                } else {
                    // Async: keep 4 batch jobs in flight.
                    std::uint64_t ts =
                        total / static_cast<std::uint64_t>(bs);
                    Addr src = rig.as->alloc(total * 4);
                    Addr dst = rig.as->alloc(total * 4);
                    struct Drv
                    {
                        static SimTask
                        go(Rig &r, Addr s, Addr d, std::uint64_t size,
                           int bsz, int jobs, Measure &out)
                        {
                            Core &core = r.plat.core(0);
                            Semaphore window(r.sim, 4);
                            Latch all(
                                r.sim,
                                static_cast<std::uint64_t>(jobs));
                            struct W
                            {
                                static SimTask
                                drain(std::unique_ptr<dml::Job> j,
                                      Semaphore &win, Latch &a)
                                {
                                    if (!j->cr.isDone())
                                        co_await j->cr.done.wait();
                                    win.release();
                                    a.arrive();
                                }
                            };
                            Tick t0 = r.sim.now();
                            for (int i = 0; i < jobs; ++i) {
                                co_await window.acquire();
                                Addr so =
                                    s + static_cast<Addr>(i % 4) *
                                            size *
                                            static_cast<Addr>(bsz);
                                Addr dk =
                                    d + static_cast<Addr>(i % 4) *
                                            size *
                                            static_cast<Addr>(bsz);
                                std::unique_ptr<dml::Job> job;
                                if (bsz == 1) {
                                    job = r.exec->prepare(
                                        dml::Executor::memMove(
                                            *r.as, dk, so, size));
                                } else {
                                    std::vector<WorkDescriptor> subs;
                                    for (int b = 0; b < bsz; ++b) {
                                        subs.push_back(
                                            dml::Executor::memMove(
                                                *r.as,
                                                dk +
                                                    static_cast<Addr>(
                                                        b) *
                                                        size,
                                                so +
                                                    static_cast<Addr>(
                                                        b) *
                                                        size,
                                                size));
                                    }
                                    job = r.exec->prepareBatch(
                                        r.as->pasid(), subs);
                                }
                                co_await r.exec->submit(core, *job);
                                W::drain(std::move(job), window,
                                         all);
                            }
                            co_await all.wait();
                            out.gbps = achievedGBps(
                                static_cast<std::uint64_t>(jobs) *
                                    bsz * size,
                                r.sim.now() - t0);
                        }
                    };
                    Drv::go(rig, src, dst, ts, bs, 24, m);
                    rig.sim.run();
                }
                return fmt(m.gbps);
            });
        for (std::size_t t = 0; t < totals.size(); ++t) {
            std::vector<std::string> row = {fmtSize(totals[t])};
            for (std::size_t b = 0; b < batch_sizes.size(); ++b)
                row.push_back(
                    std::move(cells[t * batch_sizes.size() + b]));
            tbl.addRow(row);
        }
        tbl.print();
    }
    return 0;
}
