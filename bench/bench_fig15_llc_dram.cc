/**
 * @file
 * Figure 15: throughput and latency when source/destination data
 * resides in the LLC (L) versus local DRAM (D), batch size 1.
 *
 * Paper shape (G2/G3): LLC-resident data helps both the core and
 * DSA; offload pays off from ~4 KB synchronously and ~128 B
 * asynchronously even for cached data, while smaller transfers are
 * better served by the core when pollution is acceptable.
 */

#include "bench/common.hh"

namespace dsasim::bench
{
namespace
{

struct Placement
{
    const char *label;
    bool srcLlc;
    bool dstLlc;
};

/**
 * Warm or flush buffers to establish the labeled placement, then
 * run the op once and record the latency.
 */
/** Pull a range into the LLC without charging any timing/links. */
void
warmRange(Rig &rig, Addr va, std::uint64_t len, int owner)
{
    Addr cursor = va;
    std::uint64_t left = len;
    while (left > 0) {
        auto m = rig.as->pageTable().lookup(cursor);
        std::uint64_t run =
            std::min(left, m->vaBase + m->size - cursor);
        Addr pa = m->paBase + (cursor - m->vaBase);
        for (Addr a = lineAlignDown(pa); a < lineAlignUp(pa + run);
             a += cacheLineSize)
            rig.plat.mem().cache().cpuAccess(a, owner);
        cursor += run;
        left -= run;
    }
}

SimTask
placedLoop(Rig &rig, bool hw, Addr src, Addr dst,
           const Placement &p, std::uint64_t ts, int iters,
           Measure &out)
{
    Core &core = rig.plat.core(hw ? 0 : 1);
    Histogram lat;
    for (int i = 0; i < iters; ++i) {
        rig.plat.mem().cache().invalidateAll();
        // Establish placement: touch into LLC where requested.
        if (p.srcLlc)
            warmRange(rig, src, ts, 2);
        if (p.dstLlc)
            warmRange(rig, dst, ts, 2);
        dml::OpResult r;
        WorkDescriptor d =
            dml::Executor::memMove(*rig.as, dst, src, ts);
        // LLC-destination placements use the cache-control hint
        // (G3) so the device writes allocate into the LLC.
        if (p.dstLlc)
            d.flags |= descflags::cacheControl;
        if (hw)
            co_await rig.exec->executeHardware(core, d, r);
        else
            co_await rig.exec->executeSoftware(core, d, r);
        lat.add(toNs(r.latency));
    }
    out.meanNs = lat.mean();
    out.gbps = static_cast<double>(ts) / out.meanNs;
}

} // namespace
} // namespace dsasim::bench

int
main()
{
    using namespace dsasim;
    using namespace dsasim::bench;

    const std::vector<std::uint64_t> sizes = {
        256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10};
    const std::vector<Placement> placements = {
        {"L,L", true, true},
        {"L,D", true, false},
        {"D,L", false, true},
        {"D,D", false, false},
    };

    std::vector<std::string> cols = {"config", "metric"};
    for (auto s : sizes)
        cols.push_back(fmtSize(s));
    Table tbl("Fig 15: LLC vs DRAM placements (sync, BS 1)", cols);

    // One (hw, placement) pair per sweep point; every point forks
    // the same default-options snapshot.
    SweepRunner sweep;
    auto rows = sweepScenario(
        sweep, Scenario(Rig::Options{}), 2 * placements.size(),
        [&](Rig &rig,
            std::size_t i) -> std::vector<std::vector<std::string>> {
            const bool hw = i < placements.size();
            const Placement &p = placements[i % placements.size()];
            Addr src = rig.as->alloc(sizes.back());
            Addr dst = rig.as->alloc(sizes.back());
            std::vector<std::string> thr = {
                std::string(hw ? "DSA: " : "CPU: ") + p.label,
                "GB/s"};
            std::vector<std::string> lat = {
                std::string(hw ? "DSA: " : "CPU: ") + p.label, "ns"};
            for (auto s : sizes) {
                Measure m;
                placedLoop(rig, hw, src, dst, p, s, 40, m);
                rig.sim.run();
                thr.push_back(fmt(m.gbps));
                lat.push_back(fmt(m.meanNs, 0));
            }
            return {thr, lat};
        });
    for (auto &pair : rows)
        for (auto &row : pair)
            tbl.addRow(std::move(row));
    tbl.print();
    return 0;
}
