/**
 * @file
 * Figure 16b: DPDK-Vhost packet forwarding rate with and without DSA
 * acceleration, over packet sizes.
 *
 * Paper shape: the CPU forwarding rate drops as packets grow (copy
 * cycles dominate — ~30% of cycles at 512 B, 50+% above 1 KB); with
 * DSA the rate stays nearly flat, a 1.14-2.29x improvement for
 * packets of 256 B and larger. The bench also verifies in-order,
 * uncorrupted delivery through the reorder array.
 */

#include "apps/vhost.hh"
#include "bench/common.hh"

namespace dsasim::bench
{
namespace
{

struct Result
{
    double mpps = 0;
    std::uint64_t misordered = 0;
    std::uint64_t corrupt = 0;
};

Result
run(bool use_dsa, std::uint32_t pkt_bytes)
{
    Rig::Options o;
    o.devices = 1;
    // A group with two PEs: 512B-class descriptors are gap-bound on
    // one PE, and vhost deployments give the copy group >= 2 engines.
    o.engines = 2;

    const Tick horizon = fromUs(1500);
    std::unique_ptr<apps::Virtqueue> vq;
    std::unique_ptr<apps::VhostSwitch> host;
    std::unique_ptr<apps::GuestDriver> guest;

    // Warm-up: bring the virtqueue pipeline to steady state before
    // the measured window opens.
    Scenario sc(o, [&](Rig &rig) {
        vq = std::make_unique<apps::Virtqueue>(1024);
        apps::VhostSwitch::Config cfg;
        cfg.useDsa = use_dsa;
        cfg.packetBytes = pkt_bytes;
        host = std::make_unique<apps::VhostSwitch>(
            rig.plat, *rig.as, rig.plat.core(0), rig.exec.get(),
            *vq, cfg);
        guest = std::make_unique<apps::GuestDriver>(
            rig.plat, *rig.as, rig.plat.core(1), *vq, 2048, 512);
        host->run(horizon);
        guest->run(horizon);
        rig.sim.runUntil(fromUs(300));
    });

    return runScenario(sc, [&](Rig &rig) {
        std::uint64_t pkts0 = host->packetsForwarded();
        Tick t0 = rig.sim.now();
        rig.plat.core(0).resetAccounting();
        rig.sim.runUntil(horizon);

        Result res;
        res.mpps =
            static_cast<double>(host->packetsForwarded() - pkts0) /
            toUs(rig.sim.now() - t0);
        res.misordered = guest->orderViolations();
        res.corrupt = guest->payloadErrors();
        return res;
    });
}

struct LatResult
{
    double p50 = 0, p99 = 0, p999 = 0;
    std::uint64_t drops = 0;
};

LatResult
runLatency(bool use_dsa, std::uint32_t pkt_bytes, double mpps)
{
    Rig::Options o;
    o.devices = 1;
    o.engines = 2;

    const Tick horizon = fromUs(2500);
    std::unique_ptr<apps::Virtqueue> vq;
    std::unique_ptr<apps::VhostSwitch> host;
    std::unique_ptr<apps::GuestDriver> guest;

    // Warm caches/TLBs first; measure steady-state latency only.
    Scenario sc(o, [&](Rig &rig) {
        vq = std::make_unique<apps::Virtqueue>(1024);
        apps::VhostSwitch::Config cfg;
        cfg.useDsa = use_dsa;
        cfg.packetBytes = pkt_bytes;
        cfg.offeredMpps = mpps;
        host = std::make_unique<apps::VhostSwitch>(
            rig.plat, *rig.as, rig.plat.core(0), rig.exec.get(),
            *vq, cfg);
        guest = std::make_unique<apps::GuestDriver>(
            rig.plat, *rig.as, rig.plat.core(1), *vq, 2048, 512);
        host->run(horizon);
        guest->run(horizon);
        rig.sim.runUntil(fromUs(500));
        host->latencyHistogram().reset();
    });

    return runScenario(sc, [&](Rig &rig) {
        rig.sim.runUntil(horizon);
        LatResult r;
        r.p50 = host->latencyHistogram().percentile(50);
        r.p99 = host->latencyHistogram().percentile(99);
        r.p999 = host->latencyHistogram().percentile(99.9);
        r.drops = host->drops();
        return r;
    });
}

} // namespace
} // namespace dsasim::bench

int
main()
{
    using namespace dsasim;
    using namespace dsasim::bench;

    const std::vector<std::uint32_t> pkt_sizes = {64,  128, 256,
                                                  512, 1024, 1518};

    Table tbl("Fig 16b: Vhost forwarding rate (Mpps)",
              {"packet", "CPU", "DSA", "speedup", "order-errs",
               "payload-errs"});

    for (auto ps : pkt_sizes) {
        Result cpu = run(false, ps);
        Result dsa = run(true, ps);
        tbl.addRow({std::to_string(ps) + "B", fmt(cpu.mpps),
                    fmt(dsa.mpps), fmt(dsa.mpps / cpu.mpps),
                    std::to_string(dsa.misordered),
                    std::to_string(dsa.corrupt)});
    }
    tbl.print();

    // The §6.4 tail-latency claim: at a fixed offered load near the
    // CPU path's knee, DSA offload lowers the tail.
    Table lat("Vhost per-packet latency at offered load (us)",
              {"packet", "load Mpps", "CPU p50/p99/p99.9",
               "DSA p50/p99/p99.9", "CPU drops", "DSA drops"});
    for (auto ps : {std::uint32_t(512), std::uint32_t(1518)}) {
        double load = ps == 512 ? 5.0 : 4.5;
        LatResult c = runLatency(false, ps, load);
        LatResult d = runLatency(true, ps, load);
        lat.addRow({std::to_string(ps) + "B", fmt(load, 1),
                    fmt(c.p50, 1) + "/" + fmt(c.p99, 1) + "/" +
                        fmt(c.p999, 1),
                    fmt(d.p50, 1) + "/" + fmt(d.p99, 1) + "/" +
                        fmt(d.p999, 1),
                    std::to_string(c.drops),
                    std::to_string(d.drops)});
    }
    lat.print();
    return 0;
}
