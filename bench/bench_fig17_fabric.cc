/**
 * @file
 * Figure 17: libfabric-based results.
 *
 *   (a) native microbenchmark: Pingpong (PP) and one-direction
 *       bandwidth/RMA throughput vs message size, CPU vs DSA.
 *   (b) OSU-style MPI benchmarks: one-direction BW and AllReduce
 *       with 2/4/8 ranks.
 *
 * Paper shape: with SAR copies offloaded to DSA, large messages
 * (>= 32 KB) run several times faster than the core-copy path,
 * growing with message size.
 */

#include "apps/fabric.hh"
#include "bench/common.hh"

namespace dsasim::bench
{
namespace
{

struct PpResult
{
    double gbps = 0;
    double rttUs = 0;
};

PpResult
pingpong(bool dsa, std::uint64_t msg, int rounds)
{
    Rig::Options o;
    o.devices = 4; // libfabric spreads copies over the socket's DSAs
    return runScenario(Scenario(o), [&](Rig &rig) {
    apps::FabricChannel::Config cfg;
    cfg.useDsa = dsa;
    apps::FabricChannel fwd(rig.plat, *rig.as, rig.exec.get(),
                            rig.plat.core(0), rig.plat.core(1), cfg);
    apps::FabricChannel rev(rig.plat, *rig.as, rig.exec.get(),
                            rig.plat.core(1), rig.plat.core(0), cfg);
    Addr a = rig.as->alloc(msg);
    Addr b = rig.as->alloc(msg);

    PpResult res;
    struct Drv
    {
        static SimTask
        go(Rig &r, apps::FabricChannel &f, apps::FabricChannel &rv,
           Addr x, Addr y, std::uint64_t n, int rnds, PpResult &out)
        {
            Tick t0 = r.sim.now();
            for (int i = 0; i < rnds; ++i) {
                co_await f.transfer(x, y, n);
                co_await rv.transfer(y, x, n);
            }
            Tick elapsed = r.sim.now() - t0;
            out.rttUs = toUs(elapsed) / rnds;
            out.gbps = achievedGBps(
                2 * static_cast<std::uint64_t>(rnds) * n, elapsed);
        }
    };
    Drv::go(rig, fwd, rev, a, b, msg, rounds, res);
    rig.sim.run();
    return res;
    });
}

double
bandwidth(bool dsa, std::uint64_t msg, int count)
{
    Rig::Options o;
    o.devices = 4; // libfabric spreads copies over the socket's DSAs
    return runScenario(Scenario(o), [&](Rig &rig) {
    apps::FabricChannel::Config cfg;
    cfg.useDsa = dsa;
    apps::FabricChannel ch(rig.plat, *rig.as, rig.exec.get(),
                           rig.plat.core(0), rig.plat.core(1), cfg);
    Addr a = rig.as->alloc(msg);
    Addr b = rig.as->alloc(msg);
    double gbps = 0;
    struct Drv
    {
        static SimTask
        go(Rig &r, apps::FabricChannel &c, Addr x, Addr y,
           std::uint64_t n, int cnt, double &out)
        {
            Tick t0 = r.sim.now();
            for (int i = 0; i < cnt; ++i)
                co_await c.transfer(x, y, n);
            out = achievedGBps(static_cast<std::uint64_t>(cnt) * n,
                               r.sim.now() - t0);
        }
    };
    Drv::go(rig, ch, a, b, msg, count, gbps);
    rig.sim.run();
    return gbps;
    });
}

double
allreduceUs(bool dsa, unsigned ranks, std::uint64_t bytes)
{
    Rig::Options o;
    o.devices = 4; // libfabric spreads copies over the socket's DSAs
    return runScenario(Scenario(o), [&](Rig &rig) {
    apps::RingAllReduce::Config cfg;
    cfg.channel.useDsa = dsa;
    apps::RingAllReduce ar(rig.plat, *rig.as, rig.exec.get(), ranks,
                           cfg);
    double us = 0;
    struct Drv
    {
        static SimTask
        go(Rig &r, apps::RingAllReduce &a, std::uint64_t n,
           double &out)
        {
            Tick t0 = r.sim.now();
            co_await a.run(n);
            out = toUs(r.sim.now() - t0);
        }
    };
    Drv::go(rig, ar, bytes, us);
    rig.sim.run();
    return us;
    });
}

} // namespace
} // namespace dsasim::bench

int
main()
{
    using namespace dsasim;
    using namespace dsasim::bench;

    const std::vector<std::uint64_t> msgs = {
        4 << 10, 32 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20};

    {
        Table tbl("Fig 17a: libfabric Pingpong / BW, CPU vs DSA",
                  {"message", "PP cpu GB/s", "PP dsa GB/s", "PP x",
                   "BW cpu GB/s", "BW dsa GB/s", "BW x"});
        for (auto m : msgs) {
            int rounds = static_cast<int>(
                std::max<std::uint64_t>(4, (32ull << 20) / m / 2));
            PpResult pc = pingpong(false, m, rounds);
            PpResult pd = pingpong(true, m, rounds);
            double bc = bandwidth(false, m, rounds);
            double bd = bandwidth(true, m, rounds);
            tbl.addRow({fmtSize(m), fmt(pc.gbps), fmt(pd.gbps),
                        fmt(pd.gbps / pc.gbps), fmt(bc), fmt(bd),
                        fmt(bd / bc)});
        }
        tbl.print();
    }

    {
        Table tbl("Fig 17b: AllReduce latency (us), CPU vs DSA",
                  {"message", "ranks", "cpu us", "dsa us",
                   "speedup"});
        for (unsigned ranks : {2u, 4u, 8u}) {
            for (std::uint64_t m :
                 {std::uint64_t(256 << 10), std::uint64_t(1 << 20),
                  std::uint64_t(16 << 20)}) {
                double c = allreduceUs(false, ranks, m);
                double d = allreduceUs(true, ranks, m);
                tbl.addRow({fmtSize(m), std::to_string(ranks),
                            fmt(c, 1), fmt(d, 1), fmt(c / d)});
            }
        }
        tbl.print();
    }
    return 0;
}
