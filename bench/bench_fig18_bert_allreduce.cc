/**
 * @file
 * Figure 18 / Appendix A tail: MLPerf-BERT-style pretraining on top
 * of MPI_AllReduce — per iteration, a fixed compute phase followed
 * by an all-reduce of the gradient tensors (~340 M parameters, f32).
 *
 * Paper shape: the AllReduce itself runs ~2.8x (2 ranks) to ~3.3x
 * (8 ranks) faster with DSA offload, translating into a 3.7% / 8.8%
 * end-to-end training-step speedup.
 */

#include "apps/fabric.hh"
#include "bench/common.hh"

namespace dsasim::bench
{
namespace
{

struct IterResult
{
    double arMs = 0;
    double iterMs = 0;
};

IterResult
trainStep(bool dsa, unsigned ranks, std::uint64_t grad_bytes,
          double compute_ms)
{
    Rig::Options o;
    o.devices = 4; // libfabric spreads copies over the socket's DSAs
    return runScenario(Scenario(o), [&](Rig &rig) {
    apps::RingAllReduce::Config cfg;
    cfg.channel.useDsa = dsa;
    apps::RingAllReduce ar(rig.plat, *rig.as, rig.exec.get(), ranks,
                           cfg);
    IterResult res;
    struct Drv
    {
        static SimTask
        go(Rig &r, apps::RingAllReduce &a, std::uint64_t n,
           double comp_ms, IterResult &out)
        {
            // Forward/backward compute phase (off the copy path).
            co_await r.sim.delay(fromMs(comp_ms));
            Tick t0 = r.sim.now();
            co_await a.run(n);
            out.arMs = toUs(r.sim.now() - t0) / 1000.0;
            out.iterMs = comp_ms + out.arMs;
        }
    };
    Drv::go(rig, ar, grad_bytes, compute_ms, res);
    rig.sim.run();
    return res;
    });
}

} // namespace
} // namespace dsasim::bench

int
main()
{
    using namespace dsasim;
    using namespace dsasim::bench;

    // BERT-large: ~340M f32 parameters of gradients per step.
    const std::uint64_t grads = 340ull << 20;

    Table tbl("Fig 18: BERT pretraining step, AllReduce CPU vs DSA",
              {"ranks", "AR cpu ms", "AR dsa ms", "AR speedup",
               "iter cpu ms", "iter dsa ms", "e2e gain %"});

    struct Setting
    {
        unsigned ranks;
        double computeMs;
    };
    // Per-rank compute shrinks as the batch is split across ranks
    // (values chosen so the software iteration matches the paper's
    // AllReduce share of a BERT pretraining step).
    const std::vector<Setting> settings = {{2, 2930.0}, {8, 1370.0}};

    for (const auto &s : settings) {
        IterResult cpu = trainStep(false, s.ranks, grads,
                                   s.computeMs);
        IterResult dsa = trainStep(true, s.ranks, grads,
                                   s.computeMs);
        double gain = 100.0 * (cpu.iterMs - dsa.iterMs) / cpu.iterMs;
        tbl.addRow({std::to_string(s.ranks), fmt(cpu.arMs, 1),
                    fmt(dsa.arMs, 1), fmt(cpu.arMs / dsa.arMs),
                    fmt(cpu.iterMs, 1), fmt(dsa.iterMs, 1),
                    fmt(gain, 1)});
    }
    tbl.print();
    return 0;
}
