/**
 * @file
 * Figure 19: CacheBench-style driving of the MiniCache with DTO
 * transparent offload.
 *
 * Value sizes follow the paper's deployment profile: ~4.8% of
 * copies are >= 8 KB but they carry the overwhelming share of the
 * bytes, so offloading just those through DTO's 8 KB threshold moves
 * almost all copied data to DSA. Reported: get/set operation rate
 * and tail latency per thread configuration (one hardware core per
 * software thread), with gains flattening once the four shared WQs
 * saturate.
 */

#include <cmath>

#include "apps/minicache.hh"
#include "bench/common.hh"
#include "sim/random.hh"

namespace dsasim::bench
{
namespace
{

/** ~95.2% small values (256B-4KB), ~4.8% large (8KB-2MB). */
std::uint64_t
valueSize(Rng &rng)
{
    double f = rng.uniform();
    double lg = rng.chance(0.048) ? 13.0 + f * 8.0  // 8KB..2MB
                                  : 8.0 + f * 4.0;  // 256B..4KB
    auto v = static_cast<std::uint64_t>(std::pow(2.0, lg));
    return std::min<std::uint64_t>(v, 2u << 20);
}

struct Stats
{
    double mops = 0;  ///< million cache ops per second
    double p99Us = 0;
    double p9999Us = 0;
    double offloadedByteShare = 0;
};

SimTask
worker(Platform &plat, AddressSpace &as, apps::MiniCache &cache,
       int core_id, std::uint64_t keys, int ops, Histogram &lat,
       Latch &done, std::uint64_t seed)
{
    Core &core = plat.core(static_cast<std::size_t>(core_id));
    Simulation &sim = plat.sim();
    Rng rng(seed);
    Addr scratch = as.alloc(2 << 20);
    for (int i = 0; i < ops; ++i) {
        std::uint64_t key = rng.range(0, keys - 1);
        Tick t0 = sim.now();
        if (rng.chance(0.1)) {
            co_await cache.set(core, key, scratch, valueSize(rng));
        } else {
            std::uint64_t len = 0;
            bool hit = false;
            co_await cache.get(core, key, scratch, len, hit);
            if (!hit)
                co_await cache.set(core, key, scratch,
                                   valueSize(rng));
        }
        lat.add(toUs(sim.now() - t0));
    }
    done.arrive();
}

Stats
run(unsigned threads, bool use_dsa, int ops_per_thread)
{
    // Four shared WQs (the paper's deployment): one SWQ + one
    // engine on each of the socket's four DSA instances.
    Rig::Options o;
    o.devices = 4;
    o.wqSize = 16;
    o.engines = 1;
    o.wqMode = WorkQueue::Mode::Shared;

    std::unique_ptr<Dto> dto;
    std::unique_ptr<apps::MiniCache> cache;

    // Enough keys that the hot set dwarfs the LLC: copies run cold,
    // as in the paper's 64 GB cloud cache.
    const std::uint64_t keys = 16384;

    // Warm-up: populate phase (timed into a discarded histogram).
    Scenario sc(o, [&](Rig &rig) {
        Dto::Config dc;
        dc.threshold = use_dsa ? 8192 : ~std::uint64_t(0);
        dto = std::make_unique<Dto>(*rig.exec, rig.plat.kernels(),
                                    dc);
        apps::MiniCache::Config cc;
        cc.capacityBytes = 4ull << 30;
        cache = std::make_unique<apps::MiniCache>(rig.plat, *rig.as,
                                                  *dto, cc);
        Histogram warm;
        Latch done(rig.sim, 1);
        worker(rig.plat, *rig.as, *cache, 0, keys,
               static_cast<int>(keys), warm, done, 1);
        rig.sim.run();
    });

    return runScenario(sc, [&](Rig &rig) {
        Histogram lat;
        Latch done(rig.sim, threads);
        Tick t0 = rig.sim.now();
        for (unsigned t = 0; t < threads; ++t) {
            worker(rig.plat, *rig.as, *cache, static_cast<int>(t),
                   keys, ops_per_thread, lat, done, 100 + t);
        }
        rig.sim.run();
        Tick elapsed = rig.sim.now() - t0;

        Stats s;
        s.mops = static_cast<double>(lat.count()) / toUs(elapsed);
        s.p99Us = lat.percentile(99.0);
        s.p9999Us = lat.percentile(99.99);
        std::uint64_t total_bytes =
            dto->bytesOffloaded + dto->bytesOnCpu;
        s.offloadedByteShare =
            total_bytes
                ? 100.0 * static_cast<double>(dto->bytesOffloaded) /
                      static_cast<double>(total_bytes)
                : 0.0;
        return s;
    });
}

} // namespace
} // namespace dsasim::bench

int
main()
{
    using namespace dsasim;
    using namespace dsasim::bench;

    const std::vector<unsigned> threads = {2, 4, 8, 12, 16};
    const int ops = 6000;

    Table tbl("Fig 19: CacheBench ops rate and tail latency "
              "(#cores = #threads, 4 shared WQs)",
              {"threads", "sw Mops", "dsa Mops", "rate x",
               "sw p99 us", "dsa p99 us", "sw p99.99", "dsa p99.99",
               "offloaded bytes %"});

    for (unsigned t : threads) {
        Stats sw = run(t, false, ops);
        Stats hw = run(t, true, ops);
        tbl.addRow({std::to_string(t), fmt(sw.mops, 3),
                    fmt(hw.mops, 3), fmt(hw.mops / sw.mops),
                    fmt(sw.p99Us, 1), fmt(hw.p99Us, 1),
                    fmt(sw.p9999Us, 1), fmt(hw.p9999Us, 1),
                    fmt(hw.offloadedByteShare, 1)});
    }
    tbl.print();
    return 0;
}
