/**
 * @file
 * Figure 21: SPDK NVMe/TCP target read performance versus the number
 * of target cores, with the Data Digest CRC32 computed three ways:
 * not at all, on the cores with ISA-L, or offloaded to DSA.
 *
 * Paper shape: DSA-offloaded digests track the no-digest
 * configuration closely — both saturate the network with few cores
 * (≈6 for 16 KB random reads, ≈2 for 128 KB sequential) — while
 * ISA-L needs several more cores to saturate and shows higher
 * latency at any fixed core count.
 */

#include "apps/nvmetcp.hh"
#include "bench/common.hh"

namespace dsasim::bench
{
namespace
{

struct Point
{
    double kiops = 0;
    double latUs = 0;
};

Point
run(apps::NvmeTcpTarget::Digest digest, unsigned cores,
    std::uint64_t io_bytes, Tick horizon,
    apps::NvmeTcpTarget::Kind kind =
        apps::NvmeTcpTarget::Kind::Read)
{
    // SPDK's accel framework path: a shared WQ, two engines.
    Rig::Options o;
    o.devices = 1;
    o.wqSize = 32;
    o.engines = 2;
    o.wqMode = WorkQueue::Mode::Shared;

    return runScenario(Scenario(o), [&](Rig &rig) {
        apps::NvmeTcpTarget::Config cfg;
        cfg.kind = kind;
        cfg.digest = digest;
        cfg.targetCores = cores;
        cfg.ioBytes = io_bytes;
        apps::NvmeTcpTarget target(rig.plat, *rig.as,
                                   rig.exec.get(), cfg);
        target.run(horizon);
        rig.sim.run();

        if (target.crcMismatches() != 0)
            std::fprintf(stderr, "warn: %llu digest mismatches!\n",
                         static_cast<unsigned long long>(
                             target.crcMismatches()));

        Point p;
        p.kiops = target.iops() / 1000.0;
        p.latUs = target.meanLatencyUs();
        return p;
    });
}

} // namespace
} // namespace dsasim::bench

int
main()
{
    using namespace dsasim;
    using namespace dsasim::bench;

    const std::vector<unsigned> core_counts = {1, 2, 4, 6, 8, 10};

    struct Workload
    {
        const char *name;
        std::uint64_t ioBytes;
        Tick horizon;
    };
    const std::vector<Workload> workloads = {
        {"16KB random read", 16 << 10, fromMs(8)},
        {"128KB sequential read", 128 << 10, fromMs(12)},
    };

    for (const auto &w : workloads) {
        std::vector<std::string> cols = {"digest", "metric"};
        for (auto c : core_counts)
            cols.push_back(std::to_string(c) + " cores");
        Table tbl(std::string("Fig 21: ") + w.name, cols);

        const struct
        {
            apps::NvmeTcpTarget::Digest mode;
            const char *label;
        } modes[] = {
            {apps::NvmeTcpTarget::Digest::None, "no digest"},
            {apps::NvmeTcpTarget::Digest::Dsa, "DSA"},
            {apps::NvmeTcpTarget::Digest::IsaL, "ISA-L"},
        };

        for (const auto &m : modes) {
            std::vector<std::string> iops_row = {m.label, "KIOPS"};
            std::vector<std::string> lat_row = {m.label, "lat us"};
            for (auto c : core_counts) {
                Point p = run(m.mode, c, w.ioBytes, w.horizon);
                iops_row.push_back(fmt(p.kiops, 0));
                lat_row.push_back(fmt(p.latUs, 0));
            }
            tbl.addRow(iops_row);
            tbl.addRow(lat_row);
        }
        tbl.print();
    }

    // Extension beyond the paper's Fig. 21: the write path, where
    // the accel framework uses DSA's DIF Insert instead of CRC32.
    {
        std::vector<std::string> cols = {"protect", "metric"};
        for (auto c : core_counts)
            cols.push_back(std::to_string(c) + " cores");
        Table tbl("Extension: 16KB writes with T10-DIF protection",
                  cols);
        const struct
        {
            apps::NvmeTcpTarget::Digest mode;
            const char *label;
        } modes[] = {
            {apps::NvmeTcpTarget::Digest::None, "no DIF"},
            {apps::NvmeTcpTarget::Digest::Dsa, "DSA DIF insert"},
            {apps::NvmeTcpTarget::Digest::IsaL, "ISA-L DIF insert"},
        };
        for (const auto &m : modes) {
            std::vector<std::string> iops_row = {m.label, "KIOPS"};
            for (auto c : core_counts) {
                Point p = run(m.mode, c, 16 << 10, fromMs(6),
                              apps::NvmeTcpTarget::Kind::Write);
                iops_row.push_back(fmt(p.kiops, 0));
            }
            tbl.addRow(iops_row);
        }
        tbl.print();
    }
    return 0;
}
