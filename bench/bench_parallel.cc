/**
 * @file
 * Host-side payoff of partitioned parallel simulation (DESIGN.md
 * §11): one Fig. 6-style 4-socket scenario — dense per-socket DSA
 * memmove pipelines at queue depth 32 plus cross-socket UPI push
 * traffic — simulated on 1, 2 and 4 worker threads, self-relative
 * wall-clock. The scenario, its event streams and its stream hash
 * are identical for every thread count (that equality is asserted on
 * every run, and is the part of the gate that runs everywhere); the
 * only thing the thread count may change is how long the host takes.
 *
 * The cross-link protocol ships 256 KiB blocks, and
 * ClusterConfig::lookaheadBytes raises the channel lookahead floor
 * by that serialization time (~4.4 us at 60 GB/s), so conservative
 * epochs are long enough to amortize the two barriers each costs.
 *
 * Metrics:
 *   events_per_sec at 1/2/4 threads (best of --trials), and
 *   speedup_2 / speedup_4 relative to the 1-thread run. events,
 *   end_us and stream_hash are simulated quantities — bit-identical
 *   across thread counts, trials and hosts — and --check compares
 *   them to the committed JSON exactly.
 *
 * Usage:
 *   bench_parallel [--n=DESC] [--trials=3] [--json=PATH]
 *                  [--check=PATH [--tol=0.2]]
 *
 * --check loads a committed JSON and fails if (a) the simulated
 * fingerprint (events, end_us, stream_hash) differs at all, (b) the
 * serial event rate fell more than --tol below the committed value,
 * or (c) — only on hosts with >= 4 hardware threads, since speedup
 * on fewer cores measures the scheduler, not the simulator —
 * speedup_4 is below 2.5x.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.hh"
#include "driver/cluster.hh"
#include "sim/random.hh"

namespace dsasim::bench
{
namespace
{

using Clock = std::chrono::steady_clock;

struct Params
{
    int descriptors = 1500; ///< per socket
    int depth = 32;         ///< outstanding descriptors per socket
    int trials = 3;
    std::uint64_t descSize = 64 << 10;
    std::uint64_t blockBytes = 256 << 10; ///< UPI push block
    int blocks = 96;                      ///< pushes per socket
};

ClusterConfig
clusterConfig(const Params &p)
{
    ClusterConfig cc;
    cc.sockets = 4;
    cc.socket = PlatformConfig::spr();
    cc.socket.numCores = 2;
    cc.socket.numDsaDevices = 1;
    cc.socket.dsaTopology = DsaTopology::basic(32, 4);
    for (auto &node : cc.socket.mem.nodes)
        node.capacityBytes = 1ull << 30;
    // The protocol ships blockBytes per push; declaring that to the
    // channels buys epochs long enough to amortize barrier cost.
    cc.lookaheadBytes = p.blockBytes;
    return cc;
}

/** Depth-@p windowed memmove pipeline on one socket. */
SimTask
socketLoad(Simulation &sim, Platform &plat, dml::Executor &exec,
           std::vector<WorkDescriptor> ring, int total, int depth)
{
    Core &core = plat.core(0);
    Semaphore window(sim, static_cast<std::uint64_t>(depth));
    Latch all(sim, static_cast<std::uint64_t>(total));

    struct Waiter
    {
        static SimTask
        drain(std::unique_ptr<dml::Job> job, Semaphore &win,
              Latch &done)
        {
            if (!job->cr.isDone())
                co_await job->cr.done.wait();
            win.release();
            done.arrive();
        }
    };

    for (int i = 0; i < total; ++i) {
        const WorkDescriptor &d =
            ring[static_cast<std::size_t>(i) % ring.size()];
        if (i > 0 && static_cast<std::size_t>(i) % ring.size() == 0)
            plat.mem().cache().invalidateAll();
        co_await window.acquire();
        auto job = exec.prepare(d);
        co_await exec.submit(core, *job);
        Waiter::drain(std::move(job), window, all);
    }
    co_await all.wait();
}

/** Cross-socket stream: @p blocks pushes to the ring neighbor. */
SimTask
remoteLoad(RemotePort &port, std::uint64_t block, int blocks)
{
    for (int i = 0; i < blocks; ++i)
        co_await port.push(block);
}

struct RunResult
{
    double secs = 0; ///< best-of-trials wall clock
    std::uint64_t streamHash = 0;
    std::uint64_t events = 0;
    Tick endTick = 0;
    std::uint64_t epochs = 0;
};

RunResult
runAt(unsigned threads, const Params &p)
{
    RunResult best;
    for (int trial = 0; trial < p.trials; ++trial) {
        SocketCluster cl(clusterConfig(p));
        cl.enableStreamHash(true);
        std::vector<std::unique_ptr<dml::Executor>> execs;
        for (unsigned s = 0; s < cl.socketCount(); ++s) {
            Platform &plat = cl.plat(s);
            dml::ExecutorConfig ec;
            ec.path = dml::Path::Hardware;
            execs.push_back(std::make_unique<dml::Executor>(
                cl.domainSim(s), plat.mem(), plat.kernels(),
                std::vector<DsaDevice *>{&plat.dsa(0)}, ec));
            dml::Executor *e = execs.back().get();
            AddressSpace &as = plat.mem().createSpace();
            const int count = 16;
            Addr src = as.alloc(p.descSize * count);
            Addr dst = as.alloc(p.descSize * count);
            std::vector<WorkDescriptor> ring;
            for (int i = 0; i < count; ++i) {
                ring.push_back(dml::Executor::memMove(
                    as, dst + static_cast<Addr>(i) * p.descSize,
                    src + static_cast<Addr>(i) * p.descSize,
                    p.descSize));
            }
            socketLoad(cl.domainSim(s), plat, *e, std::move(ring),
                       p.descriptors, p.depth);
            remoteLoad(cl.port(s, (s + 1) % cl.socketCount()),
                       p.blockBytes, p.blocks);
        }

        const auto t0 = Clock::now();
        cl.run(threads);
        const double secs =
            std::chrono::duration<double>(Clock::now() - t0)
                .count();

        RunResult r;
        r.secs = secs;
        r.streamHash = cl.streamHash();
        r.events = cl.eventsExecuted();
        r.endTick = cl.endTick();
        r.epochs = cl.partitions().epochsRun();
        if (trial == 0) {
            best = r;
        } else {
            // Trials are fresh identical clusters: simulated results
            // must be bit-identical, only wall-clock may move.
            if (r.streamHash != best.streamHash ||
                r.events != best.events ||
                r.endTick != best.endTick) {
                std::fprintf(stderr,
                             "bench_parallel: trial %d diverged at "
                             "%u threads (hash %016llx vs %016llx)\n",
                             trial, threads,
                             static_cast<unsigned long long>(
                                 r.streamHash),
                             static_cast<unsigned long long>(
                                 best.streamHash));
                std::exit(1);
            }
            best.secs = std::min(best.secs, r.secs);
        }
    }
    return best;
}

struct Metrics
{
    unsigned hwThreads = 0;
    std::uint64_t events = 0;
    Tick endTick = 0;
    std::uint64_t streamHash = 0;
    std::uint64_t epochs = 0;
    double rate1 = 0, rate2 = 0, rate4 = 0;
    double speedup2 = 0, speedup4 = 0;
};

Metrics
measure(const Params &p)
{
    Metrics m;
    m.hwThreads =
        std::max(1u, std::thread::hardware_concurrency());

    RunResult r1 = runAt(1, p);
    RunResult r2 = runAt(2, p);
    RunResult r4 = runAt(4, p);

    // The determinism gate proper: thread count must not leak into
    // the simulation. This holds (and is enforced) on every host.
    if (r1.streamHash != r2.streamHash ||
        r1.streamHash != r4.streamHash || r1.events != r2.events ||
        r1.events != r4.events || r1.endTick != r2.endTick ||
        r1.endTick != r4.endTick) {
        std::fprintf(stderr,
                     "bench_parallel: FAIL — thread count changed "
                     "the simulation (hashes %016llx / %016llx / "
                     "%016llx)\n",
                     static_cast<unsigned long long>(r1.streamHash),
                     static_cast<unsigned long long>(r2.streamHash),
                     static_cast<unsigned long long>(r4.streamHash));
        std::exit(1);
    }

    m.events = r1.events;
    m.endTick = r1.endTick;
    m.streamHash = r1.streamHash;
    m.epochs = r4.epochs;
    const double ev = static_cast<double>(r1.events);
    m.rate1 = ev / r1.secs;
    m.rate2 = ev / r2.secs;
    m.rate4 = ev / r4.secs;
    m.speedup2 = r1.secs / r2.secs;
    m.speedup4 = r1.secs / r4.secs;
    return m;
}

void
emit(std::FILE *f, const Metrics &m)
{
    std::fprintf(
        f,
        "{\n"
        "  \"benchmark\": \"parallel\",\n"
        "  \"sockets\": 4,\n"
        "  \"hw_threads\": %u,\n"
        "  \"events\": %llu,\n"
        "  \"end_us\": %.3f,\n"
        "  \"stream_hash\": \"%016llx\",\n"
        "  \"epochs\": %llu,\n"
        "  \"serial_events_per_sec\": %.0f,\n"
        "  \"t2_events_per_sec\": %.0f,\n"
        "  \"t4_events_per_sec\": %.0f,\n"
        "  \"speedup_2\": %.3f,\n"
        "  \"speedup_4\": %.3f,\n"
        "  \"note\": \"speedups are self-relative wall-clock and "
        "only meaningful when hw_threads >= 4; events/end_us/"
        "stream_hash are simulated quantities, identical on every "
        "host and thread count\"\n"
        "}\n",
        m.hwThreads, static_cast<unsigned long long>(m.events),
        toUs(m.endTick),
        static_cast<unsigned long long>(m.streamHash),
        static_cast<unsigned long long>(m.epochs), m.rate1, m.rate2,
        m.rate4, m.speedup2, m.speedup4);
}

/** Pull `"key": <number>` out of a JSON blob (flat, known keys). */
bool
jsonNumber(const std::string &text, const std::string &key,
           double &out)
{
    auto at = text.find("\"" + key + "\"");
    if (at == std::string::npos)
        return false;
    at = text.find(':', at);
    if (at == std::string::npos)
        return false;
    out = std::strtod(text.c_str() + at + 1, nullptr);
    return true;
}

/** Pull `"key": "value"` out of a JSON blob (flat, known keys). */
bool
jsonString(const std::string &text, const std::string &key,
           std::string &out)
{
    auto at = text.find("\"" + key + "\"");
    if (at == std::string::npos)
        return false;
    at = text.find(':', at);
    if (at == std::string::npos)
        return false;
    auto q1 = text.find('"', at + 1);
    if (q1 == std::string::npos)
        return false;
    auto q2 = text.find('"', q1 + 1);
    if (q2 == std::string::npos)
        return false;
    out = text.substr(q1 + 1, q2 - q1 - 1);
    return true;
}

int
check(const Metrics &m, const std::string &path, double tol)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "bench_parallel: cannot open %s\n",
                     path.c_str());
        return 2;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();
    int failures = 0;

    // Simulated fingerprint: exact equality, any host.
    {
        char hash[32];
        std::snprintf(hash, sizeof(hash), "%016llx",
                      static_cast<unsigned long long>(m.streamHash));
        std::string want;
        if (jsonString(text, "stream_hash", want)) {
            const bool ok = want == hash;
            std::printf("%-22s %16s  committed %16s  %s\n",
                        "stream_hash", hash, want.c_str(),
                        ok ? "ok" : "DIVERGED");
            failures += ok ? 0 : 1;
        }
        double want_events = 0;
        if (jsonNumber(text, "events", want_events)) {
            const bool ok = static_cast<double>(m.events) ==
                            want_events;
            std::printf("%-22s %16llu  committed %16.0f  %s\n",
                        "events",
                        static_cast<unsigned long long>(m.events),
                        want_events, ok ? "ok" : "DIVERGED");
            failures += ok ? 0 : 1;
        }
    }

    // Host throughput: committed-value regression gate.
    double want_rate = 0;
    if (jsonNumber(text, "serial_events_per_sec", want_rate) &&
        want_rate > 0) {
        const double floor = want_rate * (1.0 - tol);
        const bool ok = m.rate1 >= floor;
        std::printf("%-22s %16.0f  committed %16.0f  %s\n",
                    "serial_events_per_sec", m.rate1, want_rate,
                    ok ? "ok" : "REGRESSED");
        failures += ok ? 0 : 1;
    }

    // Parallel payoff: only meaningful with the cores to show it.
    if (m.hwThreads >= 4) {
        const double wantSpeedup = 2.5;
        const bool ok = m.speedup4 >= wantSpeedup;
        std::printf("%-22s %16.3f  required  %16.3f  %s\n",
                    "speedup_4", m.speedup4, wantSpeedup,
                    ok ? "ok" : "TOO SLOW");
        failures += ok ? 0 : 1;
    } else {
        std::printf("speedup_4              %16.3f  (not gated: "
                    "host has %u hardware thread(s))\n",
                    m.speedup4, m.hwThreads);
    }
    return failures ? 1 : 0;
}

} // namespace
} // namespace dsasim::bench

int
main(int argc, char **argv)
{
    using namespace dsasim::bench;
    Params p;
    std::string json_path, check_path;
    double tol = 0.20;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a.rfind("--json=", 0) == 0)
            json_path = a.substr(7);
        else if (a.rfind("--check=", 0) == 0)
            check_path = a.substr(8);
        else if (a.rfind("--tol=", 0) == 0)
            tol = std::strtod(a.c_str() + 6, nullptr);
        else if (a.rfind("--n=", 0) == 0)
            p.descriptors =
                static_cast<int>(std::strtol(a.c_str() + 4,
                                             nullptr, 0));
        else if (a.rfind("--trials=", 0) == 0)
            p.trials =
                static_cast<int>(std::strtol(a.c_str() + 9,
                                             nullptr, 0));
        else {
            std::fprintf(stderr,
                         "usage: bench_parallel [--n=DESC] "
                         "[--trials=T] [--json=PATH] "
                         "[--check=PATH [--tol=F]]\n");
            return 2;
        }
    }

    Metrics m = measure(p);
    emit(stdout, m);
    if (!json_path.empty()) {
        std::FILE *f = std::fopen(json_path.c_str(), "w");
        if (!f) {
            std::perror("bench_parallel: fopen");
            return 2;
        }
        emit(f, m);
        std::fclose(f);
    }
    if (!check_path.empty())
        return check(m, check_path, tol);
    return 0;
}
