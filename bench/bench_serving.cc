/**
 * @file
 * Open-loop multi-tenant serving under overload: the "millions of
 * users" scenario the ROADMAP names, on a 2-socket cluster.
 *
 * DSASIM_TENANTS tenants (default 1024) split across the sockets,
 * each PASID-isolated in its own address space, submit to one shared
 * (ENQCMD) WQ per socket through the dml::ServingNode degradation
 * ladder (serving.hh). The arrival mix (DSASIM_ARRIVALS) blends a
 * large population of small poisson "victim" tenants with a few
 * bursty large-payload aggressors whose on-phases overload the SWQ:
 * ENQCMD retry storms, bounded jittered backoff, circuit-breaker
 * sheds and CPU fallback all happen mid-run, while a cross-socket
 * UPI digest stream keeps the partition barrier honest.
 *
 * Two policy arms run back to back:
 *   no-qos: the bare SWQ threshold (the paper's Fig. 9 world) —
 *           aggressor bursts collapse victim tail latency;
 *   qos:    WqAdmission installed (per-tenant token buckets +
 *           Opportunistic class for aggressors) — victims keep
 *           their tail while aggressors throttle/shed.
 *
 * Each arm runs at 1 and 4 worker threads; the simulated fingerprint
 * (events, end_us, stream_hash) must be bit-identical across thread
 * counts even mid-overload — asserted on every run. --check compares
 * fingerprints and counters exactly against the committed JSON,
 * rate/latency metrics within --tol, and enforces the robustness
 * invariants (zero hangs, degradation actually engaged, retries
 * bounded, qos arm protects the victim tail).
 *
 * Usage:
 *   bench_serving [--n=REQ/TENANT] [--tenants=N] [--json=PATH]
 *                 [--check=PATH [--tol=0.25]]
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hh"
#include "dml/serving.hh"
#include "driver/cluster.hh"
#include "dsa/qos.hh"
#include "sim/traffic.hh"

namespace dsasim::bench
{
namespace
{

using Clock = std::chrono::steady_clock;

constexpr const char *kDefaultMix =
    "poisson:rate=1200,weight=14,bytes=2048;"
    "bursty:rate=2500,factor=24,period=32,duty=0.25,weight=2,"
    "bytes=32768";

struct Params
{
    unsigned tenants = 1024; ///< across the cluster
    std::uint64_t requests = 16; ///< per tenant
    std::uint64_t seed = 1;
    std::string mixSpec = kDefaultMix;
};

ClusterConfig
clusterConfig()
{
    ClusterConfig cc;
    cc.sockets = 2;
    cc.socket = PlatformConfig::spr();
    cc.socket.numCores = 4;
    cc.socket.numDsaDevices = 1;
    // Two shared WQs in one group, deliberately modest so overload
    // is provable, not theoretical: WQ0 is the high-priority portal
    // (the qos arm reserves it for victims), WQ1 the low-priority
    // bulk portal with a reduced ENQCMD threshold. The no-qos arm
    // sends every tenant through WQ0, so the second portal idles
    // there and both arms share one hardware capacity.
    DsaTopology topo;
    topo.groups = {{}};
    topo.wqs = {{0, WorkQueue::Mode::Shared, 32, 8, 0},
                {0, WorkQueue::Mode::Shared, 32, 1, 24}};
    topo.engines = {0, 0};
    cc.socket.dsaTopology = topo;
    for (auto &node : cc.socket.mem.nodes)
        node.capacityBytes = 1ull << 30;
    cc.lookaheadBytes = 16 << 10;
    return cc;
}

dml::ServingConfig
servingConfig(const Params &p)
{
    dml::ServingConfig sc;
    sc.maxRetries = 3;
    sc.backoffBase = fromNs(200);
    sc.backoffCap = fromUs(2);
    sc.backoffJitter = 0.5;
    sc.outstandingCap = 24;
    sc.cpuFallback = true;
    sc.breaker.window = 16;
    sc.breaker.openThreshold = 0.5;
    sc.breaker.cooldown = fromUs(150);
    sc.breaker.probes = 4;
    sc.seed = p.seed;
    return sc;
}

/** Cross-socket digest stream: keeps UPI traffic mid-overload. */
SimTask
digestLoad(Simulation &sim, RemotePort &port, int blocks)
{
    for (int i = 0; i < blocks; ++i) {
        co_await sim.delay(fromUs(120));
        co_await port.push(16 << 10);
    }
}

/** Per-socket serving rig (host-side bookkeeping). */
struct SocketRig
{
    std::unique_ptr<dml::Executor> exec;
    std::unique_ptr<dml::ServingNode> node;
    std::unique_ptr<WqAdmission> admission;
    std::unique_ptr<Latch> done;
};

struct ArmResult
{
    double secs = 0;
    std::uint64_t streamHash = 0;
    std::uint64_t events = 0;
    Tick endTick = 0;

    dml::TenantStats total;
    std::uint64_t breakerOpens = 0;
    std::uint64_t breakerCloses = 0;
    std::uint64_t breakerShed = 0;
    std::uint64_t admissionThrottled = 0;
    std::uint64_t admissionBusy = 0;

    double p50 = 0, p99 = 0, p999 = 0; ///< all tenants, us
    double victimP99 = 0;              ///< poisson class
    double aggressorP99 = 0;           ///< bursty class
    double goodputMBps = 0;
};

/**
 * Build and run the scenario once. Tenant t lives on socket t%2,
 * its arrival stream and backoff jitter are counter-based functions
 * of (seed, t), so nothing here depends on the worker thread count.
 */
ArmResult
runArm(const Params &p, bool qos, unsigned threads)
{
    const ArrivalMix mix = ArrivalMix::parse(p.mixSpec);
    SocketCluster cl(clusterConfig());
    cl.enableStreamHash(true);

    std::vector<SocketRig> rigs(cl.socketCount());
    const dml::ServingConfig sc = servingConfig(p);

    for (unsigned s = 0; s < cl.socketCount(); ++s) {
        Platform &plat = cl.plat(s);
        SocketRig &rig = rigs[s];
        dml::ExecutorConfig ec;
        ec.path = dml::Path::Hardware;
        rig.exec = std::make_unique<dml::Executor>(
            cl.domainSim(s), plat.mem(), plat.kernels(),
            std::vector<DsaDevice *>{&plat.dsa(0)}, ec);
        rig.node = std::make_unique<dml::ServingNode>(cl.domainSim(s),
                                                      *rig.exec, sc);
        if (qos) {
            // Admission on the bulk portal only: every tenant routed
            // there runs Opportunistic under a token bucket sized
            // below the aggressors' burst appetite.
            WqAdmission::Config ac;
            ac.bucket = {1500, 6};
            ac.defaultClass = QosClass::Opportunistic;
            ac.opportunisticFraction = 0.5;
            rig.admission = std::make_unique<WqAdmission>(ac);
            plat.dsa(0).installAdmission(1, rig.admission.get());
        }
    }

    for (unsigned s = 0; s < cl.socketCount(); ++s) {
        // Socket s hosts tenants {s, s+K, s+2K, ...}.
        const std::uint64_t onSocket =
            (p.tenants - s + cl.socketCount() - 1) /
            cl.socketCount();
        rigs[s].done = std::make_unique<Latch>(
            cl.domainSim(s), onSocket * p.requests);
    }

    for (unsigned t = 0; t < p.tenants; ++t) {
        const unsigned s = t % cl.socketCount();
        Platform &plat = cl.plat(s);
        SocketRig &rig = rigs[s];
        const ArrivalClass &cls = mix.classFor(t);
        const bool aggressor = cls.pattern == ArrivalPattern::Bursty;

        AddressSpace &as = plat.mem().createSpace();
        const std::uint64_t bytes = cls.payloadBytes;
        Addr src = as.alloc(bytes);
        Addr dst = as.alloc(bytes);

        // Tenant workload: KV value copy / integrity scan / columnar
        // pattern scan, cycling by request index (the span opcode
        // kernels of src/ops, per the ROADMAP's serving item).
        auto make = [&as, src, dst,
                     bytes](std::uint64_t k) -> WorkDescriptor {
            switch (k % 3) {
              case 0:
                return dml::Executor::memMove(as, dst, src, bytes);
              case 1:
                return dml::Executor::crc32(as, src, bytes);
              default:
                return dml::Executor::comparePattern(as, src, 0,
                                                     bytes);
            }
        };

        // qos arm: aggressors route to the low-priority admitted
        // bulk portal; victims keep the high-priority WQ to
        // themselves. no-qos arm: everyone fights over WQ0.
        WorkQueue &wq =
            plat.dsa(0).wq(qos && aggressor ? 1 : 0);
        dml::TenantSession &sess = rig.node->addTenant(
            as.pasid(), plat.core(t % 4), plat.dsa(0), wq, make);

        rig.node->openLoop(sess, ArrivalStream(p.seed, t, cls),
                           p.requests, *rig.done);
    }

    for (unsigned s = 0; s < cl.socketCount(); ++s) {
        digestLoad(cl.domainSim(s),
                   cl.port(s, (s + 1) % cl.socketCount()), 48);
    }

    const auto t0 = Clock::now();
    cl.run(threads);
    const double secs =
        std::chrono::duration<double>(Clock::now() - t0).count();

    ArmResult r;
    r.secs = secs;
    r.streamHash = cl.streamHash();
    r.events = cl.eventsExecuted();
    r.endTick = cl.endTick();

    Histogram victims;
    Histogram aggressors;
    for (unsigned s = 0; s < cl.socketCount(); ++s) {
        const SocketRig &rig = rigs[s];
        if (!rig.done->done()) {
            std::fprintf(stderr,
                         "bench_serving: HANG — socket %u finished "
                         "with %llu request(s) unaccounted\n",
                         s,
                         static_cast<unsigned long long>(
                             rig.done->pending()));
            std::exit(1);
        }
        r.total.merge(rig.node->aggregate());
        for (const auto &sess : rig.node->sessions()) {
            r.breakerOpens += sess->breaker.opens;
            r.breakerCloses += sess->breaker.closes;
            r.breakerShed += sess->breaker.shed;
        }
        if (rig.admission) {
            r.admissionThrottled += rig.admission->totalThrottled;
            r.admissionBusy += rig.admission->totalBusy;
        }
    }
    // Per-class tails: tenant t's class is mix.classFor(t); sessions
    // were added in tenant order, socket-interleaved.
    for (unsigned t = 0; t < p.tenants; ++t) {
        const unsigned s = t % cl.socketCount();
        const auto &sess =
            *rigs[s].node->sessions()[t / cl.socketCount()];
        const bool aggressor =
            mix.classFor(t).pattern == ArrivalPattern::Bursty;
        (aggressor ? aggressors : victims)
            .merge(sess.stats.latencyUs);
    }

    r.p50 = r.total.latencyUs.percentile(50);
    r.p99 = r.total.latencyUs.percentile(99);
    r.p999 = r.total.latencyUs.percentile(99.9);
    r.victimP99 = victims.percentile(99);
    r.aggressorP99 = aggressors.percentile(99);
    r.goodputMBps = static_cast<double>(r.total.goodputBytes) /
                    1e6 / toSec(r.endTick);
    return r;
}

struct Metrics
{
    unsigned hwThreads = 0;
    unsigned tenants = 0;
    ArmResult noqos;
    ArmResult qos;
    double rate1 = 0; ///< serial events/sec (no-qos arm)
};

/** Run one arm at 1 and 4 threads; the fingerprints must agree. */
ArmResult
runArmChecked(const Params &p, bool qos)
{
    ArmResult r1 = runArm(p, qos, 1);
    ArmResult r4 = runArm(p, qos, 4);
    if (r1.streamHash != r4.streamHash || r1.events != r4.events ||
        r1.endTick != r4.endTick) {
        std::fprintf(stderr,
                     "bench_serving: FAIL — DSASIM_PARTITIONS "
                     "changed the %s simulation mid-overload "
                     "(hash %016llx vs %016llx, events %llu vs "
                     "%llu)\n",
                     qos ? "qos" : "no-qos",
                     static_cast<unsigned long long>(r1.streamHash),
                     static_cast<unsigned long long>(r4.streamHash),
                     static_cast<unsigned long long>(r1.events),
                     static_cast<unsigned long long>(r4.events));
        std::exit(1);
    }
    return r1;
}

Metrics
measure(const Params &p)
{
    Metrics m;
    m.hwThreads =
        std::max(1u, std::thread::hardware_concurrency());
    m.tenants = p.tenants;
    m.noqos = runArmChecked(p, false);
    m.qos = runArmChecked(p, true);
    m.rate1 =
        static_cast<double>(m.noqos.events) / m.noqos.secs;
    return m;
}

void
emitArm(std::FILE *f, const char *prefix, const ArmResult &r)
{
    std::fprintf(
        f,
        "  \"%s_stream_hash\": \"%016llx\",\n"
        "  \"%s_events\": %llu,\n"
        "  \"%s_end_us\": %.3f,\n"
        "  \"%s_arrivals\": %llu,\n"
        "  \"%s_completed\": %llu,\n"
        "  \"%s_hw_ok\": %llu,\n"
        "  \"%s_fallbacks\": %llu,\n"
        "  \"%s_dropped\": %llu,\n"
        "  \"%s_retries\": %llu,\n"
        "  \"%s_give_ups\": %llu,\n"
        "  \"%s_shed_breaker\": %llu,\n"
        "  \"%s_breaker_opens\": %llu,\n"
        "  \"%s_breaker_closes\": %llu,\n"
        "  \"%s_admission_throttled\": %llu,\n"
        "  \"%s_admission_busy\": %llu,\n"
        "  \"%s_p50_us\": %.3f,\n"
        "  \"%s_p99_us\": %.3f,\n"
        "  \"%s_p999_us\": %.3f,\n"
        "  \"%s_victim_p99_us\": %.3f,\n"
        "  \"%s_aggressor_p99_us\": %.3f,\n"
        "  \"%s_goodput_mbps\": %.1f,\n",
        prefix, static_cast<unsigned long long>(r.streamHash),
        prefix, static_cast<unsigned long long>(r.events),
        prefix, toUs(r.endTick),
        prefix, static_cast<unsigned long long>(r.total.arrivals),
        prefix,
        static_cast<unsigned long long>(r.total.completed()),
        prefix, static_cast<unsigned long long>(r.total.hwOk),
        prefix, static_cast<unsigned long long>(r.total.fallbacks),
        prefix, static_cast<unsigned long long>(r.total.dropped),
        prefix, static_cast<unsigned long long>(r.total.retries),
        prefix, static_cast<unsigned long long>(r.total.giveUps),
        prefix,
        static_cast<unsigned long long>(r.total.shedBreaker),
        prefix, static_cast<unsigned long long>(r.breakerOpens),
        prefix, static_cast<unsigned long long>(r.breakerCloses),
        prefix,
        static_cast<unsigned long long>(r.admissionThrottled),
        prefix, static_cast<unsigned long long>(r.admissionBusy),
        prefix, r.p50, prefix, r.p99, prefix, r.p999,
        prefix, r.victimP99, prefix, r.aggressorP99,
        prefix, r.goodputMBps);
}

void
emit(std::FILE *f, const Metrics &m)
{
    std::fprintf(f,
                 "{\n"
                 "  \"benchmark\": \"serving\",\n"
                 "  \"sockets\": 2,\n"
                 "  \"tenants\": %u,\n"
                 "  \"hw_threads\": %u,\n",
                 m.tenants, m.hwThreads);
    emitArm(f, "noqos", m.noqos);
    emitArm(f, "qos", m.qos);
    std::fprintf(
        f,
        "  \"serial_events_per_sec\": %.0f,\n"
        "  \"note\": \"all *_stream_hash/*_events/counters are "
        "simulated quantities, bit-identical for any "
        "DSASIM_PARTITIONS (asserted at 1 vs 4 threads every run); "
        "latency/goodput are simulated too but gated with --tol "
        "for cross-compiler slack; serial_events_per_sec is host "
        "wall-clock\"\n"
        "}\n",
        m.rate1);
}

bool
jsonNumber(const std::string &text, const std::string &key,
           double &out)
{
    auto at = text.find("\"" + key + "\"");
    if (at == std::string::npos)
        return false;
    at = text.find(':', at);
    if (at == std::string::npos)
        return false;
    out = std::strtod(text.c_str() + at + 1, nullptr);
    return true;
}

bool
jsonString(const std::string &text, const std::string &key,
           std::string &out)
{
    auto at = text.find("\"" + key + "\"");
    if (at == std::string::npos)
        return false;
    at = text.find(':', at);
    if (at == std::string::npos)
        return false;
    auto q1 = text.find('"', at + 1);
    if (q1 == std::string::npos)
        return false;
    auto q2 = text.find('"', q1 + 1);
    if (q2 == std::string::npos)
        return false;
    out = text.substr(q1 + 1, q2 - q1 - 1);
    return true;
}

int
checkArm(const std::string &text, const char *prefix,
         const ArmResult &r, double tol)
{
    int failures = 0;
    auto exact = [&](const char *key, std::uint64_t got) {
        double want = 0;
        const std::string full = std::string(prefix) + "_" + key;
        if (!jsonNumber(text, full, want))
            return;
        const bool ok = static_cast<double>(got) == want;
        std::printf("%-28s %16llu  committed %16.0f  %s\n",
                    full.c_str(),
                    static_cast<unsigned long long>(got), want,
                    ok ? "ok" : "DIVERGED");
        failures += ok ? 0 : 1;
    };
    auto banded = [&](const char *key, double got) {
        double want = 0;
        const std::string full = std::string(prefix) + "_" + key;
        if (!jsonNumber(text, full, want) || want <= 0)
            return;
        const bool ok = got >= want * (1.0 - tol) &&
                        got <= want * (1.0 + tol);
        std::printf("%-28s %16.3f  committed %16.3f  %s\n",
                    full.c_str(), got, want,
                    ok ? "ok" : "OUT OF BAND");
        failures += ok ? 0 : 1;
    };

    char hash[32];
    std::snprintf(hash, sizeof(hash), "%016llx",
                  static_cast<unsigned long long>(r.streamHash));
    std::string want;
    if (jsonString(text, std::string(prefix) + "_stream_hash",
                   want)) {
        const bool ok = want == hash;
        std::printf("%-28s %16s  committed %16s  %s\n",
                    (std::string(prefix) + "_stream_hash").c_str(),
                    hash, want.c_str(), ok ? "ok" : "DIVERGED");
        failures += ok ? 0 : 1;
    }
    exact("events", r.events);
    exact("arrivals", r.total.arrivals);
    exact("completed", r.total.completed());
    exact("hw_ok", r.total.hwOk);
    exact("fallbacks", r.total.fallbacks);
    exact("dropped", r.total.dropped);
    exact("retries", r.total.retries);
    exact("breaker_opens", r.breakerOpens);
    banded("p99_us", r.p99);
    banded("victim_p99_us", r.victimP99);
    banded("goodput_mbps", r.goodputMBps);
    return failures;
}

int
check(const Params &p, const Metrics &m, const std::string &path,
      double tol)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "bench_serving: cannot open %s\n",
                     path.c_str());
        return 2;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();
    int failures = 0;

    failures += checkArm(text, "noqos", m.noqos, tol);
    failures += checkArm(text, "qos", m.qos, tol);

    // Robustness invariants, independent of the committed file.
    auto invariant = [&](const char *what, bool ok) {
        std::printf("%-44s %s\n", what, ok ? "ok" : "VIOLATED");
        failures += ok ? 0 : 1;
    };
    const std::uint64_t offered =
        static_cast<std::uint64_t>(p.tenants) * p.requests;
    for (const ArmResult *r : {&m.noqos, &m.qos}) {
        const bool isQos = r == &m.qos;
        const char *tag = isQos ? "qos" : "noqos";
        char buf[96];
        std::snprintf(buf, sizeof(buf),
                      "%s: every arrival terminal (zero hangs)",
                      tag);
        invariant(buf, r->total.arrivals == offered &&
                           r->total.completed() + r->total.dropped ==
                               offered);
        std::snprintf(buf, sizeof(buf),
                      "%s: overload engaged degradation", tag);
        invariant(buf, r->total.fallbacks > 0 &&
                           r->total.retries > 0 &&
                           r->breakerOpens > 0);
        std::snprintf(buf, sizeof(buf),
                      "%s: retries bounded by policy", tag);
        invariant(buf,
                  r->total.retries <=
                      r->total.issued *
                          servingConfig(p).maxRetries);
    }
    invariant("qos: admission policy exercised",
              m.qos.admissionThrottled + m.qos.admissionBusy > 0);
    invariant("qos: victim p99 no worse than no-qos",
              m.qos.victimP99 <= m.noqos.victimP99 * (1.0 + tol));
    return failures ? 1 : 0;
}

} // namespace
} // namespace dsasim::bench

int
main(int argc, char **argv)
{
    using namespace dsasim::bench;
    Params p;
    p.tenants = dsasim::tenantCountFromEnv(1024);
    {
        dsasim::ArrivalMix probe =
            dsasim::ArrivalMix::fromEnv(kDefaultMix);
        (void)probe; // parse errors surface before the run
    }
    if (const char *s = std::getenv("DSASIM_ARRIVALS"); s && *s)
        p.mixSpec = s;

    std::string json_path, check_path;
    double tol = 0.25;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a.rfind("--json=", 0) == 0)
            json_path = a.substr(7);
        else if (a.rfind("--check=", 0) == 0)
            check_path = a.substr(8);
        else if (a.rfind("--tol=", 0) == 0)
            tol = std::strtod(a.c_str() + 6, nullptr);
        else if (a.rfind("--n=", 0) == 0)
            p.requests = std::strtoull(a.c_str() + 4, nullptr, 0);
        else if (a.rfind("--tenants=", 0) == 0)
            p.tenants = static_cast<unsigned>(
                std::strtoul(a.c_str() + 10, nullptr, 0));
        else if (a.rfind("--seed=", 0) == 0)
            p.seed = std::strtoull(a.c_str() + 7, nullptr, 0);
        else {
            std::fprintf(
                stderr,
                "usage: bench_serving [--n=REQ] [--tenants=N] "
                "[--seed=S] [--json=PATH] "
                "[--check=PATH [--tol=F]]\n");
            return 2;
        }
    }
    if (p.tenants < 2) {
        std::fprintf(stderr,
                     "bench_serving: need at least 2 tenants\n");
        return 2;
    }

    Metrics m = measure(p);
    emit(stdout, m);
    if (!json_path.empty()) {
        std::FILE *f = std::fopen(json_path.c_str(), "w");
        if (!f) {
            std::perror("bench_serving: fopen");
            return 2;
        }
        emit(f, m);
        std::fclose(f);
    }
    if (!check_path.empty())
        return check(p, m, check_path, tol);
    return 0;
}
