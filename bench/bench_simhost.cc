/**
 * @file
 * Host-side performance of the simulator itself (google-benchmark):
 * event-queue throughput, cache-model access rate, functional
 * operation speed, and end-to-end simulated-descriptor rate. These
 * numbers bound how much simulated work the figure benches can
 * afford; they are about dsasim, not about DSA.
 *
 * `bench_simhost --kernel-json[=PATH]` skips google-benchmark and
 * instead runs one mixed event-kernel workload through both the
 * current kernel and an in-binary replica of the original
 * std::function + binary-heap kernel, writing events/sec for both
 * (and the speedup) as JSON to PATH (default BENCH_kernel.json).
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <coroutine>
#include <functional>
#include <string_view>

#include "bench/common.hh"
#include "sim/random.hh"
#include "ops/crc32.hh"
#include "ops/delta.hh"

namespace
{

using namespace dsasim;

/// @name Event-kernel self-benchmark (--kernel-json mode).
/// @{

/**
 * Replica of the pre-rewrite event kernel: type-erased
 * std::function<void()> callbacks (coroutines wrapped in one) in a
 * single (when, seq) binary min-heap. Kept in this binary so the
 * speedup of the current kernel stays measurable after the original
 * implementation is gone.
 */
class LegacyKernel
{
  public:
    Tick now() const { return cur; }

    void
    scheduleAt(Tick when, std::function<void()> fn)
    {
        push(when, std::move(fn));
    }

    void
    scheduleIn(Tick delay_ticks, std::function<void()> fn)
    {
        push(cur + delay_ticks, std::move(fn));
    }

    void
    resumeAt(Tick when, std::coroutine_handle<> h)
    {
        push(when, [h] { h.resume(); });
    }

    std::uint64_t eventsExecuted() const { return executed; }

    Tick
    run()
    {
        while (!q.empty()) {
            std::pop_heap(q.begin(), q.end(), laterFirst);
            Ev ev = std::move(q.back());
            q.pop_back();
            cur = ev.when;
            ++executed;
            ev.fn();
        }
        return cur;
    }

  private:
    struct Ev
    {
        Tick when;
        std::uint64_t seq;
        std::function<void()> fn;
    };

    static bool
    laterFirst(const Ev &a, const Ev &b)
    {
        if (a.when != b.when)
            return a.when > b.when;
        return a.seq > b.seq;
    }

    void
    push(Tick when, std::function<void()> fn)
    {
        q.push_back(Ev{when, nextSeq++, std::move(fn)});
        std::push_heap(q.begin(), q.end(), laterFirst);
    }

    std::vector<Ev> q;
    Tick cur = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t executed = 0;
};

template <typename Kernel>
struct KernelDelay
{
    Kernel &k;
    Tick when;

    bool await_ready() const { return when <= k.now(); }
    void
    await_suspend(std::coroutine_handle<> h)
    {
        k.resumeAt(when, h);
    }
    void await_resume() const {}
};

/**
 * A self-rescheduling chain of callback events. The capture (this +
 * two 64-bit values) exceeds libstdc++'s 16-byte std::function SBO,
 * so the legacy kernel heap-allocates every event while the current
 * kernel stores it inline — the dominant allocation pattern of the
 * device models.
 */
template <typename Kernel>
struct Bouncer
{
    Kernel &k;
    Rng rng;
    int remaining;
    std::uint64_t acc = 0;

    void
    step()
    {
        if (remaining-- <= 0)
            return;
        // Masked draws keep the workload's own cost tiny so the
        // measurement stays dominated by the kernels under test.
        // Delays are ns-scale in picosecond ticks, like the model
        // latencies of the device/memory models.
        const std::uint32_t r = rng.next32();
        Tick d = 1 + (r & 0x3fffff); // up to ~4.2 us
        if ((r >> 22) % 50 == 0)
            d += 1ull << 24; // rare long timer, beyond the calendar
        const std::uint64_t a = r;
        const std::uint64_t b = ~static_cast<std::uint64_t>(r);
        k.scheduleIn(d, [this, a, b] {
            acc ^= a + b;
            step();
        });
    }
};

/** A coroutine repeatedly sleeping — the sync-primitive hot path. */
template <typename Kernel>
SimTask
pinger(Kernel &k, Rng rng, int n, std::uint64_t &acc)
{
    for (int i = 0; i < n; ++i) {
        co_await KernelDelay<Kernel>{
            k, k.now() + 1 + (rng.next32() & 0x7fffff)};
        ++acc;
    }
}

struct KernelRunStats
{
    double seconds = 0;
    std::uint64_t events = 0;
    Tick finalTick = 0;
};

template <typename Kernel>
KernelRunStats
kernelWorkload()
{
    // Concurrency sized like a full platform sim: ~1.5K events in
    // flight (cores + engines + links + sync primitives), roughly
    // two-thirds callbacks / one-third coroutine wake-ups.
    const auto t0 = std::chrono::steady_clock::now();
    Kernel k;
    std::vector<std::unique_ptr<Bouncer<Kernel>>> bouncers;
    std::uint64_t acc = 0;
    for (int i = 0; i < 1024; ++i) {
        bouncers.push_back(std::make_unique<Bouncer<Kernel>>(
            Bouncer<Kernel>{k, Rng(7u * i + 1), 500}));
        bouncers.back()->step();
    }
    for (int i = 0; i < 512; ++i)
        pinger(k, Rng(1000u + i), 500, acc);

    KernelRunStats s;
    s.finalTick = k.run();
    s.events = k.eventsExecuted();
    s.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    return s;
}

int
kernelSelfBench(const char *path)
{
    // Interleave the repetitions of the two kernels so frequency
    // ramp-up and cache warmth drift affect both equally, and take
    // each kernel's best rep.
    const int reps = 7;
    kernelWorkload<Simulation>();    // warm-up, untimed
    kernelWorkload<LegacyKernel>();
    KernelRunStats cur = kernelWorkload<Simulation>();
    KernelRunStats legacy = kernelWorkload<LegacyKernel>();
    for (int r = 1; r < reps; ++r) {
        KernelRunStats s = kernelWorkload<Simulation>();
        if (s.seconds < cur.seconds)
            cur = s;
        KernelRunStats l = kernelWorkload<LegacyKernel>();
        if (l.seconds < legacy.seconds)
            legacy = l;
    }

    const bool consistent = cur.events == legacy.events &&
                            cur.finalTick == legacy.finalTick;
    const double cur_rate =
        static_cast<double>(cur.events) / cur.seconds;
    const double legacy_rate =
        static_cast<double>(legacy.events) / legacy.seconds;

    std::FILE *f = std::fopen(path, "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"benchmark\": \"simhost_kernel\",\n"
                 "  \"events\": %llu,\n"
                 "  \"final_tick\": %llu,\n"
                 "  \"replay_consistent\": %s,\n"
                 "  \"events_per_sec\": %.0f,\n"
                 "  \"legacy_events_per_sec\": %.0f,\n"
                 "  \"speedup\": %.3f\n"
                 "}\n",
                 static_cast<unsigned long long>(cur.events),
                 static_cast<unsigned long long>(cur.finalTick),
                 consistent ? "true" : "false",
                 cur_rate, legacy_rate, cur_rate / legacy_rate);
    std::fclose(f);
    std::printf("kernel: %.2fM events/s  legacy: %.2fM events/s  "
                "speedup: %.2fx  (%s -> %s)\n",
                cur_rate / 1e6, legacy_rate / 1e6,
                cur_rate / legacy_rate,
                consistent ? "replay consistent" : "REPLAY MISMATCH",
                path);
    return consistent ? 0 : 2;
}

/// @}

void
BM_EventQueue(benchmark::State &state)
{
    for (auto _ : state) {
        Simulation sim;
        int sink = 0;
        for (int i = 0; i < 10000; ++i)
            sim.scheduleAt(static_cast<Tick>(i), [&sink] { ++sink; });
        sim.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventQueue);

void
BM_CacheAccess(benchmark::State &state)
{
    CacheModel::Config cfg;
    cfg.sizeBytes = 8 << 20;
    cfg.ways = 8;
    cfg.ddioWays = 2;
    CacheModel c(cfg);
    Rng rng(1);
    for (auto _ : state) {
        Addr a = rng.range(0, (64 << 20) / 64 - 1) * 64;
        benchmark::DoNotOptimize(c.cpuAccess(a, 1, false).hit);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void
BM_Crc32c(benchmark::State &state)
{
    std::vector<std::uint8_t> buf(
        static_cast<std::size_t>(state.range(0)), 0x5a);
    for (auto _ : state)
        benchmark::DoNotOptimize(crc32cFull(buf.data(), buf.size()));
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(4096)->Arg(65536);

void
BM_DeltaCreate(benchmark::State &state)
{
    std::vector<std::uint8_t> a(65536, 1), b(65536, 1);
    for (std::size_t i = 0; i < b.size(); i += 512)
        b[i] = 2;
    for (auto _ : state) {
        auto r = deltaCreate(a.data(), b.data(), a.size(),
                             2 * a.size());
        benchmark::DoNotOptimize(r.record.size());
    }
    state.SetBytesProcessed(state.iterations() * 65536);
}
BENCHMARK(BM_DeltaCreate);

void
BM_SimulatedDescriptor(benchmark::State &state)
{
    // End-to-end: how many simulated sync 4KB copies per host second.
    const std::uint64_t n = 4096;
    for (auto _ : state) {
        state.PauseTiming();
        bench::Rig rig{bench::Rig::Options{}};
        Addr src = rig.as->alloc(n * 64);
        Addr dst = rig.as->alloc(n * 64);
        state.ResumeTiming();
        bench::Measure m = bench::syncHw(
            rig, dml::Executor::memMove(*rig.as, dst, src, n), 64,
            false);
        benchmark::DoNotOptimize(m.gbps);
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SimulatedDescriptor)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg == "--kernel-json")
            return kernelSelfBench("BENCH_kernel.json");
        if (arg.rfind("--kernel-json=", 0) == 0)
            return kernelSelfBench(argv[i] + 14);
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
