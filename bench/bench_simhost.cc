/**
 * @file
 * Host-side performance of the simulator itself (google-benchmark):
 * event-queue throughput, cache-model access rate, functional
 * operation speed, and end-to-end simulated-descriptor rate. These
 * numbers bound how much simulated work the figure benches can
 * afford; they are about dsasim, not about DSA.
 */

#include <benchmark/benchmark.h>

#include "bench/common.hh"
#include "sim/random.hh"
#include "ops/crc32.hh"
#include "ops/delta.hh"

namespace
{

using namespace dsasim;

void
BM_EventQueue(benchmark::State &state)
{
    for (auto _ : state) {
        Simulation sim;
        int sink = 0;
        for (int i = 0; i < 10000; ++i)
            sim.scheduleAt(static_cast<Tick>(i), [&sink] { ++sink; });
        sim.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventQueue);

void
BM_CacheAccess(benchmark::State &state)
{
    CacheModel::Config cfg;
    cfg.sizeBytes = 8 << 20;
    cfg.ways = 8;
    cfg.ddioWays = 2;
    CacheModel c(cfg);
    Rng rng(1);
    for (auto _ : state) {
        Addr a = rng.range(0, (64 << 20) / 64 - 1) * 64;
        benchmark::DoNotOptimize(c.cpuAccess(a, 1, false).hit);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void
BM_Crc32c(benchmark::State &state)
{
    std::vector<std::uint8_t> buf(
        static_cast<std::size_t>(state.range(0)), 0x5a);
    for (auto _ : state)
        benchmark::DoNotOptimize(crc32cFull(buf.data(), buf.size()));
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(4096)->Arg(65536);

void
BM_DeltaCreate(benchmark::State &state)
{
    std::vector<std::uint8_t> a(65536, 1), b(65536, 1);
    for (std::size_t i = 0; i < b.size(); i += 512)
        b[i] = 2;
    for (auto _ : state) {
        auto r = deltaCreate(a.data(), b.data(), a.size(),
                             2 * a.size());
        benchmark::DoNotOptimize(r.record.size());
    }
    state.SetBytesProcessed(state.iterations() * 65536);
}
BENCHMARK(BM_DeltaCreate);

void
BM_SimulatedDescriptor(benchmark::State &state)
{
    // End-to-end: how many simulated sync 4KB copies per host second.
    const std::uint64_t n = 4096;
    for (auto _ : state) {
        state.PauseTiming();
        bench::Rig rig{bench::Rig::Options{}};
        Addr src = rig.as->alloc(n * 64);
        Addr dst = rig.as->alloc(n * 64);
        state.ResumeTiming();
        bench::Measure m = bench::syncHw(
            rig, dml::Executor::memMove(*rig.as, dst, src, n), 64,
            false);
        benchmark::DoNotOptimize(m.gbps);
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SimulatedDescriptor)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
