/**
 * @file
 * Self-benchmark of the snapshot/fork subsystem (host seconds, not
 * simulated ticks): a fig 4-style submission-depth sweep whose
 * points share one deliberately heavy warm-up — 512 descriptors of
 * 256 KiB streamed through the device to warm the ATC/LLC and
 * materialize the backing chunks.
 *
 * The sweep runs twice through the same code path: cold
 * (DSASIM_SNAPSHOT=0, every point rebuilds and re-warms its rig) and
 * with snapshot sharing (one warm-up, one capture, one fork per
 * point). Both arms must produce byte-identical results — the
 * snapshot contract (DESIGN.md §10) — and the wall-clock ratio is
 * the subsystem's payoff, recorded in BENCH_snapshot.json.
 *
 * The sweep runs at DSASIM_JOBS=1 so the ratio measures work saved,
 * not how many warm-ups the host can overlap.
 *
 * Usage: bench_snapshot [--json=PATH]
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/common.hh"

namespace dsasim::bench
{
namespace
{

using Clock = std::chrono::steady_clock;

const std::vector<int> depths = {1, 2, 4, 8, 16, 32};

std::vector<std::string>
depthSweep()
{
    Rig::Options o;
    Scenario sc(
        o,
        [](Rig &rig) {
            auto ring = memMoveRing(rig, 256 << 10, 16);
            asyncHw(rig, ring, 512, 32);
        },
        "stream-warm-256k");

    SweepRunner sweep;
    return sweepScenario(
        sweep, sc, depths.size(),
        [&](Rig &rig, std::size_t i) -> std::string {
            auto ring = memMoveRing(rig, 64 << 10, 8);
            Measure m = asyncHw(rig, ring, 64, depths[i]);
            return fmt(m.gbps);
        });
}

/** Best of @p trials wall-clock runs; results must not vary. */
double
timeArm(const char *snapshot_env, std::vector<std::string> &out,
        int trials = 3)
{
    setenv("DSASIM_SNAPSHOT", snapshot_env, 1);
    double best = 1e99;
    for (int t = 0; t < trials; ++t) {
        auto t0 = Clock::now();
        auto r = depthSweep();
        double el =
            std::chrono::duration<double>(Clock::now() - t0).count();
        if (el < best)
            best = el;
        if (t == 0)
            out = std::move(r);
    }
    return best;
}

} // namespace
} // namespace dsasim::bench

int
main(int argc, char **argv)
{
    using namespace dsasim;
    using namespace dsasim::bench;

    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a.rfind("--json=", 0) == 0)
            json_path = a.substr(7);
    }

    // Serialize the sweep: the speedup below is work saved per
    // point, independent of how many threads the host happens to
    // have.
    setenv("DSASIM_JOBS", "1", 1);

    std::vector<std::string> cold_res, snap_res;
    double cold_secs = timeArm("0", cold_res);
    double snap_secs = timeArm("1", snap_res);

    if (cold_res != snap_res) {
        std::fprintf(stderr,
                     "bench_snapshot: FAIL — forked sweep results "
                     "differ from cold sweep results\n");
        return 1;
    }

    Table tbl("Snapshot fork vs cold warm-up: depth sweep GB/s",
              {"depth", "GB/s"});
    for (std::size_t i = 0; i < depths.size(); ++i)
        tbl.addRow({std::to_string(depths[i]), cold_res[i]});
    tbl.print();

    double speedup = cold_secs / snap_secs;
    std::printf("\ncold  %.3fs (%zu warm-ups)\nfork  %.3fs "
                "(1 warm-up + %zu forks)\nspeedup %.2fx\n",
                cold_secs, depths.size(), snap_secs, depths.size(),
                speedup);

    const char *json_fmt = "{\n"
                           "  \"benchmark\": \"snapshot\",\n"
                           "  \"points\": %zu,\n"
                           "  \"cold_secs\": %.3f,\n"
                           "  \"snapshot_secs\": %.3f,\n"
                           "  \"speedup\": %.2f\n"
                           "}\n";
    std::printf(json_fmt, depths.size(), cold_secs, snap_secs,
                speedup);
    if (!json_path.empty()) {
        std::FILE *f = std::fopen(json_path.c_str(), "w");
        if (!f) {
            std::perror("bench_snapshot: fopen");
            return 2;
        }
        std::fprintf(f, json_fmt, depths.size(), cold_secs,
                     snap_secs, speedup);
        std::fclose(f);
    }
    return 0;
}
