/**
 * @file
 * Table 1: the data-streaming operation set supported by DSA.
 *
 * For each operation this bench runs a functional verification on
 * the device model and reports a representative sync latency and
 * async throughput at 64 KB — the coverage row for the table.
 */

#include "bench/common.hh"
#include "sim/random.hh"
#include "ops/crc32.hh"
#include "ops/delta.hh"

namespace dsasim::bench
{
namespace
{

struct Check
{
    const char *type;
    const char *name;
    WorkDescriptor desc;
    bool expectOk = true;
};

} // namespace
} // namespace dsasim::bench

int
main()
{
    using namespace dsasim;
    using namespace dsasim::bench;
    using E = dml::Executor;

    Rig rig{Rig::Options{}};
    AddressSpace &as = *rig.as;
    const std::uint64_t n = 64 << 10;

    Addr src = as.alloc(n);
    Addr src2 = as.alloc(n);
    Addr dst = as.alloc(2 * n);
    Addr dst2 = as.alloc(2 * n);
    Addr rec = as.alloc(2 * n);

    // Deterministic content; src2 = src with a few mutations.
    {
        Rng rng(99);
        std::vector<std::uint8_t> buf(n);
        for (auto &b : buf)
            b = static_cast<std::uint8_t>(rng.next32());
        as.write(src, buf.data(), n);
        buf[123] ^= 1;
        as.write(src2, buf.data(), n);
    }

    // An exact copy of src for match-expected compares.
    Addr same = as.alloc(n);
    {
        std::vector<std::uint8_t> buf(n);
        as.read(src, buf.data(), n);
        as.write(same, buf.data(), n);
    }

    // Pre-protect a DIF source region.
    Addr prot = as.alloc(2 * n);
    rig.plat.kernels().difInsertOp(rig.plat.core(2), as, src, prot,
                                   512, n / 512, 3, 9);

    std::vector<Check> checks = {
        {"Move", "Memory Copy", E::memMove(as, dst, src, n)},
        {"Move", "Dualcast", E::dualcast(as, dst, dst2, src, n)},
        {"Move", "CRC Generation", E::crc32(as, src, n)},
        {"Move", "Copy with CRC", E::copyCrc(as, dst, src, n)},
        {"Move", "DIF Insert",
         E::difInsert(as, src, dst, 512, n, 3, 9)},
        {"Move", "DIF Check", E::difCheck(as, prot, 512, n, 3, 9)},
        {"Move", "DIF Strip", E::difStrip(as, prot, dst, 512, n)},
        {"Fill", "Memory Fill", E::fill(as, dst, 0x1234, n)},
        {"Compare", "Memory Compare", E::compare(as, src, same, n)},
        {"Compare", "Compare Pattern",
         E::comparePattern(as, src, 0xdeadbeef, n), false},
        {"Compare", "Create Delta Record",
         E::createDelta(as, src, src2, n, rec, 2 * n), false},
        {"Flush", "Cache Flush", E::cacheFlush(as, src, n)},
    };

    Table tbl("Table 1: DSA operation coverage (measured at 64KB)",
              {"type", "operation", "status", "sync ns",
               "async GB/s"});

    for (auto &c : checks) {
        Measure sync_m = syncHw(rig, c.desc, 24);
        // Async throughput: ring of the same descriptor.
        std::vector<WorkDescriptor> ring(8, c.desc);
        Measure async_m = asyncHw(rig, ring, 64);

        // Status check: run once more and verify the outcome.
        dml::OpResult r;
        bool finished = false;
        struct Drv
        {
            static SimTask
            go(Rig &rg, WorkDescriptor d, dml::OpResult &out,
               bool &fin)
            {
                co_await rg.exec->executeHardware(rg.plat.core(0), d,
                                                  out);
                fin = true;
            }
        };
        Drv::go(rig, c.desc, r, finished);
        rig.sim.run();
        bool good = finished &&
                    r.status == CompletionRecord::Status::Success &&
                    (r.ok == c.expectOk);
        tbl.addRow({c.type, c.name, good ? "OK" : "FAIL",
                    fmt(sync_m.meanNs, 0), fmt(async_m.gbps)});
    }

    // Apply Delta needs the record from Create Delta: verify the
    // round trip explicitly.
    {
        dml::OpResult cr, ar;
        bool f1 = false, f2 = false;
        struct Drv
        {
            static SimTask
            go(Rig &rg, WorkDescriptor d, dml::OpResult &out,
               bool &fin)
            {
                co_await rg.exec->executeHardware(rg.plat.core(0), d,
                                                  out);
                fin = true;
            }
        };
        Drv::go(rig, E::createDelta(as, src, src2, n, rec, 2 * n), cr,
                f1);
        rig.sim.run();
        Addr target = as.alloc(n);
        std::vector<std::uint8_t> buf(n);
        as.read(src, buf.data(), n);
        as.write(target, buf.data(), n);
        Drv::go(rig,
                E::applyDelta(as, target, rec, cr.recordBytes, n), ar,
                f2);
        rig.sim.run();
        bool good = f1 && f2 && ar.ok && as.equal(target, src2, n);
        tbl.addRow({"Compare", "Apply Delta Record",
                    good ? "OK" : "FAIL", "-", "-"});
    }

    tbl.print();
    return 0;
}
