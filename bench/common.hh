/**
 * @file
 * Shared benchmark harness.
 *
 * Mirrors the paper's methodology (§4.1): operations run for many
 * iterations; source/destination data and descriptors are flushed
 * from the cache hierarchy between iterations; asynchronous
 * experiments keep a queue depth of 32 unless stated otherwise;
 * descriptor allocation/preparation time is excluded.
 *
 * Output format: every bench prints one table per paper panel with
 * the same rows/series the figure reports, so EXPERIMENTS.md can
 * compare shapes directly.
 */

#ifndef DSASIM_BENCH_COMMON_HH
#define DSASIM_BENCH_COMMON_HH

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "dml/dml.hh"
#include "driver/platform.hh"
#include "driver/submitter.hh"
#include "sim/stats.hh"
#include "sim/task.hh"

namespace dsasim::bench
{

/// @name Formatting helpers.
/// @{
inline std::string
fmtSize(std::uint64_t bytes)
{
    char buf[32];
    if (bytes >= (1ull << 20) && bytes % (1ull << 20) == 0)
        std::snprintf(buf, sizeof(buf), "%lluMB",
                      static_cast<unsigned long long>(bytes >> 20));
    else if (bytes >= 1024 && bytes % 1024 == 0)
        std::snprintf(buf, sizeof(buf), "%lluKB",
                      static_cast<unsigned long long>(bytes >> 10));
    else
        std::snprintf(buf, sizeof(buf), "%lluB",
                      static_cast<unsigned long long>(bytes));
    return buf;
}

/** Fixed-width table printer (plain text, machine-greppable). */
class Table
{
  public:
    Table(std::string title, std::vector<std::string> columns)
        : name(std::move(title)), cols(std::move(columns))
    {}

    void
    addRow(std::vector<std::string> cells)
    {
        rows.push_back(std::move(cells));
    }

    void
    print() const
    {
        // Any non-empty DSASIM_CSV value other than "0" switches to
        // machine-readable output for post-processing/plotting.
        if (const char *csv = std::getenv("DSASIM_CSV");
            csv && csv[0] != '\0' && std::string_view(csv) != "0") {
            printCsv();
            return;
        }
        std::printf("\n== %s ==\n", name.c_str());
        std::vector<std::size_t> width(cols.size());
        for (std::size_t c = 0; c < cols.size(); ++c)
            width[c] = cols[c].size();
        for (const auto &r : rows)
            for (std::size_t c = 0; c < r.size() && c < width.size();
                 ++c)
                width[c] = std::max(width[c], r[c].size());
        auto line = [&](const std::vector<std::string> &cells) {
            for (std::size_t c = 0; c < cells.size(); ++c)
                std::printf("%-*s  ", static_cast<int>(width[c]),
                            cells[c].c_str());
            std::printf("\n");
        };
        line(cols);
        for (const auto &r : rows)
            line(r);
    }

    void
    printCsv() const
    {
        auto cell = [](const std::string &c) {
            std::string out = c;
            for (auto &ch : out)
                if (ch == ',')
                    ch = ';';
            return out;
        };
        std::printf("\n# %s\n", name.c_str());
        for (std::size_t c = 0; c < cols.size(); ++c)
            std::printf("%s%s", cell(cols[c]).c_str(),
                        c + 1 < cols.size() ? "," : "\n");
        for (const auto &r : rows) {
            for (std::size_t c = 0; c < r.size(); ++c)
                std::printf("%s%s", cell(r[c]).c_str(),
                            c + 1 < r.size() ? "," : "\n");
        }
    }

  private:
    std::string name;
    std::vector<std::string> cols;
    std::vector<std::vector<std::string>> rows;
};

inline std::string
fmt(double v, int prec = 2)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
}
/// @}

/**
 * Worker count for parallel benchmark sweeps: DSASIM_JOBS if set to a
 * positive integer, otherwise the hardware concurrency (minimum 1).
 */
inline unsigned
sweepJobs()
{
    if (const char *env = std::getenv("DSASIM_JOBS")) {
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v >= 1)
            return static_cast<unsigned>(v);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

/**
 * Runs independent sweep points concurrently on a small thread pool.
 *
 * Each point must be self-contained — build its own Rig (Platform +
 * Simulation), measure, and return a result. Nothing in the simulator
 * is shared between Rigs, so points are safe to run on separate
 * threads. Results come back indexed by point, so tables print in the
 * same deterministic order regardless of the worker count or
 * scheduling; with jobs=1 the output is identical to a serial loop.
 */
class SweepRunner
{
  public:
    explicit SweepRunner(unsigned jobs = sweepJobs())
        : jobCount(jobs ? jobs : 1)
    {}

    unsigned jobs() const { return jobCount; }

    /**
     * Evaluate @p fn(i) for i in [0, n) and return the results in
     * index order. @p fn must not touch shared mutable state.
     */
    template <typename Fn>
    auto
    run(std::size_t n, Fn &&fn)
        -> std::vector<decltype(fn(std::size_t{}))>
    {
        using R = decltype(fn(std::size_t{}));
        std::vector<R> results(n);
        if (n == 0)
            return results;
        const unsigned workers =
            static_cast<unsigned>(std::min<std::size_t>(jobCount, n));
        if (workers <= 1) {
            for (std::size_t i = 0; i < n; ++i)
                results[i] = fn(i);
            return results;
        }
        std::atomic<std::size_t> next{0};
        auto worker = [&] {
            for (;;) {
                const std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= n)
                    return;
                results[i] = fn(i);
            }
        };
        std::vector<std::thread> pool;
        pool.reserve(workers - 1);
        for (unsigned w = 1; w < workers; ++w)
            pool.emplace_back(worker);
        worker();
        for (auto &t : pool)
            t.join();
        return results;
    }

  private:
    unsigned jobCount;
};

/**
 * A measurement rig: a platform with one or more DSA devices in a
 * chosen topology, plus an executor and an address space.
 */
class Rig
{
  public:
    struct Options
    {
        PlatformConfig platform = PlatformConfig::spr();
        unsigned devices = 1;
        unsigned engines = 1;
        unsigned wqSize = 32;
        WorkQueue::Mode wqMode = WorkQueue::Mode::Dedicated;
        bool useUmwait = true;
    };

    explicit Rig(const Options &o)
        : opt(o), plat(sim, o.platform), as(&plat.mem().createSpace())
    {
        std::vector<DsaDevice *> devs;
        for (unsigned i = 0; i < o.devices; ++i) {
            Platform::configureBasic(plat.dsa(i), o.wqSize, o.engines,
                                     o.wqMode);
            devs.push_back(&plat.dsa(i));
        }
        dml::ExecutorConfig ec;
        ec.path = dml::Path::Hardware;
        ec.useUmwait = o.useUmwait;
        exec = std::make_unique<dml::Executor>(
            sim, plat.mem(), plat.kernels(), devs, ec);
    }

    Options opt;
    Simulation sim;
    Platform plat;
    AddressSpace *as;
    std::unique_ptr<dml::Executor> exec;
};

/** Scale iteration counts down as transfer sizes grow. */
inline int
itersFor(std::uint64_t size, int base = 120)
{
    std::uint64_t budget = 24ull << 20; // total bytes per measurement
    std::uint64_t by_bytes = budget / std::max<std::uint64_t>(size, 1);
    return static_cast<int>(std::max<std::uint64_t>(
        8, std::min<std::uint64_t>(static_cast<std::uint64_t>(base),
                                   by_bytes)));
}

/** Result of a latency/throughput measurement. */
struct Measure
{
    double meanNs = 0;
    double gbps = 0;
    std::uint64_t iterations = 0;
};

namespace detail
{

inline SimTask
syncHwLoop(Rig &rig, WorkDescriptor d, int iters, bool flush,
           Measure &out)
{
    Core &core = rig.plat.core(0);
    Histogram lat;
    for (int i = 0; i < iters; ++i) {
        if (flush)
            rig.plat.mem().cache().invalidateAll();
        dml::OpResult r;
        co_await rig.exec->executeHardware(core, d, r);
        lat.add(toNs(r.latency));
    }
    out.meanNs = lat.mean();
    out.gbps = static_cast<double>(d.size) / out.meanNs;
    out.iterations = lat.count();
}

inline SimTask
syncSwLoop(Rig &rig, WorkDescriptor d, int iters, bool flush,
           Measure &out)
{
    Core &core = rig.plat.core(1 % rig.plat.coreCount());
    Histogram lat;
    for (int i = 0; i < iters; ++i) {
        if (flush)
            rig.plat.mem().cache().invalidateAll();
        dml::OpResult r;
        co_await rig.exec->executeSoftware(core, d, r);
        lat.add(toNs(r.latency));
    }
    out.meanNs = lat.mean();
    out.gbps = static_cast<double>(d.size) / out.meanNs;
    out.iterations = lat.count();
}

inline SimTask
asyncHwLoop(Rig &rig, std::vector<WorkDescriptor> ring, int total,
            int depth, Measure &out)
{
    Core &core = rig.plat.core(0);
    Semaphore window(rig.sim, static_cast<std::uint64_t>(depth));
    Latch all(rig.sim, static_cast<std::uint64_t>(total));
    std::uint64_t bytes = 0;
    Tick t0 = rig.sim.now();

    struct Waiter
    {
        static SimTask
        drain(std::unique_ptr<dml::Job> job, Semaphore &win,
              Latch &done)
        {
            if (!job->cr.isDone())
                co_await job->cr.done.wait();
            win.release();
            done.arrive();
        }
    };

    for (int i = 0; i < total; ++i) {
        const WorkDescriptor &d =
            ring[static_cast<std::size_t>(i) % ring.size()];
        // Refresh coldness once per pass over the ring, mirroring
        // the paper's per-iteration flushes.
        if (i > 0 &&
            static_cast<std::size_t>(i) % ring.size() == 0)
            rig.plat.mem().cache().invalidateAll();
        co_await window.acquire();
        auto job = rig.exec->prepare(d);
        bytes += d.size;
        co_await rig.exec->submit(core, *job);
        Waiter::drain(std::move(job), window, all);
    }
    co_await all.wait();
    Tick elapsed = rig.sim.now() - t0;
    out.meanNs = toNs(elapsed) / total;
    out.gbps = achievedGBps(bytes, elapsed);
    out.iterations = static_cast<std::uint64_t>(total);
}

} // namespace detail

/** Mean sync-offload latency/throughput of @p d over iterations. */
inline Measure
syncHw(Rig &rig, const WorkDescriptor &d, int iters = 0,
       bool flush = true)
{
    Measure out;
    if (iters == 0)
        iters = itersFor(d.size);
    detail::syncHwLoop(rig, d, iters, flush, out);
    rig.sim.run();
    return out;
}

/** Mean software (CPU core) latency/throughput of @p d. */
inline Measure
syncSw(Rig &rig, const WorkDescriptor &d, int iters = 0,
       bool flush = true)
{
    Measure out;
    if (iters == 0)
        iters = itersFor(d.size);
    detail::syncSwLoop(rig, d, iters, flush, out);
    rig.sim.run();
    return out;
}

/**
 * Async throughput at @p depth outstanding descriptors, cycling over
 * @p ring distinct descriptors (so data stays cold pass to pass).
 */
inline Measure
asyncHw(Rig &rig, std::vector<WorkDescriptor> ring, int total = 0,
        int depth = 32)
{
    Measure out;
    if (total == 0 && !ring.empty())
        total = itersFor(ring.front().size, 320);
    detail::asyncHwLoop(rig, std::move(ring), total, depth, out);
    rig.sim.run();
    return out;
}

/**
 * Build a ring of @p count memMove descriptors striding through two
 * freshly allocated regions.
 */
inline std::vector<WorkDescriptor>
memMoveRing(Rig &rig, std::uint64_t size, int count = 16,
            MemKind src_kind = MemKind::DramLocal,
            MemKind dst_kind = MemKind::DramLocal)
{
    Addr src = rig.as->alloc(size * static_cast<std::uint64_t>(count),
                             src_kind);
    Addr dst = rig.as->alloc(size * static_cast<std::uint64_t>(count),
                             dst_kind);
    std::vector<WorkDescriptor> ring;
    for (int i = 0; i < count; ++i) {
        ring.push_back(dml::Executor::memMove(
            *rig.as, dst + static_cast<Addr>(i) * size,
            src + static_cast<Addr>(i) * size, size));
    }
    return ring;
}

} // namespace dsasim::bench

#endif // DSASIM_BENCH_COMMON_HH
