/**
 * @file
 * Shared benchmark harness.
 *
 * Mirrors the paper's methodology (§4.1): operations run for many
 * iterations; source/destination data and descriptors are flushed
 * from the cache hierarchy between iterations; asynchronous
 * experiments keep a queue depth of 32 unless stated otherwise;
 * descriptor allocation/preparation time is excluded.
 *
 * Output format: every bench prints one table per paper panel with
 * the same rows/series the figure reports, so EXPERIMENTS.md can
 * compare shapes directly.
 */

#ifndef DSASIM_BENCH_COMMON_HH
#define DSASIM_BENCH_COMMON_HH

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "dml/dml.hh"
#include "driver/platform.hh"
#include "driver/snapshot.hh"
#include "driver/submitter.hh"
#include "sim/partition.hh"
#include "sim/stats.hh"
#include "sim/task.hh"

namespace dsasim::bench
{

/// @name Formatting helpers.
/// @{
inline std::string
fmtSize(std::uint64_t bytes)
{
    char buf[32];
    if (bytes >= (1ull << 20) && bytes % (1ull << 20) == 0)
        std::snprintf(buf, sizeof(buf), "%lluMB",
                      static_cast<unsigned long long>(bytes >> 20));
    else if (bytes >= 1024 && bytes % 1024 == 0)
        std::snprintf(buf, sizeof(buf), "%lluKB",
                      static_cast<unsigned long long>(bytes >> 10));
    else
        std::snprintf(buf, sizeof(buf), "%lluB",
                      static_cast<unsigned long long>(bytes));
    return buf;
}

/** Fixed-width table printer (plain text, machine-greppable). */
class Table
{
  public:
    Table(std::string title, std::vector<std::string> columns)
        : name(std::move(title)), cols(std::move(columns))
    {}

    void
    addRow(std::vector<std::string> cells)
    {
        rows.push_back(std::move(cells));
    }

    void
    print() const
    {
        // Any non-empty DSASIM_CSV value other than "0" switches to
        // machine-readable output for post-processing/plotting.
        if (const char *csv = std::getenv("DSASIM_CSV");
            csv && csv[0] != '\0' && std::string_view(csv) != "0") {
            printCsv();
            return;
        }
        std::printf("\n== %s ==\n", name.c_str());
        std::vector<std::size_t> width(cols.size());
        for (std::size_t c = 0; c < cols.size(); ++c)
            width[c] = cols[c].size();
        for (const auto &r : rows)
            for (std::size_t c = 0; c < r.size() && c < width.size();
                 ++c)
                width[c] = std::max(width[c], r[c].size());
        auto line = [&](const std::vector<std::string> &cells) {
            for (std::size_t c = 0; c < cells.size(); ++c)
                std::printf("%-*s  ", static_cast<int>(width[c]),
                            cells[c].c_str());
            std::printf("\n");
        };
        line(cols);
        for (const auto &r : rows)
            line(r);
    }

    void
    printCsv() const
    {
        auto cell = [](const std::string &c) {
            std::string out = c;
            for (auto &ch : out)
                if (ch == ',')
                    ch = ';';
            return out;
        };
        std::printf("\n# %s\n", name.c_str());
        for (std::size_t c = 0; c < cols.size(); ++c)
            std::printf("%s%s", cell(cols[c]).c_str(),
                        c + 1 < cols.size() ? "," : "\n");
        for (const auto &r : rows) {
            for (std::size_t c = 0; c < r.size(); ++c)
                std::printf("%s%s", cell(r[c]).c_str(),
                            c + 1 < r.size() ? "," : "\n");
        }
    }

  private:
    std::string name;
    std::vector<std::string> cols;
    std::vector<std::vector<std::string>> rows;
};

inline std::string
fmt(double v, int prec = 2)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
}
/// @}

/**
 * Worker count for parallel benchmark sweeps. Each sweep point may
 * itself run its cluster on DSASIM_PARTITIONS worker threads
 * (sim/partition.hh), so the two knobs multiply: total host-thread
 * demand is jobs x partitions. Precedence (EXPERIMENTS.md):
 *
 *   - DSASIM_JOBS set to a positive integer: honored, except that
 *     with DSASIM_PARTITIONS > 1 it is clamped so jobs x partitions
 *     never exceeds the hardware concurrency — oversubscribing both
 *     knobs at once only adds scheduler noise to the wall-clock
 *     numbers the parallel benches report.
 *   - DSASIM_JOBS unset: hardware concurrency / partitions (min 1),
 *     i.e. the partition workers come out of the sweep budget.
 */
inline unsigned
sweepJobs()
{
    const unsigned parts = std::max(1u, partitionThreads());
    const unsigned hw =
        std::max(1u, std::thread::hardware_concurrency());
    if (const char *env = std::getenv("DSASIM_JOBS")) {
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v >= 1) {
            unsigned jobs = static_cast<unsigned>(v);
            if (parts > 1)
                jobs = std::max(1u, std::min(jobs, hw / parts));
            return jobs;
        }
    }
    return std::max(1u, hw / parts);
}

/**
 * Runs independent sweep points concurrently on a small thread pool.
 *
 * Each point must be self-contained — build its own Rig (Platform +
 * Simulation), measure, and return a result. Nothing in the simulator
 * is shared between Rigs, so points are safe to run on separate
 * threads. Results come back indexed by point, so tables print in the
 * same deterministic order regardless of the worker count or
 * scheduling; with jobs=1 the output is identical to a serial loop.
 */
class SweepRunner
{
  public:
    explicit SweepRunner(unsigned jobs = sweepJobs())
        : jobCount(jobs ? jobs : 1)
    {}

    unsigned jobs() const { return jobCount; }

    /**
     * Evaluate @p fn(i) for i in [0, n) and return the results in
     * index order. @p fn must not touch shared mutable state.
     */
    template <typename Fn>
    auto
    run(std::size_t n, Fn &&fn)
        -> std::vector<decltype(fn(std::size_t{}))>
    {
        using R = decltype(fn(std::size_t{}));
        std::vector<R> results(n);
        if (n == 0)
            return results;
        const unsigned workers =
            static_cast<unsigned>(std::min<std::size_t>(jobCount, n));
        if (workers <= 1) {
            for (std::size_t i = 0; i < n; ++i)
                results[i] = fn(i);
            return results;
        }
        std::atomic<std::size_t> next{0};
        auto worker = [&] {
            for (;;) {
                const std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= n)
                    return;
                results[i] = fn(i);
            }
        };
        std::vector<std::thread> pool;
        pool.reserve(workers - 1);
        for (unsigned w = 1; w < workers; ++w)
            pool.emplace_back(worker);
        worker();
        for (auto &t : pool)
            t.join();
        return results;
    }

  private:
    unsigned jobCount;
};

struct RigSnapshot;

/**
 * A measurement rig: a platform with one or more DSA devices in a
 * chosen topology, plus an executor and an address space.
 */
class Rig
{
  public:
    struct Options
    {
        PlatformConfig platform = PlatformConfig::spr();
        unsigned devices = 1;
        unsigned engines = 1;
        unsigned wqSize = 32;
        WorkQueue::Mode wqMode = WorkQueue::Mode::Dedicated;
        bool useUmwait = true;

        bool operator==(const Options &) const = default;
    };

    explicit Rig(const Options &o)
        : opt(o), plat(sim, o.platform), as(&plat.mem().createSpace())
    {
        std::vector<DsaDevice *> devs;
        for (unsigned i = 0; i < o.devices; ++i) {
            Platform::configureBasic(plat.dsa(i), o.wqSize, o.engines,
                                     o.wqMode);
            devs.push_back(&plat.dsa(i));
        }
        dml::ExecutorConfig ec;
        ec.path = dml::Path::Hardware;
        ec.useUmwait = o.useUmwait;
        exec = std::make_unique<dml::Executor>(
            sim, plat.mem(), plat.kernels(), devs, ec);
    }

    /**
     * Fork: rebuild the shape the options describe, then restore the
     * captured state on top (defined after RigSnapshot below).
     */
    explicit Rig(const RigSnapshot &snap);

    Options opt;
    Simulation sim;
    Platform plat;
    AddressSpace *as;
    std::unique_ptr<dml::Executor> exec;
};

/**
 * Everything needed to fork a Rig: the platform snapshot plus the
 * executor's plain-data state (the executor sits above the platform,
 * so Snapshot::capture does not see it) and the options that rebuild
 * the rig's shape. Immutable once captured; forking from one
 * RigSnapshot on several threads at once is safe (memory chunks are
 * shared copy-on-write behind atomically refcounted pointers).
 */
struct RigSnapshot
{
    Snapshot platform;
    dml::Executor::State exec;
    Rig::Options options;
};

/** Capture a quiesced rig (Snapshot::capture states preconditions). */
inline std::shared_ptr<const RigSnapshot>
snapRig(Rig &rig)
{
    return std::make_shared<const RigSnapshot>(RigSnapshot{
        Snapshot::capture(rig.plat), rig.exec->saveState(), rig.opt});
}

inline Rig::Rig(const RigSnapshot &snap)
    : opt(snap.options), plat(sim, snap.options.platform), as(nullptr)
{
    std::vector<DsaDevice *> devs;
    for (unsigned i = 0; i < opt.devices; ++i) {
        Platform::configureBasic(plat.dsa(i), opt.wqSize, opt.engines,
                                 opt.wqMode);
        devs.push_back(&plat.dsa(i));
    }
    // restoreInto re-anchors the simulation clock/sequence and
    // recreates the address spaces in creation order; PASID 1 is the
    // space the source rig's constructor created.
    snap.platform.restoreInto(plat);
    as = &plat.mem().space(1);
    dml::ExecutorConfig ec;
    ec.path = dml::Path::Hardware;
    ec.useUmwait = opt.useUmwait;
    exec = std::make_unique<dml::Executor>(sim, plat.mem(),
                                           plat.kernels(), devs, ec);
    exec->restoreState(snap.exec);
}

/** Scale iteration counts down as transfer sizes grow. */
inline int
itersFor(std::uint64_t size, int base = 120)
{
    std::uint64_t budget = 24ull << 20; // total bytes per measurement
    std::uint64_t by_bytes = budget / std::max<std::uint64_t>(size, 1);
    return static_cast<int>(std::max<std::uint64_t>(
        8, std::min<std::uint64_t>(static_cast<std::uint64_t>(base),
                                   by_bytes)));
}

/** Result of a latency/throughput measurement. */
struct Measure
{
    double meanNs = 0;
    double gbps = 0;
    std::uint64_t iterations = 0;
};

namespace detail
{

inline SimTask
syncHwLoop(Rig &rig, WorkDescriptor d, int iters, bool flush,
           Measure &out)
{
    Core &core = rig.plat.core(0);
    Histogram lat;
    for (int i = 0; i < iters; ++i) {
        if (flush)
            rig.plat.mem().cache().invalidateAll();
        dml::OpResult r;
        co_await rig.exec->executeHardware(core, d, r);
        lat.add(toNs(r.latency));
    }
    out.meanNs = lat.mean();
    out.gbps = static_cast<double>(d.size) / out.meanNs;
    out.iterations = lat.count();
}

inline SimTask
syncSwLoop(Rig &rig, WorkDescriptor d, int iters, bool flush,
           Measure &out)
{
    Core &core = rig.plat.core(1 % rig.plat.coreCount());
    Histogram lat;
    for (int i = 0; i < iters; ++i) {
        if (flush)
            rig.plat.mem().cache().invalidateAll();
        dml::OpResult r;
        co_await rig.exec->executeSoftware(core, d, r);
        lat.add(toNs(r.latency));
    }
    out.meanNs = lat.mean();
    out.gbps = static_cast<double>(d.size) / out.meanNs;
    out.iterations = lat.count();
}

inline SimTask
asyncHwLoop(Rig &rig, std::vector<WorkDescriptor> ring, int total,
            int depth, Measure &out)
{
    Core &core = rig.plat.core(0);
    Semaphore window(rig.sim, static_cast<std::uint64_t>(depth));
    Latch all(rig.sim, static_cast<std::uint64_t>(total));
    std::uint64_t bytes = 0;
    Tick t0 = rig.sim.now();

    struct Waiter
    {
        static SimTask
        drain(std::unique_ptr<dml::Job> job, Semaphore &win,
              Latch &done)
        {
            if (!job->cr.isDone())
                co_await job->cr.done.wait();
            win.release();
            done.arrive();
        }
    };

    for (int i = 0; i < total; ++i) {
        const WorkDescriptor &d =
            ring[static_cast<std::size_t>(i) % ring.size()];
        // Refresh coldness once per pass over the ring, mirroring
        // the paper's per-iteration flushes.
        if (i > 0 &&
            static_cast<std::size_t>(i) % ring.size() == 0)
            rig.plat.mem().cache().invalidateAll();
        co_await window.acquire();
        auto job = rig.exec->prepare(d);
        bytes += d.size;
        co_await rig.exec->submit(core, *job);
        Waiter::drain(std::move(job), window, all);
    }
    co_await all.wait();
    Tick elapsed = rig.sim.now() - t0;
    out.meanNs = toNs(elapsed) / total;
    out.gbps = achievedGBps(bytes, elapsed);
    out.iterations = static_cast<std::uint64_t>(total);
}

} // namespace detail

/** Mean sync-offload latency/throughput of @p d over iterations. */
inline Measure
syncHw(Rig &rig, const WorkDescriptor &d, int iters = 0,
       bool flush = true)
{
    Measure out;
    if (iters == 0)
        iters = itersFor(d.size);
    detail::syncHwLoop(rig, d, iters, flush, out);
    rig.sim.run();
    return out;
}

/** Mean software (CPU core) latency/throughput of @p d. */
inline Measure
syncSw(Rig &rig, const WorkDescriptor &d, int iters = 0,
       bool flush = true)
{
    Measure out;
    if (iters == 0)
        iters = itersFor(d.size);
    detail::syncSwLoop(rig, d, iters, flush, out);
    rig.sim.run();
    return out;
}

/**
 * Async throughput at @p depth outstanding descriptors, cycling over
 * @p ring distinct descriptors (so data stays cold pass to pass).
 */
inline Measure
asyncHw(Rig &rig, std::vector<WorkDescriptor> ring, int total = 0,
        int depth = 32)
{
    Measure out;
    if (total == 0 && !ring.empty())
        total = itersFor(ring.front().size, 320);
    detail::asyncHwLoop(rig, std::move(ring), total, depth, out);
    rig.sim.run();
    return out;
}

/**
 * Build a ring of @p count memMove descriptors striding through two
 * freshly allocated regions.
 */
inline std::vector<WorkDescriptor>
memMoveRing(Rig &rig, std::uint64_t size, int count = 16,
            MemKind src_kind = MemKind::DramLocal,
            MemKind dst_kind = MemKind::DramLocal)
{
    Addr src = rig.as->alloc(size * static_cast<std::uint64_t>(count),
                             src_kind);
    Addr dst = rig.as->alloc(size * static_cast<std::uint64_t>(count),
                             dst_kind);
    std::vector<WorkDescriptor> ring;
    for (int i = 0; i < count; ++i) {
        ring.push_back(dml::Executor::memMove(
            *rig.as, dst + static_cast<Addr>(i) * size,
            src + static_cast<Addr>(i) * size, size));
    }
    return ring;
}

/**
 * Snapshot sharing is on by default; DSASIM_SNAPSHOT=0 forces every
 * sweep point to build and warm its rig cold, through the same code
 * path (the determinism story: both arms must agree bit for bit).
 */
inline bool
snapshotsEnabled()
{
    const char *v = std::getenv("DSASIM_SNAPSHOT");
    return !(v && std::string_view(v) == "0");
}

/**
 * A Scenario splits a benchmark into the phases the snapshot
 * subsystem cares about:
 *
 *   warmup  — builds the state worth sharing: allocations, cache/TLB
 *             warming, background-traffic ramp. Runs once per
 *             distinct configuration in a sweep.
 *   measure — the per-point measurement, supplied to sweepScenarios
 *             (grids) or runScenario (single-rig benches).
 *
 * In a sweep, points with matching setups (sameSetup) share one
 * warmed rig: it is snapshotted after warm-up and forked per point,
 * so N points pay for one warm-up instead of N. A forked point's
 * event stream is bit-identical to a cold point's (the snapshot
 * contract, DESIGN.md §10), so results do not depend on the gate.
 *
 * Sweep warm-ups must leave the rig quiesced — drained devices, idle
 * calendar; Snapshot::capture fatals otherwise. runScenario captures
 * nothing, so its warm-up may stop mid-stream (e.g. fig16's
 * steady-state window).
 */
class Scenario
{
  public:
    using SetupFn = std::function<void(Rig &)>;

    Scenario() = default;
    explicit Scenario(Rig::Options o, SetupFn warmup_fn = nullptr,
                      std::string warmup_key = "")
        : opts(std::move(o)), warm(std::move(warmup_fn)),
          key(std::move(warmup_key))
    {}

    const Rig::Options &options() const { return opts; }

    /** Run the warm-up phase on @p rig (no-op without one). */
    void
    warmup(Rig &rig) const
    {
        if (warm)
            warm(rig);
    }

    /** Build a cold rig and run the warm-up phase on it. */
    std::unique_ptr<Rig>
    warmRig() const
    {
        auto rig = std::make_unique<Rig>(opts);
        warmup(*rig);
        return rig;
    }

    /**
     * Two scenarios may share one warmed rig: identical options and
     * identically-keyed warm-ups. Anonymous (empty-key) warm-ups
     * never match — naming the warm-up is the opt-in that asserts it
     * computes the same thing across points.
     */
    bool
    sameSetup(const Scenario &o) const
    {
        if (!(opts == o.opts))
            return false;
        if (!warm && !o.warm)
            return true;
        if (static_cast<bool>(warm) != static_cast<bool>(o.warm))
            return false;
        return !key.empty() && key == o.key;
    }

  private:
    Rig::Options opts;
    SetupFn warm;
    std::string key;
};

/**
 * Single-rig scenario: build, warm up, then measure — the uniform
 * entry point for benches that drive one platform through a time
 * window rather than sweeping a grid.
 */
template <typename MeasureFn>
auto
runScenario(const Scenario &sc, MeasureFn &&measure)
{
    auto rig = sc.warmRig();
    return measure(*rig);
}

/**
 * Evaluate measure(rig, i) for each point's scenario, in index
 * order. Points with matching setups share one warmed, snapshotted
 * rig and fork from it; with DSASIM_SNAPSHOT=0 every point warms a
 * cold rig instead. Either way the warm-up runs to an idle calendar
 * before measurement.
 */
template <typename MeasureFn>
auto
sweepScenarios(SweepRunner &sweep, const std::vector<Scenario> &pts,
               MeasureFn &&measure)
    -> std::vector<decltype(measure(std::declval<Rig &>(),
                                    std::size_t{}))>
{
    using R = decltype(measure(std::declval<Rig &>(), std::size_t{}));
    const std::size_t n = pts.size();
    if (!snapshotsEnabled()) {
        return sweep.run(n, [&](std::size_t i) -> R {
            auto rig = pts[i].warmRig();
            rig->sim.run();
            return measure(*rig, i);
        });
    }
    // Group points by shared setup; the group's first point is the
    // leader whose warmed rig everyone forks.
    std::vector<std::size_t> group(n);
    std::vector<std::size_t> leaders;
    for (std::size_t i = 0; i < n; ++i) {
        bool found = false;
        for (std::size_t g = 0; g < leaders.size() && !found; ++g) {
            if (pts[leaders[g]].sameSetup(pts[i])) {
                group[i] = g;
                found = true;
            }
        }
        if (!found) {
            group[i] = leaders.size();
            leaders.push_back(i);
        }
    }
    auto snaps = sweep.run(
        leaders.size(),
        [&](std::size_t g) -> std::shared_ptr<const RigSnapshot> {
            auto rig = pts[leaders[g]].warmRig();
            rig->sim.run(); // drain to idle: capture precondition
            return snapRig(*rig);
        });
    return sweep.run(n, [&](std::size_t i) -> R {
        Rig rig(*snaps[group[i]]);
        return measure(rig, i);
    });
}

/** All points share one scenario: the homogeneous-grid case. */
template <typename MeasureFn>
auto
sweepScenario(SweepRunner &sweep, const Scenario &sc, std::size_t n,
              MeasureFn &&measure)
{
    return sweepScenarios(sweep, std::vector<Scenario>(n, sc),
                          std::forward<MeasureFn>(measure));
}

} // namespace dsasim::bench

#endif // DSASIM_BENCH_COMMON_HH
