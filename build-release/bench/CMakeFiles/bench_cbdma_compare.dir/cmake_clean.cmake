file(REMOVE_RECURSE
  "CMakeFiles/bench_cbdma_compare.dir/bench_cbdma_compare.cc.o"
  "CMakeFiles/bench_cbdma_compare.dir/bench_cbdma_compare.cc.o.d"
  "bench_cbdma_compare"
  "bench_cbdma_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cbdma_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
