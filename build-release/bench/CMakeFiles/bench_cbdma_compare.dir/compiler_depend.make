# Empty compiler generated dependencies file for bench_cbdma_compare.
# This may be replaced when dependencies are built.
