# Empty dependencies file for bench_fig02_op_speedup.
# This may be replaced when dependencies are built.
