# Empty dependencies file for bench_fig03_batch.
# This may be replaced when dependencies are built.
