file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_wqdepth.dir/bench_fig04_wqdepth.cc.o"
  "CMakeFiles/bench_fig04_wqdepth.dir/bench_fig04_wqdepth.cc.o.d"
  "bench_fig04_wqdepth"
  "bench_fig04_wqdepth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_wqdepth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
