# Empty dependencies file for bench_fig04_wqdepth.
# This may be replaced when dependencies are built.
