# Empty dependencies file for bench_fig05_latency_breakdown.
# This may be replaced when dependencies are built.
