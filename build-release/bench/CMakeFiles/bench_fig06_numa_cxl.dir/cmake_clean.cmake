file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_numa_cxl.dir/bench_fig06_numa_cxl.cc.o"
  "CMakeFiles/bench_fig06_numa_cxl.dir/bench_fig06_numa_cxl.cc.o.d"
  "bench_fig06_numa_cxl"
  "bench_fig06_numa_cxl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_numa_cxl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
