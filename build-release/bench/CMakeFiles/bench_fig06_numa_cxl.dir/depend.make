# Empty dependencies file for bench_fig06_numa_cxl.
# This may be replaced when dependencies are built.
