file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_pes.dir/bench_fig07_pes.cc.o"
  "CMakeFiles/bench_fig07_pes.dir/bench_fig07_pes.cc.o.d"
  "bench_fig07_pes"
  "bench_fig07_pes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_pes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
