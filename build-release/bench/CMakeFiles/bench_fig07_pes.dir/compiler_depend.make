# Empty compiler generated dependencies file for bench_fig07_pes.
# This may be replaced when dependencies are built.
