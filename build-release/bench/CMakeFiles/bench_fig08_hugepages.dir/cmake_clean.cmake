file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_hugepages.dir/bench_fig08_hugepages.cc.o"
  "CMakeFiles/bench_fig08_hugepages.dir/bench_fig08_hugepages.cc.o.d"
  "bench_fig08_hugepages"
  "bench_fig08_hugepages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_hugepages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
