# Empty dependencies file for bench_fig08_hugepages.
# This may be replaced when dependencies are built.
