# Empty dependencies file for bench_fig09_wq_config.
# This may be replaced when dependencies are built.
