file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_multidsa.dir/bench_fig10_multidsa.cc.o"
  "CMakeFiles/bench_fig10_multidsa.dir/bench_fig10_multidsa.cc.o.d"
  "bench_fig10_multidsa"
  "bench_fig10_multidsa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_multidsa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
