# Empty dependencies file for bench_fig10_multidsa.
# This may be replaced when dependencies are built.
