file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_umwait.dir/bench_fig11_umwait.cc.o"
  "CMakeFiles/bench_fig11_umwait.dir/bench_fig11_umwait.cc.o.d"
  "bench_fig11_umwait"
  "bench_fig11_umwait.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_umwait.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
