# Empty dependencies file for bench_fig11_umwait.
# This may be replaced when dependencies are built.
