file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_llc_occupancy.dir/bench_fig12_llc_occupancy.cc.o"
  "CMakeFiles/bench_fig12_llc_occupancy.dir/bench_fig12_llc_occupancy.cc.o.d"
  "bench_fig12_llc_occupancy"
  "bench_fig12_llc_occupancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_llc_occupancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
