# Empty compiler generated dependencies file for bench_fig12_llc_occupancy.
# This may be replaced when dependencies are built.
