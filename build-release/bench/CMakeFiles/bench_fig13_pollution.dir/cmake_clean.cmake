file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_pollution.dir/bench_fig13_pollution.cc.o"
  "CMakeFiles/bench_fig13_pollution.dir/bench_fig13_pollution.cc.o.d"
  "bench_fig13_pollution"
  "bench_fig13_pollution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_pollution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
