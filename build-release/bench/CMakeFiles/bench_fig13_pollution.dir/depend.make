# Empty dependencies file for bench_fig13_pollution.
# This may be replaced when dependencies are built.
