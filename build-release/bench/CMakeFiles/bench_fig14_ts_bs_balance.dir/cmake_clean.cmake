file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_ts_bs_balance.dir/bench_fig14_ts_bs_balance.cc.o"
  "CMakeFiles/bench_fig14_ts_bs_balance.dir/bench_fig14_ts_bs_balance.cc.o.d"
  "bench_fig14_ts_bs_balance"
  "bench_fig14_ts_bs_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_ts_bs_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
