# Empty compiler generated dependencies file for bench_fig14_ts_bs_balance.
# This may be replaced when dependencies are built.
