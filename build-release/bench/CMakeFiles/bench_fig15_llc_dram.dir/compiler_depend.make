# Empty compiler generated dependencies file for bench_fig15_llc_dram.
# This may be replaced when dependencies are built.
