file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_vhost.dir/bench_fig16_vhost.cc.o"
  "CMakeFiles/bench_fig16_vhost.dir/bench_fig16_vhost.cc.o.d"
  "bench_fig16_vhost"
  "bench_fig16_vhost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_vhost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
