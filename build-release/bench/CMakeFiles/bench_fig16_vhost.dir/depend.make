# Empty dependencies file for bench_fig16_vhost.
# This may be replaced when dependencies are built.
