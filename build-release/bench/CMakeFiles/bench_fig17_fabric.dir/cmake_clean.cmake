file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_fabric.dir/bench_fig17_fabric.cc.o"
  "CMakeFiles/bench_fig17_fabric.dir/bench_fig17_fabric.cc.o.d"
  "bench_fig17_fabric"
  "bench_fig17_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
