file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_bert_allreduce.dir/bench_fig18_bert_allreduce.cc.o"
  "CMakeFiles/bench_fig18_bert_allreduce.dir/bench_fig18_bert_allreduce.cc.o.d"
  "bench_fig18_bert_allreduce"
  "bench_fig18_bert_allreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_bert_allreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
