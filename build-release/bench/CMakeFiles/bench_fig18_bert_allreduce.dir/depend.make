# Empty dependencies file for bench_fig18_bert_allreduce.
# This may be replaced when dependencies are built.
