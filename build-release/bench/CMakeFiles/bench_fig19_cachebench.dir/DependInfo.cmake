
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig19_cachebench.cc" "bench/CMakeFiles/bench_fig19_cachebench.dir/bench_fig19_cachebench.cc.o" "gcc" "bench/CMakeFiles/bench_fig19_cachebench.dir/bench_fig19_cachebench.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-release/src/dto/CMakeFiles/dsasim_dto.dir/DependInfo.cmake"
  "/root/repo/build-release/src/dml/CMakeFiles/dsasim_dml.dir/DependInfo.cmake"
  "/root/repo/build-release/src/driver/CMakeFiles/dsasim_driver.dir/DependInfo.cmake"
  "/root/repo/build-release/src/apps/CMakeFiles/dsasim_apps.dir/DependInfo.cmake"
  "/root/repo/build-release/src/cpu/CMakeFiles/dsasim_cpu.dir/DependInfo.cmake"
  "/root/repo/build-release/src/cbdma/CMakeFiles/dsasim_cbdma.dir/DependInfo.cmake"
  "/root/repo/build-release/src/dsa/CMakeFiles/dsasim_dsa.dir/DependInfo.cmake"
  "/root/repo/build-release/src/ops/CMakeFiles/dsasim_ops.dir/DependInfo.cmake"
  "/root/repo/build-release/src/mem/CMakeFiles/dsasim_mem.dir/DependInfo.cmake"
  "/root/repo/build-release/src/sim/CMakeFiles/dsasim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
