file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_cachebench.dir/bench_fig19_cachebench.cc.o"
  "CMakeFiles/bench_fig19_cachebench.dir/bench_fig19_cachebench.cc.o.d"
  "bench_fig19_cachebench"
  "bench_fig19_cachebench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_cachebench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
