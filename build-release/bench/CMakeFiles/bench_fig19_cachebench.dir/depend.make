# Empty dependencies file for bench_fig19_cachebench.
# This may be replaced when dependencies are built.
