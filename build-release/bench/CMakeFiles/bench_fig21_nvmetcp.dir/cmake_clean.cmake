file(REMOVE_RECURSE
  "CMakeFiles/bench_fig21_nvmetcp.dir/bench_fig21_nvmetcp.cc.o"
  "CMakeFiles/bench_fig21_nvmetcp.dir/bench_fig21_nvmetcp.cc.o.d"
  "bench_fig21_nvmetcp"
  "bench_fig21_nvmetcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig21_nvmetcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
