# Empty dependencies file for bench_fig21_nvmetcp.
# This may be replaced when dependencies are built.
