file(REMOVE_RECURSE
  "CMakeFiles/bench_simhost.dir/bench_simhost.cc.o"
  "CMakeFiles/bench_simhost.dir/bench_simhost.cc.o.d"
  "bench_simhost"
  "bench_simhost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_simhost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
