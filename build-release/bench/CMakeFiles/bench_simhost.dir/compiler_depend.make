# Empty compiler generated dependencies file for bench_simhost.
# This may be replaced when dependencies are built.
