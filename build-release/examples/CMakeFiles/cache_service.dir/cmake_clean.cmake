file(REMOVE_RECURSE
  "CMakeFiles/cache_service.dir/cache_service.cpp.o"
  "CMakeFiles/cache_service.dir/cache_service.cpp.o.d"
  "cache_service"
  "cache_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
