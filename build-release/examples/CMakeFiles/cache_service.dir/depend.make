# Empty dependencies file for cache_service.
# This may be replaced when dependencies are built.
