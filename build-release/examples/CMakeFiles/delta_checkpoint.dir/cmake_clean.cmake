file(REMOVE_RECURSE
  "CMakeFiles/delta_checkpoint.dir/delta_checkpoint.cpp.o"
  "CMakeFiles/delta_checkpoint.dir/delta_checkpoint.cpp.o.d"
  "delta_checkpoint"
  "delta_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delta_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
