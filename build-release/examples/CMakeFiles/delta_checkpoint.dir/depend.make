# Empty dependencies file for delta_checkpoint.
# This may be replaced when dependencies are built.
