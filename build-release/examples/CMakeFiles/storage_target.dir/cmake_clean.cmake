file(REMOVE_RECURSE
  "CMakeFiles/storage_target.dir/storage_target.cpp.o"
  "CMakeFiles/storage_target.dir/storage_target.cpp.o.d"
  "storage_target"
  "storage_target.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_target.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
