# Empty dependencies file for storage_target.
# This may be replaced when dependencies are built.
