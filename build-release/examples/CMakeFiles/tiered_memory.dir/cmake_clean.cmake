file(REMOVE_RECURSE
  "CMakeFiles/tiered_memory.dir/tiered_memory.cpp.o"
  "CMakeFiles/tiered_memory.dir/tiered_memory.cpp.o.d"
  "tiered_memory"
  "tiered_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiered_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
