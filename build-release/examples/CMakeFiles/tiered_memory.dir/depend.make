# Empty dependencies file for tiered_memory.
# This may be replaced when dependencies are built.
