file(REMOVE_RECURSE
  "CMakeFiles/vhost_switch.dir/vhost_switch.cpp.o"
  "CMakeFiles/vhost_switch.dir/vhost_switch.cpp.o.d"
  "vhost_switch"
  "vhost_switch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vhost_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
