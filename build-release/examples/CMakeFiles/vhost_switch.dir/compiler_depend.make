# Empty compiler generated dependencies file for vhost_switch.
# This may be replaced when dependencies are built.
