# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-release/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("mem")
subdirs("ops")
subdirs("cpu")
subdirs("dsa")
subdirs("cbdma")
subdirs("driver")
subdirs("dml")
subdirs("dto")
subdirs("apps")
