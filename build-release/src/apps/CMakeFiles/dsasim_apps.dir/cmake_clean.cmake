file(REMOVE_RECURSE
  "CMakeFiles/dsasim_apps.dir/fabric.cc.o"
  "CMakeFiles/dsasim_apps.dir/fabric.cc.o.d"
  "CMakeFiles/dsasim_apps.dir/minicache.cc.o"
  "CMakeFiles/dsasim_apps.dir/minicache.cc.o.d"
  "CMakeFiles/dsasim_apps.dir/nvmetcp.cc.o"
  "CMakeFiles/dsasim_apps.dir/nvmetcp.cc.o.d"
  "CMakeFiles/dsasim_apps.dir/vhost.cc.o"
  "CMakeFiles/dsasim_apps.dir/vhost.cc.o.d"
  "CMakeFiles/dsasim_apps.dir/xmem.cc.o"
  "CMakeFiles/dsasim_apps.dir/xmem.cc.o.d"
  "libdsasim_apps.a"
  "libdsasim_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsasim_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
