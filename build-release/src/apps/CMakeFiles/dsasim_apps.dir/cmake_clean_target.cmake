file(REMOVE_RECURSE
  "libdsasim_apps.a"
)
