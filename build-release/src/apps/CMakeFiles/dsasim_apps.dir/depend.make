# Empty dependencies file for dsasim_apps.
# This may be replaced when dependencies are built.
