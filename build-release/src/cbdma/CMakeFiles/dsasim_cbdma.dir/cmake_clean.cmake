file(REMOVE_RECURSE
  "CMakeFiles/dsasim_cbdma.dir/cbdma.cc.o"
  "CMakeFiles/dsasim_cbdma.dir/cbdma.cc.o.d"
  "libdsasim_cbdma.a"
  "libdsasim_cbdma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsasim_cbdma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
