file(REMOVE_RECURSE
  "libdsasim_cbdma.a"
)
