# Empty compiler generated dependencies file for dsasim_cbdma.
# This may be replaced when dependencies are built.
