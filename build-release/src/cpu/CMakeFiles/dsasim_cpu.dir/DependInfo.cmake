
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/kernels.cc" "src/cpu/CMakeFiles/dsasim_cpu.dir/kernels.cc.o" "gcc" "src/cpu/CMakeFiles/dsasim_cpu.dir/kernels.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-release/src/mem/CMakeFiles/dsasim_mem.dir/DependInfo.cmake"
  "/root/repo/build-release/src/ops/CMakeFiles/dsasim_ops.dir/DependInfo.cmake"
  "/root/repo/build-release/src/sim/CMakeFiles/dsasim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
