file(REMOVE_RECURSE
  "CMakeFiles/dsasim_cpu.dir/kernels.cc.o"
  "CMakeFiles/dsasim_cpu.dir/kernels.cc.o.d"
  "libdsasim_cpu.a"
  "libdsasim_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsasim_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
