file(REMOVE_RECURSE
  "libdsasim_cpu.a"
)
