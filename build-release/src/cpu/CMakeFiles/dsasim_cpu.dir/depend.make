# Empty dependencies file for dsasim_cpu.
# This may be replaced when dependencies are built.
