file(REMOVE_RECURSE
  "CMakeFiles/dsasim_dml.dir/dml.cc.o"
  "CMakeFiles/dsasim_dml.dir/dml.cc.o.d"
  "libdsasim_dml.a"
  "libdsasim_dml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsasim_dml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
