file(REMOVE_RECURSE
  "libdsasim_dml.a"
)
