# Empty dependencies file for dsasim_dml.
# This may be replaced when dependencies are built.
