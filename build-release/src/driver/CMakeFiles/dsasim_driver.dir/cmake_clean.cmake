file(REMOVE_RECURSE
  "CMakeFiles/dsasim_driver.dir/idxd.cc.o"
  "CMakeFiles/dsasim_driver.dir/idxd.cc.o.d"
  "CMakeFiles/dsasim_driver.dir/platform.cc.o"
  "CMakeFiles/dsasim_driver.dir/platform.cc.o.d"
  "libdsasim_driver.a"
  "libdsasim_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsasim_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
