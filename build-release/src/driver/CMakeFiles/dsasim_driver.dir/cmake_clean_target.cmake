file(REMOVE_RECURSE
  "libdsasim_driver.a"
)
