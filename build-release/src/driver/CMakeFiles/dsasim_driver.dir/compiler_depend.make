# Empty compiler generated dependencies file for dsasim_driver.
# This may be replaced when dependencies are built.
