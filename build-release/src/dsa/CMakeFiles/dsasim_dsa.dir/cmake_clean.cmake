file(REMOVE_RECURSE
  "CMakeFiles/dsasim_dsa.dir/device.cc.o"
  "CMakeFiles/dsasim_dsa.dir/device.cc.o.d"
  "CMakeFiles/dsasim_dsa.dir/engine.cc.o"
  "CMakeFiles/dsasim_dsa.dir/engine.cc.o.d"
  "CMakeFiles/dsasim_dsa.dir/group.cc.o"
  "CMakeFiles/dsasim_dsa.dir/group.cc.o.d"
  "libdsasim_dsa.a"
  "libdsasim_dsa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsasim_dsa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
