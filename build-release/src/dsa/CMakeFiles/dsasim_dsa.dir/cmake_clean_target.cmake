file(REMOVE_RECURSE
  "libdsasim_dsa.a"
)
