# Empty dependencies file for dsasim_dsa.
# This may be replaced when dependencies are built.
