file(REMOVE_RECURSE
  "CMakeFiles/dsasim_dto.dir/dto.cc.o"
  "CMakeFiles/dsasim_dto.dir/dto.cc.o.d"
  "libdsasim_dto.a"
  "libdsasim_dto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsasim_dto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
