file(REMOVE_RECURSE
  "libdsasim_dto.a"
)
