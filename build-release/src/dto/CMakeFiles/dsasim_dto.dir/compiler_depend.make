# Empty compiler generated dependencies file for dsasim_dto.
# This may be replaced when dependencies are built.
