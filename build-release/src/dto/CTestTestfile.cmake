# CMake generated Testfile for 
# Source directory: /root/repo/src/dto
# Build directory: /root/repo/build-release/src/dto
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
