file(REMOVE_RECURSE
  "CMakeFiles/dsasim_mem.dir/address_space.cc.o"
  "CMakeFiles/dsasim_mem.dir/address_space.cc.o.d"
  "CMakeFiles/dsasim_mem.dir/cache.cc.o"
  "CMakeFiles/dsasim_mem.dir/cache.cc.o.d"
  "CMakeFiles/dsasim_mem.dir/mem_system.cc.o"
  "CMakeFiles/dsasim_mem.dir/mem_system.cc.o.d"
  "CMakeFiles/dsasim_mem.dir/page_table.cc.o"
  "CMakeFiles/dsasim_mem.dir/page_table.cc.o.d"
  "CMakeFiles/dsasim_mem.dir/phys_mem.cc.o"
  "CMakeFiles/dsasim_mem.dir/phys_mem.cc.o.d"
  "libdsasim_mem.a"
  "libdsasim_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsasim_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
