file(REMOVE_RECURSE
  "libdsasim_mem.a"
)
