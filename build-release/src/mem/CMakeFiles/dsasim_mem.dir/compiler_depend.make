# Empty compiler generated dependencies file for dsasim_mem.
# This may be replaced when dependencies are built.
