file(REMOVE_RECURSE
  "CMakeFiles/dsasim_ops.dir/crc32.cc.o"
  "CMakeFiles/dsasim_ops.dir/crc32.cc.o.d"
  "CMakeFiles/dsasim_ops.dir/delta.cc.o"
  "CMakeFiles/dsasim_ops.dir/delta.cc.o.d"
  "CMakeFiles/dsasim_ops.dir/dif.cc.o"
  "CMakeFiles/dsasim_ops.dir/dif.cc.o.d"
  "libdsasim_ops.a"
  "libdsasim_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsasim_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
