file(REMOVE_RECURSE
  "libdsasim_ops.a"
)
