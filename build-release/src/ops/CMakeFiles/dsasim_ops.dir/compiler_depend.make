# Empty compiler generated dependencies file for dsasim_ops.
# This may be replaced when dependencies are built.
