file(REMOVE_RECURSE
  "CMakeFiles/dsasim_sim.dir/logging.cc.o"
  "CMakeFiles/dsasim_sim.dir/logging.cc.o.d"
  "CMakeFiles/dsasim_sim.dir/simulation.cc.o"
  "CMakeFiles/dsasim_sim.dir/simulation.cc.o.d"
  "libdsasim_sim.a"
  "libdsasim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsasim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
