file(REMOVE_RECURSE
  "libdsasim_sim.a"
)
