# Empty dependencies file for dsasim_sim.
# This may be replaced when dependencies are built.
