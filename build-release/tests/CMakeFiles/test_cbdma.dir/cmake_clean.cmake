file(REMOVE_RECURSE
  "CMakeFiles/test_cbdma.dir/test_cbdma.cc.o"
  "CMakeFiles/test_cbdma.dir/test_cbdma.cc.o.d"
  "test_cbdma"
  "test_cbdma.pdb"
  "test_cbdma[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cbdma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
