# Empty dependencies file for test_cbdma.
# This may be replaced when dependencies are built.
