file(REMOVE_RECURSE
  "CMakeFiles/test_dml.dir/test_dml.cc.o"
  "CMakeFiles/test_dml.dir/test_dml.cc.o.d"
  "test_dml"
  "test_dml.pdb"
  "test_dml[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
