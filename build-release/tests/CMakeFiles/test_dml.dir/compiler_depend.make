# Empty compiler generated dependencies file for test_dml.
# This may be replaced when dependencies are built.
