file(REMOVE_RECURSE
  "CMakeFiles/test_dsa.dir/test_dsa.cc.o"
  "CMakeFiles/test_dsa.dir/test_dsa.cc.o.d"
  "test_dsa"
  "test_dsa.pdb"
  "test_dsa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dsa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
