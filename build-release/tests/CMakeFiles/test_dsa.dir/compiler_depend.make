# Empty compiler generated dependencies file for test_dsa.
# This may be replaced when dependencies are built.
