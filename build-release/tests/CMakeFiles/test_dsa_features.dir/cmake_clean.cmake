file(REMOVE_RECURSE
  "CMakeFiles/test_dsa_features.dir/test_dsa_features.cc.o"
  "CMakeFiles/test_dsa_features.dir/test_dsa_features.cc.o.d"
  "test_dsa_features"
  "test_dsa_features.pdb"
  "test_dsa_features[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dsa_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
