# Empty dependencies file for test_dsa_features.
# This may be replaced when dependencies are built.
