file(REMOVE_RECURSE
  "CMakeFiles/test_dto.dir/test_dto.cc.o"
  "CMakeFiles/test_dto.dir/test_dto.cc.o.d"
  "test_dto"
  "test_dto.pdb"
  "test_dto[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
