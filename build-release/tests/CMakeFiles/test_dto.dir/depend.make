# Empty dependencies file for test_dto.
# This may be replaced when dependencies are built.
