file(REMOVE_RECURSE
  "CMakeFiles/dsa_perf_micros.dir/dsa_perf_micros.cc.o"
  "CMakeFiles/dsa_perf_micros.dir/dsa_perf_micros.cc.o.d"
  "dsa_perf_micros"
  "dsa_perf_micros.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsa_perf_micros.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
