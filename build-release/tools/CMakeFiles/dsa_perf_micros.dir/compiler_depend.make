# Empty compiler generated dependencies file for dsa_perf_micros.
# This may be replaced when dependencies are built.
