
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsa/device.cc" "src/dsa/CMakeFiles/dsasim_dsa.dir/device.cc.o" "gcc" "src/dsa/CMakeFiles/dsasim_dsa.dir/device.cc.o.d"
  "/root/repo/src/dsa/engine.cc" "src/dsa/CMakeFiles/dsasim_dsa.dir/engine.cc.o" "gcc" "src/dsa/CMakeFiles/dsasim_dsa.dir/engine.cc.o.d"
  "/root/repo/src/dsa/group.cc" "src/dsa/CMakeFiles/dsasim_dsa.dir/group.cc.o" "gcc" "src/dsa/CMakeFiles/dsasim_dsa.dir/group.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-sanitize/src/mem/CMakeFiles/dsasim_mem.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/ops/CMakeFiles/dsasim_ops.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/sim/CMakeFiles/dsasim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
