
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/address_space.cc" "src/mem/CMakeFiles/dsasim_mem.dir/address_space.cc.o" "gcc" "src/mem/CMakeFiles/dsasim_mem.dir/address_space.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/mem/CMakeFiles/dsasim_mem.dir/cache.cc.o" "gcc" "src/mem/CMakeFiles/dsasim_mem.dir/cache.cc.o.d"
  "/root/repo/src/mem/mem_system.cc" "src/mem/CMakeFiles/dsasim_mem.dir/mem_system.cc.o" "gcc" "src/mem/CMakeFiles/dsasim_mem.dir/mem_system.cc.o.d"
  "/root/repo/src/mem/page_table.cc" "src/mem/CMakeFiles/dsasim_mem.dir/page_table.cc.o" "gcc" "src/mem/CMakeFiles/dsasim_mem.dir/page_table.cc.o.d"
  "/root/repo/src/mem/phys_mem.cc" "src/mem/CMakeFiles/dsasim_mem.dir/phys_mem.cc.o" "gcc" "src/mem/CMakeFiles/dsasim_mem.dir/phys_mem.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-sanitize/src/sim/CMakeFiles/dsasim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
