
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ops/crc32.cc" "src/ops/CMakeFiles/dsasim_ops.dir/crc32.cc.o" "gcc" "src/ops/CMakeFiles/dsasim_ops.dir/crc32.cc.o.d"
  "/root/repo/src/ops/delta.cc" "src/ops/CMakeFiles/dsasim_ops.dir/delta.cc.o" "gcc" "src/ops/CMakeFiles/dsasim_ops.dir/delta.cc.o.d"
  "/root/repo/src/ops/dif.cc" "src/ops/CMakeFiles/dsasim_ops.dir/dif.cc.o" "gcc" "src/ops/CMakeFiles/dsasim_ops.dir/dif.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-sanitize/src/sim/CMakeFiles/dsasim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
