# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-sanitize/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-sanitize/tests/test_sim[1]_include.cmake")
include("/root/repo/build-sanitize/tests/test_sweep[1]_include.cmake")
include("/root/repo/build-sanitize/tests/test_ops[1]_include.cmake")
include("/root/repo/build-sanitize/tests/test_mem[1]_include.cmake")
include("/root/repo/build-sanitize/tests/test_cpu[1]_include.cmake")
include("/root/repo/build-sanitize/tests/test_dsa[1]_include.cmake")
include("/root/repo/build-sanitize/tests/test_dml[1]_include.cmake")
include("/root/repo/build-sanitize/tests/test_dto[1]_include.cmake")
include("/root/repo/build-sanitize/tests/test_cbdma[1]_include.cmake")
include("/root/repo/build-sanitize/tests/test_driver[1]_include.cmake")
include("/root/repo/build-sanitize/tests/test_apps[1]_include.cmake")
include("/root/repo/build-sanitize/tests/test_properties[1]_include.cmake")
include("/root/repo/build-sanitize/tests/test_dsa_features[1]_include.cmake")
include("/root/repo/build-sanitize/tests/test_integration[1]_include.cmake")
include("/root/repo/build-sanitize/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build-sanitize/tests/test_calibration[1]_include.cmake")
