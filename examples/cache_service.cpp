/**
 * @file
 * Example: a cloud caching service with transparent DSA offload.
 *
 * The MiniCache app (CacheLib-style) serves get/set traffic; the
 * memcpy() calls it makes are interposed by DTO, which pushes copies
 * of 8 KB and above to DSA — no cache-service code changes, exactly
 * the deployment story of the paper's Appendix B.
 *
 * Build & run:  ./build/examples/cache_service
 */

#include <cstdio>

#include "apps/minicache.hh"
#include "sim/random.hh"

using namespace dsasim;

namespace
{

SimTask
trafficThread(Platform &plat, AddressSpace &as,
              apps::MiniCache &cache, int core_id, int ops,
              Histogram &lat, Latch &done)
{
    Core &core = plat.core(static_cast<std::size_t>(core_id));
    Rng rng(40 + static_cast<std::uint64_t>(core_id));
    Addr scratch = as.alloc(1 << 20);
    for (int i = 0; i < ops; ++i) {
        std::uint64_t key = rng.range(0, 2047);
        std::uint64_t len =
            rng.chance(0.05) ? rng.range(8192, 262144)
                             : rng.range(128, 4096);
        Tick t0 = plat.sim().now();
        if (rng.chance(0.2)) {
            co_await cache.set(core, key, scratch, len);
        } else {
            std::uint64_t got = 0;
            bool hit = false;
            co_await cache.get(core, key, scratch, got, hit);
            if (!hit)
                co_await cache.set(core, key, scratch, len);
        }
        lat.add(toUs(plat.sim().now() - t0));
    }
    done.arrive();
}

} // namespace

int
main()
{
    for (bool use_dsa : {false, true}) {
        Simulation sim;
        Platform plat(sim, PlatformConfig::spr());
        AddressSpace &as = plat.mem().createSpace();

        // One shared WQ per DSA instance (ENQCMD from any thread).
        std::vector<DsaDevice *> devs;
        for (std::size_t d = 0; d < plat.dsaCount(); ++d) {
            Platform::configureBasic(plat.dsa(d), 16, 1,
                                     WorkQueue::Mode::Shared);
            devs.push_back(&plat.dsa(d));
        }
        dml::ExecutorConfig ec;
        ec.path = dml::Path::Hardware;
        dml::Executor exec(sim, plat.mem(), plat.kernels(), devs,
                           ec);
        Dto::Config dc;
        dc.threshold = use_dsa ? 8192 : ~std::uint64_t(0);
        Dto dto(exec, plat.kernels(), dc);

        apps::MiniCache cache(plat, as, dto, {});

        const int threads = 6, ops = 4000;
        Histogram lat;
        Latch done(sim, threads);
        for (int t = 0; t < threads; ++t)
            trafficThread(plat, as, cache, t, ops, lat, done);
        sim.run();

        std::printf("%s: %6.0f Kops/s | p50 %5.1f us | p99 %6.1f us "
                    "| p99.9 %6.1f us | %llu items, %llu evictions, "
                    "%.1f%% of copied bytes offloaded\n",
                    use_dsa ? "DTO->DSA " : "software ",
                    static_cast<double>(lat.count()) /
                        toUs(sim.now()) * 1000.0,
                    lat.percentile(50), lat.percentile(99),
                    lat.percentile(99.9),
                    static_cast<unsigned long long>(
                        cache.itemCount()),
                    static_cast<unsigned long long>(
                        cache.evictions()),
                    100.0 *
                        static_cast<double>(dto.bytesOffloaded) /
                        static_cast<double>(
                            std::max<std::uint64_t>(
                                1, dto.bytesOffloaded +
                                       dto.bytesOnCpu)));
    }
    return 0;
}
