/**
 * @file
 * Example: incremental checkpointing with Create/Apply Delta Record.
 *
 * A VM-live-migration-style loop: a "guest" keeps dirtying a memory
 * image while a checkpointer periodically captures the difference
 * against the last checkpoint. Instead of copying the whole image,
 * the checkpointer asks DSA for a delta record per block (Table 1's
 * Create Delta Record) and ships only the record; the destination
 * applies it (Apply Delta Record) to reconstruct the image.
 *
 * Shows: delta ops through the public API, the record-overflow
 * fallback (blocks that changed too much are sent as full copies),
 * and an end-to-end integrity check of the reconstructed image.
 *
 * Build & run:  ./build/examples/delta_checkpoint
 */

#include <cstdio>

#include "dml/dml.hh"
#include "driver/platform.hh"
#include "ops/delta.hh"
#include "sim/random.hh"

using namespace dsasim;

namespace
{

constexpr std::uint64_t blockBytes = 64 << 10;
constexpr int blocks = 64; // 4 MB image
constexpr int rounds = 5;

SimTask
checkpointLoop(Simulation &sim, Platform &plat, dml::Executor &exec,
               AddressSpace &as)
{
    Core &core = plat.core(0);
    Rng rng(11);

    const std::uint64_t image_bytes = blockBytes * blocks;
    Addr image = as.alloc(image_bytes);     // live image (source VM)
    Addr shadow = as.alloc(image_bytes);    // last checkpoint (src)
    Addr replica = as.alloc(image_bytes);   // destination VM
    Addr record = as.alloc(2 * blockBytes); // per-block delta record
    const std::uint64_t max_record = blockBytes / 4; // ship budget

    // Initial full copy: image -> shadow and -> replica.
    {
        std::vector<std::uint8_t> init(image_bytes);
        Rng r(1);
        for (auto &b : init)
            b = static_cast<std::uint8_t>(r.next32());
        as.write(image, init.data(), image_bytes);
        dml::OpResult res;
        co_await exec.executeHardware(
            core, dml::Executor::memMove(as, shadow, image,
                                         image_bytes), res);
        co_await exec.executeHardware(
            core, dml::Executor::memMove(as, replica, image,
                                         image_bytes), res);
    }

    std::uint64_t shipped_delta = 0, shipped_full = 0;
    for (int round = 0; round < rounds; ++round) {
        // Guest dirties: a few blocks lightly, one block heavily.
        for (int k = 0; k < 6; ++k) {
            Addr at = image + rng.below(blocks) * blockBytes +
                      rng.below(blockBytes / 8) * 8;
            std::uint64_t v = rng.next64();
            as.write(at, &v, 8);
        }
        {
            Addr heavy = image + rng.below(blocks) * blockBytes;
            std::vector<std::uint8_t> junk(blockBytes);
            Rng r(200 + static_cast<std::uint64_t>(round));
            for (auto &b : junk)
                b = static_cast<std::uint8_t>(r.next32());
            as.write(heavy, junk.data(), junk.size());
        }

        // Checkpoint pass: per block, create a delta vs the shadow.
        for (int blk = 0; blk < blocks; ++blk) {
            Addr img = image + static_cast<Addr>(blk) * blockBytes;
            Addr shd = shadow + static_cast<Addr>(blk) * blockBytes;
            Addr rep = replica + static_cast<Addr>(blk) * blockBytes;

            dml::OpResult cr;
            co_await exec.executeHardware(
                core,
                dml::Executor::createDelta(as, shd, img, blockBytes,
                                           record, max_record),
                cr);
            if (cr.recordBytes == 0 && cr.ok)
                continue; // clean block

            if (cr.recordFits) {
                // Ship + apply the delta on the replica, and update
                // the shadow the same way.
                shipped_delta += cr.recordBytes;
                dml::OpResult ar;
                co_await exec.executeHardware(
                    core,
                    dml::Executor::applyDelta(as, rep, record,
                                              cr.recordBytes,
                                              blockBytes), ar);
                co_await exec.executeHardware(
                    core,
                    dml::Executor::applyDelta(as, shd, record,
                                              cr.recordBytes,
                                              blockBytes), ar);
            } else {
                // Too dirty: full block copy fallback.
                shipped_full += blockBytes;
                dml::OpResult mr;
                co_await exec.executeHardware(
                    core, dml::Executor::memMove(as, rep, img,
                                                 blockBytes), mr);
                co_await exec.executeHardware(
                    core, dml::Executor::memMove(as, shd, img,
                                                 blockBytes), mr);
            }
        }

        bool ok = as.equal(image, replica, image_bytes);
        std::printf("  round %d: replica %s | shipped %6.1f KB as "
                    "deltas + %5.1f KB full blocks (vs %u KB naive)\n",
                    round, ok ? "in sync" : "DIVERGED",
                    static_cast<double>(shipped_delta) / 1024.0,
                    static_cast<double>(shipped_full) / 1024.0,
                    static_cast<unsigned>(image_bytes / 1024));
        shipped_delta = shipped_full = 0;
    }
    std::printf("checkpointing finished at t=%.2f ms\n",
                toUs(sim.now()) / 1000.0);
}

} // namespace

int
main()
{
    Simulation sim;
    Platform plat(sim, PlatformConfig::spr());
    Platform::configureBasic(plat.dsa(0), 32, 2);
    AddressSpace &as = plat.mem().createSpace();
    dml::ExecutorConfig ec;
    ec.path = dml::Path::Hardware;
    dml::Executor exec(sim, plat.mem(), plat.kernels(),
                       {&plat.dsa(0)}, ec);

    std::printf("Incremental delta-record checkpointing of a 4MB "
                "image (%d rounds):\n", rounds);
    checkpointLoop(sim, plat, exec, as);
    sim.run();
    return 0;
}
