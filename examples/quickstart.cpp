/**
 * @file
 * Quickstart: the 5-minute tour of the dsasim public API.
 *
 *  1. Build a Sapphire-Rapids-like platform.
 *  2. Configure and enable a DSA instance (accel-config style).
 *  3. Run synchronous one-shot jobs through dml::Executor.
 *  4. Run an asynchronous job and overlap CPU work with it.
 *  5. Run a batch, and compare against the software path.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "dml/dml.hh"
#include "driver/idxd.hh"
#include "driver/platform.hh"

using namespace dsasim;

namespace
{

SimTask
demo(Simulation &sim, Platform &plat, dml::Executor &exec,
     AddressSpace &as)
{
    Core &core = plat.core(0);
    const std::uint64_t n = 256 << 10;

    // --- allocate two buffers and fill the source -------------------
    Addr src = as.alloc(n);
    Addr dst = as.alloc(n);
    std::vector<std::uint8_t> payload(n);
    for (std::size_t i = 0; i < n; ++i)
        payload[i] = static_cast<std::uint8_t>(i * 131);
    as.write(src, payload.data(), n);

    // --- 1) synchronous hardware memcpy -----------------------------
    dml::OpResult r;
    co_await exec.executeHardware(
        core, dml::Executor::memMove(as, dst, src, n), r);
    std::printf("[sync] copied %lluB on DSA in %.0f ns (%.1f GB/s), "
                "data %s\n",
                static_cast<unsigned long long>(n), toNs(r.latency),
                static_cast<double>(n) / toNs(r.latency),
                as.equal(src, dst, n) ? "verified" : "CORRUPT");

    // --- 2) CRC32 on the device vs the core --------------------------
    dml::OpResult hw_crc, sw_crc;
    co_await exec.executeHardware(
        core, dml::Executor::crc32(as, src, n), hw_crc);
    co_await exec.executeSoftware(
        core, dml::Executor::crc32(as, src, n), sw_crc);
    std::printf("[crc ] device=0x%08x core=0x%08x (%s), "
                "dsa %.0f ns vs cpu %.0f ns\n",
                hw_crc.crc, sw_crc.crc,
                hw_crc.crc == sw_crc.crc ? "match" : "MISMATCH",
                toNs(hw_crc.latency), toNs(sw_crc.latency));

    // --- 3) asynchronous job with overlapped CPU work ----------------
    auto job =
        exec.prepare(dml::Executor::memMove(as, dst, src, n));
    co_await exec.submit(core, *job);
    // ... the core is free here; pretend to do 2 us of real work ...
    co_await core.busyFor(fromUs(2), "useful-work");
    dml::OpResult async_r;
    co_await exec.wait(core, *job, async_r);
    std::printf("[asyn] total wall %.0f ns; core spent %.0f ns in "
                "UMWAIT\n",
                toNs(async_r.latency),
                toNs(core.umwaitTicks()));

    // --- 4) a batch of small copies (F2) ------------------------------
    std::vector<WorkDescriptor> subs;
    for (int i = 0; i < 16; ++i) {
        subs.push_back(dml::Executor::memMove(
            as, dst + static_cast<Addr>(i) * 4096,
            src + static_cast<Addr>(i) * 4096, 4096));
    }
    dml::OpResult batch_r;
    co_await exec.executeBatch(core, subs, batch_r);
    std::printf("[batch] 16 x 4KB in %.0f ns (%.1f GB/s aggregate)\n",
                toNs(batch_r.latency),
                16.0 * 4096.0 / toNs(batch_r.latency));

    std::printf("done at t=%.2f us, %llu events executed\n",
                toUs(sim.now()),
                static_cast<unsigned long long>(
                    sim.eventsExecuted()));
}

} // namespace

int
main()
{
    Simulation sim;
    Platform plat(sim, PlatformConfig::spr());

    // Driver-style configuration: 1 group, 1 DWQ(32), 2 engines.
    idxd::Driver driver(plat);
    DsaDevice &dev = driver.device(0);
    Group &grp = driver.configGroup(dev);
    driver.configWq(dev, grp, {WorkQueue::Mode::Dedicated, 32, 0, 0,
                               "wq0.0"});
    driver.configEngine(dev, grp);
    driver.configEngine(dev, grp);
    driver.enableDevice(dev);
    for (const auto &line : driver.list())
        std::printf("%s\n", line.c_str());

    AddressSpace &as = plat.mem().createSpace();
    dml::Executor exec(sim, plat.mem(), plat.kernels(), {&dev}, {});

    demo(sim, plat, exec, as);
    sim.run();
    return 0;
}
