/**
 * @file
 * Example: an NVMe-over-TCP storage target with DSA-offloaded Data
 * Digest CRC32 (the paper's Appendix C scenario).
 *
 * Serves a closed-loop random-read workload three ways — no digest,
 * ISA-L on the reactor cores, and CRC offloaded to DSA — and prints
 * the throughput/latency picture for a fixed core budget.
 *
 * Build & run:  ./build/examples/storage_target
 */

#include <cstdio>

#include "apps/nvmetcp.hh"

using namespace dsasim;

int
main()
{
    struct ModeSpec
    {
        apps::NvmeTcpTarget::Digest mode;
        const char *name;
    };
    const ModeSpec modes[] = {
        {apps::NvmeTcpTarget::Digest::None, "no digest"},
        {apps::NvmeTcpTarget::Digest::IsaL, "ISA-L digest"},
        {apps::NvmeTcpTarget::Digest::Dsa, "DSA digest"},
    };

    std::printf("NVMe/TCP target, 4 reactor cores, 16KB random "
                "reads, QD 256:\n");
    for (const auto &m : modes) {
        Simulation sim;
        Platform plat(sim, PlatformConfig::spr());
        AddressSpace &as = plat.mem().createSpace();
        Platform::configureBasic(plat.dsa(0), 32, 2,
                                 WorkQueue::Mode::Shared);
        dml::ExecutorConfig ec;
        ec.path = dml::Path::Hardware;
        dml::Executor exec(sim, plat.mem(), plat.kernels(),
                           {&plat.dsa(0)}, ec);

        apps::NvmeTcpTarget::Config cfg;
        cfg.digest = m.mode;
        cfg.targetCores = 4;
        cfg.ioBytes = 16 << 10;
        apps::NvmeTcpTarget target(plat, as, &exec, cfg);
        target.run(fromMs(6));
        sim.run();

        std::printf("  %-13s %7.0f KIOPS | mean %5.0f us | "
                    "p99 %5.0f us | digest errors: %llu\n",
                    m.name, target.iops() / 1000.0,
                    target.meanLatencyUs(),
                    target.latencyHistogram().percentile(99),
                    static_cast<unsigned long long>(
                        target.crcMismatches()));
    }
    std::printf("\nDSA keeps the digest off the reactor cores: "
                "IOPS track the\nno-digest build while ISA-L burns "
                "core cycles per block.\n");
    return 0;
}
