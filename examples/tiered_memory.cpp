/**
 * @file
 * Example: tiered-memory page migration with DSA (guideline G4).
 *
 * A hot/cold tiering daemon demotes cold pages from local DRAM to
 * CXL-attached memory and promotes hot pages back. The example
 * compares core-driven migration (load/store memcpy) against DSA
 * batch offload, and shows the CXL read/write asymmetry the paper
 * measures: promotion (CXL -> DRAM) is cheaper than demotion
 * (DRAM -> CXL) because CXL writes are slower than reads.
 *
 * Build & run:  ./build/examples/tiered_memory
 */

#include <cstdio>

#include "dml/dml.hh"
#include "driver/platform.hh"

using namespace dsasim;

namespace
{

constexpr std::uint64_t pageSz = 2 << 20; // migrate in 2MB folios
constexpr int pages = 24;

SimTask
migrate(Simulation &sim, Platform &plat, dml::Executor &exec,
        AddressSpace &as, bool use_dsa, bool demote, double &ms,
        bool &verified)
{
    Core &core = plat.core(0);
    MemKind from = demote ? MemKind::DramLocal : MemKind::Cxl;
    MemKind to = demote ? MemKind::Cxl : MemKind::DramLocal;

    Addr src = as.alloc(pageSz * pages, from);
    Addr dst = as.alloc(pageSz * pages, to);
    // Stamp each page so we can verify the migration.
    for (int p = 0; p < pages; ++p) {
        std::uint64_t stamp = 0xfeed0000 + static_cast<unsigned>(p);
        as.write(src + static_cast<Addr>(p) * pageSz, &stamp, 8);
    }

    Tick t0 = sim.now();
    if (use_dsa) {
        // One batch moves the whole folio list (G1 + G2).
        std::vector<WorkDescriptor> subs;
        for (int p = 0; p < pages; ++p) {
            subs.push_back(dml::Executor::memMove(
                as, dst + static_cast<Addr>(p) * pageSz,
                src + static_cast<Addr>(p) * pageSz, pageSz));
        }
        dml::OpResult r;
        co_await exec.executeBatch(core, subs, r);
    } else {
        for (int p = 0; p < pages; ++p) {
            auto r = plat.kernels().memcpyOp(
                core, as, dst + static_cast<Addr>(p) * pageSz,
                src + static_cast<Addr>(p) * pageSz, pageSz);
            co_await core.busyFor(r.duration, "migration");
        }
    }
    ms = toUs(sim.now() - t0) / 1000.0;

    verified = true;
    for (int p = 0; p < pages; ++p) {
        std::uint64_t stamp = 0;
        as.read(dst + static_cast<Addr>(p) * pageSz, &stamp, 8);
        if (stamp != 0xfeed0000 + static_cast<unsigned>(p))
            verified = false;
    }
}

} // namespace

int
main()
{
    std::printf("Tiered-memory migration of %d x 2MB folios "
                "(DRAM <-> CXL):\n",
                pages);
    for (bool demote : {true, false}) {
        for (bool dsa : {false, true}) {
            Simulation sim;
            Platform plat(sim, PlatformConfig::spr());
            Platform::configureBasic(plat.dsa(0));
            AddressSpace &as = plat.mem().createSpace();
            dml::ExecutorConfig ec;
            ec.path = dml::Path::Hardware;
            dml::Executor exec(sim, plat.mem(), plat.kernels(),
                               {&plat.dsa(0)}, ec);
            double ms = 0;
            bool ok = false;
            migrate(sim, plat, exec, as, dsa, demote, ms, ok);
            sim.run();
            std::printf("  %-7s via %-3s: %7.2f ms (%5.1f GB/s) %s\n",
                        demote ? "demote" : "promote",
                        dsa ? "DSA" : "CPU", ms,
                        static_cast<double>(pageSz) * pages / 1e6 /
                            ms,
                        ok ? "[verified]" : "[CORRUPT]");
        }
    }
    std::printf("\nNote the asymmetry: promotion reads CXL (faster) "
                "while demotion\nwrites CXL (slower) — G4's guidance "
                "on heterogeneous memory.\n");
    return 0;
}
