/**
 * @file
 * Example: a virtual switch forwarding packets into a VM, with the
 * packet-copy stage offloaded to DSA — the paper's §6.4 case study
 * condensed into a runnable scenario.
 *
 * Demonstrates the guidelines in action:
 *   G1 - one batch descriptor per 32-packet burst
 *   G2 - three-stage asynchronous pipeline
 *   G3 - cache-control hint keeps payloads in LLC for the guest
 *   G6 - a dedicated WQ bound to the forwarding core
 *
 * Build & run:  ./build/examples/vhost_switch
 */

#include <cstdio>

#include "apps/vhost.hh"
#include "dml/dml.hh"

using namespace dsasim;

namespace
{

void
runMode(bool use_dsa, std::uint32_t pkt_bytes)
{
    Simulation sim;
    Platform plat(sim, PlatformConfig::spr());
    AddressSpace &as = plat.mem().createSpace();

    Platform::configureBasic(plat.dsa(0), 32, /*engines=*/2);
    dml::ExecutorConfig ec;
    ec.path = dml::Path::Hardware;
    dml::Executor exec(sim, plat.mem(), plat.kernels(),
                       {&plat.dsa(0)}, ec);

    apps::Virtqueue vq(1024);
    apps::VhostSwitch::Config cfg;
    cfg.useDsa = use_dsa;
    cfg.packetBytes = pkt_bytes;
    apps::VhostSwitch host(plat, as, plat.core(0), &exec, vq, cfg);
    apps::GuestDriver guest(plat, as, plat.core(1), vq, 2048, 512);

    const Tick horizon = fromUs(1000);
    host.run(horizon);
    guest.run(horizon);
    sim.runUntil(horizon);

    double mpps = static_cast<double>(host.packetsForwarded()) /
                  toUs(sim.now());
    std::printf("  %-4s  %4uB packets: %6.2f Mpps, %llu delivered, "
                "%llu out-of-order, %llu corrupt\n",
                use_dsa ? "DSA" : "CPU", pkt_bytes, mpps,
                static_cast<unsigned long long>(guest.received()),
                static_cast<unsigned long long>(
                    guest.orderViolations()),
                static_cast<unsigned long long>(
                    guest.payloadErrors()));
}

} // namespace

int
main()
{
    std::printf("Vhost packet forwarding, CPU copies vs DSA "
                "offload:\n");
    for (std::uint32_t bytes : {256u, 1024u, 1518u}) {
        runMode(false, bytes);
        runMode(true, bytes);
    }
    return 0;
}
