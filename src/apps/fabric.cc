#include "apps/fabric.hh"

#include "sim/logging.hh"

namespace dsasim::apps
{

FabricChannel::FabricChannel(Platform &p, AddressSpace &space,
                             dml::Executor *exec, Core &sender,
                             Core &receiver, const Config &cfg,
                             Semaphore *send_lock,
                             Semaphore *recv_lock)
    : plat(p), as(space), executor(exec), sendCore(sender),
      recvCore(receiver), config(cfg), sendLock(send_lock),
      recvLock(recv_lock)
{
    fatal_if(cfg.useDsa && !exec,
             "DSA-mode FabricChannel needs an executor");
    bouncePool = as.alloc(static_cast<std::uint64_t>(
                              cfg.bounceBuffers) *
                          cfg.segmentBytes);
    bounceCredits =
        std::make_unique<Semaphore>(plat.sim(), cfg.bounceBuffers);
}

SimTask
FabricChannel::segmentPipeline(Addr src, Addr dst, std::uint64_t n,
                               Latch &done)
{
    // DSA path: per segment, copy-in then copy-out, both offloaded;
    // the window keeps `bounceBuffers` segments in flight.
    Simulation &sim = plat.sim();
    const std::uint64_t seg = config.segmentBytes;
    const Tick seg_cost =
        sendCore.cpuParams().cyclesToTicks(config.segmentCycles);
    const std::uint64_t nsegs = (n + seg - 1) / seg;
    Latch all(sim, nsegs);

    struct SegTask
    {
        static SimTask
        go(FabricChannel &ch, Addr bounce, Addr s, Addr d,
           std::uint64_t len, Latch &seg_done)
        {
            Simulation &fsim = ch.plat.sim();
            const Tick cost = ch.recvCore.cpuParams().cyclesToTicks(
                ch.config.segmentCycles);
            // Copy-in: sender buffer -> bounce.
            auto in = ch.executor->prepare(
                dml::Executor::memMove(ch.as, bounce, s, len));
            co_await ch.executor->submit(ch.sendCore, *in);
            if (!in->cr.isDone())
                co_await in->cr.done.wait();
            // Copy-out: bounce -> receiver buffer, chained on the
            // receiver side.
            ch.recvCore.chargeBusy(cost, "fabric-seg");
            co_await fsim.delay(cost);
            auto out = ch.executor->prepare(
                dml::Executor::memMove(ch.as, d, bounce, len));
            co_await ch.executor->submit(ch.recvCore, *out);
            if (!out->cr.isDone())
                co_await out->cr.done.wait();
            ch.bounceCredits->release();
            seg_done.arrive();
        }
    };

    for (std::uint64_t i = 0; i < nsegs; ++i) {
        co_await bounceCredits->acquire();
        sendCore.chargeBusy(seg_cost, "fabric-seg");
        co_await sim.delay(seg_cost);
        Addr bounce =
            bouncePool + (i % config.bounceBuffers) * seg;
        std::uint64_t len = std::min(seg, n - i * seg);
        SegTask::go(*this, bounce, src + i * seg, dst + i * seg, len,
                    all);
    }
    co_await all.wait();
    done.arrive();
}

CoTask
FabricChannel::transfer(Addr src, Addr dst, std::uint64_t n)
{
    Simulation &sim = plat.sim();
    const std::uint64_t seg = config.segmentBytes;
    ++messages;
    bytes += n;

    co_await sendCore.busyFor(
        sendCore.cpuParams().cyclesToTicks(config.msgSetupCycles),
        "fabric-setup");

    if (config.useDsa) {
        Latch done(sim, 1);
        segmentPipeline(src, dst, n, done);
        co_await done.wait();
        co_return;
    }

    // Software path: the progress engine moves one segment at a
    // time; each segment is two core copies plus the producer/
    // consumer handshake, serialized against whatever else those
    // ranks' cores are doing.
    const Tick seg_cost = sendCore.cpuParams().cyclesToTicks(
        config.segmentCycles + config.swSegmentSyncCycles / 2.0);
    for (std::uint64_t off = 0; off < n; off += seg) {
        std::uint64_t len = std::min(seg, n - off);
        Addr bounce =
            bouncePool + (off / seg % config.bounceBuffers) * seg;
        if (sendLock)
            co_await sendLock->acquire();
        auto in = plat.kernels().memcpyOp(sendCore, as, bounce,
                                          src + off, len);
        co_await sendCore.busyFor(in.duration + seg_cost, "fabric");
        if (sendLock)
            sendLock->release();
        if (recvLock)
            co_await recvLock->acquire();
        auto out = plat.kernels().memcpyOp(recvCore, as, dst + off,
                                           bounce, len);
        co_await recvCore.busyFor(out.duration + seg_cost, "fabric");
        if (recvLock)
            recvLock->release();
    }
}

RingAllReduce::RingAllReduce(Platform &p, AddressSpace &space,
                             dml::Executor *exec, unsigned ranks,
                             const Config &cfg)
    : plat(p), as(space), nRanks(ranks), config(cfg)
{
    fatal_if(ranks < 2, "all-reduce needs at least two ranks");
    for (unsigned r = 0; r < ranks; ++r)
        coreLocks.push_back(std::make_unique<Semaphore>(p.sim(), 1));
    for (unsigned r = 0; r < ranks; ++r) {
        channels.push_back(std::make_unique<FabricChannel>(
            p, space, exec, p.core(r), p.core((r + 1) % ranks),
            cfg.channel, coreLocks[r].get(),
            coreLocks[(r + 1) % ranks].get()));
    }
}

CoTask
RingAllReduce::run(std::uint64_t total_bytes)
{
    Simulation &sim = plat.sim();
    const std::uint64_t chunk = total_bytes / nRanks;

    // Lazily (re)allocate per-rank gradient and staging buffers.
    if (rankBuf.empty() || bufBytes < total_bytes) {
        rankBuf.clear();
        chunkBuf.clear();
        bufBytes = total_bytes;
        for (unsigned r = 0; r < nRanks; ++r) {
            rankBuf.push_back(as.alloc(total_bytes));
            chunkBuf.push_back(as.alloc(chunk + 64));
        }
    }

    // Ring all-reduce: 2*(R-1) steps; in each step every rank sends
    // one chunk to its neighbor (all transfers concurrent) and the
    // reduce-scatter half pays the f32 add on the receiving core.
    for (unsigned step = 0; step < 2 * (nRanks - 1); ++step) {
        bool reduce_phase = step < nRanks - 1;
        Latch done(sim, nRanks);
        struct Step
        {
            static SimTask
            go(RingAllReduce &ar, unsigned rank, std::uint64_t chk,
               bool reduce, Latch &l)
            {
                FabricChannel &ch = *ar.channels[rank];
                unsigned next = (rank + 1) % ar.nRanks;
                co_await ch.transfer(ar.rankBuf[rank],
                                     ar.chunkBuf[next], chk);
                if (reduce) {
                    Core &rc = ar.plat.core(next);
                    Tick t = fromNs(ar.config.reduceNsPerByte *
                                    static_cast<double>(chk));
                    co_await rc.busyFor(t, "reduce");
                }
                l.arrive();
            }
        };
        for (unsigned r = 0; r < nRanks; ++r)
            Step::go(*this, r, chunk, reduce_phase, done);
        co_await done.wait();
    }
}

} // namespace dsasim::apps
