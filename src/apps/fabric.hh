/**
 * @file
 * libfabric-style intra-node message channel (paper Appendix A,
 * Fig. 17/18), using the Segmentation-and-Reassembly (SAR) protocol:
 * the sender copies each segment into a shared bounce buffer and the
 * receiver copies it out.
 *
 * The software path performs both copies on the endpoint cores, one
 * segment after another — the simple progress-engine implementation.
 * The DSA path (G2) submits the copy-in asynchronously, chains the
 * copy-out on completion, and keeps the bounce-buffer window full,
 * so both directions stream through the accelerator.
 */

#ifndef DSASIM_APPS_FABRIC_HH
#define DSASIM_APPS_FABRIC_HH

#include <memory>
#include <vector>

#include "dml/dml.hh"
#include "driver/platform.hh"

namespace dsasim::apps
{

class FabricChannel
{
  public:
    struct Config
    {
        /** SAR bounce-buffer granule (shm-provider style). */
        std::uint64_t segmentBytes = 4 << 10;
        unsigned bounceBuffers = 4;
        bool useDsa = false;
        /** Tag-match / rendezvous setup cycles per message. */
        double msgSetupCycles = 1400.0;
        /** Per-segment protocol handling cycles per endpoint. */
        double segmentCycles = 260.0;
        /**
         * Software path only: per-segment producer/consumer
         * synchronization (flag polling, ordering fences) that the
         * hardware path amortizes across its asynchronous window.
         */
        double swSegmentSyncCycles = 800.0;
    };

    /**
     * A unidirectional channel from @p sender's core to
     * @p receiver's core. The executor may be null for CPU mode.
     *
     * @param send_lock / @p recv_lock optional per-core run locks:
     *        an MPI rank is a single-threaded process, so its
     *        copy-in (as a sender) and copy-out (as a receiver)
     *        serialize on its core. Null means uncontended.
     */
    FabricChannel(Platform &p, AddressSpace &space,
                  dml::Executor *exec, Core &sender, Core &receiver,
                  const Config &cfg, Semaphore *send_lock = nullptr,
                  Semaphore *recv_lock = nullptr);

    /** Move @p n bytes from @p src (sender side) to @p dst. */
    CoTask transfer(Addr src, Addr dst, std::uint64_t n);

    std::uint64_t messagesSent() const { return messages; }
    std::uint64_t bytesSent() const { return bytes; }

  private:
    SimTask segmentPipeline(Addr src, Addr dst, std::uint64_t n,
                            Latch &done);

    Platform &plat;
    AddressSpace &as;
    dml::Executor *executor;
    Core &sendCore;
    Core &recvCore;
    Config config;

    Addr bouncePool = 0;
    std::unique_ptr<Semaphore> bounceCredits;
    Semaphore *sendLock;
    Semaphore *recvLock;

    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
};

/**
 * Ring all-reduce over R simulated ranks on one node (the MPI /
 * MLPerf-BERT experiments). Rank i exchanges chunks with rank
 * (i+1) % R through a FabricChannel; reduction compute runs on the
 * rank's core.
 */
class RingAllReduce
{
  public:
    struct Config
    {
        FabricChannel::Config channel;
        /** f32 add cost of the reduction, per byte. */
        double reduceNsPerByte = 0.05;
    };

    RingAllReduce(Platform &p, AddressSpace &space,
                  dml::Executor *exec, unsigned ranks,
                  const Config &cfg);

    /** One all-reduce of @p total_bytes (per rank). */
    CoTask run(std::uint64_t total_bytes);

    unsigned rankCount() const { return nRanks; }

  private:
    Platform &plat;
    AddressSpace &as;
    unsigned nRanks;
    Config config;
    std::vector<std::unique_ptr<FabricChannel>> channels;
    std::vector<std::unique_ptr<Semaphore>> coreLocks;
    std::vector<Addr> rankBuf;
    std::vector<Addr> chunkBuf;
    std::uint64_t bufBytes;
};

} // namespace dsasim::apps

#endif // DSASIM_APPS_FABRIC_HH
