#include "apps/minicache.hh"

#include "sim/logging.hh"

namespace dsasim::apps
{

MiniCache::MiniCache(Platform &p, AddressSpace &space, Dto &dto,
                     const Config &cfg)
    : MiniCache(p, space, dto, cfg,
                p.sim().stats().scope("minicache") + ".")
{}

MiniCache::MiniCache(Platform &p, AddressSpace &space, Dto &dto,
                     const Config &cfg, const std::string &scope)
    : plat(p), as(space), dtoLib(dto), config(cfg),
      getOpsCtr(p.sim().stats().counter(
          scope + "lookups", "get() calls served")),
      getHitsCtr(p.sim().stats().counter(
          scope + "hits", "get() calls that found the key")),
      setOpsCtr(p.sim().stats().counter(
          scope + "sets", "set() calls served")),
      copiedBytesCtr(p.sim().stats().counter(
          scope + "bytes_copied",
          "value bytes moved through DTO by get() and set()"))
{
    fatal_if(config.sizeClasses.empty(), "no slab size classes");
    freelists.resize(config.sizeClasses.size());
}

std::uint32_t
MiniCache::classFor(std::uint64_t len) const
{
    for (std::uint32_t c = 0; c < config.sizeClasses.size(); ++c) {
        if (len <= config.sizeClasses[c])
            return c;
    }
    fatal("value of %llu bytes exceeds the largest slab class",
          static_cast<unsigned long long>(len));
}

Addr
MiniCache::allocSlab(std::uint32_t cls)
{
    auto &fl = freelists[cls];
    if (!fl.empty()) {
        Addr a = fl.back();
        fl.pop_back();
        return a;
    }
    return as.alloc(config.sizeClasses[cls]);
}

void
MiniCache::freeSlab(std::uint32_t cls, Addr a)
{
    freelists[cls].push_back(a);
}

void
MiniCache::evictOne()
{
    while (fifoHead < fifo.size()) {
        std::uint64_t victim = fifo[fifoHead++];
        auto it = index.find(victim);
        if (it == index.end())
            continue; // overwritten since queued
        usedBytes -= config.sizeClasses[it->second.slabClass];
        freeSlab(it->second.slabClass, it->second.addr);
        index.erase(it);
        ++evicted;
        return;
    }
}

CoTask
MiniCache::get(Core &core, std::uint64_t key, Addr out_buf,
               std::uint64_t &value_len, bool &hit)
{
    getOpsCtr.inc();
    co_await core.busyFor(
        core.cpuParams().cyclesToTicks(config.indexCyclesPerOp),
        "cache-index");
    auto it = index.find(key);
    if (it == index.end()) {
        hit = false;
        value_len = 0;
        co_return;
    }
    hit = true;
    getHitsCtr.inc();
    value_len = it->second.len;
    copiedBytesCtr.add(it->second.len);
    co_await dtoLib.memcpyCall(core, as, out_buf, it->second.addr,
                               it->second.len);
}

CoTask
MiniCache::set(Core &core, std::uint64_t key, Addr src_buf,
               std::uint64_t len)
{
    setOpsCtr.inc();
    copiedBytesCtr.add(len);
    co_await core.busyFor(
        core.cpuParams().cyclesToTicks(config.indexCyclesPerOp),
        "cache-index");
    std::uint32_t cls = classFor(len);
    auto it = index.find(key);
    if (it != index.end()) {
        if (it->second.slabClass != cls) {
            usedBytes -= config.sizeClasses[it->second.slabClass];
            freeSlab(it->second.slabClass, it->second.addr);
            it->second.addr = allocSlab(cls);
            it->second.slabClass = cls;
            usedBytes += config.sizeClasses[cls];
        }
        it->second.len = static_cast<std::uint32_t>(len);
    } else {
        while (usedBytes + config.sizeClasses[cls] >
               config.capacityBytes)
            evictOne();
        Item item;
        item.addr = allocSlab(cls);
        item.len = static_cast<std::uint32_t>(len);
        item.slabClass = cls;
        usedBytes += config.sizeClasses[cls];
        index.emplace(key, item);
        fifo.push_back(key);
    }
    co_await dtoLib.memcpyCall(core, as, index[key].addr, src_buf,
                               len);
}

} // namespace dsasim::apps
