/**
 * @file
 * A CacheLib-style in-memory object cache driven the way the paper's
 * CacheBench deployment is (§Appendix B, Fig. 19): get() copies a
 * cached value into a caller buffer, set() copies caller data into a
 * freshly allocated slab item. Both run their memcpy through DTO, so
 * copies at or above the 8 KB threshold transparently offload to
 * DSA while small ones stay on the core.
 */

#ifndef DSASIM_APPS_MINICACHE_HH
#define DSASIM_APPS_MINICACHE_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "dto/dto.hh"
#include "driver/platform.hh"

namespace dsasim::apps
{

class MiniCache
{
  public:
    struct Config
    {
        std::uint64_t capacityBytes = 1ull << 30;
        /** Slab size classes (bytes), ascending. */
        std::vector<std::uint32_t> sizeClasses = {
            256, 1024, 4096, 16384, 65536, 262144, 1048576,
            2097152};
        /** Hash + metadata cycles per operation. */
        double indexCyclesPerOp = 220.0;
    };

    MiniCache(Platform &p, AddressSpace &space, Dto &dto,
              const Config &cfg);

    /**
     * Lookup @p key; on a hit, copy the value into @p out_buf (must
     * hold the value) and set @p value_len. Timing is charged to
     * @p core; the copy goes through DTO.
     */
    CoTask get(Core &core, std::uint64_t key, Addr out_buf,
               std::uint64_t &value_len, bool &hit);

    /** Insert/overwrite @p key with @p len bytes from @p src_buf. */
    CoTask set(Core &core, std::uint64_t key, Addr src_buf,
               std::uint64_t len);

    std::uint64_t itemCount() const { return index.size(); }
    std::uint64_t bytesCached() const { return usedBytes; }
    std::uint64_t evictions() const { return evicted; }

    /// @name Operation counters (per-tenant SLO accounting when a
    /// cache instance backs one serving tenant). Registry counters
    /// under this instance's minicache<N>. scope (DESIGN.md §15).
    /// @{
    std::uint64_t lookups() const { return getOpsCtr.value(); }
    std::uint64_t hits() const { return getHitsCtr.value(); }
    std::uint64_t sets() const { return setOpsCtr.value(); }
    std::uint64_t bytesCopied() const { return copiedBytesCtr.value(); }
    /// @}

  private:
    /** Delegate binding the op counters under one minicache<N>.
     * scope. */
    MiniCache(Platform &p, AddressSpace &space, Dto &dto,
              const Config &cfg, const std::string &scope);

    struct Item
    {
        Addr addr = 0;
        std::uint32_t len = 0;
        std::uint32_t slabClass = 0;
    };

    /** Pick the smallest size class that fits @p len. */
    std::uint32_t classFor(std::uint64_t len) const;
    Addr allocSlab(std::uint32_t cls);
    void freeSlab(std::uint32_t cls, Addr a);
    void evictOne();

    Platform &plat;
    AddressSpace &as;
    Dto &dtoLib;
    Config config;

    std::unordered_map<std::uint64_t, Item> index;
    /** FIFO eviction order (CLOCK-like simplicity). */
    std::vector<std::uint64_t> fifo;
    std::size_t fifoHead = 0;
    std::vector<std::vector<Addr>> freelists;
    std::uint64_t usedBytes = 0;
    std::uint64_t evicted = 0;

    // Registry-backed operation counters (bound in the constructor
    // under a fresh minicache<N>. scope).
    stats::Counter &getOpsCtr;
    stats::Counter &getHitsCtr;
    stats::Counter &setOpsCtr;
    stats::Counter &copiedBytesCtr;
};

} // namespace dsasim::apps

#endif // DSASIM_APPS_MINICACHE_HH
