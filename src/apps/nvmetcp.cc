#include "apps/nvmetcp.hh"

#include "ops/crc32.hh"
#include "ops/dif.hh"
#include "sim/random.hh"
#include "sim/logging.hh"

namespace dsasim::apps
{

NvmeTcpTarget::NvmeTcpTarget(Platform &p, AddressSpace &space,
                             dml::Executor *exec, const Config &cfg)
    : plat(p), as(space), executor(exec), config(cfg)
{
    fatal_if(cfg.digest == Digest::Dsa && !exec,
             "DSA digest mode needs an executor");
    fatal_if(cfg.targetCores == 0, "need at least one target core");
    freeCores = std::make_unique<Mailbox<int>>(plat.sim());
    for (unsigned c = 0; c < cfg.targetCores; ++c)
        freeCores->put(static_cast<int>(c));
    for (unsigned s = 0; s < cfg.ssdCount; ++s) {
        ssds.push_back(std::make_unique<LinkResource>(
            plat.sim(), cfg.ssdGBpsEach,
            "ssd" + std::to_string(s)));
    }
    net = std::make_unique<LinkResource>(plat.sim(), cfg.netGBps,
                                         "nvmetcp.net");
    // Payload staging buffers, one per outstanding request.
    dataPool =
        as.alloc(static_cast<std::uint64_t>(cfg.queueDepth) *
                 cfg.ioBytes);
    if (cfg.kind == Kind::Write) {
        fatal_if(cfg.ioBytes % cfg.difBlock != 0,
                 "write I/O size must be a multiple of the DIF "
                 "block size");
        protStride = (cfg.ioBytes / cfg.difBlock) *
                     (cfg.difBlock + difTupleBytes);
        protPool =
            as.alloc(static_cast<std::uint64_t>(cfg.queueDepth) *
                     protStride);
    }
    // Deterministic disk contents.
    std::vector<std::uint8_t> block(cfg.ioBytes);
    Rng rng(7);
    for (auto &b : block)
        b = static_cast<std::uint8_t>(rng.next32());
    for (unsigned q = 0; q < cfg.queueDepth; ++q)
        as.write(dataPool + q * cfg.ioBytes, block.data(),
                 block.size());
}

CoTask
NvmeTcpTarget::acquireCore(int &core_idx)
{
    core_idx = co_await freeCores->get();
}

void
NvmeTcpTarget::releaseCore(int core_idx)
{
    freeCores->put(core_idx);
}

SimTask
NvmeTcpTarget::handleIo(std::uint64_t id, Latch &done)
{
    Simulation &sim = plat.sim();
    const Tick issue = sim.now();
    const std::uint64_t slot = id % config.queueDepth;
    const Addr buf = dataPool + slot * config.ioBytes;
    const Tick pdu_cost = plat.core(0).cpuParams().cyclesToTicks(
        config.pduCycles / 2.0 +
        config.pduCyclesPerByte *
            static_cast<double>(config.ioBytes) / 2.0);

    if (config.kind == Kind::Write) {
        co_await handleWrite(id, slot, buf, pdu_cost, issue, done);
        co_return;
    }

    // ---- Receive/parse the command PDU on a target core ----------
    int core_idx = -1;
    co_await acquireCore(core_idx);
    {
        Core &core = plat.core(static_cast<std::size_t>(core_idx));
        co_await core.busyFor(pdu_cost, "nvmetcp-recv");
    }
    releaseCore(core_idx);

    // ---- Read the block from an SSD (off-core, polled) ------------
    LinkResource &ssd = *ssds[id % ssds.size()];
    Tick ssd_done = ssd.occupy(config.ioBytes) + config.ssdLatency;
    co_await sim.delayUntil(ssd_done);

    // ---- Data Digest + response PDU build/send ---------------------
    co_await acquireCore(core_idx);
    std::uint32_t digest = 0;
    switch (config.digest) {
      case Digest::None:
        break;
      case Digest::IsaL: {
        Core &core =
            plat.core(static_cast<std::size_t>(core_idx));
        auto r = plat.kernels().crc32Op(core, as, buf, config.ioBytes,
                                        crc32cInit);
        digest = r.crc;
        co_await core.busyFor(r.duration, "nvmetcp-crc");
        break;
      }
      case Digest::Dsa: {
        // Submit the CRC descriptor, then release the reactor core:
        // SPDK's accel framework polls for the completion while the
        // core serves other I/Os.
        Core &core =
            plat.core(static_cast<std::size_t>(core_idx));
        co_await core.busyFor(
            core.cpuParams().cyclesToTicks(config.offloadCycles),
            "nvmetcp-crc-submit");
        auto job = executor->prepare(
            dml::Executor::crc32(as, buf, config.ioBytes));
        co_await executor->submit(core, *job);
        releaseCore(core_idx);
        if (!job->cr.isDone())
            co_await job->cr.done.wait();
        digest = job->cr.crc;
        co_await acquireCore(core_idx);
        break;
      }
    }
    {
        Core &core =
            plat.core(static_cast<std::size_t>(core_idx));
        co_await core.busyFor(pdu_cost, "nvmetcp-send");
    }
    releaseCore(core_idx);

    // Initiator-side verification of the digest.
    if (config.digest != Digest::None) {
        std::vector<std::uint8_t> data(config.ioBytes);
        as.read(buf, data.data(), data.size());
        if (crc32cFull(data.data(), data.size()) != digest)
            ++crcErrors;
    }

    // ---- Ship the data PDU over the wire ---------------------------
    co_await net->transfer(config.ioBytes);

    latency.add(toUs(sim.now() - issue));
    ++completed;

    // Closed loop: reissue immediately unless we are done.
    if (sim.now() < deadline) {
        handleIo(id + config.queueDepth, done);
    } else {
        done.arrive();
    }
}

CoTask
NvmeTcpTarget::handleWrite(std::uint64_t id, std::uint64_t slot,
                           Addr buf, Tick pdu_cost, Tick issue,
                           Latch &done)
{
    Simulation &sim = plat.sim();
    const std::uint64_t nblocks = config.ioBytes / config.difBlock;
    const Addr prot = protPool + slot * protStride;

    // ---- Data lands from the wire, then the command PDU parses ----
    co_await net->transfer(config.ioBytes);
    int core_idx = -1;
    co_await acquireCore(core_idx);
    {
        Core &core = plat.core(static_cast<std::size_t>(core_idx));
        co_await core.busyFor(pdu_cost, "nvmetcp-recv");
    }

    // ---- Protect the blocks with T10-DIF before they hit media ----
    switch (config.digest) {
      case Digest::None:
        // Unprotected write: blocks go to media as received.
        break;
      case Digest::IsaL: {
        Core &core = plat.core(static_cast<std::size_t>(core_idx));
        auto r = plat.kernels().difInsertOp(
            core, as, buf, prot, config.difBlock, nblocks, 0,
            static_cast<std::uint32_t>(slot * nblocks));
        co_await core.busyFor(r.duration, "nvmetcp-dif");
        break;
      }
      case Digest::Dsa: {
        Core &core = plat.core(static_cast<std::size_t>(core_idx));
        co_await core.busyFor(
            core.cpuParams().cyclesToTicks(config.offloadCycles),
            "nvmetcp-dif-submit");
        auto job = executor->prepare(dml::Executor::difInsert(
            as, buf, prot, config.difBlock, config.ioBytes, 0,
            static_cast<std::uint32_t>(slot * nblocks)));
        co_await executor->submit(core, *job);
        releaseCore(core_idx);
        if (!job->cr.isDone())
            co_await job->cr.done.wait();
        co_await acquireCore(core_idx);
        break;
      }
    }
    {
        Core &core = plat.core(static_cast<std::size_t>(core_idx));
        co_await core.busyFor(pdu_cost / 4, "nvmetcp-ack");
    }
    releaseCore(core_idx);

    // ---- Media write of the (protected) blocks ---------------------
    LinkResource &ssd = *ssds[id % ssds.size()];
    std::uint64_t media_bytes =
        config.digest == Digest::None
            ? config.ioBytes
            : nblocks * (config.difBlock + difTupleBytes);
    Tick ssd_done = ssd.occupy(media_bytes) + config.ssdLatency;
    co_await sim.delayUntil(ssd_done);

    latency.add(toUs(sim.now() - issue));
    ++completed;
    if (sim.now() < deadline) {
        handleIo(id + config.queueDepth, done);
    } else {
        done.arrive();
    }
}

SimTask
NvmeTcpTarget::run(Tick until)
{
    Simulation &sim = plat.sim();
    deadline = until;
    Tick t0 = sim.now();
    Latch done(sim, config.queueDepth);
    for (unsigned q = 0; q < config.queueDepth; ++q)
        handleIo(q, done);
    co_await done.wait();
    measuredTicks = sim.now() - t0;
}

} // namespace dsasim::apps
