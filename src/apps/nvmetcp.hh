/**
 * @file
 * SPDK-style NVMe/TCP target (the paper's Appendix C, Fig. 20/21).
 *
 * Initiators keep a fixed number of read requests outstanding
 * (FIO-style closed loop). Each I/O at the target:
 *
 *   recv/parse PDU (core) -> SSD read (off-core) ->
 *   Data Digest CRC32 over the payload (core with ISA-L, DSA
 *   offload, or skipped) -> TCP send (core + network link).
 *
 * Target cores are polling reactors: CPU phases occupy a core token;
 * SSD and network time do not. The Fig. 21 shape falls out: with the
 * digest on DSA the target saturates the network with as few cores
 * as the no-digest build, while ISA-L needs several more.
 */

#ifndef DSASIM_APPS_NVMETCP_HH
#define DSASIM_APPS_NVMETCP_HH

#include <memory>
#include <vector>

#include "dml/dml.hh"
#include "driver/platform.hh"
#include "sim/link.hh"
#include "sim/stats.hh"

namespace dsasim::apps
{

class NvmeTcpTarget
{
  public:
    enum class Digest
    {
        None, ///< no Data Digest field
        IsaL, ///< CRC32 on the target core (AVX-512 ISA-L)
        Dsa,  ///< CRC32 offloaded to DSA via the accel framework
    };

    enum class Kind
    {
        Read,  ///< FIO read: SSD -> digest -> wire (Fig. 21)
        Write, ///< FIO write: wire -> T10-DIF protect -> SSD
    };

    struct Config
    {
        Kind kind = Kind::Read;
        /**
         * Read workloads: how the Data Digest CRC32 is computed.
         * Write workloads: how the T10-DIF tuples are inserted
         * before the blocks hit the SSD (None / ISA-L / DSA).
         */
        Digest digest = Digest::None;
        std::uint32_t difBlock = 512;
        unsigned targetCores = 4;
        std::uint64_t ioBytes = 16 << 10;
        unsigned queueDepth = 256;
        /** Fixed + per-byte PDU processing cost on a target core. */
        double pduCycles = 5500.0;
        double pduCyclesPerByte = 0.15;
        /** CRC offload descriptor management cycles (DSA mode). */
        double offloadCycles = 300.0;
        unsigned ssdCount = 16;
        Tick ssdLatency = fromUs(80);
        double ssdGBpsEach = 3.0;
        double netGBps = 25.0; ///< two 100GbE initiator links
    };

    NvmeTcpTarget(Platform &p, AddressSpace &space,
                  dml::Executor *exec, const Config &cfg);

    /** Run the closed loop until @p until. */
    SimTask run(Tick until);

    double
    iops() const
    {
        return completed / toSec(measuredTicks ? measuredTicks : 1);
    }

    double meanLatencyUs() { return latency.mean(); }
    Histogram &latencyHistogram() { return latency; }
    std::uint64_t completedIos() const { return completed; }
    std::uint64_t crcMismatches() const { return crcErrors; }

    /** Write mode: staging area holding DIF-protected blocks. */
    Addr protectedPool() const { return protPool; }
    std::uint64_t protectedStride() const { return protStride; }

  private:
    SimTask handleIo(std::uint64_t id, Latch &done);
    CoTask handleWrite(std::uint64_t id, std::uint64_t slot, Addr buf,
                       Tick pdu_cost, Tick issue, Latch &done);
    CoTask acquireCore(int &core_idx);
    void releaseCore(int core_idx);

    Platform &plat;
    AddressSpace &as;
    dml::Executor *executor;
    Config config;

    std::unique_ptr<Mailbox<int>> freeCores;
    std::vector<std::unique_ptr<LinkResource>> ssds;
    std::unique_ptr<LinkResource> net;
    Addr dataPool = 0;
    Addr protPool = 0;
    std::uint64_t protStride = 0;

    std::uint64_t completed = 0;
    std::uint64_t crcErrors = 0;
    Tick measuredTicks = 0;
    Histogram latency;
    Tick deadline = 0;
};

} // namespace dsasim::apps

#endif // DSASIM_APPS_NVMETCP_HH
