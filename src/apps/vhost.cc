#include "apps/vhost.hh"

#include "sim/logging.hh"

namespace dsasim::apps
{

VhostSwitch::VhostSwitch(Platform &p, AddressSpace &space, Core &c,
                         dml::Executor *exec, Virtqueue &vq_,
                         const Config &cfg)
    : plat(p), as(space), core(c), executor(exec), vq(vq_),
      config(cfg)
{
    fatal_if(cfg.useDsa && !exec,
             "DSA-mode VhostSwitch needs an executor");
    // Host mbuf pool; payloads pre-filled, sequence stamped per use.
    mbufPool = as.alloc(static_cast<std::uint64_t>(mbufCount) * 2048);
    std::vector<std::uint8_t> pattern(2048, 0xab);
    for (unsigned i = 0; i < mbufCount; ++i)
        as.write(mbufPool + i * 2048ull, pattern.data(),
                 pattern.size());
}

Addr
VhostSwitch::nextMbuf()
{
    Addr mbuf = mbufPool + (nextSeq % mbufCount) * 2048ull;
    std::uint64_t seq = nextSeq++;
    as.write(mbuf, &seq, sizeof(seq));
    return mbuf;
}

void
VhostSwitch::verifyMbuf(Addr mbuf, std::uint64_t seq)
{
    std::uint64_t got = 0;
    as.read(mbuf, &got, sizeof(got));
    if (got != seq)
        ++corrupt;
    if (seq != expectSeq)
        ++misordered;
    expectSeq = seq + 1;
}

SimTask
VhostSwitch::trafficGen(Tick until)
{
    Simulation &sim = plat.sim();
    const Tick gap = fromNs(1000.0 / config.offeredMpps);
    while (sim.now() < until) {
        if (nicQueue.size() >= nicQueueCap)
            ++dropped;
        else
            nicQueue.push_back(sim.now());
        co_await sim.delay(gap);
    }
}

SimTask
VhostSwitch::run(Tick until)
{
    Simulation &sim = plat.sim();
    if (config.offeredMpps > 0.0)
        trafficGen(until);
    const CpuParams &cp = core.cpuParams();
    const Tick fixed =
        cp.cyclesToTicks(config.fixedCyclesPerPacket);
    const Tick writeback =
        cp.cyclesToTicks(config.writebackCyclesPerPacket);
    const Tick reorder_scan =
        cp.cyclesToTicks(config.reorderScanCyclesPerPacket);

    while (sim.now() < until) {
        const bool enq = config.direction == Direction::Enqueue;

        if (!config.useDsa) {
            // ---- Synchronous core-copy path -----------------------
            unsigned n = 0;
            Tick busy = 0;
            while (n < config.burst && !vq.availEmpty() &&
                   (config.offeredMpps == 0.0 || !nicQueue.empty())) {
                Tick arrived = sim.now();
                if (config.offeredMpps > 0.0) {
                    arrived = nicQueue.front();
                    nicQueue.pop_front();
                }
                VringDesc d = vq.popAvail();
                std::uint64_t seq;
                if (enq) {
                    Addr mbuf = nextMbuf();
                    seq = nextSeq - 1;
                    auto r = plat.kernels().memcpyOp(
                        core, as, d.addr, mbuf, config.packetBytes);
                    busy += r.duration;
                } else {
                    // Dequeue: guest TX buffer -> host mbuf.
                    Addr mbuf =
                        mbufPool + (copied % mbufCount) * 2048ull;
                    as.read(d.addr, &seq, sizeof(seq));
                    auto r = plat.kernels().memcpyOp(
                        core, as, mbuf, d.addr, config.packetBytes);
                    busy += r.duration;
                    verifyMbuf(mbuf, seq);
                }
                busy += fixed + writeback;
                vq.pushUsed({d, config.packetBytes, seq});
                if (config.offeredMpps > 0.0)
                    latency.add(toUs(sim.now() + busy - arrived));
                ++forwarded;
                ++copied;
                ++n;
            }
            if (n == 0) {
                co_await sim.delay(fromNs(100));
                continue;
            }
            co_await core.busyFor(busy, "vhost");
            continue;
        }

        // ---- Three-stage asynchronous DSA pipeline (G2) ------------
        // Stage 1: harvest completed bursts in order (the reorder
        // array guarantees in-order used-ring write-back) and write
        // back their used descriptors on the core.
        Tick busy = 0;
        while (!inflight.empty() &&
               inflight.front().job->cr.isDone()) {
            InflightBurst burst = std::move(inflight.front());
            inflight.pop_front();
            std::size_t idx = 0;
            for (const VringUsed &u : burst.entries) {
                if (config.offeredMpps > 0.0 &&
                    !inflightArrivals.empty()) {
                    latency.add(
                        toUs(sim.now() - inflightArrivals.front()));
                    inflightArrivals.pop_front();
                }
                if (!enq) {
                    // Host-side integrity check of the copied-out
                    // packet (the copy's destination mbuf).
                    Addr mbuf =
                        burst.job->desc.batch->at(idx).dst;
                    verifyMbuf(mbuf, u.seq);
                }
                vq.pushUsed(u);
                busy += writeback + reorder_scan;
                ++forwarded;
                ++idx;
            }
        }

        // Backpressure: cap the pipeline depth at two bursts.
        if (inflight.size() >= 2) {
            co_await inflight.front().job->cr.done.wait();
            continue;
        }

        // Stage 2: assemble the next burst and submit one batch
        // descriptor (G1) with the LLC hint set (G3).
        std::vector<WorkDescriptor> subs;
        InflightBurst burst;
        while (subs.size() < config.burst && !vq.availEmpty() &&
               (config.offeredMpps == 0.0 || !nicQueue.empty())) {
            if (config.offeredMpps > 0.0) {
                inflightArrivals.push_back(nicQueue.front());
                nicQueue.pop_front();
            }
            VringDesc d = vq.popAvail();
            std::uint64_t seq;
            WorkDescriptor wd;
            if (enq) {
                Addr mbuf = nextMbuf();
                seq = nextSeq - 1;
                wd = dml::Executor::memMove(as, d.addr, mbuf,
                                            config.packetBytes);
            } else {
                Addr mbuf = mbufPool +
                            ((copied + subs.size()) % mbufCount) *
                                2048ull;
                as.read(d.addr, &seq, sizeof(seq));
                wd = dml::Executor::memMove(as, mbuf, d.addr,
                                            config.packetBytes);
            }
            wd.flags |= descflags::cacheControl;
            subs.push_back(wd);
            burst.entries.push_back({d, config.packetBytes, seq});
            busy += fixed;
        }
        if (subs.empty()) {
            if (busy)
                co_await core.busyFor(busy, "vhost");
            else
                co_await sim.delay(fromNs(100));
            continue;
        }
        copied += subs.size();
        burst.job = executor->prepareBatch(as.pasid(), subs);
        co_await executor->submit(core, *burst.job);
        inflight.push_back(std::move(burst));

        // Stage 3: the copy runs in the background while the core
        // performs the per-packet processing work.
        co_await core.busyFor(busy, "vhost");
    }
}

GuestTxDriver::GuestTxDriver(Platform &p, AddressSpace &space,
                             Core &c, Virtqueue &vq_,
                             std::uint32_t buf_bytes,
                             unsigned buffers)
    : plat(p), as(space), core(c), vq(vq_)
{
    std::vector<std::uint8_t> payload(buf_bytes, 0xcd);
    for (unsigned i = 0; i < buffers; ++i) {
        Addr buf = as.alloc(buf_bytes);
        as.write(buf, payload.data(), payload.size());
        stampAndPost({buf, buf_bytes});
    }
}

void
GuestTxDriver::stampAndPost(VringDesc d)
{
    std::uint64_t seq = nextSeq++;
    as.write(d.addr, &seq, sizeof(seq));
    vq.postAvail(d);
    ++count;
}

SimTask
GuestTxDriver::run(Tick until)
{
    Simulation &sim = plat.sim();
    const Tick per_pkt = core.cpuParams().cyclesToTicks(24);
    while (sim.now() < until) {
        Tick busy = 0;
        unsigned n = 0;
        while (!vq.usedEmpty() && n < 64) {
            VringUsed u = vq.popUsed();
            stampAndPost(u.desc);
            busy += per_pkt;
            ++n;
        }
        if (n == 0) {
            co_await sim.delay(fromNs(150));
            continue;
        }
        co_await core.busyFor(busy, "guest-tx");
    }
}

GuestDriver::GuestDriver(Platform &p, AddressSpace &space, Core &c,
                         Virtqueue &vq_, std::uint32_t buf_bytes,
                         unsigned buffers)
    : plat(p), as(space), core(c), vq(vq_)
{
    for (unsigned i = 0; i < buffers; ++i) {
        Addr buf = as.alloc(buf_bytes);
        vq.postAvail({buf, buf_bytes});
    }
}

SimTask
GuestDriver::run(Tick until)
{
    Simulation &sim = plat.sim();
    const Tick per_pkt = core.cpuParams().cyclesToTicks(24);
    while (sim.now() < until) {
        Tick busy = 0;
        unsigned n = 0;
        while (!vq.usedEmpty() && n < 64) {
            VringUsed u = vq.popUsed();
            std::uint64_t seq = 0;
            as.read(u.desc.addr, &seq, sizeof(seq));
            if (seq != u.seq)
                ++corrupt;
            if (u.seq != expectSeq)
                ++misordered;
            expectSeq = u.seq + 1;
            ++count;
            busy += per_pkt;
            vq.postAvail(u.desc);
            ++n;
        }
        if (n == 0) {
            co_await sim.delay(fromNs(150));
            continue;
        }
        co_await core.busyFor(busy, "guest");
    }
}

} // namespace dsasim::apps
