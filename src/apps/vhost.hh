/**
 * @file
 * DPDK-Vhost-style VirtIO backend (the paper's §6.4 case study).
 *
 * A host switch forwards packets into a VM through a virtqueue:
 *
 *  (1) fetch available descriptors (guest RX buffers),
 *  (2) copy packet payloads host->guest,
 *  (3) write back used descriptors and notify.
 *
 * The copy step either runs on the forwarding core (memcpy) or is
 * offloaded to DSA following the paper's recipe: a three-stage
 * asynchronous pipeline (G2), one batch descriptor per 32-packet
 * burst (G1), the cache-control hint set so payloads land in the LLC
 * (G3), and a per-virtqueue reorder array so the guest always
 * observes in-order delivery despite out-of-order DSA completions.
 */

#ifndef DSASIM_APPS_VHOST_HH
#define DSASIM_APPS_VHOST_HH

#include <deque>
#include <memory>
#include <vector>

#include "dml/dml.hh"
#include "driver/platform.hh"
#include "sim/stats.hh"

namespace dsasim::apps
{

/** A guest RX buffer posted on the virtqueue. */
struct VringDesc
{
    Addr addr = 0;
    std::uint32_t len = 0;
};

/** A used-ring entry: buffer + bytes written + packet sequence. */
struct VringUsed
{
    VringDesc desc;
    std::uint32_t written = 0;
    std::uint64_t seq = 0;
};

/**
 * Split virtqueue: available ring (guest -> host) and used ring
 * (host -> guest). Purely functional; timing is charged by the
 * switch / guest loops that manipulate it.
 */
class Virtqueue
{
  public:
    explicit Virtqueue(unsigned ring_entries)
        : entries(ring_entries)
    {}

    bool
    postAvail(const VringDesc &d)
    {
        if (avail.size() >= entries)
            return false;
        avail.push_back(d);
        return true;
    }

    bool availEmpty() const { return avail.empty(); }
    std::size_t availCount() const { return avail.size(); }

    VringDesc
    popAvail()
    {
        VringDesc d = avail.front();
        avail.pop_front();
        return d;
    }

    void pushUsed(const VringUsed &u) { used.push_back(u); }

    bool usedEmpty() const { return used.empty(); }

    VringUsed
    popUsed()
    {
        VringUsed u = used.front();
        used.pop_front();
        return u;
    }

    const unsigned entries;

  private:
    std::deque<VringDesc> avail;
    std::deque<VringUsed> used;
};

class VhostSwitch
{
  public:
    /**
     * Enqueue: host -> guest RX (the switch copies packets into
     * guest buffers). Dequeue: guest TX -> host (the switch copies
     * packets out of guest buffers into host mbufs). Same three
     * steps, reversed (§6.4).
     */
    enum class Direction
    {
        Enqueue,
        Dequeue,
    };

    struct Config
    {
        Direction direction = Direction::Enqueue;
        bool useDsa = false;
        /**
         * Offered load in Mpps; 0 = saturating source (rate test).
         * With a finite rate, per-packet latency (NIC arrival ->
         * used-ring write-back) is recorded for tail analysis.
         */
        double offeredMpps = 0.0;
        unsigned burst = 32;
        /** Per-packet descriptor/mbuf/virtqueue management cycles. */
        double fixedCyclesPerPacket = 160.0;
        /** Used-descriptor write-back cycles per packet. */
        double writebackCyclesPerPacket = 12.0;
        /** Reorder-array scan cycles per packet (DSA path only). */
        double reorderScanCyclesPerPacket = 4.0;
        std::uint32_t packetBytes = 512;
    };

    VhostSwitch(Platform &p, AddressSpace &space, Core &c,
                dml::Executor *exec, Virtqueue &vq,
                const Config &cfg);

    /** Forwarding loop (TestPMD mac-fwd style, saturating source). */
    SimTask run(Tick until);

    std::uint64_t packetsForwarded() const { return forwarded; }
    std::uint64_t packetsCopied() const { return copied; }
    /** Dequeue mode: host-side sequence/payload verification. */
    std::uint64_t hostOrderViolations() const { return misordered; }
    std::uint64_t hostPayloadErrors() const { return corrupt; }

    /** Offered-load mode: arrival-to-writeback latency (us). */
    Histogram &latencyHistogram() { return latency; }
    /** Packets dropped because the NIC queue overflowed. */
    std::uint64_t drops() const { return dropped; }

  private:
    struct InflightBurst
    {
        std::unique_ptr<dml::Job> job;
        std::vector<VringUsed> entries;
    };

    /** Host-side mbuf holding the next packet payload. */
    Addr nextMbuf();

    /** Offered-load arrival process (one stamp per packet). */
    SimTask trafficGen(Tick until);

    Platform &plat;
    AddressSpace &as;
    Core &core;
    dml::Executor *executor;
    Virtqueue &vq;
    Config config;

    /** Dequeue mode: verify a received mbuf and advance the seq. */
    void verifyMbuf(Addr mbuf, std::uint64_t seq);

    Addr mbufPool = 0;
    unsigned mbufCount = 256;
    std::uint64_t nextSeq = 0;
    std::uint64_t expectSeq = 0;
    std::uint64_t forwarded = 0;
    std::uint64_t copied = 0;
    std::uint64_t misordered = 0;
    std::uint64_t corrupt = 0;

    std::deque<InflightBurst> inflight;

    /** Offered-load mode state. */
    std::deque<Tick> nicQueue;
    static constexpr std::size_t nicQueueCap = 4096;
    std::uint64_t dropped = 0;
    Histogram latency;
    /** Arrival stamps of packets currently in flight, FIFO. */
    std::deque<Tick> inflightArrivals;
};

/**
 * Guest-side TX producer for the dequeue direction: posts buffers
 * pre-stamped with ascending sequence numbers; when the host returns
 * them via the used ring, restamps and reposts.
 */
class GuestTxDriver
{
  public:
    GuestTxDriver(Platform &p, AddressSpace &space, Core &c,
                  Virtqueue &vq, std::uint32_t buf_bytes,
                  unsigned buffers);

    SimTask run(Tick until);

    std::uint64_t produced() const { return count; }

  private:
    void stampAndPost(VringDesc d);

    Platform &plat;
    AddressSpace &as;
    Core &core;
    Virtqueue &vq;
    std::uint64_t nextSeq = 0;
    std::uint64_t count = 0;
};

/**
 * Guest-side consumer: drains the used ring, verifies payload
 * sequence/order, and reposts the buffers as available.
 */
class GuestDriver
{
  public:
    GuestDriver(Platform &p, AddressSpace &space, Core &c,
                Virtqueue &vq, std::uint32_t buf_bytes,
                unsigned buffers);

    SimTask run(Tick until);

    std::uint64_t received() const { return count; }
    std::uint64_t orderViolations() const { return misordered; }
    std::uint64_t payloadErrors() const { return corrupt; }

  private:
    Platform &plat;
    AddressSpace &as;
    Core &core;
    Virtqueue &vq;
    std::uint64_t expectSeq = 0;
    std::uint64_t count = 0;
    std::uint64_t misordered = 0;
    std::uint64_t corrupt = 0;
};

} // namespace dsasim::apps

#endif // DSASIM_APPS_VHOST_HH
