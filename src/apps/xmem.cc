#include "apps/xmem.hh"

namespace dsasim::apps
{

XMemProbe::XMemProbe(Platform &p, AddressSpace &space, Core &c,
                     std::uint64_t working_set, std::uint64_t seed)
    : plat(p), as(space), probeCore(c), ws(working_set), rng(seed)
{
    base = as.alloc(ws);
}

Tick
XMemProbe::accessOnce()
{
    const CpuParams &cp = probeCore.cpuParams();
    std::uint64_t lines = ws / cacheLineSize;
    Addr va = base + rng.range(0, lines - 1) * cacheLineSize;
    Addr pa = as.translate(va);
    auto res =
        plat.mem().cache().cpuAccess(pa, probeCore.id(), false);
    Tick lat;
    if (res.hit) {
        lat = plat.mem().cfg().llcLatency;
    } else {
        int node = MemSystem::paNode(pa);
        lat = plat.mem().readLatencyOf(node,
                                       probeCore.agent().socket);
        plat.mem().occupyRead(node, probeCore.agent().socket,
                              cacheLineSize);
    }
    // Small core-side cost per dependent access.
    lat += cp.cyclesToTicks(4);
    hist.add(toNs(lat));
    return lat;
}

void
XMemProbe::warmAll()
{
    // Stays line-at-a-time: the probe models dependent CPU loads,
    // and each cpuAccess must age the LRU stack individually so the
    // chase sees the same residency a real pointer walk would.
    for (Addr va = base; va < base + ws;
         va += cacheLineSize) { // simlint:allow(acct-loop)
        Addr pa = as.translate(va);
        plat.mem().cache().cpuAccess(pa, probeCore.id(), false);
    }
}

SimTask
XMemProbe::run(Tick until, Histogram &latencies)
{
    Simulation &sim = plat.sim();
    // Batch a handful of dependent accesses per wake-up to keep the
    // event count tractable at full fidelity of the cache state.
    constexpr int batch = 16;
    while (sim.now() < until) {
        Tick total = 0;
        for (int i = 0; i < batch; ++i) {
            Tick lat = accessOnce();
            latencies.add(toNs(lat));
            total += lat;
        }
        probeCore.chargeBusy(total, "xmem");
        co_await sim.delay(total);
    }
}

} // namespace dsasim::apps
