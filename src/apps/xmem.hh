/**
 * @file
 * X-Mem-style memory characterization probe (Gottscho et al.,
 * ISPASS'16), as used by the paper's cache-pollution study
 * (§4.5, Fig. 12/13): a working set of configurable size accessed
 * with dependent random reads, reporting average access latency.
 */

#ifndef DSASIM_APPS_XMEM_HH
#define DSASIM_APPS_XMEM_HH

#include "cpu/core.hh"
#include "driver/platform.hh"
#include "sim/random.hh"
#include "sim/stats.hh"
#include "sim/task.hh"

namespace dsasim::apps
{

class XMemProbe
{
  public:
    /**
     * @param working_set bytes of the probe's footprint
     * @param seed        per-instance RNG stream
     */
    XMemProbe(Platform &p, AddressSpace &space, Core &c,
              std::uint64_t working_set, std::uint64_t seed);

    /**
     * Issue dependent random-read accesses until @p until; per-access
     * latencies land in @p latencies.
     */
    SimTask run(Tick until, Histogram &latencies);

    /**
     * Touch every line of the working set once (no timing) so
     * subsequent accesses start from a fully warm LLC.
     */
    void warmAll();

    /** Mean latency observed so far (ns). */
    double meanLatencyNs() const { return hist.mean(); }
    const Histogram &latencyHistogram() const { return hist; }
    std::uint64_t accesses() const { return hist.count(); }

    Core &core() { return probeCore; }

  private:
    Tick accessOnce();

    Platform &plat;
    AddressSpace &as;
    Core &probeCore;
    std::uint64_t ws;
    Addr base;
    Rng rng;
    Histogram hist;
};

} // namespace dsasim::apps

#endif // DSASIM_APPS_XMEM_HH
