#include "cbdma/cbdma.hh"

#include <algorithm>
#include <cstring>

#include "sim/logging.hh"

namespace dsasim
{

CbdmaDevice::CbdmaDevice(Simulation &s, MemSystem &ms,
                         const CbdmaParams &p, int device_id,
                         int socket_id)
    : sim(s), mem(ms), cfg(p), id(device_id), socketId(socket_id)
{
    fatal_if(cfg.channels == 0, "CBDMA needs at least one channel");
    for (unsigned c = 0; c < cfg.channels; ++c) {
        chans.push_back(std::make_unique<Channel>(s));
        channelLoop(c);
    }
}

std::vector<std::pair<Addr, std::uint64_t>>
CbdmaDevice::pinRange(AddressSpace &as, Addr va, std::uint64_t len)
{
    std::vector<std::pair<Addr, std::uint64_t>> segs;
    Addr cursor = va;
    std::uint64_t remaining = len;
    while (remaining > 0) {
        auto m = as.pageTable().lookup(cursor);
        fatal_if(!m, "CBDMA pin of unmapped va=0x%llx",
                 static_cast<unsigned long long>(cursor));
        fatal_if(!m->present,
                 "CBDMA requires pinned (present) memory; "
                 "va=0x%llx is paged out",
                 static_cast<unsigned long long>(cursor));
        std::uint64_t in_page = m->vaBase + m->size - cursor;
        std::uint64_t run = std::min(remaining, in_page);
        Addr pa = m->paBase + (cursor - m->vaBase);
        if (!segs.empty() &&
            segs.back().first + segs.back().second == pa) {
            segs.back().second += run; // coalesce contiguous PAs
        } else {
            segs.emplace_back(pa, run);
        }
        cursor += run;
        remaining -= run;
    }
    return segs;
}

bool
CbdmaDevice::post(unsigned channel, const CbdmaDescriptor &d)
{
    panic_if(channel >= chans.size(), "bad CBDMA channel %u", channel);
    Channel &ch = *chans[channel];
    if (ch.ring.size() >= cfg.ringEntries)
        return false;
    ch.ring.push_back(d);
    ch.pending.release();
    return true;
}

std::size_t
CbdmaDevice::ringOccupancy(unsigned channel) const
{
    panic_if(channel >= chans.size(), "bad CBDMA channel %u", channel);
    return chans[channel]->ring.size();
}

SimTask
CbdmaDevice::channelLoop(unsigned channel)
{
    Channel &ch = *chans[channel];
    for (;;) {
        co_await ch.pending.acquire();
        panic_if(ch.ring.empty(), "CBDMA channel woke without work");
        CbdmaDescriptor d = ch.ring.front();
        ch.ring.pop_front();

        const Tick start = sim.now();
        // The ring fetch pipelines with the previous descriptor's
        // data phase; it shows up in completion latency only.

        // Functional execution on physical memory.
        std::vector<std::uint8_t> buf(
            std::min<std::uint64_t>(d.size, 256 * 1024));
        if (d.op == CbdmaDescriptor::Op::Copy) {
            for (std::uint64_t off = 0; off < d.size;
                 off += buf.size()) {
                std::uint64_t run = std::min<std::uint64_t>(
                    buf.size(), d.size - off);
                mem.physRead(d.srcPa + off, buf.data(), run);
                mem.physWrite(d.dstPa + off, buf.data(), run);
            }
        } else {
            for (std::uint64_t i = 0; i < buf.size(); i += 8) {
                std::memcpy(buf.data() + i, &d.pattern,
                            std::min<std::size_t>(8, buf.size() - i));
            }
            for (std::uint64_t off = 0; off < d.size;
                 off += buf.size()) {
                std::uint64_t run = std::min<std::uint64_t>(
                    buf.size(), d.size - off);
                mem.physWrite(d.dstPa + off, buf.data(), run);
            }
        }

        // Timing: serial chunks over the channel's rate and the
        // memory links. CBDMA writes do not allocate in the LLC.
        Tick pace = sim.now();
        for (std::uint64_t off = 0; off < d.size;
             off += cfg.chunkBytes) {
            std::uint64_t run = std::min<std::uint64_t>(
                cfg.chunkBytes, d.size - off);
            Tick link_end = 0;
            if (d.op == CbdmaDescriptor::Op::Copy) {
                int src_node = MemSystem::paNode(d.srcPa + off);
                link_end = std::max(
                    link_end,
                    mem.occupyRead(src_node, socketId, run));
            }
            int dst_node = MemSystem::paNode(d.dstPa + off);
            // Invalidate any cached copies (coherent, non-alloc).
            mem.cache().evictSpan(d.dstPa + off, run);
            link_end = std::max(
                link_end, mem.occupyWrite(dst_node, socketId, run));
            pace = std::max(pace + transferTime(run, cfg.channelGBps),
                            link_end);
            if (sim.now() < pace)
                co_await sim.delayUntil(pace);
        }

        Tick min_end = start + cfg.descriptorGap;
        if (sim.now() < min_end)
            co_await sim.delayUntil(min_end);

        ++descriptorsProcessed;
        bytesCopied += d.size;

        CompletionRecord *cr = d.completion;
        sim.scheduleIn(cfg.descriptorFetch + cfg.completionWrite,
                       [cr] {
            if (cr)
                cr->complete(CompletionRecord::Status::Success);
        });
    }
}

} // namespace dsasim
