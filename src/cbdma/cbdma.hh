/**
 * @file
 * CBDMA (Crystal Beach DMA), the I/OAT-descended copy engine of Ice
 * Lake Xeons — the paper's generational baseline (§2, Table 2).
 *
 * Compared with DSA it is deliberately restricted, mirroring the
 * limitations the paper lists:
 *  - channels instead of groups/WQs/PEs (one client per channel),
 *  - memcpy/fill only,
 *  - physical addressing: buffers must be pinned (translated up
 *    front); there is no SVM/ATC and no page-fault handling,
 *  - ring-doorbell submission with chipset-heritage overheads,
 *  - roughly 1/2.1 of DSA's streaming throughput.
 */

#ifndef DSASIM_CBDMA_CBDMA_HH
#define DSASIM_CBDMA_CBDMA_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "dsa/descriptor.hh" // reuse CompletionRecord
#include "mem/address_space.hh"
#include "mem/mem_system.hh"
#include "sim/sync.hh"
#include "sim/task.hh"

namespace dsasim
{

struct CbdmaParams
{
    unsigned channels = 16;       ///< ICX: 16 channels
    unsigned ringEntries = 64;    ///< descriptor ring per channel
    double channelGBps = 14.3;    ///< ~ DSA / 2.1
    Tick doorbellCost = fromNs(150);   ///< MMIO doorbell write
    Tick descriptorFetch = fromNs(250);///< ring fetch round trip
    Tick descriptorGap = fromNs(250);  ///< per-descriptor floor
    Tick completionWrite = fromNs(50);
    std::uint64_t chunkBytes = 4096;

    bool operator==(const CbdmaParams &) const = default;
};

/** A pinned physical scatter segment (CBDMA has no SVM). */
struct CbdmaDescriptor
{
    enum class Op { Copy, Fill };

    Op op = Op::Copy;
    Addr srcPa = 0;
    Addr dstPa = 0;
    std::uint64_t size = 0;
    std::uint64_t pattern = 0;
    CompletionRecord *completion = nullptr;
};

class CbdmaDevice
{
  public:
    CbdmaDevice(Simulation &s, MemSystem &ms, const CbdmaParams &p,
                int device_id, int socket_id = 0);

    const CbdmaParams &params() const { return cfg; }
    unsigned channelCount() const { return cfg.channels; }

    /**
     * Pin helper: translate a VA range page-by-page and fail (fatal)
     * on any non-present page — the memory-pinning requirement that
     * limited CBDMA adoption (§2).
     */
    static std::vector<std::pair<Addr, std::uint64_t>>
    pinRange(AddressSpace &as, Addr va, std::uint64_t len);

    /**
     * Post a descriptor on @p channel. Returns false if the ring is
     * full. The caller pays the doorbell cost separately (core-side).
     */
    bool post(unsigned channel, const CbdmaDescriptor &d);

    std::size_t ringOccupancy(unsigned channel) const;

    std::uint64_t descriptorsProcessed = 0;
    std::uint64_t bytesCopied = 0;

    /** No descriptor queued on any ring or in flight. */
    bool
    quiescent() const
    {
        for (const auto &c : chans)
            if (!c->ring.empty() || c->pending.available() != 0)
                return false;
        return true;
    }

    /**
     * Checkpointable (sim/checkpoint.hh): counters only. Ring
     * entries hold live completion-record pointers, so capture
     * requires quiescent() — channel loops re-park on rebuild.
     */
    struct State
    {
        std::uint64_t descriptorsProcessed = 0;
        std::uint64_t bytesCopied = 0;
    };

    State
    saveState() const
    {
        fatal_if(!quiescent(),
                 "snapshot of CBDMA device %d with queued "
                 "descriptors — let the rings drain first",
                 id);
        return State{descriptorsProcessed, bytesCopied};
    }

    void
    restoreState(const State &st)
    {
        descriptorsProcessed = st.descriptorsProcessed;
        bytesCopied = st.bytesCopied;
    }

  private:
    SimTask channelLoop(unsigned channel);

    struct Channel
    {
        explicit Channel(Simulation &s) : pending(s, 0) {}
        std::deque<CbdmaDescriptor> ring;
        Semaphore pending;
    };

    Simulation &sim;
    MemSystem &mem;
    CbdmaParams cfg;
    const int id;
    const int socketId;
    std::vector<std::unique_ptr<Channel>> chans;
};

} // namespace dsasim

#endif // DSASIM_CBDMA_CBDMA_HH
