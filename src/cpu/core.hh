/**
 * @file
 * A CPU core: identity (for cache-occupancy accounting), a private
 * data TLB, and cycle bookkeeping split across activity classes so
 * the UMWAIT analysis (Fig. 11) and datacenter-tax style breakdowns
 * fall straight out of the accounting.
 */

#ifndef DSASIM_CPU_CORE_HH
#define DSASIM_CPU_CORE_HH

#include <string>

#include "cpu/params.hh"
#include "mem/tlb.hh"
#include "mem/types.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"
#include "sim/sync.hh"

namespace dsasim
{

class Core
{
  public:
    Core(Simulation &s, const CpuParams &p, int core_id, int socket = 0)
        : sim(s), params(p), agent_(Agent::core(core_id, socket)),
          dtlb(p.tlbEntries)
    {}

    Simulation &simulation() { return sim; }
    const CpuParams &cpuParams() const { return params; }
    Agent agent() const { return agent_; }
    int id() const { return agent_.ownerId; }
    TranslationCache &tlb() { return dtlb; }

    /// @name Cycle accounting.
    /// @{
    void
    chargeBusy(Tick t, const std::string &bucket = "busy")
    {
        busy += t;
        account.charge(bucket, t);
    }

    void
    chargeUmwait(Tick t)
    {
        umwait += t;
        account.charge("umwait", t);
    }

    void
    chargeSpin(Tick t)
    {
        spin += t;
        account.charge("spin", t);
    }

    Tick busyTicks() const { return busy; }
    Tick umwaitTicks() const { return umwait; }
    Tick spinTicks() const { return spin; }
    CycleAccount &cycleAccount() { return account; }

    void
    resetAccounting()
    {
        busy = 0;
        umwait = 0;
        spin = 0;
        account.clear();
    }
    /// @}

    /** Awaitable: occupy the core for @p t ticks of real work. */
    auto
    busyFor(Tick t, const std::string &bucket = "busy")
    {
        chargeBusy(t, bucket);
        return sim.delay(t);
    }

    /**
     * Checkpointable (sim/checkpoint.hh): the data TLB and the cycle
     * accounting. Workload coroutines running *on* the core are not
     * core state — they belong to the scenario, which re-issues its
     * measure phase after a fork.
     */
    struct State
    {
        TranslationCache::State dtlb;
        Tick busy = 0;
        Tick umwait = 0;
        Tick spin = 0;
        CycleAccount account;
    };

    State
    saveState() const
    {
        return State{dtlb.saveState(), busy, umwait, spin, account};
    }

    void
    restoreState(const State &st)
    {
        dtlb.restoreState(st.dtlb);
        busy = st.busy;
        umwait = st.umwait;
        spin = st.spin;
        account = st.account;
    }

  private:
    Simulation &sim;
    CpuParams params;
    Agent agent_;
    TranslationCache dtlb;
    Tick busy = 0;
    Tick umwait = 0;
    Tick spin = 0;
    CycleAccount account;
};

} // namespace dsasim

#endif // DSASIM_CPU_CORE_HH
