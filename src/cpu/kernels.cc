#include "cpu/kernels.hh"

#include <algorithm>
#include <cstring>
#include <vector>

#include "ops/crc32.hh"
#include "ops/delta.hh"
#include "ops/dif.hh"
#include "ops/span_kernels.hh"
#include "sim/logging.hh"

namespace dsasim
{

namespace
{

constexpr std::size_t scratchChunk = 256 * 1024;

} // namespace

SwKernels::Level
SwKernels::levelOf(const Core &core, int node_id) const
{
    const MemNode &n = mem.node(node_id);
    if (n.config.kind == MemKind::Cxl)
        return Level::Cxl;
    if (n.config.socket != core.agent().socket)
        return Level::DramRemote;
    return Level::DramLocal;
}

Tick
SwKernels::readLineCost(const Core &core, Level lvl) const
{
    const CpuParams &p = core.cpuParams();
    switch (lvl) {
      case Level::Llc: return p.readLlcHit;
      case Level::DramLocal: return p.readDramLocal;
      case Level::DramRemote: return p.readDramRemote;
      case Level::Cxl: return p.readCxl;
    }
    return p.readDramLocal;
}

Tick
SwKernels::writeLineCost(const Core &core, Level lvl) const
{
    const CpuParams &p = core.cpuParams();
    switch (lvl) {
      case Level::Llc: return p.writeLlcHit;
      case Level::DramLocal: return p.writeDramLocal;
      case Level::DramRemote: return p.writeDramRemote;
      case Level::Cxl: return p.writeCxl;
    }
    return p.writeDramLocal;
}

SwKernels::RangeCost
SwKernels::touchRange(Core &core, AddressSpace &as, Addr va,
                      std::uint64_t len, bool is_write, bool allocate)
{
    RangeCost rc;
    if (len == 0)
        return rc;

    const CpuParams &p = core.cpuParams();
    CacheModel &llc = mem.cache();
    const int owner = core.id();
    const int socket = core.agent().socket;

    Addr cursor = va;
    std::uint64_t remaining = len;
    while (remaining > 0) {
        auto m = as.pageTable().lookup(cursor);
        panic_if(!m, "kernel touch of unmapped va=0x%llx",
                 static_cast<unsigned long long>(cursor));
        if (!core.tlb().lookup(as.pasid(), m->vaBase)) {
            ++rc.tlbWalks;
            core.tlb().insert(as.pasid(), m->vaBase);
        }
        std::uint64_t in_page = m->vaBase + m->size - cursor;
        std::uint64_t run = std::min(remaining, in_page);
        Addr pa = m->paBase + (cursor - m->vaBase);
        int node_id = MemSystem::paNode(pa);
        if (rc.nodeId < 0)
            rc.nodeId = node_id;
        Level lvl = levelOf(core, node_id);
        MemNode &node = mem.node(node_id);

        Addr line_end = lineAlignUp(pa + run);
        std::uint64_t miss_read_bytes = 0;
        std::uint64_t wb_bytes_local = 0;
        // Stays line-at-a-time: each dirty victim's writeback is
        // charged to that victim's node with its own occupy() call,
        // whose duration rounds per call — batching would change
        // ticks (DESIGN.md §13 explains the rounding constraint).
        for (Addr a = lineAlignDown(pa); a < line_end;
             a += cacheLineSize) { // simlint:allow(acct-loop)
            if (is_write && !allocate) {
                // Non-temporal store: bypass and invalidate.
                llc.invalidate(a);
                rc.coreTicks += p.writeNtLine;
                wb_bytes_local += cacheLineSize;
                continue;
            }
            auto res = llc.cpuAccess(a, owner, is_write);
            if (res.hit) {
                rc.coreTicks += is_write ? p.writeLlcHit
                                         : p.readLlcHit;
            } else {
                rc.anyMiss = true;
                rc.coreTicks += is_write ? writeLineCost(core, lvl)
                                         : readLineCost(core, lvl);
                if (is_write) {
                    // Write-allocate: the RFO reads the line, the
                    // dirty copy is written back later.
                    miss_read_bytes += static_cast<std::uint64_t>(
                        cacheLineSize * p.rfoReadFactor);
                    wb_bytes_local += cacheLineSize;
                } else {
                    miss_read_bytes += cacheLineSize;
                }
            }
            if (res.evictedDirty) {
                int victim_node = MemSystem::paNode(res.evictedPa);
                Tick end = mem.node(victim_node)
                               .writeLink.occupy(cacheLineSize);
                rc.linkEnd = std::max(rc.linkEnd, end);
            }
        }
        if (miss_read_bytes > 0) {
            Tick end = mem.occupyRead(node_id, socket, miss_read_bytes);
            rc.linkEnd = std::max(rc.linkEnd, end);
        }
        if (wb_bytes_local > 0) {
            Tick end = node.writeLink.occupy(wb_bytes_local);
            if (node.config.socket != socket)
                end = std::max(end, mem.upiLink().occupy(wb_bytes_local));
            rc.linkEnd = std::max(rc.linkEnd, end);
        }

        cursor += run;
        remaining -= run;
    }
    return rc;
}

SwKernels::Result
SwKernels::finish(Core &core, std::uint64_t bytes, double extra_ns,
                  std::initializer_list<RangeCost> ranges)
{
    const CpuParams &p = core.cpuParams();
    Result r;
    r.bytesProcessed = bytes;

    Tick core_time = p.callOverhead + fromNs(extra_ns);
    Tick link_end = 0;
    bool first_miss_added = false;
    for (const RangeCost &rc : ranges) {
        core_time += rc.coreTicks;
        core_time += rc.tlbWalks * p.tlbWalk;
        link_end = std::max(link_end, rc.linkEnd);
        if (rc.anyMiss && !first_miss_added && rc.nodeId >= 0) {
            // The leading miss is exposed; later ones pipeline.
            core_time += mem.readLatencyOf(rc.nodeId,
                                           core.agent().socket);
            first_miss_added = true;
        }
    }

    Tick now = mem.sim().now();
    r.duration = core_time;
    if (link_end > now)
        r.duration = std::max(r.duration, link_end - now);
    return r;
}

SwKernels::Result
SwKernels::memcpyOp(Core &core, AddressSpace &as, Addr dst, Addr src,
                    std::uint64_t n)
{
    // Functional move, zero-copy on the backing spans; copy() keeps
    // memmove semantics for overlapping ranges.
    as.copy(dst, src, n);

    RangeCost rd = touchRange(core, as, src, n, false, true);
    RangeCost wr = touchRange(core, as, dst, n, true, true);
    return finish(core, n, 0.0, {rd, wr});
}

SwKernels::Result
SwKernels::dualcastOp(Core &core, AddressSpace &as, Addr dst1,
                      Addr dst2, Addr src, std::uint64_t n)
{
    if (!rangesOverlap(src, n, dst1, n) &&
        !rangesOverlap(src, n, dst2, n) &&
        !rangesOverlap(dst1, n, dst2, n)) {
        as.copy(dst1, src, n);
        as.copy(dst2, src, n);
    } else {
        // Aliased ranges: the result depends on chunk order, keep
        // the legacy forward copy.
        std::vector<std::uint8_t> buf(
            std::min<std::uint64_t>(n, scratchChunk));
        for (std::uint64_t off = 0; off < n; off += scratchChunk) {
            std::uint64_t run = std::min<std::uint64_t>(scratchChunk,
                                                        n - off);
            as.read(src + off, buf.data(), run);
            as.write(dst1 + off, buf.data(), run);
            as.write(dst2 + off, buf.data(), run);
        }
    }

    RangeCost rd = touchRange(core, as, src, n, false, true);
    RangeCost w1 = touchRange(core, as, dst1, n, true, true);
    RangeCost w2 = touchRange(core, as, dst2, n, true, true);
    return finish(core, n, 0.0, {rd, w1, w2});
}

SwKernels::Result
SwKernels::copyCrcOp(Core &core, AddressSpace &as, Addr dst, Addr src,
                     std::uint64_t n, std::uint32_t seed)
{
    std::uint32_t crc = seed;
    if (!rangesOverlap(src, n, dst, n)) {
        crc = spanCopyCrc(as, dst, src, n, crc);
    } else {
        std::vector<std::uint8_t> buf(
            std::min<std::uint64_t>(n, scratchChunk));
        for (std::uint64_t off = 0; off < n; off += scratchChunk) {
            std::uint64_t run = std::min<std::uint64_t>(scratchChunk,
                                                        n - off);
            as.read(src + off, buf.data(), run);
            crc = crc32c(buf.data(), run, crc);
            as.write(dst + off, buf.data(), run);
        }
    }

    RangeCost rd = touchRange(core, as, src, n, false, true);
    RangeCost wr = touchRange(core, as, dst, n, true, true);
    Result r = finish(core, n,
                      core.cpuParams().crcNsPerByte *
                          static_cast<double>(n),
                      {rd, wr});
    r.crc = crc32cFinish(crc);
    return r;
}

SwKernels::Result
SwKernels::memsetOp(Core &core, AddressSpace &as, Addr dst,
                    std::uint64_t pattern, std::uint64_t n,
                    bool nontemporal)
{
    // Fills spans in place; byte i gets pattern byte i % 8, same as
    // the old chunked scratch expansion.
    spanFillPattern(as, dst, n, pattern, 0, 8);

    RangeCost wr = touchRange(core, as, dst, n, true, !nontemporal);
    return finish(core, n, 0.0, {wr});
}

SwKernels::Result
SwKernels::memsetOp2(Core &core, AddressSpace &as, Addr dst,
                     std::uint64_t lo, std::uint64_t hi,
                     unsigned pattern_bytes, std::uint64_t n,
                     bool nontemporal)
{
    if (pattern_bytes <= 8)
        return memsetOp(core, as, dst, lo, n, nontemporal);

    spanFillPattern(as, dst, n, lo, hi, 16);

    RangeCost wr = touchRange(core, as, dst, n, true, !nontemporal);
    return finish(core, n, 0.0, {wr});
}

SwKernels::Result
SwKernels::memcmpOp(Core &core, AddressSpace &as, Addr a, Addr b,
                    std::uint64_t n)
{
    const std::uint64_t mm = spanCompare(as, a, b, n);
    Result pre;
    pre.ok = mm == n;
    pre.diffOffset = mm;

    // A mismatch exits early: only the compared prefix is streamed
    // (rounded up to the vectorized block the comparison works in).
    std::uint64_t eff = pre.ok
        ? n
        : std::min<std::uint64_t>(n, (pre.diffOffset / 4096 + 1) *
                                         4096);
    RangeCost ra = touchRange(core, as, a, eff, false, true);
    RangeCost rb = touchRange(core, as, b, eff, false, true);
    Result r = finish(core, eff,
                      core.cpuParams().cmpNsPerByte *
                          static_cast<double>(eff),
                      {ra, rb});
    r.ok = pre.ok;
    r.diffOffset = pre.diffOffset;
    return r;
}

SwKernels::Result
SwKernels::comparePatternOp(Core &core, AddressSpace &as, Addr a,
                            std::uint64_t pattern, std::uint64_t n)
{
    const std::uint64_t mm = spanComparePattern(as, a, n, pattern);
    Result pre;
    pre.ok = mm == n;
    pre.diffOffset = mm;

    std::uint64_t eff = pre.ok
        ? n
        : std::min<std::uint64_t>(n, (pre.diffOffset / 4096 + 1) *
                                         4096);
    RangeCost ra = touchRange(core, as, a, eff, false, true);
    Result r = finish(core, eff,
                      core.cpuParams().cmpNsPerByte *
                          static_cast<double>(eff),
                      {ra});
    r.ok = pre.ok;
    r.diffOffset = pre.diffOffset;
    return r;
}

SwKernels::Result
SwKernels::deltaCreateOp(Core &core, AddressSpace &as, Addr original,
                         Addr modified, std::uint64_t n, Addr record,
                         std::uint64_t max_record_bytes)
{
    fatal_if(n > deltaMaxInputBytes,
             "delta create input too large (%llu bytes)",
             static_cast<unsigned long long>(n));
    std::vector<std::uint8_t> orig(n), mod(n);
    as.read(original, orig.data(), n);
    as.read(modified, mod.data(), n);
    DeltaResult dr = deltaCreate(orig.data(), mod.data(), n,
                                 max_record_bytes);
    if (!dr.record.empty())
        as.write(record, dr.record.data(), dr.record.size());

    RangeCost ra = touchRange(core, as, original, n, false, true);
    RangeCost rb = touchRange(core, as, modified, n, false, true);
    RangeCost wr = touchRange(core, as, record,
                              std::max<std::uint64_t>(dr.record.size(),
                                                      1),
                              true, true);
    Result r = finish(core, n,
                      core.cpuParams().deltaNsPerByte *
                          static_cast<double>(n),
                      {ra, rb, wr});
    r.recordBytes = dr.record.size();
    r.recordFits = dr.fits;
    r.ok = dr.mismatchedWords == 0;
    return r;
}

SwKernels::Result
SwKernels::deltaApplyOp(Core &core, AddressSpace &as, Addr dst,
                        Addr record, std::uint64_t record_bytes,
                        std::uint64_t n)
{
    std::vector<std::uint8_t> buf(n), rec(record_bytes);
    as.read(dst, buf.data(), n);
    as.read(record, rec.data(), record_bytes);
    bool ok = deltaApply(buf.data(), n, rec.data(), record_bytes);
    if (ok)
        as.write(dst, buf.data(), n);

    RangeCost rr = touchRange(core, as, record,
                              std::max<std::uint64_t>(record_bytes, 1),
                              false, true);
    RangeCost wr = touchRange(core, as, dst, n, true, true);
    Result r = finish(core, n,
                      core.cpuParams().deltaNsPerByte *
                          static_cast<double>(record_bytes),
                      {rr, wr});
    r.ok = ok;
    return r;
}

SwKernels::Result
SwKernels::crc32Op(Core &core, AddressSpace &as, Addr src,
                   std::uint64_t n, std::uint32_t seed)
{
    const std::uint32_t crc = spanCrc(as, src, n, seed);

    RangeCost rd = touchRange(core, as, src, n, false, true);
    Result r = finish(core, n,
                      core.cpuParams().crcNsPerByte *
                          static_cast<double>(n),
                      {rd});
    r.crc = crc32cFinish(crc);
    return r;
}

SwKernels::Result
SwKernels::difInsertOp(Core &core, AddressSpace &as, Addr src,
                       Addr dst, std::uint64_t block_bytes,
                       std::uint64_t nblocks, std::uint16_t app_tag,
                       std::uint32_t ref_tag)
{
    fatal_if(!difBlockSizeValid(block_bytes),
             "invalid DIF block size %llu",
             static_cast<unsigned long long>(block_bytes));
    std::uint64_t in_len = block_bytes * nblocks;
    std::uint64_t out_len = (block_bytes + difTupleBytes) * nblocks;
    std::vector<std::uint8_t> in(in_len), out(out_len);
    as.read(src, in.data(), in_len);
    difInsert(in.data(), out.data(), block_bytes, nblocks, app_tag,
              ref_tag);
    as.write(dst, out.data(), out_len);

    RangeCost rd = touchRange(core, as, src, in_len, false, true);
    RangeCost wr = touchRange(core, as, dst, out_len, true, true);
    return finish(core, in_len,
                  core.cpuParams().difNsPerByte *
                      static_cast<double>(in_len),
                  {rd, wr});
}

SwKernels::Result
SwKernels::difCheckOp(Core &core, AddressSpace &as, Addr src,
                      std::uint64_t block_bytes, std::uint64_t nblocks,
                      std::uint16_t app_tag, std::uint32_t ref_tag)
{
    fatal_if(!difBlockSizeValid(block_bytes),
             "invalid DIF block size %llu",
             static_cast<unsigned long long>(block_bytes));
    std::uint64_t in_len = (block_bytes + difTupleBytes) * nblocks;
    std::vector<std::uint8_t> in(in_len);
    as.read(src, in.data(), in_len);
    DifCheckResult chk = difCheck(in.data(), block_bytes, nblocks,
                                  app_tag, ref_tag);

    RangeCost rd = touchRange(core, as, src, in_len, false, true);
    Result r = finish(core, in_len,
                      core.cpuParams().difNsPerByte *
                          static_cast<double>(in_len),
                      {rd});
    r.ok = chk.ok;
    r.diffOffset = chk.failedBlock;
    return r;
}

SwKernels::Result
SwKernels::difStripOp(Core &core, AddressSpace &as, Addr src, Addr dst,
                      std::uint64_t block_bytes, std::uint64_t nblocks)
{
    fatal_if(!difBlockSizeValid(block_bytes),
             "invalid DIF block size %llu",
             static_cast<unsigned long long>(block_bytes));
    std::uint64_t in_len = (block_bytes + difTupleBytes) * nblocks;
    std::uint64_t out_len = block_bytes * nblocks;
    std::vector<std::uint8_t> in(in_len), out(out_len);
    as.read(src, in.data(), in_len);
    difStrip(in.data(), out.data(), block_bytes, nblocks);
    as.write(dst, out.data(), out_len);

    RangeCost rd = touchRange(core, as, src, in_len, false, true);
    RangeCost wr = touchRange(core, as, dst, out_len, true, true);
    return finish(core, in_len, 0.0, {rd, wr});
}

SwKernels::Result
SwKernels::difUpdateOp(Core &core, AddressSpace &as, Addr src,
                       Addr dst, std::uint64_t block_bytes,
                       std::uint64_t nblocks, std::uint16_t old_app,
                       std::uint32_t old_ref, std::uint16_t new_app,
                       std::uint32_t new_ref)
{
    fatal_if(!difBlockSizeValid(block_bytes),
             "invalid DIF block size %llu",
             static_cast<unsigned long long>(block_bytes));
    std::uint64_t len = (block_bytes + difTupleBytes) * nblocks;
    std::vector<std::uint8_t> in(len), out(len);
    as.read(src, in.data(), len);
    DifCheckResult chk = difUpdate(in.data(), out.data(), block_bytes,
                                   nblocks, old_app, old_ref, new_app,
                                   new_ref);
    if (chk.ok)
        as.write(dst, out.data(), len);

    RangeCost rd = touchRange(core, as, src, len, false, true);
    RangeCost wr = touchRange(core, as, dst, len, true, true);
    Result r = finish(core, len,
                      core.cpuParams().difNsPerByte *
                          static_cast<double>(len),
                      {rd, wr});
    r.ok = chk.ok;
    r.diffOffset = chk.failedBlock;
    return r;
}

SwKernels::Result
SwKernels::cacheFlushOp(Core &core, AddressSpace &as, Addr addr,
                        std::uint64_t n)
{
    const CpuParams &p = core.cpuParams();
    RangeCost rc;
    Addr cursor = addr;
    std::uint64_t remaining = n;
    while (remaining > 0) {
        auto m = as.pageTable().lookup(cursor);
        panic_if(!m, "flush of unmapped va=0x%llx",
                 static_cast<unsigned long long>(cursor));
        std::uint64_t in_page = m->vaBase + m->size - cursor;
        std::uint64_t run = std::min(remaining, in_page);
        Addr pa = m->paBase + (cursor - m->vaBase);
        int node_id = MemSystem::paNode(pa);
        if (rc.nodeId < 0)
            rc.nodeId = node_id;
        rc.coreTicks += static_cast<Tick>(linesCovered(pa, run)) *
                        p.flushPerLine;
        std::uint64_t wb_bytes =
            mem.cache().flushSpan(pa, run).writebackBytes;
        if (wb_bytes > 0) {
            Tick end = mem.node(node_id).writeLink.occupy(wb_bytes);
            rc.linkEnd = std::max(rc.linkEnd, end);
        }
        cursor += run;
        remaining -= run;
    }
    return finish(core, n, 0.0, {rc});
}

} // namespace dsasim
