/**
 * @file
 * Software counterparts of every DSA operation, executed by a CPU
 * core: glibc-style memcpy/memset/memcmp/memmove, ISA-L style CRC32
 * and DIF, plus delta create/apply, dualcast and cache flush.
 *
 * Every kernel is *functional* (bytes really move through the
 * simulated memory) and *timed*: it walks the touched cache lines
 * through the LLC model (polluting it exactly the way the paper's
 * §4.5 experiment shows), charges the memory links for the traffic it
 * generates, and returns the core-visible duration.
 */

#ifndef DSASIM_CPU_KERNELS_HH
#define DSASIM_CPU_KERNELS_HH

#include <cstdint>

#include "cpu/core.hh"
#include "mem/address_space.hh"
#include "mem/mem_system.hh"

namespace dsasim
{

class SwKernels
{
  public:
    explicit SwKernels(MemSystem &ms) : mem(ms) {}

    struct Result
    {
        Tick duration = 0;
        bool ok = true;               ///< comparison/check outcome
        std::uint32_t crc = 0;        ///< CRC operations
        std::uint64_t diffOffset = 0; ///< memcmp: first difference
        std::uint64_t recordBytes = 0;///< delta create: record size
        bool recordFits = true;       ///< delta create: within max
        std::uint64_t bytesProcessed = 0;
    };

    /// @name Move operations.
    /// @{
    Result memcpyOp(Core &core, AddressSpace &as, Addr dst, Addr src,
                    std::uint64_t n);
    Result dualcastOp(Core &core, AddressSpace &as, Addr dst1,
                      Addr dst2, Addr src, std::uint64_t n);
    /** Copy + CRC32-C of the transferred data (DSA Copy with CRC). */
    Result copyCrcOp(Core &core, AddressSpace &as, Addr dst, Addr src,
                     std::uint64_t n, std::uint32_t seed);
    /// @}

    /// @name Fill.
    /// @{
    /**
     * Fill with a repeating 8-byte pattern. @p nontemporal selects
     * NT stores (no allocation, no RFO) versus regular stores.
     */
    Result memsetOp(Core &core, AddressSpace &as, Addr dst,
                    std::uint64_t pattern, std::uint64_t n,
                    bool nontemporal);

    /** 8- or 16-byte-pattern fill (Table 1's Memory Fill). */
    Result memsetOp2(Core &core, AddressSpace &as, Addr dst,
                     std::uint64_t lo, std::uint64_t hi,
                     unsigned pattern_bytes, std::uint64_t n,
                     bool nontemporal);
    /// @}

    /// @name Compare / delta.
    /// @{
    Result memcmpOp(Core &core, AddressSpace &as, Addr a, Addr b,
                    std::uint64_t n);
    Result comparePatternOp(Core &core, AddressSpace &as, Addr a,
                            std::uint64_t pattern, std::uint64_t n);
    Result deltaCreateOp(Core &core, AddressSpace &as, Addr original,
                         Addr modified, std::uint64_t n, Addr record,
                         std::uint64_t max_record_bytes);
    Result deltaApplyOp(Core &core, AddressSpace &as, Addr dst,
                        Addr record, std::uint64_t record_bytes,
                        std::uint64_t n);
    /// @}

    /// @name CRC and DIF.
    /// @{
    Result crc32Op(Core &core, AddressSpace &as, Addr src,
                   std::uint64_t n, std::uint32_t seed);
    Result difInsertOp(Core &core, AddressSpace &as, Addr src,
                       Addr dst, std::uint64_t block_bytes,
                       std::uint64_t nblocks, std::uint16_t app_tag,
                       std::uint32_t ref_tag);
    Result difCheckOp(Core &core, AddressSpace &as, Addr src,
                      std::uint64_t block_bytes, std::uint64_t nblocks,
                      std::uint16_t app_tag, std::uint32_t ref_tag);
    Result difStripOp(Core &core, AddressSpace &as, Addr src, Addr dst,
                      std::uint64_t block_bytes,
                      std::uint64_t nblocks);
    Result difUpdateOp(Core &core, AddressSpace &as, Addr src,
                       Addr dst, std::uint64_t block_bytes,
                       std::uint64_t nblocks, std::uint16_t old_app,
                       std::uint32_t old_ref, std::uint16_t new_app,
                       std::uint32_t new_ref);
    /// @}

    /// @name Flush.
    /// @{
    Result cacheFlushOp(Core &core, AddressSpace &as, Addr addr,
                        std::uint64_t n);
    /// @}

  private:
    /** Data-location classes with distinct per-line costs. */
    enum class Level { Llc, DramLocal, DramRemote, Cxl };

    struct RangeCost
    {
        Tick coreTicks = 0;   ///< summed per-line core-side cost
        Tick linkEnd = 0;     ///< latest link completion (absolute)
        bool anyMiss = false;
        int nodeId = -1;
        std::uint64_t tlbWalks = 0;
    };

    Level levelOf(const Core &core, int node_id) const;
    Tick readLineCost(const Core &core, Level lvl) const;
    Tick writeLineCost(const Core &core, Level lvl) const;

    /**
     * Walk [va, va+len) through TLB + LLC as a read or an
     * (allocating or non-temporal) write stream, charging links.
     */
    RangeCost touchRange(Core &core, AddressSpace &as, Addr va,
                         std::uint64_t len, bool is_write,
                         bool allocate);

    /** Combine call overhead, range costs and compute time. */
    Result finish(Core &core, std::uint64_t bytes, double extra_ns,
                  std::initializer_list<RangeCost> ranges);

    MemSystem &mem;
};

} // namespace dsasim

#endif // DSASIM_CPU_KERNELS_HH
