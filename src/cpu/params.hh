/**
 * @file
 * Calibration constants for the CPU core cost model.
 *
 * The per-line costs encode single-core streaming rates (they fold
 * together issue width, load/store buffers, and MLP): e.g., a cold
 * DRAM-to-DRAM glibc memcpy costs (readDramLocal + writeDramLocal +
 * rfoReadFactor) per 64B line, which lands near the ~11 GB/s a single
 * Sapphire Rapids core sustains. LLC-resident copies run at
 * ~20 GB/s. These anchors, together with the DSA-side constants,
 * produce the crossover points the paper reports (sync ≈ 4-10 KB,
 * async ≈ 256 B).
 */

#ifndef DSASIM_CPU_PARAMS_HH
#define DSASIM_CPU_PARAMS_HH

#include <cstddef>

#include "sim/ticks.hh"

namespace dsasim
{

struct CpuParams
{
    double freqGHz = 2.0;

    /** Fixed cost of entering a mem* / ISA-L style routine. */
    Tick callOverhead = fromNs(10);

    /// @name Per-64B-line streaming read cost by data location.
    /// @{
    Tick readLlcHit = fromNs(1.6);
    Tick readDramLocal = fromNs(3.6);
    Tick readDramRemote = fromNs(5.2);
    Tick readCxl = fromNs(7.7);
    /// @}

    /// @name Per-line allocating-write cost (RFO + later writeback).
    /// @{
    Tick writeLlcHit = fromNs(1.5);
    Tick writeDramLocal = fromNs(3.2);
    Tick writeDramRemote = fromNs(4.5);
    Tick writeCxl = fromNs(9.0); ///< CXL write latency > read latency
    /// @}

    /** Per-line non-temporal store cost (no RFO, no allocation). */
    Tick writeNtLine = fromNs(2.9);

    /**
     * A write-allocate miss additionally *reads* the line from
     * memory (the RFO), scaled by this factor — the hidden 3x traffic
     * of core-driven copies the paper's motivation cites.
     */
    double rfoReadFactor = 1.0;

    /// @name Compute cost per byte, on top of data movement.
    /// @{
    double crcNsPerByte = 0.033;  ///< ISA-L PCLMUL-based CRC32
    double cmpNsPerByte = 0.004;  ///< vectorized compare
    double difNsPerByte = 0.060;  ///< ISA-L DIF generate/verify
    double deltaNsPerByte = 0.050;
    /// @}

    /** clflushopt-style per-line flush cost. */
    Tick flushPerLine = fromNs(1.2);

    /** First-level TLB reach and walk cost. */
    std::size_t tlbEntries = 1536;
    Tick tlbWalk = fromNs(60);

    /** UMWAIT exit-to-C0 latency. */
    Tick umwaitWake = fromNs(100);
    /** Spin-poll check granularity for completion records. */
    Tick pollInterval = fromNs(50);

    bool operator==(const CpuParams &) const = default;

    Tick
    cyclesToTicks(double cycles) const
    {
        return fromNs(cycles / freqGHz);
    }

    double
    ticksToCycles(Tick t) const
    {
        return toNs(t) * freqGHz;
    }
};

} // namespace dsasim

#endif // DSASIM_CPU_PARAMS_HH
