#include "dml/dml.hh"

#include "ops/crc32.hh"
#include "ops/dif.hh"

#include "sim/logging.hh"

namespace dsasim::dml
{

namespace
{

WorkDescriptor
base(AddressSpace &as, Opcode op)
{
    WorkDescriptor d;
    d.op = op;
    d.pasid = as.pasid();
    return d;
}

} // namespace

Executor::Executor(Simulation &s, MemSystem &ms, SwKernels &k,
                   std::vector<DsaDevice *> devices,
                   ExecutorConfig config)
    : sim(s), mem(ms), kernels(k), cfg(config)
{
    for (DsaDevice *dev : devices) {
        fatal_if(!dev->enabled(),
                 "Executor requires enabled devices (dsa%d is not)",
                 dev->deviceId());
        for (std::size_t w = 0; w < dev->wqCount(); ++w) {
            WorkQueue &wq = dev->wq(w);
            targets.push_back(
                {dev, &wq,
                 std::make_unique<Semaphore>(s, wq.size)});
        }
    }
    fatal_if(targets.empty() && cfg.path == Path::Hardware,
             "hardware path requested but no WQs available");
}

WorkDescriptor
Executor::memMove(AddressSpace &as, Addr dst, Addr src,
                  std::uint64_t n)
{
    WorkDescriptor d = base(as, Opcode::Memmove);
    d.src = src;
    d.dst = dst;
    d.size = n;
    return d;
}

WorkDescriptor
Executor::fill(AddressSpace &as, Addr dst, std::uint64_t pattern,
               std::uint64_t n)
{
    WorkDescriptor d = base(as, Opcode::Fill);
    d.dst = dst;
    d.pattern = pattern;
    d.size = n;
    return d;
}

WorkDescriptor
Executor::fill16(AddressSpace &as, Addr dst, std::uint64_t lo,
                 std::uint64_t hi, std::uint64_t n)
{
    WorkDescriptor d = base(as, Opcode::Fill);
    d.dst = dst;
    d.pattern = lo;
    d.pattern2 = hi;
    d.patternBytes = 16;
    d.size = n;
    return d;
}

WorkDescriptor
Executor::compare(AddressSpace &as, Addr a, Addr b, std::uint64_t n)
{
    WorkDescriptor d = base(as, Opcode::Compare);
    d.src = a;
    d.src2 = b;
    d.size = n;
    return d;
}

WorkDescriptor
Executor::comparePattern(AddressSpace &as, Addr a,
                         std::uint64_t pattern, std::uint64_t n)
{
    WorkDescriptor d = base(as, Opcode::ComparePattern);
    d.src = a;
    d.pattern = pattern;
    d.size = n;
    return d;
}

WorkDescriptor
Executor::crc32(AddressSpace &as, Addr src, std::uint64_t n)
{
    WorkDescriptor d = base(as, Opcode::CrcGen);
    d.src = src;
    d.size = n;
    return d;
}

WorkDescriptor
Executor::copyCrc(AddressSpace &as, Addr dst, Addr src,
                  std::uint64_t n)
{
    WorkDescriptor d = base(as, Opcode::CopyCrc);
    d.src = src;
    d.dst = dst;
    d.size = n;
    return d;
}

WorkDescriptor
Executor::dualcast(AddressSpace &as, Addr dst1, Addr dst2, Addr src,
                   std::uint64_t n)
{
    WorkDescriptor d = base(as, Opcode::Dualcast);
    d.src = src;
    d.dst = dst1;
    d.dst2 = dst2;
    d.size = n;
    return d;
}

WorkDescriptor
Executor::createDelta(AddressSpace &as, Addr original, Addr modified,
                      std::uint64_t n, Addr record,
                      std::uint64_t max_record)
{
    WorkDescriptor d = base(as, Opcode::CreateDelta);
    d.src = original;
    d.src2 = modified;
    d.dst = record;
    d.size = n;
    d.maxRecordBytes = max_record;
    return d;
}

WorkDescriptor
Executor::applyDelta(AddressSpace &as, Addr dst, Addr record,
                     std::uint64_t record_bytes, std::uint64_t n)
{
    WorkDescriptor d = base(as, Opcode::ApplyDelta);
    d.src = record;
    d.dst = dst;
    d.size = n;
    d.recordBytes = record_bytes;
    return d;
}

WorkDescriptor
Executor::difInsert(AddressSpace &as, Addr src, Addr dst,
                    std::uint32_t block, std::uint64_t data_bytes,
                    std::uint16_t app_tag, std::uint32_t ref_tag)
{
    WorkDescriptor d = base(as, Opcode::DifInsert);
    d.src = src;
    d.dst = dst;
    d.size = data_bytes;
    d.difBlockBytes = block;
    d.appTag = app_tag;
    d.refTag = ref_tag;
    return d;
}

WorkDescriptor
Executor::difCheck(AddressSpace &as, Addr src, std::uint32_t block,
                   std::uint64_t data_bytes, std::uint16_t app_tag,
                   std::uint32_t ref_tag)
{
    WorkDescriptor d = base(as, Opcode::DifCheck);
    d.src = src;
    d.size = data_bytes;
    d.difBlockBytes = block;
    d.appTag = app_tag;
    d.refTag = ref_tag;
    return d;
}

WorkDescriptor
Executor::difStrip(AddressSpace &as, Addr src, Addr dst,
                   std::uint32_t block, std::uint64_t data_bytes)
{
    WorkDescriptor d = base(as, Opcode::DifStrip);
    d.src = src;
    d.dst = dst;
    d.size = data_bytes;
    d.difBlockBytes = block;
    return d;
}

WorkDescriptor
Executor::difUpdate(AddressSpace &as, Addr src, Addr dst,
                    std::uint32_t block, std::uint64_t data_bytes,
                    std::uint16_t old_app_tag,
                    std::uint32_t old_ref_tag,
                    std::uint16_t new_app_tag,
                    std::uint32_t new_ref_tag)
{
    WorkDescriptor d = base(as, Opcode::DifUpdate);
    d.src = src;
    d.dst = dst;
    d.size = data_bytes;
    d.difBlockBytes = block;
    d.appTag = old_app_tag;
    d.refTag = old_ref_tag;
    d.newAppTag = new_app_tag;
    d.newRefTag = new_ref_tag;
    return d;
}

WorkDescriptor
Executor::cacheFlush(AddressSpace &as, Addr addr, std::uint64_t n)
{
    WorkDescriptor d = base(as, Opcode::CacheFlush);
    d.src = addr;
    d.size = n;
    return d;
}

WorkDescriptor
Executor::drain(AddressSpace &as)
{
    return base(as, Opcode::Drain);
}

Executor::Target &
Executor::pickTarget()
{
    fatal_if(targets.empty(), "no hardware targets configured");
    if (cfg.balance == ExecutorConfig::Balance::LeastLoaded) {
        // Load = queued + dispatched-but-incomplete jobs. For DWQs
        // the held credits count work in flight on the engines; WQ
        // occupancy alone misses it, since entries free at dispatch.
        auto load = [](const Target &t) {
            std::size_t l =
                t.wq->occupancy() + t.credits->waitersPending();
            if (t.wq->mode == WorkQueue::Mode::Dedicated)
                l += t.wq->size - static_cast<std::size_t>(
                                      t.credits->available());
            return l;
        };
        Target *best = &targets[0];
        for (auto &t : targets) {
            if (load(t) < load(*best))
                best = &t;
        }
        return *best;
    }
    Target &t = targets[rr % targets.size()];
    ++rr;
    return t;
}

bool
Executor::shouldOffload(const WorkDescriptor &d) const
{
    if (targets.empty())
        return false;
    switch (cfg.path) {
      case Path::Software: return false;
      case Path::Hardware: return true;
      case Path::Auto: return d.size >= cfg.autoHwThreshold;
    }
    return false;
}

std::unique_ptr<Job>
Executor::prepare(const WorkDescriptor &d)
{
    auto job = std::make_unique<Job>(sim);
    job->desc = d;
    job->desc.completion = &job->cr;
    return job;
}

SimTask
Executor::releaseOnDone(CompletionRecord &cr, Semaphore &credits)
{
    if (!cr.isDone())
        co_await cr.done.wait();
    credits.release();
}

CoTask
Executor::submit(Core &core, Job &job)
{
    Target &t = pickTarget();
    job.usedHardware = true;
    job.targetDev = t.dev;
    job.submittedAt = sim.now();
    ++hwJobs;
    bytesOffloaded += job.desc.size;

    Submitter sub(core, t.dev->params());
    if (t.wq->mode == WorkQueue::Mode::Dedicated) {
        // The credit models the client-side occupancy tracking a
        // MOVDIR64B user must do.
        co_await t.credits->acquire();
        releaseOnDone(job.cr, *t.credits);
        co_await sub.movdir64b(*t.dev, *t.wq, job.desc);
    } else if (cfg.enqcmdMaxRetries == 0) {
        co_await sub.enqcmdRetry(*t.dev, *t.wq, job.desc);
    } else {
        bool accepted = false;
        co_await sub.enqcmdBackoff(*t.dev, *t.wq, job.desc, accepted,
                                   cfg.enqcmdMaxRetries,
                                   cfg.enqcmdBackoffBase,
                                   cfg.enqcmdBackoffCap);
        if (!accepted && !job.cr.isDone()) {
            // Backoff exhausted with the SWQ still full: the job
            // never reached the device, so the driver writes the
            // terminal status (a Rejected portal write has already
            // completed the record with its cause).
            ++submitGiveUps;
            job.cr.bytesCompleted = 0;
            job.cr.complete(CompletionRecord::Status::QueueFull);
        }
    }
}

void
Executor::harvest(const CompletionRecord &cr, OpResult &out)
{
    out.status = cr.status;
    out.ok = cr.status == CompletionRecord::Status::Success &&
             cr.result == 0;
    out.result = cr.result;
    out.crc = cr.crc;
    out.bytesCompleted = cr.bytesCompleted;
    out.recordBytes = cr.recordBytes;
    out.recordFits = cr.recordFits;
    out.faultAddr = cr.faultAddr;
    out.usedHardware = true;
}

std::shared_ptr<Executor::WatchdogArm>
Executor::armWatchdog(Job &job)
{
    auto arm = std::make_shared<WatchdogArm>();
    CompletionRecord *crp = &job.cr;
    DsaDevice *devp = job.targetDev;
    Executor *self = this;
    const Tick grace = cfg.watchdogGrace;
    sim.scheduleIn(cfg.watchdogTimeout, [arm, crp, devp, self, grace] {
        if (arm->cancelled || crp->isDone())
            return;
        ++self->watchdogFires;
        // Release anything hung on the device; the descriptor then
        // publishes Aborted on its own.
        if (devp)
            devp->abortHung();
        // If even that produced no completion within the grace
        // window, the driver declares the job dead itself so the
        // waiter can never hang.
        self->sim.scheduleIn(grace, [arm, crp, self] {
            if (arm->cancelled || crp->isDone())
                return;
            ++self->watchdogForced;
            crp->bytesCompleted = 0;
            crp->complete(CompletionRecord::Status::Aborted);
        });
    });
    return arm;
}

CoTask
Executor::wait(Core &core, Job &job, OpResult &out)
{
    panic_if(!job.usedHardware, "wait() on a non-submitted job");
    std::shared_ptr<WatchdogArm> arm;
    if (cfg.watchdogTimeout > 0 && !job.cr.isDone())
        arm = armWatchdog(job);
    Submitter sub(core, targets.empty() ? DsaParams{}
                                        : targets[0].dev->params());
    if (cfg.useUmwait)
        co_await sub.umwait(job.cr);
    else
        co_await sub.poll(job.cr);
    if (arm)
        arm->cancelled = true;
    harvest(job.cr, out);
    out.latency = sim.now() - job.submittedAt;
}

SwKernels::Result
Executor::runSoftware(Core &core, const WorkDescriptor &d)
{
    AddressSpace &as = mem.space(d.pasid);
    std::uint64_t nblocks =
        d.difBlockBytes ? d.size / d.difBlockBytes : 0;
    switch (d.op) {
      case Opcode::Memmove:
        return kernels.memcpyOp(core, as, d.dst, d.src, d.size);
      case Opcode::Fill:
        // Cache-control off selects the non-temporal store variant,
        // keeping the software baseline symmetric with the device's
        // non-allocating write path (Fig. 2's two fill series).
        return kernels.memsetOp2(core, as, d.dst, d.pattern,
                                 d.pattern2, d.patternBytes, d.size,
                                 !d.wantsCacheControl());
      case Opcode::Compare:
        return kernels.memcmpOp(core, as, d.src, d.src2, d.size);
      case Opcode::ComparePattern:
        return kernels.comparePatternOp(core, as, d.src, d.pattern,
                                        d.size);
      case Opcode::CrcGen:
        // d.crcSeed (default crc32cInit) lets a recovery remainder
        // continue a partially computed CRC.
        return kernels.crc32Op(core, as, d.src, d.size, d.crcSeed);
      case Opcode::CopyCrc:
        return kernels.copyCrcOp(core, as, d.dst, d.src, d.size,
                                 d.crcSeed);
      case Opcode::Dualcast:
        return kernels.dualcastOp(core, as, d.dst, d.dst2, d.src,
                                  d.size);
      case Opcode::CreateDelta:
        return kernels.deltaCreateOp(core, as, d.src, d.src2, d.size,
                                     d.dst, d.maxRecordBytes);
      case Opcode::ApplyDelta:
        return kernels.deltaApplyOp(core, as, d.dst, d.src,
                                    d.recordBytes, d.size);
      case Opcode::DifInsert:
        return kernels.difInsertOp(core, as, d.src, d.dst,
                                   d.difBlockBytes, nblocks, d.appTag,
                                   d.refTag);
      case Opcode::DifCheck:
        return kernels.difCheckOp(core, as, d.src, d.difBlockBytes,
                                  nblocks, d.appTag, d.refTag);
      case Opcode::DifStrip:
        return kernels.difStripOp(core, as, d.src, d.dst,
                                  d.difBlockBytes, nblocks);
      case Opcode::DifUpdate:
        return kernels.difUpdateOp(core, as, d.src, d.dst,
                                   d.difBlockBytes, nblocks, d.appTag,
                                   d.refTag, d.newAppTag, d.newRefTag);
      case Opcode::CacheFlush:
        return kernels.cacheFlushOp(core, as, d.src, d.size);
      default:
        fatal("no software path for opcode %s", opcodeName(d.op));
    }
}

CoTask
Executor::execute(Core &core, const WorkDescriptor &d, OpResult &out)
{
    if (shouldOffload(d))
        co_await executeHardware(core, d, out);
    else
        co_await executeSoftware(core, d, out);
}

CoTask
Executor::executeHardware(Core &core, const WorkDescriptor &d,
                          OpResult &out)
{
    Tick t0 = sim.now();
    auto job = prepare(d);
    co_await submit(core, *job);
    co_await wait(core, *job, out);
    out.latency = sim.now() - t0;
}

CoTask
Executor::executeSoftware(Core &core, const WorkDescriptor &d,
                          OpResult &out)
{
    Tick t0 = sim.now();
    ++swJobs;
    SwKernels::Result r = runSoftware(core, d);
    co_await core.busyFor(r.duration, "kernel");
    out.status = CompletionRecord::Status::Success;
    out.ok = r.ok;
    out.result = r.ok ? 0 : 1;
    out.crc = r.crc;
    out.bytesCompleted = r.bytesProcessed;
    out.recordBytes = r.recordBytes;
    out.recordFits = r.recordFits;
    out.usedHardware = false;
    out.latency = sim.now() - t0;
}

bool
Executor::touchFaultPage(Pasid pasid, Addr va)
{
    PageTable &pt = mem.space(pasid).pageTable();
    if (!pt.lookup(va))
        return false;
    pt.setPresent(va, true);
    return true;
}

bool
Executor::advancePastCompleted(WorkDescriptor &d, std::uint64_t n,
                               const OpResult &partial)
{
    if (n > d.size)
        return false;
    const std::uint64_t blk = d.difBlockBytes;
    const std::uint64_t tup = difTupleBytes;
    switch (d.op) {
      case Opcode::Memmove:
        d.src += n;
        d.dst += n;
        break;
      case Opcode::CopyCrc:
        d.src += n;
        d.dst += n;
        // The published CRC is finalized; undo the final inversion
        // to recover the running state as the remainder's seed.
        d.crcSeed = partial.crc ^ 0xffffffffu;
        break;
      case Opcode::CrcGen:
        d.src += n;
        d.crcSeed = partial.crc ^ 0xffffffffu;
        break;
      case Opcode::Dualcast:
        d.src += n;
        d.dst += n;
        d.dst2 += n;
        break;
      case Opcode::Fill:
        // Partial completions stop on a 4 KiB boundary, which is a
        // multiple of both pattern widths, so the phase is kept.
        d.dst += n;
        break;
      case Opcode::Compare:
        d.src += n;
        d.src2 += n;
        break;
      case Opcode::ComparePattern:
      case Opcode::CacheFlush:
        d.src += n;
        break;
      case Opcode::DifInsert:
      case Opcode::DifCheck:
      case Opcode::DifStrip:
      case Opcode::DifUpdate: {
        // n (bytesCompleted) counts data bytes of whole blocks.
        if (blk == 0 || n % blk != 0)
            return false;
        const std::uint64_t blocks = n / blk;
        const std::uint64_t in_unit =
            d.op == Opcode::DifInsert ? blk : blk + tup;
        const std::uint64_t out_unit =
            d.op == Opcode::DifStrip ? blk : blk + tup;
        d.src += blocks * in_unit;
        if (d.op != Opcode::DifCheck)
            d.dst += blocks * out_unit;
        // Reference tags increment per block; the remainder starts
        // where the completed prefix left off.
        d.refTag += static_cast<std::uint32_t>(blocks);
        d.newRefTag += static_cast<std::uint32_t>(blocks);
        break;
      }
      default:
        // CreateDelta/ApplyDelta record offsets are absolute, and
        // Nop/Drain/Batch have no byte stream: restart from scratch.
        return false;
    }
    d.size -= n;
    return true;
}

CoTask
Executor::executeRecover(Core &core, const WorkDescriptor &d,
                         OpResult &out)
{
    if (!shouldOffload(d)) {
        co_await executeSoftware(core, d, out);
        co_return;
    }
    const Tick t0 = sim.now();
    WorkDescriptor cur = d;
    std::uint64_t done = 0;
    unsigned attempts = 0;
    using St = CompletionRecord::Status;
    for (;;) {
        auto job = prepare(cur);
        co_await submit(core, *job);
        OpResult r;
        co_await wait(core, *job, r);

        if (r.status == St::Success) {
            out = r;
            out.bytesCompleted += done;
            out.latency = sim.now() - t0;
            co_return;
        }
        if (attempts++ >= cfg.maxRecoveryAttempts)
            break;
        if (r.status == St::PageFault) {
            // A mismatch inside the completed prefix is a final
            // answer; the unread suffix cannot change it.
            if ((cur.op == Opcode::Compare ||
                 cur.op == Opcode::ComparePattern) && r.result == 1) {
                out = r;
                out.status = St::Success;
                out.bytesCompleted += done;
                out.latency = sim.now() - t0;
                co_return;
            }
            // block-on-fault = 0 partial completion: touch the
            // faulting page (the OS repage the spec prescribes) and
            // re-issue only the remainder.
            if (!touchFaultPage(cur.pasid, r.faultAddr))
                break; // truly unmapped; no retry can progress
            ++pageFaultResumes;
            co_await core.busyFor(cfg.faultTouchCost, "fault-touch");
            if (r.bytesCompleted > 0 &&
                advancePastCompleted(cur, r.bytesCompleted, r))
                done += r.bytesCompleted;
            continue;
        }
        if (r.status == St::Aborted) {
            // Mid-flight disable or watchdog abort: bring the device
            // back (abort/drain already ran in disable()) and
            // resubmit the same remainder.
            if (job->targetDev && !job->targetDev->enabled()) {
                job->targetDev->enable();
                ++deviceResets;
            }
            continue;
        }
        // Hardware error, WQ overflow, queue-full: a retry cannot
        // succeed; degrade straight to software.
        break;
    }
    // Finish the remainder on the CPU — the terminal fallback that
    // makes every job reach a final state.
    ++recoveryFallbacks;
    co_await executeSoftware(core, cur, out);
    out.bytesCompleted += done;
    out.latency = sim.now() - t0;
}

std::unique_ptr<Job>
Executor::prepareBatch(Pasid pasid,
                       const std::vector<WorkDescriptor> &subs)
{
    fatal_if(subs.empty(), "empty batch");
    auto job = std::make_unique<Job>(sim);
    job->desc.op = Opcode::Batch;
    job->desc.pasid = pasid;
    job->desc.completion = &job->cr;
    job->desc.batch =
        std::make_shared<std::vector<WorkDescriptor>>(subs);
    for (auto &sub : *job->desc.batch) {
        job->subCrs.push_back(std::make_unique<CompletionRecord>(sim));
        sub.completion = job->subCrs.back().get();
        job->desc.size += sub.size;
    }
    return job;
}

CoTask
Executor::executeBatch(Core &core,
                       const std::vector<WorkDescriptor> &subs,
                       OpResult &out)
{
    fatal_if(subs.empty(), "empty batch");
    auto job = prepareBatch(subs.front().pasid, subs);
    co_await submit(core, *job);
    co_await wait(core, *job, out);
    out.ok = job->cr.status == CompletionRecord::Status::Success;
}

} // namespace dsasim::dml
