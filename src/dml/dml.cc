#include "dml/dml.hh"

#include "ops/crc32.hh"

#include "sim/logging.hh"

namespace dsasim::dml
{

namespace
{

WorkDescriptor
base(AddressSpace &as, Opcode op)
{
    WorkDescriptor d;
    d.op = op;
    d.pasid = as.pasid();
    return d;
}

} // namespace

Executor::Executor(Simulation &s, MemSystem &ms, SwKernels &k,
                   std::vector<DsaDevice *> devices,
                   ExecutorConfig config)
    : sim(s), mem(ms), kernels(k), cfg(config)
{
    for (DsaDevice *dev : devices) {
        fatal_if(!dev->enabled(),
                 "Executor requires enabled devices (dsa%d is not)",
                 dev->deviceId());
        for (std::size_t w = 0; w < dev->wqCount(); ++w) {
            WorkQueue &wq = dev->wq(w);
            targets.push_back(
                {dev, &wq,
                 std::make_unique<Semaphore>(s, wq.size)});
        }
    }
    fatal_if(targets.empty() && cfg.path == Path::Hardware,
             "hardware path requested but no WQs available");
}

WorkDescriptor
Executor::memMove(AddressSpace &as, Addr dst, Addr src,
                  std::uint64_t n)
{
    WorkDescriptor d = base(as, Opcode::Memmove);
    d.src = src;
    d.dst = dst;
    d.size = n;
    return d;
}

WorkDescriptor
Executor::fill(AddressSpace &as, Addr dst, std::uint64_t pattern,
               std::uint64_t n)
{
    WorkDescriptor d = base(as, Opcode::Fill);
    d.dst = dst;
    d.pattern = pattern;
    d.size = n;
    return d;
}

WorkDescriptor
Executor::fill16(AddressSpace &as, Addr dst, std::uint64_t lo,
                 std::uint64_t hi, std::uint64_t n)
{
    WorkDescriptor d = base(as, Opcode::Fill);
    d.dst = dst;
    d.pattern = lo;
    d.pattern2 = hi;
    d.patternBytes = 16;
    d.size = n;
    return d;
}

WorkDescriptor
Executor::compare(AddressSpace &as, Addr a, Addr b, std::uint64_t n)
{
    WorkDescriptor d = base(as, Opcode::Compare);
    d.src = a;
    d.src2 = b;
    d.size = n;
    return d;
}

WorkDescriptor
Executor::comparePattern(AddressSpace &as, Addr a,
                         std::uint64_t pattern, std::uint64_t n)
{
    WorkDescriptor d = base(as, Opcode::ComparePattern);
    d.src = a;
    d.pattern = pattern;
    d.size = n;
    return d;
}

WorkDescriptor
Executor::crc32(AddressSpace &as, Addr src, std::uint64_t n)
{
    WorkDescriptor d = base(as, Opcode::CrcGen);
    d.src = src;
    d.size = n;
    return d;
}

WorkDescriptor
Executor::copyCrc(AddressSpace &as, Addr dst, Addr src,
                  std::uint64_t n)
{
    WorkDescriptor d = base(as, Opcode::CopyCrc);
    d.src = src;
    d.dst = dst;
    d.size = n;
    return d;
}

WorkDescriptor
Executor::dualcast(AddressSpace &as, Addr dst1, Addr dst2, Addr src,
                   std::uint64_t n)
{
    WorkDescriptor d = base(as, Opcode::Dualcast);
    d.src = src;
    d.dst = dst1;
    d.dst2 = dst2;
    d.size = n;
    return d;
}

WorkDescriptor
Executor::createDelta(AddressSpace &as, Addr original, Addr modified,
                      std::uint64_t n, Addr record,
                      std::uint64_t max_record)
{
    WorkDescriptor d = base(as, Opcode::CreateDelta);
    d.src = original;
    d.src2 = modified;
    d.dst = record;
    d.size = n;
    d.maxRecordBytes = max_record;
    return d;
}

WorkDescriptor
Executor::applyDelta(AddressSpace &as, Addr dst, Addr record,
                     std::uint64_t record_bytes, std::uint64_t n)
{
    WorkDescriptor d = base(as, Opcode::ApplyDelta);
    d.src = record;
    d.dst = dst;
    d.size = n;
    d.recordBytes = record_bytes;
    return d;
}

WorkDescriptor
Executor::difInsert(AddressSpace &as, Addr src, Addr dst,
                    std::uint32_t block, std::uint64_t data_bytes,
                    std::uint16_t app_tag, std::uint32_t ref_tag)
{
    WorkDescriptor d = base(as, Opcode::DifInsert);
    d.src = src;
    d.dst = dst;
    d.size = data_bytes;
    d.difBlockBytes = block;
    d.appTag = app_tag;
    d.refTag = ref_tag;
    return d;
}

WorkDescriptor
Executor::difCheck(AddressSpace &as, Addr src, std::uint32_t block,
                   std::uint64_t data_bytes, std::uint16_t app_tag,
                   std::uint32_t ref_tag)
{
    WorkDescriptor d = base(as, Opcode::DifCheck);
    d.src = src;
    d.size = data_bytes;
    d.difBlockBytes = block;
    d.appTag = app_tag;
    d.refTag = ref_tag;
    return d;
}

WorkDescriptor
Executor::difStrip(AddressSpace &as, Addr src, Addr dst,
                   std::uint32_t block, std::uint64_t data_bytes)
{
    WorkDescriptor d = base(as, Opcode::DifStrip);
    d.src = src;
    d.dst = dst;
    d.size = data_bytes;
    d.difBlockBytes = block;
    return d;
}

WorkDescriptor
Executor::difUpdate(AddressSpace &as, Addr src, Addr dst,
                    std::uint32_t block, std::uint64_t data_bytes,
                    std::uint16_t old_app_tag,
                    std::uint32_t old_ref_tag,
                    std::uint16_t new_app_tag,
                    std::uint32_t new_ref_tag)
{
    WorkDescriptor d = base(as, Opcode::DifUpdate);
    d.src = src;
    d.dst = dst;
    d.size = data_bytes;
    d.difBlockBytes = block;
    d.appTag = old_app_tag;
    d.refTag = old_ref_tag;
    d.newAppTag = new_app_tag;
    d.newRefTag = new_ref_tag;
    return d;
}

WorkDescriptor
Executor::cacheFlush(AddressSpace &as, Addr addr, std::uint64_t n)
{
    WorkDescriptor d = base(as, Opcode::CacheFlush);
    d.src = addr;
    d.size = n;
    return d;
}

WorkDescriptor
Executor::drain(AddressSpace &as)
{
    return base(as, Opcode::Drain);
}

Executor::Target &
Executor::pickTarget()
{
    fatal_if(targets.empty(), "no hardware targets configured");
    if (cfg.balance == ExecutorConfig::Balance::LeastLoaded) {
        // Load = queued + dispatched-but-incomplete jobs. For DWQs
        // the held credits count work in flight on the engines; WQ
        // occupancy alone misses it, since entries free at dispatch.
        auto load = [](const Target &t) {
            std::size_t l =
                t.wq->occupancy() + t.credits->waitersPending();
            if (t.wq->mode == WorkQueue::Mode::Dedicated)
                l += t.wq->size - static_cast<std::size_t>(
                                      t.credits->available());
            return l;
        };
        Target *best = &targets[0];
        for (auto &t : targets) {
            if (load(t) < load(*best))
                best = &t;
        }
        return *best;
    }
    Target &t = targets[rr % targets.size()];
    ++rr;
    return t;
}

bool
Executor::shouldOffload(const WorkDescriptor &d) const
{
    if (targets.empty())
        return false;
    switch (cfg.path) {
      case Path::Software: return false;
      case Path::Hardware: return true;
      case Path::Auto: return d.size >= cfg.autoHwThreshold;
    }
    return false;
}

std::unique_ptr<Job>
Executor::prepare(const WorkDescriptor &d)
{
    auto job = std::make_unique<Job>(sim);
    job->desc = d;
    job->desc.completion = &job->cr;
    return job;
}

SimTask
Executor::releaseOnDone(CompletionRecord &cr, Semaphore &credits)
{
    if (!cr.isDone())
        co_await cr.done.wait();
    credits.release();
}

CoTask
Executor::submit(Core &core, Job &job)
{
    Target &t = pickTarget();
    job.usedHardware = true;
    job.submittedAt = sim.now();
    ++hwJobs;
    bytesOffloaded += job.desc.size;

    Submitter sub(core, t.dev->params());
    if (t.wq->mode == WorkQueue::Mode::Dedicated) {
        // The credit models the client-side occupancy tracking a
        // MOVDIR64B user must do.
        co_await t.credits->acquire();
        releaseOnDone(job.cr, *t.credits);
        co_await sub.movdir64b(*t.dev, *t.wq, job.desc);
    } else {
        co_await sub.enqcmdRetry(*t.dev, *t.wq, job.desc);
    }
}

void
Executor::harvest(const CompletionRecord &cr, OpResult &out)
{
    out.status = cr.status;
    out.ok = cr.status == CompletionRecord::Status::Success &&
             cr.result == 0;
    out.result = cr.result;
    out.crc = cr.crc;
    out.bytesCompleted = cr.bytesCompleted;
    out.recordBytes = cr.recordBytes;
    out.recordFits = cr.recordFits;
    out.faultAddr = cr.faultAddr;
    out.usedHardware = true;
}

CoTask
Executor::wait(Core &core, Job &job, OpResult &out)
{
    panic_if(!job.usedHardware, "wait() on a non-submitted job");
    Submitter sub(core, targets.empty() ? DsaParams{}
                                        : targets[0].dev->params());
    if (cfg.useUmwait)
        co_await sub.umwait(job.cr);
    else
        co_await sub.poll(job.cr);
    harvest(job.cr, out);
    out.latency = sim.now() - job.submittedAt;
}

SwKernels::Result
Executor::runSoftware(Core &core, const WorkDescriptor &d)
{
    AddressSpace &as = mem.space(d.pasid);
    std::uint64_t nblocks =
        d.difBlockBytes ? d.size / d.difBlockBytes : 0;
    switch (d.op) {
      case Opcode::Memmove:
        return kernels.memcpyOp(core, as, d.dst, d.src, d.size);
      case Opcode::Fill:
        // Cache-control off selects the non-temporal store variant,
        // keeping the software baseline symmetric with the device's
        // non-allocating write path (Fig. 2's two fill series).
        return kernels.memsetOp2(core, as, d.dst, d.pattern,
                                 d.pattern2, d.patternBytes, d.size,
                                 !d.wantsCacheControl());
      case Opcode::Compare:
        return kernels.memcmpOp(core, as, d.src, d.src2, d.size);
      case Opcode::ComparePattern:
        return kernels.comparePatternOp(core, as, d.src, d.pattern,
                                        d.size);
      case Opcode::CrcGen:
        return kernels.crc32Op(core, as, d.src, d.size, crc32cInit);
      case Opcode::CopyCrc:
        return kernels.copyCrcOp(core, as, d.dst, d.src, d.size,
                                 crc32cInit);
      case Opcode::Dualcast:
        return kernels.dualcastOp(core, as, d.dst, d.dst2, d.src,
                                  d.size);
      case Opcode::CreateDelta:
        return kernels.deltaCreateOp(core, as, d.src, d.src2, d.size,
                                     d.dst, d.maxRecordBytes);
      case Opcode::ApplyDelta:
        return kernels.deltaApplyOp(core, as, d.dst, d.src,
                                    d.recordBytes, d.size);
      case Opcode::DifInsert:
        return kernels.difInsertOp(core, as, d.src, d.dst,
                                   d.difBlockBytes, nblocks, d.appTag,
                                   d.refTag);
      case Opcode::DifCheck:
        return kernels.difCheckOp(core, as, d.src, d.difBlockBytes,
                                  nblocks, d.appTag, d.refTag);
      case Opcode::DifStrip:
        return kernels.difStripOp(core, as, d.src, d.dst,
                                  d.difBlockBytes, nblocks);
      case Opcode::DifUpdate:
        return kernels.difUpdateOp(core, as, d.src, d.dst,
                                   d.difBlockBytes, nblocks, d.appTag,
                                   d.refTag, d.newAppTag, d.newRefTag);
      case Opcode::CacheFlush:
        return kernels.cacheFlushOp(core, as, d.src, d.size);
      default:
        fatal("no software path for opcode %s", opcodeName(d.op));
    }
}

CoTask
Executor::execute(Core &core, const WorkDescriptor &d, OpResult &out)
{
    if (shouldOffload(d))
        co_await executeHardware(core, d, out);
    else
        co_await executeSoftware(core, d, out);
}

CoTask
Executor::executeHardware(Core &core, const WorkDescriptor &d,
                          OpResult &out)
{
    Tick t0 = sim.now();
    auto job = prepare(d);
    co_await submit(core, *job);
    co_await wait(core, *job, out);
    out.latency = sim.now() - t0;
}

CoTask
Executor::executeSoftware(Core &core, const WorkDescriptor &d,
                          OpResult &out)
{
    Tick t0 = sim.now();
    ++swJobs;
    SwKernels::Result r = runSoftware(core, d);
    co_await core.busyFor(r.duration, "kernel");
    out.status = CompletionRecord::Status::Success;
    out.ok = r.ok;
    out.result = r.ok ? 0 : 1;
    out.crc = r.crc;
    out.bytesCompleted = r.bytesProcessed;
    out.recordBytes = r.recordBytes;
    out.recordFits = r.recordFits;
    out.usedHardware = false;
    out.latency = sim.now() - t0;
}

std::unique_ptr<Job>
Executor::prepareBatch(Pasid pasid,
                       const std::vector<WorkDescriptor> &subs)
{
    fatal_if(subs.empty(), "empty batch");
    auto job = std::make_unique<Job>(sim);
    job->desc.op = Opcode::Batch;
    job->desc.pasid = pasid;
    job->desc.completion = &job->cr;
    job->desc.batch =
        std::make_shared<std::vector<WorkDescriptor>>(subs);
    for (auto &sub : *job->desc.batch) {
        job->subCrs.push_back(std::make_unique<CompletionRecord>(sim));
        sub.completion = job->subCrs.back().get();
        job->desc.size += sub.size;
    }
    return job;
}

CoTask
Executor::executeBatch(Core &core,
                       const std::vector<WorkDescriptor> &subs,
                       OpResult &out)
{
    fatal_if(subs.empty(), "empty batch");
    auto job = prepareBatch(subs.front().pasid, subs);
    co_await submit(core, *job);
    co_await wait(core, *job, out);
    out.ok = job->cr.status == CompletionRecord::Status::Success;
}

} // namespace dsasim::dml
