/**
 * @file
 * dml: the high-level data-mover API of this library, mirroring the
 * Intel DML concepts the paper describes in §5 ("Software libraries
 * for DSA"): execution paths (software / hardware / auto), one-shot
 * synchronous jobs, asynchronous jobs with explicit waits, batch
 * jobs, and load balancing across multiple DSA instances and WQs.
 *
 * This is the layer applications are expected to program against;
 * examples/ and the case-study apps use it exclusively.
 */

#ifndef DSASIM_DML_DML_HH
#define DSASIM_DML_DML_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cpu/kernels.hh"
#include "driver/submitter.hh"
#include "dsa/device.hh"
#include "sim/task.hh"

namespace dsasim::dml
{

/** Where a job runs. */
enum class Path
{
    Software, ///< always on the calling core
    Hardware, ///< always offloaded to DSA
    Auto,     ///< DSA when profitable (size >= threshold), else CPU
};

struct ExecutorConfig
{
    Path path = Path::Auto;
    /** Auto path: offload at or above this size (G2's ~4 KB rule). */
    std::uint64_t autoHwThreshold = 4096;
    /** Wait with UMWAIT (true) or spin-poll (false). */
    bool useUmwait = true;

    /** How jobs spread over the available (device, WQ) targets. */
    enum class Balance
    {
        RoundRobin,  ///< strict rotation
        LeastLoaded, ///< pick the WQ with the most free credits
    };
    Balance balance = Balance::RoundRobin;
};

/** Uniform result of any job, software or hardware. */
struct OpResult
{
    CompletionRecord::Status status = CompletionRecord::Status::None;
    bool ok = false;      ///< Success (and compare/check passed)
    std::uint32_t result = 0;
    std::uint32_t crc = 0;
    std::uint64_t bytesCompleted = 0;
    std::uint64_t recordBytes = 0;
    bool recordFits = true;
    Addr faultAddr = 0;   ///< first faulting VA (PageFault status)
    Tick latency = 0;     ///< submit-to-detect, core perspective
    bool usedHardware = false;
};

/** An in-flight asynchronous job. */
class Job
{
  public:
    explicit Job(Simulation &s) : cr(s) {}

    WorkDescriptor desc;
    CompletionRecord cr;
    /** Batch jobs: one record per sub-descriptor. */
    std::vector<std::unique_ptr<CompletionRecord>> subCrs;
    Tick submittedAt = 0;
    bool usedHardware = false;

    bool
    done() const
    {
        return !usedHardware || cr.isDone();
    }
};

class Executor
{
  public:
    Executor(Simulation &s, MemSystem &ms, SwKernels &k,
             std::vector<DsaDevice *> devices,
             ExecutorConfig cfg = {});

    const ExecutorConfig &config() const { return cfg; }

    /// @name Descriptor factories.
    /// All take virtual addresses in @p as and default to
    /// cache-control = on, block-on-fault = on.
    /// @{
    static WorkDescriptor memMove(AddressSpace &as, Addr dst, Addr src,
                                  std::uint64_t n);
    static WorkDescriptor fill(AddressSpace &as, Addr dst,
                               std::uint64_t pattern, std::uint64_t n);
    /** Fill with a 16-byte pattern (lo || hi repeating). */
    static WorkDescriptor fill16(AddressSpace &as, Addr dst,
                                 std::uint64_t lo, std::uint64_t hi,
                                 std::uint64_t n);
    static WorkDescriptor compare(AddressSpace &as, Addr a, Addr b,
                                  std::uint64_t n);
    static WorkDescriptor comparePattern(AddressSpace &as, Addr a,
                                         std::uint64_t pattern,
                                         std::uint64_t n);
    static WorkDescriptor crc32(AddressSpace &as, Addr src,
                                std::uint64_t n);
    static WorkDescriptor copyCrc(AddressSpace &as, Addr dst, Addr src,
                                  std::uint64_t n);
    static WorkDescriptor dualcast(AddressSpace &as, Addr dst1,
                                   Addr dst2, Addr src,
                                   std::uint64_t n);
    static WorkDescriptor createDelta(AddressSpace &as, Addr original,
                                      Addr modified, std::uint64_t n,
                                      Addr record,
                                      std::uint64_t max_record);
    static WorkDescriptor applyDelta(AddressSpace &as, Addr dst,
                                     Addr record,
                                     std::uint64_t record_bytes,
                                     std::uint64_t n);
    static WorkDescriptor difInsert(AddressSpace &as, Addr src,
                                    Addr dst, std::uint32_t block,
                                    std::uint64_t data_bytes,
                                    std::uint16_t app_tag,
                                    std::uint32_t ref_tag);
    static WorkDescriptor difCheck(AddressSpace &as, Addr src,
                                   std::uint32_t block,
                                   std::uint64_t data_bytes,
                                   std::uint16_t app_tag,
                                   std::uint32_t ref_tag);
    static WorkDescriptor difStrip(AddressSpace &as, Addr src,
                                   Addr dst, std::uint32_t block,
                                   std::uint64_t data_bytes);
    static WorkDescriptor difUpdate(AddressSpace &as, Addr src,
                                    Addr dst, std::uint32_t block,
                                    std::uint64_t data_bytes,
                                    std::uint16_t old_app_tag,
                                    std::uint32_t old_ref_tag,
                                    std::uint16_t new_app_tag,
                                    std::uint32_t new_ref_tag);
    static WorkDescriptor cacheFlush(AddressSpace &as, Addr addr,
                                     std::uint64_t n);
    /** Ordering fence: completes when prior group work completes. */
    static WorkDescriptor drain(AddressSpace &as);
    /// @}

    /// @name Asynchronous API (hardware path).
    /// @{
    std::unique_ptr<Job> prepare(const WorkDescriptor &d);

    /**
     * Submit a prepared job. Applies WQ-credit backpressure for
     * DWQs (MOVDIR64B) and the retry protocol for SWQs (ENQCMD).
     */
    CoTask submit(Core &core, Job &job);

    /** Wait for a job and harvest its result. */
    CoTask wait(Core &core, Job &job, OpResult &out);
    /// @}

    /// @name Synchronous one-shot, honoring the configured path.
    /// @{
    CoTask execute(Core &core, const WorkDescriptor &d, OpResult &out);

    /** Force the hardware path regardless of configuration. */
    CoTask executeHardware(Core &core, const WorkDescriptor &d,
                           OpResult &out);

    /** Force the software path regardless of configuration. */
    CoTask executeSoftware(Core &core, const WorkDescriptor &d,
                           OpResult &out);
    /// @}

    /// @name Batch API (F2).
    /// @{
    std::unique_ptr<Job> prepareBatch(
        Pasid pasid, const std::vector<WorkDescriptor> &subs);

    CoTask executeBatch(Core &core,
                        const std::vector<WorkDescriptor> &subs,
                        OpResult &out);
    /// @}

    /// @name Statistics.
    /// @{
    std::uint64_t hwJobs = 0;
    std::uint64_t swJobs = 0;
    std::uint64_t bytesOffloaded = 0;
    /// @}

  private:
    struct Target
    {
        DsaDevice *dev;
        WorkQueue *wq;
        std::unique_ptr<Semaphore> credits; ///< DWQ backpressure
    };

    Target &pickTarget();
    bool shouldOffload(const WorkDescriptor &d) const;
    SwKernels::Result runSoftware(Core &core, const WorkDescriptor &d);
    static void harvest(const CompletionRecord &cr, OpResult &out);
    SimTask releaseOnDone(CompletionRecord &cr, Semaphore &credits);

    Simulation &sim;
    MemSystem &mem;
    SwKernels &kernels;
    ExecutorConfig cfg;
    std::vector<Target> targets;
    std::size_t rr = 0;
};

} // namespace dsasim::dml

#endif // DSASIM_DML_DML_HH
