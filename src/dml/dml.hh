/**
 * @file
 * dml: the high-level data-mover API of this library, mirroring the
 * Intel DML concepts the paper describes in §5 ("Software libraries
 * for DSA"): execution paths (software / hardware / auto), one-shot
 * synchronous jobs, asynchronous jobs with explicit waits, batch
 * jobs, and load balancing across multiple DSA instances and WQs.
 *
 * This is the layer applications are expected to program against;
 * examples/ and the case-study apps use it exclusively.
 */

#ifndef DSASIM_DML_DML_HH
#define DSASIM_DML_DML_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cpu/kernels.hh"
#include "driver/submitter.hh"
#include "dsa/device.hh"
#include "sim/task.hh"

namespace dsasim::dml
{

/** Where a job runs. */
enum class Path
{
    Software, ///< always on the calling core
    Hardware, ///< always offloaded to DSA
    Auto,     ///< DSA when profitable (size >= threshold), else CPU
};

struct ExecutorConfig
{
    Path path = Path::Auto;
    /** Auto path: offload at or above this size (G2's ~4 KB rule). */
    std::uint64_t autoHwThreshold = 4096;
    /** Wait with UMWAIT (true) or spin-poll (false). */
    bool useUmwait = true;

    /** How jobs spread over the available (device, WQ) targets. */
    enum class Balance
    {
        RoundRobin,  ///< strict rotation
        LeastLoaded, ///< pick the WQ with the most free credits
    };
    Balance balance = Balance::RoundRobin;

    /// @name Recovery knobs (all off by default: the fault-free
    /// fast path is bit-identical to the pre-recovery executor).
    /// @{
    /**
     * Abort a hardware job that has not completed this long after
     * wait() starts (a hung engine, a lost completion). 0 = off.
     */
    Tick watchdogTimeout = 0;
    /**
     * After the watchdog aborts the hung engine, how long to wait
     * for the Aborted completion before force-completing the record
     * from the driver side (covers a wedged device).
     */
    Tick watchdogGrace = fromUs(10);
    /**
     * Bounded-exponential ENQCMD backoff: resubmit at most this many
     * times, pausing enqcmdBackoffBase and doubling up to
     * enqcmdBackoffCap. 0 = legacy unbounded immediate retry (the
     * paper's measured Fig. 9 behavior).
     */
    unsigned enqcmdMaxRetries = 0;
    Tick enqcmdBackoffBase = fromNs(256);
    Tick enqcmdBackoffCap = fromUs(16);
    /** CPU cost to touch/repage a faulted page before resuming. */
    Tick faultTouchCost = fromUs(2);
    /**
     * executeRecover(): hardware retries (resume, reset-resubmit)
     * before degrading the remainder to the software path.
     */
    unsigned maxRecoveryAttempts = 3;
    /// @}
};

/** Uniform result of any job, software or hardware. */
struct OpResult
{
    CompletionRecord::Status status = CompletionRecord::Status::None;
    bool ok = false;      ///< Success (and compare/check passed)
    std::uint32_t result = 0;
    std::uint32_t crc = 0;
    std::uint64_t bytesCompleted = 0;
    std::uint64_t recordBytes = 0;
    bool recordFits = true;
    Addr faultAddr = 0;   ///< first faulting VA (PageFault status)
    Tick latency = 0;     ///< submit-to-detect, core perspective
    bool usedHardware = false;
};

/** An in-flight asynchronous job. */
class Job
{
  public:
    explicit Job(Simulation &s) : cr(s) {}

    WorkDescriptor desc;
    CompletionRecord cr;
    /** Batch jobs: one record per sub-descriptor. */
    std::vector<std::unique_ptr<CompletionRecord>> subCrs;
    Tick submittedAt = 0;
    bool usedHardware = false;
    /** Device the job was submitted to (watchdog/reset target). */
    DsaDevice *targetDev = nullptr;

    bool
    done() const
    {
        return !usedHardware || cr.isDone();
    }
};

class Executor
{
  public:
    Executor(Simulation &s, MemSystem &ms, SwKernels &k,
             std::vector<DsaDevice *> devices,
             ExecutorConfig cfg = {});

    const ExecutorConfig &config() const { return cfg; }

    /** The simulation this executor schedules on (e.g. for
     * registering telemetry against its stats registry). */
    Simulation &simulation() { return sim; }

    /// @name Descriptor factories.
    /// All take virtual addresses in @p as and default to
    /// cache-control = on, block-on-fault = on.
    /// @{
    static WorkDescriptor memMove(AddressSpace &as, Addr dst, Addr src,
                                  std::uint64_t n);
    static WorkDescriptor fill(AddressSpace &as, Addr dst,
                               std::uint64_t pattern, std::uint64_t n);
    /** Fill with a 16-byte pattern (lo || hi repeating). */
    static WorkDescriptor fill16(AddressSpace &as, Addr dst,
                                 std::uint64_t lo, std::uint64_t hi,
                                 std::uint64_t n);
    static WorkDescriptor compare(AddressSpace &as, Addr a, Addr b,
                                  std::uint64_t n);
    static WorkDescriptor comparePattern(AddressSpace &as, Addr a,
                                         std::uint64_t pattern,
                                         std::uint64_t n);
    static WorkDescriptor crc32(AddressSpace &as, Addr src,
                                std::uint64_t n);
    static WorkDescriptor copyCrc(AddressSpace &as, Addr dst, Addr src,
                                  std::uint64_t n);
    static WorkDescriptor dualcast(AddressSpace &as, Addr dst1,
                                   Addr dst2, Addr src,
                                   std::uint64_t n);
    static WorkDescriptor createDelta(AddressSpace &as, Addr original,
                                      Addr modified, std::uint64_t n,
                                      Addr record,
                                      std::uint64_t max_record);
    static WorkDescriptor applyDelta(AddressSpace &as, Addr dst,
                                     Addr record,
                                     std::uint64_t record_bytes,
                                     std::uint64_t n);
    static WorkDescriptor difInsert(AddressSpace &as, Addr src,
                                    Addr dst, std::uint32_t block,
                                    std::uint64_t data_bytes,
                                    std::uint16_t app_tag,
                                    std::uint32_t ref_tag);
    static WorkDescriptor difCheck(AddressSpace &as, Addr src,
                                   std::uint32_t block,
                                   std::uint64_t data_bytes,
                                   std::uint16_t app_tag,
                                   std::uint32_t ref_tag);
    static WorkDescriptor difStrip(AddressSpace &as, Addr src,
                                   Addr dst, std::uint32_t block,
                                   std::uint64_t data_bytes);
    static WorkDescriptor difUpdate(AddressSpace &as, Addr src,
                                    Addr dst, std::uint32_t block,
                                    std::uint64_t data_bytes,
                                    std::uint16_t old_app_tag,
                                    std::uint32_t old_ref_tag,
                                    std::uint16_t new_app_tag,
                                    std::uint32_t new_ref_tag);
    static WorkDescriptor cacheFlush(AddressSpace &as, Addr addr,
                                     std::uint64_t n);
    /** Ordering fence: completes when prior group work completes. */
    static WorkDescriptor drain(AddressSpace &as);
    /// @}

    /// @name Asynchronous API (hardware path).
    /// @{
    std::unique_ptr<Job> prepare(const WorkDescriptor &d);

    /**
     * Submit a prepared job. Applies WQ-credit backpressure for
     * DWQs (MOVDIR64B) and the retry protocol for SWQs (ENQCMD).
     */
    CoTask submit(Core &core, Job &job);

    /** Wait for a job and harvest its result. */
    CoTask wait(Core &core, Job &job, OpResult &out);
    /// @}

    /// @name Synchronous one-shot, honoring the configured path.
    /// @{
    CoTask execute(Core &core, const WorkDescriptor &d, OpResult &out);

    /** Force the hardware path regardless of configuration. */
    CoTask executeHardware(Core &core, const WorkDescriptor &d,
                           OpResult &out);

    /** Force the software path regardless of configuration. */
    CoTask executeSoftware(Core &core, const WorkDescriptor &d,
                           OpResult &out);

    /**
     * Hardware execution with the full recovery protocol: partial
     * completions (PageFault, block-on-fault = 0) touch the faulting
     * page and re-issue the remainder; Aborted jobs re-enable the
     * device and resubmit; anything else — and any job still failing
     * after maxRecoveryAttempts — degrades the remainder to the
     * software path. The job always reaches a terminal state.
     */
    CoTask executeRecover(Core &core, const WorkDescriptor &d,
                          OpResult &out);
    /// @}

    /// @name Batch API (F2).
    /// @{
    std::unique_ptr<Job> prepareBatch(
        Pasid pasid, const std::vector<WorkDescriptor> &subs);

    CoTask executeBatch(Core &core,
                        const std::vector<WorkDescriptor> &subs,
                        OpResult &out);
    /// @}

    /// @name Statistics.
    /// @{
    std::uint64_t hwJobs = 0;
    std::uint64_t swJobs = 0;
    std::uint64_t bytesOffloaded = 0;
    std::uint64_t watchdogFires = 0;    ///< timeouts that aborted a job
    std::uint64_t watchdogForced = 0;   ///< grace expired, driver-completed
    std::uint64_t pageFaultResumes = 0; ///< partial completions resumed
    std::uint64_t deviceResets = 0;     ///< re-enables after Aborted
    std::uint64_t submitGiveUps = 0;    ///< ENQCMD backoff exhausted
    std::uint64_t recoveryFallbacks = 0;///< remainders degraded to CPU
    /// @}

    /**
     * Checkpointable (sim/checkpoint.hh): the round-robin cursor and
     * the statistics. WQ credit semaphores are all-full at quiesce
     * (every submit's credit is released by its completion), which
     * is how a fresh Executor starts, so they carry no state.
     */
    struct State
    {
        std::size_t rr = 0;
        std::uint64_t hwJobs = 0;
        std::uint64_t swJobs = 0;
        std::uint64_t bytesOffloaded = 0;
        std::uint64_t watchdogFires = 0;
        std::uint64_t watchdogForced = 0;
        std::uint64_t pageFaultResumes = 0;
        std::uint64_t deviceResets = 0;
        std::uint64_t submitGiveUps = 0;
        std::uint64_t recoveryFallbacks = 0;
    };

    State
    saveState() const
    {
        return State{rr,
                     hwJobs,
                     swJobs,
                     bytesOffloaded,
                     watchdogFires,
                     watchdogForced,
                     pageFaultResumes,
                     deviceResets,
                     submitGiveUps,
                     recoveryFallbacks};
    }

    void
    restoreState(const State &st)
    {
        rr = st.rr;
        hwJobs = st.hwJobs;
        swJobs = st.swJobs;
        bytesOffloaded = st.bytesOffloaded;
        watchdogFires = st.watchdogFires;
        watchdogForced = st.watchdogForced;
        pageFaultResumes = st.pageFaultResumes;
        deviceResets = st.deviceResets;
        submitGiveUps = st.submitGiveUps;
        recoveryFallbacks = st.recoveryFallbacks;
    }

  private:
    struct Target
    {
        DsaDevice *dev;
        WorkQueue *wq;
        std::unique_ptr<Semaphore> credits; ///< DWQ backpressure
    };

    Target &pickTarget();
    bool shouldOffload(const WorkDescriptor &d) const;
    SwKernels::Result runSoftware(Core &core, const WorkDescriptor &d);
    static void harvest(const CompletionRecord &cr, OpResult &out);
    SimTask releaseOnDone(CompletionRecord &cr, Semaphore &credits);
    /**
     * Cancellation token for an armed watchdog: the timeout callback
     * may outlive the Job, so it checks cancelled before touching
     * the completion record.
     */
    struct WatchdogArm
    {
        bool cancelled = false;
    };
    std::shared_ptr<WatchdogArm> armWatchdog(Job &job);
    /** Page the faulting VA back in; false if it is unmapped. */
    bool touchFaultPage(Pasid pasid, Addr va);
    /**
     * Advance @p d past @p done_bytes of completed work so the
     * remainder can be re-issued. Returns false for operations that
     * must restart from the beginning (delta record offsets are
     * absolute).
     */
    static bool advancePastCompleted(WorkDescriptor &d,
                                     std::uint64_t done_bytes,
                                     const OpResult &partial);

    Simulation &sim;
    MemSystem &mem;
    SwKernels &kernels;
    ExecutorConfig cfg;
    std::vector<Target> targets;
    std::size_t rr = 0;
};

} // namespace dsasim::dml

#endif // DSASIM_DML_DML_HH
