#include "dml/serving.hh"

#include <algorithm>

#include "driver/submitter.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace dsasim::dml
{

ServingNode::ServingNode(Simulation &s, Executor &e, ServingConfig c)
    : cfg(c), sim(s), ex(e),
      latencyHist([&]() -> stats::Histogram & {
          stats::Registry &reg = s.stats();
          const std::string scope = reg.scope("serving") + ".";
          // Ladder-event counters: supplier-backed sums over the
          // tenant sessions, so they track tenants added later.
          reg.counter(scope + "breaker_opens",
                      "circuit-breaker trips across all tenants",
                      [this] {
                          std::uint64_t n = 0;
                          for (const auto &t : tenants)
                              n += t->breaker.opens;
                          return n;
                      });
          reg.counter(scope + "sheds",
                      "requests shed by an open breaker", [this] {
                          std::uint64_t n = 0;
                          for (const auto &t : tenants)
                              n += t->breaker.shed;
                          return n;
                      });
          reg.counter(scope + "retries",
                      "ENQCMD retries absorbed in backoff", [this] {
                          std::uint64_t n = 0;
                          for (const auto &t : tenants)
                              n += t->stats.retries;
                          return n;
                      });
          reg.counter(scope + "fallbacks",
                      "requests served on the CPU path", [this] {
                          std::uint64_t n = 0;
                          for (const auto &t : tenants)
                              n += t->stats.fallbacks;
                          return n;
                      });
          return reg.histogram(
              scope + "latency_us",
              "arrival-to-done request latency in microseconds",
              {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0,
               512.0, 1024.0, 2048.0, 4096.0, 8192.0, 16384.0});
      }())
{}

bool
CircuitBreaker::allowHardware(Tick now)
{
    if (st == State::Open) {
        if (now < openedAt + cfg.cooldown) {
            ++shed;
            return false;
        }
        st = State::HalfOpen;
        probesIssued = 0;
        probeOks = 0;
    }
    if (st == State::HalfOpen) {
        if (probesIssued >= cfg.probes) {
            // Probe quota in flight; hold the rest until a verdict.
            ++shed;
            return false;
        }
        ++probesIssued;
        return true;
    }
    return true;
}

void
CircuitBreaker::trip(Tick now)
{
    st = State::Open;
    openedAt = now;
    ++opens;
    samples = 0;
    fulls = 0;
}

void
CircuitBreaker::onOutcome(Tick now, bool queue_full)
{
    switch (st) {
      case State::Closed:
        ++samples;
        if (queue_full)
            ++fulls;
        if (samples >= cfg.window) {
            if (static_cast<double>(fulls) >=
                cfg.openThreshold * static_cast<double>(samples)) {
                trip(now);
            } else {
                samples = 0;
                fulls = 0;
            }
        }
        break;
      case State::HalfOpen:
        if (queue_full) {
            trip(now);
        } else if (++probeOks >= cfg.probes) {
            st = State::Closed;
            ++closes;
            samples = 0;
            fulls = 0;
        }
        break;
      case State::Open:
        // Stragglers admitted before the trip; the hold-down stands.
        break;
    }
}

void
TenantStats::merge(const TenantStats &o)
{
    arrivals += o.arrivals;
    issued += o.issued;
    dropped += o.dropped;
    hwAccepted += o.hwAccepted;
    hwOk += o.hwOk;
    hwErrors += o.hwErrors;
    retries += o.retries;
    giveUps += o.giveUps;
    shedBreaker += o.shedBreaker;
    fallbacks += o.fallbacks;
    failures += o.failures;
    goodputBytes += o.goodputBytes;
    latencyUs.merge(o.latencyUs);
}

SimTask
ServingNode::openLoop(TenantSession &t, ArrivalStream arrivals,
                      std::uint64_t requests, Latch &done)
{
    Tick at = sim.now();
    for (std::uint64_t k = 0; k < requests; ++k) {
        at += arrivals.interarrival(k);
        co_await sim.delayUntil(at);
        ++t.stats.arrivals;
        if (t.outstanding >= cfg.outstandingCap) {
            // Load shedding at the door: bounding per-tenant
            // in-flight work keeps overload from growing the heap or
            // the calendar without bound.
            ++t.stats.dropped;
            done.arrive();
            continue;
        }
        ++t.outstanding;
        serveDetached(t, k, done);
    }
}

SimTask
ServingNode::serveDetached(TenantSession &t, std::uint64_t k,
                           Latch &done)
{
    co_await serve(t, k);
    --t.outstanding;
    done.arrive();
}

namespace
{

void
harvest(const CompletionRecord &cr, OpResult &out)
{
    out.status = cr.status;
    out.ok = cr.status == CompletionRecord::Status::Success &&
             cr.result == 0;
    out.result = cr.result;
    out.crc = cr.crc;
    out.bytesCompleted = cr.bytesCompleted;
    out.recordBytes = cr.recordBytes;
    out.recordFits = cr.recordFits;
    out.faultAddr = cr.faultAddr;
    out.usedHardware = true;
}

} // namespace

CoTask
ServingNode::awaitCompletion(TenantSession &t, CompletionRecord &cr)
{
    struct Arm
    {
        bool cancelled = false;
    };
    std::shared_ptr<Arm> arm;
    if (cfg.watchdogTimeout > 0 && !cr.isDone()) {
        arm = std::make_shared<Arm>();
        CompletionRecord *crp = &cr;
        DsaDevice *devp = t.dev;
        Simulation *simp = &sim;
        ServingNode *self = this;
        const Tick grace = cfg.watchdogGrace;
        sim.scheduleIn(cfg.watchdogTimeout,
                       [arm, crp, devp, simp, self, grace] {
            if (arm->cancelled || crp->isDone())
                return;
            ++self->watchdogFires;
            // Release anything wedged on the device; the descriptor
            // then publishes Aborted on its own. If even that stays
            // silent through the grace window, declare the request
            // dead so the waiter can never hang.
            devp->abortHung();
            simp->scheduleIn(grace, [arm, crp, self] {
                if (arm->cancelled || crp->isDone())
                    return;
                ++self->watchdogForced;
                crp->bytesCompleted = 0;
                crp->complete(CompletionRecord::Status::Aborted);
            });
        });
    }
    Submitter sub(*t.core, t.dev->params());
    co_await sub.umwait(cr);
    if (arm)
        arm->cancelled = true;
}

CoTask
ServingNode::serve(TenantSession &t, std::uint64_t k)
{
    ++t.stats.issued;
    const Tick t0 = sim.now();
    WorkDescriptor d = t.makeRequest(k);
    d.pasid = t.pasid;

    OpResult out;
    bool servedHw = false;
    bool wantFallback = cfg.cpuFallback;

    if (t.breaker.allowHardware(sim.now())) {
        CompletionRecord cr(sim);
        d.completion = &cr;
        Submitter sub(*t.core, t.dev->params());
        bool accepted = false;
        Tick pause = cfg.backoffBase;
        for (unsigned attempt = 0;; ++attempt) {
            DsaDevice::SubmitStatus st{};
            co_await sub.enqcmdStatus(*t.dev, *t.wq, d, st);
            if (st == DsaDevice::SubmitStatus::Accepted) {
                accepted = true;
                break;
            }
            if (st == DsaDevice::SubmitStatus::Rejected)
                break; // terminal: the record carries the cause
            if (attempt >= cfg.maxRetries) {
                ++t.stats.giveUps;
                break;
            }
            ++t.stats.retries;
            // Full-jitter exponential backoff. The jitter draw is a
            // pure function of (seed, tenant, request, attempt):
            // retry spreading decorrelates tenants yet replays
            // identically for any partition count.
            const double u = t.jitter.uniformAt(
                k * (cfg.maxRetries + 1ULL) + attempt);
            const Tick jittered =
                pause - static_cast<Tick>(cfg.backoffJitter * u *
                                          static_cast<double>(pause));
            t.core->cycleAccount().charge("enqcmd-backoff", jittered);
            co_await sim.delay(std::max<Tick>(1, jittered));
            pause = std::min(pause * 2, cfg.backoffCap);
        }
        if (accepted) {
            ++t.stats.hwAccepted;
            co_await awaitCompletion(t, cr);
            harvest(cr, out);
            t.breaker.onOutcome(sim.now(), false);
            if (out.ok) {
                servedHw = true;
                wantFallback = false;
                ++t.stats.hwOk;
                t.stats.goodputBytes += d.size;
            } else {
                ++t.stats.hwErrors;
            }
        } else if (cr.isDone()) {
            // Portal rejection (disabled device, injected drop).
            ++t.stats.hwErrors;
            t.breaker.onOutcome(sim.now(), false);
        } else {
            // The SWQ stayed full through the last bounded retry.
            t.breaker.onOutcome(sim.now(), true);
        }
    } else {
        ++t.stats.shedBreaker;
    }

    if (!servedHw) {
        if (wantFallback) {
            // Graceful degradation: the request completes on the
            // CPU path at CPU cost rather than hanging or erroring.
            OpResult sw;
            co_await ex.executeSoftware(*t.core, d, sw);
            out = sw;
            ++t.stats.fallbacks;
            if (sw.ok)
                t.stats.goodputBytes += d.size;
        } else {
            ++t.stats.failures;
        }
    }

    t.stats.latencyUs.add(toUs(sim.now() - t0));
    latencyHist.observe(toUs(sim.now() - t0));
}

TenantStats
ServingNode::aggregate() const
{
    TenantStats total;
    for (const auto &t : tenants)
        total.merge(t->stats);
    return total;
}

} // namespace dsasim::dml
