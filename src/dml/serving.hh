/**
 * @file
 * Overload-robust multi-tenant serving on top of dml::Executor.
 *
 * A ServingNode hosts many PASID-isolated tenant sessions on one
 * socket. Each request runs the graceful-degradation ladder:
 *
 *   circuit breaker ->  bounded jittered ENQCMD backoff  ->  UMWAIT
 *        |  open                 | exhausted / error
 *        v                       v
 *      CPU (SwKernels) fallback  — never a hang, never a drop of an
 *      accepted descriptor.
 *
 * The breaker watches each tenant's queue-full rate over a tumbling
 * event-count window (event counts, not wall intervals, so the
 * policy is a pure function of the deterministic outcome sequence).
 * When it trips, the tenant's requests shed straight to the CPU
 * path until a cooldown elapses; a few half-open probes then decide
 * whether the SWQ has drained.
 *
 * Backoff jitter is counter-based (sim/traffic.hh CounterRng, keyed
 * by tenant/request/attempt), so retry spreading is identical for
 * any DSASIM_PARTITIONS worker count. Per-tenant SLO accounting
 * (p50/p99/p999 latency, goodput, shed/retry/fallback counters)
 * lives in TenantStats and feeds bench/bench_serving.cc.
 */

#ifndef DSASIM_DML_SERVING_HH
#define DSASIM_DML_SERVING_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "dml/dml.hh"
#include "sim/stats.hh"
#include "sim/sync.hh"
#include "sim/traffic.hh"

namespace dsasim::dml
{

/**
 * Per-tenant circuit breaker over ENQCMD queue-full outcomes.
 * Closed counts outcomes in tumbling windows; a window whose
 * queue-full fraction reaches the threshold trips the breaker Open.
 * After the cooldown the breaker admits a handful of half-open
 * probes: one queue-full probe re-opens it, a full set of clean
 * probes closes it.
 */
class CircuitBreaker
{
  public:
    struct Config
    {
        unsigned window = 32;      ///< outcomes per evaluation window
        double openThreshold = 0.5; ///< queue-full fraction to trip
        Tick cooldown = fromUs(100); ///< open hold-down
        unsigned probes = 4;       ///< half-open trial requests
    };

    enum class State : std::uint8_t
    {
        Closed,
        Open,
        HalfOpen,
    };

    CircuitBreaker() = default;
    explicit CircuitBreaker(Config c) : cfg(c) {}

    /**
     * May this request try the hardware path at @p now? Transitions
     * Open -> HalfOpen once the cooldown elapses; a false return is
     * a shed (counted).
     */
    bool allowHardware(Tick now);

    /** Record a request outcome: did it end queue-full? */
    void onOutcome(Tick now, bool queue_full);

    State state() const { return st; }

    /// @name Statistics.
    /// @{
    std::uint64_t opens = 0;
    std::uint64_t closes = 0;
    std::uint64_t shed = 0;
    /// @}

  private:
    void trip(Tick now);

    Config cfg;
    State st = State::Closed;
    unsigned samples = 0;
    unsigned fulls = 0;
    Tick openedAt = 0;
    unsigned probesIssued = 0;
    unsigned probeOks = 0;
};

/** Per-tenant SLO accounting. */
struct TenantStats
{
    std::uint64_t arrivals = 0;  ///< offered by the generator
    std::uint64_t issued = 0;    ///< entered the serving ladder
    std::uint64_t dropped = 0;   ///< shed at arrival (outstanding cap)
    std::uint64_t hwAccepted = 0;
    std::uint64_t hwOk = 0;
    std::uint64_t hwErrors = 0;  ///< completed with an error status
    std::uint64_t retries = 0;   ///< ENQCMD Retry absorbed in backoff
    std::uint64_t giveUps = 0;   ///< bounded backoff exhausted
    std::uint64_t shedBreaker = 0; ///< breaker open: skipped hardware
    std::uint64_t fallbacks = 0; ///< served on the CPU path
    std::uint64_t failures = 0;  ///< terminal non-ok (fallback off)
    std::uint64_t goodputBytes = 0;
    Histogram latencyUs{1 << 12}; ///< arrival-to-done, microseconds

    /** Requests that reached a terminal outcome. */
    std::uint64_t
    completed() const
    {
        return hwOk + fallbacks + failures;
    }

    void merge(const TenantStats &o);
};

struct ServingConfig
{
    unsigned maxRetries = 4;      ///< bounded ENQCMD resubmissions
    Tick backoffBase = fromNs(250);
    Tick backoffCap = fromUs(4);
    double backoffJitter = 0.5;   ///< pause *= 1 - jitter * U[0,1)
    unsigned outstandingCap = 32; ///< per-tenant in-flight bound
    Tick watchdogTimeout = 0;     ///< 0 = no hang watchdog
    Tick watchdogGrace = fromUs(50);
    bool cpuFallback = true;      ///< degrade to SwKernels
    CircuitBreaker::Config breaker{};
    std::uint64_t seed = 1;       ///< jitter stream seed
};

/** One tenant's session on a ServingNode. */
class TenantSession
{
  public:
    TenantSession(Pasid p, Core &c, DsaDevice &d, WorkQueue &q,
                  std::function<WorkDescriptor(std::uint64_t)> make,
                  const ServingConfig &cfg)
        : pasid(p), core(&c), dev(&d), wq(&q),
          makeRequest(std::move(make)), breaker(cfg.breaker),
          jitter(cfg.seed ^ 0x73657276696e67ULL, p)
    {}

    const Pasid pasid;
    Core *core;
    DsaDevice *dev;
    WorkQueue *wq;

    /** Build the k-th request descriptor (pasid set by caller). */
    std::function<WorkDescriptor(std::uint64_t)> makeRequest;

    CircuitBreaker breaker;
    TenantStats stats;
    unsigned outstanding = 0;

    /** Counter-based backoff jitter stream (partition-invariant). */
    CounterRng jitter;
};

/**
 * The per-socket serving node: owns tenant sessions and drives the
 * open-loop request path against one socket's platform.
 */
class ServingNode
{
  public:
    /**
     * Registers this node's telemetry under a fresh serving<N>.
     * scope: ladder-event counters summed across tenants and the
     * p99/p999 request-latency histogram (DESIGN.md §15).
     */
    ServingNode(Simulation &s, Executor &e, ServingConfig c = {});

    TenantSession &
    addTenant(Pasid pasid, Core &core, DsaDevice &dev, WorkQueue &wq,
              std::function<WorkDescriptor(std::uint64_t)> make)
    {
        tenants.push_back(std::make_unique<TenantSession>(
            pasid, core, dev, wq, std::move(make), cfg));
        return *tenants.back();
    }

    /**
     * Open-loop driver for one tenant: @p requests arrivals paced by
     * @p arrivals, each spawning a detached serve() that arrives on
     * @p done (dropped arrivals arrive immediately). Offered load
     * never adapts to completions.
     */
    SimTask openLoop(TenantSession &t, ArrivalStream arrivals,
                     std::uint64_t requests, Latch &done);

    /** Serve one request synchronously (awaitable); for tests. */
    CoTask serve(TenantSession &t, std::uint64_t k);

    const std::vector<std::unique_ptr<TenantSession>> &
    sessions() const
    {
        return tenants;
    }

    /** Sum of all tenants' stats (latency histograms merged). */
    TenantStats aggregate() const;

    const ServingConfig &config() const { return cfg; }

    /// @name Watchdog statistics.
    /// @{
    std::uint64_t watchdogFires = 0;
    std::uint64_t watchdogForced = 0;
    /// @}

  private:
    SimTask serveDetached(TenantSession &t, std::uint64_t k,
                          Latch &done);
    CoTask awaitCompletion(TenantSession &t, CompletionRecord &cr);

    ServingConfig cfg;
    Simulation &sim;
    Executor &ex;
    std::vector<std::unique_ptr<TenantSession>> tenants;

    /** Fixed-bucket request-latency histogram (µs, exponential
     * bounds) in the telemetry registry; the exact-tail reservoir
     * stays in TenantStats::latencyUs. */
    stats::Histogram &latencyHist;
};

} // namespace dsasim::dml

#endif // DSASIM_DML_SERVING_HH
