#include "driver/cluster.hh"

#include <set>
#include <string>

#include "sim/logging.hh"

namespace dsasim
{

SocketCluster::SocketCluster(const ClusterConfig &c) : config(c)
{
    fatal_if(c.sockets == 0, "SocketCluster: zero sockets");
    doms.reserve(c.sockets);
    for (unsigned s = 0; s < c.sockets; ++s) {
        SocketDomain d;
        d.sim = std::make_unique<Simulation>();
        PlatformConfig pc = c.socket;
        pc.name += ".s" + std::to_string(s);
        d.plat = std::make_unique<Platform>(*d.sim, pc);
        set.addDomain(*d.sim, "socket " + std::to_string(s));
        doms.push_back(std::move(d));
    }
    if (c.sockets < 2)
        return;

    // Link topology: ordered pairs, ring or full mesh. A std::set
    // gives a deterministic build order (and dedupes the two-socket
    // ring, where s+1 and s-1 coincide).
    std::set<std::pair<unsigned, unsigned>> pairs;
    if (c.fullMesh) {
        for (unsigned a = 0; a < c.sockets; ++a)
            for (unsigned b = 0; b < c.sockets; ++b)
                if (a != b)
                    pairs.insert({a, b});
    } else {
        for (unsigned s = 0; s < c.sockets; ++s) {
            const unsigned nb = (s + 1) % c.sockets;
            pairs.insert({s, nb});
            pairs.insert({nb, s});
        }
    }

    // The channel's declared floor is the wire latency plus the
    // serialization time of the smallest block the protocol ships
    // (ClusterConfig::lookaheadBytes) — the lookahead the epochs run
    // on.
    const Tick ser = static_cast<Tick>(
        static_cast<double>(c.lookaheadBytes) * 1000.0 / c.upiGBps +
        0.5);
    const Tick floor = c.upiLatency + ser;

    for (const auto &[a, b] : pairs)
        chans[{a, b}] = &set.connect(a, b, floor,
                                     c.channelCapacity);
    for (const auto &[a, b] : pairs) {
        ports[{a, b}] = std::make_unique<RemotePort>(
            *doms[a].sim, *chans[{a, b}], c.upiGBps, c.upiLatency,
            "upi" + std::to_string(a) + "to" + std::to_string(b));
    }
    for (const auto &[a, b] : pairs) {
        RemotePort::RemoteEnd end;
        end.sim = doms[b].sim.get();
        end.node = &doms[b].plat->mem().node(0);
        end.returnWire = &ports[{b, a}]->wireLink();
        end.ack = chans[{b, a}];
        end.ackLatency =
            c.ackLatency ? c.ackLatency : c.upiLatency;
        ports[{a, b}]->attachRemote(end);
    }
}

RemotePort &
SocketCluster::port(unsigned src, unsigned dst)
{
    auto it = ports.find({src, dst});
    fatal_if(it == ports.end(),
             "SocketCluster::port: sockets %u and %u are not linked "
             "(ring topology links only neighbors; set "
             "ClusterConfig::fullMesh)",
             src, dst);
    return *it->second;
}

void
SocketCluster::enableStreamHash(bool on)
{
    for (SocketDomain &d : doms)
        d.sim->enableStreamHash(on);
}

void
SocketCluster::run(unsigned threads)
{
    set.run(threads);
}

bool
SocketCluster::quiescent() const
{
    for (const SocketDomain &d : doms)
        if (!d.sim->idle() || !d.plat->quiescent())
            return false;
    return set.idle();
}

SocketCluster::ClusterSnapshot
SocketCluster::capture()
{
    for (unsigned s = 0; s < doms.size(); ++s) {
        fatal_if(!doms[s].sim->idle() || !doms[s].plat->quiescent(),
                 "SocketCluster::capture: domain %u (%s) not "
                 "drained — %s",
                 s, set.domainName(s).c_str(),
                 doms[s].plat->drainHint().c_str());
    }
    fatal_if(!set.idle(),
             "SocketCluster::capture: undelivered cross-domain "
             "messages in flight — run() to completion first");
    ClusterSnapshot cs;
    cs.sockets.reserve(doms.size());
    for (SocketDomain &d : doms)
        cs.sockets.push_back(Snapshot::capture(*d.plat));
    cs.portWires.reserve(ports.size());
    for (const auto &[key, port] : ports)
        cs.portWires.push_back(port->wireLink().saveState());
    return cs;
}

void
SocketCluster::restore(const ClusterSnapshot &snap)
{
    fatal_if(snap.sockets.size() != doms.size(),
             "SocketCluster::restore: %zu domains here, %zu in "
             "snapshot",
             doms.size(), snap.sockets.size());
    fatal_if(snap.portWires.size() != ports.size(),
             "SocketCluster::restore: %zu ports here, %zu in "
             "snapshot (same link topology required)",
             ports.size(), snap.portWires.size());
    for (unsigned s = 0; s < doms.size(); ++s)
        snap.sockets[s].restoreInto(*doms[s].plat);
    std::size_t w = 0;
    for (auto &[key, port] : ports)
        port->wireLink().restoreState(snap.portWires[w++]);
}

stats::Registry
SocketCluster::foldedStats() const
{
    stats::Registry combined;
    for (unsigned s = 0; s < doms.size(); ++s) {
        // fold() writes into the local result registry only; the
        // source domains are read through const references.
        // simlint:allow(observer-purity)
        combined.fold(doms[s].sim->stats(),
                      "socket" + std::to_string(s) + ".");
    }
    return combined;
}

} // namespace dsasim
