/**
 * @file
 * SocketCluster: a multi-socket platform partitioned along its UPI
 * links into per-socket simulation domains.
 *
 * Each socket gets its own Simulation kernel and its own Platform
 * (cores, DSA devices, memory nodes, fault injector), registered as
 * one domain of a PartitionSet; sockets interact only through
 * RemotePorts riding PartitionChannels whose minimum latency is the
 * UPI hop — exactly the link-delimited decomposition conservative
 * parallel DES needs (DESIGN.md §11). The decomposition is fixed by
 * `ClusterConfig::sockets`, never by the worker-thread count, so a
 * cluster's event streams (and stream hashes) are identical for any
 * DSASIM_PARTITIONS.
 *
 * Snapshots compose per domain: capture() refuses with a hint naming
 * *which* domain's calendar or work queue still holds work, and a
 * ClusterSnapshot restores into any same-shaped cluster.
 */

#ifndef DSASIM_DRIVER_CLUSTER_HH
#define DSASIM_DRIVER_CLUSTER_HH

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "driver/platform.hh"
#include "driver/snapshot.hh"
#include "mem/remote_port.hh"
#include "sim/partition.hh"

namespace dsasim
{

struct ClusterConfig
{
    unsigned sockets = 4;

    /** Per-socket platform shape. Set socket.dsaTopology so freshly
     * built clusters (including snapshot-restore targets) come up
     * with configured devices. */
    PlatformConfig socket;

    /** UPI hop between adjacent sockets; the latency is the channel
     * lookahead floor. */
    double upiGBps = 60.0;
    Tick upiLatency = fromNs(60);

    /** false: bidirectional ring (socket s <-> s+1 mod n);
     * true: every ordered socket pair gets a port. */
    bool fullMesh = false;

    std::size_t channelCapacity = PartitionSet::defaultCapacity;

    /**
     * Raise every channel's latency floor by the serialization time
     * of this many bytes at upiGBps. Protocols that ship large
     * blocks can buy epochs long enough to amortize the barrier cost
     * (RemotePort defers smaller sends into the floor — send-side
     * aggregation). 0 = bare wire latency.
     */
    std::uint64_t lookaheadBytes = 0;

    /** Completion-notification latency for acks (0 = upiLatency);
     * clamped up to the channel floor. */
    Tick ackLatency = 0;
};

class SocketCluster
{
  public:
    explicit SocketCluster(const ClusterConfig &cfg);

    unsigned socketCount() const
    {
        return static_cast<unsigned>(doms.size());
    }
    const ClusterConfig &cfg() const { return config; }

    Simulation &domainSim(unsigned s) { return *doms.at(s).sim; }
    Platform &plat(unsigned s) { return *doms.at(s).plat; }

    /** The src->dst UPI port; fatal if the pair is not linked. */
    RemotePort &port(unsigned src, unsigned dst);
    bool linked(unsigned src, unsigned dst) const
    {
        return ports.count({src, dst}) != 0;
    }

    PartitionSet &partitions() { return set; }

    /** Fold (when, seq) of every executed event, per domain. */
    void enableStreamHash(bool on);

    /** Run all domains to completion on @p threads workers
     * (0 = $DSASIM_PARTITIONS). Simulated behavior is identical for
     * any thread count. */
    void run(unsigned threads = 0);

    /** Cross-domain fingerprint (PartitionSet::combinedStreamHash). */
    std::uint64_t streamHash() const
    {
        return set.combinedStreamHash();
    }
    std::uint64_t eventsExecuted() const
    {
        return set.eventsExecuted();
    }
    Tick endTick() const { return set.maxNow(); }

    /** Every domain idle and quiescent, every channel empty. */
    bool quiescent() const;

    /**
     * Per-domain checkpoint of a fully drained cluster. Fatal with a
     * domain-naming drain hint ("domain 2 (socket 2): dsa0.wq1 holds
     * 3 descriptor(s)") otherwise.
     */
    struct ClusterSnapshot
    {
        std::vector<Snapshot> sockets;
        /** RemotePort wire state in (src,dst) port order — the UPI
         * wires live in the cluster, outside any one platform, but
         * their readyAt horizon is simulated state all the same. */
        std::vector<LinkResource::State> portWires;
    };

    ClusterSnapshot capture();

    /**
     * Rewind this cluster to @p snap in place. Shape must match and
     * this cluster's devices must carry the same topology the
     * captured ones did (build both from the same ClusterConfig).
     */
    void restore(const ClusterSnapshot &snap);

    /**
     * Fold every domain's telemetry registry into one combined view
     * with "socket<d>." name prefixes, in domain-id order — the
     * cluster-wide export is deterministic for any worker-thread
     * count (DESIGN.md §15). Call after run() returns (the fold
     * evaluates supplier-backed metrics, so domains must be at rest).
     */
    stats::Registry foldedStats() const; // simlint:observer

  private:
    struct SocketDomain
    {
        std::unique_ptr<Simulation> sim;
        std::unique_ptr<Platform> plat;
    };

    ClusterConfig config;
    std::vector<SocketDomain> doms;
    PartitionSet set;
    /** Ordered (src,dst) -> channel/port; std::map iteration keeps
     * construction and teardown deterministic. */
    std::map<std::pair<unsigned, unsigned>, PartitionChannel *> chans;
    std::map<std::pair<unsigned, unsigned>,
             std::unique_ptr<RemotePort>>
        ports;
};

} // namespace dsasim

#endif // DSASIM_DRIVER_CLUSTER_HH
