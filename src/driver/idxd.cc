#include "driver/idxd.hh"

#include "sim/logging.hh"

namespace dsasim::idxd
{

std::vector<std::string>
Driver::list()
{
    std::vector<std::string> lines;
    for (std::size_t i = 0; i < platform.dsaCount(); ++i) {
        DsaDevice &dev = platform.dsa(i);
        lines.push_back(strfmt(
            "dsa%zu: %s groups=%zu wqs=%zu engines=%zu",
            i, dev.enabled() ? "enabled" : "disabled",
            dev.groupCount(), dev.wqCount(), dev.engineCount()));
        for (std::size_t w = 0; w < dev.wqCount(); ++w) {
            WorkQueue &wq = dev.wq(w);
            lines.push_back(strfmt(
                "  wq%zu.%d: mode=%s size=%u priority=%u group=%d",
                i, wq.id,
                wq.mode == WorkQueue::Mode::Dedicated ? "dedicated"
                                                      : "shared",
                wq.size, wq.priority,
                wq.group ? wq.group->id : -1));
        }
    }
    return lines;
}

} // namespace dsasim::idxd
