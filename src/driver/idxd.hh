/**
 * @file
 * IDXD-style control path (Fig. 1b): discovery, configuration and
 * enabling of DSA instances, mirroring the libaccel-config flow —
 * configure groups, bind WQs (mode/size/priority/name) and engines,
 * then enable the device. Configuration errors are user errors and
 * fail fast with a diagnostic, like `accel-config config-wq` does.
 */

#ifndef DSASIM_DRIVER_IDXD_HH
#define DSASIM_DRIVER_IDXD_HH

#include <string>
#include <vector>

#include "driver/platform.hh"

namespace dsasim::idxd
{

struct WqConfig
{
    WorkQueue::Mode mode = WorkQueue::Mode::Dedicated;
    unsigned size = 16;
    unsigned priority = 0;
    /** SWQ ENQCMD admission limit; 0 = the full WQ size. */
    unsigned threshold = 0;
    std::string name = "wq";
};

/**
 * Driver: the kernel-side view of the platform's accelerator
 * inventory plus the configuration entry points.
 */
class Driver
{
  public:
    explicit Driver(Platform &p) : platform(p) {}

    std::size_t deviceCount() const { return platform.dsaCount(); }
    DsaDevice &device(std::size_t i) { return platform.dsa(i); }

    /** List device state lines, like `accel-config list`. */
    std::vector<std::string> list();

    Group &
    configGroup(DsaDevice &dev)
    {
        return dev.addGroup();
    }

    WorkQueue &
    configWq(DsaDevice &dev, Group &grp, const WqConfig &cfg)
    {
        return dev.addWorkQueue(grp, cfg.mode, cfg.size,
                                cfg.priority, cfg.threshold);
    }

    Engine &
    configEngine(DsaDevice &dev, Group &grp)
    {
        return dev.addEngine(grp);
    }

    void
    configGroupReadBuffers(DsaDevice &dev, Group &grp, unsigned n)
    {
        dev.setGroupReadBuffers(grp, n);
    }

    void
    enableDevice(DsaDevice &dev)
    {
        dev.enable();
    }

  private:
    Platform &platform;
};

} // namespace dsasim::idxd

#endif // DSASIM_DRIVER_IDXD_HH
