/**
 * @file
 * PCM-style performance telemetry (§5: "DSA performance telemetry
 * functionalities are provided by the PCM library. By reading the
 * hardware performance counters, PCM is able to observe the
 * inbound-outbound traffic and request count on each DSA instance").
 *
 * Since DESIGN.md §15 the authoritative counters live in the
 * simulation's stats::Registry under stable dotted names
 * (dsa<N>.descriptors_submitted, dsa<N>.eng<E>.bytes_read, ...).
 * The Monitor is a *view* over that registry: sample() resolves the
 * device's metric names and folds the per-engine counters, the way
 * `pcm-accel` reads MMIO counter registers and sums per-engine
 * event counts. DsaCounters and format() keep their original shape
 * (and byte-identical output) for existing callers; new code should
 * prefer the registry / stats::Sampler directly.
 */

#ifndef DSASIM_DRIVER_PCM_HH
#define DSASIM_DRIVER_PCM_HH

#include <string>
#include <vector>

#include "driver/platform.hh"
#include "sim/logging.hh"

namespace dsasim::pcm
{

/**
 * One DSA instance's counters at a point in simulated time — a
 * point-in-time view of the dsa<N>.* registry names.
 */
struct DsaCounters
{
    int deviceId = 0;
    Tick when = 0;
    std::uint64_t descriptorsSubmitted = 0;
    std::uint64_t descriptorsRetried = 0;
    std::uint64_t descriptorsProcessed = 0;
    std::uint64_t inboundBytes = 0;  ///< device reads (memory -> DSA)
    std::uint64_t outboundBytes = 0; ///< device writes (DSA -> memory)
    std::uint64_t pageFaults = 0;
    std::uint64_t atcMisses = 0;
};

inline DsaCounters
operator-(const DsaCounters &a, const DsaCounters &b)
{
    DsaCounters d = a;
    d.descriptorsSubmitted -= b.descriptorsSubmitted;
    d.descriptorsRetried -= b.descriptorsRetried;
    d.descriptorsProcessed -= b.descriptorsProcessed;
    d.inboundBytes -= b.inboundBytes;
    d.outboundBytes -= b.outboundBytes;
    d.pageFaults -= b.pageFaults;
    d.atcMisses -= b.atcMisses;
    return d;
}

class Monitor
{
  public:
    explicit Monitor(Platform &p) : platform(p) {}

    /** Snapshot one device's counters from the registry. */
    // simlint:observer
    DsaCounters
    sample(std::size_t device_idx) const
    {
        const Platform &plat = platform;
        const DsaDevice &dev = plat.dsa(device_idx);
        const stats::Registry &reg = plat.sim().stats();
        const std::string stem =
            "dsa" + std::to_string(dev.deviceId()) + ".";
        DsaCounters c;
        c.deviceId = dev.deviceId();
        c.when = plat.sim().now();
        c.descriptorsSubmitted =
            reg.counterValue(stem + "descriptors_submitted");
        c.descriptorsRetried =
            reg.counterValue(stem + "descriptors_retried");
        c.descriptorsProcessed = dev.descriptorsProcessed();
        for (std::size_t e = 0; e < dev.engineCount(); ++e) {
            const std::string eng =
                stem + "eng" +
                std::to_string(dev.engine(e).engineId()) + ".";
            c.inboundBytes += reg.counterValue(eng + "bytes_read");
            c.outboundBytes += reg.counterValue(eng + "bytes_written");
            c.pageFaults += reg.counterValue(eng + "page_faults");
            c.atcMisses += reg.counterValue(eng + "atc_misses");
        }
        return c;
    }

    /** Snapshot every device. */
    // simlint:observer
    std::vector<DsaCounters>
    sampleAll() const
    {
        std::vector<DsaCounters> out;
        for (std::size_t i = 0; i < platform.dsaCount(); ++i)
            out.push_back(sample(i));
        return out;
    }

    /** Render an interval delta like a `pcm-accel` line. */
    // simlint:observer
    static std::string
    format(const DsaCounters &delta, Tick interval)
    {
        double secs = toSec(interval);
        if (secs <= 0)
            secs = 1e-12;
        return strfmt(
            "dsa%d: in %.2f GB/s out %.2f GB/s reqs %.2fM/s "
            "retries %llu faults %llu atc-misses %llu",
            delta.deviceId,
            static_cast<double>(delta.inboundBytes) / 1e9 / secs,
            static_cast<double>(delta.outboundBytes) / 1e9 / secs,
            static_cast<double>(delta.descriptorsProcessed) / 1e6 /
                secs,
            static_cast<unsigned long long>(delta.descriptorsRetried),
            static_cast<unsigned long long>(delta.pageFaults),
            static_cast<unsigned long long>(delta.atcMisses));
    }

  private:
    Platform &platform;
};

} // namespace dsasim::pcm

#endif // DSASIM_DRIVER_PCM_HH
