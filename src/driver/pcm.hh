/**
 * @file
 * PCM-style performance telemetry (§5: "DSA performance telemetry
 * functionalities are provided by the PCM library. By reading the
 * hardware performance counters, PCM is able to observe the
 * inbound-outbound traffic and request count on each DSA instance").
 *
 * Counters here come from the device model's own accounting; the
 * Monitor provides point-in-time snapshots and interval deltas, the
 * way `pcm-accel` samples MMIO counter registers.
 */

#ifndef DSASIM_DRIVER_PCM_HH
#define DSASIM_DRIVER_PCM_HH

#include <string>
#include <vector>

#include "driver/platform.hh"
#include "sim/logging.hh"

namespace dsasim::pcm
{

/** One DSA instance's counters at a point in simulated time. */
struct DsaCounters
{
    int deviceId = 0;
    Tick when = 0;
    std::uint64_t descriptorsSubmitted = 0;
    std::uint64_t descriptorsRetried = 0;
    std::uint64_t descriptorsProcessed = 0;
    std::uint64_t inboundBytes = 0;  ///< device reads (memory -> DSA)
    std::uint64_t outboundBytes = 0; ///< device writes (DSA -> memory)
    std::uint64_t pageFaults = 0;
    std::uint64_t atcMisses = 0;
};

inline DsaCounters
operator-(const DsaCounters &a, const DsaCounters &b)
{
    DsaCounters d = a;
    d.descriptorsSubmitted -= b.descriptorsSubmitted;
    d.descriptorsRetried -= b.descriptorsRetried;
    d.descriptorsProcessed -= b.descriptorsProcessed;
    d.inboundBytes -= b.inboundBytes;
    d.outboundBytes -= b.outboundBytes;
    d.pageFaults -= b.pageFaults;
    d.atcMisses -= b.atcMisses;
    return d;
}

class Monitor
{
  public:
    explicit Monitor(Platform &p) : platform(p) {}

    /** Snapshot one device's counters. */
    // simlint:observer
    DsaCounters
    sample(std::size_t device_idx) const
    {
        const Platform &plat = platform;
        const DsaDevice &dev = plat.dsa(device_idx);
        DsaCounters c;
        c.deviceId = dev.deviceId();
        c.when = plat.sim().now();
        c.descriptorsSubmitted = dev.descriptorsSubmitted;
        c.descriptorsRetried = dev.descriptorsRetried;
        c.descriptorsProcessed = dev.descriptorsProcessed();
        for (std::size_t e = 0; e < dev.engineCount(); ++e) {
            const Engine &eng = dev.engine(e);
            c.inboundBytes += eng.bytesRead;
            c.outboundBytes += eng.bytesWritten;
            c.pageFaults += eng.pageFaults;
            c.atcMisses += eng.atcMisses;
        }
        return c;
    }

    /** Snapshot every device. */
    // simlint:observer
    std::vector<DsaCounters>
    sampleAll() const
    {
        std::vector<DsaCounters> out;
        for (std::size_t i = 0; i < platform.dsaCount(); ++i)
            out.push_back(sample(i));
        return out;
    }

    /** Render an interval delta like a `pcm-accel` line. */
    // simlint:observer
    static std::string
    format(const DsaCounters &delta, Tick interval)
    {
        double secs = toSec(interval);
        if (secs <= 0)
            secs = 1e-12;
        return strfmt(
            "dsa%d: in %.2f GB/s out %.2f GB/s reqs %.2fM/s "
            "retries %llu faults %llu atc-misses %llu",
            delta.deviceId,
            static_cast<double>(delta.inboundBytes) / 1e9 / secs,
            static_cast<double>(delta.outboundBytes) / 1e9 / secs,
            static_cast<double>(delta.descriptorsProcessed) / 1e6 /
                secs,
            static_cast<unsigned long long>(delta.descriptorsRetried),
            static_cast<unsigned long long>(delta.pageFaults),
            static_cast<unsigned long long>(delta.atcMisses));
    }

  private:
    Platform &platform;
};

} // namespace dsasim::pcm

#endif // DSASIM_DRIVER_PCM_HH
