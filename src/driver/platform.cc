#include "driver/platform.hh"

#include <atomic>

#include "sim/logging.hh"

namespace dsasim
{

namespace
{

MemSystemConfig
sprMemory()
{
    MemSystemConfig mem;

    MemNodeConfig local;
    local.kind = MemKind::DramLocal;
    local.socket = 0;
    local.capacityBytes = 64ull << 30;
    local.readGBps = 220.0;  // 8x DDR5-4800, sustained read
    local.writeGBps = 95.0;
    local.readLatency = fromNs(95);
    local.writeLatency = fromNs(95);

    MemNodeConfig remote = local;
    remote.socket = 1;

    MemNodeConfig cxl;
    cxl.kind = MemKind::Cxl;
    cxl.socket = 0;
    cxl.capacityBytes = 16ull << 30; // Agilex-I dev kit, 16 GB DDR4
    cxl.readGBps = 22.0;
    cxl.writeGBps = 13.0; // writes notably slower than reads (§4.2)
    cxl.readLatency = fromNs(210);
    cxl.writeLatency = fromNs(330);

    mem.nodes = {local, remote, cxl};
    mem.llc.sizeBytes = 105ull << 20;
    mem.llc.ways = 15;
    mem.llc.ddioWays = 2;
    mem.upiGBps = 60.0;
    mem.upiLatency = fromNs(60);
    mem.llcGBps = 400.0;
    mem.llcLatency = fromNs(33);
    return mem;
}

MemSystemConfig
icxMemory()
{
    MemSystemConfig mem = sprMemory();
    // 6x DDR4-3200 and the smaller Ice Lake LLC.
    mem.nodes[0].readGBps = 140.0;
    mem.nodes[0].writeGBps = 110.0;
    mem.nodes[1] = mem.nodes[0];
    mem.nodes[1].socket = 1;
    // No CXL support before SPR; keep the node out of the platform.
    mem.nodes.pop_back();
    mem.llc.sizeBytes = 57ull << 20;
    mem.llc.ways = 12;
    mem.llc.ddioWays = 2;
    return mem;
}

} // namespace

PlatformConfig
PlatformConfig::spr()
{
    PlatformConfig cfg;
    cfg.name = "SPR";
    cfg.numCores = 56;
    cfg.numDsaDevices = 4;
    cfg.numCbdmaDevices = 0;
    cfg.mem = sprMemory();
    return cfg;
}

PlatformConfig
PlatformConfig::icx()
{
    PlatformConfig cfg;
    cfg.name = "ICX";
    cfg.numCores = 40;
    cfg.numDsaDevices = 0;
    cfg.numCbdmaDevices = 1;
    cfg.mem = icxMemory();
    // Ice Lake cores stream DDR4 a bit slower than SPR streams DDR5.
    cfg.cpu.readDramLocal = fromNs(4.1);
    cfg.cpu.writeDramLocal = fromNs(3.6);
    cfg.cpu.readDramRemote = fromNs(5.8);
    cfg.cpu.writeDramRemote = fromNs(5.0);
    return cfg;
}

Platform::Platform(Simulation &s, const PlatformConfig &cfg)
    : simulation(s), config(cfg)
{
    memSys = std::make_unique<MemSystem>(s, cfg.mem);
    swKernels = std::make_unique<SwKernels>(*memSys);
    for (int c = 0; c < cfg.numCores; ++c)
        cores_.push_back(std::make_unique<Core>(s, cfg.cpu, c, 0));
    for (unsigned d = 0; d < cfg.numDsaDevices; ++d) {
        dsas_.push_back(std::make_unique<DsaDevice>(
            s, *memSys, cfg.dsa, static_cast<int>(d), 0));
    }
    for (unsigned d = 0; d < cfg.numCbdmaDevices; ++d) {
        cbdmas_.push_back(std::make_unique<CbdmaDevice>(
            s, *memSys, cfg.cbdma, static_cast<int>(d), 0));
    }
    if (!cfg.dsaTopology.empty()) {
        for (auto &d : dsas_)
            cfg.dsaTopology.apply(*d);
    }
    // Opt-in chaos: DSASIM_FAULTS seeds a platform-wide injector.
    setFaultInjector(FaultInjector::fromEnv());

    // Opt-in telemetry: DSASIM_STATS installs the deterministic
    // registry poller. One hook per calendar — in multi-platform
    // setups (rare outside tests) the first platform samples.
    if (stats::samplingEnabled() && !s.hasSampleHook()) {
        static std::atomic<unsigned> instance{0};
        const unsigned n = instance.fetch_add(1);
        statsExportStem =
            stats::exportPrefix() + cfg.name +
            (n == 0 ? std::string{} : "-" + std::to_string(n));
        statsSampler = std::make_unique<stats::Sampler>(
            s, stats::samplePeriodTicks());
    }
}

Platform::~Platform()
{
    if (statsSampler && statsSampler->sampleCount() > 0) {
        statsSampler->writeCsv(statsExportStem + ".csv");
        statsSampler->writePrometheusFile(statsExportStem + ".prom");
    }
}

bool
Platform::quiescent() const
{
    for (const auto &d : dsas_)
        if (!d->quiescent())
            return false;
    for (const auto &c : cbdmas_)
        if (!c->quiescent())
            return false;
    return true;
}

std::string
Platform::drainHint()
{
    std::string out;
    char buf[96];
    auto add = [&out](const char *s) {
        if (!out.empty())
            out += "; ";
        out += s;
    };
    if (!simulation.idle()) {
        std::snprintf(
            buf, sizeof(buf), "calendar holds %llu event(s)",
            static_cast<unsigned long long>(
                simulation.pendingEvents()));
        add(buf);
    }
    for (std::size_t i = 0; i < dsas_.size(); ++i) {
        DsaDevice &d = *dsas_[i];
        for (std::size_t w = 0; w < d.wqCount(); ++w) {
            if (std::size_t occ = d.wq(w).occupancy()) {
                std::snprintf(buf, sizeof(buf),
                              "dsa%zu.wq%zu holds %zu descriptor(s)",
                              i, w, occ);
                add(buf);
            }
        }
        if (!d.quiescent()) {
            std::snprintf(buf, sizeof(buf),
                          "dsa%zu has in-flight engine work", i);
            add(buf);
        }
    }
    for (std::size_t i = 0; i < cbdmas_.size(); ++i) {
        if (!cbdmas_[i]->quiescent()) {
            std::snprintf(buf, sizeof(buf),
                          "cbdma%zu has in-flight work", i);
            add(buf);
        }
    }
    if (out.empty())
        out = "platform is drained";
    return out;
}

CoTask
Platform::quiesce()
{
    // The fast path must not disturb the event stream: a platform
    // that is already drained completes synchronously without ever
    // touching the calendar.
    while (!quiescent())
        co_await simulation.delay(fromNs(500));
}

void
Platform::setFaultInjector(std::unique_ptr<FaultInjector> fi)
{
    faultInjector = std::move(fi);
    FaultInjector *p = faultInjector.get();
    if (p)
        p->attachClock(simulation);
    for (auto &d : dsas_)
        d->setFaultInjector(p);
    memSys->iommu().setFaultInjector(p);
}

void
Platform::configureBasic(DsaDevice &dev, unsigned wq_size,
                         unsigned engines, WorkQueue::Mode mode)
{
    DsaTopology::basic(wq_size, engines, mode).apply(dev);
}

void
Platform::configureFull(DsaDevice &dev)
{
    DsaTopology::full().apply(dev);
}

void
Platform::dumpStats(std::FILE *out) const
{
    std::fprintf(out, "---------- dsasim stats @ %.3f us ----------\n",
                 toUs(simulation.now()));
    for (const auto &c : cores_) {
        if (c->busyTicks() == 0 && c->umwaitTicks() == 0 &&
            c->spinTicks() == 0)
            continue;
        std::fprintf(out,
                     "core%-3d busy %10.2f us  umwait %10.2f us  "
                     "spin %8.2f us\n",
                     c->id(), toUs(c->busyTicks()),
                     toUs(c->umwaitTicks()), toUs(c->spinTicks()));
    }
    for (const auto &d : dsas_) {
        if (!d->enabled())
            continue;
        std::fprintf(out,
                     "dsa%-4d submitted %8llu retried %6llu "
                     "processed %8llu rd %10.2f MB wr %10.2f MB\n",
                     d->deviceId(),
                     static_cast<unsigned long long>(
                         d->descriptorsSubmitted()),
                     static_cast<unsigned long long>(
                         d->descriptorsRetried()),
                     static_cast<unsigned long long>(
                         d->descriptorsProcessed()),
                     static_cast<double>(
                         d->fabricRead().bytesServed()) /
                         1e6,
                     static_cast<double>(
                         d->fabricWrite().bytesServed()) /
                         1e6);
    }
    for (std::size_t i = 0; i < memSys->nodeCount(); ++i) {
        const MemNode &n = memSys->node(static_cast<int>(i));
        std::fprintf(out,
                     "node%-3zu (%s) rd %10.2f MB (%4.1f%% busy)  "
                     "wr %10.2f MB (%4.1f%% busy)\n",
                     i, memKindName(n.config.kind),
                     static_cast<double>(n.readLink.bytesServed()) /
                         1e6,
                     100.0 * n.readLink.utilization(),
                     static_cast<double>(n.writeLink.bytesServed()) /
                         1e6,
                     100.0 * n.writeLink.utilization());
    }
    std::fprintf(out, "events executed: %llu\n",
                 static_cast<unsigned long long>(
                     simulation.eventsExecuted()));
}

} // namespace dsasim
