/**
 * @file
 * Platform presets and assembly.
 *
 * PlatformConfig bundles every calibration constant; the two presets
 * mirror Table 2 of the paper:
 *
 *   | Generation      | Ice Lake (ICX)    | Sapphire Rapids (SPR) |
 *   | cores           | 40                | 56                    |
 *   | shared LLC      | 57 MB             | 105 MB                |
 *   | memory          | 6x DDR4           | 8x DDR5               |
 *   | DMA engine      | CBDMA, 16 chan    | DSA, 8 WQs, 4 PEs     |
 *
 * Platform instantiates the memory system, cores, DSA instances (SPR
 * exposes up to 4 per socket) and the CBDMA baseline.
 */

#ifndef DSASIM_DRIVER_PLATFORM_HH
#define DSASIM_DRIVER_PLATFORM_HH

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "cbdma/cbdma.hh"
#include "cpu/core.hh"
#include "cpu/kernels.hh"
#include "dsa/device.hh"
#include "dsa/topology.hh"
#include "mem/mem_system.hh"
#include "sim/task.hh"

namespace dsasim
{

struct PlatformConfig
{
    std::string name;
    int numCores = 56;
    unsigned numDsaDevices = 4;
    unsigned numCbdmaDevices = 0;

    MemSystemConfig mem;
    CpuParams cpu;
    DsaParams dsa;
    CbdmaParams cbdma;

    /**
     * Group/WQ/engine layout applied to every DSA device at platform
     * construction. Leave empty() to build devices unconfigured and
     * wire them by hand (DsaTopology::apply per device).
     */
    DsaTopology dsaTopology;

    bool operator==(const PlatformConfig &) const = default;

    /** 4th Gen Xeon Scalable (Sapphire Rapids), the DSA platform. */
    static PlatformConfig spr();
    /** 3rd Gen Xeon Scalable (Ice Lake), the CBDMA platform. */
    static PlatformConfig icx();
};

class Platform
{
  public:
    /**
     * When $DSASIM_STATS is set (sim/stats.hh knobs) the platform
     * installs a stats::Sampler on @p s at construction and writes
     * the recorded series to <prefix><name>.csv plus the final
     * snapshot to <prefix><name>.prom at destruction. Only the first
     * platform on a simulation samples (one hook per calendar).
     */
    Platform(Simulation &s, const PlatformConfig &cfg);
    ~Platform();

    Simulation &sim() { return simulation; }
    const Simulation &sim() const { return simulation; }
    const PlatformConfig &cfg() const { return config; }

    MemSystem &mem() { return *memSys; }
    SwKernels &kernels() { return *swKernels; }

    Core &core(std::size_t i) { return *cores_.at(i); }
    std::size_t coreCount() const { return cores_.size(); }

    DsaDevice &dsa(std::size_t i) { return *dsas_.at(i); }
    const DsaDevice &dsa(std::size_t i) const { return *dsas_.at(i); }
    std::size_t dsaCount() const { return dsas_.size(); }

    /**
     * The platform-wide fault injector, built from $DSASIM_FAULTS /
     * $DSASIM_FAULT_SEED and wired to every DSA device and the IOMMU;
     * nullptr when the variable is unset (fault-free runs).
     */
    FaultInjector *injector() { return faultInjector.get(); }

    /** Install (or clear) an injector programmatically. */
    void setFaultInjector(std::unique_ptr<FaultInjector> fi);

    CbdmaDevice &cbdma(std::size_t i) { return *cbdmas_.at(i); }
    std::size_t cbdmaCount() const { return cbdmas_.size(); }

    /**
     * No queued or in-flight descriptor on any DSA or CBDMA device.
     * Together with Simulation::idle() this is the precondition for
     * Snapshot::capture.
     */
    bool quiescent() const;

    /**
     * Awaitable: let the devices drain until quiescent(). Completes
     * immediately — scheduling zero events — when nothing is in
     * flight; otherwise polls on a fixed cadence while the engines
     * work the queues down. Callers must have stopped submitting.
     */
    CoTask quiesce();

    /**
     * Human-readable enumeration of everything still holding work:
     * the calendar's pending-event count, each non-empty work queue,
     * devices with in-flight engine work. Snapshot::capture puts this
     * in its refusal message so a failed capture names the culprit
     * (per domain, once calendars are per-socket — see
     * SocketCluster::capture).
     */
    std::string drainHint();

    /**
     * @deprecated Thin wrapper over
     * DsaTopology::basic(wq_size, engines, mode).apply(dev); prefer
     * PlatformConfig::dsaTopology or DsaTopology directly.
     */
    static void configureBasic(DsaDevice &dev, unsigned wq_size = 32,
                               unsigned engines = 1,
                               WorkQueue::Mode mode =
                                   WorkQueue::Mode::Dedicated);

    /** @deprecated Thin wrapper over DsaTopology::full().apply(dev). */
    static void configureFull(DsaDevice &dev);

    /**
     * Dump a gem5-style end-of-run statistics summary: per-core
     * cycle accounts, per-device engine/traffic counters, and
     * memory-link utilization.
     */
    void dumpStats(std::FILE *out) const;

  private:
    Simulation &simulation;
    PlatformConfig config;
    std::unique_ptr<MemSystem> memSys;
    std::unique_ptr<SwKernels> swKernels;
    std::vector<std::unique_ptr<Core>> cores_;
    std::vector<std::unique_ptr<DsaDevice>> dsas_;
    std::vector<std::unique_ptr<CbdmaDevice>> cbdmas_;
    std::unique_ptr<FaultInjector> faultInjector;

    /** Export basename (disambiguated across instances) and the
     * deterministic-cadence registry poller; null when $DSASIM_STATS
     * is off or another platform already samples this simulation. */
    std::string statsExportStem;
    std::unique_ptr<stats::Sampler> statsSampler;
};

} // namespace dsasim

#endif // DSASIM_DRIVER_PLATFORM_HH
