#include "driver/snapshot.hh"

#include "sim/logging.hh"

namespace dsasim
{

Snapshot
Snapshot::capture(Platform &p)
{
    Snapshot s;
    s.config = p.cfg();
    // Devices are rebuilt bare and configured from the per-device
    // captures below, so a platform whose devices were hand-wired
    // (differently per device) round-trips exactly.
    s.config.dsaTopology = DsaTopology{};

    // Refuse with a hint that names exactly what still holds work
    // (which queue, which device, how many calendar events) before
    // any component state is touched. The per-component saveState
    // fatals below remain as backstops.
    fatal_if(!p.sim().idle() || !p.quiescent(),
             "Snapshot::capture: work still pending — %s",
             p.drainHint().c_str());
    s.simState = p.sim().saveState();
    s.memState = p.mem().saveState();
    s.coreStates.reserve(p.coreCount());
    for (std::size_t i = 0; i < p.coreCount(); ++i)
        s.coreStates.push_back(p.core(i).saveState());
    s.topologies.reserve(p.dsaCount());
    s.dsaStates.reserve(p.dsaCount());
    for (std::size_t i = 0; i < p.dsaCount(); ++i) {
        s.topologies.push_back(DsaTopology::of(p.dsa(i)));
        s.dsaStates.push_back(p.dsa(i).saveState());
    }
    s.cbdmaStates.reserve(p.cbdmaCount());
    for (std::size_t i = 0; i < p.cbdmaCount(); ++i)
        s.cbdmaStates.push_back(p.cbdma(i).saveState());
    if (FaultInjector *fi = p.injector()) {
        s.hasInjector = true;
        s.injectorState = fi->saveState();
    }
    return s;
}

std::unique_ptr<Snapshot::Forked>
Snapshot::fork() const
{
    auto f = std::make_unique<Forked>();
    // Re-anchor the event kernel before any component exists: every
    // construction-time now() read then already sees the captured
    // tick, and events scheduled by the first post-fork task carry
    // sequence numbers continuing the captured stream.
    f->sim.restoreState(simState);
    f->platform = std::make_unique<Platform>(f->sim, config);
    for (std::size_t i = 0; i < topologies.size(); ++i)
        topologies[i].apply(f->platform->dsa(i));
    restoreInto(*f->platform);
    return f;
}

void
Snapshot::restoreInto(Platform &p) const
{
    fatal_if(p.coreCount() != coreStates.size() ||
                 p.dsaCount() != dsaStates.size() ||
                 p.cbdmaCount() != cbdmaStates.size(),
             "Snapshot::restoreInto: platform shape mismatch "
             "(%zu/%zu/%zu cores/DSAs/CBDMAs here, %zu/%zu/%zu in "
             "snapshot)",
             p.coreCount(), p.dsaCount(), p.cbdmaCount(),
             coreStates.size(), dsaStates.size(),
             cbdmaStates.size());
    p.sim().restoreState(simState);
    p.mem().restoreState(memState);
    for (std::size_t i = 0; i < coreStates.size(); ++i)
        p.core(i).restoreState(coreStates[i]);
    for (std::size_t i = 0; i < dsaStates.size(); ++i)
        p.dsa(i).restoreState(dsaStates[i]);
    for (std::size_t i = 0; i < cbdmaStates.size(); ++i)
        p.cbdma(i).restoreState(cbdmaStates[i]);
    if (hasInjector) {
        // Replace whatever DSASIM_FAULTS seeded at construction with
        // the captured injector mid-stream: same rules, same RNG
        // position, same every=/max= bookkeeping.
        auto fi = std::make_unique<FaultInjector>();
        fi->restoreState(injectorState);
        p.setFaultInjector(std::move(fi));
    } else {
        p.setFaultInjector(nullptr);
    }
}

} // namespace dsasim
