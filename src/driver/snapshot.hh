/**
 * @file
 * Snapshot: a checkpoint of a quiesced Platform that can be forked
 * into any number of independent continuations.
 *
 * Capture is O(dirty), not O(memory): PhysicalMemory's state is a map
 * of shared_ptr-owned chunks, so a snapshot shares every chunk with
 * the source platform and copy-on-write clones only the chunks a run
 * writes afterwards (see mem/phys_mem.hh).
 *
 * Coroutine frames cannot be checkpointed, which dictates the whole
 * contract (DESIGN.md §10):
 *
 *  - capture() requires a *quiesced* platform: an idle event calendar
 *    (Simulation::saveState fatals otherwise) and no queued or
 *    in-flight descriptor on any device (the device saveState fatals
 *    otherwise). Run the simulation until idle — typically after
 *    `co_await platform.quiesce()` — before capturing.
 *  - fork() rebuilds a fresh Platform from the captured PlatformConfig
 *    and per-device DsaTopology, then restores every component's
 *    plain-data state on top. The rebuilt engines park on their empty
 *    group arbiters exactly as the quiesced originals did, so a
 *    forked run's event stream is bit-identical to simply continuing
 *    the source.
 *  - Workload coroutines are not platform state. A forked run
 *    re-issues its measurement phase from scratch (bench/common.hh
 *    Scenario::measure).
 */

#ifndef DSASIM_DRIVER_SNAPSHOT_HH
#define DSASIM_DRIVER_SNAPSHOT_HH

#include <memory>
#include <vector>

#include "driver/platform.hh"

namespace dsasim
{

class Snapshot
{
  public:
    /**
     * Checkpoint @p p. Fatal with a drain hint if the calendar is
     * non-empty or any device still holds descriptors.
     */
    static Snapshot capture(Platform &p);

    /** An independent simulation + platform pair forked off a snapshot. */
    struct Forked
    {
        Simulation sim;
        std::unique_ptr<Platform> platform;

        Platform &plat() { return *platform; }
    };

    /**
     * Materialize an independent continuation: a fresh Simulation
     * re-anchored at the captured tick/sequence/hash, and a fresh
     * Platform rebuilt from the captured config + topology with all
     * component state restored. Forks share unwritten memory chunks
     * with the source and each other (copy-on-write).
     */
    std::unique_ptr<Forked> fork() const;

    /**
     * Rewind an existing platform to this snapshot in place. The
     * platform must be quiesced and its device topology must match
     * the captured one (counts are checked; apply DsaTopology first
     * if it does not).
     */
    void restoreInto(Platform &p) const;

    Tick capturedAt() const { return simState.now; }
    const PlatformConfig &platformConfig() const { return config; }

  private:
    Snapshot() = default;

    PlatformConfig config; ///< dsaTopology cleared; applied per device
    std::vector<DsaTopology> topologies; ///< one per DSA device
    Simulation::State simState;
    MemSystem::State memState;
    std::vector<Core::State> coreStates;
    std::vector<DsaDevice::State> dsaStates;
    std::vector<CbdmaDevice::State> cbdmaStates;
    bool hasInjector = false;
    FaultInjector::State injectorState;
};

} // namespace dsasim

#endif // DSASIM_DRIVER_SNAPSHOT_HH
