/**
 * @file
 * The submission-instruction and synchronization model (§3.3):
 *
 *  - MOVDIR64B: posted 64-byte store to a DWQ portal. The core is
 *    busy only for the store itself; the descriptor lands in the WQ
 *    one flight later. The client must track DWQ occupancy.
 *  - ENQCMD: non-posted submission to an SWQ. The core stalls for
 *    the full round trip and receives an accept/retry status, which
 *    is what makes one SWQ submitter equivalent to a batch-of-1
 *    stream (Fig. 9).
 *  - UMONITOR/UMWAIT: park the core on the completion record in an
 *    optimized wait state; the waited ticks are accounted separately
 *    from busy work (Fig. 11).
 *  - Spin polling: check the status byte every pollInterval.
 */

#ifndef DSASIM_DRIVER_SUBMITTER_HH
#define DSASIM_DRIVER_SUBMITTER_HH

#include "cpu/core.hh"
#include "dsa/device.hh"
#include "sim/task.hh"

namespace dsasim
{

class Submitter
{
  public:
    Submitter(Core &submitting_core, const DsaParams &p)
        : core_(submitting_core), params(p)
    {}

    Core &core() { return core_; }

    /**
     * MOVDIR64B to a dedicated WQ. Returns (resumes) as soon as the
     * core retires the store; the descriptor arrives at the portal
     * asynchronously. Submitting to a full DWQ is a client bug.
     */
    CoTask
    movdir64b(DsaDevice &dev, WorkQueue &wq, WorkDescriptor d)
    {
        Simulation &sim = core_.simulation();
        core_.chargeBusy(params.submitMovdirCost, "submit");
        co_await sim.delay(params.submitMovdirCost);
        DsaDevice *devp = &dev;
        WorkQueue *wqp = &wq;
        sim.scheduleIn(params.submitFlight, [devp, wqp, d] {
            devp->submit(*wqp, d);
        });
    }

    /**
     * ENQCMD to a shared WQ. The core blocks for the non-posted
     * round trip; @p accepted reports the returned status.
     */
    CoTask
    enqcmd(DsaDevice &dev, WorkQueue &wq, WorkDescriptor d,
           bool &accepted)
    {
        Simulation &sim = core_.simulation();
        core_.chargeBusy(params.enqcmdRoundTrip, "submit");
        co_await sim.delay(params.submitFlight);
        accepted = dev.submit(wq, d) ==
                   DsaDevice::SubmitStatus::Accepted;
        co_await sim.delay(params.enqcmdRoundTrip -
                           params.submitFlight);
    }

    /** ENQCMD, retrying until the SWQ accepts the descriptor. */
    CoTask
    enqcmdRetry(DsaDevice &dev, WorkQueue &wq, WorkDescriptor d)
    {
        bool accepted = false;
        while (!accepted)
            co_await enqcmd(dev, wq, d, accepted);
    }

    /**
     * UMONITOR + UMWAIT on the completion record. The waited time is
     * charged to the core's umwait bucket (a low-power state whose
     * cycles other SMT work or the power budget can reclaim).
     */
    CoTask
    umwait(CompletionRecord &cr)
    {
        Simulation &sim = core_.simulation();
        Tick t0 = sim.now();
        if (!cr.isDone())
            co_await cr.done.wait();
        core_.chargeUmwait(sim.now() - t0);
        const Tick wake = core_.cpuParams().umwaitWake;
        core_.chargeBusy(wake, "wake");
        co_await sim.delay(wake);
    }

    /**
     * Interrupt-driven wait (§4.4's alternative to UMWAIT): the
     * core is released entirely; when the completion interrupt
     * fires, the handler + context switch cost is charged before
     * control returns. Pair with descflags::requestInterrupt so the
     * device actually raises one.
     */
    CoTask
    waitInterrupt(CompletionRecord &cr)
    {
        Simulation &sim = core_.simulation();
        Tick t0 = sim.now();
        if (!cr.isDone())
            co_await cr.done.wait();
        core_.cycleAccount().charge("idle-other-work",
                                    sim.now() - t0);
        const Tick handler = interruptHandlerCost;
        core_.chargeBusy(handler, "irq-handler");
        co_await sim.delay(handler);
    }

    /** Interrupt handler + context-switch cost on the waker core. */
    static constexpr Tick interruptHandlerCost = fromUs(1.2);

    /**
     * Spin-poll the completion record's status byte. Timing is
     * equivalent to checking every pollInterval (the completion is
     * detected at the next poll boundary) without simulating each
     * check as its own event.
     */
    CoTask
    poll(CompletionRecord &cr)
    {
        Simulation &sim = core_.simulation();
        const Tick interval = core_.cpuParams().pollInterval;
        Tick t0 = sim.now();
        if (!cr.isDone())
            co_await cr.done.wait();
        Tick waited = sim.now() - t0;
        Tick detect = (waited + interval - 1) / interval * interval +
                      interval - waited;
        core_.chargeSpin(waited + detect);
        co_await sim.delay(detect);
    }

  private:
    Core &core_;
    DsaParams params;
};

} // namespace dsasim

#endif // DSASIM_DRIVER_SUBMITTER_HH
