/**
 * @file
 * The submission-instruction and synchronization model (§3.3):
 *
 *  - MOVDIR64B: posted 64-byte store to a DWQ portal. The core is
 *    busy only for the store itself; the descriptor lands in the WQ
 *    one flight later. The client must track DWQ occupancy.
 *  - ENQCMD: non-posted submission to an SWQ. The core stalls for
 *    the full round trip and receives an accept/retry status, which
 *    is what makes one SWQ submitter equivalent to a batch-of-1
 *    stream (Fig. 9).
 *  - UMONITOR/UMWAIT: park the core on the completion record in an
 *    optimized wait state; the waited ticks are accounted separately
 *    from busy work (Fig. 11).
 *  - Spin polling: check the status byte every pollInterval.
 */

#ifndef DSASIM_DRIVER_SUBMITTER_HH
#define DSASIM_DRIVER_SUBMITTER_HH

#include <algorithm>
#include <cstdint>

#include "cpu/core.hh"
#include "dsa/device.hh"
#include "sim/task.hh"

namespace dsasim
{

class Submitter
{
  public:
    Submitter(Core &submitting_core, const DsaParams &p)
        : core_(submitting_core), params(p)
    {}

    Core &core() { return core_; }

    /**
     * MOVDIR64B to a dedicated WQ. Returns (resumes) as soon as the
     * core retires the store; the descriptor arrives at the portal
     * asynchronously. The client must track DWQ occupancy: a store
     * past capacity is dropped by the portal and surfaces as a
     * WqOverflow completion (see DsaDevice::submit), never as a
     * silent hang.
     */
    CoTask
    movdir64b(DsaDevice &dev, WorkQueue &wq, WorkDescriptor d)
    {
        Simulation &sim = core_.simulation();
        core_.chargeBusy(params.submitMovdirCost, "submit");
        co_await sim.delay(params.submitMovdirCost);
        DsaDevice *devp = &dev;
        WorkQueue *wqp = &wq;
        sim.scheduleIn(params.submitFlight, [devp, wqp, d] {
            devp->submit(*wqp, d);
        });
    }

    /**
     * ENQCMD to a shared WQ. The core blocks for the non-posted
     * round trip; @p status reports the full portal outcome
     * (Accepted / transient Retry / Rejected-with-cause).
     */
    CoTask
    enqcmdStatus(DsaDevice &dev, WorkQueue &wq, WorkDescriptor d,
                 DsaDevice::SubmitStatus &status)
    {
        Simulation &sim = core_.simulation();
        core_.chargeBusy(params.enqcmdRoundTrip, "submit");
        co_await sim.delay(params.submitFlight);
        status = dev.submit(wq, d);
        co_await sim.delay(params.enqcmdRoundTrip -
                           params.submitFlight);
    }

    /**
     * ENQCMD to a shared WQ. The core blocks for the non-posted
     * round trip; @p accepted reports the returned status.
     */
    CoTask
    enqcmd(DsaDevice &dev, WorkQueue &wq, WorkDescriptor d,
           bool &accepted)
    {
        DsaDevice::SubmitStatus st;
        co_await enqcmdStatus(dev, wq, d, st);
        accepted = st == DsaDevice::SubmitStatus::Accepted;
    }

    /**
     * ENQCMD, retrying immediately until the SWQ accepts the
     * descriptor. This is the paper's measured contention behavior
     * (Fig. 9) — calibration depends on its timing, so it stays
     * unbounded and backoff-free. A Rejected descriptor (disabled
     * device, injected drop) terminates the loop: retrying it can
     * never succeed and its completion record already has the cause.
     */
    CoTask
    enqcmdRetry(DsaDevice &dev, WorkQueue &wq, WorkDescriptor d)
    {
        for (;;) {
            DsaDevice::SubmitStatus st;
            co_await enqcmdStatus(dev, wq, d, st);
            if (st != DsaDevice::SubmitStatus::Retry)
                co_return;
        }
    }

    /**
     * ENQCMD with bounded exponential backoff: on Retry the core
     * pauses @p backoff_base, doubling up to @p backoff_cap, for at
     * most @p max_retries resubmissions. The pause is accounted as
     * backoff (not busy) time — the core could run other work.
     * @p accepted is false if the WQ stayed full through the last
     * retry (caller decides: fall back to CPU, fail the request) or
     * if the portal rejected the descriptor outright.
     */
    CoTask
    enqcmdBackoff(DsaDevice &dev, WorkQueue &wq, WorkDescriptor d,
                  bool &accepted, unsigned max_retries,
                  Tick backoff_base, Tick backoff_cap)
    {
        Simulation &sim = core_.simulation();
        accepted = false;
        Tick pause = backoff_base;
        for (unsigned attempt = 0;; ++attempt) {
            DsaDevice::SubmitStatus st;
            co_await enqcmdStatus(dev, wq, d, st);
            if (st == DsaDevice::SubmitStatus::Accepted) {
                accepted = true;
                co_return;
            }
            if (st == DsaDevice::SubmitStatus::Rejected)
                co_return;
            if (attempt >= max_retries) {
                ++backoffGiveUps;
                co_return;
            }
            ++backoffRetries;
            core_.cycleAccount().charge("enqcmd-backoff", pause);
            co_await sim.delay(pause);
            pause = std::min(pause * 2, backoff_cap);
        }
    }

    /// @name Backoff statistics.
    /// @{
    std::uint64_t backoffRetries = 0;
    std::uint64_t backoffGiveUps = 0;
    /// @}

    /**
     * UMONITOR + UMWAIT on the completion record. The waited time is
     * charged to the core's umwait bucket (a low-power state whose
     * cycles other SMT work or the power budget can reclaim).
     */
    CoTask
    umwait(CompletionRecord &cr)
    {
        Simulation &sim = core_.simulation();
        Tick t0 = sim.now();
        if (!cr.isDone())
            co_await cr.done.wait();
        core_.chargeUmwait(sim.now() - t0);
        const Tick wake = core_.cpuParams().umwaitWake;
        core_.chargeBusy(wake, "wake");
        co_await sim.delay(wake);
    }

    /**
     * Interrupt-driven wait (§4.4's alternative to UMWAIT): the
     * core is released entirely; when the completion interrupt
     * fires, the handler + context switch cost is charged before
     * control returns. Pair with descflags::requestInterrupt so the
     * device actually raises one.
     */
    CoTask
    waitInterrupt(CompletionRecord &cr)
    {
        Simulation &sim = core_.simulation();
        Tick t0 = sim.now();
        if (!cr.isDone())
            co_await cr.done.wait();
        core_.cycleAccount().charge("idle-other-work",
                                    sim.now() - t0);
        const Tick handler = interruptHandlerCost;
        core_.chargeBusy(handler, "irq-handler");
        co_await sim.delay(handler);
    }

    /** Interrupt handler + context-switch cost on the waker core. */
    static constexpr Tick interruptHandlerCost = fromUs(1.2);

    /**
     * Spin-poll the completion record's status byte. Timing is
     * equivalent to checking every pollInterval (the completion is
     * detected at the next poll boundary) without simulating each
     * check as its own event.
     */
    CoTask
    poll(CompletionRecord &cr)
    {
        Simulation &sim = core_.simulation();
        const Tick interval = core_.cpuParams().pollInterval;
        Tick t0 = sim.now();
        if (!cr.isDone())
            co_await cr.done.wait();
        Tick waited = sim.now() - t0;
        Tick detect = (waited + interval - 1) / interval * interval +
                      interval - waited;
        core_.chargeSpin(waited + detect);
        co_await sim.delay(detect);
    }

  private:
    Core &core_;
    DsaParams params;
};

} // namespace dsasim

#endif // DSASIM_DRIVER_SUBMITTER_HH
