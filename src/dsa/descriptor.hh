/**
 * @file
 * Work descriptors and completion records.
 *
 * The fields mirror the 64-byte hardware descriptor: operation,
 * PASID, flags, source/destination addresses, transfer size, and the
 * per-operation extras (pattern, CRC seed, DIF tags, delta record
 * limits). The completion record carries status, the CRC value,
 * compare results and fault information; a simulation-side Trigger
 * stands in for the memory write that UMONITOR/UMWAIT or polling
 * would observe on hardware.
 */

#ifndef DSASIM_DSA_DESCRIPTOR_HH
#define DSASIM_DSA_DESCRIPTOR_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "dsa/opcodes.hh"
#include "mem/types.hh"
#include "sim/sync.hh"

namespace dsasim
{

/** Descriptor flag bits. */
namespace descflags
{
/** Cache control: steer destination writes into the LLC (DDIO). */
constexpr std::uint32_t cacheControl = 1u << 0;
/** Block on fault: the device waits for the OS to resolve faults. */
constexpr std::uint32_t blockOnFault = 1u << 1;
/** Request an interrupt instead of a polled completion. */
constexpr std::uint32_t requestInterrupt = 1u << 2;
} // namespace descflags

class CompletionRecord
{
  public:
    enum class Status : std::uint8_t
    {
        None = 0,     ///< not yet written by the device
        Success,
        PageFault,    ///< blocked on fault with block-on-fault = 0
        Unsupported,  ///< opcode/parameter rejected
        BatchError,   ///< >= 1 descriptor in the batch failed
        ReadError,    ///< source read failed (hardware data-path)
        WriteError,   ///< destination write failed
        DecodeError,  ///< descriptor decode failed
        Aborted,      ///< abort/drain/reset or watchdog termination
        WqOverflow,   ///< MOVDIR64B to a full DWQ (detected drop)
        QueueFull,    ///< ENQCMD bounded retries exhausted
    };

    static const char *
    statusName(Status st)
    {
        switch (st) {
          case Status::None: return "none";
          case Status::Success: return "success";
          case Status::PageFault: return "page-fault";
          case Status::Unsupported: return "unsupported";
          case Status::BatchError: return "batch-error";
          case Status::ReadError: return "read-error";
          case Status::WriteError: return "write-error";
          case Status::DecodeError: return "decode-error";
          case Status::Aborted: return "aborted";
          case Status::WqOverflow: return "wq-overflow";
          case Status::QueueFull: return "queue-full";
        }
        return "?";
    }

    explicit CompletionRecord(Simulation &s) : done(s) {}

    bool isDone() const { return status != Status::None; }

    /** Device-side: publish the final status and wake waiters. */
    void
    complete(Status st)
    {
        status = st;
        done.fire();
    }

    /** Reset for reuse (descriptors are commonly recycled). */
    void
    rearm()
    {
        status = Status::None;
        result = 0;
        crc = 0;
        bytesCompleted = 0;
        recordBytes = 0;
        recordFits = true;
        faultAddr = 0;
        done.reset();
    }

    Status status = Status::None;
    /** Compare ops: 0 = match, 1 = mismatch. DIF check: block idx. */
    std::uint32_t result = 0;
    std::uint32_t crc = 0;
    std::uint64_t bytesCompleted = 0;
    std::uint64_t recordBytes = 0; ///< delta record size produced
    bool recordFits = true;
    Addr faultAddr = 0;

    /** Fires when the status byte is written. */
    Trigger done;
};

struct WorkDescriptor
{
    Opcode op = Opcode::Nop;
    /**
     * Default matches the paper's measurement setup (§4.1): cache
     * control disabled (destination writes go to memory), block on
     * fault enabled. Workloads that want DDIO-style LLC placement
     * (G3) set descflags::cacheControl explicitly.
     */
    std::uint32_t flags = descflags::blockOnFault;
    Pasid pasid = 0;

    Addr src = 0;
    Addr dst = 0;
    Addr src2 = 0; ///< CreateDelta: modified buffer
    Addr dst2 = 0; ///< Dualcast: second destination
    std::uint64_t size = 0;

    std::uint64_t pattern = 0;   ///< Fill / ComparePattern
    /** Second half of a 16-byte fill pattern (Table 1: 8/16-byte). */
    std::uint64_t pattern2 = 0;
    std::uint8_t patternBytes = 8; ///< 8 or 16
    std::uint32_t crcSeed = 0xffffffffu;
    std::uint64_t maxRecordBytes = 0; ///< CreateDelta cap
    std::uint64_t recordBytes = 0;    ///< ApplyDelta record length

    std::uint32_t difBlockBytes = 512;
    std::uint16_t appTag = 0;
    std::uint16_t newAppTag = 0;
    std::uint32_t refTag = 0;
    std::uint32_t newRefTag = 0;

    /** Completion record; must outlive processing. */
    CompletionRecord *completion = nullptr;

    /**
     * Batch payload: the array of work descriptors the batch
     * descriptor points at (a descriptor-list address on hardware).
     */
    std::shared_ptr<std::vector<WorkDescriptor>> batch;

    bool wantsCacheControl() const
    {
        return flags & descflags::cacheControl;
    }
    bool blocksOnFault() const
    {
        return flags & descflags::blockOnFault;
    }
    bool wantsInterrupt() const
    {
        return flags & descflags::requestInterrupt;
    }
};

} // namespace dsasim

#endif // DSASIM_DSA_DESCRIPTOR_HH
