#include "dsa/device.hh"

#include <numeric>

#include "dsa/qos.hh"
#include "sim/logging.hh"

namespace dsasim
{

DsaDevice::DsaDevice(Simulation &s, MemSystem &ms, const DsaParams &p,
                     int device_id, int socket_id)
    : simulation(s), memSys(ms), cfg(p), id(device_id),
      socketId(socket_id), atcCache(p.atcEntries),
      fabricRd(s, p.fabricGBps, "dsa" + std::to_string(device_id) +
                                ".fabric.rd"),
      fabricWr(s, p.fabricGBps, "dsa" + std::to_string(device_id) +
                                ".fabric.wr"),
      hangReleaseTrig(std::make_unique<Trigger>(s)),
      descriptorsSubmittedCtr(s.stats().counter(
          "dsa" + std::to_string(device_id) +
              ".descriptors_submitted",
          "descriptors accepted into a WQ on this device")),
      descriptorsRetriedCtr(s.stats().counter(
          "dsa" + std::to_string(device_id) + ".descriptors_retried",
          "ENQCMD retries (SWQ at threshold or admission throttle)"))
{}

Group &
DsaDevice::addGroup()
{
    fatal_if(isEnabled, "cannot reconfigure an enabled device");
    fatal_if(groups.size() >= cfg.maxGroups,
             "device %d supports at most %u groups", id, cfg.maxGroups);
    groups.push_back(std::make_unique<Group>(
        simulation, *this, static_cast<int>(groups.size())));
    return *groups.back();
}

WorkQueue &
DsaDevice::addWorkQueue(Group &grp, WorkQueue::Mode mode, unsigned size,
                        unsigned priority, unsigned threshold)
{
    fatal_if(isEnabled, "cannot reconfigure an enabled device");
    fatal_if(wqs.size() >= cfg.maxWqs,
             "device %d supports at most %u WQs", id, cfg.maxWqs);
    fatal_if(size == 0, "WQ size must be non-zero");
    fatal_if(threshold > size,
             "WQ threshold (%u) exceeds WQ size (%u)", threshold,
             size);
    unsigned used = 0;
    for (const auto &w : wqs)
        used += w->size;
    fatal_if(used + size > cfg.wqCapacityTotal,
             "WQ entries exhausted: %u in use, %u requested, %u total",
             used, size, cfg.wqCapacityTotal);
    wqs.push_back(std::make_unique<WorkQueue>(
        static_cast<int>(wqs.size()), mode, size, priority,
        threshold));
    wqs.back()->group = &grp;
    grp.attach(wqs.back().get());
    // Telemetry: supplier-backed views over the WQ's own state —
    // depth as a live gauge, accept/reject totals as counters.
    WorkQueue *q = wqs.back().get();
    const std::string prefix = "dsa" + std::to_string(id) + ".wq" +
                               std::to_string(q->id) + ".";
    simulation.stats().gauge(
        prefix + "depth", "descriptors currently queued",
        [q] { return static_cast<double>(q->occupancy()); });
    simulation.stats().counter(
        prefix + "accepted", "descriptors accepted by this WQ",
        [q] { return q->accepted; });
    simulation.stats().counter(
        prefix + "rejected",
        "descriptors rejected or retried at this WQ's portal",
        [q] { return q->rejected; });
    return *wqs.back();
}

Engine &
DsaDevice::addEngine(Group &grp)
{
    fatal_if(isEnabled, "cannot reconfigure an enabled device");
    fatal_if(engines.size() >= cfg.maxEngines,
             "device %d supports at most %u engines", id,
             cfg.maxEngines);
    engines.push_back(std::make_unique<Engine>(
        *this, grp, static_cast<int>(engines.size())));
    grp.attach(engines.back().get());
    return *engines.back();
}

void
DsaDevice::setGroupReadBuffers(Group &grp, unsigned buffers)
{
    fatal_if(isEnabled, "cannot reconfigure an enabled device");
    fatal_if(buffers > cfg.readBuffers,
             "group read buffers (%u) exceed device total (%u)",
             buffers, cfg.readBuffers);
    grp.readBuffers = buffers;
}

void
DsaDevice::enable()
{
    fatal_if(isEnabled, "device %d already enabled", id);
    fatal_if(groups.empty(), "device %d has no groups", id);

    unsigned claimed = 0;
    unsigned unset = 0;
    for (auto &g : groups) {
        fatal_if(g->wqs.empty(),
                 "group %d has no work queues", g->id);
        fatal_if(g->engines.empty(),
                 "group %d has no engines", g->id);
        if (g->readBuffers == 0)
            ++unset;
        else
            claimed += g->readBuffers;
    }
    fatal_if(claimed > cfg.readBuffers,
             "groups claim %u read buffers, device has %u",
             claimed, cfg.readBuffers);
    // Groups without an explicit allocation share the remainder.
    if (unset > 0) {
        unsigned share = (cfg.readBuffers - claimed) / unset;
        fatal_if(share == 0,
                 "no read buffers left for %u unconfigured groups",
                 unset);
        for (auto &g : groups)
            if (g->readBuffers == 0)
                g->readBuffers = share;
    }

    isEnabled = true;
    // A re-enable after disable()/reset() must not spawn a second
    // processing loop per engine; the loops survive the disable.
    if (!enginesStarted) {
        for (auto &e : engines)
            e->start();
        enginesStarted = true;
    }
}

void
DsaDevice::completeAborted(const WorkDescriptor &d)
{
    ++descriptorsAborted;
    if (d.completion && !d.completion->isDone()) {
        d.completion->bytesCompleted = 0;
        d.completion->complete(CompletionRecord::Status::Aborted);
    }
}

void
DsaDevice::disable()
{
    if (!isEnabled)
        return;
    isEnabled = false;
    ++epoch;
    ++resets;
    // Flush queued descriptors: WQ entries first, then batch
    // sub-descriptors already fanned out into the groups. Their
    // pending-work credits stay behind; engines tolerate waking to
    // an empty arbiter.
    for (auto &w : wqs) {
        for (WorkQueue::Entry &e : w->drainAll())
            completeAborted(e.desc);
    }
    for (auto &g : groups) {
        for (Work &w : g->flushInternal()) {
            completeAborted(w.desc);
            if (w.parent) {
                w.parent->anyFailed = true;
                w.parent->latch.arrive();
            }
        }
    }
    // Release hung engines; their descriptors publish Aborted.
    abortHung();
}

void
DsaDevice::reset()
{
    disable();
    enable();
}

void
DsaDevice::abortHung()
{
    hangReleaseTrig->fire();
    // fire() clears the waiter list, so the trigger can re-arm
    // immediately for the next hang.
    hangReleaseTrig->reset();
}

void
DsaDevice::installAdmission(std::size_t qid, WqAdmission *adm)
{
    WorkQueue &q = wq(qid);
    q.admission = adm;
    if (adm) {
        adm->registerStats(simulation.stats(),
                           strfmt("dsa%d.wq%d.qos.", id, q.id));
    }
}

DsaDevice::SubmitStatus
DsaDevice::submit(WorkQueue &wq, const WorkDescriptor &d)
{
    panic_if(wq.group == nullptr, "WQ %d not attached to a group",
             wq.id);
    if (!isEnabled) {
        // The portal of a disabled device drops the write; the
        // descriptor is reported back as aborted.
        ++submitsWhileDisabled;
        completeAborted(d);
        return SubmitStatus::Rejected;
    }
    bool forcedReject =
        faultInjector &&
        faultInjector->fire(FaultSite::WqReject,
                            {id, wq.id, -1, static_cast<int>(d.op),
                             static_cast<std::int64_t>(d.pasid)});
    if (forcedReject)
        ++injectedRejects;
    if (!forcedReject && wq.mode == WorkQueue::Mode::Shared &&
        wq.admission) {
        // Per-tenant admission policy ahead of the portal occupancy
        // check; a non-Admit verdict looks exactly like a full SWQ
        // to the submitter (ENQCMD Retry), so clients need no new
        // protocol to live under a rate limit.
        auto v = wq.admission->admit(d.pasid, simulation.now(),
                                     wq.occupancy(), wq.threshold);
        if (v != WqAdmission::Verdict::Admit) {
            descriptorsRetriedCtr.inc();
            return SubmitStatus::Retry;
        }
    }
    if (forcedReject || (wq.mode == WorkQueue::Mode::Shared
                             ? wq.aboveThreshold()
                             : wq.full())) {
        if (wq.mode == WorkQueue::Mode::Dedicated) {
            // A MOVDIR64B past DWQ capacity means the client broke
            // its occupancy-tracking contract. Real hardware drops
            // the descriptor; we detect the drop and report it via
            // the completion record instead of leaving the client
            // waiting on a completion that never comes.
            ++dwqOverflows;
            ++wq.rejected;
            if (d.completion && !d.completion->isDone()) {
                d.completion->bytesCompleted = 0;
                d.completion->complete(
                    CompletionRecord::Status::WqOverflow);
            }
            return SubmitStatus::Rejected;
        }
        // ENQCMD reports retry (at the configured admission
        // threshold).
        descriptorsRetriedCtr.inc();
        ++wq.rejected;
        return SubmitStatus::Retry;
    }
    bool ok = wq.enqueue(d, simulation.now());
    panic_if(!ok, "enqueue failed on non-full WQ");
    descriptorsSubmittedCtr.inc();
    Group *grp = wq.group;
    simulation.scheduleIn(cfg.dispatchLatency,
                          [grp] { grp->signalWork(); });
    return SubmitStatus::Accepted;
}

std::uint64_t
DsaDevice::descriptorsProcessed() const
{
    std::uint64_t n = 0;
    for (const auto &e : engines)
        n += e->descriptorsProcessed;
    return n;
}

std::uint64_t
DsaDevice::bytesProcessed() const
{
    std::uint64_t n = 0;
    for (const auto &e : engines)
        n += e->bytesRead() + e->bytesWritten();
    return n;
}

bool
DsaDevice::quiescent() const
{
    for (const auto &g : groups)
        if (!g->quiescent())
            return false;
    return true;
}

DsaDevice::State
DsaDevice::saveState() const
{
    for (const auto &g : groups) {
        fatal_if(!g->quiescent(),
                 "snapshot of DSA device %d with in-flight work in "
                 "group %d (%llu on engines, queued=%d, credits=%llu) "
                 "— drain first (co_await Platform::quiesce())",
                 id, g->id,
                 static_cast<unsigned long long>(g->inflight),
                 g->hasQueuedWork() ? 1 : 0,
                 static_cast<unsigned long long>(
                     g->pendingCredits()));
    }
    State st;
    st.enabled = isEnabled;
    st.epoch = epoch;
    st.descriptorsAborted = descriptorsAborted;
    st.dwqOverflows = dwqOverflows;
    st.submitsWhileDisabled = submitsWhileDisabled;
    st.injectedRejects = injectedRejects;
    st.resets = resets;
    st.atc = atcCache.saveState();
    st.fabricRd = fabricRd.saveState();
    st.fabricWr = fabricWr.saveState();
    st.wqs.reserve(wqs.size());
    for (const auto &w : wqs)
        st.wqs.push_back(w->saveState());
    st.groups.reserve(groups.size());
    for (const auto &g : groups)
        st.groups.push_back(g->saveState());
    st.engines.reserve(engines.size());
    for (const auto &e : engines)
        st.engines.push_back(e->saveState());
    return st;
}

void
DsaDevice::restoreState(const State &st)
{
    fatal_if(wqs.size() != st.wqs.size() ||
                 groups.size() != st.groups.size() ||
                 engines.size() != st.engines.size(),
             "DsaDevice::restoreState: topology mismatch on device "
             "%d (%zu/%zu/%zu WQs/groups/engines here, %zu/%zu/%zu "
             "in snapshot) — apply DsaTopology::of() first",
             id, wqs.size(), groups.size(), engines.size(),
             st.wqs.size(), st.groups.size(), st.engines.size());
    fatal_if(isEnabled != st.enabled,
             "DsaDevice::restoreState: enable-state mismatch on "
             "device %d (the captured topology carries the enable "
             "flag)",
             id);
    epoch = st.epoch;
    descriptorsAborted = st.descriptorsAborted;
    dwqOverflows = st.dwqOverflows;
    submitsWhileDisabled = st.submitsWhileDisabled;
    injectedRejects = st.injectedRejects;
    resets = st.resets;
    atcCache.restoreState(st.atc);
    fabricRd.restoreState(st.fabricRd);
    fabricWr.restoreState(st.fabricWr);
    for (std::size_t i = 0; i < wqs.size(); ++i)
        wqs[i]->restoreState(st.wqs[i]);
    for (std::size_t i = 0; i < groups.size(); ++i)
        groups[i]->restoreState(st.groups[i]);
    for (std::size_t i = 0; i < engines.size(); ++i)
        engines[i]->restoreState(st.engines[i]);
}

} // namespace dsasim
