/**
 * @file
 * DsaDevice: one DSA instance, exposed to the host as an RCiEP.
 *
 * Owns groups, work queues, engines, the device ATC, and the I/O
 * fabric ports. Configuration follows the real flow: build groups /
 * WQs / engines while disabled (the driver's accel-config role),
 * then enable() validates the topology and starts the PEs.
 */

#ifndef DSASIM_DSA_DEVICE_HH
#define DSASIM_DSA_DEVICE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dsa/engine.hh"
#include "dsa/group.hh"
#include "dsa/params.hh"
#include "dsa/wq.hh"
#include "mem/mem_system.hh"
#include "mem/tlb.hh"
#include "sim/fault_injector.hh"
#include "sim/sync.hh"

namespace dsasim
{

class DsaDevice
{
  public:
    DsaDevice(Simulation &s, MemSystem &ms, const DsaParams &p,
              int device_id, int socket_id = 0);

    Simulation &sim() { return simulation; }
    const Simulation &sim() const { return simulation; }
    MemSystem &mem() { return memSys; }
    const DsaParams &params() const { return cfg; }
    int deviceId() const { return id; }
    int socket() const { return socketId; }
    bool enabled() const { return isEnabled; }

    /** Occupancy-accounting identity (distinct from any core). */
    int cacheOwnerId() const { return 1000 + id; }

    /// @name Configuration (only while disabled).
    /// @{
    Group &addGroup();
    WorkQueue &addWorkQueue(Group &grp, WorkQueue::Mode mode,
                            unsigned size, unsigned priority = 0,
                            unsigned threshold = 0);
    Engine &addEngine(Group &grp);
    /** Re-apportion read buffers; unset groups share the remainder. */
    void setGroupReadBuffers(Group &grp, unsigned buffers);
    /// @}

    /**
     * Validate the configuration and start the engines. Mirrors
     * accel-config's device enable; a malformed configuration is a
     * user error (fatal). Re-enabling after disable()/reset() is
     * legal and resumes service with the same topology.
     */
    void enable();

    /**
     * Abort/drain/disable sequencing (idxd's device disable):
     * queued descriptors in every WQ and every batch redispatch
     * queue complete with Status::Aborted, descriptors already on an
     * engine complete with Status::Aborted when they publish, hung
     * engines are released, and the device stops accepting
     * submissions until enable() is called again.
     */
    void disable();

    /** disable() followed by enable(): a full device reset. */
    void reset();

    /**
     * Release descriptors hung on an engine (they complete with
     * Status::Aborted) without disabling the device. The watchdog's
     * abort path.
     */
    void abortHung();

    /** Bumped by every disable(); in-flight work from an older epoch
     * publishes Status::Aborted. */
    std::uint64_t resetEpoch() const { return epoch; }

    /** Awaited by an engine whose descriptor hangs. */
    Trigger &hangRelease() { return *hangReleaseTrig; }

    /// @name Fault injection (optional; nullptr = fault-free).
    /// @{
    void setFaultInjector(FaultInjector *fi) { faultInjector = fi; }
    FaultInjector *injector() { return faultInjector; }
    /// @}

    /// @name Submission (the MMIO portal write, post-flight).
    /// Timing of the submitting instruction itself lives in the
    /// driver's Submitter; this is the descriptor landing in the WQ.
    /// @{
    enum class SubmitStatus
    {
        Accepted,
        Retry,    ///< transient (SWQ at threshold): resubmit
        Rejected, ///< dropped; the completion record has the cause
    };

    SubmitStatus submit(WorkQueue &wq, const WorkDescriptor &d);

    /**
     * Attach @p adm as work queue @p qid's admission policy and
     * publish its verdict counters under dsa<id>.wq<qid>.qos. in the
     * simulation's telemetry registry. Install each policy at most
     * once per queue (re-registration of the same names is fatal).
     */
    void installAdmission(std::size_t qid, WqAdmission *adm);
    /// @}

    /// @name Introspection.
    /// @{
    std::size_t groupCount() const { return groups.size(); }
    Group &group(std::size_t i) { return *groups[i]; }
    const Group &group(std::size_t i) const { return *groups[i]; }
    std::size_t wqCount() const { return wqs.size(); }
    WorkQueue &wq(std::size_t i) { return *wqs[i]; }
    const WorkQueue &wq(std::size_t i) const { return *wqs[i]; }
    std::size_t engineCount() const { return engines.size(); }
    Engine &engine(std::size_t i) { return *engines[i]; }
    const Engine &engine(std::size_t i) const { return *engines[i]; }
    /// @}

    /// @name Device resources used by the engines.
    /// @{
    TranslationCache &atc() { return atcCache; }
    LinkResource &fabricRead() { return fabricRd; }
    LinkResource &fabricWrite() { return fabricWr; }
    /// @}

    /// @name Aggregate statistics.
    /// The submission counters live in the telemetry registry
    /// (dsa<D>.*, DESIGN.md §15); the rest are plain bookkeeping
    /// fields.
    /// @{
    std::uint64_t descriptorsAborted = 0;  ///< flushed or abort-published
    std::uint64_t dwqOverflows = 0;        ///< MOVDIR64B drops detected
    std::uint64_t submitsWhileDisabled = 0;
    std::uint64_t injectedRejects = 0;     ///< forced WqReject fires
    std::uint64_t resets = 0;              ///< disable() invocations

    std::uint64_t
    descriptorsSubmitted() const
    {
        return descriptorsSubmittedCtr.value();
    }
    std::uint64_t
    descriptorsRetried() const
    {
        return descriptorsRetriedCtr.value();
    }
    std::uint64_t descriptorsProcessed() const;
    std::uint64_t bytesProcessed() const;
    /// @}

    /**
     * True when no descriptor is queued, in flight on an engine, or
     * pending as a banked arbiter credit anywhere on the device —
     * the precondition for saveState (and for Snapshot::capture).
     */
    bool quiescent() const;

    /**
     * Checkpointable (sim/checkpoint.hh). Captures enable state,
     * reset epoch, statistics, ATC contents, fabric-link horizons,
     * and the per-WQ / per-group / per-engine runtime state. The
     * topology itself is captured separately (DsaTopology::of) and
     * rebuilt before restore; saveState is fatal when the device is
     * not quiescent() — descriptors hold pointers to live completion
     * records that cannot outlive their run.
     */
    struct State
    {
        bool enabled = false;
        std::uint64_t epoch = 0;
        std::uint64_t descriptorsAborted = 0;
        std::uint64_t dwqOverflows = 0;
        std::uint64_t submitsWhileDisabled = 0;
        std::uint64_t injectedRejects = 0;
        std::uint64_t resets = 0;
        TranslationCache::State atc;
        LinkResource::State fabricRd;
        LinkResource::State fabricWr;
        std::vector<WorkQueue::State> wqs;
        std::vector<Group::State> groups;
        std::vector<Engine::State> engines;
    };

    State saveState() const;
    void restoreState(const State &st);

  private:
    /** Complete a flushed descriptor with Status::Aborted. */
    void completeAborted(const WorkDescriptor &d);

    Simulation &simulation;
    MemSystem &memSys;
    DsaParams cfg;
    const int id;
    const int socketId;
    bool isEnabled = false;
    bool enginesStarted = false;
    std::uint64_t epoch = 0;

    std::vector<std::unique_ptr<Group>> groups;
    std::vector<std::unique_ptr<WorkQueue>> wqs;
    std::vector<std::unique_ptr<Engine>> engines;

    TranslationCache atcCache;
    LinkResource fabricRd;
    LinkResource fabricWr;
    std::unique_ptr<Trigger> hangReleaseTrig;
    FaultInjector *faultInjector = nullptr;

    // Registry-backed submission counters (bound in the constructor).
    stats::Counter &descriptorsSubmittedCtr;
    stats::Counter &descriptorsRetriedCtr;
};

} // namespace dsasim

#endif // DSASIM_DSA_DEVICE_HH
