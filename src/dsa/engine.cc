#include "dsa/engine.hh"

#include <algorithm>
#include <cstring>
#include <vector>

#include "dsa/device.hh"
#include "mem/address_space.hh"
#include "ops/crc32.hh"
#include "ops/delta.hh"
#include "ops/dif.hh"
#include "ops/span_kernels.hh"
#include "sim/logging.hh"

namespace dsasim
{

namespace
{

/** Outcome of the functional execution of one descriptor. */
struct FuncOut
{
    CompletionRecord::Status status = CompletionRecord::Status::Success;
    std::uint32_t result = 0;
    std::uint32_t crc = 0;
    std::uint64_t recordBytes = 0;
    bool recordFits = true;
    std::uint64_t bytesCompleted = 0;
    Addr faultAddr = 0;
};

/** One data stream of a descriptor (timing view). */
struct Stream
{
    Addr va = 0;
    std::uint64_t len = 0;
    bool write = false;
    // Translation used by the last timing-walk step, cached by value
    // so the walk revalidates with one range check instead of a page
    // table search per page. Lookups cost no simulated time, so this
    // cannot change any computed tick.
    Addr mapVa = 0;
    Addr mapPa = 0;
    std::uint64_t mapSize = 0;
};

constexpr std::size_t scratchChunk = 256 * 1024;

} // namespace

Engine::Engine(DsaDevice &device, Group &grp, int engine_id)
    : dev(device), group(grp), id(engine_id),
      bytesReadCtr(device.sim().stats().counter(
          strfmt("dsa%d.eng%d.bytes_read", device.deviceId(),
                 engine_id),
          "bytes this PE read from memory")),
      bytesWrittenCtr(device.sim().stats().counter(
          strfmt("dsa%d.eng%d.bytes_written", device.deviceId(),
                 engine_id),
          "bytes this PE wrote to memory")),
      pageFaultsCtr(device.sim().stats().counter(
          strfmt("dsa%d.eng%d.page_faults", device.deviceId(),
                 engine_id),
          "page faults taken by this PE's translations")),
      atcMissesCtr(device.sim().stats().counter(
          strfmt("dsa%d.eng%d.atc_misses", device.deviceId(),
                 engine_id),
          "device-ATC misses on this PE's translations"))
{
    // PE utilization: busy time over wall simulated time. A
    // supplier-backed gauge — evaluated only when a sampler or
    // exporter reads it.
    Simulation &s = device.sim();
    s.stats().gauge(
        strfmt("dsa%d.eng%d.utilization", device.deviceId(),
               engine_id),
        "fraction of simulated time this PE was busy", [this, &s] {
            const Tick t = s.now();
            return t == 0 ? 0.0
                          : static_cast<double>(busyTicks) /
                                static_cast<double>(t);
        });
}

void
Engine::start()
{
    run();
}

SimTask
Engine::run()
{
    for (;;) {
        co_await group.awaitWork();
        auto w = group.arbitrate();
        // A device disable/reset flushes the queues but leaves the
        // pending-work credits behind; waking to an empty arbiter is
        // then expected, not a protocol violation.
        if (!w)
            continue;
        co_await process(std::move(*w));
    }
}

Engine::XlateOutcome
Engine::translateRange(AddressSpace &as, Addr va, std::uint64_t len,
                       bool block_on_fault)
{
    XlateOutcome out;
    const DsaParams &p = dev.params();
    Iommu &iommu = dev.mem().iommu();
    Pasid pasid = as.pasid();

    Addr cursor = va;
    std::uint64_t remaining = len;
    while (remaining > 0) {
        const PageTable::Mapping *m = as.pageTable().find(cursor);
        if (!m) {
            // Unmapped: an unresolvable fault either way.
            out.faulted = true;
            out.faultVa = cursor;
            out.faultStall += iommu.cfg().pageWalkLatency;
            return out;
        }
        std::uint64_t in_page = m->vaBase + m->size - cursor;
        std::uint64_t run = std::min(remaining, in_page);

        if (dev.atc().lookup(pasid, m->vaBase) && m->present) {
            out.walkCost += p.atcHitLatency;
        } else {
            atcMissesCtr.inc();
            auto res = iommu.translate(as.pageTable(), pasid, cursor,
                                       block_on_fault);
            if (res.faulted) {
                pageFaultsCtr.inc();
                if (!res.ok) {
                    // Not resolved (block-on-fault = 0): partial
                    // completion at this offset.
                    out.faulted = true;
                    out.faultVa = cursor;
                    out.faultStall += res.latency;
                    return out;
                }
                // Resolved by the OS; the PE stalled meanwhile.
                out.faultStall += res.latency;
            } else {
                // Walks overlap in the PE pipeline.
                out.walkCost += res.latency / p.walkParallelism;
            }
            dev.atc().insert(pasid, m->vaBase);
        }
        out.okBytes += run;
        cursor += run;
        remaining -= run;
    }
    return out;
}

double
Engine::effectiveRate(int src_node) const
{
    const DsaParams &p = dev.params();
    unsigned engines_sharing =
        std::max<std::size_t>(group.engines.size(), 1);
    unsigned buffers = std::max(1u, group.readBuffers / engines_sharing);
    double lat_ns =
        toNs(dev.mem().readLatencyOf(src_node, dev.socket()));
    if (lat_ns <= 0.0)
        return p.engineGBps;
    double buffered =
        static_cast<double>(buffers) * cacheLineSize / lat_ns;
    return std::min(p.engineGBps, buffered);
}

CoTask
Engine::process(Work w)
{
    if (w.desc.op == Opcode::Batch) {
        co_await processBatch(std::move(w));
        co_return;
    }
    ++group.inflight;
    struct InflightGuard
    {
        Group &g;
        ~InflightGuard() { --g.inflight; }
    } guard{group};

    Simulation &sim = dev.sim();
    MemSystem &mem = dev.mem();
    const DsaParams &p = dev.params();
    WorkDescriptor d = w.desc;
    const Tick start = sim.now();
    const std::uint64_t epoch0 = dev.resetEpoch();

    FuncOut out;

    // Completion publication, shared by all exit paths. Extra
    // latency covers the pieces that pipeline with the next
    // descriptor (setup, first-read fill, completion write). If the
    // device was disabled/reset while this descriptor was in flight
    // (epoch changed), its result is discarded and it publishes
    // Aborted — the hardware's complete-with-abort of in-flight work.
    auto publish = [this, &sim, &p, epoch0](
                       WorkDescriptor desc, FuncOut fo,
                       std::shared_ptr<BatchTracker> par,
                       Tick extra_latency) {
        Tick when = p.engineSetup + p.completionWrite + extra_latency;
        if (desc.wantsInterrupt())
            when += p.interruptLatency;
        DsaDevice *devp = &dev;
        sim.scheduleIn(when, [desc, fo, par, devp, epoch0] {
            const bool aborted = devp->resetEpoch() != epoch0;
            CompletionRecord::Status st =
                aborted ? CompletionRecord::Status::Aborted : fo.status;
            if (desc.completion && !desc.completion->isDone()) {
                CompletionRecord &cr = *desc.completion;
                cr.result = aborted ? 0 : fo.result;
                cr.crc = aborted ? 0 : fo.crc;
                cr.recordBytes = aborted ? 0 : fo.recordBytes;
                cr.recordFits = aborted ? true : fo.recordFits;
                cr.bytesCompleted = aborted ? 0 : fo.bytesCompleted;
                cr.faultAddr = aborted ? 0 : fo.faultAddr;
                cr.complete(st);
            }
            if (par) {
                if (st != CompletionRecord::Status::Success)
                    par->anyFailed = true;
                par->latch.arrive();
            }
        });
    };

    auto finishAt = [&](Tick min_end) -> Tick {
        return std::max(min_end, start + p.descriptorGap);
    };

    // ---- Fault injection (before validation: hardware-level) -------
    if (FaultInjector *fi = dev.injector()) {
        FaultQuery q{dev.deviceId(), -1, id, static_cast<int>(d.op),
                     static_cast<std::int64_t>(d.pasid)};
        if (fi->fire(FaultSite::DeviceDisable, q)) {
            // A surprise disable mid-flight. Deferred a tick so the
            // disable is not reentrant with this engine's dispatch;
            // this descriptor then publishes Aborted via the epoch
            // check in publish().
            DsaDevice *devp = &dev;
            sim.scheduleIn(0, [devp] { devp->disable(); });
        }
        if (fi->fire(FaultSite::EngineHang, q)) {
            // The engine wedges on this descriptor and holds it until
            // a watchdog (abortHung) or device reset releases it.
            ++hangs;
            co_await dev.hangRelease().wait();
            out.status = CompletionRecord::Status::Aborted;
            ++descriptorsProcessed;
            publish(d, out, w.parent, 0);
            co_return;
        }
        if (const FaultRule *r = fi->query(FaultSite::CompletionError,
                                           q)) {
            ++injectedErrors;
            switch (r->error) {
              case HwErrorKind::Read:
                out.status = CompletionRecord::Status::ReadError;
                break;
              case HwErrorKind::Write:
                out.status = CompletionRecord::Status::WriteError;
                break;
              case HwErrorKind::Decode:
                out.status = CompletionRecord::Status::DecodeError;
                break;
            }
            Tick end = finishAt(sim.now());
            if (sim.now() < end)
                co_await sim.delayUntil(end);
            ++descriptorsProcessed;
            publish(d, out, w.parent, 0);
            co_return;
        }
    }

    // ---- Validation ------------------------------------------------
    bool valid = d.size <= p.maxTransferSize;
    if (d.op == Opcode::Fill || d.op == Opcode::ComparePattern)
        valid = valid && (d.patternBytes == 8 || d.patternBytes == 16);
    std::uint64_t nblocks = 0;
    switch (d.op) {
      case Opcode::CreateDelta:
        valid = valid && d.size % deltaWordBytes == 0 &&
                d.size <= deltaMaxInputBytes;
        break;
      case Opcode::ApplyDelta:
        valid = valid && d.size % deltaWordBytes == 0 &&
                d.recordBytes % deltaEntryBytes == 0;
        break;
      case Opcode::DifCheck:
      case Opcode::DifInsert:
      case Opcode::DifStrip:
      case Opcode::DifUpdate:
        valid = valid && difBlockSizeValid(d.difBlockBytes) &&
                d.size % d.difBlockBytes == 0;
        nblocks = valid ? d.size / d.difBlockBytes : 0;
        break;
      default:
        break;
    }
    if (!valid) {
        out.status = CompletionRecord::Status::Unsupported;
        Tick end = finishAt(sim.now());
        if (sim.now() < end)
            co_await sim.delayUntil(end);
        ++descriptorsProcessed;
        publish(d, out, w.parent, 0);
        co_return;
    }

    if (d.op == Opcode::Nop) {
        out.status = CompletionRecord::Status::Success;
        Tick end = finishAt(sim.now());
        if (sim.now() < end)
            co_await sim.delayUntil(end);
        ++descriptorsProcessed;
        publish(d, out, w.parent, 0);
        co_return;
    }

    if (d.op == Opcode::Drain) {
        // Completes once every previously submitted descriptor of
        // this group has finished. This engine holds the drain, so
        // the group is drained when no *other* work is in flight or
        // queued.
        while (group.inflight > 1 || group.hasQueuedWork())
            co_await sim.delay(p.dispatchLatency);
        out.status = CompletionRecord::Status::Success;
        Tick end = finishAt(sim.now());
        if (sim.now() < end)
            co_await sim.delayUntil(end);
        ++descriptorsProcessed;
        publish(d, out, w.parent, 0);
        co_return;
    }

    AddressSpace &as = mem.space(d.pasid);

    // ---- Build the stream list ------------------------------------
    std::vector<Stream> streams;
    const std::uint64_t blk = d.difBlockBytes;
    const std::uint64_t tup = difTupleBytes;
    switch (d.op) {
      case Opcode::Memmove:
      case Opcode::CopyCrc:
        streams = {{d.src, d.size, false}, {d.dst, d.size, true}};
        break;
      case Opcode::Fill:
        streams = {{d.dst, d.size, true}};
        break;
      case Opcode::Compare:
        streams = {{d.src, d.size, false}, {d.src2, d.size, false}};
        break;
      case Opcode::ComparePattern:
      case Opcode::CrcGen:
        streams = {{d.src, d.size, false}};
        break;
      case Opcode::CreateDelta:
        streams = {{d.src, d.size, false}, {d.src2, d.size, false}};
        // Record stream appended after functional execution (its
        // length is data dependent).
        break;
      case Opcode::ApplyDelta:
        streams = {{d.src, d.recordBytes, false},
                   {d.dst, d.size, true}};
        break;
      case Opcode::Dualcast:
        streams = {{d.src, d.size, false},
                   {d.dst, d.size, true},
                   {d.dst2, d.size, true}};
        break;
      case Opcode::DifInsert:
        streams = {{d.src, nblocks * blk, false},
                   {d.dst, nblocks * (blk + tup), true}};
        break;
      case Opcode::DifCheck:
        streams = {{d.src, nblocks * (blk + tup), false}};
        break;
      case Opcode::DifStrip:
        streams = {{d.src, nblocks * (blk + tup), false},
                   {d.dst, nblocks * blk, true}};
        break;
      case Opcode::DifUpdate:
        streams = {{d.src, nblocks * (blk + tup), false},
                   {d.dst, nblocks * (blk + tup), true}};
        break;
      case Opcode::CacheFlush:
        streams = {{d.src ? d.src : d.dst, d.size, false}};
        break;
      default:
        break;
    }

    // ---- Translation (ATC -> IOMMU -> page fault path) -------------
    Tick fault_stall = 0;
    Tick walk_cost = 0;
    bool faulted = false;
    Addr fault_va = 0;
    double ok_fraction = 1.0;
    for (const Stream &s : streams) {
        if (s.len == 0)
            continue;
        auto xo = translateRange(as, s.va, s.len, d.blocksOnFault());
        fault_stall += xo.faultStall;
        walk_cost += xo.walkCost;
        if (xo.faulted) {
            faulted = true;
            fault_va = xo.faultVa;
            ok_fraction = std::min(
                ok_fraction, static_cast<double>(xo.okBytes) /
                                 static_cast<double>(s.len));
        }
    }
    if (fault_stall > 0) {
        // Page faults genuinely block the PE (the G5 motivation).
        stallTicks += fault_stall;
        co_await sim.delay(fault_stall);
    }

    std::uint64_t eff_size = d.size;
    if (faulted) {
        eff_size = static_cast<std::uint64_t>(
            static_cast<double>(d.size) * ok_fraction);
        // Partial progress stops at a page boundary.
        eff_size &= ~(pageBytes(PageSize::Size4K) - 1);
        out.status = CompletionRecord::Status::PageFault;
        out.faultAddr = fault_va;
        // Truncate the timing streams to the completed prefix.
        for (Stream &s : streams) {
            s.len = d.size ? static_cast<std::uint64_t>(
                                 static_cast<double>(s.len) *
                                 static_cast<double>(eff_size) /
                                 static_cast<double>(d.size))
                           : 0;
        }
    }

    // ---- Functional execution --------------------------------------
    // (Timed below; data is moved here so results are exact. The
    // kernels run zero-copy on the spans backing each VA range;
    // overlap-sensitive cases fall back to the legacy chunk order
    // through the per-engine staging buffers, because their results
    // genuinely depend on copy order.)
    switch (d.op) {
      case Opcode::Memmove:
        // copy() has memmove semantics, matching the directional
        // chunked copy this used to do for overlapping ranges.
        as.copy(d.dst, d.src, eff_size);
        out.bytesCompleted = eff_size;
        break;
      case Opcode::CopyCrc: {
        std::uint32_t crc = d.crcSeed;
        if (!rangesOverlap(d.src, eff_size, d.dst, eff_size)) {
            crc = spanCopyCrc(as, d.dst, d.src, eff_size, crc);
        } else {
            std::uint8_t *buf = ensure(
                bufA, std::min<std::uint64_t>(eff_size, scratchChunk));
            for (std::uint64_t off = 0; off < eff_size;
                 off += scratchChunk) {
                std::uint64_t run = std::min<std::uint64_t>(
                    scratchChunk, eff_size - off);
                as.read(d.src + off, buf, run);
                crc = crc32c(buf, run, crc);
                as.write(d.dst + off, buf, run);
            }
        }
        out.crc = crc32cFinish(crc);
        out.bytesCompleted = eff_size;
        break;
      }
      case Opcode::Dualcast: {
        const bool aliased =
            rangesOverlap(d.src, eff_size, d.dst, eff_size) ||
            rangesOverlap(d.src, eff_size, d.dst2, eff_size) ||
            rangesOverlap(d.dst, eff_size, d.dst2, eff_size);
        if (!aliased) {
            as.copy(d.dst, d.src, eff_size);
            as.copy(d.dst2, d.src, eff_size);
        } else {
            std::uint8_t *buf = ensure(
                bufA, std::min<std::uint64_t>(eff_size, scratchChunk));
            for (std::uint64_t off = 0; off < eff_size;
                 off += scratchChunk) {
                std::uint64_t run = std::min<std::uint64_t>(
                    scratchChunk, eff_size - off);
                as.read(d.src + off, buf, run);
                as.write(d.dst + off, buf, run);
                as.write(d.dst2 + off, buf, run);
            }
        }
        out.bytesCompleted = eff_size;
        break;
      }
      case Opcode::Fill:
        spanFillPattern(as, d.dst, eff_size, d.pattern, d.pattern2,
                        d.patternBytes);
        out.bytesCompleted = eff_size;
        break;
      case Opcode::CrcGen:
        out.crc =
            crc32cFinish(spanCrc(as, d.src, eff_size, d.crcSeed));
        out.bytesCompleted = eff_size;
        break;
      case Opcode::Compare:
      case Opcode::ComparePattern: {
        const std::uint64_t mm =
            d.op == Opcode::Compare
                ? spanCompare(as, d.src, d.src2, eff_size)
                : spanComparePattern(as, d.src, eff_size, d.pattern);
        if (mm < eff_size) {
            out.result = 1;
            out.bytesCompleted = mm;
            // Early exit: only the compared prefix is streamed.
            eff_size = std::min<std::uint64_t>(
                eff_size, (mm / p.chunkBytes + 1) * p.chunkBytes);
            for (Stream &s : streams)
                s.len = std::min<std::uint64_t>(s.len, eff_size);
        } else {
            out.result = 0;
            out.bytesCompleted = eff_size;
        }
        break;
      }
      case Opcode::CreateDelta: {
        const std::uint8_t *orig =
            as.contiguousConst(d.src, eff_size, "read");
        if (!orig && eff_size) {
            as.read(d.src, ensure(bufA, eff_size), eff_size);
            orig = bufA.data();
        }
        const std::uint8_t *mod =
            as.contiguousConst(d.src2, eff_size, "read");
        if (!mod && eff_size) {
            as.read(d.src2, ensure(bufB, eff_size), eff_size);
            mod = bufB.data();
        }
        DeltaResult dr =
            deltaCreate(orig, mod, eff_size, d.maxRecordBytes);
        if (!dr.record.empty())
            as.write(d.dst, dr.record.data(), dr.record.size());
        out.recordBytes = dr.record.size();
        out.recordFits = dr.fits;
        out.result = dr.mismatchedWords == 0 ? 0 : 1;
        out.bytesCompleted = eff_size;
        streams.push_back({d.dst, std::max<std::uint64_t>(
                                      dr.record.size(), 1),
                           true});
        break;
      }
      case Opcode::ApplyDelta: {
        const std::uint8_t *rec =
            as.contiguousConst(d.src, d.recordBytes, "read");
        if (!rec && d.recordBytes) {
            as.read(d.src, ensure(bufA, d.recordBytes), d.recordBytes);
            rec = bufA.data();
        }
        // Validated before any write so a malformed record leaves
        // the destination untouched. On a faulted partial, entries
        // targeting the unreachable suffix are skipped (not
        // malformed) so the PageFault status and resumable
        // bytesCompleted survive.
        if (!deltaRecordValid(rec, d.recordBytes, eff_size, faulted)) {
            out.status = CompletionRecord::Status::Unsupported;
        } else if (eff_size > 0) {
            if (std::uint8_t *dst =
                    as.contiguous(d.dst, eff_size, "write")) {
                deltaApply(dst, eff_size, rec, d.recordBytes, faulted);
            } else {
                std::uint8_t *buf = ensure(bufB, eff_size);
                as.read(d.dst, buf, eff_size);
                deltaApply(buf, eff_size, rec, d.recordBytes, faulted);
                as.write(d.dst, buf, eff_size);
            }
        }
        out.bytesCompleted = eff_size;
        break;
      }
      case Opcode::DifInsert:
      case Opcode::DifCheck:
      case Opcode::DifStrip:
      case Opcode::DifUpdate: {
        std::uint64_t eff_blocks = nblocks;
        if (faulted)
            eff_blocks = eff_size / blk;
        std::uint64_t in_unit =
            d.op == Opcode::DifInsert ? blk : blk + tup;
        std::uint64_t out_unit =
            d.op == Opcode::DifStrip ? blk : blk + tup;
        const bool has_dst = d.op != Opcode::DifCheck;
        // Blocks resolve directly into backing unless the source and
        // destination ranges alias (then later reads must observe
        // earlier writes in legacy order, which the buffered path
        // reproduces).
        const bool aliased = has_dst &&
            rangesOverlap(d.src, eff_blocks * in_unit, d.dst,
                          eff_blocks * out_unit);
        std::uint8_t *in_buf = ensure(bufA, in_unit);
        std::uint8_t *out_buf = ensure(bufB, out_unit);
        DifCheckResult chk;
        for (std::uint64_t b = 0; b < eff_blocks && chk.ok; ++b) {
            const Addr src_va = d.src + b * in_unit;
            const Addr dst_va = d.dst + b * out_unit;
            const std::uint8_t *in = aliased
                ? nullptr
                : as.contiguousConst(src_va, in_unit, "read");
            if (!in) {
                as.read(src_va, in_buf, in_unit);
                in = in_buf;
            }
            auto tag32 = static_cast<std::uint32_t>(b);
            switch (d.op) {
              case Opcode::DifInsert:
              case Opcode::DifStrip: {
                std::uint8_t *outp = aliased
                    ? nullptr
                    : as.contiguous(dst_va, out_unit, "write");
                const bool direct = outp != nullptr;
                if (!direct)
                    outp = out_buf;
                if (d.op == Opcode::DifInsert)
                    difInsert(in, outp, blk, 1, d.appTag,
                              d.refTag + tag32);
                else
                    difStrip(in, outp, blk, 1);
                if (!direct)
                    as.write(dst_va, out_buf, out_unit);
                break;
              }
              case Opcode::DifCheck:
                chk = difCheck(in, blk, 1, d.appTag,
                               d.refTag + tag32);
                if (!chk.ok)
                    chk.failedBlock = b;
                break;
              case Opcode::DifUpdate:
                // Staged: a failed check must leave the block's
                // destination untouched.
                chk = difUpdate(in, out_buf, blk, 1, d.appTag,
                                d.refTag + tag32, d.newAppTag,
                                d.newRefTag + tag32);
                if (chk.ok) {
                    as.write(dst_va, out_buf, out_unit);
                } else {
                    chk.failedBlock = b;
                }
                break;
              default:
                break;
            }
        }
        if (!chk.ok) {
            out.result = 1;
            out.bytesCompleted = chk.failedBlock * blk;
        } else {
            out.bytesCompleted = eff_blocks * blk;
        }
        break;
      }
      case Opcode::CacheFlush:
        // Handled entirely in the timing pass below.
        out.bytesCompleted = eff_size;
        break;
      default:
        out.status = CompletionRecord::Status::Unsupported;
        break;
    }

    // ---- Timing: stream the chunks --------------------------------
    const bool llc_hint = d.wantsCacheControl();
    const int owner = dev.cacheOwnerId();
    CacheModel &llc = mem.cache();

    if (d.op == Opcode::CacheFlush) {
        Addr va = streams[0].va;
        Tick pace = sim.now();
        std::uint64_t remaining = eff_size;
        Addr cursor = va;
        while (remaining > 0) {
            std::uint64_t run =
                std::min<std::uint64_t>(remaining, p.chunkBytes);
            Addr pa0 = as.translate(cursor);
            std::uint64_t wb =
                llc.flushSpan(pa0, run).writebackBytes;
            Tick link_end = 0;
            if (wb > 0) {
                int nid = MemSystem::paNode(pa0);
                link_end = mem.occupyWrite(nid, dev.socket(), wb);
            }
            Tick lines = linesCovered(pa0, run);
            pace = std::max(pace + lines * p.flushPerLine, link_end);
            cursor += run;
            remaining -= run;
        }
        if (sim.now() < pace)
            co_await sim.delayUntil(pace);
    } else {
        // Primary stream length drives the engine pacing.
        std::uint64_t primary = 0;
        for (const Stream &s : streams)
            primary = std::max(primary, s.len);

        int src_node = 0;
        bool first_is_hit = false;
        bool has_read = false;
        for (const Stream &s : streams) {
            if (!s.write && s.len > 0) {
                has_read = true;
                Addr pa = as.translate(s.va);
                src_node = MemSystem::paNode(pa);
                first_is_hit = llc.probe(lineAlignDown(pa));
                break;
            }
        }
        if (!has_read && !streams.empty() && streams[0].len > 0)
            src_node = MemSystem::paNode(as.translate(streams[0].va));

        const double rate = effectiveRate(src_node);
        Tick pace = sim.now();

        for (std::uint64_t off = 0; off < primary;
             off += p.chunkBytes) {
            std::uint64_t run =
                std::min<std::uint64_t>(p.chunkBytes, primary - off);
            // Page walks overlap the stream; they surface only when
            // slower than the data they translate for.
            Tick chunk_walk = primary
                ? static_cast<Tick>(
                      static_cast<double>(walk_cost) *
                      static_cast<double>(run) /
                      static_cast<double>(primary))
                : 0;
            Tick link_end = 0;
            for (Stream &s : streams) {
                if (s.len == 0)
                    continue;
                // Proportional slice of this stream for the chunk.
                std::uint64_t s_beg = off * s.len / primary;
                std::uint64_t s_end = (off + run) * s.len / primary;
                if (s_end <= s_beg)
                    continue;
                std::uint64_t slice = s_end - s_beg;
                Addr va = s.va + s_beg;

                // Walk the slice page by page (PAs are contiguous
                // only within a page). The stream's last translation
                // is cached by value — revalidated by range, so a
                // map() elsewhere between co_awaits cannot leave a
                // dangling pointer here — and a chunk usually stays
                // within one page, so the search is skipped.
                std::uint64_t left = slice;
                Addr cursor = va;
                while (left > 0) {
                    if (cursor - s.mapVa >= s.mapSize) {
                        const PageTable::Mapping *m =
                            as.pageTable().find(cursor);
                        panic_if(!m || !m->present,
                                 "stream touches untranslated page");
                        s.mapVa = m->vaBase;
                        s.mapPa = m->paBase;
                        s.mapSize = m->size;
                    }
                    std::uint64_t in_page =
                        s.mapVa + s.mapSize - cursor;
                    std::uint64_t seg = std::min(left, in_page);
                    Addr pa = s.mapPa + (cursor - s.mapVa);
                    int nid = MemSystem::paNode(pa);

                    if (!s.write) {
                        // One span call classifies every line the
                        // segment covers (DESIGN.md §13).
                        CacheModel::SpanResult sr =
                            llc.probeSpan(pa, seg);
                        link_end = std::max(
                            link_end, dev.fabricRead().occupy(seg));
                        if (sr.missBytes > 0) {
                            link_end = std::max(
                                link_end,
                                mem.occupyRead(nid, dev.socket(),
                                               sr.missBytes));
                        }
                        if (sr.hitBytes > 0) {
                            link_end = std::max(
                                link_end,
                                mem.llcLink().occupy(sr.hitBytes));
                        }
                        bytesReadCtr.add(seg);
                    } else {
                        // Allocating (DDIO) fill or non-allocating
                        // eviction, per the cache-control hint; the
                        // aggregate dirty-victim writeback is charged
                        // to the last victim's node below, as the
                        // per-line loop's single occupy did.
                        CacheModel::SpanResult sr = llc_hint
                            ? llc.fillSpan(pa, seg, owner)
                            : llc.evictSpan(pa, seg);
                        std::uint64_t evict_wb = sr.writebackBytes;
                        Addr evict_node_pa = sr.lastEvictedPa;
                        link_end = std::max(
                            link_end, dev.fabricWrite().occupy(seg));
                        if (llc_hint) {
                            link_end = std::max(
                                link_end, mem.llcLink().occupy(seg));
                        } else {
                            link_end = std::max(
                                link_end,
                                mem.occupyWrite(nid, dev.socket(),
                                                seg));
                        }
                        if (evict_wb > 0) {
                            int vn = MemSystem::paNode(evict_node_pa);
                            link_end = std::max(
                                link_end,
                                mem.node(vn).writeLink.occupy(
                                    evict_wb));
                        }
                        bytesWrittenCtr.add(seg);
                    }
                    cursor += seg;
                    left -= seg;
                }
            }
            Tick step = std::max(transferTime(run, rate), chunk_walk);
            pace = std::max(pace + step, link_end);
            if (sim.now() < pace)
                co_await sim.delayUntil(pace);
        }

        // First-read fill latency is exposed in the completion time
        // (it pipelines with the next descriptor), handled below.
        if (has_read) {
            Tick first_lat = first_is_hit
                ? mem.cfg().llcLatency
                : mem.readLatencyOf(src_node, dev.socket());
            // Stash in xlate-free variable via publish extra latency.
            Tick end = finishAt(sim.now());
            if (sim.now() < end)
                co_await sim.delayUntil(end);
            busyTicks += sim.now() - start;
            ++descriptorsProcessed;
            publish(d, out, w.parent, first_lat);
            co_return;
        }
    }

    Tick end = finishAt(sim.now());
    if (sim.now() < end)
        co_await sim.delayUntil(end);
    busyTicks += sim.now() - start;
    ++descriptorsProcessed;
    publish(d, out, w.parent, 0);
}

CoTask
Engine::processBatch(Work w)
{
    Simulation &sim = dev.sim();
    const DsaParams &p = dev.params();
    WorkDescriptor d = w.desc;

    bool nested = false;
    if (d.batch) {
        for (const WorkDescriptor &sub : *d.batch)
            nested |= sub.op == Opcode::Batch;
    }
    if (!d.batch || d.batch->empty() ||
        d.batch->size() > p.maxBatchSize || nested) {
        // The DSA spec forbids batch descriptors inside a batch.
        co_await sim.delay(p.batchOverhead);
        if (d.completion && !d.completion->isDone())
            d.completion->complete(
                CompletionRecord::Status::Unsupported);
        co_return;
    }

    const std::uint64_t n = d.batch->size();
    // Fetch the descriptor array from memory (64 B per descriptor).
    co_await sim.delay(p.batchOverhead + n * p.batchPerDescriptorFetch);

    auto tracker = std::make_shared<BatchTracker>(sim, n);
    for (const WorkDescriptor &sub : *d.batch) {
        Work sw;
        sw.desc = sub;
        // Sub-descriptors inherit the batch's PASID if unset.
        if (sw.desc.pasid == 0)
            sw.desc.pasid = d.pasid;
        sw.enqueuedAt = sim.now();
        sw.parent = tracker;
        group.redispatch(sw);
    }
    ++batchesProcessed;
    watchBatch(d, tracker);
}

SimTask
Engine::watchBatch(WorkDescriptor d,
                   std::shared_ptr<BatchTracker> tracker)
{
    Simulation &sim = dev.sim();
    const std::uint64_t epoch0 = dev.resetEpoch();
    co_await tracker->latch.wait();
    co_await sim.delay(dev.params().completionWrite);
    if (d.completion && !d.completion->isDone()) {
        CompletionRecord::Status st =
            tracker->anyFailed ? CompletionRecord::Status::BatchError
                               : CompletionRecord::Status::Success;
        if (dev.resetEpoch() != epoch0)
            st = CompletionRecord::Status::Aborted;
        d.completion->complete(st);
    }
}

} // namespace dsasim
