/**
 * @file
 * Processing engine (PE): fetches descriptors from its group's
 * arbiter and executes them — translation through the device ATC and
 * IOMMU, chunked data streaming through the I/O fabric and memory
 * links, functional execution of the operation, and completion-record
 * publication. Batch descriptors are expanded and fanned back into
 * the group so that any free PE can pick the sub-descriptors up.
 */

#ifndef DSASIM_DSA_ENGINE_HH
#define DSASIM_DSA_ENGINE_HH

#include <cstdint>
#include <vector>

#include "dsa/group.hh"
#include "sim/stats.hh"
#include "sim/task.hh"

namespace dsasim
{

class DsaDevice;
class AddressSpace;

class Engine
{
  public:
    Engine(DsaDevice &device, Group &grp, int engine_id);

    /** Spawn the PE's processing loop (called by device enable). */
    void start();

    int engineId() const { return id; }

    /// @name Statistics.
    /// The data-path counters live in the telemetry registry
    /// (dsa<D>.eng<E>.*, DESIGN.md §15) and are read through the
    /// const accessors below; only engine-lifecycle bookkeeping
    /// stays as plain fields.
    /// @{
    std::uint64_t descriptorsProcessed = 0;
    std::uint64_t batchesProcessed = 0;
    std::uint64_t hangs = 0;          ///< injected engine hangs
    std::uint64_t injectedErrors = 0; ///< injected hw error statuses
    Tick busyTicks = 0;
    Tick stallTicks = 0; ///< time blocked on faults/translation

    std::uint64_t bytesRead() const { return bytesReadCtr.value(); }
    std::uint64_t
    bytesWritten() const
    {
        return bytesWrittenCtr.value();
    }
    std::uint64_t
    pageFaults() const
    {
        return pageFaultsCtr.value();
    }
    std::uint64_t atcMisses() const { return atcMissesCtr.value(); }
    /// @}

    /**
     * Checkpointable (sim/checkpoint.hh): the plain statistics
     * above. The registry-backed counters ride in
     * Simulation::State.stats (saved by dotted name); the processing
     * loop itself is rebuild-time state — a quiesced engine is
     * parked on its group's empty arbiter, exactly where a freshly
     * start()ed engine parks — and the scratch buffers are dead
     * outside a descriptor.
     */
    struct State
    {
        std::uint64_t descriptorsProcessed = 0;
        std::uint64_t batchesProcessed = 0;
        std::uint64_t hangs = 0;
        std::uint64_t injectedErrors = 0;
        Tick busyTicks = 0;
        Tick stallTicks = 0;
    };

    State
    saveState() const
    {
        return State{descriptorsProcessed, batchesProcessed,
                     hangs,                injectedErrors,
                     busyTicks,            stallTicks};
    }

    void
    restoreState(const State &st)
    {
        descriptorsProcessed = st.descriptorsProcessed;
        batchesProcessed = st.batchesProcessed;
        hangs = st.hangs;
        injectedErrors = st.injectedErrors;
        busyTicks = st.busyTicks;
        stallTicks = st.stallTicks;
    }

  private:
    SimTask run();
    CoTask process(Work w);

    /** Handle a batch descriptor: fetch, fan out, join, complete. */
    CoTask processBatch(Work w);
    SimTask watchBatch(WorkDescriptor desc,
                       std::shared_ptr<BatchTracker> tracker);

    struct XlateOutcome
    {
        /**
         * Engine-blocking time: page-fault service (the PE stall of
         * §4.3 that motivates multi-PE groups).
         */
        Tick faultStall = 0;
        /**
         * Page-walk/ATC-lookup time that the PE pipeline overlaps
         * with data streaming; only exposed when it exceeds the
         * transfer time of the data it covers.
         */
        Tick walkCost = 0;
        bool faulted = false;
        Addr faultVa = 0;
        std::uint64_t okBytes = 0; ///< prefix translatable w/o fault
    };

    /** Translate a VA range, honoring block-on-fault. */
    XlateOutcome translateRange(AddressSpace &as, Addr va,
                                std::uint64_t len, bool block_on_fault);

    /** Effective streaming rate given the group's read buffers. */
    double effectiveRate(int src_node) const;

    /** Grow @p buf to at least @p n bytes without re-zeroing. */
    static std::uint8_t *
    ensure(std::vector<std::uint8_t> &buf, std::uint64_t n)
    {
        if (buf.size() < n)
            buf.resize(n);
        return buf.data();
    }

    DsaDevice &dev;
    Group &group;
    const int id;

    // Registry-backed data-path counters (bound in the constructor;
    // mutated only through the Counter API — simlint's
    // counter-mutation rule enforces this).
    stats::Counter &bytesReadCtr;
    stats::Counter &bytesWrittenCtr;
    stats::Counter &pageFaultsCtr;
    stats::Counter &atcMissesCtr;

    // Per-engine staging buffers for the few operations that cannot
    // run zero-copy (overlapping copies, non-contiguous delta/DIF
    // inputs). run() awaits one process() at a time, so a single set
    // per engine is safe; grow-only reuse avoids the per-descriptor
    // allocate-and-zero the old scratch vectors paid.
    std::vector<std::uint8_t> bufA;
    std::vector<std::uint8_t> bufB;
};

} // namespace dsasim

#endif // DSASIM_DSA_ENGINE_HH
