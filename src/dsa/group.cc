#include "dsa/group.hh"

#include "sim/logging.hh"

namespace dsasim
{

std::optional<Work>
Group::arbitrate()
{
    ++serveClock;

    if (!internal.empty()) {
        Work w = std::move(internal.front());
        internal.pop_front();
        ++descriptorsArbitrated;
        return w;
    }

    // Anti-starvation (§3.2): a WQ left unserved for a long stretch
    // wins arbitration outright, regardless of priority.
    constexpr std::uint64_t starvation_bound = 16;
    WorkQueue *best = nullptr;
    for (WorkQueue *wq : wqs) {
        if (wq->empty())
            continue;
        if (serveClock - wq->lastServed > starvation_bound) {
            best = wq;
            break;
        }
        if (!best) {
            best = wq;
            continue;
        }
        // Higher priority wins; equal priority rotates by
        // least-recently-served.
        if (wq->priority > best->priority ||
            (wq->priority == best->priority &&
             wq->lastServed < best->lastServed)) {
            best = wq;
        }
    }
    if (!best)
        return std::nullopt;

    auto entry = best->dequeue();
    panic_if(!entry, "non-empty WQ failed to dequeue");
    best->lastServed = serveClock;
    ++descriptorsArbitrated;

    Work w;
    w.desc = std::move(entry->desc);
    w.enqueuedAt = entry->enqueuedAt;
    return w;
}

} // namespace dsasim
