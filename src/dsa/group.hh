/**
 * @file
 * Groups: the basic operational unit of DSA. A group binds a set of
 * work queues to a set of processing engines; the group arbiter
 * picks the next descriptor for a free engine, honoring WQ priority
 * while preventing starvation (§3.2).
 */

#ifndef DSASIM_DSA_GROUP_HH
#define DSASIM_DSA_GROUP_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "dsa/descriptor.hh"
#include "dsa/wq.hh"
#include "sim/sync.hh"

namespace dsasim
{

class DsaDevice;
class Engine;

/** Tracks a batch in flight: sub-descriptor fan-out and join. */
struct BatchTracker
{
    BatchTracker(Simulation &s, std::uint64_t count)
        : latch(s, count)
    {}

    Latch latch;
    bool anyFailed = false;
};

/** A unit of work dispatched to an engine. */
struct Work
{
    WorkDescriptor desc;
    Tick enqueuedAt = 0;
    /** Set for batch sub-descriptors: join + failure aggregation. */
    std::shared_ptr<BatchTracker> parent;
};

class Group
{
  public:
    Group(Simulation &s, DsaDevice &device, int group_id)
        : id(group_id), dev(device), pendingWork(s, 0)
    {}

    Group(const Group &) = delete;
    Group &operator=(const Group &) = delete;

    void attach(WorkQueue *wq) { wqs.push_back(wq); }
    void attach(Engine *e) { engines.push_back(e); }

    /**
     * Called by the device when a descriptor lands in one of this
     * group's WQs (after the dispatch latency) and by engines when a
     * batch fans out sub-descriptors.
     */
    void signalWork() { pendingWork.release(); }

    /** Engines block here until the arbiter has something for them. */
    auto awaitWork() { return pendingWork.acquire(); }

    /**
     * Group arbiter: batch sub-descriptors first (they already won
     * arbitration once), then the highest-priority non-empty WQ,
     * breaking ties by least-recently-served.
     */
    std::optional<Work> arbitrate();

    /** Fan a batch sub-descriptor back into the dispatch stage. */
    void
    redispatch(Work w)
    {
        internal.push_back(std::move(w));
        signalWork();
    }

    /**
     * Remove and return every queued batch sub-descriptor (device
     * disable/reset). The pending-work semaphore keeps its credits;
     * engines tolerate waking to an empty arbiter.
     */
    std::deque<Work>
    flushInternal()
    {
        std::deque<Work> flushed;
        flushed.swap(internal);
        return flushed;
    }

    const int id;
    DsaDevice &dev;

    std::vector<WorkQueue *> wqs;
    std::vector<Engine *> engines;

    /**
     * Device read buffers allocated to this group; bounds each
     * engine's sustainable read rate (bandwidth-delay product).
     */
    unsigned readBuffers = 0;

    std::uint64_t descriptorsArbitrated = 0;

    /**
     * Descriptors currently being processed by this group's engines
     * (used by the Drain operation and telemetry).
     */
    std::uint64_t inflight = 0;

    /** Work queued anywhere in this group (WQs + batch redispatch). */
    bool
    hasQueuedWork() const
    {
        if (!internal.empty())
            return true;
        for (const WorkQueue *wq : wqs)
            if (!wq->empty())
                return true;
        return false;
    }

    /**
     * True when this group holds no work in any form: nothing
     * queued, nothing on an engine, and no banked semaphore credit
     * that would wake an engine later. The snapshot precondition.
     */
    bool
    quiescent() const
    {
        return !hasQueuedWork() && inflight == 0 &&
               pendingWork.available() == 0;
    }

    /** Banked arbiter credits (diagnostics for the quiesce fatal). */
    std::uint64_t pendingCredits() const
    {
        return pendingWork.available();
    }

    /**
     * Checkpointable (sim/checkpoint.hh): arbiter clock and
     * counters. Engines parked on the pending-work semaphore are
     * rebuild-time state (enable() re-parks them); queued work and
     * semaphore credits must be zero at capture (quiescent()), which
     * DsaDevice::saveState enforces with a fatal.
     */
    struct State
    {
        unsigned readBuffers = 0;
        std::uint64_t descriptorsArbitrated = 0;
        std::uint64_t serveClock = 0;
    };

    State
    saveState() const
    {
        return State{readBuffers, descriptorsArbitrated, serveClock};
    }

    void
    restoreState(const State &st)
    {
        readBuffers = st.readBuffers;
        descriptorsArbitrated = st.descriptorsArbitrated;
        serveClock = st.serveClock;
    }

  private:
    Semaphore pendingWork;
    std::deque<Work> internal; ///< batch sub-descriptors
    std::uint64_t serveClock = 0;
};

} // namespace dsasim

#endif // DSASIM_DSA_GROUP_HH
