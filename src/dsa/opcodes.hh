/**
 * @file
 * DSA operation opcodes (Table 1 of the paper, aligned with the DSA
 * architecture specification's operation set).
 */

#ifndef DSASIM_DSA_OPCODES_HH
#define DSASIM_DSA_OPCODES_HH

#include <cstdint>

#include "sim/fault_injector.hh"

namespace dsasim
{

enum class Opcode : std::uint8_t
{
    Nop,
    Batch,          ///< process an array of work descriptors (F2)
    Drain,          ///< completes once prior descriptors complete
    Memmove,        ///< Memory Copy
    Fill,           ///< Memory Fill (8-byte pattern)
    Compare,        ///< Memory Compare (two buffers)
    ComparePattern, ///< Compare against an 8-byte pattern
    CreateDelta,    ///< Create Delta Record
    ApplyDelta,     ///< Apply Delta Record
    Dualcast,       ///< copy to two destinations
    CrcGen,         ///< CRC32-C over source data
    CopyCrc,        ///< copy + CRC32-C
    DifCheck,
    DifInsert,
    DifStrip,
    DifUpdate,
    CacheFlush,     ///< evict an address range from the caches
};

inline const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Nop: return "nop";
      case Opcode::Batch: return "batch";
      case Opcode::Drain: return "drain";
      case Opcode::Memmove: return "memmove";
      case Opcode::Fill: return "fill";
      case Opcode::Compare: return "compare";
      case Opcode::ComparePattern: return "compare-pattern";
      case Opcode::CreateDelta: return "create-delta";
      case Opcode::ApplyDelta: return "apply-delta";
      case Opcode::Dualcast: return "dualcast";
      case Opcode::CrcGen: return "crc-gen";
      case Opcode::CopyCrc: return "copy-crc";
      case Opcode::DifCheck: return "dif-check";
      case Opcode::DifInsert: return "dif-insert";
      case Opcode::DifStrip: return "dif-strip";
      case Opcode::DifUpdate: return "dif-update";
      case Opcode::CacheFlush: return "cache-flush";
    }
    return "?";
}

/** True for operations that write no destination data. */
inline bool
opcodeReadOnly(Opcode op)
{
    switch (op) {
      case Opcode::Compare:
      case Opcode::ComparePattern:
      case Opcode::CrcGen:
      case Opcode::DifCheck:
      case Opcode::CacheFlush:
      case Opcode::Nop:
      case Opcode::Drain:
        return true;
      default:
        return false;
    }
}

/**
 * Static-init registration of the opcode-name table with the
 * sim-layer fault injector (layer-hygiene keeps sim/ from including
 * dsa/, so the dependency points upward through this hook). Runs
 * before main() in every binary that links the device model.
 */
inline const bool faultOpcodeNamesRegistered = [] {
    setFaultOpcodeNames(
        +[](int op) { return opcodeName(static_cast<Opcode>(op)); },
        static_cast<int>(Opcode::CacheFlush) + 1);
    return true;
}();

} // namespace dsasim

#endif // DSASIM_DSA_OPCODES_HH
