/**
 * @file
 * DSA device calibration constants.
 *
 * Anchored to the paper's first-order observations:
 *  - single-PE / single-device streaming peak ≈ 30 GB/s (I/O fabric)
 *  - synchronous offload breaks even with a core at ≈ 4-10 KB
 *  - asynchronous offload breaks even at ≈ 256 B
 *  - ENQCMD's non-posted round trip makes one thread on an SWQ
 *    equivalent to a batch-of-1 stream (Fig. 9)
 */

#ifndef DSASIM_DSA_PARAMS_HH
#define DSASIM_DSA_PARAMS_HH

#include <cstddef>
#include <cstdint>

#include "sim/ticks.hh"

namespace dsasim
{

struct DsaParams
{
    /// @name Structural limits (per device).
    /// @{
    unsigned maxGroups = 4;
    unsigned maxEngines = 4;
    unsigned maxWqs = 8;
    unsigned wqCapacityTotal = 128; ///< WQ entries shared by all WQs
    unsigned readBuffers = 96;      ///< device read buffers (QoS, §3.4)
    std::uint64_t maxTransferSize = 1ull << 31;
    std::uint32_t maxBatchSize = 1024;
    /// @}

    /// @name Data-path rates.
    /// @{
    double engineGBps = 30.0; ///< per-PE streaming rate
    double fabricGBps = 30.0; ///< device I/O fabric, each direction
    /// @}

    /// @name Submission-instruction costs (§3.3).
    /// @{
    Tick submitMovdirCost = fromNs(40);  ///< MOVDIR64B, core side
    Tick submitFlight = fromNs(30);      ///< posted write to portal
    Tick enqcmdRoundTrip = fromNs(280);  ///< ENQCMD non-posted RTT
    /// @}

    /// @name Descriptor lifecycle latencies.
    /// @{
    Tick dispatchLatency = fromNs(100); ///< WQ head -> PE dispatch
    Tick engineSetup = fromNs(60);      ///< decode/start, per desc
    Tick descriptorGap = fromNs(120);   ///< per-desc PE occupancy floor
    Tick completionWrite = fromNs(30);
    Tick interruptLatency = fromUs(2);
    /// @}

    /// @name Batch engine (F2).
    /// @{
    Tick batchOverhead = fromNs(80);
    Tick batchPerDescriptorFetch = fromNs(10);
    /// @}

    /// @name Address translation (F1).
    /// @{
    std::size_t atcEntries = 1024;
    Tick atcHitLatency = fromNs(2);
    /** Concurrent page walks the PE pipeline can keep in flight. */
    unsigned walkParallelism = 4;
    /// @}

    /** Granule in which a PE streams data (read-buffer chunk). */
    std::uint64_t chunkBytes = 4096;

    /** Per-line cost of the Cache Flush operation. */
    Tick flushPerLine = fromNs(1.0);

    bool operator==(const DsaParams &) const = default;
};

} // namespace dsasim

#endif // DSASIM_DSA_PARAMS_HH
