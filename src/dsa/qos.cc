#include "dsa/qos.hh"

#include <algorithm>

#include "sim/stats.hh"

namespace dsasim
{

const char *
qosClassName(QosClass c)
{
    switch (c) {
      case QosClass::Guaranteed: return "guaranteed";
      case QosClass::Standard: return "standard";
      case QosClass::Opportunistic: return "opportunistic";
    }
    return "?";
}

WqAdmission::Entry &
WqAdmission::entryFor(Pasid tenant, Tick now)
{
    auto [it, inserted] = tenants.try_emplace(tenant);
    if (inserted) {
        it->second.cls = cfg.defaultClass;
        if (cfg.bucket.ratePerSec > 0) {
            it->second.bucket = TokenBucket(cfg.bucket, now);
            it->second.hasBucket = true;
        }
    }
    return it->second;
}

void
WqAdmission::setClass(Pasid tenant, QosClass c)
{
    entryFor(tenant, 0).cls = c;
}

void
WqAdmission::setBucket(Pasid tenant, TokenBucket::Config c)
{
    Entry &e = entryFor(tenant, 0);
    e.bucket = TokenBucket(c, 0);
    e.hasBucket = c.ratePerSec > 0;
}

std::size_t
WqAdmission::classLimit(QosClass c, std::size_t threshold) const
{
    double frac = 1.0;
    switch (c) {
      case QosClass::Guaranteed:
        return threshold;
      case QosClass::Standard:
        frac = cfg.standardFraction;
        break;
      case QosClass::Opportunistic:
        frac = cfg.opportunisticFraction;
        break;
    }
    auto limit = static_cast<std::size_t>(
        static_cast<double>(threshold) * frac);
    return std::max<std::size_t>(1, std::min(limit, threshold));
}

WqAdmission::Verdict
WqAdmission::admit(Pasid tenant, Tick now, std::size_t occupancy,
                   std::size_t threshold)
{
    Entry &e = entryFor(tenant, now);
    if (occupancy >= classLimit(e.cls, threshold)) {
        ++e.stats.busy;
        ++totalBusy;
        return Verdict::Busy;
    }
    if (e.hasBucket && !e.bucket.tryTake(now)) {
        ++e.stats.throttled;
        ++totalThrottled;
        return Verdict::Throttle;
    }
    ++e.stats.admitted;
    ++totalAdmitted;
    return Verdict::Admit;
}

void
WqAdmission::registerStats(stats::Registry &reg,
                           const std::string &prefix) const
{
    reg.counter(prefix + "admitted",
                "submissions passed through to the portal",
                [this] { return totalAdmitted; });
    reg.counter(prefix + "throttled",
                "submissions bounced by a tenant token bucket",
                [this] { return totalThrottled; });
    reg.counter(prefix + "busy",
                "submissions bounced at a class occupancy limit",
                [this] { return totalBusy; });
}

const WqAdmission::TenantStats &
WqAdmission::stats(Pasid tenant) const
{
    static const TenantStats zero;
    auto it = tenants.find(tenant);
    return it == tenants.end() ? zero : it->second.stats;
}

} // namespace dsasim
