/**
 * @file
 * WQ-level admission control and QoS for shared (ENQCMD) work
 * queues.
 *
 * The paper's SWQ threshold (idxd's `threshold` attribute, Fig. 9)
 * is a single global admission limit: one aggressive tenant can keep
 * the queue at the threshold and starve everyone. A WqAdmission
 * policy sits in front of the portal and decides per PASID:
 *
 *  - a per-tenant token bucket bounds each tenant's sustained
 *    submission rate (Throttle verdict: surfaces as ENQCMD Retry,
 *    exactly like a full queue, so clients need no new protocol);
 *  - QoS classes map to per-class occupancy limits, mirroring how
 *    idxd partitions a SWQ's threshold between kernel users:
 *    Opportunistic tenants stop being admitted at a lower occupancy
 *    than Standard, which stops below Guaranteed (Busy verdict).
 *
 * All accounting is integer tick math — refills carry an exact
 * remainder — so verdicts are a pure function of the (deterministic)
 * query sequence and never of host state. The policy object is
 * installed on a WorkQueue by the serving layer and is deliberately
 * outside the checkpoint boundary: snapshots quiesce the platform
 * first, and a quiesced bucket refills from its timestamp on the
 * next query.
 */

#ifndef DSASIM_DSA_QOS_HH
#define DSASIM_DSA_QOS_HH

#include <cstdint>
#include <map>
#include <string>

#include "mem/types.hh"
#include "sim/ticks.hh"

namespace dsasim
{

namespace stats { class Registry; }

/** Integer-exact token bucket (tokens = submission credits). */
class TokenBucket
{
  public:
    struct Config
    {
        std::uint64_t ratePerSec = 0; ///< sustained tokens/second
        std::uint64_t burst = 1;      ///< bucket capacity
    };

    TokenBucket() = default;

    explicit TokenBucket(Config c, Tick now = 0)
        : rate(c.ratePerSec), burst(c.burst), tokens(c.burst),
          last(now)
    {}

    /** Take @p n tokens at @p now; false when the bucket is short. */
    bool
    tryTake(Tick now, std::uint64_t n = 1)
    {
        refill(now);
        if (tokens < n)
            return false;
        tokens -= n;
        return true;
    }

    /** Balance after refilling to @p now. */
    std::uint64_t
    available(Tick now)
    {
        refill(now);
        return tokens;
    }

  private:
    void
    refill(Tick now)
    {
        if (now <= last) {
            last = now > last ? now : last;
            return;
        }
        using u128 = unsigned __int128;
        // Exact integer refill: the sub-token remainder carries in
        // numerator units so no fraction is ever lost to rounding.
        u128 num = static_cast<u128>(now - last) * rate + carry;
        std::uint64_t add =
            static_cast<std::uint64_t>(num / ticksPerSec);
        carry = static_cast<std::uint64_t>(num % ticksPerSec);
        tokens = tokens + add > burst ? burst : tokens + add;
        last = now;
    }

    std::uint64_t rate = 0;
    std::uint64_t burst = 1;
    std::uint64_t tokens = 1;
    Tick last = 0;
    std::uint64_t carry = 0; ///< refill remainder, in rate*tick units
};

/** Priority class of a tenant at a shared WQ portal. */
enum class QosClass : std::uint8_t
{
    Guaranteed,    ///< admitted up to the full SWQ threshold
    Standard,      ///< admitted up to standardLimit
    Opportunistic, ///< admitted up to opportunisticLimit
};

const char *qosClassName(QosClass c);

/** Per-tenant admission policy for one shared WQ. */
class WqAdmission
{
  public:
    struct Config
    {
        /** Default per-tenant rate limit (0 rate = no bucket). */
        TokenBucket::Config bucket{};

        /**
         * Class occupancy limits as a fraction of the WQ threshold;
         * Guaranteed always gets the full threshold.
         */
        double standardFraction = 0.875;
        double opportunisticFraction = 0.5;

        /** Class of tenants with no explicit assignment. */
        QosClass defaultClass = QosClass::Standard;
    };

    enum class Verdict : std::uint8_t
    {
        Admit,    ///< pass through to the portal occupancy check
        Throttle, ///< token bucket empty -> ENQCMD Retry
        Busy,     ///< class occupancy limit reached -> ENQCMD Retry
    };

    WqAdmission() = default;
    explicit WqAdmission(Config c) : cfg(c) {}

    void setClass(Pasid tenant, QosClass c);
    void setBucket(Pasid tenant, TokenBucket::Config c);

    /**
     * Decide admission for @p tenant at @p now given the WQ's
     * current @p occupancy and configured @p threshold. Verdicts
     * other than Admit surface to the submitter as ENQCMD Retry.
     */
    Verdict admit(Pasid tenant, Tick now, std::size_t occupancy,
                  std::size_t threshold);

    /// @name Statistics.
    /// @{
    struct TenantStats
    {
        std::uint64_t admitted = 0;
        std::uint64_t throttled = 0;
        std::uint64_t busy = 0;
    };

    const TenantStats &stats(Pasid tenant) const;

    std::uint64_t totalAdmitted = 0;
    std::uint64_t totalThrottled = 0;
    std::uint64_t totalBusy = 0;

    /**
     * Publish this policy's aggregate verdict counters in @p reg
     * under @p prefix (e.g. "socket0.dsa0.wq0.qos."): admitted /
     * throttled / busy as supplier-backed counters (DESIGN.md §15).
     */
    void registerStats(stats::Registry &reg,
                       const std::string &prefix) const;
    /// @}

    const Config &config() const { return cfg; }

  private:
    struct Entry
    {
        TokenBucket bucket;
        bool hasBucket = false;
        QosClass cls;
        TenantStats stats;
    };

    Entry &entryFor(Pasid tenant, Tick now);
    std::size_t classLimit(QosClass c, std::size_t threshold) const;

    Config cfg;
    // Ordered map: tenant lookup only (never iterated on a
    // tick-affecting path), but deterministic by construction.
    std::map<Pasid, Entry> tenants;
};

} // namespace dsasim

#endif // DSASIM_DSA_QOS_HH
