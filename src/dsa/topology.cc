#include "dsa/topology.hh"

#include "dsa/device.hh"
#include "dsa/engine.hh"
#include "dsa/group.hh"
#include "sim/logging.hh"

namespace dsasim
{

DsaTopology
DsaTopology::basic(unsigned wq_size, unsigned engine_count,
                   WorkQueue::Mode mode)
{
    DsaTopology t;
    t.groups.push_back(GroupSpec{});
    t.wqs.push_back(WqSpec{0, mode, wq_size, 0, 0});
    t.engines.assign(engine_count, 0);
    return t;
}

DsaTopology
DsaTopology::full()
{
    DsaTopology t;
    for (int g = 0; g < 4; ++g) {
        t.groups.push_back(GroupSpec{});
        t.wqs.push_back(
            WqSpec{g, WorkQueue::Mode::Dedicated, 16, 0, 0});
        t.wqs.push_back(WqSpec{g, WorkQueue::Mode::Shared, 16, 0, 0});
        t.engines.push_back(g);
    }
    return t;
}

DsaTopology
DsaTopology::of(const DsaDevice &dev)
{
    DsaTopology t;
    t.enableDevice = dev.enabled();
    for (std::size_t g = 0; g < dev.groupCount(); ++g)
        t.groups.push_back(GroupSpec{dev.group(g).readBuffers});
    for (std::size_t w = 0; w < dev.wqCount(); ++w) {
        const WorkQueue &wq = dev.wq(w);
        panic_if(!wq.group, "WQ %d belongs to no group", wq.id);
        t.wqs.push_back(WqSpec{wq.group->id, wq.mode, wq.size,
                               wq.priority, wq.threshold});
    }
    t.engines.assign(dev.engineCount(), 0);
    for (std::size_t g = 0; g < dev.groupCount(); ++g) {
        for (const Engine *e : dev.group(g).engines)
            t.engines[static_cast<std::size_t>(e->engineId())] =
                dev.group(g).id;
    }
    return t;
}

void
DsaTopology::apply(DsaDevice &dev) const
{
    fatal_if(dev.groupCount() != 0 || dev.wqCount() != 0 ||
                 dev.engineCount() != 0,
             "DsaTopology::apply: device %d is already configured",
             dev.deviceId());
    for (const GroupSpec &gs : groups) {
        Group &g = dev.addGroup();
        if (gs.readBuffers != 0)
            dev.setGroupReadBuffers(g, gs.readBuffers);
    }
    for (const WqSpec &ws : wqs) {
        fatal_if(ws.group < 0 ||
                     static_cast<std::size_t>(ws.group) >=
                         dev.groupCount(),
                 "DsaTopology::apply: WQ names group %d of %zu",
                 ws.group, dev.groupCount());
        dev.addWorkQueue(dev.group(static_cast<std::size_t>(ws.group)),
                         ws.mode, ws.size, ws.priority, ws.threshold);
    }
    for (int eg : engines) {
        fatal_if(eg < 0 ||
                     static_cast<std::size_t>(eg) >= dev.groupCount(),
                 "DsaTopology::apply: engine names group %d of %zu",
                 eg, dev.groupCount());
        dev.addEngine(dev.group(static_cast<std::size_t>(eg)));
    }
    if (enableDevice)
        dev.enable();
}

} // namespace dsasim
