/**
 * @file
 * DsaTopology: a declarative description of a device's group / work
 * queue / engine configuration — the accel-config half of a device's
 * identity, separated from its runtime state.
 *
 * A Platform is fully described by its PlatformConfig once the
 * topology lives here (PlatformConfig::dsaTopology applies one
 * topology to every DSA device at construction), which is what lets
 * Snapshot::fork() rebuild devices from configuration and then
 * restore their plain-data runtime state on top (DESIGN.md §10).
 *
 * Identifiers are positional: apply() creates all groups, then the
 * work queues in WQ-id order, then the engines in engine-id order,
 * so the ids a device assigns by creation order match the indices
 * recorded here. of() captures the same representation from an
 * already-configured device, so `of(dev)` → `apply(fresh)` is an
 * exact topological clone regardless of the call order the original
 * configuration code used.
 */

#ifndef DSASIM_DSA_TOPOLOGY_HH
#define DSASIM_DSA_TOPOLOGY_HH

#include <cstdint>
#include <vector>

#include "dsa/wq.hh"

namespace dsasim
{

class DsaDevice;

struct DsaTopology
{
    struct GroupSpec
    {
        /** 0 = share the unclaimed remainder at enable() time. */
        unsigned readBuffers = 0;

        bool operator==(const GroupSpec &) const = default;
    };

    struct WqSpec
    {
        int group = 0; ///< owning group index
        WorkQueue::Mode mode = WorkQueue::Mode::Dedicated;
        unsigned size = 32;
        unsigned priority = 0;
        unsigned threshold = 0; ///< 0 = defaults to size

        bool operator==(const WqSpec &) const = default;
    };

    std::vector<GroupSpec> groups;
    std::vector<WqSpec> wqs;
    /** One entry per engine: the owning group index, in id order. */
    std::vector<int> engines;
    /** Call DsaDevice::enable() after building. */
    bool enableDevice = true;

    bool operator==(const DsaTopology &) const = default;

    /** No topology configured (Platform leaves the device bare). */
    bool empty() const { return groups.empty(); }

    /**
     * The default single-group shape most benchmarks use: one group,
     * one WQ of @p wq_size entries in @p mode, @p engine_count
     * engines, enabled.
     */
    static DsaTopology
    basic(unsigned wq_size = 32, unsigned engine_count = 1,
          WorkQueue::Mode mode = WorkQueue::Mode::Dedicated);

    /**
     * The fully-populated shape (the paper's whole-device setups):
     * four groups, each with one dedicated and one shared 16-entry
     * WQ and one engine, enabled.
     */
    static DsaTopology full();

    /** Capture the topology of a configured device. */
    static DsaTopology of(const DsaDevice &dev);

    /** Build this topology onto a freshly constructed device. */
    void apply(DsaDevice &dev) const;
};

} // namespace dsasim

#endif // DSASIM_DSA_TOPOLOGY_HH
