/**
 * @file
 * Work queues: on-device descriptor storage, configured as either
 * dedicated (single software client, MOVDIR64B submission) or shared
 * (multiple clients, ENQCMD submission with a retry status), with a
 * QoS priority consumed by the group arbiter (F3).
 */

#ifndef DSASIM_DSA_WQ_HH
#define DSASIM_DSA_WQ_HH

#include <cstdint>
#include <deque>
#include <optional>

#include "dsa/descriptor.hh"
#include "sim/logging.hh"
#include "sim/ticks.hh"

namespace dsasim
{

class Group;
class WqAdmission;

class WorkQueue
{
  public:
    enum class Mode : std::uint8_t
    {
        Dedicated, ///< DWQ: one client, posted MOVDIR64B submission
        Shared,    ///< SWQ: many clients, non-posted ENQCMD
    };

    struct Entry
    {
        WorkDescriptor desc;
        Tick enqueuedAt;
    };

    WorkQueue(int wq_id, Mode wq_mode, unsigned wq_size,
              unsigned wq_priority, unsigned wq_threshold = 0)
        : id(wq_id), mode(wq_mode), size(wq_size),
          priority(wq_priority),
          threshold(wq_threshold ? wq_threshold : wq_size)
    {}

    bool full() const { return entries.size() >= size; }

    /**
     * SWQ admission limit for ENQCMD submitters (idxd's `threshold`
     * attribute): entries above it are reserved for privileged
     * ENQCMDS use. Equal to `size` unless configured lower.
     */
    bool
    aboveThreshold() const
    {
        return entries.size() >= threshold;
    }
    bool empty() const { return entries.empty(); }
    std::size_t occupancy() const { return entries.size(); }

    /** Place a descriptor; returns false when the queue is full. */
    bool
    enqueue(const WorkDescriptor &d, Tick now)
    {
        if (full()) {
            ++rejected;
            return false;
        }
        entries.push_back({d, now});
        ++accepted;
        return true;
    }

    std::optional<Entry>
    dequeue()
    {
        if (entries.empty())
            return std::nullopt;
        Entry e = std::move(entries.front());
        entries.pop_front();
        return e;
    }

    /**
     * Remove and return every queued entry (device disable/reset:
     * the WQ is flushed and its descriptors complete with an abort
     * status).
     */
    std::deque<Entry>
    drainAll()
    {
        std::deque<Entry> flushed;
        flushed.swap(entries);
        flushedTotal += flushed.size();
        return flushed;
    }

    /**
     * Checkpointable (sim/checkpoint.hh): arbiter bookkeeping and
     * counters. Queued entries are deliberately NOT state — they
     * hold host pointers to live completion records, so a snapshot
     * refuses to capture a non-empty WQ (the quiesce rule).
     */
    struct State
    {
        std::uint64_t lastServed = 0;
        std::uint64_t accepted = 0;
        std::uint64_t rejected = 0;
        std::uint64_t flushedTotal = 0;
    };

    State
    saveState() const
    {
        fatal_if(!entries.empty(),
                 "snapshot of WQ %d with %zu queued descriptor(s) — "
                 "drain the device first (Platform::quiesce())",
                 id, entries.size());
        return State{lastServed, accepted, rejected, flushedTotal};
    }

    void
    restoreState(const State &st)
    {
        lastServed = st.lastServed;
        accepted = st.accepted;
        rejected = st.rejected;
        flushedTotal = st.flushedTotal;
    }

    const int id;
    const Mode mode;
    const unsigned size;
    const unsigned priority; ///< larger = preferred by the arbiter
    const unsigned threshold;

    Group *group = nullptr;

    /**
     * Optional per-tenant admission policy consulted by the portal
     * for Shared WQs (dsa/qos.hh). Non-owning and outside the
     * checkpoint boundary: the installing layer (serving, bench)
     * owns its lifetime and policy state.
     */
    WqAdmission *admission = nullptr;

    /** Arbiter bookkeeping: last tick this WQ was served. */
    std::uint64_t lastServed = 0;

    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t flushedTotal = 0; ///< entries aborted by a flush

  private:
    std::deque<Entry> entries;
};

} // namespace dsasim

#endif // DSASIM_DSA_WQ_HH
