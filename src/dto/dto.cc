#include "dto/dto.hh"

namespace dsasim
{

Dto::Dto(dml::Executor &exec, SwKernels &k, Config cfg)
    : Dto(exec, k, cfg,
          exec.simulation().stats().scope("dto") + ".")
{}

Dto::Dto(dml::Executor &exec, SwKernels &k, Config cfg,
         const std::string &scope)
    : executor(exec), kernels(k), config(cfg),
      fallbackPageFaultCtr(exec.simulation().stats().counter(
          scope + "fallback_page_fault",
          "offloads redone on CPU after a partial completion")),
      fallbackHwErrorCtr(exec.simulation().stats().counter(
          scope + "fallback_hw_error",
          "offloads redone on CPU after a read/write/decode error")),
      fallbackAbortedCtr(exec.simulation().stats().counter(
          scope + "fallback_aborted",
          "offloads redone on CPU after a reset/watchdog abort")),
      fallbackQueueCtr(exec.simulation().stats().counter(
          scope + "fallback_queue",
          "offloads redone on CPU after WQ overflow or queue-full")),
      fallbackOtherCtr(exec.simulation().stats().counter(
          scope + "fallback_other",
          "offloads redone on CPU for any other cause"))
{}

CoTask
Dto::dispatch(Core &core, WorkDescriptor d, std::uint64_t n,
              int *cmp_result)
{
    ++calls;
    dml::OpResult res;
    if (n >= config.threshold) {
        // Synchronous offload, no block-on-fault: faults fall back.
        d.flags = config.cacheControl ? descflags::cacheControl : 0;
        co_await executor.executeHardware(core, d, res);
        if (res.status == CompletionRecord::Status::Success) {
            ++offloaded;
            bytesOffloaded += n;
            if (cmp_result)
                *cmp_result = res.result == 0 ? 0 : 1;
            co_return;
        }
        // Any non-success degrades to the CPU — libc semantics leave
        // no other way to report it. Attribute the cause.
        ++cpuFallbacks;
        using St = CompletionRecord::Status;
        switch (res.status) {
          case St::PageFault:
            fallbackPageFaultCtr.inc();
            break;
          case St::ReadError:
          case St::WriteError:
          case St::DecodeError:
            fallbackHwErrorCtr.inc();
            break;
          case St::Aborted:
            fallbackAbortedCtr.inc();
            break;
          case St::WqOverflow:
          case St::QueueFull:
            fallbackQueueCtr.inc();
            break;
          default:
            fallbackOtherCtr.inc();
            break;
        }
    }
    bytesOnCpu += n;
    co_await executor.executeSoftware(core, d, res);
    if (cmp_result)
        *cmp_result = res.result == 0 ? 0 : 1;
}

CoTask
Dto::memcpyCall(Core &core, AddressSpace &as, Addr dst, Addr src,
                std::uint64_t n)
{
    co_await dispatch(core, dml::Executor::memMove(as, dst, src, n), n,
                      nullptr);
}

CoTask
Dto::memmoveCall(Core &core, AddressSpace &as, Addr dst, Addr src,
                 std::uint64_t n)
{
    // Overlap-safe in the functional layer; identical timing.
    co_await dispatch(core, dml::Executor::memMove(as, dst, src, n), n,
                      nullptr);
}

CoTask
Dto::memsetCall(Core &core, AddressSpace &as, Addr dst,
                std::uint8_t value, std::uint64_t n)
{
    std::uint64_t pattern = 0x0101010101010101ull *
                            static_cast<std::uint64_t>(value);
    co_await dispatch(core, dml::Executor::fill(as, dst, pattern, n),
                      n, nullptr);
}

CoTask
Dto::memcmpCall(Core &core, AddressSpace &as, Addr a, Addr b,
                std::uint64_t n, int &result)
{
    co_await dispatch(core, dml::Executor::compare(as, a, b, n), n,
                      &result);
}

} // namespace dsasim
