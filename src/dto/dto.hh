/**
 * @file
 * DTO — the DSA Transparent Offload library (paper §5 and the
 * CacheLib case study, Fig. 19).
 *
 * Stands in for the LD_PRELOAD interposer: an application keeps
 * calling memcpy()/memmove()/memset()/memcmp() and DTO redirects
 * calls at or above a size threshold to a *synchronous* DSA job,
 * leaving the rest on the core. Faulting offloads (block-on-fault
 * disabled, as the paper's CacheBench deployment ran) are redone on
 * the CPU, touching the pages in the process.
 */

#ifndef DSASIM_DTO_DTO_HH
#define DSASIM_DTO_DTO_HH

#include <cstdint>

#include "dml/dml.hh"

namespace dsasim
{

class Dto
{
  public:
    struct Config
    {
        /** Offload at or above this size (paper: 8 KB for Fig. 19). */
        std::uint64_t threshold = 8192;
        /** Keep destination writes in LLC (cache-control hint). */
        bool cacheControl = true;
    };

    Dto(dml::Executor &exec, SwKernels &k, Config cfg)
        : executor(exec), kernels(k), config(cfg)
    {}

    Dto(dml::Executor &exec, SwKernels &k)
        : Dto(exec, k, Config{})
    {}

    /// @name Intercepted libc entry points.
    /// @{
    CoTask memcpyCall(Core &core, AddressSpace &as, Addr dst, Addr src,
                      std::uint64_t n);
    CoTask memmoveCall(Core &core, AddressSpace &as, Addr dst,
                       Addr src, std::uint64_t n);
    CoTask memsetCall(Core &core, AddressSpace &as, Addr dst,
                      std::uint8_t value, std::uint64_t n);
    /** @p result receives memcmp-style 0 / non-zero. */
    CoTask memcmpCall(Core &core, AddressSpace &as, Addr a, Addr b,
                      std::uint64_t n, int &result);
    /// @}

    /// @name Interposition statistics.
    /// @{
    std::uint64_t calls = 0;
    std::uint64_t offloaded = 0;
    std::uint64_t cpuFallbacks = 0; ///< failed offloads redone on CPU
    std::uint64_t bytesOffloaded = 0;
    std::uint64_t bytesOnCpu = 0;

    /// @name Fallback causes (each fallback counts exactly once).
    /// @{
    std::uint64_t fallbackPageFault = 0; ///< partial completion
    std::uint64_t fallbackHwError = 0;   ///< read/write/decode error
    std::uint64_t fallbackAborted = 0;   ///< reset/watchdog abort
    std::uint64_t fallbackQueue = 0;     ///< overflow / queue-full
    std::uint64_t fallbackOther = 0;     ///< unsupported, batch error
    /// @}
    /// @}

  private:
    CoTask dispatch(Core &core, WorkDescriptor d, std::uint64_t n,
                    int *cmp_result);

    dml::Executor &executor;
    SwKernels &kernels;
    Config config;
};

} // namespace dsasim

#endif // DSASIM_DTO_DTO_HH
