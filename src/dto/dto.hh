/**
 * @file
 * DTO — the DSA Transparent Offload library (paper §5 and the
 * CacheLib case study, Fig. 19).
 *
 * Stands in for the LD_PRELOAD interposer: an application keeps
 * calling memcpy()/memmove()/memset()/memcmp() and DTO redirects
 * calls at or above a size threshold to a *synchronous* DSA job,
 * leaving the rest on the core. Faulting offloads (block-on-fault
 * disabled, as the paper's CacheBench deployment ran) are redone on
 * the CPU, touching the pages in the process.
 */

#ifndef DSASIM_DTO_DTO_HH
#define DSASIM_DTO_DTO_HH

#include <cstdint>
#include <string>

#include "dml/dml.hh"
#include "sim/stats.hh"

namespace dsasim
{

class Dto
{
  public:
    struct Config
    {
        /** Offload at or above this size (paper: 8 KB for Fig. 19). */
        std::uint64_t threshold = 8192;
        /** Keep destination writes in LLC (cache-control hint). */
        bool cacheControl = true;
    };

    Dto(dml::Executor &exec, SwKernels &k, Config cfg);

    Dto(dml::Executor &exec, SwKernels &k)
        : Dto(exec, k, Config{})
    {}

    /// @name Intercepted libc entry points.
    /// @{
    CoTask memcpyCall(Core &core, AddressSpace &as, Addr dst, Addr src,
                      std::uint64_t n);
    CoTask memmoveCall(Core &core, AddressSpace &as, Addr dst,
                       Addr src, std::uint64_t n);
    CoTask memsetCall(Core &core, AddressSpace &as, Addr dst,
                      std::uint8_t value, std::uint64_t n);
    /** @p result receives memcmp-style 0 / non-zero. */
    CoTask memcmpCall(Core &core, AddressSpace &as, Addr a, Addr b,
                      std::uint64_t n, int &result);
    /// @}

    /// @name Interposition statistics.
    /// @{
    std::uint64_t calls = 0;
    std::uint64_t offloaded = 0;
    std::uint64_t cpuFallbacks = 0; ///< failed offloads redone on CPU
    std::uint64_t bytesOffloaded = 0;
    std::uint64_t bytesOnCpu = 0;

    /// @name Fallback causes (each fallback counts exactly once).
    /// Registry counters under this instance's dto<N>. scope
    /// (DESIGN.md §15), read through the const accessors.
    /// @{
    std::uint64_t
    fallbackPageFault() const ///< partial completion
    {
        return fallbackPageFaultCtr.value();
    }
    std::uint64_t
    fallbackHwError() const ///< read/write/decode error
    {
        return fallbackHwErrorCtr.value();
    }
    std::uint64_t
    fallbackAborted() const ///< reset/watchdog abort
    {
        return fallbackAbortedCtr.value();
    }
    std::uint64_t
    fallbackQueue() const ///< overflow / queue-full
    {
        return fallbackQueueCtr.value();
    }
    std::uint64_t
    fallbackOther() const ///< unsupported, batch error
    {
        return fallbackOtherCtr.value();
    }
    /// @}
    /// @}

  private:
    /** Delegate binding the cause counters under one dto<N>. scope. */
    Dto(dml::Executor &exec, SwKernels &k, Config cfg,
        const std::string &scope);

    CoTask dispatch(Core &core, WorkDescriptor d, std::uint64_t n,
                    int *cmp_result);

    dml::Executor &executor;
    SwKernels &kernels;
    Config config;

    // Registry-backed fallback-cause counters (bound in the
    // constructor under a fresh dto<N>. scope).
    stats::Counter &fallbackPageFaultCtr;
    stats::Counter &fallbackHwErrorCtr;
    stats::Counter &fallbackAbortedCtr;
    stats::Counter &fallbackQueueCtr;
    stats::Counter &fallbackOtherCtr;
};

} // namespace dsasim

#endif // DSASIM_DTO_DTO_HH
