#include "mem/address_space.hh"

#include <algorithm>
#include <cstring>
#include <vector>

#include "mem/mem_system.hh"
#include "sim/logging.hh"

namespace dsasim
{

AddressSpace::AddressSpace(MemSystem &ms, Pasid id)
    : mem(ms), id_(id)
{}

Addr
AddressSpace::alloc(std::uint64_t bytes, MemKind intent,
                    PageSize page_size, int requester_socket)
{
    fatal_if(bytes == 0, "zero-sized allocation");
    const std::uint64_t page = pageBytes(page_size);
    const std::uint64_t size = (bytes + page - 1) & ~(page - 1);

    Addr va_base = (allocNext + page - 1) & ~(page - 1);
    // Leave an unmapped guard page between regions so stray accesses
    // show up as translation panics rather than silent corruption.
    allocNext = va_base + size + page;

    int node_id = mem.nodeIdFor(intent, requester_socket);
    MemNode &n = mem.node(node_id);
    Addr pa_off = n.allocPhys(size, page);

    // Map page-by-page so present bits (fault injection) stay
    // page-granular even though the backing is contiguous.
    for (std::uint64_t off = 0; off < size; off += page) {
        pt.map(va_base + off,
               MemSystem::makePa(node_id, pa_off + off), page);
    }
    regions.push_back({va_base, size, page_size, node_id});
    return va_base;
}

void
AddressSpace::read(Addr va, void *dst, std::uint64_t len) const
{
    auto *out = static_cast<std::uint8_t *>(dst);
    while (len > 0) {
        auto m = pt.lookup(va);
        panic_if(!m, "functional read of unmapped va=0x%llx",
                 static_cast<unsigned long long>(va));
        std::uint64_t in_page = m->vaBase + m->size - va;
        std::uint64_t run = std::min(len, in_page);
        mem.physRead(m->paBase + (va - m->vaBase), out, run);
        va += run;
        out += run;
        len -= run;
    }
}

void
AddressSpace::write(Addr va, const void *src, std::uint64_t len)
{
    const auto *in = static_cast<const std::uint8_t *>(src);
    while (len > 0) {
        auto m = pt.lookup(va);
        panic_if(!m, "functional write of unmapped va=0x%llx",
                 static_cast<unsigned long long>(va));
        std::uint64_t in_page = m->vaBase + m->size - va;
        std::uint64_t run = std::min(len, in_page);
        mem.physWrite(m->paBase + (va - m->vaBase), in, run);
        va += run;
        in += run;
        len -= run;
    }
}

void
AddressSpace::fill(Addr va, std::uint8_t value, std::uint64_t len)
{
    while (len > 0) {
        auto m = pt.lookup(va);
        panic_if(!m, "functional fill of unmapped va=0x%llx",
                 static_cast<unsigned long long>(va));
        std::uint64_t in_page = m->vaBase + m->size - va;
        std::uint64_t run = std::min(len, in_page);
        mem.physFill(m->paBase + (va - m->vaBase), value, run);
        va += run;
        len -= run;
    }
}

bool
AddressSpace::equal(Addr va_a, Addr va_b, std::uint64_t len) const
{
    constexpr std::uint64_t block = 1 << 16;
    std::vector<std::uint8_t> a(std::min(len, block));
    std::vector<std::uint8_t> b(std::min(len, block));
    while (len > 0) {
        std::uint64_t run = std::min(len, block);
        read(va_a, a.data(), run);
        read(va_b, b.data(), run);
        if (std::memcmp(a.data(), b.data(), run) != 0)
            return false;
        va_a += run;
        va_b += run;
        len -= run;
    }
    return true;
}

std::uint8_t
AddressSpace::byteAt(Addr va) const
{
    std::uint8_t v = 0;
    read(va, &v, 1);
    return v;
}

PageSize
AddressSpace::pageSizeOf(Addr va) const
{
    for (const auto &r : regions) {
        if (va >= r.vaBase && va < r.vaBase + r.size)
            return r.pageSize;
    }
    panic("pageSizeOf unmapped va=0x%llx",
          static_cast<unsigned long long>(va));
}

} // namespace dsasim
