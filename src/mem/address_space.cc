#include "mem/address_space.hh"

#include <algorithm>
#include <cstring>
#include <vector>

#include "mem/mem_system.hh"
#include "sim/logging.hh"

namespace dsasim
{

AddressSpace::AddressSpace(MemSystem &ms, Pasid id)
    : mem(ms), id_(id)
{}

Addr
AddressSpace::alloc(std::uint64_t bytes, MemKind intent,
                    PageSize page_size, int requester_socket)
{
    fatal_if(bytes == 0, "zero-sized allocation");
    const std::uint64_t page = pageBytes(page_size);
    const std::uint64_t size = (bytes + page - 1) & ~(page - 1);

    Addr va_base = (allocNext + page - 1) & ~(page - 1);
    // Leave an unmapped guard page between regions so stray accesses
    // show up as translation panics rather than silent corruption.
    allocNext = va_base + size + page;

    int node_id = mem.nodeIdFor(intent, requester_socket);
    MemNode &n = mem.node(node_id);
    Addr pa_off = n.allocPhys(size, page);

    // Map page-by-page so present bits (fault injection) stay
    // page-granular even though the backing is contiguous.
    for (std::uint64_t off = 0; off < size; off += page) {
        pt.map(va_base + off,
               MemSystem::makePa(node_id, pa_off + off), page);
    }
    regions.push_back({va_base, size, page_size, node_id});
    return va_base;
}

AddressSpace::Span
AddressSpace::spanAt(Addr va, std::uint64_t max_len, const char *what)
{
    const PageTable::Mapping *m = pt.find(va);
    panic_if(!m, "functional %s of unmapped va=0x%llx", what,
             static_cast<unsigned long long>(va));
    std::uint64_t run = std::min(max_len, m->vaBase + m->size - va);
    return {mem.pageSpan(m->paBase + (va - m->vaBase), run), run};
}

AddressSpace::ConstSpan
AddressSpace::constSpanAt(Addr va, std::uint64_t max_len,
                          const char *what) const
{
    const PageTable::Mapping *m = pt.find(va);
    panic_if(!m, "functional %s of unmapped va=0x%llx", what,
             static_cast<unsigned long long>(va));
    std::uint64_t run = std::min(max_len, m->vaBase + m->size - va);
    return {mem.pageSpanIfResident(m->paBase + (va - m->vaBase), run),
            run};
}

void
AddressSpace::resolveSpans(Addr va, std::uint64_t len,
                           std::vector<Span> &out, const char *what)
{
    forEachSpan(va, len, what, [&](Span s) { out.push_back(s); });
}

void
AddressSpace::resolveConstSpans(Addr va, std::uint64_t len,
                                std::vector<ConstSpan> &out,
                                const char *what) const
{
    forEachConstSpan(va, len, what,
                     [&](ConstSpan s) { out.push_back(s); });
}

std::uint8_t *
AddressSpace::contiguous(Addr va, std::uint64_t len, const char *what)
{
    if (len == 0)
        return nullptr;
    Span first = spanAt(va, len, what);
    std::uint64_t done = first.len;
    while (done < len) {
        Span s = spanAt(va + done, len - done, what);
        if (s.ptr != first.ptr + done)
            return nullptr;
        done += s.len;
    }
    return first.ptr;
}

const std::uint8_t *
AddressSpace::contiguousConst(Addr va, std::uint64_t len,
                              const char *what) const
{
    if (len == 0)
        return nullptr;
    ConstSpan first = constSpanAt(va, len, what);
    if (!first.ptr)
        return nullptr;
    std::uint64_t done = first.len;
    while (done < len) {
        ConstSpan s = constSpanAt(va + done, len - done, what);
        if (s.ptr != first.ptr + done)
            return nullptr;
        done += s.len;
    }
    return first.ptr;
}

void
AddressSpace::read(Addr va, void *dst, std::uint64_t len) const
{
    auto *out = static_cast<std::uint8_t *>(dst);
    // Fast path: the whole range inside one mapping — one page, which
    // never straddles a physical chunk — is a single memcpy.
    if (const PageTable::Mapping *m = pt.find(va);
        m && len && va - m->vaBase + len <= m->size) {
        const std::uint8_t *p =
            mem.pageSpanIfResident(m->paBase + (va - m->vaBase), len);
        if (p)
            std::memcpy(out, p, len);
        else
            std::memset(out, 0, len);
        return;
    }
    forEachConstSpan(va, len, "read", [&](ConstSpan s) {
        if (s.ptr)
            std::memcpy(out, s.ptr, s.len);
        else
            std::memset(out, 0, s.len);
        out += s.len;
    });
}

void
AddressSpace::write(Addr va, const void *src, std::uint64_t len)
{
    const auto *in = static_cast<const std::uint8_t *>(src);
    if (const PageTable::Mapping *m = pt.find(va);
        m && len && va - m->vaBase + len <= m->size) {
        std::memcpy(mem.pageSpan(m->paBase + (va - m->vaBase), len),
                    in, len);
        return;
    }
    forEachSpan(va, len, "write", [&](Span s) {
        std::memcpy(s.ptr, in, s.len);
        in += s.len;
    });
}

void
AddressSpace::fill(Addr va, std::uint8_t value, std::uint64_t len)
{
    if (const PageTable::Mapping *m = pt.find(va);
        m && len && va - m->vaBase + len <= m->size) {
        std::memset(mem.pageSpan(m->paBase + (va - m->vaBase), len),
                    value, len);
        return;
    }
    forEachSpan(va, len, "fill",
                [&](Span s) { std::memset(s.ptr, value, s.len); });
}

void
AddressSpace::copy(Addr dst, Addr src, std::uint64_t len)
{
    if (len == 0)
        return;
    // Fast path: each range inside one mapping — a single memmove
    // (which also covers every overlap case).
    if (const PageTable::Mapping *ms = pt.find(src);
        ms && src - ms->vaBase + len <= ms->size) {
        if (const PageTable::Mapping *md = pt.find(dst);
            md && dst - md->vaBase + len <= md->size) {
            const std::uint8_t *s = mem.pageSpanIfResident(
                ms->paBase + (src - ms->vaBase), len);
            std::uint8_t *d =
                mem.pageSpan(md->paBase + (dst - md->vaBase), len);
            if (s)
                std::memmove(d, s, len);
            else
                std::memset(d, 0, len);
            return;
        }
    }
    const bool overlap = src < dst + len && dst < src + len;
    if (!overlap || dst == src) {
        // Pairwise span walk, no staging buffer. memmove covers the
        // dst == src exact-alias case.
        std::uint64_t done = 0;
        while (done < len) {
            ConstSpan s = constSpanAt(src + done, len - done, "read");
            Span d = spanAt(dst + done, s.len, "write");
            if (s.ptr)
                std::memmove(d.ptr, s.ptr, d.len);
            else
                std::memset(d.ptr, 0, d.len);
            done += d.len;
        }
        return;
    }
    // Overlapping ranges: when both resolve to single host spans the
    // copy is one memmove.
    if (const std::uint8_t *s = contiguousConst(src, len, "read")) {
        if (std::uint8_t *d = contiguous(dst, len, "write")) {
            std::memmove(d, s, len);
            return;
        }
    }
    // Multi-span overlap: directional chunked copy through a staging
    // buffer. Equivalent to memmove for any chunk size — each chunk
    // is fully read before any write that could clobber it.
    constexpr std::uint64_t chunk = 256 * 1024;
    std::vector<std::uint8_t> buf(std::min(len, chunk));
    const bool backward = dst > src;
    const std::uint64_t nchunks = (len + chunk - 1) / chunk;
    for (std::uint64_t c = 0; c < nchunks; ++c) {
        std::uint64_t idx = backward ? nchunks - 1 - c : c;
        std::uint64_t off = idx * chunk;
        std::uint64_t run = std::min(chunk, len - off);
        read(src + off, buf.data(), run);
        write(dst + off, buf.data(), run);
    }
}

bool
AddressSpace::equal(Addr va_a, Addr va_b, std::uint64_t len) const
{
    while (len > 0) {
        ConstSpan a = constSpanAt(va_a, len, "read");
        ConstSpan b = constSpanAt(va_b, a.len, "read");
        std::uint64_t run = b.len;
        if (a.ptr && b.ptr) {
            if (std::memcmp(a.ptr, b.ptr, run) != 0)
                return false;
        } else if (a.ptr || b.ptr) {
            // One side was never written: equal iff the other is all
            // zero over the run.
            const std::uint8_t *p = a.ptr ? a.ptr : b.ptr;
            for (std::uint64_t i = 0; i < run; ++i) {
                if (p[i])
                    return false;
            }
        }
        va_a += run;
        va_b += run;
        len -= run;
    }
    return true;
}

std::uint8_t
AddressSpace::byteAt(Addr va) const
{
    std::uint8_t v = 0;
    read(va, &v, 1);
    return v;
}

PageSize
AddressSpace::pageSizeOf(Addr va) const
{
    for (const auto &r : regions) {
        if (va >= r.vaBase && va < r.vaBase + r.size)
            return r.pageSize;
    }
    panic("pageSizeOf unmapped va=0x%llx",
          static_cast<unsigned long long>(va));
}

} // namespace dsasim
