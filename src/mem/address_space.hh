/**
 * @file
 * AddressSpace: a simulated process's virtual address space.
 *
 * Provides an mmap-like allocator over the memory nodes (choice of
 * tier and page size), the PASID identity used for SVM offload, and
 * functional byte access used by workloads and by the device models.
 *
 * Functional access resolves VA ranges to *spans* — direct host
 * pointers into the physical backing store — so data operations run
 * zero-copy instead of bouncing through scratch buffers. Span
 * contract:
 *
 *  - A span never crosses a page or a 2 MiB backing-chunk boundary
 *    before merging; adjacent per-page spans are merged when their
 *    host pointers are contiguous, so contiguous allocations usually
 *    resolve to a single span per 2 MiB.
 *  - Span pointers are stable until the AddressSpace is destroyed:
 *    backing chunks are never freed or moved. Mappings installed by
 *    a later alloc() do not move existing backing either; only the
 *    page-table *lookup* structures are invalidated by map().
 *  - A ConstSpan with ptr == nullptr denotes memory that was never
 *    written: it reads as zeroes and resolving it does not
 *    materialize backing (sparse reads stay sparse).
 *  - The present bit (evictPage) is a *device-visible* attribute:
 *    functional host access ignores it, matching the pre-span
 *    behavior of read()/write().
 */

#ifndef DSASIM_MEM_ADDRESS_SPACE_HH
#define DSASIM_MEM_ADDRESS_SPACE_HH

#include <cstdint>
#include <vector>

#include "mem/page_table.hh"
#include "mem/types.hh"

namespace dsasim
{

class MemSystem;

class AddressSpace
{
  public:
    AddressSpace(MemSystem &ms, Pasid id);

    Pasid pasid() const { return id_; }
    PageTable &pageTable() { return pt; }
    const PageTable &pageTable() const { return pt; }

    /**
     * Allocate @p bytes backed by @p intent memory with @p page_size
     * pages. Returns the starting VA (always page-aligned).
     */
    Addr alloc(std::uint64_t bytes, MemKind intent = MemKind::DramLocal,
               PageSize page_size = PageSize::Size4K,
               int requester_socket = 0);

    /// @name Zero-copy span resolution.
    /// @{

    /** A writable run of host memory backing a VA range. */
    struct Span
    {
        std::uint8_t *ptr = nullptr;
        std::uint64_t len = 0;
    };

    /**
     * A readable run. ptr == nullptr means the backing was never
     * written: the whole run reads as zeroes.
     */
    struct ConstSpan
    {
        const std::uint8_t *ptr = nullptr;
        std::uint64_t len = 0;
    };

    /**
     * Invoke @p fn(Span) over maximal host-contiguous runs covering
     * [va, va+len). Materializes backing. @p what names the
     * operation in the unmapped-VA panic.
     */
    template <typename Fn>
    void
    forEachSpan(Addr va, std::uint64_t len, const char *what, Fn &&fn)
    {
        Span pend;
        while (len > 0) {
            Span s = spanAt(va, len, what);
            if (pend.len && s.ptr == pend.ptr + pend.len) {
                pend.len += s.len;
            } else {
                if (pend.len)
                    fn(pend);
                pend = s;
            }
            va += s.len;
            len -= s.len;
        }
        if (pend.len)
            fn(pend);
    }

    /**
     * Read-only counterpart; adjacent never-written runs merge into
     * one nullptr span.
     */
    template <typename Fn>
    void
    forEachConstSpan(Addr va, std::uint64_t len, const char *what,
                     Fn &&fn) const
    {
        ConstSpan pend;
        bool has = false;
        while (len > 0) {
            ConstSpan s = constSpanAt(va, len, what);
            const bool joins =
                has && (s.ptr ? s.ptr == pend.ptr + pend.len
                              : pend.ptr == nullptr);
            if (joins) {
                pend.len += s.len;
            } else {
                if (has)
                    fn(pend);
                pend = s;
                has = true;
            }
            va += s.len;
            len -= s.len;
        }
        if (has)
            fn(pend);
    }

    /** Append the merged spans covering [va, va+len) to @p out. */
    void resolveSpans(Addr va, std::uint64_t len,
                      std::vector<Span> &out,
                      const char *what = "access");
    void resolveConstSpans(Addr va, std::uint64_t len,
                           std::vector<ConstSpan> &out,
                           const char *what = "access") const;

    /**
     * Host pointer iff [va, va+len) resolves to one contiguous span
     * (materializing backing), else nullptr. len == 0 yields
     * nullptr.
     */
    std::uint8_t *contiguous(Addr va, std::uint64_t len,
                             const char *what = "access");

    /**
     * Read-only variant; also nullptr when any page in the range was
     * never written (callers fall back to the span walk).
     */
    const std::uint8_t *contiguousConst(Addr va, std::uint64_t len,
                                        const char *what = "access")
        const;
    /// @}

    /// @name Functional access by virtual address (no timing).
    /// @{
    void read(Addr va, void *dst, std::uint64_t len) const;
    void write(Addr va, const void *src, std::uint64_t len);
    void fill(Addr va, std::uint8_t value, std::uint64_t len);

    /**
     * Copy [src, src+len) over [dst, dst+len) with memmove
     * semantics (overlap-safe in either direction), zero-copy.
     */
    void copy(Addr dst, Addr src, std::uint64_t len);

    bool equal(Addr va_a, Addr va_b, std::uint64_t len) const;
    std::uint8_t byteAt(Addr va) const;
    /// @}

    /** Functional VA -> PA (page must be mapped and present). */
    Addr translate(Addr va) const { return pt.translateOrDie(va); }

    /**
     * Evict the page holding @p va (clears the present bit), forcing
     * the next device access to take the page-fault path.
     */
    void evictPage(Addr va) { pt.setPresent(va, false); }
    void restorePage(Addr va) { pt.setPresent(va, true); }

    /** Page size used by the region containing @p va. */
    PageSize pageSizeOf(Addr va) const;

    /** Allocation record; public only for Checkpointable::State. */
    struct Region
    {
        Addr vaBase;
        std::uint64_t size;
        PageSize pageSize;
        int nodeId;
    };

    /**
     * Checkpointable (sim/checkpoint.hh): page table (present bits
     * included), allocation regions, and the bump-allocator cursor —
     * a fork that alloc()s more memory must place it at the same VA
     * the source would have.
     */
    struct State
    {
        PageTable::State pt;
        std::vector<Region> regions;
        Addr allocNext = 0;
    };

    State
    saveState() const
    {
        return State{pt.saveState(), regions, allocNext};
    }

    void
    restoreState(const State &st)
    {
        pt.restoreState(st.pt);
        regions = st.regions;
        allocNext = st.allocNext;
    }

  private:
    /** One page-bounded writable span starting at @p va. */
    Span spanAt(Addr va, std::uint64_t max_len, const char *what);
    /** One page-bounded readable span (nullptr when never written). */
    ConstSpan constSpanAt(Addr va, std::uint64_t max_len,
                          const char *what) const;

    MemSystem &mem;
    Pasid id_;
    PageTable pt;
    std::vector<Region> regions;
    Addr allocNext = 0x100000000ull; // keep low VAs obviously invalid
};

} // namespace dsasim

#endif // DSASIM_MEM_ADDRESS_SPACE_HH
