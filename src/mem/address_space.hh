/**
 * @file
 * AddressSpace: a simulated process's virtual address space.
 *
 * Provides an mmap-like allocator over the memory nodes (choice of
 * tier and page size), the PASID identity used for SVM offload, and
 * functional byte access used by workloads and by the device models.
 */

#ifndef DSASIM_MEM_ADDRESS_SPACE_HH
#define DSASIM_MEM_ADDRESS_SPACE_HH

#include <cstdint>
#include <vector>

#include "mem/page_table.hh"
#include "mem/types.hh"

namespace dsasim
{

class MemSystem;

class AddressSpace
{
  public:
    AddressSpace(MemSystem &ms, Pasid id);

    Pasid pasid() const { return id_; }
    PageTable &pageTable() { return pt; }
    const PageTable &pageTable() const { return pt; }

    /**
     * Allocate @p bytes backed by @p intent memory with @p page_size
     * pages. Returns the starting VA (always page-aligned).
     */
    Addr alloc(std::uint64_t bytes, MemKind intent = MemKind::DramLocal,
               PageSize page_size = PageSize::Size4K,
               int requester_socket = 0);

    /// @name Functional access by virtual address (no timing).
    /// @{
    void read(Addr va, void *dst, std::uint64_t len) const;
    void write(Addr va, const void *src, std::uint64_t len);
    void fill(Addr va, std::uint8_t value, std::uint64_t len);
    bool equal(Addr va_a, Addr va_b, std::uint64_t len) const;
    std::uint8_t byteAt(Addr va) const;
    /// @}

    /** Functional VA -> PA (page must be mapped and present). */
    Addr translate(Addr va) const { return pt.translateOrDie(va); }

    /**
     * Evict the page holding @p va (clears the present bit), forcing
     * the next device access to take the page-fault path.
     */
    void evictPage(Addr va) { pt.setPresent(va, false); }
    void restorePage(Addr va) { pt.setPresent(va, true); }

    /** Page size used by the region containing @p va. */
    PageSize pageSizeOf(Addr va) const;

  private:
    struct Region
    {
        Addr vaBase;
        std::uint64_t size;
        PageSize pageSize;
        int nodeId;
    };

    MemSystem &mem;
    Pasid id_;
    PageTable pt;
    std::vector<Region> regions;
    Addr allocNext = 0x100000000ull; // keep low VAs obviously invalid
};

} // namespace dsasim

#endif // DSASIM_MEM_ADDRESS_SPACE_HH
