#include "mem/cache.hh"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <string_view>

#include "sim/logging.hh"

namespace dsasim
{
namespace
{

CacheModel::AcctMode
acctModeFromEnv()
{
    const char *v = std::getenv("DSASIM_CACHE_ACCT");
    if (!v || v[0] == '\0' || std::string_view(v) == "batched")
        return CacheModel::AcctMode::Batched;
    fatal_if(std::string_view(v) != "line",
             "DSASIM_CACHE_ACCT must be 'batched' or 'line' (got "
             "'%s')", v);
    return CacheModel::AcctMode::Line;
}

} // namespace

CacheModel::CacheModel(const Config &cfg)
    : config(cfg), mode(acctModeFromEnv())
{
    fatal_if(cfg.ways == 0, "LLC must have at least one way");
    fatal_if(cfg.ways > 64,
             "LLC ways (%u) exceed the 64-bit set presence mask",
             cfg.ways);
    fatal_if(cfg.ddioWays > cfg.ways,
             "DDIO ways (%u) exceed total ways (%u)",
             cfg.ddioWays, cfg.ways);
    std::uint64_t line_count = cfg.sizeBytes / cacheLineSize;
    sets = static_cast<unsigned>(line_count / cfg.ways);
    fatal_if(sets == 0, "LLC too small for %u ways", cfg.ways);
    lines.resize(static_cast<std::size_t>(sets) * cfg.ways);
    setMeta.resize(sets);
}

CacheModel::Line *
CacheModel::find(Addr pa)
{
    std::uint64_t tag = tagOf(pa);
    Line *set = &lines[setIndex(pa) * config.ways];
    for (unsigned w = 0; w < config.ways; ++w) {
        if (lineValid(set[w]) && set[w].tag == tag)
            return &set[w];
    }
    return nullptr;
}

const CacheModel::Line *
CacheModel::findConst(Addr pa) const
{
    std::uint64_t tag = tagOf(pa);
    const Line *set = &lines[setIndex(pa) * config.ways];
    for (unsigned w = 0; w < config.ways; ++w) {
        if (lineValid(set[w]) && set[w].tag == tag)
            return &set[w];
    }
    return nullptr;
}

CacheModel::Line &
CacheModel::victim(Addr pa, unsigned way_lo, unsigned way_hi)
{
    std::size_t set = static_cast<std::size_t>(setIndex(pa));
    return victimInSet(&lines[set * config.ways], maskFor(set),
                       way_lo, way_hi);
}

/**
 * Prefer free ways from the top so CPU fills gravitate away from the
 * DDIO ways (0..ddioWays) while those are free — avoiding an
 * artificial placement pathology where demand lines keep landing in
 * the device-churned partition. With no free way, evict the LRU line
 * (use-clock values are unique, so the minimum is unambiguous).
 */
CacheModel::Line &
CacheModel::victimInSet(Line *set, std::uint64_t mask,
                        unsigned way_lo, unsigned way_hi)
{
    const std::uint64_t hi_mask =
        way_hi >= 64 ? ~0ull : (1ull << way_hi) - 1;
    const std::uint64_t range = hi_mask & ~((1ull << way_lo) - 1);
    if (std::uint64_t free = ~mask & range) {
        unsigned w = 63 - static_cast<unsigned>(
            std::countl_zero(free));
        // Stale-epoch reclaim goes through dropLine so the occupancy
        // gauges and presence mask can never drift out of sync with
        // the directory.
        dropLine(set[w]);
        return set[w];
    }
    Line *best = &set[way_lo];
    for (unsigned i = way_lo + 1; i < way_hi; ++i) {
        if (set[i].lastUse < best->lastUse)
            best = &set[i];
    }
    return *best;
}

void
CacheModel::dropLine(Line &line)
{
    if (!line.valid)
        return;
    // A raw-valid line from a pre-invalidateAll epoch was already
    // removed from the gauges (and its set mask) by the epoch bump;
    // only clear the valid bit so the way reads as free.
    const bool counted = line.epoch == flushEpoch;
    line.valid = false;
    if (!counted)
        return;
    const std::size_t idx =
        static_cast<std::size_t>(&line - lines.data());
    maskFor(idx / config.ways) &=
        ~(1ull << (idx % config.ways));
    --validLines;
    auto it = ownerLines.find(line.owner);
    panic_if(it == ownerLines.end() || it->second == 0,
             "owner occupancy underflow (owner=%d)", line.owner);
    --it->second;
}

void
CacheModel::installLine(Line &line, Addr pa, int owner, bool dirty,
                        AccessResult &result)
{
    if (line.valid) {
        result.evictedOther = line.owner != owner;
        result.evictedDirty = line.dirty;
        result.evictedPa = line.tag << 6;
        dropLine(line);
    }
    line.valid = true;
    line.epoch = flushEpoch;
    line.dirty = dirty;
    line.tag = tagOf(pa);
    line.owner = owner;
    line.lastUse = ++useClock;
    const std::size_t idx =
        static_cast<std::size_t>(&line - lines.data());
    maskFor(idx / config.ways) |= 1ull << (idx % config.ways);
    ++validLines;
    ++ownerLines[owner];
    result.allocated = true;
}

void
CacheModel::retagOwner(Line &l, int owner)
{
    // Occupancy follows the most recent toucher, as CMT's RMID
    // accounting effectively does for shared lines.
    if (l.owner != owner) {
        auto it = ownerLines.find(l.owner);
        if (it != ownerLines.end() && it->second > 0)
            --it->second;
        l.owner = owner;
        ++ownerLines[owner];
    }
}

CacheModel::AccessResult
CacheModel::cpuAccess(Addr pa, int owner, bool is_write)
{
    AccessResult result;
    if (Line *l = find(pa)) {
        result.hit = true;
        hitBytesTally += cacheLineSize;
        l->lastUse = ++useClock;
        l->dirty = l->dirty || is_write;
        retagOwner(*l, owner);
        return result;
    }
    missBytesTally += cacheLineSize;
    installLine(victim(pa, 0, config.ways), pa, owner, is_write, result);
    if (result.evictedDirty)
        writebackBytesTally += cacheLineSize;
    return result;
}

CacheModel::AccessResult
CacheModel::deviceRead(Addr pa)
{
    AccessResult result;
    if (Line *l = find(pa)) {
        result.hit = true;
        hitBytesTally += cacheLineSize;
        l->lastUse = ++useClock;
    } else {
        missBytesTally += cacheLineSize;
    }
    return result;
}

CacheModel::AccessResult
CacheModel::deviceWrite(Addr pa, int owner, bool alloc_hint)
{
    AccessResult result;
    if (!alloc_hint) {
        // Non-allocating write: update memory, invalidate any copy.
        if (Line *l = find(pa)) {
            dropLine(*l);
        }
        return result;
    }
    if (Line *l = find(pa)) {
        result.hit = true;
        hitBytesTally += cacheLineSize;
        l->lastUse = ++useClock;
        l->dirty = true;
        retagOwner(*l, owner);
        return result;
    }
    // DDIO-style allocating write: restricted to the DDIO ways.
    missBytesTally += cacheLineSize;
    unsigned hi = config.ddioWays > 0 ? config.ddioWays : config.ways;
    installLine(victim(pa, 0, hi), pa, owner, true, result);
    if (result.evictedDirty)
        writebackBytesTally += cacheLineSize;
    return result;
}

CacheModel::SpanResult
CacheModel::probeSpan(Addr pa, std::uint64_t size)
{
    SpanResult r;
    if (size == 0)
        return r;
    if (mode == AcctMode::Line) {
        for (Addr a = lineAlignDown(pa); a < lineAlignUp(pa + size);
             a += cacheLineSize) {
            if (deviceRead(a).hit)
                r.hitBytes += cacheLineSize;
            else
                r.missBytes += cacheLineSize;
        }
        return r;
    }
    const std::uint64_t n = linesCovered(pa, size);
    std::uint64_t tag = tagOf(pa);
    std::size_t set = static_cast<std::size_t>(tag % sets);
    for (std::uint64_t i = 0; i < n; ++i, ++tag) {
        const std::uint64_t mask = maskFor(set);
        bool hit = false;
        if (mask) {
            Line *s = &lines[set * config.ways];
            for (std::uint64_t m = mask; m; m &= m - 1) {
                Line &l = s[std::countr_zero(m)];
                if (l.tag == tag) {
                    l.lastUse = ++useClock;
                    hit = true;
                    break;
                }
            }
        }
        (hit ? r.hitBytes : r.missBytes) += cacheLineSize;
        if (++set == sets)
            set = 0;
    }
    hitBytesTally += r.hitBytes;
    missBytesTally += r.missBytes;
    return r;
}

CacheModel::SpanResult
CacheModel::fillSpan(Addr pa, std::uint64_t size, int owner)
{
    SpanResult r;
    if (size == 0)
        return r;
    if (mode == AcctMode::Line) {
        for (Addr a = lineAlignDown(pa); a < lineAlignUp(pa + size);
             a += cacheLineSize) {
            AccessResult res = deviceWrite(a, owner, true);
            if (res.hit)
                r.hitBytes += cacheLineSize;
            else
                r.missBytes += cacheLineSize;
            if (res.evictedDirty) {
                r.writebackBytes += cacheLineSize;
                r.lastEvictedPa = res.evictedPa;
            }
        }
        return r;
    }
    const unsigned hi =
        config.ddioWays > 0 ? config.ddioWays : config.ways;
    const std::uint64_t n = linesCovered(pa, size);
    std::uint64_t tag = tagOf(pa);
    std::size_t set = static_cast<std::size_t>(tag % sets);
    for (std::uint64_t i = 0; i < n; ++i, ++tag) {
        const std::uint64_t mask = maskFor(set);
        Line *s = &lines[set * config.ways];
        Line *hit = nullptr;
        for (std::uint64_t m = mask; m; m &= m - 1) {
            Line &l = s[std::countr_zero(m)];
            if (l.tag == tag) {
                hit = &l;
                break;
            }
        }
        if (hit) {
            r.hitBytes += cacheLineSize;
            hit->lastUse = ++useClock;
            hit->dirty = true;
            retagOwner(*hit, owner);
        } else {
            r.missBytes += cacheLineSize;
            AccessResult res;
            installLine(victimInSet(s, mask, 0, hi), tag << 6, owner,
                        true, res);
            if (res.evictedDirty) {
                r.writebackBytes += cacheLineSize;
                r.lastEvictedPa = res.evictedPa;
            }
        }
        if (++set == sets)
            set = 0;
    }
    hitBytesTally += r.hitBytes;
    missBytesTally += r.missBytes;
    writebackBytesTally += r.writebackBytes;
    return r;
}

CacheModel::SpanResult
CacheModel::evictSpan(Addr pa, std::uint64_t size)
{
    SpanResult r;
    if (size == 0)
        return r;
    if (mode == AcctMode::Line) {
        for (Addr a = lineAlignDown(pa); a < lineAlignUp(pa + size);
             a += cacheLineSize)
            invalidate(a);
        return r;
    }
    const std::uint64_t n = linesCovered(pa, size);
    std::uint64_t tag = tagOf(pa);
    std::size_t set = static_cast<std::size_t>(tag % sets);
    for (std::uint64_t i = 0; i < n; ++i, ++tag) {
        const std::uint64_t mask = maskFor(set);
        if (mask) {
            Line *s = &lines[set * config.ways];
            for (std::uint64_t m = mask; m; m &= m - 1) {
                Line &l = s[std::countr_zero(m)];
                if (l.tag == tag) {
                    dropLine(l);
                    break;
                }
            }
        }
        if (++set == sets)
            set = 0;
    }
    return r;
}

CacheModel::SpanResult
CacheModel::flushSpan(Addr pa, std::uint64_t size)
{
    SpanResult r;
    if (size == 0)
        return r;
    if (mode == AcctMode::Line) {
        for (Addr a = lineAlignDown(pa); a < lineAlignUp(pa + size);
             a += cacheLineSize) {
            if (flushLine(a))
                r.writebackBytes += cacheLineSize;
        }
        return r;
    }
    const std::uint64_t n = linesCovered(pa, size);
    std::uint64_t tag = tagOf(pa);
    std::size_t set = static_cast<std::size_t>(tag % sets);
    for (std::uint64_t i = 0; i < n; ++i, ++tag) {
        const std::uint64_t mask = maskFor(set);
        if (mask) {
            Line *s = &lines[set * config.ways];
            for (std::uint64_t m = mask; m; m &= m - 1) {
                Line &l = s[std::countr_zero(m)];
                if (l.tag == tag) {
                    if (l.dirty)
                        r.writebackBytes += cacheLineSize;
                    dropLine(l);
                    break;
                }
            }
        }
        if (++set == sets)
            set = 0;
    }
    writebackBytesTally += r.writebackBytes;
    return r;
}

bool
CacheModel::probe(Addr pa) const
{
    return findConst(pa) != nullptr;
}

void
CacheModel::invalidate(Addr pa)
{
    if (Line *l = find(pa))
        dropLine(*l);
}

bool
CacheModel::flushLine(Addr pa)
{
    if (Line *l = find(pa)) {
        bool was_dirty = l->dirty;
        if (was_dirty)
            writebackBytesTally += cacheLineSize;
        dropLine(*l);
        return was_dirty;
    }
    return false;
}

void
CacheModel::flushRange(Addr addr, std::uint64_t size)
{
    evictSpan(addr, size);
}

void
CacheModel::invalidateAll()
{
    // Epoch bump: every line's epoch — and every set's presence
    // mask — goes stale in O(1).
    ++flushEpoch;
    validLines = 0;
    ownerLines.clear();
}

CacheModel::State
CacheModel::saveState() const
{
    State st;
    st.useClock = useClock;
    st.hitBytes = hitBytesTally;
    st.missBytes = missBytesTally;
    st.writebackBytes = writebackBytesTally;
    st.validLines.reserve(validLines);
    for (std::uint64_t i = 0; i < lines.size(); ++i) {
        if (lineValid(lines[i]))
            st.validLines.emplace_back(i, lines[i]);
    }
    return st;
}

void
CacheModel::restoreState(const State &st)
{
    std::fill(lines.begin(), lines.end(), Line{});
    std::fill(setMeta.begin(), setMeta.end(), SetMeta{});
    ownerLines.clear();
    flushEpoch = 0;
    useClock = st.useClock;
    hitBytesTally = st.hitBytes;
    missBytesTally = st.missBytes;
    writebackBytesTally = st.writebackBytes;
    validLines = st.validLines.size();
    for (const auto &[idx, saved] : st.validLines) {
        panic_if(idx >= lines.size(),
                 "CacheModel::restoreState: line index %llu out of "
                 "range — geometry mismatch with snapshot",
                 static_cast<unsigned long long>(idx));
        Line &l = lines[idx];
        l = saved;
        l.epoch = flushEpoch;
        setMeta[idx / config.ways].mask |=
            1ull << (idx % config.ways);
        ++ownerLines[l.owner];
    }
}

} // namespace dsasim
