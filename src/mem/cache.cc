#include "mem/cache.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace dsasim
{

CacheModel::CacheModel(const Config &cfg)
    : config(cfg)
{
    fatal_if(cfg.ways == 0, "LLC must have at least one way");
    fatal_if(cfg.ddioWays > cfg.ways,
             "DDIO ways (%u) exceed total ways (%u)",
             cfg.ddioWays, cfg.ways);
    std::uint64_t line_count = cfg.sizeBytes / cacheLineSize;
    sets = static_cast<unsigned>(line_count / cfg.ways);
    fatal_if(sets == 0, "LLC too small for %u ways", cfg.ways);
    lines.resize(static_cast<std::size_t>(sets) * cfg.ways);
}

CacheModel::Line *
CacheModel::find(Addr pa)
{
    std::uint64_t tag = tagOf(pa);
    Line *set = &lines[setIndex(pa) * config.ways];
    for (unsigned w = 0; w < config.ways; ++w) {
        if (lineValid(set[w]) && set[w].tag == tag)
            return &set[w];
    }
    return nullptr;
}

const CacheModel::Line *
CacheModel::findConst(Addr pa) const
{
    std::uint64_t tag = tagOf(pa);
    const Line *set = &lines[setIndex(pa) * config.ways];
    for (unsigned w = 0; w < config.ways; ++w) {
        if (lineValid(set[w]) && set[w].tag == tag)
            return &set[w];
    }
    return nullptr;
}

CacheModel::Line &
CacheModel::victim(Addr pa, unsigned way_lo, unsigned way_hi)
{
    Line *set = &lines[setIndex(pa) * config.ways];
    // Prefer free ways scanning from the top so CPU fills gravitate
    // away from the DDIO ways (0..ddioWays) while those are free —
    // avoiding an artificial placement pathology where demand lines
    // keep landing in the device-churned partition.
    Line *best = &set[way_lo];
    for (unsigned i = way_hi; i-- > way_lo;) {
        if (!lineValid(set[i])) {
            set[i].valid = false; // stale epoch: treat as free
            return set[i];
        }
        if (set[i].lastUse <= best->lastUse)
            best = &set[i];
    }
    return *best;
}

void
CacheModel::dropLine(Line &line)
{
    if (!line.valid)
        return;
    line.valid = false;
    --validLines;
    auto it = ownerLines.find(line.owner);
    panic_if(it == ownerLines.end() || it->second == 0,
             "owner occupancy underflow (owner=%d)", line.owner);
    --it->second;
}

void
CacheModel::installLine(Line &line, Addr pa, int owner, bool dirty,
                        AccessResult &result)
{
    if (line.valid) {
        result.evictedOther = line.owner != owner;
        result.evictedDirty = line.dirty;
        result.evictedPa = line.tag << 6;
        dropLine(line);
    }
    line.valid = true;
    line.epoch = flushEpoch;
    line.dirty = dirty;
    line.tag = tagOf(pa);
    line.owner = owner;
    line.lastUse = ++useClock;
    ++validLines;
    ++ownerLines[owner];
    result.allocated = true;
}

CacheModel::AccessResult
CacheModel::cpuAccess(Addr pa, int owner, bool is_write)
{
    AccessResult result;
    if (Line *l = find(pa)) {
        result.hit = true;
        l->lastUse = ++useClock;
        l->dirty = l->dirty || is_write;
        // Occupancy follows the most recent toucher, as CMT's RMID
        // accounting effectively does for shared lines.
        if (l->owner != owner) {
            auto it = ownerLines.find(l->owner);
            if (it != ownerLines.end() && it->second > 0)
                --it->second;
            l->owner = owner;
            ++ownerLines[owner];
        }
        return result;
    }
    installLine(victim(pa, 0, config.ways), pa, owner, is_write, result);
    return result;
}

CacheModel::AccessResult
CacheModel::deviceRead(Addr pa)
{
    AccessResult result;
    if (Line *l = find(pa)) {
        result.hit = true;
        l->lastUse = ++useClock;
    }
    return result;
}

CacheModel::AccessResult
CacheModel::deviceWrite(Addr pa, int owner, bool alloc_hint)
{
    AccessResult result;
    if (!alloc_hint) {
        // Non-allocating write: update memory, invalidate any copy.
        if (Line *l = find(pa)) {
            dropLine(*l);
        }
        return result;
    }
    if (Line *l = find(pa)) {
        result.hit = true;
        l->lastUse = ++useClock;
        l->dirty = true;
        if (l->owner != owner) {
            auto it = ownerLines.find(l->owner);
            if (it != ownerLines.end() && it->second > 0)
                --it->second;
            l->owner = owner;
            ++ownerLines[owner];
        }
        return result;
    }
    // DDIO-style allocating write: restricted to the DDIO ways.
    unsigned hi = config.ddioWays > 0 ? config.ddioWays : config.ways;
    installLine(victim(pa, 0, hi), pa, owner, true, result);
    return result;
}

bool
CacheModel::probe(Addr pa) const
{
    return findConst(pa) != nullptr;
}

void
CacheModel::invalidate(Addr pa)
{
    if (Line *l = find(pa))
        dropLine(*l);
}

bool
CacheModel::flushLine(Addr pa)
{
    if (Line *l = find(pa)) {
        bool was_dirty = l->dirty;
        dropLine(*l);
        return was_dirty;
    }
    return false;
}

void
CacheModel::flushRange(Addr addr, std::uint64_t size)
{
    Addr end = lineAlignUp(addr + size);
    for (Addr a = lineAlignDown(addr); a < end; a += cacheLineSize)
        invalidate(a);
}

void
CacheModel::invalidateAll()
{
    // Epoch bump: every line's epoch goes stale in O(1).
    ++flushEpoch;
    validLines = 0;
    ownerLines.clear();
}

CacheModel::State
CacheModel::saveState() const
{
    State st;
    st.useClock = useClock;
    st.validLines.reserve(validLines);
    for (std::uint64_t i = 0; i < lines.size(); ++i) {
        if (lineValid(lines[i]))
            st.validLines.emplace_back(i, lines[i]);
    }
    return st;
}

void
CacheModel::restoreState(const State &st)
{
    std::fill(lines.begin(), lines.end(), Line{});
    ownerLines.clear();
    flushEpoch = 0;
    useClock = st.useClock;
    validLines = st.validLines.size();
    for (const auto &[idx, saved] : st.validLines) {
        panic_if(idx >= lines.size(),
                 "CacheModel::restoreState: line index %llu out of "
                 "range — geometry mismatch with snapshot",
                 static_cast<unsigned long long>(idx));
        Line &l = lines[idx];
        l = saved;
        l.epoch = flushEpoch;
        ++ownerLines[l.owner];
    }
}

} // namespace dsasim
