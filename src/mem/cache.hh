/**
 * @file
 * Shared last-level cache model with a DDIO way partition.
 *
 * A set-associative directory (tags only — data lives in the
 * PhysicalMemory backing store) with per-owner occupancy accounting,
 * mirroring what Intel's pqos/CMT exposes and what the paper uses for
 * its Fig. 12 occupancy plots.
 *
 * The DDIO mechanism is modeled the way the paper describes it
 * (§4.5, §6.2): CPU demand fills may allocate in any way; I/O-device
 * writes with the cache-control hint set may only allocate within the
 * first `ddioWays` ways of each set, and device reads never allocate.
 * This single rule produces both the cache-pollution immunity
 * (Fig. 12/13) and the "leaky DMA" throughput cliff (Fig. 10).
 *
 * Device-side streaming traffic uses the span API (probeSpan /
 * fillSpan / evictSpan / flushSpan): one call covers every line a
 * physically contiguous run touches and returns aggregate byte
 * counts, so the engine timing walk charges per chunk instead of per
 * line. The batched implementation is tick-equivalent by
 * construction to the line-at-a-time scalar ops — it walks the same
 * lines in the same (ascending-address) order, makes the identical
 * victim choice per set, and assigns the same LRU clock values — and
 * the scalar loop stays alive behind `DSASIM_CACHE_ACCT=line` as the
 * oracle a differential harness checks it against (DESIGN.md §13).
 */

#ifndef DSASIM_MEM_CACHE_HH
#define DSASIM_MEM_CACHE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mem/types.hh"

namespace dsasim
{

class CacheModel
{
  public:
    struct Config
    {
        std::uint64_t sizeBytes = 105ull << 20; ///< SPR: 105 MB LLC
        unsigned ways = 15;
        unsigned ddioWays = 2;

        bool operator==(const Config &) const = default;
    };

    struct AccessResult
    {
        bool hit = false;
        bool allocated = false;
        /** A valid line belonging to another owner was evicted. */
        bool evictedOther = false;
        /**
         * The evicted victim was dirty: the caller owes a writeback
         * to memory (the "leaky DMA" traffic of Fig. 10).
         */
        bool evictedDirty = false;
        /** PA of the dirty victim line (valid when evictedDirty). */
        Addr evictedPa = 0;
    };

    /**
     * Aggregate outcome of a span operation over the lines covering
     * [pa, pa+size) — exactly the sums the engine walk used to
     * accumulate line by line.
     */
    struct SpanResult
    {
        std::uint64_t hitBytes = 0;
        std::uint64_t missBytes = 0;
        /** Dirty-victim (fillSpan) or dirty-flushed (flushSpan)
         *  bytes owed to memory. */
        std::uint64_t writebackBytes = 0;
        /** PA of the last dirty victim (fillSpan, writebackBytes>0):
         *  the node the engine charges the aggregate writeback to. */
        Addr lastEvictedPa = 0;
    };

    /**
     * Accounting implementation. Batched is the default; Line keeps
     * the original line-at-a-time loops as the equivalence oracle.
     * Selected at construction from `DSASIM_CACHE_ACCT`
     * (unset/"batched" -> Batched, "line" -> Line) and overridable
     * per instance for differential tests.
     */
    enum class AcctMode { Batched, Line };

    explicit CacheModel(const Config &cfg);

    unsigned numWays() const { return config.ways; }
    unsigned numSets() const { return sets; }
    std::uint64_t sizeBytes() const { return config.sizeBytes; }

    AcctMode acctMode() const { return mode; }
    void setAcctMode(AcctMode m) { mode = m; }

    /**
     * CPU load/store. Allocates on miss (any way). @p owner feeds the
     * occupancy accounting; stores mark the line dirty.
     */
    AccessResult cpuAccess(Addr pa, int owner, bool is_write = false);

    /** Device read: hits are served from LLC; misses do not allocate. */
    AccessResult deviceRead(Addr pa);

    /**
     * Device write. With @p alloc_hint (cache-control flag = 1) the
     * line allocates within the DDIO ways; otherwise any present copy
     * is invalidated and the write targets memory.
     */
    AccessResult deviceWrite(Addr pa, int owner, bool alloc_hint);

    /// @name Span operations (device-side streaming, DESIGN.md §13).
    /// Each covers every line overlapping [pa, pa+size) in ascending
    /// address order and is state-identical to the matching scalar
    /// op applied per line.
    /// @{

    /** Device read classification: deviceRead() per line. */
    SpanResult probeSpan(Addr pa, std::uint64_t size);

    /** DDIO allocating write: deviceWrite(alloc_hint=true) per line. */
    SpanResult fillSpan(Addr pa, std::uint64_t size, int owner);

    /**
     * Non-allocating device write: invalidates any present copies
     * (deviceWrite(alloc_hint=false) per line). Dropped dirty copies
     * are not reported — the device write itself updates memory.
     */
    SpanResult evictSpan(Addr pa, std::uint64_t size);

    /** clflush: flushLine() per line, dirty bytes in writebackBytes. */
    SpanResult flushSpan(Addr pa, std::uint64_t size);
    /// @}

    /** True if the line holding @p pa is present (no state change). */
    bool probe(Addr pa) const;

    /** Invalidate the line holding @p pa, if present. */
    void invalidate(Addr pa);

    /**
     * clflush-style invalidate: returns true when the line was
     * present *and dirty* (the caller owes a memory writeback).
     */
    bool flushLine(Addr pa);

    /** Invalidate every line overlapping [addr, addr+size). */
    void flushRange(Addr addr, std::uint64_t size);

    /** Drop every valid line (test scaffolding between iterations). */
    void invalidateAll();

    /** Bytes currently occupied by lines allocated by @p owner. */
    std::uint64_t
    occupancyBytes(int owner) const
    {
        auto it = ownerLines.find(owner);
        return it == ownerLines.end()
            ? 0
            : it->second * cacheLineSize;
    }

    /** Bytes currently valid across all owners. */
    std::uint64_t
    totalOccupancyBytes() const
    {
        return validLines * cacheLineSize;
    }

    /** Capacity of the DDIO partition in bytes. */
    std::uint64_t
    ddioCapacityBytes() const
    {
        return static_cast<std::uint64_t>(sets) * config.ddioWays *
               cacheLineSize;
    }

    /// @name Cumulative traffic tallies (telemetry, DESIGN.md §15).
    /// Identical in Batched and Line accounting modes: scalar ops
    /// tally themselves, batched span bodies tally their aggregate
    /// result (the Line-mode span loops route through the scalar
    /// ops). MemSystem exposes these as llc.* registry counters.
    /// @{
    std::uint64_t hitBytesTotal() const { return hitBytesTally; }
    std::uint64_t missBytesTotal() const { return missBytesTally; }
    std::uint64_t
    writebackBytesTotal() const
    {
        return writebackBytesTally;
    }
    /// @}

    /** Directory line; public only for Checkpointable::State. */
    struct Line
    {
        std::uint64_t tag = 0;
        std::uint64_t lastUse = 0;
        std::uint64_t epoch = 0;
        int owner = 0;
        bool valid = false;
        bool dirty = false;
    };

    /**
     * Checkpointable (sim/checkpoint.hh): the currently-valid lines,
     * stored sparsely as (way index, line) pairs — O(occupied), not
     * O(capacity) — plus the LRU use clock they are ordered by.
     * Epoch-stale lines restore as free ways, which victim() treats
     * identically to stale-epoch lines, so replacement decisions are
     * unchanged. Occupancy accounting is rebuilt from the lines.
     */
    struct State
    {
        std::vector<std::pair<std::uint64_t, Line>> validLines;
        std::uint64_t useClock = 0;
        std::uint64_t hitBytes = 0;
        std::uint64_t missBytes = 0;
        std::uint64_t writebackBytes = 0;
    };

    State saveState() const;
    void restoreState(const State &st);

  private:

    /**
     * Per-set presence bitmask (bit w <=> lineValid(set line w)),
     * versioned by the same flush epoch as the lines so
     * invalidateAll() stays O(1). A stale-epoch mask means the set
     * holds no valid lines (any install refreshes the mask first),
     * so normalization just zeroes it. The masks let the span walk
     * visit only the occupied ways of a set — and skip empty sets
     * with one load — instead of scanning all ways per line.
     */
    struct SetMeta
    {
        std::uint64_t mask = 0;
        std::uint64_t epoch = 0;
    };

    /** Valid under the current flush epoch (invalidateAll is O(1)). */
    bool
    lineValid(const Line &l) const
    {
        return l.valid && l.epoch == flushEpoch;
    }

    /** The set's presence mask, normalized to the current epoch. */
    std::uint64_t &
    maskFor(std::size_t set)
    {
        SetMeta &m = setMeta[set];
        if (m.epoch != flushEpoch) {
            m.mask = 0;
            m.epoch = flushEpoch;
        }
        return m.mask;
    }

    Line *find(Addr pa);
    const Line *findConst(Addr pa) const;
    /** Pick the LRU way in [way_lo, way_hi) of the set holding pa. */
    Line &victim(Addr pa, unsigned way_lo, unsigned way_hi);
    /** Same choice as victim(), given the set base and its mask. */
    Line &victimInSet(Line *set, std::uint64_t mask, unsigned way_lo,
                      unsigned way_hi);
    void installLine(Line &line, Addr pa, int owner, bool dirty,
                     AccessResult &result);
    void dropLine(Line &line);
    /** Move a hit line's occupancy to its most recent toucher. */
    void retagOwner(Line &l, int owner);

    std::uint64_t setIndex(Addr pa) const { return (pa >> 6) % sets; }
    std::uint64_t tagOf(Addr pa) const { return pa >> 6; }

    Config config;
    unsigned sets;
    AcctMode mode;
    std::vector<Line> lines; // sets * ways, row-major by set
    std::vector<SetMeta> setMeta;
    std::unordered_map<int, std::uint64_t> ownerLines;
    std::uint64_t validLines = 0;
    std::uint64_t useClock = 0;
    std::uint64_t flushEpoch = 0;
    std::uint64_t hitBytesTally = 0;
    std::uint64_t missBytesTally = 0;
    std::uint64_t writebackBytesTally = 0;
};

} // namespace dsasim

#endif // DSASIM_MEM_CACHE_HH
