/**
 * @file
 * IOMMU model: translates device-side virtual accesses (SVM/PASID)
 * with an IOTLB, charging page-walk latency on misses and an OS
 * round-trip on page faults — the mechanism behind DSA's
 * "no memory pinning required" feature (F1) and the PE-stall
 * discussion of §4.3.
 */

#ifndef DSASIM_MEM_IOMMU_HH
#define DSASIM_MEM_IOMMU_HH

#include <cstdint>

#include "mem/page_table.hh"
#include "mem/tlb.hh"
#include "mem/types.hh"
#include "sim/fault_injector.hh"
#include "sim/ticks.hh"

namespace dsasim
{

struct IommuConfig
{
    std::size_t iotlbEntries = 8192;
    Tick iotlbHitLatency = fromNs(10);
    Tick pageWalkLatency = fromNs(250);
    Tick faultServiceLatency = fromUs(5); ///< OS demand-paging round trip

    bool operator==(const IommuConfig &) const = default;
};

class Iommu
{
  public:
    struct Result
    {
        bool ok = false;      ///< translation produced a usable PA
        bool faulted = false; ///< a page fault occurred along the way
        Addr pa = 0;
        Tick latency = 0;     ///< added device-visible latency
    };

    explicit Iommu(const IommuConfig &cfg)
        : config(cfg), iotlb(cfg.iotlbEntries)
    {}

    /**
     * Translate @p va in @p pt for a device request.
     *
     * @param resolve_fault  emulate block-on-fault=1: a non-present
     *        page is paged in by the OS (present bit set) at
     *        faultServiceLatency cost. With false, the fault is
     *        reported and ok stays false.
     */
    Result
    translate(PageTable &pt, Pasid pasid, Addr va, bool resolve_fault)
    {
        ++translations;
        Result res;
        auto m = pt.lookup(va);
        if (!m) {
            res.faulted = true;
            res.latency = config.pageWalkLatency;
            return res;
        }
        Addr page_base = m->vaBase;
        // Injected fault: the page behaves as transiently non-present
        // (e.g. reclaimed between CPU touch and device access), even
        // if the IOTLB or the page table says otherwise.
        FaultQuery pfq;
        pfq.pasid = static_cast<std::int64_t>(pasid);
        bool injected = faultInjector &&
                        faultInjector->fire(FaultSite::PageFault, pfq);
        if (injected)
            ++injectedFaults;
        if (!injected && iotlb.lookup(pasid, page_base) && m->present) {
            res.ok = true;
            res.pa = m->paBase + (va - m->vaBase);
            res.latency = config.iotlbHitLatency;
            return res;
        }
        res.latency = config.pageWalkLatency;
        if (!m->present || injected) {
            res.faulted = true;
            if (!resolve_fault)
                return res;
            res.latency += config.faultServiceLatency;
            pt.setPresent(va, true);
            m = pt.lookup(va);
        }
        iotlb.insert(pasid, page_base);
        res.ok = true;
        res.pa = m->paBase + (va - m->vaBase);
        return res;
    }

    TranslationCache &tlb() { return iotlb; }
    const IommuConfig &cfg() const { return config; }

    /**
     * Checkpointable (sim/checkpoint.hh): the IOTLB contents and the
     * injected-fault counter. The fault-injector attachment is
     * positional — the restoring platform wires up its own injector
     * (whose state rides in FaultInjector::State).
     */
    struct State
    {
        TranslationCache::State iotlb;
        std::uint64_t injectedFaults = 0;
        std::uint64_t translations = 0;
    };

    State
    saveState() const
    {
        return State{iotlb.saveState(), injectedFaults, translations};
    }

    void
    restoreState(const State &st)
    {
        iotlb.restoreState(st.iotlb);
        injectedFaults = st.injectedFaults;
        translations = st.translations;
    }

    /// @name Fault injection (optional; nullptr = fault-free).
    /// @{
    void setFaultInjector(FaultInjector *fi) { faultInjector = fi; }
    std::uint64_t injectedFaults = 0;
    /// @}

    /** Device-side translation requests served (telemetry). */
    std::uint64_t translations = 0;

  private:
    IommuConfig config;
    TranslationCache iotlb;
    FaultInjector *faultInjector = nullptr;
};

} // namespace dsasim

#endif // DSASIM_MEM_IOMMU_HH
