#include "mem/mem_system.hh"

#include <algorithm>

#include "mem/address_space.hh"
#include "sim/logging.hh"

namespace dsasim
{

Addr
MemNode::allocPhys(std::uint64_t bytes, std::uint64_t align)
{
    Addr base = (allocNext + align - 1) & ~(align - 1);
    fatal_if(base + bytes > config.capacityBytes,
             "node %d out of physical memory (%llu bytes requested)",
             id, static_cast<unsigned long long>(bytes));
    allocNext = base + bytes;
    return base;
}

MemSystem::MemSystem(Simulation &s, const MemSystemConfig &cfg)
    : simulation(s), config(cfg), llc(cfg.llc), iommuUnit(cfg.iommu),
      upi(s, cfg.upiGBps, "upi"),
      llcPort(s, cfg.llcGBps, "llc")
{
    fatal_if(cfg.nodes.empty(), "MemSystem needs at least one node");
    for (std::size_t i = 0; i < cfg.nodes.size(); ++i) {
        nodes.push_back(std::make_unique<MemNode>(
            s, static_cast<int>(i), cfg.nodes[i]));
    }

    // Telemetry (DESIGN.md §15): supplier-backed views over the LLC
    // and IOMMU — their state stays where it checkpoints; the
    // registry only reads it at sample/export time.
    stats::Registry &reg = s.stats();
    reg.gauge("llc.occupancy_bytes",
              "bytes currently valid in the LLC across all owners",
              [this] {
                  return static_cast<double>(
                      llc.totalOccupancyBytes());
              });
    reg.gauge("llc.ddio_capacity_bytes",
              "capacity of the LLC's DDIO way partition", [this] {
                  return static_cast<double>(llc.ddioCapacityBytes());
              });
    reg.counter("llc.hit_bytes", "bytes served from the LLC",
                [this] { return llc.hitBytesTotal(); });
    reg.counter("llc.miss_bytes", "bytes that missed the LLC",
                [this] { return llc.missBytesTotal(); });
    reg.counter("llc.writeback_bytes",
                "dirty-victim bytes written back to memory",
                [this] { return llc.writebackBytesTotal(); });
    reg.counter("iommu.translations",
                "device-side IOMMU translation requests",
                [this] { return iommuUnit.translations; });
    reg.counter("iommu.injected_faults",
                "page faults forced by the fault injector",
                [this] { return iommuUnit.injectedFaults; });
}

MemSystem::~MemSystem() = default;

int
MemSystem::nodeIdFor(MemKind intent, int requester_socket) const
{
    for (const auto &n : nodes) {
        switch (intent) {
          case MemKind::DramLocal:
            if (n->config.kind != MemKind::Cxl &&
                n->config.socket == requester_socket)
                return n->id;
            break;
          case MemKind::DramRemote:
            if (n->config.kind != MemKind::Cxl &&
                n->config.socket != requester_socket)
                return n->id;
            break;
          case MemKind::Cxl:
            if (n->config.kind == MemKind::Cxl)
                return n->id;
            break;
        }
    }
    fatal("no memory node satisfies intent %s from socket %d",
          memKindName(intent), requester_socket);
}

void
MemSystem::physRead(Addr pa, void *dst, std::uint64_t len) const
{
    node(paNode(pa)).store.read(paOffset(pa), dst, len);
}

void
MemSystem::physWrite(Addr pa, const void *src, std::uint64_t len)
{
    node(paNode(pa)).store.write(paOffset(pa), src, len);
}

void
MemSystem::physFill(Addr pa, std::uint8_t value, std::uint64_t len)
{
    node(paNode(pa)).store.fill(paOffset(pa), value, len);
}

Tick
MemSystem::readLatencyOf(int node_id, int requester_socket) const
{
    const MemNode &n = node(node_id);
    Tick lat = n.config.readLatency;
    if (n.config.socket != requester_socket)
        lat += config.upiLatency;
    return lat;
}

Tick
MemSystem::writeLatencyOf(int node_id, int requester_socket) const
{
    const MemNode &n = node(node_id);
    Tick lat = n.config.writeLatency;
    if (n.config.socket != requester_socket)
        lat += config.upiLatency;
    return lat;
}

Tick
MemSystem::occupyRead(int node_id, int requester_socket,
                      std::uint64_t bytes)
{
    MemNode &n = node(node_id);
    Tick end = n.readLink.occupy(bytes);
    if (n.config.socket != requester_socket)
        end = std::max(end, upi.occupy(bytes));
    return end;
}

Tick
MemSystem::occupyWrite(int node_id, int requester_socket,
                       std::uint64_t bytes)
{
    MemNode &n = node(node_id);
    Tick end = n.writeLink.occupy(bytes);
    if (n.config.socket != requester_socket)
        end = std::max(end, upi.occupy(bytes));
    return end;
}

AddressSpace &
MemSystem::createSpace()
{
    Pasid id = static_cast<Pasid>(spaces.size() + 1);
    spaces.push_back(std::make_unique<AddressSpace>(*this, id));
    return *spaces.back();
}

MemSystem::State
MemSystem::saveState() const
{
    State st;
    st.nodes.reserve(nodes.size());
    for (const auto &n : nodes)
        st.nodes.push_back(n->saveState());
    st.llc = llc.saveState();
    st.iommu = iommuUnit.saveState();
    st.upi = upi.saveState();
    st.llcPort = llcPort.saveState();
    st.spaces.reserve(spaces.size());
    for (const auto &s : spaces)
        st.spaces.push_back(s->saveState());
    return st;
}

void
MemSystem::restoreState(const State &st)
{
    fatal_if(nodes.size() != st.nodes.size(),
             "MemSystem::restoreState: node count mismatch "
             "(%zu here, %zu in snapshot)",
             nodes.size(), st.nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i)
        nodes[i]->restoreState(st.nodes[i]);
    llc.restoreState(st.llc);
    iommuUnit.restoreState(st.iommu);
    upi.restoreState(st.upi);
    llcPort.restoreState(st.llcPort);
    fatal_if(spaces.size() > st.spaces.size(),
             "MemSystem::restoreState: target already has %zu "
             "address space(s), snapshot has %zu — restore requires "
             "a fresh platform",
             spaces.size(), st.spaces.size());
    while (spaces.size() < st.spaces.size())
        createSpace();
    for (std::size_t i = 0; i < spaces.size(); ++i)
        spaces[i]->restoreState(st.spaces[i]);
}

AddressSpace &
MemSystem::space(Pasid pasid)
{
    panic_if(pasid == 0 || pasid > spaces.size(),
             "unknown pasid %u", pasid);
    return *spaces[pasid - 1];
}

} // namespace dsasim
