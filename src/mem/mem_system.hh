/**
 * @file
 * MemSystem: the platform memory fabric.
 *
 * Owns the memory nodes (local DDR, remote-socket DDR behind UPI,
 * CXL-attached memory), the shared LLC with its DDIO partition, the
 * IOMMU, and the per-process address spaces. Both CPU cores and DMA
 * devices route all functional data movement and all bandwidth /
 * latency accounting through this class.
 *
 * Cache accounting granularity: device-side bulk traffic should go
 * through the CacheModel span operations (probeSpan / fillSpan /
 * evictSpan / flushSpan, DESIGN.md §13) rather than per-line scalar
 * calls — the span walk is closed-form over the sets a run touches
 * and is tick-identical to the line-at-a-time oracle kept behind
 * DSASIM_CACHE_ACCT=line. Per-line scalar access stays correct (the
 * CPU-side pointer-chase probes depend on it) but is the slow path.
 */

#ifndef DSASIM_MEM_MEM_SYSTEM_HH
#define DSASIM_MEM_MEM_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mem/address_space.hh"
#include "mem/cache.hh"
#include "mem/iommu.hh"
#include "mem/phys_mem.hh"
#include "mem/types.hh"
#include "sim/link.hh"
#include "sim/simulation.hh"

namespace dsasim
{

struct MemNodeConfig
{
    MemKind kind = MemKind::DramLocal;
    int socket = 0;
    std::uint64_t capacityBytes = 32ull << 30;
    double readGBps = 120.0;
    double writeGBps = 95.0;
    Tick readLatency = fromNs(95);
    Tick writeLatency = fromNs(95);

    bool operator==(const MemNodeConfig &) const = default;
};

struct MemSystemConfig
{
    std::vector<MemNodeConfig> nodes;
    CacheModel::Config llc;
    IommuConfig iommu;
    /** Cross-socket interconnect. */
    double upiGBps = 60.0;
    Tick upiLatency = fromNs(60);
    /** On-chip LLC service (device hits and CPU LLC hits). */
    double llcGBps = 400.0;
    Tick llcLatency = fromNs(33);

    bool operator==(const MemSystemConfig &) const = default;
};

/** One physical memory node (a NUMA node in /sys terms). */
class MemNode
{
  public:
    MemNode(Simulation &s, int node_id, const MemNodeConfig &cfg)
        : id(node_id), config(cfg), store(cfg.capacityBytes),
          readLink(s, cfg.readGBps,
                   "node" + std::to_string(node_id) + ".rd"),
          writeLink(s, cfg.writeGBps,
                    "node" + std::to_string(node_id) + ".wr")
    {}

    /** Bump-allocate @p bytes of physical space aligned to @p align. */
    Addr allocPhys(std::uint64_t bytes, std::uint64_t align);

    /**
     * Checkpointable (sim/checkpoint.hh): backing store (CoW),
     * bandwidth-link horizons, and the physical bump-allocator
     * cursor (forks that allocate must mirror the source layout).
     */
    struct State
    {
        PhysicalMemory::State store;
        LinkResource::State readLink;
        LinkResource::State writeLink;
        Addr allocNext = 0;
    };

    State
    saveState() const
    {
        return State{store.saveState(), readLink.saveState(),
                     writeLink.saveState(), allocNext};
    }

    void
    restoreState(const State &st)
    {
        store.restoreState(st.store);
        readLink.restoreState(st.readLink);
        writeLink.restoreState(st.writeLink);
        allocNext = st.allocNext;
    }

    const int id;
    const MemNodeConfig config;
    PhysicalMemory store;
    LinkResource readLink;
    LinkResource writeLink;

  private:
    Addr allocNext = 0;
};

class MemSystem
{
  public:
    MemSystem(Simulation &s, const MemSystemConfig &cfg);
    ~MemSystem();

    Simulation &sim() { return simulation; }
    const MemSystemConfig &cfg() const { return config; }

    /// @name Physical address codec.
    /// PAs carry the node id in bits [47:44] (biased by one so that
    /// PA 0 stays an obviously-invalid null).
    /// @{
    static constexpr unsigned nodeShift = 44;

    static Addr
    makePa(int node_id, Addr offset)
    {
        return (static_cast<Addr>(node_id + 1) << nodeShift) | offset;
    }

    static int
    paNode(Addr pa)
    {
        return static_cast<int>(pa >> nodeShift) - 1;
    }

    static Addr
    paOffset(Addr pa)
    {
        return pa & ((Addr(1) << nodeShift) - 1);
    }
    /// @}

    /// @name Topology.
    /// @{
    std::size_t nodeCount() const { return nodes.size(); }

    MemNode &
    node(int id)
    {
        panic_if(id < 0 || static_cast<std::size_t>(id) >= nodes.size(),
                 "bad node id %d", id);
        return *nodes[static_cast<std::size_t>(id)];
    }

    const MemNode &
    node(int id) const
    {
        panic_if(id < 0 || static_cast<std::size_t>(id) >= nodes.size(),
                 "bad node id %d", id);
        return *nodes[static_cast<std::size_t>(id)];
    }

    /** Resolve an allocation intent to a node id. */
    int nodeIdFor(MemKind intent, int requester_socket = 0) const;
    /// @}

    /// @name Functional access by physical address.
    /// @{
    void physRead(Addr pa, void *dst, std::uint64_t len) const;
    void physWrite(Addr pa, const void *src, std::uint64_t len);
    void physFill(Addr pa, std::uint8_t value, std::uint64_t len);

    /**
     * Host pointer to a PA range that does not cross a 2 MiB
     * physical chunk (true for any range within one page). Inline —
     * this is the per-span hop of the zero-copy data path.
     */
    std::uint8_t *
    pageSpan(Addr pa, std::uint64_t len)
    {
        return node(paNode(pa)).store.hostSpan(paOffset(pa), len);
    }

    /**
     * Read-only variant that returns nullptr instead of
     * materializing when the backing chunk was never written (the
     * range reads as zeroes).
     */
    const std::uint8_t *
    pageSpanIfResident(Addr pa, std::uint64_t len) const
    {
        return node(paNode(pa))
            .store.hostSpanIfResident(paOffset(pa), len);
    }
    /// @}

    /// @name Timing resources.
    /// @{
    CacheModel &cache() { return llc; }
    Iommu &iommu() { return iommuUnit; }
    LinkResource &upiLink() { return upi; }
    LinkResource &llcLink() { return llcPort; }

    /** Memory-side load latency seen from @p requester_socket. */
    Tick readLatencyOf(int node_id, int requester_socket) const;
    Tick writeLatencyOf(int node_id, int requester_socket) const;

    /**
     * Occupy read bandwidth on @p node_id (and UPI when remote) for a
     * device- or core-initiated bulk read. Returns completion tick.
     */
    Tick occupyRead(int node_id, int requester_socket,
                    std::uint64_t bytes);
    Tick occupyWrite(int node_id, int requester_socket,
                     std::uint64_t bytes);
    /// @}

    /// @name Address spaces (SVM processes).
    /// @{
    AddressSpace &createSpace();
    AddressSpace &space(Pasid pasid);
    std::size_t spaceCount() const { return spaces.size(); }
    /// @}

    /**
     * Checkpointable (sim/checkpoint.hh): every node's store and
     * links, the LLC directory, the IOTLB, the fabric links, and
     * every address space. Restore *creates* the spaces on a fresh
     * MemSystem — PASIDs are assigned by creation order, so the
     * fork's space(pasid) handles line up with the source's.
     */
    struct State
    {
        std::vector<MemNode::State> nodes;
        CacheModel::State llc;
        Iommu::State iommu;
        LinkResource::State upi;
        LinkResource::State llcPort;
        std::vector<AddressSpace::State> spaces;
    };

    State saveState() const;
    void restoreState(const State &st);

  private:
    Simulation &simulation;
    MemSystemConfig config;
    std::vector<std::unique_ptr<MemNode>> nodes;
    CacheModel llc;
    Iommu iommuUnit;
    LinkResource upi;
    LinkResource llcPort;
    std::vector<std::unique_ptr<AddressSpace>> spaces;
};

} // namespace dsasim

#endif // DSASIM_MEM_MEM_SYSTEM_HH
