#include "mem/page_table.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace dsasim
{

void
PageTable::map(Addr va_base, Addr pa_base, std::uint64_t size)
{
    panic_if(size == 0, "mapping of zero size at va=0x%llx",
             static_cast<unsigned long long>(va_base));
    auto next = std::lower_bound(
        table.begin(), table.end(), va_base,
        [](const Mapping &m, Addr va) { return m.vaBase < va; });
    if (next != table.end()) {
        panic_if(va_base + size > next->vaBase,
                 "overlapping mapping at va=0x%llx",
                 static_cast<unsigned long long>(va_base));
    }
    if (next != table.begin()) {
        auto prev = std::prev(next);
        panic_if(prev->vaBase + prev->size > va_base,
                 "overlapping mapping at va=0x%llx",
                 static_cast<unsigned long long>(va_base));
    }
    // Insertion may shift or reallocate the table; drop the cache
    // (and with it any outstanding find() pointers).
    lastIdx = noCache;
    prevIdx = noCache;
    table.insert(next, Mapping{va_base, pa_base, size, true});
}

const PageTable::Mapping *
PageTable::findSlow(Addr va) const
{
    // Branch-light binary search for the last mapping with
    // vaBase <= va (upper_bound, then step back).
    const Mapping *base = table.data();
    std::size_t len = table.size();
    while (len > 0) {
        std::size_t half = len / 2;
        const bool below = base[half].vaBase <= va;
        base = below ? base + half + 1 : base;
        len = below ? len - half - 1 : half;
    }
    if (base == table.data())
        return nullptr;
    const Mapping &m = *(base - 1);
    if (va - m.vaBase >= m.size)
        return nullptr;
    prevIdx = lastIdx;
    lastIdx = static_cast<std::size_t>(&m - table.data());
    return &m;
}

Addr
PageTable::translateOrDie(Addr va) const
{
    const Mapping *m = find(va);
    panic_if(!m, "translation of unmapped va=0x%llx",
             static_cast<unsigned long long>(va));
    panic_if(!m->present, "translation of non-present va=0x%llx",
             static_cast<unsigned long long>(va));
    return m->paBase + (va - m->vaBase);
}

void
PageTable::setPresent(Addr va, bool present)
{
    // find() shares the bounds logic; the present bit is flipped in
    // place, so cached find() pointers observe it immediately.
    const Mapping *m = find(va);
    panic_if(!m, "setPresent on unmapped va=0x%llx",
             static_cast<unsigned long long>(va));
    const_cast<Mapping *>(m)->present = present;
}

} // namespace dsasim
