#include "mem/page_table.hh"

#include "sim/logging.hh"

namespace dsasim
{

void
PageTable::map(Addr va_base, Addr pa_base, std::uint64_t size)
{
    panic_if(size == 0, "mapping of zero size at va=0x%llx",
             static_cast<unsigned long long>(va_base));
    // Check the neighbors for overlap.
    auto next = table.lower_bound(va_base);
    if (next != table.end()) {
        panic_if(va_base + size > next->second.vaBase,
                 "overlapping mapping at va=0x%llx",
                 static_cast<unsigned long long>(va_base));
    }
    if (next != table.begin()) {
        auto prev = std::prev(next);
        panic_if(prev->second.vaBase + prev->second.size > va_base,
                 "overlapping mapping at va=0x%llx",
                 static_cast<unsigned long long>(va_base));
    }
    table.emplace(va_base, Mapping{va_base, pa_base, size, true});
}

std::optional<PageTable::Mapping>
PageTable::lookup(Addr va) const
{
    auto it = table.upper_bound(va);
    if (it == table.begin())
        return std::nullopt;
    --it;
    const Mapping &m = it->second;
    if (va < m.vaBase || va >= m.vaBase + m.size)
        return std::nullopt;
    return m;
}

Addr
PageTable::translateOrDie(Addr va) const
{
    auto m = lookup(va);
    panic_if(!m, "translation of unmapped va=0x%llx",
             static_cast<unsigned long long>(va));
    panic_if(!m->present, "translation of non-present va=0x%llx",
             static_cast<unsigned long long>(va));
    return m->paBase + (va - m->vaBase);
}

void
PageTable::setPresent(Addr va, bool present)
{
    auto it = table.upper_bound(va);
    panic_if(it == table.begin(), "setPresent on unmapped va=0x%llx",
             static_cast<unsigned long long>(va));
    --it;
    Mapping &m = it->second;
    panic_if(va < m.vaBase || va >= m.vaBase + m.size,
             "setPresent on unmapped va=0x%llx",
             static_cast<unsigned long long>(va));
    m.present = present;
}

} // namespace dsasim
