/**
 * @file
 * Per-PASID page table: virtual page -> physical page mappings at
 * either 4 KiB or 2 MiB granularity, with a present bit so tests can
 * exercise the device page-fault path (DSA block-on-fault semantics).
 *
 * Storage is a sorted vector of non-overlapping mappings searched
 * with a branch-light binary search, fronted by a two-entry
 * last-mapping cache (copies alternate between a source and a
 * destination mapping) with sequential-next probes (streams walk
 * pages in order): the functional data path translates every page
 * it touches, and nearly all of those lookups resolve in a couple
 * of compares. find() returns a pointer into the table so the
 * present bit is always read fresh; the pointer (and the cache) is
 * invalidated by the next map() call.
 */

#ifndef DSASIM_MEM_PAGE_TABLE_HH
#define DSASIM_MEM_PAGE_TABLE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "mem/types.hh"

namespace dsasim
{

class PageTable
{
  public:
    struct Mapping
    {
        Addr vaBase = 0;
        Addr paBase = 0;
        std::uint64_t size = 0;
        bool present = true;
    };

    /** Install a page mapping. Overlaps are a caller bug. */
    void map(Addr va_base, Addr pa_base, std::uint64_t size);

    /**
     * O(1)-amortized translation fast path. Returns the mapping
     * holding @p va or nullptr if unmapped; a mapping with
     * present == false is returned as-is. The pointer stays valid
     * until the next map() call (setPresent mutates in place and
     * does not invalidate it). Inline: this is the innermost hop of
     * every functional access.
     */
    const Mapping *
    find(Addr va) const
    {
        const Mapping *t = table.data();
        const std::size_t n = table.size();
        // (va - vaBase) underflows to a huge value when va < vaBase,
        // so one comparison covers both bounds. noCache + 1 wraps to
        // index 0 — a harmless extra probe while cold.
        auto probe = [&](std::size_t i) {
            return i < n && va - t[i].vaBase < t[i].size;
        };
        if (probe(lastIdx))
            return &t[lastIdx];
        std::size_t hit;
        if (probe(lastIdx + 1))
            hit = lastIdx + 1;
        else if (probe(prevIdx))
            hit = prevIdx;
        else if (probe(prevIdx + 1))
            hit = prevIdx + 1;
        else
            return findSlow(va);
        prevIdx = lastIdx;
        lastIdx = hit;
        return &t[hit];
    }

    /**
     * Translate @p va. Returns nullopt if unmapped. A mapping with
     * present == false is returned as-is; callers decide whether to
     * fault or fail.
     */
    std::optional<Mapping>
    lookup(Addr va) const
    {
        const Mapping *m = find(va);
        if (!m)
            return std::nullopt;
        return *m;
    }

    /** Functional VA->PA for a mapped, present address. */
    Addr translateOrDie(Addr va) const;

    /** Clear/restore the present bit of the page holding @p va. */
    void setPresent(Addr va, bool present);

    std::size_t mappingCount() const { return table.size(); }

    /**
     * Checkpointable (sim/checkpoint.hh): the full mapping table,
     * present bits included (an evicted page stays evicted across a
     * fork). The MRU probe indices are a pure lookup accelerator and
     * restore cold — they cannot affect timing or results.
     */
    struct State
    {
        std::vector<Mapping> table;
    };

    State saveState() const { return State{table}; }

    void
    restoreState(const State &st)
    {
        table = st.table;
        lastIdx = noCache;
        prevIdx = noCache;
    }

  private:
    static constexpr std::size_t noCache = ~std::size_t{0};

    /** Cache-miss path: binary search, then refresh the cache. */
    const Mapping *findSlow(Addr va) const;

    // Sorted by vaBase; mappings never overlap.
    std::vector<Mapping> table;
    // Two most recently found mappings (noCache when cold).
    mutable std::size_t lastIdx = noCache;
    mutable std::size_t prevIdx = noCache;
};

} // namespace dsasim

#endif // DSASIM_MEM_PAGE_TABLE_HH
