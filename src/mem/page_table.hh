/**
 * @file
 * Per-PASID page table: virtual page -> physical page mappings at
 * either 4 KiB or 2 MiB granularity, with a present bit so tests can
 * exercise the device page-fault path (DSA block-on-fault semantics).
 */

#ifndef DSASIM_MEM_PAGE_TABLE_HH
#define DSASIM_MEM_PAGE_TABLE_HH

#include <cstdint>
#include <map>
#include <optional>

#include "mem/types.hh"

namespace dsasim
{

class PageTable
{
  public:
    struct Mapping
    {
        Addr vaBase = 0;
        Addr paBase = 0;
        std::uint64_t size = 0;
        bool present = true;
    };

    /** Install a page mapping. Overlaps are a caller bug. */
    void map(Addr va_base, Addr pa_base, std::uint64_t size);

    /**
     * Translate @p va. Returns nullopt if unmapped. A mapping with
     * present == false is returned as-is; callers decide whether to
     * fault or fail.
     */
    std::optional<Mapping> lookup(Addr va) const;

    /** Functional VA->PA for a mapped, present address. */
    Addr translateOrDie(Addr va) const;

    /** Clear/restore the present bit of the page holding @p va. */
    void setPresent(Addr va, bool present);

    std::size_t mappingCount() const { return table.size(); }

  private:
    // Keyed by vaBase; mappings never overlap.
    std::map<Addr, Mapping> table;
};

} // namespace dsasim

#endif // DSASIM_MEM_PAGE_TABLE_HH
