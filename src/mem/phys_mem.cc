#include "mem/phys_mem.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace dsasim
{

std::uint8_t *
PhysicalMemory::chunkFor(Addr pa)
{
    panic_if(pa >= capacity, "physical access beyond capacity "
             "(pa=0x%llx cap=0x%llx)",
             static_cast<unsigned long long>(pa),
             static_cast<unsigned long long>(capacity));
    std::uint64_t idx = pa >> chunkShift;
    if (std::uint8_t *c = cachedFor(idx))
        return c;
    auto it = chunks.find(idx);
    if (it == chunks.end()) {
        // Value-initialized: untouched memory reads as zero.
        auto mem = std::make_shared<std::uint8_t[]>(chunkSize);
        it = chunks.emplace(idx, std::move(mem)).first;
    } else if (it->second.use_count() > 1) {
        // Copy-on-write: a snapshot (or the platform it forked from)
        // still references this chunk. use_count() == 1 is a stable
        // "exclusively ours" signal even with concurrent forks:
        // nobody else can gain a reference except through this map.
        auto clone =
            std::make_shared_for_overwrite<std::uint8_t[]>(chunkSize);
        std::memcpy(clone.get(), it->second.get(), chunkSize);
        it->second = std::move(clone);
    }
    cacheInsert(idx, it->second.get());
    return cachedChunk;
}

const std::uint8_t *
PhysicalMemory::chunkForConst(Addr pa) const
{
    panic_if(pa >= capacity, "physical access beyond capacity "
             "(pa=0x%llx cap=0x%llx)",
             static_cast<unsigned long long>(pa),
             static_cast<unsigned long long>(capacity));
    std::uint64_t idx = pa >> chunkShift;
    if (const std::uint8_t *c = cachedFor(idx))
        return c;
    auto it = chunks.find(idx);
    if (it == chunks.end()) {
        // Not materialized; don't cache the miss — a later chunkFor
        // on this index must still materialize it.
        return nullptr;
    }
    // A shared chunk must stay out of the cache: the non-const
    // hostSpan fast path would hand its cached pointer out writable,
    // bypassing the copy-on-write clone above.
    if (it->second.use_count() == 1)
        cacheInsert(idx, it->second.get());
    return it->second.get();
}

void
PhysicalMemory::read(Addr pa, void *dst, std::uint64_t len) const
{
    auto *out = static_cast<std::uint8_t *>(dst);
    while (len > 0) {
        std::uint64_t off = pa & chunkMask;
        std::uint64_t run = std::min(len, chunkSize - off);
        const std::uint8_t *c = chunkForConst(pa);
        if (c) {
            std::memcpy(out, c + off, run);
        } else {
            // Untouched memory reads as zero without materializing.
            std::memset(out, 0, run);
        }
        pa += run;
        out += run;
        len -= run;
    }
}

void
PhysicalMemory::write(Addr pa, const void *src, std::uint64_t len)
{
    const auto *in = static_cast<const std::uint8_t *>(src);
    while (len > 0) {
        std::uint64_t off = pa & chunkMask;
        std::uint64_t run = std::min(len, chunkSize - off);
        std::memcpy(chunkFor(pa) + off, in, run);
        pa += run;
        in += run;
        len -= run;
    }
}

void
PhysicalMemory::fill(Addr pa, std::uint8_t value, std::uint64_t len)
{
    while (len > 0) {
        std::uint64_t off = pa & chunkMask;
        std::uint64_t run = std::min(len, chunkSize - off);
        std::memset(chunkFor(pa) + off, value, run);
        pa += run;
        len -= run;
    }
}

PhysicalMemory::State
PhysicalMemory::saveState() const
{
    // Sharing the map bumps every chunk's refcount past 1; any
    // pointer previously handed out via hostSpan must be considered
    // stale from here on (the next write clones). Drop our own cache
    // so we obey the same rule.
    cacheDrop();
    return State{capacity, chunks};
}

void
PhysicalMemory::restoreState(const State &st)
{
    fatal_if(capacity != st.capacity,
             "PhysicalMemory::restoreState: capacity mismatch "
             "(target 0x%llx, snapshot 0x%llx) — restore requires an "
             "identically configured platform",
             static_cast<unsigned long long>(capacity),
             static_cast<unsigned long long>(st.capacity));
    chunks = st.chunks;
    cacheDrop();
}

} // namespace dsasim
