#include "mem/phys_mem.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace dsasim
{

std::uint8_t *
PhysicalMemory::chunkFor(Addr pa)
{
    panic_if(pa >= capacity, "physical access beyond capacity "
             "(pa=0x%llx cap=0x%llx)",
             static_cast<unsigned long long>(pa),
             static_cast<unsigned long long>(capacity));
    std::uint64_t idx = pa >> chunkShift;
    if (std::uint8_t *c = cachedFor(idx))
        return c;
    auto it = chunks.find(idx);
    if (it == chunks.end()) {
        auto mem = std::make_unique<std::uint8_t[]>(chunkSize);
        std::memset(mem.get(), 0, chunkSize);
        it = chunks.emplace(idx, std::move(mem)).first;
    }
    cacheInsert(idx, it->second.get());
    return cachedChunk;
}

const std::uint8_t *
PhysicalMemory::chunkForConst(Addr pa) const
{
    panic_if(pa >= capacity, "physical access beyond capacity "
             "(pa=0x%llx cap=0x%llx)",
             static_cast<unsigned long long>(pa),
             static_cast<unsigned long long>(capacity));
    std::uint64_t idx = pa >> chunkShift;
    if (const std::uint8_t *c = cachedFor(idx))
        return c;
    auto it = chunks.find(idx);
    if (it == chunks.end()) {
        // Not materialized; don't cache the miss — a later chunkFor
        // on this index must still materialize it.
        return nullptr;
    }
    cacheInsert(idx, it->second.get());
    return cachedChunk;
}

void
PhysicalMemory::read(Addr pa, void *dst, std::uint64_t len) const
{
    auto *out = static_cast<std::uint8_t *>(dst);
    while (len > 0) {
        std::uint64_t off = pa & chunkMask;
        std::uint64_t run = std::min(len, chunkSize - off);
        const std::uint8_t *c = chunkForConst(pa);
        if (c) {
            std::memcpy(out, c + off, run);
        } else {
            // Untouched memory reads as zero without materializing.
            std::memset(out, 0, run);
        }
        pa += run;
        out += run;
        len -= run;
    }
}

void
PhysicalMemory::write(Addr pa, const void *src, std::uint64_t len)
{
    const auto *in = static_cast<const std::uint8_t *>(src);
    while (len > 0) {
        std::uint64_t off = pa & chunkMask;
        std::uint64_t run = std::min(len, chunkSize - off);
        std::memcpy(chunkFor(pa) + off, in, run);
        pa += run;
        in += run;
        len -= run;
    }
}

void
PhysicalMemory::fill(Addr pa, std::uint8_t value, std::uint64_t len)
{
    while (len > 0) {
        std::uint64_t off = pa & chunkMask;
        std::uint64_t run = std::min(len, chunkSize - off);
        std::memset(chunkFor(pa) + off, value, run);
        pa += run;
        len -= run;
    }
}

} // namespace dsasim
