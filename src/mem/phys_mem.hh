/**
 * @file
 * Sparse physical backing store.
 *
 * Every simulated memory node owns one PhysicalMemory. Storage is
 * materialized lazily in 2 MiB chunks so that multi-GB simulated
 * capacities cost only what the workload actually touches. All data
 * operations in dsasim are *functional* — a simulated copy really
 * moves these bytes — so tests can verify end-to-end data integrity.
 *
 * A two-entry chunk-pointer cache makes repeated accesses to the
 * same 2 MiB chunk O(1): streaming workloads touch one chunk for
 * hundreds of pages before moving on, and copies alternate between
 * a source and a destination chunk. Chunk storage is never freed
 * or moved once materialized, so cached (and handed-out) pointers
 * stay valid for the lifetime of the PhysicalMemory.
 */

#ifndef DSASIM_MEM_PHYS_MEM_HH
#define DSASIM_MEM_PHYS_MEM_HH

#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <utility>

#include "mem/types.hh"
#include "sim/logging.hh"

namespace dsasim
{

class PhysicalMemory
{
  public:
    static constexpr std::uint64_t chunkShift = 21; // 2 MiB
    static constexpr std::uint64_t chunkSize = 1ull << chunkShift;
    static constexpr std::uint64_t chunkMask = chunkSize - 1;

    explicit PhysicalMemory(std::uint64_t capacity_bytes)
        : capacity(capacity_bytes)
    {}

    std::uint64_t capacityBytes() const { return capacity; }

    /** Bytes of host memory actually materialized. */
    std::uint64_t
    residentBytes() const
    {
        return chunks.size() * chunkSize;
    }

    /** Copy @p len bytes at offset @p pa into @p dst. */
    void read(Addr pa, void *dst, std::uint64_t len) const;

    /** Copy @p len bytes from @p src to offset @p pa. */
    void write(Addr pa, const void *src, std::uint64_t len);

    /** Fill [pa, pa+len) with byte @p value. */
    void fill(Addr pa, std::uint8_t value, std::uint64_t len);

    /**
     * Direct host pointer to [pa, pa+len). Only valid while the
     * PhysicalMemory lives and only when the range does not cross a
     * chunk boundary; callers that operate page-at-a-time (pages
     * never straddle chunks) rely on this fast path. Materializes
     * the chunk on first touch. Defined inline so the cache-hit
     * path compiles down to a couple of compares — it sits under
     * every functional byte moved.
     */
    std::uint8_t *
    hostSpan(Addr pa, std::uint64_t len)
    {
        std::uint64_t off = pa & chunkMask;
        panic_if(off + len > chunkSize,
                 "hostSpan crosses a chunk boundary "
                 "(pa=0x%llx len=%llu)",
                 static_cast<unsigned long long>(pa),
                 static_cast<unsigned long long>(len));
        if (std::uint8_t *c = cachedFor(pa >> chunkShift);
            c && pa < capacity)
            return c + off;
        return chunkFor(pa) + off;
    }

    const std::uint8_t *
    hostSpan(Addr pa, std::uint64_t len) const
    {
        std::uint64_t off = pa & chunkMask;
        panic_if(off + len > chunkSize,
                 "hostSpan crosses a chunk boundary "
                 "(pa=0x%llx len=%llu)",
                 static_cast<unsigned long long>(pa),
                 static_cast<unsigned long long>(len));
        if (const std::uint8_t *hit = cachedFor(pa >> chunkShift);
            hit && pa < capacity)
            return hit + off;
        const std::uint8_t *c = chunkForConst(pa);
        panic_if(!c, "const hostSpan of untouched memory (pa=0x%llx)",
                 static_cast<unsigned long long>(pa));
        return c + off;
    }

    /**
     * Like hostSpan, but returns nullptr when the chunk has never
     * been touched (the range reads as zeroes) instead of
     * materializing or panicking. The read-only span path uses this
     * so that scanning a sparse buffer stays sparse.
     */
    const std::uint8_t *
    hostSpanIfResident(Addr pa, std::uint64_t len) const
    {
        std::uint64_t off = pa & chunkMask;
        panic_if(off + len > chunkSize,
                 "hostSpan crosses a chunk boundary "
                 "(pa=0x%llx len=%llu)",
                 static_cast<unsigned long long>(pa),
                 static_cast<unsigned long long>(len));
        if (const std::uint8_t *hit = cachedFor(pa >> chunkShift);
            hit && pa < capacity)
            return hit + off;
        const std::uint8_t *c = chunkForConst(pa);
        return c ? c + off : nullptr;
    }

  private:
    std::uint8_t *chunkFor(Addr pa);
    const std::uint8_t *chunkForConst(Addr pa) const;

    /** MRU-first probe of the two cached chunk entries. */
    std::uint8_t *
    cachedFor(std::uint64_t idx) const
    {
        if (idx == cachedIdx)
            return cachedChunk;
        if (idx == cachedIdx2) {
            std::swap(cachedIdx, cachedIdx2);
            std::swap(cachedChunk, cachedChunk2);
            return cachedChunk;
        }
        return nullptr;
    }

    /** Install @p idx as the MRU cache entry. */
    void
    cacheInsert(std::uint64_t idx, std::uint8_t *chunk) const
    {
        cachedIdx2 = cachedIdx;
        cachedChunk2 = cachedChunk;
        cachedIdx = idx;
        cachedChunk = chunk;
    }

    std::uint64_t capacity;
    std::unordered_map<std::uint64_t, std::unique_ptr<std::uint8_t[]>>
        chunks;
    // Two-entry cache of recently looked-up chunks (copies alternate
    // source/destination). Chunk arrays are stable once allocated,
    // so the pointers never dangle.
    mutable std::uint64_t cachedIdx = ~std::uint64_t{0};
    mutable std::uint8_t *cachedChunk = nullptr;
    mutable std::uint64_t cachedIdx2 = ~std::uint64_t{0};
    mutable std::uint8_t *cachedChunk2 = nullptr;
};

} // namespace dsasim

#endif // DSASIM_MEM_PHYS_MEM_HH
