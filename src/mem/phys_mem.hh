/**
 * @file
 * Sparse physical backing store.
 *
 * Every simulated memory node owns one PhysicalMemory. Storage is
 * materialized lazily in 2 MiB chunks so that multi-GB simulated
 * capacities cost only what the workload actually touches. All data
 * operations in dsasim are *functional* — a simulated copy really
 * moves these bytes — so tests can verify end-to-end data integrity.
 *
 * Chunks are copy-on-write (DESIGN.md §10): a snapshot captures the
 * store by sharing every chunk reference (O(resident) pointer
 * copies, zero data copies), and the first write to a shared chunk —
 * by the live platform or by any fork — clones just that 2 MiB. A
 * platform that never snapshots owns every chunk exclusively and
 * never pays a clone.
 *
 * A two-entry chunk-pointer cache makes repeated accesses to the
 * same 2 MiB chunk O(1): streaming workloads touch one chunk for
 * hundreds of pages before moving on, and copies alternate between
 * a source and a destination chunk. The cache only ever holds
 * *exclusively owned* chunks — a cached pointer is handed out
 * writable by the hostSpan fast path, which must never bypass the
 * copy-on-write check — and it is dropped whenever chunks become
 * shared (saveState/restoreState). Exclusive chunk storage is never
 * freed or moved, so cached (and handed-out) pointers stay valid
 * until the next snapshot operation.
 */

#ifndef DSASIM_MEM_PHYS_MEM_HH
#define DSASIM_MEM_PHYS_MEM_HH

#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <utility>

#include "mem/types.hh"
#include "sim/logging.hh"

namespace dsasim
{

class PhysicalMemory
{
  public:
    static constexpr std::uint64_t chunkShift = 21; // 2 MiB
    static constexpr std::uint64_t chunkSize = 1ull << chunkShift;
    static constexpr std::uint64_t chunkMask = chunkSize - 1;

    explicit PhysicalMemory(std::uint64_t capacity_bytes)
        : capacity(capacity_bytes)
    {}

    std::uint64_t capacityBytes() const { return capacity; }

    /** Bytes of host memory actually materialized. */
    std::uint64_t
    residentBytes() const
    {
        return chunks.size() * chunkSize;
    }

    /** Chunks shared with a snapshot (not yet cloned by a write).
     * Telemetry only; the sum is iteration-order independent. */
    std::uint64_t
    sharedChunks() const
    {
        std::uint64_t n = 0;
        // simlint:allow(unordered-iter)
        for (const auto &kv : chunks)
            n += kv.second.use_count() > 1;
        return n;
    }

    /** Copy @p len bytes at offset @p pa into @p dst. */
    void read(Addr pa, void *dst, std::uint64_t len) const;

    /** Copy @p len bytes from @p src to offset @p pa. */
    void write(Addr pa, const void *src, std::uint64_t len);

    /** Fill [pa, pa+len) with byte @p value. */
    void fill(Addr pa, std::uint8_t value, std::uint64_t len);

    /**
     * Direct host pointer to [pa, pa+len). Only valid while the
     * PhysicalMemory lives, only until the next saveState/
     * restoreState, and only when the range does not cross a chunk
     * boundary; callers that operate page-at-a-time (pages never
     * straddle chunks) rely on this fast path. Materializes the
     * chunk on first touch and clones it if a snapshot still shares
     * it. Defined inline so the cache-hit path compiles down to a
     * couple of compares — it sits under every functional byte
     * moved.
     */
    std::uint8_t *
    hostSpan(Addr pa, std::uint64_t len)
    {
        std::uint64_t off = pa & chunkMask;
        panic_if(off + len > chunkSize,
                 "hostSpan crosses a chunk boundary "
                 "(pa=0x%llx len=%llu)",
                 static_cast<unsigned long long>(pa),
                 static_cast<unsigned long long>(len));
        if (std::uint8_t *c = cachedFor(pa >> chunkShift);
            c && pa < capacity)
            return c + off;
        return chunkFor(pa) + off;
    }

    const std::uint8_t *
    hostSpan(Addr pa, std::uint64_t len) const
    {
        std::uint64_t off = pa & chunkMask;
        panic_if(off + len > chunkSize,
                 "hostSpan crosses a chunk boundary "
                 "(pa=0x%llx len=%llu)",
                 static_cast<unsigned long long>(pa),
                 static_cast<unsigned long long>(len));
        if (const std::uint8_t *hit = cachedFor(pa >> chunkShift);
            hit && pa < capacity)
            return hit + off;
        const std::uint8_t *c = chunkForConst(pa);
        panic_if(!c, "const hostSpan of untouched memory (pa=0x%llx)",
                 static_cast<unsigned long long>(pa));
        return c + off;
    }

    /**
     * Like hostSpan, but returns nullptr when the chunk has never
     * been touched (the range reads as zeroes) instead of
     * materializing or panicking. The read-only span path uses this
     * so that scanning a sparse buffer stays sparse.
     */
    const std::uint8_t *
    hostSpanIfResident(Addr pa, std::uint64_t len) const
    {
        std::uint64_t off = pa & chunkMask;
        panic_if(off + len > chunkSize,
                 "hostSpan crosses a chunk boundary "
                 "(pa=0x%llx len=%llu)",
                 static_cast<unsigned long long>(pa),
                 static_cast<unsigned long long>(len));
        if (const std::uint8_t *hit = cachedFor(pa >> chunkShift);
            hit && pa < capacity)
            return hit + off;
        const std::uint8_t *c = chunkForConst(pa);
        return c ? c + off : nullptr;
    }

    /**
     * Checkpointable (sim/checkpoint.hh): the chunk map, by
     * reference. Capture shares every chunk (refcounts are atomic,
     * so concurrent forks from one snapshot are safe) and drops the
     * source's pointer cache so its next write takes the
     * copy-on-write path instead of mutating a now-shared chunk.
     */
    struct State
    {
        std::uint64_t capacity = 0;
        std::unordered_map<std::uint64_t,
                           std::shared_ptr<std::uint8_t[]>>
            chunks;
    };

    State saveState() const;
    void restoreState(const State &st);

  private:
    std::uint8_t *chunkFor(Addr pa);
    const std::uint8_t *chunkForConst(Addr pa) const;

    /** MRU-first probe of the two cached chunk entries. */
    std::uint8_t *
    cachedFor(std::uint64_t idx) const
    {
        if (idx == cachedIdx)
            return cachedChunk;
        if (idx == cachedIdx2) {
            std::swap(cachedIdx, cachedIdx2);
            std::swap(cachedChunk, cachedChunk2);
            return cachedChunk;
        }
        return nullptr;
    }

    /** Install @p idx as the MRU cache entry. Only exclusively
     * owned chunks may ever be cached (see file header). */
    void
    cacheInsert(std::uint64_t idx, std::uint8_t *chunk) const
    {
        cachedIdx2 = cachedIdx;
        cachedChunk2 = cachedChunk;
        cachedIdx = idx;
        cachedChunk = chunk;
    }

    void
    cacheDrop() const
    {
        cachedIdx = ~std::uint64_t{0};
        cachedChunk = nullptr;
        cachedIdx2 = ~std::uint64_t{0};
        cachedChunk2 = nullptr;
    }

    std::uint64_t capacity;
    std::unordered_map<std::uint64_t, std::shared_ptr<std::uint8_t[]>>
        chunks;
    // Two-entry cache of recently looked-up exclusively-owned chunks
    // (copies alternate source/destination). Exclusive chunk arrays
    // are stable, so the pointers never dangle; shared chunks are
    // never cached, so the hostSpan fast path cannot skip a
    // copy-on-write clone.
    mutable std::uint64_t cachedIdx = ~std::uint64_t{0};
    mutable std::uint8_t *cachedChunk = nullptr;
    mutable std::uint64_t cachedIdx2 = ~std::uint64_t{0};
    mutable std::uint8_t *cachedChunk2 = nullptr;
};

} // namespace dsasim

#endif // DSASIM_MEM_PHYS_MEM_HH
