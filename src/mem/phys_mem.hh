/**
 * @file
 * Sparse physical backing store.
 *
 * Every simulated memory node owns one PhysicalMemory. Storage is
 * materialized lazily in 2 MiB chunks so that multi-GB simulated
 * capacities cost only what the workload actually touches. All data
 * operations in dsasim are *functional* — a simulated copy really
 * moves these bytes — so tests can verify end-to-end data integrity.
 */

#ifndef DSASIM_MEM_PHYS_MEM_HH
#define DSASIM_MEM_PHYS_MEM_HH

#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>

#include "mem/types.hh"

namespace dsasim
{

class PhysicalMemory
{
  public:
    static constexpr std::uint64_t chunkShift = 21; // 2 MiB
    static constexpr std::uint64_t chunkSize = 1ull << chunkShift;
    static constexpr std::uint64_t chunkMask = chunkSize - 1;

    explicit PhysicalMemory(std::uint64_t capacity_bytes)
        : capacity(capacity_bytes)
    {}

    std::uint64_t capacityBytes() const { return capacity; }

    /** Bytes of host memory actually materialized. */
    std::uint64_t
    residentBytes() const
    {
        return chunks.size() * chunkSize;
    }

    /** Copy @p len bytes at offset @p pa into @p dst. */
    void read(Addr pa, void *dst, std::uint64_t len) const;

    /** Copy @p len bytes from @p src to offset @p pa. */
    void write(Addr pa, const void *src, std::uint64_t len);

    /** Fill [pa, pa+len) with byte @p value. */
    void fill(Addr pa, std::uint8_t value, std::uint64_t len);

    /**
     * Direct host pointer to [pa, pa+len). Only valid while the
     * PhysicalMemory lives and only when the range does not cross a
     * chunk boundary; callers that operate page-at-a-time (pages
     * never straddle chunks) rely on this fast path.
     */
    std::uint8_t *hostSpan(Addr pa, std::uint64_t len);
    const std::uint8_t *hostSpan(Addr pa, std::uint64_t len) const;

  private:
    std::uint8_t *chunkFor(Addr pa);
    const std::uint8_t *chunkForConst(Addr pa) const;

    std::uint64_t capacity;
    std::unordered_map<std::uint64_t, std::unique_ptr<std::uint8_t[]>>
        chunks;
};

} // namespace dsasim

#endif // DSASIM_MEM_PHYS_MEM_HH
