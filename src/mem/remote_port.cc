#include "mem/remote_port.hh"

#include <algorithm>

#include "sim/sync.hh"

namespace dsasim
{

RemotePort::RemotePort(Simulation &src_sim,
                       PartitionChannel &tx_channel, double wire_gbps,
                       Tick wire_latency, std::string port_name)
    : sim(src_sim), tx(tx_channel),
      wire(src_sim, wire_gbps, port_name + ".wire"),
      wireLat(wire_latency), name(std::move(port_name))
{
    fatal_if(wire_latency == 0,
             "RemotePort '%s': zero wire latency (the partition "
             "lookahead would vanish)",
             name.c_str());
    // Telemetry: UPI link traffic as supplier-backed counters under
    // the port's own name (e.g. upi.s0-s1.bytes_pushed).
    stats::Registry &reg = src_sim.stats();
    reg.counter(name + ".bytes_pushed",
                "bytes pushed to the remote socket over this port",
                [this] { return pushed; });
    reg.counter(name + ".bytes_pulled",
                "bytes pulled from the remote socket over this port",
                [this] { return pulled; });
    reg.counter(name + ".round_trips",
                "request/ack round trips over this port",
                [this] { return trips; });
}

void
RemotePort::attachRemote(const RemoteEnd &end)
{
    fatal_if(!end.sim || !end.node || !end.ack,
             "RemotePort '%s': incomplete remote end", name.c_str());
    remote = end;
    // The ack must itself be postable on its channel; a caller-chosen
    // notification latency below the channel's declared floor would
    // trip the lookahead panic on every completion.
    remote.ackLatency =
        std::max(remote.ackLatency, end.ack->minLatency());
}

Tick
RemotePort::sendAt(Tick when) const
{
    // Defer into the channel's latency floor when the cluster raised
    // it above the bare wire latency (send-side aggregation).
    return std::max(when, sim.now() + tx.minLatency());
}

CoTask
RemotePort::push(std::uint64_t bytes)
{
    fatal_if(!remote.sim, "RemotePort '%s': remote end not attached",
             name.c_str());
    pushed += bytes;
    ++trips;
    const Tick depart = wire.occupy(bytes);
    Trigger done(sim);
    tx.post(sendAt(depart + wireLat), [this, bytes, &done]() {
        // Destination domain, at the data's arrival tick: the write
        // contends with the remote socket's own traffic on its real
        // DRAM write link.
        Simulation &dsim = *remote.sim;
        const Tick fin = remote.node->writeLink.occupy(bytes);
        const Tick at = std::max(fin, dsim.now());
        remote.ack->post(at + remote.ackLatency,
                         [&done]() { done.fire(); });
    });
    co_await done.wait();
}

CoTask
RemotePort::pull(std::uint64_t bytes)
{
    fatal_if(!remote.sim, "RemotePort '%s': remote end not attached",
             name.c_str());
    pulled += bytes;
    ++trips;
    const Tick depart = wire.occupy(requestBytes);
    Trigger done(sim);
    tx.post(sendAt(depart + wireLat), [this, bytes, &done]() {
        Simulation &dsim = *remote.sim;
        const Tick fin = remote.node->readLink.occupy(bytes);
        // The payload streams back over the destination-owned
        // reverse wire direction once the read completes.
        const Tick out = remote.returnWire
                             ? remote.returnWire->occupyAt(fin, bytes)
                             : fin;
        const Tick at = std::max(out, dsim.now());
        remote.ack->post(at + remote.ackLatency,
                         [&done]() { done.fire(); });
    });
    co_await done.wait();
}

} // namespace dsasim
