/**
 * @file
 * RemotePort: cross-socket memory traffic as partition-channel link
 * events.
 *
 * Inside one socket domain, MemSystem charges remote accesses against
 * shared LinkResources synchronously — fine when every socket lives
 * in one calendar, impossible once sockets run on different worker
 * threads. A RemotePort is the partitioned replacement: the source
 * domain owns the outbound wire direction (a LinkResource modeling
 * its UPI/CXL TX), and everything past the wire happens in the
 * destination domain, at the message's arrival tick, against the
 * destination's *real* DRAM links — so cross-socket traffic contends
 * honestly with the remote socket's local traffic. Completion returns
 * as an ack message that fires a Trigger back in the source domain.
 *
 *   push(bytes):  TX wire occupy -> [channel] -> remote writeLink
 *                 occupy -> [ack channel] -> Trigger
 *   pull(bytes):  TX wire occupy (request) -> [channel] -> remote
 *                 readLink occupy -> return wire occupy -> [ack
 *                 channel] -> Trigger
 *
 * Timestamps posted to a channel must respect its declared minimum
 * latency (the lookahead). When a cluster raises a channel's floor
 * above the bare wire latency (see ClusterConfig::lookaheadBytes),
 * the port defers sends to now + floor — modeling send-side
 * aggregation, the classical price of a larger lookahead.
 */

#ifndef DSASIM_MEM_REMOTE_PORT_HH
#define DSASIM_MEM_REMOTE_PORT_HH

#include <cstdint>
#include <string>

#include "mem/mem_system.hh"
#include "sim/link.hh"
#include "sim/partition.hh"
#include "sim/task.hh"

namespace dsasim
{

class RemotePort
{
  public:
    /** The destination-domain half of the wiring (see attachRemote).
     * All fields are written once at cluster-build time and only read
     * afterwards, from the destination's worker thread. */
    struct RemoteEnd
    {
        Simulation *sim = nullptr;  ///< destination kernel
        MemNode *node = nullptr;    ///< destination DRAM node
        /** Destination-owned reverse wire direction carrying pull
         * payloads back (nullptr: return serialization not modeled). */
        LinkResource *returnWire = nullptr;
        PartitionChannel *ack = nullptr; ///< dst -> src channel
        Tick ackLatency = 0; ///< completion-notification latency
    };

    /**
     * @param src_sim      source-domain kernel
     * @param tx_channel   src -> dst partition channel
     * @param wire_gbps    outbound wire direction bandwidth
     * @param wire_latency one-way wire latency
     */
    RemotePort(Simulation &src_sim, PartitionChannel &tx_channel,
               double wire_gbps, Tick wire_latency, std::string name);

    void attachRemote(const RemoteEnd &end);

    /** Write @p bytes into the remote node; resumes on ack. */
    CoTask push(std::uint64_t bytes);

    /** Read @p bytes from the remote node; resumes when the data has
     * streamed back over the reverse wire. */
    CoTask pull(std::uint64_t bytes);

    /** Source-owned outbound wire direction (shared with the reverse
     * port's pull returns). */
    LinkResource &wireLink() { return wire; }

    const std::string &portName() const { return name; }
    std::uint64_t bytesPushed() const { return pushed; }
    std::uint64_t bytesPulled() const { return pulled; }
    std::uint64_t roundTrips() const { return trips; }

    /** A pull request is a descriptor-sized control packet. */
    static constexpr std::uint64_t requestBytes = 64;

  private:
    /** Earliest legal delivery tick for a send intended at @p when:
     * defers into the channel's declared latency floor. */
    Tick sendAt(Tick when) const;

    Simulation &sim;
    PartitionChannel &tx;
    LinkResource wire;
    const Tick wireLat;
    std::string name;
    RemoteEnd remote;
    std::uint64_t pushed = 0;
    std::uint64_t pulled = 0;
    std::uint64_t trips = 0;
};

} // namespace dsasim

#endif // DSASIM_MEM_REMOTE_PORT_HH
