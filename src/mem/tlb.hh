/**
 * @file
 * A generic LRU translation cache, instantiated three ways:
 * the core TLB, the IOMMU's IOTLB, and each DSA device's address
 * translation cache (ATC).
 */

#ifndef DSASIM_MEM_TLB_HH
#define DSASIM_MEM_TLB_HH

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "mem/types.hh"

namespace dsasim
{

class TranslationCache
{
  public:
    explicit TranslationCache(std::size_t num_entries)
        : capacity(num_entries)
    {}

    /**
     * Look up the page containing (@p pasid, @p va_page_base).
     * A hit refreshes the entry's recency.
     */
    bool
    lookup(Pasid pasid, Addr va_page_base)
    {
        std::uint64_t k = key(pasid, va_page_base);
        // Streaming accesses hit the same page back to back; the
        // MRU entry is already at the front, so the splice (and the
        // hash probe) can be skipped without changing LRU order.
        if (!lru.empty() && lru.front() == k) {
            ++hitCount;
            return true;
        }
        auto it = index.find(k);
        if (it == index.end()) {
            ++missCount;
            return false;
        }
        lru.splice(lru.begin(), lru, it->second);
        ++hitCount;
        return true;
    }

    /** Install a translation, evicting the LRU entry if full. */
    void
    insert(Pasid pasid, Addr va_page_base)
    {
        std::uint64_t k = key(pasid, va_page_base);
        if (!lru.empty() && lru.front() == k)
            return;
        auto it = index.find(k);
        if (it != index.end()) {
            lru.splice(lru.begin(), lru, it->second);
            return;
        }
        if (capacity == 0)
            return;
        if (lru.size() >= capacity) {
            index.erase(lru.back());
            lru.pop_back();
        }
        lru.push_front(k);
        index[k] = lru.begin();
    }

    /** Invalidate one page's entry (page-granular shootdown). */
    void
    invalidate(Pasid pasid, Addr va_page_base)
    {
        auto it = index.find(key(pasid, va_page_base));
        if (it == index.end())
            return;
        lru.erase(it->second);
        index.erase(it);
    }

    /** Full flush (e.g., on PASID teardown). */
    void
    clear()
    {
        lru.clear();
        index.clear();
    }

    std::size_t size() const { return lru.size(); }
    std::size_t entryCapacity() const { return capacity; }
    std::uint64_t hits() const { return hitCount; }
    std::uint64_t misses() const { return missCount; }

    void
    resetStats()
    {
        hitCount = 0;
        missCount = 0;
    }

    /**
     * Checkpointable (sim/checkpoint.hh): entries in exact recency
     * order (MRU first) plus the hit/miss counters — future
     * evictions depend on the full LRU ordering, not just the set.
     */
    struct State
    {
        std::vector<std::uint64_t> entriesMruFirst;
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
    };

    State
    saveState() const
    {
        return State{{lru.begin(), lru.end()}, hitCount, missCount};
    }

    void
    restoreState(const State &st)
    {
        clear();
        // push_back preserves the saved order: front stays MRU.
        for (std::uint64_t k : st.entriesMruFirst) {
            lru.push_back(k);
            index[k] = std::prev(lru.end());
        }
        hitCount = st.hits;
        missCount = st.misses;
    }

  private:
    static std::uint64_t
    key(Pasid pasid, Addr va_page_base)
    {
        // The VA allocator hands out addresses below 2^40, so the
        // 4K page number fits in 28 bits and never collides with the
        // PASID field.
        return (static_cast<std::uint64_t>(pasid) << 40) |
               (va_page_base >> 12);
    }

    std::size_t capacity;
    std::list<std::uint64_t> lru;
    std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator>
        index;
    std::uint64_t hitCount = 0;
    std::uint64_t missCount = 0;
};

} // namespace dsasim

#endif // DSASIM_MEM_TLB_HH
