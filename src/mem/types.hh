/**
 * @file
 * Common memory-system vocabulary types.
 */

#ifndef DSASIM_MEM_TYPES_HH
#define DSASIM_MEM_TYPES_HH

#include <cstdint>
#include <string>

namespace dsasim
{

/** Simulated addresses (both virtual and physical) are 64-bit. */
using Addr = std::uint64_t;

/** Process address space identifier (SVM/PASID). */
using Pasid = std::uint32_t;

constexpr Addr cacheLineSize = 64;

/** Round @p a down/up to a cache-line boundary. */
constexpr Addr lineAlignDown(Addr a) { return a & ~(cacheLineSize - 1); }
constexpr Addr
lineAlignUp(Addr a)
{
    return (a + cacheLineSize - 1) & ~(cacheLineSize - 1);
}

/** Number of cache lines overlapped by [addr, addr+size). */
constexpr std::uint64_t
linesCovered(Addr addr, std::uint64_t size)
{
    if (size == 0)
        return 0;
    return (lineAlignUp(addr + size) - lineAlignDown(addr)) / cacheLineSize;
}

/** Memory medium kinds of the evaluated platforms (Table 2 / Fig. 6). */
enum class MemKind : std::uint8_t
{
    DramLocal,  ///< DDR attached to the requester's socket
    DramRemote, ///< DDR on the other socket, reached over UPI
    Cxl,        ///< CXL 1.1 type-3 device (Agilex-I dev kit stand-in)
};

inline const char *
memKindName(MemKind k)
{
    switch (k) {
      case MemKind::DramLocal: return "DRAM-local";
      case MemKind::DramRemote: return "DRAM-remote";
      case MemKind::Cxl: return "CXL";
    }
    return "?";
}

/** Page sizes supported by the address-space allocator (Fig. 8). */
enum class PageSize : std::uint8_t
{
    Size4K,
    Size2M,
};

constexpr std::uint64_t
pageBytes(PageSize ps)
{
    return ps == PageSize::Size4K ? (1ull << 12) : (1ull << 21);
}

/**
 * Who is touching memory. Cache-occupancy accounting (pqos-style,
 * Fig. 12) and NUMA routing key off this.
 */
struct Agent
{
    enum class Kind : std::uint8_t { Core, Device };

    Kind kind = Kind::Core;
    /** Socket the agent lives on (routing to local/remote DRAM). */
    int socket = 0;
    /** Occupancy-monitoring id; unique per core / per device. */
    int ownerId = 0;

    static Agent
    core(int owner_id, int socket_id = 0)
    {
        return {Kind::Core, socket_id, owner_id};
    }

    static Agent
    device(int owner_id, int socket_id = 0)
    {
        return {Kind::Device, socket_id, owner_id};
    }
};

} // namespace dsasim

#endif // DSASIM_MEM_TYPES_HH
