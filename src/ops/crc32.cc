#include "ops/crc32.hh"

#include <array>

namespace dsasim
{

namespace
{

/** Reflected CRC-32C table for polynomial 0x1EDC6F41. */
constexpr std::array<std::uint32_t, 256>
makeCrc32cTable()
{
    std::array<std::uint32_t, 256> table{};
    constexpr std::uint32_t poly = 0x82f63b78u; // reflected 0x1EDC6F41
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t crc = i;
        for (int bit = 0; bit < 8; ++bit)
            crc = (crc >> 1) ^ ((crc & 1) ? poly : 0);
        table[i] = crc;
    }
    return table;
}

constexpr auto crc32cTable = makeCrc32cTable();

/** MSB-first CRC-16 table for the T10-DIF polynomial 0x8BB7. */
constexpr std::array<std::uint16_t, 256>
makeCrc16Table()
{
    std::array<std::uint16_t, 256> table{};
    constexpr std::uint16_t poly = 0x8bb7;
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint16_t crc = static_cast<std::uint16_t>(i << 8);
        for (int bit = 0; bit < 8; ++bit) {
            crc = static_cast<std::uint16_t>(
                (crc << 1) ^ ((crc & 0x8000) ? poly : 0));
        }
        table[i] = crc;
    }
    return table;
}

constexpr auto crc16Table = makeCrc16Table();

} // namespace

std::uint32_t
crc32c(const void *data, std::size_t len, std::uint32_t seed)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint32_t crc = seed;
    for (std::size_t i = 0; i < len; ++i)
        crc = (crc >> 8) ^ crc32cTable[(crc ^ p[i]) & 0xff];
    return crc;
}

std::uint16_t
crc16T10(const void *data, std::size_t len, std::uint16_t seed)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint16_t crc = seed;
    for (std::size_t i = 0; i < len; ++i) {
        crc = static_cast<std::uint16_t>(
            (crc << 8) ^ crc16Table[((crc >> 8) ^ p[i]) & 0xff]);
    }
    return crc;
}

} // namespace dsasim
