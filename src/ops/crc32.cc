#include "ops/crc32.hh"

#include <array>
#include <bit>
#include <cstring>

namespace dsasim
{

namespace
{

/**
 * Slice-by-8 tables for reflected CRC-32C (polynomial 0x1EDC6F41).
 * t[0] is the classic byte-at-a-time table; t[k][b] is the CRC
 * contribution of byte b advanced through k additional zero bytes,
 * so eight input bytes can be folded with eight independent lookups
 * per 64-bit load.
 */
struct Crc32cTables
{
    std::uint32_t t[8][256];
};

constexpr Crc32cTables
makeCrc32cTables()
{
    Crc32cTables T{};
    constexpr std::uint32_t poly = 0x82f63b78u; // reflected 0x1EDC6F41
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t crc = i;
        for (int bit = 0; bit < 8; ++bit)
            crc = (crc >> 1) ^ ((crc & 1) ? poly : 0);
        T.t[0][i] = crc;
    }
    for (int k = 1; k < 8; ++k)
        for (std::uint32_t i = 0; i < 256; ++i)
            T.t[k][i] =
                (T.t[k - 1][i] >> 8) ^ T.t[0][T.t[k - 1][i] & 0xff];
    return T;
}

constexpr auto crc32cT = makeCrc32cTables();

/**
 * Slice-by-8 tables for the MSB-first T10-DIF CRC-16 (poly 0x8BB7).
 * u[k][b] = the CRC state of byte b advanced through k+1 byte shifts;
 * table linearity over GF(2) lets the running CRC fold into the first
 * two byte lookups.
 */
struct Crc16Tables
{
    std::uint16_t u[8][256];
};

constexpr Crc16Tables
makeCrc16Tables()
{
    Crc16Tables U{};
    constexpr std::uint16_t poly = 0x8bb7;
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint16_t crc = static_cast<std::uint16_t>(i << 8);
        for (int bit = 0; bit < 8; ++bit) {
            crc = static_cast<std::uint16_t>(
                (crc << 1) ^ ((crc & 0x8000) ? poly : 0));
        }
        U.u[0][i] = crc;
    }
    for (int k = 1; k < 8; ++k)
        for (std::uint32_t i = 0; i < 256; ++i)
            U.u[k][i] = static_cast<std::uint16_t>(
                (U.u[k - 1][i] << 8) ^
                U.u[0][(U.u[k - 1][i] >> 8) & 0xff]);
    return U;
}

constexpr auto crc16T = makeCrc16Tables();

} // namespace

std::uint32_t
crc32c(const void *data, std::size_t len, std::uint32_t seed)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint32_t crc = seed;
    const auto &t = crc32cT.t;
    if constexpr (std::endian::native == std::endian::little) {
        while (len >= 8) {
            std::uint64_t w;
            std::memcpy(&w, p, 8);
            w ^= crc;
            crc = t[7][w & 0xff] ^ t[6][(w >> 8) & 0xff] ^
                  t[5][(w >> 16) & 0xff] ^ t[4][(w >> 24) & 0xff] ^
                  t[3][(w >> 32) & 0xff] ^ t[2][(w >> 40) & 0xff] ^
                  t[1][(w >> 48) & 0xff] ^ t[0][(w >> 56) & 0xff];
            p += 8;
            len -= 8;
        }
    }
    while (len--)
        crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xff];
    return crc;
}

std::uint16_t
crc16T10(const void *data, std::size_t len, std::uint16_t seed)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint16_t crc = seed;
    const auto &u = crc16T.u;
    while (len >= 8) {
        crc = static_cast<std::uint16_t>(
            u[7][p[0] ^ (crc >> 8)] ^ u[6][p[1] ^ (crc & 0xff)] ^
            u[5][p[2]] ^ u[4][p[3]] ^ u[3][p[4]] ^ u[2][p[5]] ^
            u[1][p[6]] ^ u[0][p[7]]);
        p += 8;
        len -= 8;
    }
    while (len--) {
        crc = static_cast<std::uint16_t>(
            (crc << 8) ^ u[0][((crc >> 8) ^ *p++) & 0xff]);
    }
    return crc;
}

std::uint32_t
crc32cBitwise(const void *data, std::size_t len, std::uint32_t seed)
{
    constexpr std::uint32_t poly = 0x82f63b78u;
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint32_t crc = seed;
    for (std::size_t i = 0; i < len; ++i) {
        crc ^= p[i];
        for (int bit = 0; bit < 8; ++bit)
            crc = (crc >> 1) ^ ((crc & 1) ? poly : 0);
    }
    return crc;
}

std::uint16_t
crc16T10Bitwise(const void *data, std::size_t len, std::uint16_t seed)
{
    constexpr std::uint16_t poly = 0x8bb7;
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint16_t crc = seed;
    for (std::size_t i = 0; i < len; ++i) {
        crc = static_cast<std::uint16_t>(crc ^ (p[i] << 8));
        for (int bit = 0; bit < 8; ++bit) {
            crc = static_cast<std::uint16_t>(
                (crc << 1) ^ ((crc & 0x8000) ? poly : 0));
        }
    }
    return crc;
}

} // namespace dsasim
