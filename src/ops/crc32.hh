/**
 * @file
 * CRC-32C (Castagnoli) — the checksum DSA's CRC Generation operation
 * and ISA-L's crc32_iscsi compute. Slice-by-8 table lookup with
 * word-at-a-time loads; bit-at-a-time reference implementations are
 * kept for cross-checking in the tests.
 */

#ifndef DSASIM_OPS_CRC32_HH
#define DSASIM_OPS_CRC32_HH

#include <cstddef>
#include <cstdint>

namespace dsasim
{

/**
 * Incremental CRC-32C over @p len bytes.
 *
 * @param seed running CRC state; pass crc32cInit for a fresh
 *        computation and chain the return value for continuations.
 *        The DSA descriptor's "CRC seed" field maps directly here.
 */
std::uint32_t crc32c(const void *data, std::size_t len,
                     std::uint32_t seed);

constexpr std::uint32_t crc32cInit = 0xffffffffu;

/** Finalize a chained crc32c state (the standard final inversion). */
constexpr std::uint32_t
crc32cFinish(std::uint32_t state)
{
    return state ^ 0xffffffffu;
}

/** One-shot convenience: full CRC-32C of a buffer. */
inline std::uint32_t
crc32cFull(const void *data, std::size_t len)
{
    return crc32cFinish(crc32c(data, len, crc32cInit));
}

/**
 * CRC-16 T10-DIF (poly 0x8BB7, MSB-first, zero init) — the guard tag
 * of the Data Integrity Field operations.
 */
std::uint16_t crc16T10(const void *data, std::size_t len,
                       std::uint16_t seed = 0);

/**
 * Bit-at-a-time reference implementations, straight from the
 * polynomial definitions. Slow; exist so tests can verify the
 * slice-by-8 fast paths against an independent formulation.
 */
std::uint32_t crc32cBitwise(const void *data, std::size_t len,
                            std::uint32_t seed);
std::uint16_t crc16T10Bitwise(const void *data, std::size_t len,
                              std::uint16_t seed = 0);

} // namespace dsasim

#endif // DSASIM_OPS_CRC32_HH
