#include "ops/delta.hh"

#include <cstring>

#include "sim/logging.hh"

namespace dsasim
{

DeltaResult
deltaCreate(const std::uint8_t *original, const std::uint8_t *modified,
            std::size_t len, std::size_t max_record_bytes)
{
    panic_if(len % deltaWordBytes != 0,
             "delta input length %zu not a multiple of 8", len);
    panic_if(len > deltaMaxInputBytes,
             "delta input length %zu exceeds the 16-bit offset reach",
             len);

    DeltaResult res;
    const std::size_t words = len / deltaWordBytes;
    for (std::size_t w = 0; w < words; ++w) {
        const std::uint8_t *a = original + w * deltaWordBytes;
        const std::uint8_t *b = modified + w * deltaWordBytes;
        std::uint64_t wa, wb;
        std::memcpy(&wa, a, deltaWordBytes);
        std::memcpy(&wb, b, deltaWordBytes);
        if (wa == wb)
            continue;
        ++res.mismatchedWords;
        if (res.record.size() + deltaEntryBytes > max_record_bytes) {
            res.fits = false;
            continue; // keep counting mismatches, emit nothing more
        }
        const std::uint16_t off = static_cast<std::uint16_t>(w);
        const std::size_t at = res.record.size();
        res.record.resize(at + deltaEntryBytes);
        std::uint8_t *e = res.record.data() + at;
        e[0] = static_cast<std::uint8_t>(off & 0xff);
        e[1] = static_cast<std::uint8_t>(off >> 8);
        std::memcpy(e + 2, &wb, deltaWordBytes);
    }
    return res;
}

bool
deltaApply(std::uint8_t *buffer, std::size_t len,
           const std::uint8_t *record, std::size_t record_len,
           bool skip_out_of_range)
{
    if (record_len % deltaEntryBytes != 0)
        return false;
    for (std::size_t i = 0; i < record_len; i += deltaEntryBytes) {
        std::uint16_t off = static_cast<std::uint16_t>(
            record[i] | (record[i + 1] << 8));
        std::size_t byte_off =
            static_cast<std::size_t>(off) * deltaWordBytes;
        if (byte_off + deltaWordBytes > len) {
            if (skip_out_of_range)
                continue;
            return false;
        }
        std::memcpy(buffer + byte_off, record + i + 2, deltaWordBytes);
    }
    return true;
}

bool
deltaRecordValid(const std::uint8_t *record, std::size_t record_len,
                 std::size_t len, bool skip_out_of_range)
{
    if (record_len % deltaEntryBytes != 0)
        return false;
    if (skip_out_of_range)
        return true; // out-of-range entries are skipped, not errors
    for (std::size_t i = 0; i < record_len; i += deltaEntryBytes) {
        std::uint16_t off = static_cast<std::uint16_t>(
            record[i] | (record[i + 1] << 8));
        std::size_t byte_off =
            static_cast<std::size_t>(off) * deltaWordBytes;
        if (byte_off + deltaWordBytes > len)
            return false;
    }
    return true;
}

} // namespace dsasim
