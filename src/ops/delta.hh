/**
 * @file
 * Delta records, following the DSA architecture specification's
 * format: the two inputs are compared in 8-byte words; each
 * mismatching word emits a 10-byte record entry of a 2-byte word
 * offset followed by the 8-byte data from the second ("modified")
 * input. Applying a delta record to a copy of the original
 * reconstructs the modified buffer.
 */

#ifndef DSASIM_OPS_DELTA_HH
#define DSASIM_OPS_DELTA_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dsasim
{

constexpr std::size_t deltaEntryBytes = 10;
constexpr std::size_t deltaWordBytes = 8;

/** Largest input the 16-bit word offset can describe. */
constexpr std::size_t deltaMaxInputBytes = (1ull << 16) * deltaWordBytes;

struct DeltaResult
{
    /** Serialized record entries (multiple of deltaEntryBytes). */
    std::vector<std::uint8_t> record;
    /** False if the record would exceed @p max_record_bytes. */
    bool fits = true;
    /** Number of mismatching 8-byte words found (even if !fits). */
    std::uint64_t mismatchedWords = 0;
};

/**
 * Create a delta record describing how to turn @p original into
 * @p modified. @p len must be a multiple of 8 and at most
 * deltaMaxInputBytes.
 *
 * @param max_record_bytes mirrors the descriptor's maximum delta
 *        record size field; generation stops early when exceeded.
 */
DeltaResult deltaCreate(const std::uint8_t *original,
                        const std::uint8_t *modified,
                        std::size_t len,
                        std::size_t max_record_bytes);

/**
 * Apply @p record (of @p record_len bytes) onto @p buffer in place.
 * Returns false if the record is malformed (bad length or an offset
 * beyond @p len).
 *
 * @param skip_out_of_range treat entries past @p len as "not yet
 *        reachable" rather than malformed — the partial-completion
 *        path, where only a prefix of the destination is writable.
 */
bool deltaApply(std::uint8_t *buffer, std::size_t len,
                const std::uint8_t *record, std::size_t record_len,
                bool skip_out_of_range = false);

/**
 * Would deltaApply succeed? Same malformed-record rules, no writes.
 * In-place (zero-copy) application validates with this first so a
 * malformed record leaves the destination untouched, exactly like
 * the copy-in/apply/copy-out path did.
 */
bool deltaRecordValid(const std::uint8_t *record,
                      std::size_t record_len, std::size_t len,
                      bool skip_out_of_range = false);

} // namespace dsasim

#endif // DSASIM_OPS_DELTA_HH
