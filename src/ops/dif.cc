#include "ops/dif.hh"

#include <cstring>

#include "ops/crc32.hh"

namespace dsasim
{

bool
difBlockSizeValid(std::size_t block_bytes)
{
    return block_bytes == 512 || block_bytes == 520 ||
           block_bytes == 4096 || block_bytes == 4104;
}

DifTuple
difCompute(const std::uint8_t *block, std::size_t block_bytes,
           std::uint16_t app_tag, std::uint32_t ref_tag)
{
    DifTuple t;
    t.guard = crc16T10(block, block_bytes);
    t.appTag = app_tag;
    t.refTag = ref_tag;
    return t;
}

void
difStore(const DifTuple &t, std::uint8_t *out)
{
    out[0] = static_cast<std::uint8_t>(t.guard >> 8);
    out[1] = static_cast<std::uint8_t>(t.guard & 0xff);
    out[2] = static_cast<std::uint8_t>(t.appTag >> 8);
    out[3] = static_cast<std::uint8_t>(t.appTag & 0xff);
    out[4] = static_cast<std::uint8_t>(t.refTag >> 24);
    out[5] = static_cast<std::uint8_t>(t.refTag >> 16);
    out[6] = static_cast<std::uint8_t>(t.refTag >> 8);
    out[7] = static_cast<std::uint8_t>(t.refTag & 0xff);
}

DifTuple
difLoad(const std::uint8_t *in)
{
    DifTuple t;
    t.guard = static_cast<std::uint16_t>((in[0] << 8) | in[1]);
    t.appTag = static_cast<std::uint16_t>((in[2] << 8) | in[3]);
    t.refTag = (static_cast<std::uint32_t>(in[4]) << 24) |
               (static_cast<std::uint32_t>(in[5]) << 16) |
               (static_cast<std::uint32_t>(in[6]) << 8) |
               static_cast<std::uint32_t>(in[7]);
    return t;
}

void
difInsert(const std::uint8_t *src, std::uint8_t *dst,
          std::size_t block_bytes, std::size_t nblocks,
          std::uint16_t app_tag, std::uint32_t ref_tag_start)
{
    for (std::size_t b = 0; b < nblocks; ++b) {
        const std::uint8_t *in = src + b * block_bytes;
        std::uint8_t *out = dst + b * (block_bytes + difTupleBytes);
        std::memcpy(out, in, block_bytes);
        DifTuple t = difCompute(in, block_bytes, app_tag,
                                ref_tag_start +
                                    static_cast<std::uint32_t>(b));
        difStore(t, out + block_bytes);
    }
}

DifCheckResult
difCheck(const std::uint8_t *src, std::size_t block_bytes,
         std::size_t nblocks, std::uint16_t app_tag,
         std::uint32_t ref_tag_start)
{
    DifCheckResult res;
    for (std::size_t b = 0; b < nblocks; ++b) {
        const std::uint8_t *in = src + b * (block_bytes + difTupleBytes);
        DifTuple stored = difLoad(in + block_bytes);
        DifTuple expect = difCompute(
            in, block_bytes, app_tag,
            ref_tag_start + static_cast<std::uint32_t>(b));
        if (stored.guard != expect.guard ||
            stored.appTag != expect.appTag ||
            stored.refTag != expect.refTag) {
            res.ok = false;
            res.failedBlock = b;
            return res;
        }
    }
    return res;
}

void
difStrip(const std::uint8_t *src, std::uint8_t *dst,
         std::size_t block_bytes, std::size_t nblocks)
{
    for (std::size_t b = 0; b < nblocks; ++b) {
        std::memcpy(dst + b * block_bytes,
                    src + b * (block_bytes + difTupleBytes),
                    block_bytes);
    }
}

DifCheckResult
difUpdate(const std::uint8_t *src, std::uint8_t *dst,
          std::size_t block_bytes, std::size_t nblocks,
          std::uint16_t old_app_tag, std::uint32_t old_ref_tag_start,
          std::uint16_t new_app_tag, std::uint32_t new_ref_tag_start)
{
    DifCheckResult res =
        difCheck(src, block_bytes, nblocks, old_app_tag,
                 old_ref_tag_start);
    if (!res.ok)
        return res;
    for (std::size_t b = 0; b < nblocks; ++b) {
        const std::uint8_t *in = src + b * (block_bytes + difTupleBytes);
        std::uint8_t *out = dst + b * (block_bytes + difTupleBytes);
        std::memcpy(out, in, block_bytes);
        DifTuple t = difCompute(
            in, block_bytes, new_app_tag,
            new_ref_tag_start + static_cast<std::uint32_t>(b));
        difStore(t, out + block_bytes);
    }
    return res;
}

} // namespace dsasim
