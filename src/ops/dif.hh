/**
 * @file
 * T10 Data Integrity Field operations, as supported by DSA for
 * 512/520/4096/4104-byte blocks: each protected block carries an
 * 8-byte DIF tuple of {guard CRC16, application tag, reference tag}.
 *
 *  - insert: source blocks -> destination blocks + DIF
 *  - check:  verify DIF on source blocks (no data movement)
 *  - strip:  source blocks + DIF -> destination blocks
 *  - update: source blocks + DIF -> destination blocks + new DIF
 */

#ifndef DSASIM_OPS_DIF_HH
#define DSASIM_OPS_DIF_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dsasim
{

constexpr std::size_t difTupleBytes = 8;

/** Block sizes DSA accepts for DIF operations. */
bool difBlockSizeValid(std::size_t block_bytes);

struct DifTuple
{
    std::uint16_t guard = 0;  ///< CRC16-T10 of the block data
    std::uint16_t appTag = 0;
    std::uint32_t refTag = 0; ///< typically the starting LBA, +1/block
};

/** Compute the DIF tuple for one block. */
DifTuple difCompute(const std::uint8_t *block, std::size_t block_bytes,
                    std::uint16_t app_tag, std::uint32_t ref_tag);

/** Serialize / deserialize a tuple (big-endian, per T10 convention). */
void difStore(const DifTuple &t, std::uint8_t *out);
DifTuple difLoad(const std::uint8_t *in);

struct DifCheckResult
{
    bool ok = true;
    std::size_t failedBlock = 0; ///< first failing block index
};

/**
 * Insert DIF: @p src holds @p nblocks of @p block_bytes each;
 * @p dst receives nblocks * (block_bytes + 8) bytes.
 */
void difInsert(const std::uint8_t *src, std::uint8_t *dst,
               std::size_t block_bytes, std::size_t nblocks,
               std::uint16_t app_tag, std::uint32_t ref_tag_start);

/** Check DIF over protected data (block + tuple per block). */
DifCheckResult difCheck(const std::uint8_t *src,
                        std::size_t block_bytes, std::size_t nblocks,
                        std::uint16_t app_tag,
                        std::uint32_t ref_tag_start);

/** Strip DIF: protected source -> plain destination blocks. */
void difStrip(const std::uint8_t *src, std::uint8_t *dst,
              std::size_t block_bytes, std::size_t nblocks);

/**
 * Update DIF: verify the source tuples, then re-emit the data with
 * new app/ref tags. Returns the check result for the source.
 */
DifCheckResult difUpdate(const std::uint8_t *src, std::uint8_t *dst,
                         std::size_t block_bytes, std::size_t nblocks,
                         std::uint16_t old_app_tag,
                         std::uint32_t old_ref_tag_start,
                         std::uint16_t new_app_tag,
                         std::uint32_t new_ref_tag_start);

} // namespace dsasim

#endif // DSASIM_OPS_DIF_HH
