#include "ops/span_kernels.hh"

#include <algorithm>
#include <cstring>
#include <vector>

#include "ops/crc32.hh"

namespace dsasim
{

namespace
{

/** Zero source for never-written (sparse) spans. */
constexpr std::uint64_t zeroBytes = 1ull << 16;
alignas(64) const std::uint8_t kZeros[zeroBytes] = {};

using Span = AddressSpace::Span;
using ConstSpan = AddressSpace::ConstSpan;

std::uint32_t
zeroCrc(std::uint32_t crc, std::uint64_t len)
{
    while (len > 0) {
        std::uint64_t run = std::min(len, zeroBytes);
        crc = crc32c(kZeros, run, crc);
        len -= run;
    }
    return crc;
}

/** Offset of the first differing byte, or @p n when equal. */
std::uint64_t
firstDiff(const std::uint8_t *a, const std::uint8_t *b,
          std::uint64_t n)
{
    constexpr std::uint64_t blk = 4096;
    for (std::uint64_t off = 0; off < n; off += blk) {
        std::uint64_t run = std::min(blk, n - off);
        if (std::memcmp(a + off, b + off, run) != 0) {
            for (std::uint64_t i = 0; i < run; ++i) {
                if (a[off + i] != b[off + i])
                    return off + i;
            }
        }
    }
    return n;
}

/** Offset of the first non-zero byte, or @p n when all zero. */
std::uint64_t
firstNonZero(const std::uint8_t *p, std::uint64_t n)
{
    for (std::uint64_t off = 0; off < n; off += zeroBytes) {
        std::uint64_t run = std::min(n - off, zeroBytes);
        if (std::memcmp(p + off, kZeros, run) != 0) {
            for (std::uint64_t i = 0; i < run; ++i) {
                if (p[off + i])
                    return off + i;
            }
        }
    }
    return n;
}

} // namespace

std::uint32_t
spanCrc(const AddressSpace &as, Addr src, std::uint64_t len,
        std::uint32_t crc)
{
    as.forEachConstSpan(src, len, "read", [&](ConstSpan s) {
        crc = s.ptr ? crc32c(s.ptr, s.len, crc) : zeroCrc(crc, s.len);
    });
    return crc;
}

std::uint32_t
spanCopyCrc(AddressSpace &as, Addr dst, Addr src, std::uint64_t len,
            std::uint32_t crc)
{
    // write()/fill() resolve the destination spans themselves, so
    // each source span moves with a single memcpy/memset — no
    // staging buffer.
    std::uint64_t off = 0;
    as.forEachConstSpan(src, len, "read", [&](ConstSpan s) {
        if (s.ptr) {
            crc = crc32c(s.ptr, s.len, crc);
            as.write(dst + off, s.ptr, s.len);
        } else {
            crc = zeroCrc(crc, s.len);
            as.fill(dst + off, 0, s.len);
        }
        off += s.len;
    });
    return crc;
}

void
spanFillPattern(AddressSpace &as, Addr dst, std::uint64_t len,
                std::uint64_t lo, std::uint64_t hi, unsigned pat_bytes)
{
    std::uint8_t pat[16];
    std::memcpy(pat, &lo, 8);
    std::memcpy(pat + 8, &hi, 8);
    std::uint64_t off = 0;
    as.forEachSpan(dst, len, "write", [&](Span s) {
        std::uint8_t *p = s.ptr;
        std::uint64_t n = s.len;
        // Destination byte (off + i) carries pattern byte
        // (off + i) % pat_bytes, no matter how the range splits
        // into spans.
        unsigned phase = static_cast<unsigned>(off % pat_bytes);
        off += n;
        while (phase != 0 && n > 0) {
            *p++ = pat[phase];
            phase = (phase + 1) % pat_bytes;
            --n;
        }
        if (n == 0)
            return;
        // Seed one pattern, then double the filled prefix.
        std::uint64_t filled = std::min<std::uint64_t>(n, pat_bytes);
        std::memcpy(p, pat, filled);
        while (filled < n) {
            std::uint64_t cpy = std::min(filled, n - filled);
            std::memcpy(p + filled, p, cpy);
            filled += cpy;
        }
    });
}

std::uint64_t
spanCompare(const AddressSpace &as, Addr a, Addr b, std::uint64_t len)
{
    if (len == 0)
        return 0;
    std::vector<ConstSpan> sa, sb;
    as.resolveConstSpans(a, len, sa, "read");
    as.resolveConstSpans(b, len, sb, "read");

    std::size_t ia = 0, ib = 0;
    std::uint64_t oa = 0, ob = 0; // consumed within current spans
    std::uint64_t off = 0;
    while (off < len) {
        const ConstSpan &sA = sa[ia];
        const ConstSpan &sB = sb[ib];
        std::uint64_t run = std::min(sA.len - oa, sB.len - ob);
        const std::uint8_t *pa = sA.ptr ? sA.ptr + oa : nullptr;
        const std::uint8_t *pb = sB.ptr ? sB.ptr + ob : nullptr;
        std::uint64_t d;
        if (pa && pb)
            d = firstDiff(pa, pb, run);
        else if (pa)
            d = firstNonZero(pa, run);
        else if (pb)
            d = firstNonZero(pb, run);
        else
            d = run; // both never written: equal zeroes
        if (d < run)
            return off + d;
        off += run;
        oa += run;
        ob += run;
        if (oa == sA.len) {
            ++ia;
            oa = 0;
        }
        if (ob == sB.len) {
            ++ib;
            ob = 0;
        }
    }
    return len;
}

std::uint64_t
spanComparePattern(const AddressSpace &as, Addr a, std::uint64_t len,
                   std::uint64_t pattern)
{
    if (len == 0)
        return 0;
    std::uint8_t pat[8];
    std::memcpy(pat, &pattern, 8);
    // Pre-expanded tile so runs compare with memcmp at any phase.
    constexpr std::uint64_t tileBytes = 4096;
    alignas(8) std::uint8_t tile[tileBytes];
    std::memcpy(tile, pat, 8);
    for (std::uint64_t filled = 8; filled < tileBytes; filled *= 2)
        std::memcpy(tile + filled,
                    tile, std::min(filled, tileBytes - filled));

    std::vector<ConstSpan> ss;
    as.resolveConstSpans(a, len, ss, "read");
    std::uint64_t off = 0;
    for (const ConstSpan &s : ss) {
        const unsigned phase = static_cast<unsigned>(off % 8);
        if (!s.ptr) {
            // Zeroes mismatch a non-zero pattern within 8 bytes.
            std::uint64_t lim = std::min<std::uint64_t>(s.len, 8);
            for (std::uint64_t i = 0; i < lim; ++i) {
                if (pat[(phase + i) & 7] != 0)
                    return off + i;
            }
        } else {
            std::uint64_t done = 0;
            while (done < s.len) {
                unsigned ph =
                    static_cast<unsigned>((phase + done) & 7);
                std::uint64_t run =
                    std::min(s.len - done, tileBytes - ph);
                if (std::memcmp(s.ptr + done, tile + ph, run) != 0) {
                    for (std::uint64_t i = 0; i < run; ++i) {
                        if (s.ptr[done + i] != tile[ph + i])
                            return off + done + i;
                    }
                }
                done += run;
            }
        }
        off += s.len;
    }
    return len;
}

} // namespace dsasim
