/**
 * @file
 * Span-native data-operation kernels.
 *
 * These run the DSA opcode data planes (and their software
 * equivalents) directly on the host memory backing an AddressSpace,
 * via the zero-copy span API, instead of bouncing every chunk
 * through a scratch buffer. They are purely functional — byte
 * movement only, no timing — and preserve the exact observable
 * semantics of the scratch-based loops they replaced:
 *
 *  - compare kernels report the offset of the *first* mismatching
 *    byte;
 *  - pattern kernels derive the pattern phase from the offset
 *    relative to the start of the transfer;
 *  - never-written (sparse) source ranges read as zeroes without
 *    materializing backing.
 *
 * Overlap-sensitive cases (e.g. a CopyCrc whose source and
 * destination alias) are the caller's responsibility: callers keep
 * the legacy chunk order for those, because the result genuinely
 * depends on copy order.
 */

#ifndef DSASIM_OPS_SPAN_KERNELS_HH
#define DSASIM_OPS_SPAN_KERNELS_HH

#include <cstdint>

#include "mem/address_space.hh"

namespace dsasim
{

/** Do [a, a+alen) and [b, b+blen) share any byte? */
constexpr bool
rangesOverlap(Addr a, std::uint64_t alen, Addr b, std::uint64_t blen)
{
    return a < b + blen && b < a + alen;
}

/**
 * Accumulate CRC-32C over [src, src+len). @p crc is the running
 * state (descriptor seed); finalize with crc32cFinish.
 */
std::uint32_t spanCrc(const AddressSpace &as, Addr src,
                      std::uint64_t len, std::uint32_t crc);

/**
 * Copy src -> dst while accumulating CRC-32C of the source.
 * Requires non-overlapping ranges.
 */
std::uint32_t spanCopyCrc(AddressSpace &as, Addr dst, Addr src,
                          std::uint64_t len, std::uint32_t crc);

/**
 * Fill [dst, dst+len) with an 8- or 16-byte repeating pattern
 * (@p pat_bytes selects). Byte i of the destination receives pattern
 * byte i % pat_bytes, matching DSA's Fill operation.
 */
void spanFillPattern(AddressSpace &as, Addr dst, std::uint64_t len,
                     std::uint64_t lo, std::uint64_t hi,
                     unsigned pat_bytes);

/**
 * Compare two ranges. Returns the offset of the first mismatching
 * byte, or @p len when equal.
 */
std::uint64_t spanCompare(const AddressSpace &as, Addr a, Addr b,
                          std::uint64_t len);

/**
 * Compare [a, a+len) against a repeating 8-byte pattern. Returns
 * the offset of the first mismatching byte, or @p len when equal.
 */
std::uint64_t spanComparePattern(const AddressSpace &as, Addr a,
                                 std::uint64_t len,
                                 std::uint64_t pattern);

} // namespace dsasim

#endif // DSASIM_OPS_SPAN_KERNELS_HH
