/**
 * @file
 * InlineCallback: a move-only, small-buffer-optimized replacement for
 * std::function<void()> on the simulation hot path.
 *
 * Event callbacks in dsasim almost always capture a couple of
 * pointers (a device, a work queue, a coroutine frame), yet
 * std::function heap-allocates beyond its tiny implementation-defined
 * SBO and drags in RTTI it never uses. InlineCallback stores any
 * callable of up to inlineCapacity bytes directly in the event, so
 * the common case performs zero allocations; larger captures (e.g., a
 * full WorkDescriptor in the submit-flight path) fall back to a
 * single heap cell.
 */

#ifndef DSASIM_SIM_CALLBACK_HH
#define DSASIM_SIM_CALLBACK_HH

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace dsasim
{

class InlineCallback
{
  public:
    /** Captures up to this many bytes are stored without allocating. */
    static constexpr std::size_t inlineCapacity = 48;

    InlineCallback() = default;

    template <typename F>
        requires(!std::is_same_v<std::remove_cvref_t<F>, InlineCallback> &&
                 std::is_invocable_r_v<void, std::remove_cvref_t<F> &>)
    InlineCallback(F &&f) // NOLINT: implicit by design, mirrors std::function
    {
        using Fn = std::remove_cvref_t<F>;
        if constexpr (fitsInline<Fn>) {
            ::new (static_cast<void *>(buf)) Fn(std::forward<F>(f));
            vt = &inlineVt<Fn>;
        } else {
            // Deliberate heap fallback for oversized captures; the
            // hot path (small captures) stays inline.
            ::new (static_cast<void *>(buf))
                void *(new Fn(std::forward<F>(f))); // simlint:allow(raw-alloc)
            vt = &heapVt<Fn>;
        }
    }

    InlineCallback(InlineCallback &&other) noexcept : vt(other.vt)
    {
        if (vt) {
            relocateFrom(other);
            other.vt = nullptr;
        }
    }

    InlineCallback &
    operator=(InlineCallback &&other) noexcept
    {
        if (this != &other) {
            reset();
            vt = other.vt;
            if (vt) {
                relocateFrom(other);
                other.vt = nullptr;
            }
        }
        return *this;
    }

    InlineCallback(const InlineCallback &) = delete;
    InlineCallback &operator=(const InlineCallback &) = delete;

    ~InlineCallback() { reset(); }

    void
    operator()()
    {
        vt->invoke(buf);
    }

    explicit operator bool() const { return vt != nullptr; }

    /** Alignment of the inline buffer. 8 rather than max_align_t
     * keeps sizeof(InlineCallback) at 56 (and the enclosing Event in
     * 80 bytes); captures are pointers and integers in practice, and
     * over-aligned ones simply take the heap path. */
    static constexpr std::size_t inlineAlign = 8;

    /** True if @p Fn would be stored inline (no allocation). */
    template <typename Fn>
    static constexpr bool fitsInline =
        sizeof(Fn) <= inlineCapacity && alignof(Fn) <= inlineAlign &&
        std::is_nothrow_move_constructible_v<Fn>;

  private:
    struct VTable
    {
        void (*invoke)(void *);
        /**
         * Move-construct into @p dst from @p src, destroying src.
         * nullptr means the payload is trivially relocatable: moving
         * is a fixed-size memcpy of the buffer and destruction is a
         * no-op (trivially copyable implies trivially destructible),
         * so the hot event-queue moves skip the indirect calls
         * entirely.
         */
        void (*relocate)(void *dst, void *src) noexcept;
        void (*destroy)(void *) noexcept;
    };

    void
    relocateFrom(InlineCallback &other) noexcept
    {
        if (vt->relocate) {
            vt->relocate(buf, other.buf);
        } else {
            // Copying the whole buffer regardless of payload size
            // keeps this branch-free; the tail bytes past the payload
            // are deliberately uninitialized.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
            std::memcpy(buf, other.buf, inlineCapacity);
#pragma GCC diagnostic pop
        }
    }

    void
    reset() noexcept
    {
        if (vt) {
            if (vt->destroy)
                vt->destroy(buf);
            vt = nullptr;
        }
    }

    template <typename Fn>
    static constexpr VTable inlineVt{
        [](void *p) { (*std::launder(reinterpret_cast<Fn *>(p)))(); },
        std::is_trivially_copyable_v<Fn>
            ? nullptr
            : +[](void *dst, void *src) noexcept {
                  Fn *s = std::launder(reinterpret_cast<Fn *>(src));
                  ::new (dst) Fn(std::move(*s));
                  s->~Fn();
              },
        std::is_trivially_destructible_v<Fn>
            ? nullptr
            : +[](void *p) noexcept {
                  std::launder(reinterpret_cast<Fn *>(p))->~Fn();
              },
    };

    template <typename Fn>
    static constexpr VTable heapVt{
        [](void *p) {
            (*static_cast<Fn *>(
                *std::launder(reinterpret_cast<void **>(p))))();
        },
        // Relocating a heap cell is just copying its pointer; the
        // trivial memcpy path covers it.
        nullptr,
        [](void *p) noexcept {
            // Owning release of the heap-fallback cell above.
            delete static_cast<Fn *>( // simlint:allow(raw-alloc)
                *std::launder(reinterpret_cast<void **>(p)));
        },
    };

    const VTable *vt = nullptr;
    alignas(inlineAlign) std::byte buf[inlineCapacity];
};

} // namespace dsasim

#endif // DSASIM_SIM_CALLBACK_HH
