/**
 * @file
 * The Checkpointable contract (DESIGN.md §10).
 *
 * A stateful component participates in snapshot/fast-forward by
 * exposing a plain-data `State` type plus `saveState()` /
 * `restoreState()`. Restore never resurrects live coroutines or
 * pending events — a snapshot may only be taken of a *quiesced*
 * component — so `State` is ordinary copyable data: clocks, tables,
 * tags, counters, RNG state, and (for the physical backing store)
 * copy-on-write references to 2 MiB chunks.
 *
 * The contract, checked statically by the `Checkpointable` concept
 * and `DSASIM_ASSERT_CHECKPOINTABLE`:
 *
 *  - `saveState()` is const and captures every bit of simulation-
 *    visible state the component owns that can influence future
 *    timing, functional results, or statistics output.
 *  - `restoreState(st)` applied to a freshly *rebuilt* component
 *    (same configuration) makes its future behavior — event stream
 *    (tick, seq) order, data, CSV output — byte-identical to the
 *    component the state was saved from.
 *  - `State` owns what it references (deep copies or shared
 *    copy-on-write chunks); it stays valid after the source
 *    component is destroyed and may be restored from many threads
 *    concurrently into disjoint targets.
 */

#ifndef DSASIM_SIM_CHECKPOINT_HH
#define DSASIM_SIM_CHECKPOINT_HH

#include <concepts>

namespace dsasim
{

template <typename T>
concept Checkpointable =
    std::copyable<typename T::State> &&
    requires(const T &src, T &dst, const typename T::State &st) {
        { src.saveState() } -> std::same_as<typename T::State>;
        dst.restoreState(st);
    };

/** Compile-time enforcement, placed next to each implementation. */
#define DSASIM_ASSERT_CHECKPOINTABLE(T)                              \
    static_assert(::dsasim::Checkpointable<T>,                       \
                  #T " must implement the Checkpointable contract")

} // namespace dsasim

#endif // DSASIM_SIM_CHECKPOINT_HH
