#include "sim/fault_injector.hh"

#include <cstdlib>
#include <sstream>

#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace dsasim
{

const char *
faultSiteName(FaultSite site)
{
    switch (site) {
      case FaultSite::CompletionError: return "hw-error";
      case FaultSite::EngineHang: return "hang";
      case FaultSite::DeviceDisable: return "disable";
      case FaultSite::WqReject: return "wq-reject";
      case FaultSite::PageFault: return "page-fault";
    }
    return "?";
}

namespace
{

const char *(*opcodeNameTable)(int) = nullptr;
int opcodeNameTableCount = 0;

} // namespace

void
setFaultOpcodeNames(const char *(*name)(int), int count)
{
    opcodeNameTable = name;
    opcodeNameTableCount = count;
}

const char *
faultOpcodeName(int op)
{
    if (!opcodeNameTable || op < 0 || op >= opcodeNameTableCount)
        return nullptr;
    return opcodeNameTable(op);
}

int
faultOpcodeCount()
{
    return opcodeNameTableCount;
}

FaultRule &
FaultInjector::addRule(const FaultRule &r)
{
    fatal_if(r.probability < 0.0 || r.probability > 1.0,
             "fault rule probability %f out of [0,1]", r.probability);
    fatal_if(r.probability == 0.0 && r.everyNth == 0 && !r.hasAtTick,
             "fault rule needs a trigger (p=, every= or at=)");
    rules.push_back(r);
    return rules.back();
}

bool
FaultInjector::matches(const FaultRule &r, const FaultQuery &q) const
{
    if (r.device >= 0 && r.device != q.device)
        return false;
    if (r.wq >= 0 && r.wq != q.wq)
        return false;
    if (r.engine >= 0 && r.engine != q.engine)
        return false;
    if (r.opcode >= 0 && r.opcode != q.opcode)
        return false;
    if (r.pasid >= 0 && r.pasid != q.pasid)
        return false;
    return true;
}

const FaultRule *
FaultInjector::query(FaultSite site, const FaultQuery &q)
{
    ++totalQueries;
    for (FaultRule &r : rules) {
        if (r.site != site || r.fires >= r.maxFires || !matches(r, q))
            continue;
        ++r.matches;
        bool hit = false;
        if (r.probability > 0.0) {
            hit = rng.chance(r.probability);
        } else if (r.everyNth > 0) {
            hit = r.matches % r.everyNth == 0;
        } else if (r.hasAtTick) {
            hit = clock && clock->now() >= r.atTick;
        }
        if (!hit)
            continue;
        ++r.fires;
        ++totalFires;
        return &r;
    }
    return nullptr;
}

std::uint64_t
FaultInjector::firesAt(FaultSite site) const
{
    std::uint64_t n = 0;
    for (const FaultRule &r : rules)
        if (r.site == site)
            n += r.fires;
    return n;
}

std::string
FaultInjector::summary() const
{
    std::ostringstream os;
    for (const FaultRule &r : rules) {
        os << faultSiteName(r.site);
        if (r.probability > 0.0)
            os << " p=" << r.probability;
        else if (r.everyNth > 0)
            os << " every=" << r.everyNth;
        else if (r.hasAtTick)
            os << " at=" << r.atTick;
        if (r.opcode >= 0) {
            const char *name = faultOpcodeName(r.opcode);
            if (name)
                os << " op=" << name;
            else
                os << " op=" << r.opcode;
        }
        if (r.device >= 0)
            os << " device=" << r.device;
        if (r.wq >= 0)
            os << " wq=" << r.wq;
        if (r.engine >= 0)
            os << " engine=" << r.engine;
        if (r.pasid >= 0)
            os << " pasid=" << r.pasid;
        os << ": " << r.fires << "/" << r.matches << " fired\n";
    }
    return os.str();
}

namespace
{

FaultSite
parseSite(const std::string &s)
{
    for (FaultSite site :
         {FaultSite::CompletionError, FaultSite::EngineHang,
          FaultSite::DeviceDisable, FaultSite::WqReject,
          FaultSite::PageFault}) {
        if (s == faultSiteName(site))
            return site;
    }
    fatal("unknown fault site '%s'", s.c_str());
}

int
parseOpcode(const std::string &s)
{
    fatal_if(faultOpcodeCount() == 0,
             "op= in fault spec but no opcode-name table registered "
             "(setFaultOpcodeNames)");
    for (int op = 0; op < faultOpcodeCount(); ++op) {
        if (s == faultOpcodeName(op))
            return op;
    }
    fatal("unknown opcode '%s' in fault spec", s.c_str());
}

HwErrorKind
parseError(const std::string &s)
{
    if (s == "read")
        return HwErrorKind::Read;
    if (s == "write")
        return HwErrorKind::Write;
    if (s == "decode")
        return HwErrorKind::Decode;
    fatal("unknown hw-error kind '%s' (read|write|decode)", s.c_str());
}

} // namespace

std::unique_ptr<FaultInjector>
FaultInjector::fromSpec(const std::string &spec, std::uint64_t seed)
{
    if (spec.empty())
        return nullptr;
    auto inj = std::make_unique<FaultInjector>(seed);
    std::istringstream ruleStream(spec);
    std::string ruleSpec;
    while (std::getline(ruleStream, ruleSpec, ';')) {
        if (ruleSpec.empty())
            continue;
        FaultRule r;
        std::size_t colon = ruleSpec.find(':');
        r.site = parseSite(ruleSpec.substr(0, colon));
        if (colon != std::string::npos) {
            std::istringstream kvStream(ruleSpec.substr(colon + 1));
            std::string kv;
            while (std::getline(kvStream, kv, ',')) {
                std::size_t eq = kv.find('=');
                fatal_if(eq == std::string::npos,
                         "fault spec entry '%s' is not key=value",
                         kv.c_str());
                std::string key = kv.substr(0, eq);
                std::string val = kv.substr(eq + 1);
                if (key == "p") {
                    r.probability = std::stod(val);
                } else if (key == "every") {
                    r.everyNth = std::stoull(val);
                } else if (key == "at") {
                    r.atTick = std::stoull(val);
                    r.hasAtTick = true;
                    if (r.maxFires == ~std::uint64_t{0})
                        r.maxFires = 1;
                } else if (key == "max") {
                    r.maxFires = std::stoull(val);
                } else if (key == "device") {
                    r.device = std::stoi(val);
                } else if (key == "wq") {
                    r.wq = std::stoi(val);
                } else if (key == "engine") {
                    r.engine = std::stoi(val);
                } else if (key == "pasid") {
                    r.pasid = std::stoll(val);
                } else if (key == "op") {
                    r.opcode = parseOpcode(val);
                } else if (key == "error") {
                    r.error = parseError(val);
                } else {
                    fatal("unknown fault spec key '%s'", key.c_str());
                }
            }
        }
        inj->addRule(r);
    }
    return inj->ruleCount() ? std::move(inj) : nullptr;
}

std::unique_ptr<FaultInjector>
FaultInjector::fromEnv()
{
    const char *spec = std::getenv("DSASIM_FAULTS");
    if (!spec || !*spec)
        return nullptr;
    std::uint64_t seed = 1;
    if (const char *s = std::getenv("DSASIM_FAULT_SEED"))
        seed = std::strtoull(s, nullptr, 0);
    return fromSpec(spec, seed);
}

} // namespace dsasim
