/**
 * @file
 * Deterministic fault-injection subsystem.
 *
 * A FaultInjector holds a list of rules. Each rule names a hook point
 * (FaultSite), a trigger policy (probability, every-Nth matching
 * query, or one-shot at/after a tick), an optional scope (device, WQ,
 * engine, opcode) and, for completion errors, the hardware status to
 * report. Model layers that can fail query the injector at
 * well-defined sites; the injector decides — reproducibly, from its
 * seed and the deterministic event order — whether the fault fires.
 *
 * Rules can be built programmatically (tests, the chaos harness) or
 * parsed from a spec string, which the platform reads from the
 * DSASIM_FAULTS environment variable:
 *
 *   site[:key=value[,key=value]...][;site:...]
 *
 *   sites: hw-error | hang | disable | wq-reject | page-fault
 *   keys:  p=<0..1>        probability per matching query
 *          every=<N>       fire on every Nth matching query
 *          at=<ticks>      one-shot: first matching query at/after
 *          max=<N>         stop after N fires (default unbounded,
 *                          1 for at=)
 *          device=<id> wq=<id> engine=<id> op=<opcode-name>
 *          pasid=<id>      target one tenant's address space
 *          error=read|write|decode   (hw-error payload)
 *
 * Example: DSASIM_FAULTS="hw-error:p=0.01,op=memmove;hang:every=5000"
 *
 * The pasid= scope is the multi-tenant blast-radius knob: a chaos
 * run can aim every fault at one tenant and assert that neighbors'
 * SLO counters stay clean (tests/test_serving.cc).
 */

#ifndef DSASIM_SIM_FAULT_INJECTOR_HH
#define DSASIM_SIM_FAULT_INJECTOR_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/random.hh"
#include "sim/ticks.hh"

namespace dsasim
{

class Simulation;

/** Hook points at which model layers consult the injector. */
enum class FaultSite : std::uint8_t
{
    CompletionError, ///< engine: complete with a hardware error status
    EngineHang,      ///< engine: descriptor never completes on its own
    DeviceDisable,   ///< device: mid-flight disable (needs reset)
    WqReject,        ///< portal: ENQCMD retry / DWQ drop beyond capacity
    PageFault,       ///< IOMMU: extra fault beyond the organic path
};

const char *faultSiteName(FaultSite site);

/**
 * Opcode-name table for the op= spec key. The sim layer cannot see
 * the device layers (layer-hygiene: sim < dsa), so the layer that
 * owns the opcode enum registers its name table at static-init time
 * (dsa/opcodes.hh) and the injector resolves names through it.
 */
void setFaultOpcodeNames(const char *(*name)(int), int count);
const char *faultOpcodeName(int op); ///< nullptr if unregistered
int faultOpcodeCount();

/** Payload of a CompletionError rule. */
enum class HwErrorKind : std::uint8_t
{
    Read,   ///< source read failure
    Write,  ///< destination write failure
    Decode, ///< descriptor decode failure
};

/** Context a hook point passes with its query; -1 = unknown. */
struct FaultQuery
{
    int device = -1;
    int wq = -1;
    int engine = -1;
    int opcode = -1; ///< static_cast<int>(Opcode), -1 if n/a
    std::int64_t pasid = -1; ///< tenant address space, -1 if n/a
};

struct FaultRule
{
    FaultSite site = FaultSite::CompletionError;

    /// @name Trigger policy (first non-zero wins, checked in order).
    /// @{
    double probability = 0.0;    ///< Bernoulli per matching query
    std::uint64_t everyNth = 0;  ///< every Nth matching query
    Tick atTick = 0;             ///< one-shot at/after this tick
    bool hasAtTick = false;
    /// @}

    /// @name Scope filters (-1 matches anything).
    /// @{
    int device = -1;
    int wq = -1;
    int engine = -1;
    int opcode = -1;
    std::int64_t pasid = -1;
    /// @}

    /** CompletionError rules: which hardware error to report. */
    HwErrorKind error = HwErrorKind::Read;

    /** Stop firing after this many hits (one-shot for at= rules). */
    std::uint64_t maxFires = ~std::uint64_t{0};

    /// @name Bookkeeping (read-only for clients).
    /// @{
    std::uint64_t matches = 0;
    std::uint64_t fires = 0;
    /// @}
};

class FaultInjector
{
  public:
    explicit FaultInjector(std::uint64_t seed = 1) : rng(seed) {}

    /** Time source for at= rules (optional; unset disables them). */
    void attachClock(const Simulation &s) { clock = &s; }

    FaultRule &addRule(const FaultRule &r);

    /**
     * Consult the injector at @p site with context @p q. Returns the
     * rule that fired (for its payload), or nullptr. At most one rule
     * fires per query; rules are evaluated in insertion order.
     */
    const FaultRule *query(FaultSite site, const FaultQuery &q);

    /** Convenience: did any rule fire at this site? */
    bool
    fire(FaultSite site, const FaultQuery &q)
    {
        return query(site, q) != nullptr;
    }

    std::size_t ruleCount() const { return rules.size(); }
    const FaultRule &rule(std::size_t i) const { return rules[i]; }

    /// @name Aggregate statistics.
    /// @{
    std::uint64_t totalQueries = 0;
    std::uint64_t totalFires = 0;

    /** Fires at one site, summed over rules. */
    std::uint64_t firesAt(FaultSite site) const;

    /** One line per rule: site, trigger, scope, matches/fires. */
    std::string summary() const; // simlint:observer
    /// @}

    /**
     * Parse a spec string (see file header). Returns nullptr for an
     * empty spec; a malformed spec is a user error (fatal).
     */
    static std::unique_ptr<FaultInjector>
    fromSpec(const std::string &spec, std::uint64_t seed = 1);

    /** Build from $DSASIM_FAULTS / $DSASIM_FAULT_SEED, or nullptr. */
    static std::unique_ptr<FaultInjector> fromEnv();

    /**
     * Checkpointable (sim/checkpoint.hh): RNG position, full rule
     * list (rules carry their matches/fires/maxFires bookkeeping,
     * which drives every= and max= triggers), and the aggregate
     * counters. The clock attachment is positional, not state — the
     * restoring platform re-attaches its own simulation.
     */
    struct State
    {
        Rng::State rng;
        std::vector<FaultRule> rules;
        std::uint64_t totalQueries = 0;
        std::uint64_t totalFires = 0;
    };

    State
    saveState() const
    {
        return State{rng.saveState(), rules, totalQueries, totalFires};
    }

    void
    restoreState(const State &st)
    {
        rng.restoreState(st.rng);
        rules = st.rules;
        totalQueries = st.totalQueries;
        totalFires = st.totalFires;
    }

  private:
    bool matches(const FaultRule &r, const FaultQuery &q) const;

    Rng rng;
    const Simulation *clock = nullptr;
    std::vector<FaultRule> rules;
};

} // namespace dsasim

#endif // DSASIM_SIM_FAULT_INJECTOR_HH
