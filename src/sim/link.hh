/**
 * @file
 * LinkResource: a serializing bandwidth resource.
 *
 * Models a pipe with a fixed byte rate (I/O fabric port, a memory
 * channel group's read or write bandwidth, a UPI link, the CXL link).
 * Requests are served in arrival order; a request of B bytes occupies
 * the link for B/rate. Contention between concurrent agents emerges
 * naturally as queueing delay; because agents issue work in small
 * chunks (cache lines up to a few KB), interleaving approximates fair
 * sharing closely enough for the figure-level results reproduced
 * here.
 */

#ifndef DSASIM_SIM_LINK_HH
#define DSASIM_SIM_LINK_HH

#include <algorithm>
#include <cstdint>
#include <string>

#include "sim/logging.hh"
#include "sim/simulation.hh"
#include "sim/ticks.hh"

namespace dsasim
{

class LinkResource
{
  public:
    /**
     * @param s        owning simulation
     * @param gbps     capacity in decimal GB/s (1e9 bytes/sec)
     * @param link_name for diagnostics
     */
    LinkResource(Simulation &s, double gbps, std::string link_name)
        : sim(s), name(std::move(link_name))
    {
        setRate(gbps);
    }

    /** Reconfigure the capacity (takes effect for future requests). */
    void
    setRate(double gbps)
    {
        fatal_if(gbps <= 0.0, "link '%s': non-positive rate %f GB/s",
                 name.c_str(), gbps);
        rateGBps = gbps;
        psPerByte = 1000.0 / gbps; // 1 GB/s == 1 byte/ns == 1000 ps/byte
    }

    double rate() const { return rateGBps; }
    const std::string &linkName() const { return name; }

    /**
     * Reserve the link for @p bytes starting no earlier than now.
     * Returns the absolute completion tick. Does not suspend; pair
     * with Simulation::delayUntil() to model blocking.
     */
    Tick occupy(std::uint64_t bytes) { return occupyAt(0, bytes); }

    /**
     * Like occupy(), but the transfer also cannot start before
     * @p earliest — the cross-socket pull path uses this to start a
     * return transfer only once the remote DRAM read has finished.
     */
    Tick
    occupyAt(Tick earliest, std::uint64_t bytes)
    {
        Tick start = std::max({sim.now(), readyAt, earliest});
        Tick duration = static_cast<Tick>(
            static_cast<double>(bytes) * psPerByte + 0.5);
        readyAt = start + duration;
        totalBytes += bytes;
        totalBusy += duration;
        return readyAt;
    }

    /**
     * Awaitable convenience: occupy the link and suspend until the
     * transfer completes. `co_await link.transfer(n);`
     */
    auto
    transfer(std::uint64_t bytes)
    {
        return sim.delayUntil(occupy(bytes));
    }

    /** Earliest tick at which a new request could start. */
    Tick nextFree() const { return std::max(readyAt, sim.now()); }

    /** Queueing backlog, in ticks, seen by a request issued now. */
    Tick
    backlog() const
    {
        return readyAt > sim.now() ? readyAt - sim.now() : 0;
    }

    std::uint64_t bytesServed() const { return totalBytes; }
    Tick busyTicks() const { return totalBusy; }

    /** Fraction of [0, now] the link spent busy. */
    double
    utilization() const
    {
        if (sim.now() == 0)
            return 0.0;
        return static_cast<double>(std::min(totalBusy, sim.now())) /
               static_cast<double>(sim.now());
    }

    /** Clear accounting (not the ready time). */
    void
    resetStats()
    {
        totalBytes = 0;
        totalBusy = 0;
    }

    /**
     * Checkpointable (sim/checkpoint.hh): rate (links can be
     * reconfigured after construction), the serialization horizon,
     * and accounting.
     */
    struct State
    {
        double gbps = 0.0;
        Tick readyAt = 0;
        std::uint64_t totalBytes = 0;
        Tick totalBusy = 0;
    };

    State
    saveState() const
    {
        return State{rateGBps, readyAt, totalBytes, totalBusy};
    }

    void
    restoreState(const State &st)
    {
        setRate(st.gbps);
        readyAt = st.readyAt;
        totalBytes = st.totalBytes;
        totalBusy = st.totalBusy;
    }

  private:
    Simulation &sim;
    std::string name;
    double rateGBps = 0.0;
    double psPerByte = 0.0;
    Tick readyAt = 0;
    std::uint64_t totalBytes = 0;
    Tick totalBusy = 0;
};

} // namespace dsasim

#endif // DSASIM_SIM_LINK_HH
