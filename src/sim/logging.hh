/**
 * @file
 * Status and error reporting, following the gem5 convention:
 *
 *  - panic(): an internal simulator bug; something that must never
 *    happen regardless of user input. Calls std::abort().
 *  - fatal(): a user error (bad configuration, invalid arguments);
 *    the simulation cannot continue. Calls std::exit(1).
 *  - warn(): suspicious but survivable conditions.
 *  - inform(): plain status output.
 */

#ifndef DSASIM_SIM_LOGGING_HH
#define DSASIM_SIM_LOGGING_HH

#include <cstdarg>
#include <string>

namespace dsasim
{

/** printf-style formatting into a std::string. */
std::string strfmt(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Suppress warn()/inform() output (used by tests). */
void setQuiet(bool quiet);

} // namespace dsasim

#define panic(...) \
    ::dsasim::panicImpl(__FILE__, __LINE__, ::dsasim::strfmt(__VA_ARGS__))
#define fatal(...) \
    ::dsasim::fatalImpl(__FILE__, __LINE__, ::dsasim::strfmt(__VA_ARGS__))
#define warn(...) ::dsasim::warnImpl(::dsasim::strfmt(__VA_ARGS__))
#define inform(...) ::dsasim::informImpl(::dsasim::strfmt(__VA_ARGS__))

/** panic() unless the invariant @p cond holds. */
#define panic_if(cond, ...)                                                  \
    do {                                                                     \
        if (cond)                                                            \
            panic(__VA_ARGS__);                                              \
    } while (0)

/** fatal() unless the user-supplied condition @p cond holds. */
#define fatal_if(cond, ...)                                                  \
    do {                                                                     \
        if (cond)                                                            \
            fatal(__VA_ARGS__);                                              \
    } while (0)

#endif // DSASIM_SIM_LOGGING_HH
