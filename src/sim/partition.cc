#include "sim/partition.hh"

#include <algorithm>
#include <barrier>
#include <cstdlib>
#include <thread>

namespace dsasim
{

unsigned
partitionThreads()
{
    const char *env = std::getenv("DSASIM_PARTITIONS");
    if (!env)
        return 1;
    char *end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || v < 1)
        return 1;
    return v > 256 ? 256u : static_cast<unsigned>(v);
}

unsigned
PartitionSet::addDomain(Simulation &sim, std::string name)
{
    const unsigned id = static_cast<unsigned>(domains.size());
    if (name.empty())
        name = "domain " + std::to_string(id);
    domains.push_back(Domain{&sim, std::move(name), {}});
    bounds.push_back(maxTick);
    return id;
}

PartitionChannel &
PartitionSet::connect(unsigned src, unsigned dst, Tick min_latency,
                      std::size_t capacity)
{
    fatal_if(src >= domains.size() || dst >= domains.size(),
             "PartitionSet::connect: unknown domain (%u->%u of %zu)",
             src, dst, domains.size());
    fatal_if(src == dst,
             "PartitionSet::connect: a domain needs no channel to "
             "itself (%u)",
             src);
    fatal_if(min_latency == 0,
             "PartitionSet::connect: zero-latency link %u->%u admits "
             "no lookahead; schedule directly or model the real link "
             "latency",
             src, dst);
    fatal_if(capacity == 0, "PartitionSet::connect: zero capacity");
    const unsigned id = static_cast<unsigned>(channels.size());
    // make_unique cannot reach the private ctor; ownership transfers
    // on the same statement.
    // simlint:allow(raw-alloc)
    channels.emplace_back(new PartitionChannel(
        *domains[src].sim, src, dst, id, min_latency, capacity));
    PartitionChannel &ch = *channels.back();
    // Inbound lists stay ordered by channel id: connect() order is
    // program order, part of the canonical delivery key.
    domains[dst].inbound.push_back(&ch);
    minLat = std::min(minLat, min_latency);
    return ch;
}

void
PartitionSet::deliverAndBound(unsigned d,
                              std::vector<Delivery> &scratch)
{
    Domain &dom = domains[d];
    scratch.clear();
    for (PartitionChannel *ch : dom.inbound) {
        const std::size_t t =
            ch->tail.load(std::memory_order_acquire);
        std::size_t h = ch->head.load(std::memory_order_relaxed);
        for (; h != t; ++h) {
            PartitionChannel::Item &it =
                ch->ring[h % ch->ring.size()];
            scratch.push_back(Delivery{it.when, ch->src, ch->id,
                                       it.seq, std::move(it.fn)});
        }
        ch->head.store(t, std::memory_order_release);
    }
    // Canonical cross-domain order: tick, then source domain, then
    // channel, then channel-FIFO sequence. The destination kernel
    // assigns its own (when, seq) keys in this call order, so the
    // merged stream — and with it the stream hash — is independent
    // of how many worker threads ran the producing epoch.
    std::sort(scratch.begin(), scratch.end(),
              [](const Delivery &a, const Delivery &b) {
                  if (a.when != b.when)
                      return a.when < b.when;
                  if (a.srcDomain != b.srcDomain)
                      return a.srcDomain < b.srcDomain;
                  if (a.channel != b.channel)
                      return a.channel < b.channel;
                  return a.seq < b.seq;
              });
    for (Delivery &m : scratch)
        dom.sim->scheduleAt(m.when, std::move(m.fn));
    bounds[d] = dom.sim->nextEventBound();
}

bool
PartitionSet::computeEpoch()
{
    Tick lb = maxTick;
    for (Tick b : bounds)
        lb = std::min(lb, b);
    if (lb == maxTick) {
        // Every channel was drained in the delivery phase just
        // completed and nothing ran since, so empty bounds mean the
        // whole set is idle.
        running = false;
        return false;
    }
    const Tick la = channels.empty() ? maxTick : minLat;
    epochEnd = lb >= maxTick - la ? maxTick : lb + la;
    ++epochs;
    running = true;
    return true;
}

void
PartitionSet::runSerial()
{
    std::vector<Delivery> scratch;
    for (;;) {
        for (unsigned d = 0; d < domains.size(); ++d)
            deliverAndBound(d, scratch);
        if (!computeEpoch())
            return;
        for (unsigned d = 0; d < domains.size(); ++d)
            domains[d].sim->runWithin(epochEnd - 1);
    }
}

void
PartitionSet::runThreaded(unsigned threads)
{
    // Two barriers per epoch. The delivery barrier's completion step
    // runs the min-reduction on one thread while everyone is parked,
    // which both publishes the horizon and keeps the reduction out of
    // racy territory; the execute barrier separates event execution
    // from the next delivery phase, so a channel is never drained
    // while its producer is still running.
    std::barrier<void (*)() noexcept> deliver_barrier(
        threads, +[]() noexcept {});
    struct Reduce
    {
        PartitionSet *set;
        void operator()() noexcept { set->computeEpoch(); }
    };
    std::barrier<Reduce> bound_barrier(threads, Reduce{this});

    const unsigned n = domainCount();
    auto worker = [&](unsigned tid) {
        std::vector<Delivery> scratch;
        for (;;) {
            for (unsigned d = tid; d < n; d += threads)
                deliverAndBound(d, scratch);
            bound_barrier.arrive_and_wait();
            if (!running)
                return;
            for (unsigned d = tid; d < n; d += threads)
                domains[d].sim->runWithin(epochEnd - 1);
            deliver_barrier.arrive_and_wait();
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(threads - 1);
    for (unsigned t = 1; t < threads; ++t)
        pool.emplace_back(worker, t);
    worker(0);
    for (std::thread &t : pool)
        t.join();
}

void
PartitionSet::run(unsigned threads)
{
    fatal_if(domains.empty(), "PartitionSet::run: no domains");
    if (threads == 0)
        threads = partitionThreads();
    threads = std::min(threads, domainCount());
    epochs = 0;
    if (threads <= 1)
        runSerial();
    else
        runThreaded(threads);
    // Domains drain at different clocks (each stops at its own last
    // event). Align them to the cluster-wide end time — executing
    // nothing — so a later phase may inject fresh work from any
    // domain and its cross-channel sends (stamped source-now + link
    // latency) can never land in another domain's past. The end time
    // is a max of deterministic values, so this keeps fingerprints
    // thread-count-independent too.
    const Tick end = maxNow();
    for (Domain &d : domains)
        d.sim->runUntil(end);
}

bool
PartitionSet::idle() const
{
    for (const Domain &d : domains)
        if (!d.sim->idle())
            return false;
    for (const auto &ch : channels)
        if (!ch->empty())
            return false;
    return true;
}

std::uint64_t
PartitionSet::combinedStreamHash() const
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const Domain &d : domains)
        h = (h ^ d.sim->streamHash()) * 0x100000001b3ull;
    return h;
}

std::uint64_t
PartitionSet::eventsExecuted() const
{
    std::uint64_t n = 0;
    for (const Domain &d : domains)
        n += d.sim->eventsExecuted();
    return n;
}

Tick
PartitionSet::maxNow() const
{
    Tick t = 0;
    for (const Domain &d : domains)
        t = std::max(t, d.sim->now());
    return t;
}

} // namespace dsasim
