/**
 * @file
 * Conservative parallel execution of link-partitioned simulations.
 *
 * A PartitionSet groups independent Simulation kernels ("domains",
 * one per socket in practice) and advances them together in
 * barrier-synchronized epochs. The partition boundary is the set of
 * PartitionChannels — bounded SPSC rings carrying timestamped
 * callbacks across domains — and every channel declares the minimum
 * latency of the link it models (a UPI or CXL hop, see sim/link.hh).
 * The classical conservative-lookahead argument then bounds each
 * epoch: if the earliest pending event anywhere is at tick lb, no
 * cross-domain message can take effect before lb + min(link
 * latencies), so every domain may execute all events strictly below
 * that horizon without ever receiving a message from its past.
 *
 * Determinism contract (DESIGN.md §11). The domain decomposition is
 * fixed by the modeled topology, never by the worker-thread count:
 * DSASIM_PARTITIONS only chooses how many host threads execute the
 * epochs. Each domain keeps its own clock, sequence counter and
 * FNV-1a stream hash, and inbound messages are delivered between
 * epochs in a canonical order — (tick, source domain, channel,
 * channel-FIFO sequence) — so the (when, seq) stream each domain
 * executes is bit-identical whether the epochs run on one thread or
 * sixteen. combinedStreamHash() folds the per-domain hashes in
 * domain-id order into the cross-domain fingerprint that
 * tools/determinism_check gates on.
 *
 * Host threading lives entirely in this file (and is whitelisted by
 * simlint's cross-domain rule): model code never sees a lock or an
 * atomic, it only posts to channels.
 */

#ifndef DSASIM_SIM_PARTITION_HH
#define DSASIM_SIM_PARTITION_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/callback.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"
#include "sim/ticks.hh"

namespace dsasim
{

/**
 * Worker-thread count requested via $DSASIM_PARTITIONS (default 1 =
 * today's serial path). This is a host-execution knob: it must never
 * change simulated behavior, only wall-clock.
 */
unsigned partitionThreads();

class PartitionSet;

/**
 * One direction of a cross-domain link: a bounded single-producer /
 * single-consumer ring of (tick, callback) messages. The producer is
 * the source domain's worker thread (during the execute phase), the
 * consumer is the destination domain's worker thread (during the
 * delivery phase); the epoch barriers provide the happens-before
 * edges, the atomics merely keep the index handoff data-race-free.
 */
class PartitionChannel
{
  public:
    using Callback = InlineCallback;

    PartitionChannel(const PartitionChannel &) = delete;
    PartitionChannel &operator=(const PartitionChannel &) = delete;

    /**
     * Enqueue @p fn for execution in the destination domain at
     * absolute tick @p when. Only legal from the source domain while
     * it executes an epoch, and @p when must respect the declared
     * link latency: when >= source now() + minLatency(). Posting into
     * the lookahead window is a model bug (it would let delivery
     * depend on epoch scheduling) and panics.
     */
    void
    post(Tick when, Callback fn)
    {
        panic_if(when < srcSim.now() + lookahead,
                 "partition channel %u->%u: message at %llu violates "
                 "lookahead (now %llu + min link latency %llu)",
                 src, dst, static_cast<unsigned long long>(when),
                 static_cast<unsigned long long>(srcSim.now()),
                 static_cast<unsigned long long>(lookahead));
        const std::size_t t = tail.load(std::memory_order_relaxed);
        const std::size_t h = head.load(std::memory_order_acquire);
        fatal_if(t - h >= ring.size(),
                 "partition channel %u->%u overflow (capacity %zu "
                 "messages in flight) — raise the channel capacity or "
                 "throttle the cross-link protocol",
                 src, dst, ring.size());
        Item &it = ring[t % ring.size()];
        it.when = when;
        it.seq = nextSeq++;
        it.fn = std::move(fn);
        tail.store(t + 1, std::memory_order_release);
    }

    /** Declared minimum latency of the modeled link (the lookahead). */
    Tick minLatency() const { return lookahead; }
    unsigned source() const { return src; }
    unsigned destination() const { return dst; }
    std::size_t capacity() const { return ring.size(); }

    /** Messages ever posted (producer-side counter, for tests). */
    std::uint64_t messagesSent() const { return nextSeq; }

    bool
    empty() const
    {
        return head.load(std::memory_order_acquire) ==
               tail.load(std::memory_order_acquire);
    }

  private:
    friend class PartitionSet;

    PartitionChannel(Simulation &source_sim, unsigned src_id,
                     unsigned dst_id, unsigned chan_id,
                     Tick min_latency, std::size_t cap)
        : srcSim(source_sim), ring(cap), src(src_id), dst(dst_id),
          id(chan_id), lookahead(min_latency)
    {}

    struct Item
    {
        Tick when = 0;
        std::uint64_t seq = 0;
        Callback fn;
    };

    Simulation &srcSim;
    std::vector<Item> ring;
    /** Monotonic positions; slot = position % capacity. tail is
     * producer-owned, head consumer-owned. */
    std::atomic<std::size_t> head{0}, tail{0};
    std::uint64_t nextSeq = 0; ///< producer-owned FIFO sequence
    const unsigned src, dst, id;
    const Tick lookahead;
};

/**
 * A set of domains plus the channels connecting them, with the
 * barrier-epoch runner. Usage:
 *
 *   PartitionSet set;
 *   unsigned a = set.addDomain(simA, "socket 0");
 *   unsigned b = set.addDomain(simB, "socket 1");
 *   auto &ab = set.connect(a, b, fromNs(60));
 *   auto &ba = set.connect(b, a, fromNs(60));
 *   ... schedule work, handlers post() to ab/ba ...
 *   set.run(threads);            // until every domain drains
 */
class PartitionSet
{
  public:
    static constexpr std::size_t defaultCapacity = 1 << 14;

    PartitionSet() = default;
    PartitionSet(const PartitionSet &) = delete;
    PartitionSet &operator=(const PartitionSet &) = delete;

    /** Register a domain; ids are dense and assignment-ordered. */
    unsigned addDomain(Simulation &sim, std::string name = {});

    /**
     * Create the src->dst channel for a link with the given minimum
     * latency (must be positive: a zero-latency link admits no
     * lookahead and no parallelism).
     */
    PartitionChannel &connect(unsigned src, unsigned dst,
                              Tick min_latency,
                              std::size_t capacity = defaultCapacity);

    /**
     * Run every domain to completion under barrier-epoch
     * synchronization. @p threads <= 1 runs the identical epoch
     * schedule on the calling thread; 0 means partitionThreads().
     * Worker t owns domains {t, t+T, t+2T, ...} — a fixed assignment,
     * though any assignment yields the same event streams.
     *
     * On return every domain's clock sits at the same tick (the
     * latest event executed anywhere), so phase-structured scenarios
     * may inject new work afterwards and post across channels from
     * any domain without violating causality.
     */
    void run(unsigned threads = 0);

    unsigned domainCount() const
    {
        return static_cast<unsigned>(domains.size());
    }
    Simulation &domainSim(unsigned id) { return *domains.at(id).sim; }
    const std::string &
    domainName(unsigned id) const
    {
        return domains.at(id).name;
    }

    /** min over channels of minLatency (maxTick with no channels). */
    Tick lookahead() const { return minLat; }

    /** All domains drained and all channels empty. */
    bool idle() const;

    /**
     * Cross-domain fingerprint: FNV-1a over the per-domain stream
     * hashes in domain-id order. Identical for any worker-thread
     * count by the determinism contract above.
     */
    std::uint64_t combinedStreamHash() const; // simlint:observer

    std::uint64_t eventsExecuted() const; // simlint:observer

    /** Latest domain clock (the scenario's end time). */
    Tick maxNow() const; // simlint:observer

    /** Barrier epochs executed by the last run() (telemetry). */
    std::uint64_t epochsRun() const { return epochs; }

  private:
    struct Delivery
    {
        Tick when;
        unsigned srcDomain;
        unsigned channel;
        std::uint64_t seq;
        InlineCallback fn;
    };

    struct Domain
    {
        Simulation *sim;
        std::string name;
        std::vector<PartitionChannel *> inbound;
    };

    /**
     * Delivery phase for one domain: drain its inbound channels,
     * schedule the messages in canonical (when, srcDomain, channel,
     * seq) order, then publish the domain's next-event lower bound.
     */
    void deliverAndBound(unsigned d, std::vector<Delivery> &scratch);

    /**
     * Epoch reduction (single-threaded: barrier completion or the
     * serial loop): min-reduce the bounds into the next horizon.
     * Returns false when everything is drained.
     */
    bool computeEpoch();

    void runSerial();
    void runThreaded(unsigned threads);

    std::vector<Domain> domains;
    std::vector<std::unique_ptr<PartitionChannel>> channels;
    Tick minLat = maxTick;

    /// @name Epoch state: written only in single-threaded phases
    /// (barrier completion) or by the owning worker (bounds[d]);
    /// the barriers publish it.
    /// @{
    std::vector<Tick> bounds;
    Tick epochEnd = 0;
    bool running = false;
    std::uint64_t epochs = 0;
    /// @}
};

} // namespace dsasim

#endif // DSASIM_SIM_PARTITION_HH
