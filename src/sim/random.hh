/**
 * @file
 * Deterministic pseudo-random number generation for workloads.
 *
 * A small, fast PCG32 generator. Every stochastic component of the
 * simulator takes an explicit Rng (or a seed) so that all experiments
 * are reproducible run-to-run.
 */

#ifndef DSASIM_SIM_RANDOM_HH
#define DSASIM_SIM_RANDOM_HH

#include <cstdint>

namespace dsasim
{

/** PCG32 (Melissa O'Neill's pcg32_random_r), deterministic and seedable. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t seq = 0xda3e39cb94b95bdbULL)
    {
        state = 0;
        inc = (seq << 1) | 1u;
        next32();
        state += seed;
        next32();
    }

    /** Uniform 32-bit value. */
    std::uint32_t
    next32()
    {
        std::uint64_t old = state;
        state = old * 6364136223846793005ULL + inc;
        std::uint32_t xorshifted =
            static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
        std::uint32_t rot = static_cast<std::uint32_t>(old >> 59u);
        return (xorshifted >> rot) | (xorshifted << ((-rot) & 31));
    }

    /** Uniform 64-bit value. */
    std::uint64_t
    next64()
    {
        return (static_cast<std::uint64_t>(next32()) << 32) | next32();
    }

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    std::uint32_t
    below(std::uint32_t bound)
    {
        // Debiased modulo (Lemire-style rejection kept simple).
        std::uint32_t threshold = (-bound) % bound;
        for (;;) {
            std::uint32_t r = next32();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        if (hi <= lo)
            return lo;
        std::uint64_t span = hi - lo + 1;
        if (span == 0) // full 64-bit range
            return next64();
        return lo + next64() % span;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next32()) / 4294967296.0;
    }

    /** Bernoulli trial with probability @p p of returning true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /** Checkpointable (sim/checkpoint.hh): the full PCG32 state. */
    struct State
    {
        std::uint64_t state = 0;
        std::uint64_t inc = 0;
    };

    State saveState() const { return State{state, inc}; }

    void
    restoreState(const State &st)
    {
        state = st.state;
        inc = st.inc;
    }

  private:
    std::uint64_t state;
    std::uint64_t inc;
};

} // namespace dsasim

#endif // DSASIM_SIM_RANDOM_HH
