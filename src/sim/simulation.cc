#include "sim/simulation.hh"

#include "sim/logging.hh"

namespace dsasim
{

void
Simulation::scheduleAt(Tick when, Callback fn)
{
    panic_if(when < currentTick,
             "scheduling event in the past (when=%llu now=%llu)",
             static_cast<unsigned long long>(when),
             static_cast<unsigned long long>(currentTick));
    events.push(Event{when, nextSeq++, std::move(fn)});
}

Tick
Simulation::run()
{
    while (!events.empty()) {
        // priority_queue::top() is const; the callback must be moved
        // out before pop, so copy the cheap fields and move the fn.
        Event ev = std::move(const_cast<Event &>(events.top()));
        events.pop();
        currentTick = ev.when;
        ++executedCount;
        ev.fn();
    }
    return currentTick;
}

Tick
Simulation::runUntil(Tick until)
{
    while (!events.empty() && events.top().when <= until) {
        Event ev = std::move(const_cast<Event &>(events.top()));
        events.pop();
        currentTick = ev.when;
        ++executedCount;
        ev.fn();
    }
    if (currentTick < until)
        currentTick = until;
    return currentTick;
}

} // namespace dsasim
