#include "sim/simulation.hh"

#include <bit>

#include "sim/logging.hh"

namespace dsasim
{

void
Simulation::pushEvent(Tick when, std::coroutine_handle<> coro,
                      Callback &&fn)
{
    panic_if(when < currentTick,
             "scheduling event in the past (when=%llu now=%llu)",
             static_cast<unsigned long long>(when),
             static_cast<unsigned long long>(currentTick));
    ++pendingCount;
    const std::uint64_t seq = nextSeq++;
    const std::uint32_t idx = allocSlot(when, seq, coro, std::move(fn));
    if (when <= stageLast) {
        stageInKeys.push_back(Key{when, seq, idx});
        std::push_heap(stageInKeys.begin(), stageInKeys.end(),
                       laterFirst<Key>);
        return;
    }
    const std::uint64_t bn = when >> bucketShift;
    if (bn - curBucket < bucketCount) {
        const std::size_t slot =
            static_cast<std::size_t>(bn & bucketMask);
        nextIdx[idx] = bucketHead[slot];
        bucketHead[slot] = idx;
        occupied[slot >> 6] |= 1ull << (slot & 63);
        return;
    }
    overflowKeys.push_back(Key{when, seq, idx});
    std::push_heap(overflowKeys.begin(), overflowKeys.end(),
                   laterFirst<Key>);
}

std::size_t
Simulation::firstOccupiedOffset() const
{
    const std::size_t s0 =
        static_cast<std::size_t>(curBucket & bucketMask);
    const std::size_t w0 = s0 >> 6;
    const unsigned b0 = static_cast<unsigned>(s0 & 63);

    // Bits at or above s0 in its word.
    if (std::uint64_t w = occupied[w0] & (~0ull << b0))
        return static_cast<std::size_t>(std::countr_zero(w)) - b0;
    // Following words, wrapping around the calendar.
    for (std::size_t k = 1; k < wordCount; ++k) {
        const std::size_t wi = (w0 + k) & (wordCount - 1);
        if (std::uint64_t w = occupied[wi]) {
            const std::size_t s =
                wi * 64 +
                static_cast<std::size_t>(std::countr_zero(w));
            return (s - s0) & bucketMask;
        }
    }
    // Finally the bits below s0 in its own word (full wrap).
    if (std::uint64_t w = occupied[w0] & ~(~0ull << b0)) {
        const std::size_t s =
            w0 * 64 + static_cast<std::size_t>(std::countr_zero(w));
        return (s - s0) & bucketMask;
    }
    return bucketCount;
}

bool
Simulation::advanceStage()
{
    const std::size_t off = firstOccupiedOffset();
    bool from_calendar = off != bucketCount;
    std::uint64_t bn = curBucket + off;
    if (!overflowKeys.empty()) {
        const Tick to = overflowKeys.front().when;
        if (!from_calendar || to < (bn << bucketShift)) {
            // The earliest work lives in the overflow heap; its slot
            // cannot hold events of the same epoch (the calendar scan
            // would have found them first).
            bn = to >> bucketShift;
            from_calendar = false;
        }
    } else if (!from_calendar) {
        return false;
    }

    curBucket = bn;
    stageLast = bn >= maxBucket ? maxTick
                                : ((bn + 1) << bucketShift) - 1;
    if (from_calendar) {
        const std::size_t slot =
            static_cast<std::size_t>(bn & bucketMask);
        for (std::uint32_t i = bucketHead[slot]; i != npos;
             i = nextIdx[i])
            stageOrder.push_back(
                Key{arena[i].when, arena[i].seq, i});
        bucketHead[slot] = npos;
        occupied[slot >> 6] &= ~(1ull << (slot & 63));
        // At realistic (ns-scale) delays most buckets hold a single
        // event; the calendar has already radix-sorted those.
        if (stageOrder.size() > 1)
            std::sort(stageOrder.begin(), stageOrder.end(),
                      laterFirst<Key>);
    }
    // Pull overflow events that now fall inside the staged bucket.
    while (!overflowKeys.empty() &&
           overflowKeys.front().when <= stageLast) {
        std::pop_heap(overflowKeys.begin(), overflowKeys.end(),
                      laterFirst<Key>);
        stageInKeys.push_back(overflowKeys.back());
        overflowKeys.pop_back();
        std::push_heap(stageInKeys.begin(), stageInKeys.end(),
                       laterFirst<Key>);
    }
    return true;
}

bool
Simulation::step(Tick horizon)
{
    if (stageOrder.empty() && stageInKeys.empty() && !advanceStage())
        return false;
    // The earliest event is at the back of stageOrder or the front
    // of stageInKeys; everything else is beyond stageLast.
    bool from_sorted;
    if (stageInKeys.empty())
        from_sorted = true;
    else if (stageOrder.empty())
        from_sorted = false;
    else
        from_sorted =
            laterFirst(stageInKeys.front(), stageOrder.back());
    Key k;
    if (from_sorted) {
        k = stageOrder.back();
        if (k.when > horizon)
            return false;
        stageOrder.pop_back();
    } else {
        k = stageInKeys.front();
        if (k.when > horizon)
            return false;
        std::pop_heap(stageInKeys.begin(), stageInKeys.end(),
                      laterFirst<Key>);
        stageInKeys.pop_back();
    }
    currentTick = k.when;
    ++executedCount;
    --pendingCount;
    if (hashEnabled) [[unlikely]]
        mixStreamHash(k.when, k.seq);
    // Lift the payload out of the slot and recycle it before
    // dispatching: the callback may push new events, and the LIFO
    // freelist hands it this still-cache-warm slot first.
    Event &ev = arena[k.idx];
    if (ev.coro) {
        const std::coroutine_handle<> h = ev.coro;
        freeSlot(k.idx);
        h.resume();
    } else {
        Callback fn = std::move(ev.fn);
        freeSlot(k.idx);
        fn();
    }
    // Telemetry sampling piggybacks on event dispatch: no event is
    // scheduled, no sequence number is consumed, nothing is mixed
    // into the stream hash, so the fingerprint is identical at any
    // period — or with sampling off entirely.
    if (samplePeriod != 0 && currentTick >= nextSampleAt)
        [[unlikely]] {
        nextSampleAt =
            currentTick - currentTick % samplePeriod + samplePeriod;
        sampleHook();
    }
    return true;
}

Tick
Simulation::run()
{
    while (step(maxTick)) {
    }
    return currentTick;
}

Simulation::State
Simulation::saveState() const
{
    fatal_if(!idle(),
             "Simulation::saveState: %llu event(s) still pending — "
             "snapshots may only be taken of a quiesced simulation "
             "(run until idle, or co_await Platform::quiesce())",
             static_cast<unsigned long long>(pendingCount));
    return State{currentTick, nextSeq, executedCount, hashState,
                 hashEnabled, statsRegistry.saveState()};
}

void
Simulation::restoreState(const State &st)
{
    fatal_if(!idle(),
             "Simulation::restoreState: target kernel has %llu "
             "pending event(s); restore requires a fresh or drained "
             "simulation",
             static_cast<unsigned long long>(pendingCount));
    currentTick = st.now;
    nextSeq = st.nextSeq;
    executedCount = st.executed;
    hashState = st.hash;
    hashEnabled = st.hashOn;
    // Re-anchor the calendar window at the restored clock so the
    // first post-restore pushEvent lands in the same bucket (and
    // thus executes in the same (when, seq) order) as it would have
    // in the source simulation.
    curBucket = st.now >> bucketShift;
    stageLast = st.now;
    // Keep the sampler's cadence anchored to absolute period
    // boundaries across a restore, exactly as a cold run would be.
    if (samplePeriod != 0)
        nextSampleAt = currentTick - currentTick % samplePeriod +
                       samplePeriod;
    statsRegistry.restoreState(st.stats);
}

Tick
Simulation::runUntil(Tick until)
{
    while (step(until)) {
    }
    if (currentTick < until)
        currentTick = until;
    return currentTick;
}

Tick
Simulation::runWithin(Tick horizon)
{
    while (step(horizon)) {
    }
    return currentTick;
}

Tick
Simulation::nextEventBound() const
{
    if (pendingCount == 0)
        return maxTick;
    Tick bound = maxTick;
    if (!stageOrder.empty())
        bound = std::min(bound, stageOrder.back().when);
    if (!stageInKeys.empty())
        bound = std::min(bound, stageInKeys.front().when);
    const std::size_t off = firstOccupiedOffset();
    if (off != bucketCount) {
        // Bucket starts can predate the clock right after a
        // restoreState() re-anchor; queued events never do.
        const Tick start =
            static_cast<Tick>((curBucket + off) << bucketShift);
        bound = std::min(bound, std::max(start, currentTick));
    }
    if (!overflowKeys.empty())
        bound = std::min(bound, overflowKeys.front().when);
    return bound;
}

} // namespace dsasim
