/**
 * @file
 * The discrete-event simulation kernel.
 *
 * A Simulation owns the virtual clock and the event queue. All model
 * components (cores, DSA devices, memory links) schedule callbacks or
 * suspend C++20 coroutines on it. Events scheduled for the same tick
 * execute in FIFO order, which makes the simulation fully
 * deterministic.
 *
 * The queue is two-level, tuned for the delay distribution of this
 * simulator (sub-microsecond model latencies at picosecond tick
 * resolution):
 *
 *  - every pending event lives in one contiguous arena recycled
 *    through a LIFO freelist, so the slot just vacated by a dispatch
 *    (a cache-warm line) is the first one the next push reuses.
 *    Events are addressed by 32-bit arena index and are never moved
 *    by any ordering structure; only compact (when, seq, index) keys
 *    move;
 *  - a rotating calendar of bucketCount slots, each covering
 *    2^bucketShift ticks of the near future. A slot is just the head
 *    of an intrusive singly-linked list threaded through the arena,
 *    so scheduling into the window is O(1): write the event, link it,
 *    set an occupancy bit;
 *  - a key min-heap for events beyond the window (rare long timers
 *    such as interrupt latencies or watchdogs);
 *  - a stage for the bucket currently being drained: its keys are
 *    sorted once (descending, so draining pops from the back), and a
 *    second small key min-heap absorbs events scheduled into the
 *    active range mid-drain — the resumeAt(now) pattern of every
 *    sync primitive. Events inside one bucket therefore execute in
 *    exact (tick, sequence) order even though buckets span multiple
 *    ticks; at the simulator's ns-scale delays most buckets hold a
 *    single event and the calendar acts as a radix sort.
 *
 * Events carry a global sequence number; (when, seq) ordering is
 * identical to the original single-priority-queue kernel, so replays
 * are bit-for-bit reproducible across kernel implementations.
 *
 * Callbacks are InlineCallback (small-buffer optimized, no heap
 * allocation for small captures), and coroutine resumption stores the
 * coroutine_handle directly in the event rather than wrapping it in a
 * callback.
 */

#ifndef DSASIM_SIM_SIMULATION_HH
#define DSASIM_SIM_SIMULATION_HH

#include <algorithm>
#include <array>
#include <coroutine>
#include <cstdint>
#include <vector>

#include "sim/callback.hh"
#include "sim/stats.hh"
#include "sim/ticks.hh"

namespace dsasim
{

class Simulation
{
  public:
    using Callback = InlineCallback;

    Simulation() : bucketHead(bucketCount, npos) {}
    Simulation(const Simulation &) = delete;
    Simulation &operator=(const Simulation &) = delete;

    /** Current simulated time. */
    Tick now() const { return currentTick; }

    /** Schedule @p fn to run at absolute time @p when (>= now). */
    void
    scheduleAt(Tick when, Callback fn)
    {
        pushEvent(when, nullptr, std::move(fn));
    }

    /** Schedule @p fn to run @p delay ticks from now. */
    void
    scheduleIn(Tick delay_ticks, Callback fn)
    {
        pushEvent(currentTick + delay_ticks, nullptr, std::move(fn));
    }

    /** Resume a suspended coroutine at absolute time @p when. */
    void
    resumeAt(Tick when, std::coroutine_handle<> h)
    {
        pushEvent(when, h, Callback{});
    }

    /** Run until the event queue drains. Returns the final time. */
    Tick run();

    /**
     * Run all events with timestamp <= @p until, then set the clock
     * to @p until. Events beyond the horizon stay queued.
     */
    Tick runUntil(Tick until);

    /**
     * Run all events with timestamp <= @p horizon but leave the clock
     * at the last executed event (or untouched if none ran). The
     * conservative-lookahead partition runner (sim/partition.hh) uses
     * this to advance a domain through one epoch without inventing a
     * clock reading the serial execution would never have produced.
     */
    Tick runWithin(Tick horizon);

    /** Number of events executed so far (for tests/telemetry). */
    std::uint64_t eventsExecuted() const { return executedCount; }

    /** Number of events currently queued. */
    std::uint64_t pendingEvents() const { return pendingCount; }

    /**
     * A lower bound on the timestamp of the earliest pending event,
     * or maxTick if the queue is empty. Exact for staged events;
     * calendar events are bounded by their bucket's start tick (an
     * error of less than 2^bucketShift ticks, far below any link
     * latency a partition runner would use as lookahead). Never later
     * than the true earliest event, so it is always safe to use as a
     * conservative horizon.
     */
    Tick nextEventBound() const;

    /**
     * When enabled, every executed event folds its (when, seq) pair
     * into a running FNV-1a fingerprint of the event stream. Two runs
     * of the same scenario must produce identical fingerprints —
     * tools/determinism_check gates on this, end-to-end testing the
     * invariant simlint enforces statically (DESIGN.md §9). Off by
     * default: the hot dispatch loop pays only an untaken branch.
     */
    void enableStreamHash(bool on) { hashEnabled = on; }

    /** Current event-stream fingerprint (see enableStreamHash). */
    std::uint64_t streamHash() const { return hashState; } // simlint:observer

    /** True if no events are pending. */
    bool idle() const { return pendingCount == 0; }

    /**
     * The telemetry registry for this simulation (DESIGN.md §15).
     * Components register their metrics here at construction time;
     * samplers and exporters read it as pure observers.
     */
    stats::Registry &stats() { return statsRegistry; }
    const stats::Registry &stats() const // simlint:observer
    {
        return statsRegistry;
    }

    /**
     * Install the telemetry sample hook (stats::Sampler). The hook
     * fires on the first event dispatch at-or-after each @p period
     * boundary — after the event's effects, outside the event queue.
     * It consumes no sequence numbers and mixes nothing into the
     * stream hash, so any period (or none) leaves the event-stream
     * fingerprint bit-identical: sampling observes the schedule the
     * kernel was going to execute anyway.
     */
    void
    setSampleHook(Tick period, Callback hook)
    {
        samplePeriod = period;
        sampleHook = std::move(hook);
        nextSampleAt =
            period == 0 ? maxTick
                        : currentTick - currentTick % period + period;
    }

    /**
     * Retune the installed hook's cadence (the Sampler's bounded-
     * memory decimation). A pure observer knob: no event is
     * scheduled and nothing is hashed, so retuning mid-run leaves
     * the event-stream fingerprint bit-identical.
     */
    void
    setSamplePeriod(Tick period)
    {
        samplePeriod = period;
        nextSampleAt =
            period == 0 ? maxTick
                        : currentTick - currentTick % period + period;
    }

    /** Remove the telemetry sample hook. */
    void
    clearSampleHook()
    {
        samplePeriod = 0;
        nextSampleAt = maxTick;
        sampleHook = Callback{};
    }

    /** Is a telemetry sample hook installed? (One per calendar.) */
    bool hasSampleHook() const { return samplePeriod != 0; }

    /**
     * Checkpointable (sim/checkpoint.hh). The kernel's snapshot is
     * the plain-data residue of a drained calendar: the clock, the
     * global sequence counter, and the stream-hash accumulator.
     * Pending events hold coroutine handles and callbacks that
     * cannot be copied, so capture is only legal at idle() —
     * saveState() is fatal otherwise (snapshot-under-load is a user
     * error, not a corruption).
     */
    struct State
    {
        Tick now = 0;
        std::uint64_t nextSeq = 0;
        std::uint64_t executed = 0;
        std::uint64_t hash = 0;
        bool hashOn = false;
        /** Stored telemetry metrics, saved by dotted name. */
        stats::Registry::State stats;
    };

    State saveState() const;
    void restoreState(const State &st);

    /**
     * Awaitable: suspend the current coroutine for @p delay ticks.
     * Usage: `co_await sim.delay(fromNs(100));`
     */
    auto
    delay(Tick delay_ticks)
    {
        return DelayAwaiter{*this, currentTick + delay_ticks};
    }

    /** Awaitable: suspend the current coroutine until absolute @p when. */
    auto
    delayUntil(Tick when)
    {
        return DelayAwaiter{*this, when};
    }

  private:
    struct DelayAwaiter
    {
        Simulation &sim;
        Tick when;

        bool await_ready() const { return when <= sim.now(); }
        void
        await_suspend(std::coroutine_handle<> h)
        {
            sim.resumeAt(when, h);
        }
        void await_resume() const {}
    };

    /** Calendar geometry: bucketCount buckets of 2^bucketShift ticks
     * each; with picosecond ticks the window spans ~8.4 us of
     * simulated future, comfortably past the longest common model
     * delay (the ~1.2 us interrupt cost). */
    static constexpr unsigned bucketShift = 11;
    static constexpr std::uint64_t bucketCount = 4096;
    static constexpr std::uint64_t bucketMask = bucketCount - 1;
    static constexpr std::size_t wordCount = bucketCount / 64;
    static constexpr std::uint64_t maxBucket = maxTick >> bucketShift;

    struct Event
    {
        Tick when;
        std::uint64_t seq;
        std::coroutine_handle<> coro; ///< direct resume if non-null
        Callback fn;                  ///< otherwise invoke this
    };

    /** Sort key into the arena: ordering without moving events. */
    struct Key
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t idx;
    };

    /** Min-heap comparator for std:: heap algorithms. */
    template <typename E>
    static bool
    laterFirst(const E &a, const E &b)
    {
        if (a.when != b.when)
            return a.when > b.when;
        return a.seq > b.seq;
    }

    /** End-of-list / empty-slot marker for arena indexes. */
    static constexpr std::uint32_t npos = ~std::uint32_t{0};

    void pushEvent(Tick when, std::coroutine_handle<> coro,
                   Callback &&fn);

    /**
     * Execute the earliest pending event. Returns false (and executes
     * nothing) if the queue is empty or the earliest event lies
     * beyond @p horizon.
     */
    bool step(Tick horizon);

    /**
     * Reload the stage from the earliest non-empty bucket and/or the
     * overflow heap. Returns false if no events are pending at all;
     * otherwise the stage is guaranteed non-empty.
     */
    bool advanceStage();

    /** Offset (in buckets, from curBucket) of the first occupied
     * calendar slot, or bucketCount if the calendar is empty. */
    std::size_t firstOccupiedOffset() const;

    /** Place an event in an arena slot (recycling the freelist) and
     * return its index. */
    std::uint32_t
    allocSlot(Tick when, std::uint64_t seq,
              std::coroutine_handle<> coro, Callback &&fn)
    {
        if (freeHead != npos) {
            const std::uint32_t idx = freeHead;
            freeHead = nextIdx[idx];
            Event &ev = arena[idx];
            ev.when = when;
            ev.seq = seq;
            ev.coro = coro;
            ev.fn = std::move(fn);
            return idx;
        }
        const std::uint32_t idx =
            static_cast<std::uint32_t>(arena.size());
        arena.emplace_back(when, seq, coro, std::move(fn));
        nextIdx.push_back(npos);
        return idx;
    }

    void
    freeSlot(std::uint32_t idx)
    {
        nextIdx[idx] = freeHead;
        freeHead = idx;
    }

    /**
     * Backing store for every pending event; grows to the high-water
     * mark of concurrent events and is recycled via the freelist.
     */
    std::vector<Event> arena;
    /** Per-arena-slot link: next event in the same calendar slot,
     * or next free slot when the event is on the freelist. */
    std::vector<std::uint32_t> nextIdx;
    /** Top of the LIFO free-slot list, npos if none. */
    std::uint32_t freeHead = npos;
    /** Keys of the staged bucket, sorted descending by (when, seq);
     * drained from the back. */
    std::vector<Key> stageOrder;
    /** Keys of mid-drain arrivals, a (when, seq) min-heap. */
    std::vector<Key> stageInKeys;
    /** Calendar: per-slot head of an intrusive event list for
     * (stageLast, window end); epoch-unique. */
    std::vector<std::uint32_t> bucketHead;
    /** One bit per calendar slot: does it hold any events? */
    std::array<std::uint64_t, wordCount> occupied{};
    /** Keys of events beyond the calendar window, (when, seq)
     * min-heap. */
    std::vector<Key> overflowKeys;

    /** Fold one executed event into the stream fingerprint. */
    void
    mixStreamHash(Tick when, std::uint64_t seq)
    {
        std::uint64_t h = hashState;
        h = (h ^ when) * 0x100000001b3ull;
        h = (h ^ seq) * 0x100000001b3ull;
        hashState = h;
    }

    bool hashEnabled = false;
    std::uint64_t hashState = 0xcbf29ce484222325ull;

    /** Telemetry registry; owned here so every component with a
     * Simulation reference can register without new plumbing. */
    stats::Registry statsRegistry;
    /** Telemetry sample hook (empty when no sampler installed). */
    Callback sampleHook;
    /** Sampling period in ticks; 0 disables the hook entirely. */
    Tick samplePeriod = 0;
    /** Next period boundary; the first dispatch at-or-after it
     * fires the hook. maxTick when sampling is off. */
    Tick nextSampleAt = maxTick;

    Tick currentTick = 0;
    /** Inclusive upper bound of the ticks covered by the stage. */
    Tick stageLast = 0;
    /** Absolute bucket number the calendar window starts at. */
    std::uint64_t curBucket = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t executedCount = 0;
    std::uint64_t pendingCount = 0;
};

} // namespace dsasim

#endif // DSASIM_SIM_SIMULATION_HH
