/**
 * @file
 * The discrete-event simulation kernel.
 *
 * A Simulation owns the virtual clock and the event queue. All model
 * components (cores, DSA devices, memory links) schedule callbacks or
 * suspend C++20 coroutines on it. Events scheduled for the same tick
 * execute in FIFO order, which makes the simulation fully
 * deterministic.
 */

#ifndef DSASIM_SIM_SIMULATION_HH
#define DSASIM_SIM_SIMULATION_HH

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/ticks.hh"

namespace dsasim
{

class Simulation
{
  public:
    using Callback = std::function<void()>;

    Simulation() = default;
    Simulation(const Simulation &) = delete;
    Simulation &operator=(const Simulation &) = delete;

    /** Current simulated time. */
    Tick now() const { return currentTick; }

    /** Schedule @p fn to run at absolute time @p when (>= now). */
    void scheduleAt(Tick when, Callback fn);

    /** Schedule @p fn to run @p delay ticks from now. */
    void
    scheduleIn(Tick delay_ticks, Callback fn)
    {
        scheduleAt(currentTick + delay_ticks, std::move(fn));
    }

    /** Resume a suspended coroutine at absolute time @p when. */
    void
    resumeAt(Tick when, std::coroutine_handle<> h)
    {
        scheduleAt(when, [h] { h.resume(); });
    }

    /** Run until the event queue drains. Returns the final time. */
    Tick run();

    /**
     * Run all events with timestamp <= @p until, then set the clock
     * to @p until. Events beyond the horizon stay queued.
     */
    Tick runUntil(Tick until);

    /** Number of events executed so far (for tests/telemetry). */
    std::uint64_t eventsExecuted() const { return executedCount; }

    /** True if no events are pending. */
    bool idle() const { return events.empty(); }

    /**
     * Awaitable: suspend the current coroutine for @p delay ticks.
     * Usage: `co_await sim.delay(fromNs(100));`
     */
    auto
    delay(Tick delay_ticks)
    {
        return DelayAwaiter{*this, currentTick + delay_ticks};
    }

    /** Awaitable: suspend the current coroutine until absolute @p when. */
    auto
    delayUntil(Tick when)
    {
        return DelayAwaiter{*this, when};
    }

  private:
    struct DelayAwaiter
    {
        Simulation &sim;
        Tick when;

        bool await_ready() const { return when <= sim.now(); }
        void
        await_suspend(std::coroutine_handle<> h)
        {
            sim.resumeAt(when, h);
        }
        void await_resume() const {}
    };

    struct Event
    {
        Tick when;
        std::uint64_t seq;
        Callback fn;
    };

    struct EventOrder
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, EventOrder> events;
    Tick currentTick = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t executedCount = 0;
};

} // namespace dsasim

#endif // DSASIM_SIM_SIMULATION_HH
