/**
 * @file
 * Telemetry registry, deterministic sampler and exporters
 * (DESIGN.md §15). See sim/stats.hh for the architecture.
 */

#include "sim/stats.hh"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace dsasim
{
namespace stats
{

// --------------------------------------------------------------------
// Histogram

Histogram::Histogram(std::vector<double> upper_bounds)
    : ubounds(std::move(upper_bounds))
{
    for (std::size_t i = 1; i < ubounds.size(); ++i)
        fatal_if(ubounds[i] <= ubounds[i - 1],
                 "stats::Histogram: bucket bounds must be strictly "
                 "ascending (%f then %f)",
                 ubounds[i - 1], ubounds[i]);
    counts.assign(ubounds.size() + 1, 0);
}

double
Histogram::quantile(double q) const
{
    if (n == 0)
        return 0.0;
    q = std::min(1.0, std::max(0.0, q));
    const double target = q * static_cast<double>(n);
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < counts.size(); ++b) {
        const std::uint64_t prev = cum;
        cum += counts[b];
        if (static_cast<double>(cum) < target || counts[b] == 0)
            continue;
        if (b >= ubounds.size()) // +Inf bucket: clamp to last bound
            return ubounds.empty() ? 0.0 : ubounds.back();
        const double lo = b == 0 ? 0.0 : ubounds[b - 1];
        const double hi = ubounds[b];
        const double frac = (target - static_cast<double>(prev)) /
                            static_cast<double>(counts[b]);
        return lo + frac * (hi - lo);
    }
    return ubounds.empty() ? 0.0 : ubounds.back();
}

// --------------------------------------------------------------------
// Registry

Registry::Metric &
Registry::add(const std::string &name, Kind kind,
              const std::string &help)
{
    fatal_if(name.empty(), "stats::Registry: empty metric name");
    auto [it, inserted] = metrics.try_emplace(name);
    fatal_if(!inserted,
             "stats::Registry: duplicate metric name '%s' (use "
             "Registry::scope() for multi-instance components)",
             name.c_str());
    it->second.kind = kind;
    it->second.help = help;
    return it->second;
}

Counter &
Registry::counter(const std::string &name, const std::string &help)
{
    Metric &m = add(name, Kind::Counter, help);
    if (auto it = pendingCounters.find(name);
        it != pendingCounters.end()) {
        m.ctr.cell = it->second;
        pendingCounters.erase(it);
    }
    return m.ctr;
}

Counter &
Registry::counter(const std::string &name, const std::string &help,
                  std::function<std::uint64_t()> supplier)
{
    Metric &m = add(name, Kind::Counter, help);
    m.ctr.fn = std::move(supplier);
    // Supplier-backed views restore through their owning component;
    // a parked value for this name is stale by definition.
    pendingCounters.erase(name);
    return m.ctr;
}

Gauge &
Registry::gauge(const std::string &name, const std::string &help)
{
    Metric &m = add(name, Kind::Gauge, help);
    if (auto it = pendingGauges.find(name); it != pendingGauges.end()) {
        m.gau.cell = it->second;
        pendingGauges.erase(it);
    }
    return m.gau;
}

Gauge &
Registry::gauge(const std::string &name, const std::string &help,
                std::function<double()> supplier)
{
    Metric &m = add(name, Kind::Gauge, help);
    m.gau.fn = std::move(supplier);
    pendingGauges.erase(name);
    return m.gau;
}

Histogram &
Registry::histogram(const std::string &name, const std::string &help,
                    std::vector<double> upper_bounds)
{
    Metric &m = add(name, Kind::Histogram, help);
    m.hist = Histogram(std::move(upper_bounds));
    if (auto it = pendingHistograms.find(name);
        it != pendingHistograms.end()) {
        const HistogramState &hs = it->second;
        fatal_if(hs.buckets.size() != m.hist.counts.size(),
                 "stats::Registry: histogram '%s' restored with %zu "
                 "buckets but registered with %zu",
                 name.c_str(), hs.buckets.size(),
                 m.hist.counts.size());
        m.hist.counts = hs.buckets;
        m.hist.n = hs.count;
        m.hist.total = hs.sum;
        pendingHistograms.erase(it);
    }
    return m.hist;
}

std::string
Registry::scope(const std::string &stem)
{
    unsigned &n = scopes[stem];
    return stem + std::to_string(n++);
}

bool
Registry::has(const std::string &name) const // simlint:observer
{
    return metrics.find(name) != metrics.end();
}

std::uint64_t
Registry::counterValue(const std::string &name) const // simlint:observer
{
    const auto it = metrics.find(name);
    fatal_if(it == metrics.end(),
             "stats::Registry: no metric named '%s'", name.c_str());
    fatal_if(it->second.kind != Kind::Counter,
             "stats::Registry: metric '%s' is not a counter",
             name.c_str());
    return it->second.ctr.value();
}

void
Registry::sampleInto(Snapshot &snap) const // simlint:observer
{
    const bool rebuild = snap.entries.size() != metrics.size();
    if (rebuild) {
        snap.entries.clear();
        snap.entries.resize(metrics.size());
    }
    std::size_t i = 0;
    for (const auto &[name, m] : metrics) {
        SnapshotEntry &e = snap.entries[i++];
        if (rebuild || e.name != name) {
            e.name = name;
            e.help = m.help;
            e.kind = m.kind;
            e.bounds = m.hist.ubounds;
        }
        switch (m.kind) {
          case Kind::Counter:
            e.value = static_cast<double>(m.ctr.value());
            break;
          case Kind::Gauge:
            e.value = m.gau.value();
            break;
          case Kind::Histogram:
            e.value = static_cast<double>(m.hist.count());
            e.sum = m.hist.sum();
            e.buckets = m.hist.bucketCounts();
            break;
        }
    }
}

Registry::Snapshot
Registry::snapshot() const // simlint:observer
{
    Snapshot snap;
    sampleInto(snap);
    return snap;
}

void
Registry::fold(const Registry &src, const std::string &prefix)
{
    // Upsert semantics: barrier-time folds overwrite the previous
    // interval's copy. Supplier-backed sources are evaluated now and
    // stored flat, so the folded view has no cross-domain references.
    for (const auto &[name, m] : src.metrics) {
        const std::string full = prefix + name;
        auto it = metrics.find(full);
        if (it == metrics.end()) {
            it = metrics.try_emplace(full).first;
            it->second.kind = m.kind;
            it->second.help = m.help;
        } else {
            fatal_if(it->second.kind != m.kind,
                     "stats::Registry::fold: metric '%s' changed "
                     "kind across folds",
                     full.c_str());
        }
        Metric &dst = it->second;
        switch (m.kind) {
          case Kind::Counter:
            dst.ctr.cell = m.ctr.value();
            break;
          case Kind::Gauge:
            dst.gau.cell = m.gau.value();
            break;
          case Kind::Histogram:
            dst.hist.ubounds = m.hist.ubounds;
            dst.hist.counts = m.hist.counts;
            dst.hist.n = m.hist.n;
            dst.hist.total = m.hist.total;
            break;
        }
    }
}

Registry::State
Registry::saveState() const
{
    State st;
    for (const auto &[name, m] : metrics) {
        switch (m.kind) {
          case Kind::Counter:
            if (!m.ctr.supplierBacked())
                st.counters.emplace_back(name, m.ctr.cell);
            break;
          case Kind::Gauge:
            if (!m.gau.supplierBacked())
                st.gauges.emplace_back(name, m.gau.cell);
            break;
          case Kind::Histogram:
            st.histograms.emplace_back(
                name, HistogramState{m.hist.counts, m.hist.n,
                                     m.hist.total});
            break;
        }
    }
    // Values restored before their metric registered still belong to
    // the logical state (Snapshot::fork re-anchors the kernel before
    // the platform re-registers); carry them forward. Names are
    // disjoint from the live set — registration consumes the parked
    // value — so a plain append keeps each vector name-sorted only
    // after a merge; sort for a canonical order.
    for (const auto &[name, v] : pendingCounters)
        st.counters.emplace_back(name, v);
    for (const auto &[name, v] : pendingGauges)
        st.gauges.emplace_back(name, v);
    for (const auto &[name, v] : pendingHistograms)
        st.histograms.emplace_back(name, v);
    auto byName = [](const auto &a, const auto &b) {
        return a.first < b.first;
    };
    std::sort(st.counters.begin(), st.counters.end(), byName);
    std::sort(st.gauges.begin(), st.gauges.end(), byName);
    std::sort(st.histograms.begin(), st.histograms.end(), byName);
    return st;
}

void
Registry::restoreState(const State &st)
{
    for (const auto &[name, v] : st.counters) {
        const auto it = metrics.find(name);
        if (it == metrics.end()) {
            pendingCounters[name] = v;
        } else if (it->second.kind == Kind::Counter &&
                   !it->second.ctr.supplierBacked()) {
            it->second.ctr.cell = v;
        }
    }
    for (const auto &[name, v] : st.gauges) {
        const auto it = metrics.find(name);
        if (it == metrics.end()) {
            pendingGauges[name] = v;
        } else if (it->second.kind == Kind::Gauge &&
                   !it->second.gau.supplierBacked()) {
            it->second.gau.cell = v;
        }
    }
    for (const auto &[name, hs] : st.histograms) {
        const auto it = metrics.find(name);
        if (it == metrics.end()) {
            pendingHistograms[name] = hs;
        } else if (it->second.kind == Kind::Histogram &&
                   it->second.hist.counts.size() ==
                       hs.buckets.size()) {
            it->second.hist.counts = hs.buckets;
            it->second.hist.n = hs.count;
            it->second.hist.total = hs.sum;
        }
    }
}

// --------------------------------------------------------------------
// Export knobs

bool
samplingEnabled()
{
    const char *v = std::getenv("DSASIM_STATS");
    return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
}

std::string
exportPrefix()
{
    const char *v = std::getenv("DSASIM_STATS");
    if (v == nullptr || *v == '\0' || std::strcmp(v, "0") == 0)
        return "";
    if (std::strcmp(v, "1") == 0)
        return "dsasim-stats-";
    return v;
}

Tick
samplePeriodTicks()
{
    const char *v = std::getenv("DSASIM_STATS_PERIOD");
    double ns = 1000.0;
    if (v != nullptr && *v != '\0') {
        ns = std::atof(v);
        fatal_if(ns <= 0.0,
                 "DSASIM_STATS_PERIOD: expected a positive "
                 "nanosecond count, got '%s'",
                 v);
    }
    return fromNs(ns);
}

// --------------------------------------------------------------------
// Exporters

std::string
prometheusName(const std::string &name)
{
    std::string out = "dsasim_";
    out.reserve(out.size() + name.size());
    for (const char c : name)
        out.push_back(
            std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
    return out;
}

namespace
{

/** Shortest round-trippable rendering; %g-style for bounds. */
void
printDouble(std::FILE *out, double v)
{
    if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
        std::fabs(v) < 1e15) {
        std::fprintf(out, "%lld",
                     static_cast<long long>(v));
        return;
    }
    std::fprintf(out, "%.17g", v);
}

const char *
kindName(Registry::Kind k)
{
    switch (k) {
      case Registry::Kind::Counter:
        return "counter";
      case Registry::Kind::Gauge:
        return "gauge";
      case Registry::Kind::Histogram:
        return "histogram";
    }
    return "untyped";
}

} // namespace

void
writePrometheus(const Registry::Snapshot &snap,
                std::FILE *out) // simlint:observer
{
    std::fprintf(out,
                 "# dsasim telemetry snapshot at tick %llu\n",
                 static_cast<unsigned long long>(snap.when));
    for (const Registry::SnapshotEntry &e : snap.entries) {
        const std::string pname = prometheusName(e.name);
        std::fprintf(out, "# HELP %s %s\n", pname.c_str(),
                     e.help.empty() ? e.name.c_str()
                                    : e.help.c_str());
        std::fprintf(out, "# TYPE %s %s\n", pname.c_str(),
                     kindName(e.kind));
        if (e.kind != Registry::Kind::Histogram) {
            std::fprintf(out, "%s ", pname.c_str());
            printDouble(out, e.value);
            std::fprintf(out, "\n");
            continue;
        }
        // Histogram: cumulative buckets, then _sum and _count.
        std::uint64_t cum = 0;
        for (std::size_t b = 0; b < e.buckets.size(); ++b) {
            cum += e.buckets[b];
            std::fprintf(out, "%s_bucket{le=\"", pname.c_str());
            if (b < e.bounds.size())
                std::fprintf(out, "%g", e.bounds[b]);
            else
                std::fprintf(out, "+Inf");
            std::fprintf(out, "\"} %llu\n",
                         static_cast<unsigned long long>(cum));
        }
        std::fprintf(out, "%s_sum ", pname.c_str());
        printDouble(out, e.sum);
        std::fprintf(out, "\n%s_count %llu\n", pname.c_str(),
                     static_cast<unsigned long long>(
                         static_cast<std::uint64_t>(e.value)));
    }
}

bool
validatePrometheus(const std::string &text, std::string *error)
{
    const auto fail = [&](const std::string &msg) {
        if (error != nullptr)
            *error = msg;
        return false;
    };

    // Per-metric-family bookkeeping keyed by base name.
    struct Family
    {
        bool haveHelp = false;
        bool haveType = false;
        std::string type;
        double lastBucket = -1.0;
        bool sawInf = false;
        double infCount = 0.0;
        bool haveCount = false;
        double count = 0.0;
    };
    std::map<std::string, Family> families;

    const auto baseOf = [](const std::string &metric,
                           std::string &suffix) {
        for (const char *s : {"_bucket", "_sum", "_count"}) {
            const std::size_t sl = std::strlen(s);
            if (metric.size() > sl &&
                metric.compare(metric.size() - sl, sl, s) == 0) {
                suffix = s;
                return metric.substr(0, metric.size() - sl);
            }
        }
        suffix.clear();
        return metric;
    };

    std::istringstream in(text);
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const std::string at =
            "line " + std::to_string(lineno) + ": ";
        if (line.empty())
            continue;
        if (line.rfind("# HELP ", 0) == 0 ||
            line.rfind("# TYPE ", 0) == 0) {
            const bool is_help = line[2] == 'H';
            std::istringstream ls(line.substr(7));
            std::string metric, rest;
            ls >> metric;
            if (metric.empty())
                return fail(at + "malformed HELP/TYPE line");
            Family &f = families[metric];
            if (is_help) {
                f.haveHelp = true;
            } else {
                ls >> rest;
                if (rest != "counter" && rest != "gauge" &&
                    rest != "histogram" && rest != "untyped")
                    return fail(at + "unknown TYPE '" + rest + "'");
                f.haveType = true;
                f.type = rest;
            }
            continue;
        }
        if (line[0] == '#')
            continue; // plain comment
        // Sample line: name[{labels}] value
        const std::size_t brace = line.find('{');
        const std::size_t space = line.find(' ');
        if (space == std::string::npos)
            return fail(at + "sample line with no value");
        const std::string metric = line.substr(
            0, std::min(space, brace == std::string::npos
                                   ? space
                                   : brace));
        std::string suffix;
        const std::string base = baseOf(metric, suffix);
        const auto fit = families.find(base);
        // Histogram child series inherit the family's HELP/TYPE; a
        // scalar whose own name has HELP/TYPE is also fine.
        const auto self = families.find(metric);
        const Family *fam = nullptr;
        if (fit != families.end() && fit->second.haveHelp &&
            fit->second.haveType)
            fam = &fit->second;
        else if (self != families.end() && self->second.haveHelp &&
                 self->second.haveType)
            fam = &self->second;
        if (fam == nullptr)
            return fail(at + "sample '" + metric +
                        "' missing HELP/TYPE");
        const double value =
            std::atof(line.c_str() + space + 1);
        if (!(value >= 0.0) &&
            (fam->type == "counter" || fam->type == "histogram"))
            return fail(at + "negative " + fam->type + " sample '" +
                        metric + "'");
        if (fam->type == "histogram" && fit != families.end()) {
            Family &f = fit->second;
            if (suffix == "_bucket") {
                if (value < f.lastBucket)
                    return fail(at + "histogram '" + base +
                                "' buckets not cumulative");
                f.lastBucket = value;
                if (brace != std::string::npos &&
                    line.find("le=\"+Inf\"") != std::string::npos) {
                    f.sawInf = true;
                    f.infCount = value;
                }
            } else if (suffix == "_count") {
                f.haveCount = true;
                f.count = value;
            }
        }
    }
    for (const auto &[name, f] : families) {
        if (f.type == "histogram" && f.haveCount) {
            if (!f.sawInf)
                return fail("histogram '" + name +
                            "' missing +Inf bucket");
            if (f.infCount != f.count)
                return fail("histogram '" + name +
                            "' +Inf bucket != _count");
        }
    }
    if (error != nullptr)
        error->clear();
    return true;
}

// --------------------------------------------------------------------
// Sampler

Sampler::Sampler(Simulation &s, Tick period)
    : sim(s), tickPeriod(period)
{
    fatal_if(period == 0, "stats::Sampler: zero sampling period");
    sim.setSampleHook(period, [this] { sample(); });
}

Sampler::~Sampler()
{
    sim.clearSampleHook();
}

void
Sampler::lockColumns()
{
    const Registry &reg =
        static_cast<const Simulation &>(sim).stats();
    columns.reserve(reg.metrics.size());
    for (const auto &[name, m] : reg.metrics) {
        Column c;
        c.name = name;
        c.kind = m.kind;
        c.ctr = &m.ctr;
        c.gau = &m.gau;
        c.hist = &m.hist;
        valuesPerRow +=
            m.kind == Registry::Kind::Histogram ? 4 : 1;
        columns.push_back(std::move(c));
    }
    lockedMetricCount = reg.metrics.size();
}

void
Sampler::decimate() // simlint:observer
{
    // Keep the later row of each pair so the series still ends at
    // the newest sample, and double the cadence: memory stays
    // bounded on arbitrarily long runs, the surviving spacing stays
    // uniform, and the kept ticks are a function of simulated time
    // only — identical runs decimate identically.
    std::size_t w = 0;
    for (std::size_t r = 1; r < rows.size(); r += 2)
        rows[w++] = std::move(rows[r]);
    rows.resize(w);
    tickPeriod *= 2;
    // Retuning the hook cadence schedules no event and hashes
    // nothing (Simulation::setSamplePeriod): fingerprints are
    // untouched.
    // simlint:allow(observer-purity)
    sim.setSamplePeriod(tickPeriod);
}

void
Sampler::sample() // simlint:observer
{
    if (columns.empty()) {
        lockColumns();
    } else if (!warnedNewMetrics &&
               static_cast<const Simulation &>(sim).stats().size() !=
                   lockedMetricCount) {
        std::fprintf(stderr,
                     "dsasim: stats: metrics registered after the "
                     "first sample are omitted from the CSV (columns "
                     "are locked); they still appear in the "
                     "Prometheus export\n");
        warnedNewMetrics = true;
    }

    // The hot path: straight reads through the locked metric
    // references — no name lookups, no snapshot rebuild.
    Row row;
    row.when = sim.now();
    row.values.reserve(valuesPerRow);
    for (const Column &c : columns) {
        switch (c.kind) {
          case Registry::Kind::Counter:
            row.values.push_back(
                static_cast<double>(c.ctr->value()));
            break;
          case Registry::Kind::Gauge:
            row.values.push_back(c.gau->value());
            break;
          case Registry::Kind::Histogram:
            row.values.push_back(
                static_cast<double>(c.hist->count()));
            row.values.push_back(c.hist->sum());
            row.values.push_back(c.hist->quantile(0.99));
            row.values.push_back(c.hist->quantile(0.999));
            break;
        }
    }
    rows.push_back(std::move(row));
    if (rows.size() >= maxRows)
        decimate();

    // Keep the Prometheus snapshot part of the recording: fresh on
    // short runs, at most snapRefresh samples stale on long ones —
    // and never read from the live registry at export time, when
    // supplier-backed owners may already be gone.
    ++samplesSinceSnap;
    if (rows.size() <= snapRefresh ||
        samplesSinceSnap >= snapRefresh) {
        static_cast<const Simulation &>(sim).stats().sampleInto(
            snap);
        snap.when = sim.now();
        samplesSinceSnap = 0;
    }
}

bool
Sampler::writeCsv(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    std::fprintf(f, "tick_ps");
    for (const Column &c : columns) {
        if (c.kind == Registry::Kind::Histogram)
            std::fprintf(f, ",%s.count,%s.sum,%s.p99,%s.p999",
                         c.name.c_str(), c.name.c_str(),
                         c.name.c_str(), c.name.c_str());
        else
            std::fprintf(f, ",%s", c.name.c_str());
    }
    std::fprintf(f, "\n");
    for (const Row &r : rows) {
        std::fprintf(f, "%llu",
                     static_cast<unsigned long long>(r.when));
        for (const double v : r.values) {
            std::fprintf(f, ",");
            printDouble(f, v);
        }
        std::fprintf(f, "\n");
    }
    std::fclose(f);
    return true;
}

bool
Sampler::writePrometheusFile(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    writePrometheus(snap, f);
    std::fclose(f);
    return true;
}

} // namespace stats
} // namespace dsasim
