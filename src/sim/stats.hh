/**
 * @file
 * Measurement helpers: scalar counters, sample histograms with exact
 * percentiles, and time series for occupancy-style plots — plus the
 * first-class telemetry registry (namespace stats): hierarchical
 * dotted-name counters/gauges/fixed-bucket histograms, a
 * deterministic pure-observer sampler, and pcm-sensor-server-style
 * CSV / Prometheus exporters (DESIGN.md §15).
 */

#ifndef DSASIM_SIM_STATS_HH
#define DSASIM_SIM_STATS_HH

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <limits>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/ticks.hh"

namespace dsasim
{

/**
 * Collects samples and answers count/mean/min/max/percentile queries.
 * Samples are stored exactly up to a cap (default 4M — enough for the
 * paper's p99.999 tail-latency plots), then reservoir-sampled so the
 * percentile estimates stay unbiased for long runs.
 */
class Histogram
{
  public:
    explicit Histogram(std::size_t max_samples = 1 << 22)
        : cap(max_samples)
    {}

    void
    add(double v)
    {
        ++n;
        total += v;
        minV = std::min(minV, v);
        maxV = std::max(maxV, v);
        if (samples.size() < cap) {
            samples.push_back(v);
        } else {
            // Vitter's algorithm R; cheap xorshift is adequate here.
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            std::uint64_t idx = seed % n;
            if (idx < cap)
                samples[idx] = v;
        }
        sorted = false;
    }

    std::uint64_t count() const { return n; }
    double sum() const { return total; }
    double mean() const { return n ? total / static_cast<double>(n) : 0.0; }
    double min() const { return n ? minV : 0.0; }
    double max() const { return n ? maxV : 0.0; }

    /** Exact (or reservoir-estimated) percentile, p in [0, 100]. */
    double
    percentile(double p)
    {
        if (samples.empty())
            return 0.0;
        if (!sorted) {
            std::sort(samples.begin(), samples.end());
            sorted = true;
        }
        if (p <= 0.0)
            return samples.front();
        if (p >= 100.0)
            return samples.back();
        double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
        std::size_t lo = static_cast<std::size_t>(rank);
        double frac = rank - static_cast<double>(lo);
        if (lo + 1 >= samples.size())
            return samples.back();
        return samples[lo] * (1.0 - frac) + samples[lo + 1] * frac;
    }

    /** Fold another histogram's samples into this one. */
    void
    merge(const Histogram &other)
    {
        double retained = 0.0;
        for (double v : other.samples) {
            add(v);
            retained += v;
        }
        // add() only saw the retained samples; restore the exact
        // count/sum (reservoir-dropped samples included) and bounds.
        n += other.n - other.samples.size();
        total += other.total - retained;
        if (other.n) {
            minV = std::min(minV, other.minV);
            maxV = std::max(maxV, other.maxV);
        }
    }

    void
    reset()
    {
        samples.clear();
        sorted = false;
        n = 0;
        total = 0.0;
        minV = std::numeric_limits<double>::infinity();
        maxV = -std::numeric_limits<double>::infinity();
    }

  private:
    std::size_t cap;
    std::vector<double> samples;
    bool sorted = false;
    std::uint64_t n = 0;
    double total = 0.0;
    double minV = std::numeric_limits<double>::infinity();
    double maxV = -std::numeric_limits<double>::infinity();
    std::uint64_t seed = 0x9e3779b97f4a7c15ULL;
};

/**
 * A (tick, value) series, e.g. per-core LLC occupancy over time for
 * the Fig. 12 reproduction.
 */
class TimeSeries
{
  public:
    struct Point
    {
        Tick when;
        double value;
    };

    void add(Tick when, double value) { points.push_back({when, value}); }
    const std::vector<Point> &data() const { return points; }
    std::size_t size() const { return points.size(); }
    void clear() { points.clear(); }

  private:
    std::vector<Point> points;
};

/**
 * Tracks how an agent's cycles split across activity classes —
 * used for the UMWAIT cycle accounting (Fig. 11) and the datacenter
 * tax style breakdowns.
 */
class CycleAccount
{
  public:
    void
    charge(const std::string &bucket, Tick t)
    {
        for (auto &e : entries) {
            if (e.name == bucket) {
                e.ticks += t;
                return;
            }
        }
        entries.push_back({bucket, t});
    }

    Tick
    bucket(const std::string &name) const
    {
        for (const auto &e : entries)
            if (e.name == name)
                return e.ticks;
        return 0;
    }

    Tick
    totalTicks() const
    {
        Tick t = 0;
        for (const auto &e : entries)
            t += e.ticks;
        return t;
    }

    double
    fraction(const std::string &name) const
    {
        Tick tot = totalTicks();
        if (tot == 0)
            return 0.0;
        return static_cast<double>(bucket(name)) / static_cast<double>(tot);
    }

    void clear() { entries.clear(); }

  private:
    struct Entry
    {
        std::string name;
        Tick ticks = 0;
    };
    std::vector<Entry> entries;
};

/**
 * The telemetry registry (DESIGN.md §15). Metrics carry stable
 * hierarchical dotted names ("dsa0.eng2.bytes_read"; a cluster fold
 * prefixes the domain: "socket0.dsa1.eng2.bytes_read") and are
 * registered once, by the component that owns them, against the
 * Simulation's registry. Mutation goes through the metric API only —
 * Counter::add / Gauge::set / Histogram::observe (simlint's
 * counter-mutation rule rejects direct field writes) — and every
 * read surface (snapshots, the Sampler, the exporters) is a pure
 * observer: it never schedules events, consumes sequence numbers, or
 * touches simulated state, so telemetry on/off and any sampling
 * period leave event-stream fingerprints bit-identical.
 */
namespace stats
{

class Registry;

/**
 * Monotonic event counter. Either a stored cell bumped via add(),
 * or a registry view over an existing component statistic
 * (supplier-backed; see Registry::counter with a function).
 */
class Counter
{
  public:
    void add(std::uint64_t d) { cell += d; }
    void inc() { cell += 1; }
    std::uint64_t value() const { return fn ? fn() : cell; }
    bool supplierBacked() const { return static_cast<bool>(fn); }

  private:
    friend class Registry;
    std::uint64_t cell = 0;
    std::function<std::uint64_t()> fn;
};

/** Point-in-time level: stored via set(), or supplier-backed. */
class Gauge
{
  public:
    void set(double v) { cell = v; }
    double value() const { return fn ? fn() : cell; }
    bool supplierBacked() const { return static_cast<bool>(fn); }

  private:
    friend class Registry;
    double cell = 0.0;
    std::function<double()> fn;
};

/**
 * Fixed-bucket histogram (Prometheus-style cumulative export): one
 * count per configured upper bound plus an implicit +Inf overflow
 * bucket. Unlike dsasim::Histogram (an exact/reservoir sample store
 * for offline percentiles) the memory is O(buckets) and the export
 * is deterministic, which is what the telemetry path needs.
 */
class Histogram
{
  public:
    Histogram() = default;

    /** @p upper_bounds must be strictly ascending. */
    explicit Histogram(std::vector<double> upper_bounds);

    void
    observe(double v)
    {
        std::size_t i = 0;
        while (i < ubounds.size() && v > ubounds[i])
            ++i;
        ++counts[i];
        ++n;
        total += v;
    }

    std::uint64_t count() const { return n; }
    double sum() const { return total; }
    const std::vector<double> &bounds() const { return ubounds; }
    /** Per-bucket counts; size bounds().size() + 1 (+Inf last). */
    const std::vector<std::uint64_t> &bucketCounts() const
    {
        return counts;
    }

    /**
     * Bucket-resolved quantile estimate (q in [0, 1]), linearly
     * interpolated within the selected bucket — the p99/p999 readout
     * for live dashboards; exact tails still come from the reservoir
     * dsasim::Histogram.
     */
    double quantile(double q) const;

  private:
    friend class Registry;
    std::vector<double> ubounds;
    std::vector<std::uint64_t> counts{0};
    std::uint64_t n = 0;
    double total = 0.0;
};

/**
 * Hierarchical metric registry, one per Simulation. Registration
 * (setup-time, non-observer) returns a stable reference — metrics
 * live in node-based storage and are never removed. A duplicate name
 * is fatal; multi-instance components disambiguate via scope().
 *
 * Checkpointable (sim/checkpoint.hh) as part of Simulation::State:
 * stored metrics save by name and restore onto a registry whose
 * components may not have registered yet (Snapshot::fork re-anchors
 * the kernel before rebuilding the platform) — early values park in
 * a pending map and seed the metric when it registers.
 */
class Registry
{
  public:
    enum class Kind : std::uint8_t
    {
        Counter,
        Gauge,
        Histogram,
    };

    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;
    Registry(Registry &&) = default;
    Registry &operator=(Registry &&) = default;

    /// @name Registration (setup-time; duplicate names are fatal).
    /// @{
    Counter &counter(const std::string &name,
                     const std::string &help = "");
    /** Supplier-backed counter view over an existing statistic. */
    Counter &counter(const std::string &name, const std::string &help,
                     std::function<std::uint64_t()> supplier);
    Gauge &gauge(const std::string &name,
                 const std::string &help = "");
    Gauge &gauge(const std::string &name, const std::string &help,
                 std::function<double()> supplier);
    Histogram &histogram(const std::string &name,
                         const std::string &help,
                         std::vector<double> upper_bounds);

    /**
     * Auto-numbered instance prefix: scope("dto") returns "dto0",
     * then "dto1", ... — stable per registration order, which the
     * deterministic construction order makes reproducible.
     */
    std::string scope(const std::string &stem);
    /// @}

    /// @name Observer read surface.
    /// @{
    std::size_t size() const { return metrics.size(); }
    bool has(const std::string &name) const; // simlint:observer

    /** Value of a registered counter; fatal if absent/not a counter. */
    std::uint64_t
    counterValue(const std::string &name) const; // simlint:observer

    /** One metric flattened for export. */
    struct SnapshotEntry
    {
        std::string name;
        std::string help;
        Kind kind = Kind::Counter;
        /** Counter/gauge scalar; histogram: observation count. */
        double value = 0.0;
        double sum = 0.0;                   ///< histogram only
        std::vector<double> bounds;         ///< histogram only
        std::vector<std::uint64_t> buckets; ///< histogram only
    };

    /** Point-in-time copy of every metric, ascending name order. */
    struct Snapshot
    {
        Tick when = 0;
        std::vector<SnapshotEntry> entries;
    };

    /**
     * Refresh @p snap in place (reusing entry storage when the
     * metric set is unchanged — the per-sample fast path).
     */
    void sampleInto(Snapshot &snap) const; // simlint:observer
    Snapshot snapshot() const;             // simlint:observer
    /// @}

    /**
     * Copy every metric of @p src into this registry as a stored
     * metric named prefix + name — the deterministic cluster fold:
     * domains are folded in domain-id order with "socket<d>."
     * prefixes, so the combined view is identical for any worker
     * thread count.
     */
    void fold(const Registry &src, const std::string &prefix);

    /// @name Checkpointable state (stored metrics only — supplier-
    /// backed views restore through their owning component).
    /// @{
    struct HistogramState
    {
        std::vector<std::uint64_t> buckets;
        std::uint64_t count = 0;
        double sum = 0.0;
    };

    struct State
    {
        std::vector<std::pair<std::string, std::uint64_t>> counters;
        std::vector<std::pair<std::string, double>> gauges;
        std::vector<std::pair<std::string, HistogramState>>
            histograms;
    };

    State saveState() const;
    void restoreState(const State &st);
    /// @}

  private:
    /** The Sampler locks direct metric references at first sample. */
    friend class Sampler;

    struct Metric
    {
        Kind kind = Kind::Counter;
        std::string help;
        Counter ctr;
        Gauge gau;
        Histogram hist;
    };

    Metric &add(const std::string &name, Kind kind,
                const std::string &help);

    // Node-based ordered map: references stay valid for the life of
    // the registry and iteration is ascending-name deterministic.
    std::map<std::string, Metric> metrics;
    std::map<std::string, unsigned> scopes;

    /** Values restored before their metric registered (fork order). */
    std::map<std::string, std::uint64_t> pendingCounters;
    std::map<std::string, double> pendingGauges;
    std::map<std::string, HistogramState> pendingHistograms;
};

/// @name Export knobs (read once per query; host-only).
/// DSASIM_STATS: unset/""/"0" disables the platform sampler; "1"
/// enables with the default file prefix "dsasim-stats-"; any other
/// value is used as the output file prefix verbatim.
/// DSASIM_STATS_PERIOD: sampling period in nanoseconds (default
/// 1000 = 1 us).
/// @{
bool samplingEnabled();
std::string exportPrefix();
Tick samplePeriodTicks();
/// @}

/// @name Exporters (pure observers over recorded snapshots).
/// @{
/** "dsa0.eng1.bytes_read" -> "dsasim_dsa0_eng1_bytes_read". */
std::string prometheusName(const std::string &name);

/** Prometheus text exposition format (HELP/TYPE + samples). */
void writePrometheus(const Registry::Snapshot &snap,
                     std::FILE *out); // simlint:observer

/**
 * Validate Prometheus text-exposition output: every sample preceded
 * by its HELP/TYPE pair, histogram bucket counts cumulative, counter
 * values non-negative. Returns true when valid; otherwise fills
 * @p error.
 */
bool validatePrometheus(const std::string &text, std::string *error);
/// @}

} // namespace stats

class Simulation;

namespace stats
{

/**
 * Deterministic registry poller. Installs a non-event sample hook on
 * the Simulation (Simulation::setSampleHook): the event kernel fires
 * the hook on the first event dispatch at-or-after each period
 * boundary, consuming no sequence numbers and mixing nothing into
 * the stream hash, so sampling at any period — or not at all —
 * leaves fingerprints bit-identical.
 *
 * The per-sample path is built for the hot loop: at the first sample
 * the column set is locked with direct references into the
 * registry's node-based storage (stable for the registry's
 * lifetime), and each sample reads those metrics straight into a row
 * — no name lookups, no snapshot rebuild. When the recording reaches
 * maxRows, every second row is dropped and the period doubles
 * (Simulation::setSamplePeriod — an observer knob), so memory stays
 * bounded on arbitrarily long runs while the series keeps uniform
 * spacing; the surviving ticks are a function of simulated time
 * only, so identical runs decimate identically.
 *
 * The Prometheus snapshot is part of the recording: it refreshes
 * inside sample() — every sample for the first snapRefresh rows,
 * then every snapRefresh-th — and the exporters render that
 * recording, never the live registry. Supplier-backed metrics whose
 * owners die after the run (serving tenants, admission policies,
 * cluster ports) therefore never dangle at export time; the
 * invariant components must hold is only that suppliers outlive the
 * last event dispatch.
 */
class Sampler
{
  public:
    /** Row cap; reaching it halves the recording, doubles period. */
    static constexpr std::size_t maxRows = 1 << 16;
    /** Snapshot refresh cadence, in samples (see class comment). */
    static constexpr std::size_t snapRefresh = 16;

    Sampler(Simulation &s, Tick period); // installs the hook
    ~Sampler();                          // clears the hook
    Sampler(const Sampler &) = delete;
    Sampler &operator=(const Sampler &) = delete;

    /** One observation of every registered metric. */
    void sample(); // simlint:observer

    std::size_t sampleCount() const { return rows.size(); }
    /** Current cadence (grows on decimation). */
    Tick period() const { return tickPeriod; }

    /** Last recorded snapshot (≤ snapRefresh samples stale). */
    const Registry::Snapshot &lastSnapshot() const // simlint:observer
    {
        return snap;
    }

    /**
     * Per-run time series: one column per metric present at the
     * first sample (late registrations are noted once on stderr and
     * skipped — columns are locked so every row parses), one row per
     * sample. Returns false on I/O failure.
     */
    bool writeCsv(const std::string &path) const;

    /** Recorded snapshot in Prometheus text-exposition format. */
    bool writePrometheusFile(const std::string &path) const;

  private:
    struct Row
    {
        Tick when = 0;
        std::vector<double> values;
    };

    /**
     * Locked at the first sample; histograms expand to 4 columns.
     * The metric pointers alias the registry's node-based storage —
     * valid as long as the registry (metrics are never removed).
     */
    struct Column
    {
        std::string name;
        Registry::Kind kind = Registry::Kind::Counter;
        const Counter *ctr = nullptr;
        const Gauge *gau = nullptr;
        const Histogram *hist = nullptr;
    };

    void lockColumns();
    void decimate(); // simlint:observer

    Simulation &sim;
    Tick tickPeriod;
    Registry::Snapshot snap;
    std::vector<Column> columns;
    std::vector<Row> rows;
    std::size_t valuesPerRow = 0;
    std::size_t lockedMetricCount = 0;
    std::size_t samplesSinceSnap = 0;
    bool warnedNewMetrics = false;
};

} // namespace stats

} // namespace dsasim

#endif // DSASIM_SIM_STATS_HH
