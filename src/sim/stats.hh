/**
 * @file
 * Measurement helpers: scalar counters, sample histograms with exact
 * percentiles, and time series for occupancy-style plots.
 */

#ifndef DSASIM_SIM_STATS_HH
#define DSASIM_SIM_STATS_HH

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "sim/ticks.hh"

namespace dsasim
{

/**
 * Collects samples and answers count/mean/min/max/percentile queries.
 * Samples are stored exactly up to a cap (default 4M — enough for the
 * paper's p99.999 tail-latency plots), then reservoir-sampled so the
 * percentile estimates stay unbiased for long runs.
 */
class Histogram
{
  public:
    explicit Histogram(std::size_t max_samples = 1 << 22)
        : cap(max_samples)
    {}

    void
    add(double v)
    {
        ++n;
        total += v;
        minV = std::min(minV, v);
        maxV = std::max(maxV, v);
        if (samples.size() < cap) {
            samples.push_back(v);
        } else {
            // Vitter's algorithm R; cheap xorshift is adequate here.
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            std::uint64_t idx = seed % n;
            if (idx < cap)
                samples[idx] = v;
        }
        sorted = false;
    }

    std::uint64_t count() const { return n; }
    double sum() const { return total; }
    double mean() const { return n ? total / static_cast<double>(n) : 0.0; }
    double min() const { return n ? minV : 0.0; }
    double max() const { return n ? maxV : 0.0; }

    /** Exact (or reservoir-estimated) percentile, p in [0, 100]. */
    double
    percentile(double p)
    {
        if (samples.empty())
            return 0.0;
        if (!sorted) {
            std::sort(samples.begin(), samples.end());
            sorted = true;
        }
        if (p <= 0.0)
            return samples.front();
        if (p >= 100.0)
            return samples.back();
        double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
        std::size_t lo = static_cast<std::size_t>(rank);
        double frac = rank - static_cast<double>(lo);
        if (lo + 1 >= samples.size())
            return samples.back();
        return samples[lo] * (1.0 - frac) + samples[lo + 1] * frac;
    }

    /** Fold another histogram's samples into this one. */
    void
    merge(const Histogram &other)
    {
        double retained = 0.0;
        for (double v : other.samples) {
            add(v);
            retained += v;
        }
        // add() only saw the retained samples; restore the exact
        // count/sum (reservoir-dropped samples included) and bounds.
        n += other.n - other.samples.size();
        total += other.total - retained;
        if (other.n) {
            minV = std::min(minV, other.minV);
            maxV = std::max(maxV, other.maxV);
        }
    }

    void
    reset()
    {
        samples.clear();
        sorted = false;
        n = 0;
        total = 0.0;
        minV = std::numeric_limits<double>::infinity();
        maxV = -std::numeric_limits<double>::infinity();
    }

  private:
    std::size_t cap;
    std::vector<double> samples;
    bool sorted = false;
    std::uint64_t n = 0;
    double total = 0.0;
    double minV = std::numeric_limits<double>::infinity();
    double maxV = -std::numeric_limits<double>::infinity();
    std::uint64_t seed = 0x9e3779b97f4a7c15ULL;
};

/**
 * A (tick, value) series, e.g. per-core LLC occupancy over time for
 * the Fig. 12 reproduction.
 */
class TimeSeries
{
  public:
    struct Point
    {
        Tick when;
        double value;
    };

    void add(Tick when, double value) { points.push_back({when, value}); }
    const std::vector<Point> &data() const { return points; }
    std::size_t size() const { return points.size(); }
    void clear() { points.clear(); }

  private:
    std::vector<Point> points;
};

/**
 * Tracks how an agent's cycles split across activity classes —
 * used for the UMWAIT cycle accounting (Fig. 11) and the datacenter
 * tax style breakdowns.
 */
class CycleAccount
{
  public:
    void
    charge(const std::string &bucket, Tick t)
    {
        for (auto &e : entries) {
            if (e.name == bucket) {
                e.ticks += t;
                return;
            }
        }
        entries.push_back({bucket, t});
    }

    Tick
    bucket(const std::string &name) const
    {
        for (const auto &e : entries)
            if (e.name == name)
                return e.ticks;
        return 0;
    }

    Tick
    totalTicks() const
    {
        Tick t = 0;
        for (const auto &e : entries)
            t += e.ticks;
        return t;
    }

    double
    fraction(const std::string &name) const
    {
        Tick tot = totalTicks();
        if (tot == 0)
            return 0.0;
        return static_cast<double>(bucket(name)) / static_cast<double>(tot);
    }

    void clear() { entries.clear(); }

  private:
    struct Entry
    {
        std::string name;
        Tick ticks = 0;
    };
    std::vector<Entry> entries;
};

} // namespace dsasim

#endif // DSASIM_SIM_STATS_HH
