/**
 * @file
 * Coroutine synchronization primitives for the simulation kernel.
 *
 *  - Trigger: one-shot broadcast event (completion records, joins).
 *  - Latch: countdown latch; fires once N completions arrive.
 *  - Semaphore: counting semaphore (queue credits, WQ slots).
 *  - Mailbox<T>: FIFO channel with suspending get() (descriptor
 *    hand-off between work queues and processing engines).
 *
 * All wake-ups are scheduled on the event queue at the current tick
 * rather than resumed inline, so firing a primitive never recurses
 * into the waiter and same-tick ordering stays FIFO-deterministic.
 */

#ifndef DSASIM_SIM_SYNC_HH
#define DSASIM_SIM_SYNC_HH

#include <coroutine>
#include <cstdint>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace dsasim
{

/**
 * A one-shot broadcast event. wait() suspends until fire() is called;
 * waiting on an already-fired trigger completes immediately.
 */
class Trigger
{
  public:
    explicit Trigger(Simulation &s) : sim(s) {}
    Trigger(const Trigger &) = delete;
    Trigger &operator=(const Trigger &) = delete;

    bool fired() const { return hasFired; }

    /** Fire the trigger, waking all current waiters at this tick. */
    void
    fire()
    {
        if (hasFired)
            return;
        hasFired = true;
        for (auto h : waiters)
            sim.resumeAt(sim.now(), h);
        waiters.clear();
    }

    /** Re-arm a fired trigger (no waiters may be pending). */
    void
    reset()
    {
        panic_if(!waiters.empty(), "Trigger::reset() with pending waiters");
        hasFired = false;
    }

    auto
    wait()
    {
        struct Awaiter
        {
            Trigger &t;
            bool await_ready() const { return t.hasFired; }
            void
            await_suspend(std::coroutine_handle<> h)
            {
                t.waiters.push_back(h);
            }
            void await_resume() const {}
        };
        return Awaiter{*this};
    }

  private:
    Simulation &sim;
    bool hasFired = false;
    std::vector<std::coroutine_handle<>> waiters;
};

/**
 * Countdown latch: arrive() must be called @p count times before
 * wait() completes. Used to join fan-out work (e.g., a batch of
 * descriptors, parallel worker tasks).
 */
class Latch
{
  public:
    Latch(Simulation &s, std::uint64_t count)
        : trig(s), remaining(count)
    {
        if (remaining == 0)
            trig.fire();
    }

    void
    arrive()
    {
        panic_if(remaining == 0, "Latch::arrive() past zero");
        if (--remaining == 0)
            trig.fire();
    }

    auto wait() { return trig.wait(); }
    bool done() const { return trig.fired(); }
    std::uint64_t pending() const { return remaining; }

  private:
    Trigger trig;
    std::uint64_t remaining;
};

/**
 * Counting semaphore with FIFO-fair suspending acquire().
 */
class Semaphore
{
  public:
    Semaphore(Simulation &s, std::uint64_t initial)
        : sim(s), count(initial)
    {}
    Semaphore(const Semaphore &) = delete;
    Semaphore &operator=(const Semaphore &) = delete;

    std::uint64_t available() const { return count; }
    std::uint64_t waitersPending() const { return waiters.size(); }

    bool
    tryAcquire()
    {
        // Respect FIFO fairness: never jump the queue.
        if (count > 0 && waiters.empty()) {
            --count;
            return true;
        }
        return false;
    }

    void
    release()
    {
        if (!waiters.empty()) {
            auto h = waiters.front();
            waiters.pop_front();
            // The credit transfers directly to the woken waiter.
            sim.resumeAt(sim.now(), h);
        } else {
            ++count;
        }
    }

    auto
    acquire()
    {
        struct Awaiter
        {
            Semaphore &s;
            bool
            await_ready()
            {
                if (s.count > 0 && s.waiters.empty()) {
                    --s.count;
                    return true;
                }
                return false;
            }
            void
            await_suspend(std::coroutine_handle<> h)
            {
                s.waiters.push_back(h);
            }
            void await_resume() const {}
        };
        return Awaiter{*this};
    }

  private:
    Simulation &sim;
    std::uint64_t count;
    std::deque<std::coroutine_handle<>> waiters;
};

/**
 * FIFO channel. put() never blocks; get() suspends until an item is
 * available. Items are handed directly to waiters, so a woken
 * consumer is guaranteed its element.
 */
template <typename T>
class Mailbox
{
  public:
    explicit Mailbox(Simulation &s) : sim(s) {}
    Mailbox(const Mailbox &) = delete;
    Mailbox &operator=(const Mailbox &) = delete;

    std::size_t size() const { return items.size(); }
    bool empty() const { return items.empty(); }

    void
    put(T v)
    {
        if (!waiters.empty()) {
            GetAwaiter *w = waiters.front();
            waiters.pop_front();
            w->value.emplace(std::move(v));
            sim.resumeAt(sim.now(), w->handle);
        } else {
            items.push_back(std::move(v));
        }
    }

    std::optional<T>
    tryGet()
    {
        if (items.empty())
            return std::nullopt;
        T v = std::move(items.front());
        items.pop_front();
        return v;
    }

    auto
    get()
    {
        return GetAwaiter{*this};
    }

  private:
    struct GetAwaiter
    {
        Mailbox &mb;
        std::optional<T> value{};
        std::coroutine_handle<> handle = nullptr;

        bool
        await_ready()
        {
            if (!mb.items.empty() && mb.waiters.empty()) {
                value.emplace(std::move(mb.items.front()));
                mb.items.pop_front();
                return true;
            }
            return false;
        }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            handle = h;
            mb.waiters.push_back(this);
        }

        T await_resume() { return std::move(*value); }
    };

    Simulation &sim;
    std::deque<T> items;
    std::deque<GetAwaiter *> waiters;
};

} // namespace dsasim

#endif // DSASIM_SIM_SYNC_HH
