/**
 * @file
 * SimTask: an eager, detached coroutine used to model concurrent
 * activities (cores, processing engines, workload threads).
 *
 * A function returning SimTask starts running as soon as it is
 * called and runs until its first `co_await`. When it finishes, the
 * coroutine frame self-destructs. Join/completion is signalled
 * explicitly through sync primitives (Trigger/Latch), which keeps the
 * ownership story trivial: nothing ever holds a dangling handle.
 */

#ifndef DSASIM_SIM_TASK_HH
#define DSASIM_SIM_TASK_HH

#include <coroutine>
#include <exception>

#include "sim/logging.hh"

namespace dsasim
{

struct SimTask
{
    struct promise_type
    {
        SimTask get_return_object() { return {}; }
        std::suspend_never initial_suspend() noexcept { return {}; }
        std::suspend_never final_suspend() noexcept { return {}; }
        void return_void() {}

        void
        unhandled_exception()
        {
            // Model code must not throw across a simulated context
            // switch; an escaped exception is a simulator bug.
            try {
                std::rethrow_exception(std::current_exception());
            } catch (const std::exception &e) {
                panic("unhandled exception in SimTask: %s", e.what());
            } catch (...) {
                panic("unhandled non-std exception in SimTask");
            }
        }
    };
};

/**
 * CoTask: an awaitable child coroutine. Unlike SimTask it starts
 * lazily and resumes its awaiter on completion (symmetric transfer),
 * so a long-running SimTask loop can factor work into sub-coroutines:
 *
 *   CoTask step();
 *   SimTask loop() { for (;;) co_await step(); }
 */
struct CoTask
{
    struct promise_type
    {
        std::coroutine_handle<> continuation;

        CoTask
        get_return_object()
        {
            return CoTask{
                std::coroutine_handle<promise_type>::from_promise(
                    *this)};
        }

        std::suspend_always initial_suspend() noexcept { return {}; }

        struct FinalAwaiter
        {
            bool await_ready() const noexcept { return false; }

            std::coroutine_handle<>
            await_suspend(
                std::coroutine_handle<promise_type> h) noexcept
            {
                auto cont = h.promise().continuation;
                return cont ? cont : std::noop_coroutine();
            }

            void await_resume() const noexcept {}
        };

        FinalAwaiter final_suspend() noexcept { return {}; }
        void return_void() {}

        void
        unhandled_exception()
        {
            try {
                std::rethrow_exception(std::current_exception());
            } catch (const std::exception &e) {
                panic("unhandled exception in CoTask: %s", e.what());
            } catch (...) {
                panic("unhandled non-std exception in CoTask");
            }
        }
    };

    explicit CoTask(std::coroutine_handle<promise_type> handle)
        : h(handle)
    {}

    CoTask(CoTask &&other) noexcept : h(other.h) { other.h = nullptr; }
    CoTask(const CoTask &) = delete;
    CoTask &operator=(const CoTask &) = delete;
    CoTask &operator=(CoTask &&) = delete;

    ~CoTask()
    {
        if (h)
            h.destroy();
    }

    bool await_ready() const noexcept { return false; }

    std::coroutine_handle<>
    await_suspend(std::coroutine_handle<> awaiter) noexcept
    {
        h.promise().continuation = awaiter;
        return h;
    }

    void await_resume() const noexcept {}

  private:
    std::coroutine_handle<promise_type> h;
};

} // namespace dsasim

#endif // DSASIM_SIM_TASK_HH
