/**
 * @file
 * Simulated time base for dsasim.
 *
 * All simulated time is expressed in integer picoseconds (Tick).
 * Picosecond resolution keeps sub-nanosecond quantities (e.g., one
 * cache line at 30 GB/s is ~2.13 ns) exact enough for bandwidth
 * accounting while a 64-bit tick counter still covers ~200 days of
 * simulated time.
 */

#ifndef DSASIM_SIM_TICKS_HH
#define DSASIM_SIM_TICKS_HH

#include <cstdint>

namespace dsasim
{

/** Simulated time, in picoseconds. */
using Tick = std::uint64_t;

/** The maximum representable tick; used as "never". */
constexpr Tick maxTick = ~Tick(0);

/** Ticks per common time unit. */
constexpr Tick ticksPerNs = 1000;
constexpr Tick ticksPerUs = 1000 * ticksPerNs;
constexpr Tick ticksPerMs = 1000 * ticksPerUs;
constexpr Tick ticksPerSec = 1000 * ticksPerMs;

/** Convert a (possibly fractional) nanosecond count to ticks. */
constexpr Tick
fromNs(double ns)
{
    return static_cast<Tick>(ns * static_cast<double>(ticksPerNs) + 0.5);
}

/** Convert a microsecond count to ticks. */
constexpr Tick
fromUs(double us)
{
    return static_cast<Tick>(us * static_cast<double>(ticksPerUs) + 0.5);
}

/** Convert a millisecond count to ticks. */
constexpr Tick
fromMs(double ms)
{
    return static_cast<Tick>(ms * static_cast<double>(ticksPerMs) + 0.5);
}

/** Convert a second count to ticks. */
constexpr Tick
fromSec(double s)
{
    return static_cast<Tick>(s * static_cast<double>(ticksPerSec) + 0.5);
}

/** Convert ticks to fractional nanoseconds. */
constexpr double
toNs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(ticksPerNs);
}

/** Convert ticks to fractional microseconds. */
constexpr double
toUs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(ticksPerUs);
}

/** Convert ticks to fractional seconds. */
constexpr double
toSec(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(ticksPerSec);
}

/**
 * Time to move @p bytes at a rate of @p gbytes_per_sec (decimal GB/s,
 * i.e., 1e9 bytes per second), as used throughout the paper's plots.
 */
constexpr Tick
transferTime(std::uint64_t bytes, double gbytes_per_sec)
{
    // bytes / (GB/s) = ns; scale to ticks.
    return fromNs(static_cast<double>(bytes) / gbytes_per_sec);
}

/**
 * Achieved decimal GB/s for @p bytes moved in @p elapsed ticks.
 * Returns 0 for a zero-length interval to keep callers branch-free.
 */
constexpr double
achievedGBps(std::uint64_t bytes, Tick elapsed)
{
    if (elapsed == 0)
        return 0.0;
    return static_cast<double>(bytes) / toNs(elapsed);
}

} // namespace dsasim

#endif // DSASIM_SIM_TICKS_HH
