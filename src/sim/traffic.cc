#include "sim/traffic.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "sim/logging.hh"

namespace dsasim
{

double
CounterRng::expAt(std::uint64_t k) const
{
    // uniformAt() < 1, so the argument of log stays positive and the
    // variate finite.
    return -std::log(1.0 - uniformAt(k));
}

const char *
arrivalPatternName(ArrivalPattern p)
{
    switch (p) {
      case ArrivalPattern::Poisson: return "poisson";
      case ArrivalPattern::Bursty: return "bursty";
      case ArrivalPattern::Diurnal: return "diurnal";
    }
    return "?";
}

namespace
{

ArrivalPattern
parsePattern(const std::string &s)
{
    for (ArrivalPattern p :
         {ArrivalPattern::Poisson, ArrivalPattern::Bursty,
          ArrivalPattern::Diurnal}) {
        if (s == arrivalPatternName(p))
            return p;
    }
    fatal("unknown arrival pattern '%s' (poisson|bursty|diurnal)",
          s.c_str());
}

} // namespace

ArrivalMix
ArrivalMix::parse(const std::string &spec)
{
    ArrivalMix mix;
    std::istringstream classStream(spec);
    std::string classSpec;
    while (std::getline(classStream, classSpec, ';')) {
        if (classSpec.empty())
            continue;
        ArrivalClass c;
        std::size_t colon = classSpec.find(':');
        c.pattern = parsePattern(classSpec.substr(0, colon));
        if (colon != std::string::npos) {
            std::istringstream kvStream(classSpec.substr(colon + 1));
            std::string kv;
            while (std::getline(kvStream, kv, ',')) {
                std::size_t eq = kv.find('=');
                fatal_if(eq == std::string::npos,
                         "arrival spec entry '%s' is not key=value",
                         kv.c_str());
                std::string key = kv.substr(0, eq);
                std::string val = kv.substr(eq + 1);
                if (key == "rate") {
                    c.ratePerSec = std::stod(val);
                } else if (key == "weight") {
                    c.weight = static_cast<unsigned>(
                        std::stoul(val));
                } else if (key == "bytes") {
                    c.payloadBytes = std::stoull(val);
                } else if (key == "factor") {
                    c.burstFactor = std::stod(val);
                } else if (key == "period") {
                    unsigned n =
                        static_cast<unsigned>(std::stoul(val));
                    c.burstPeriod = n;
                    c.diurnalPeriod = n;
                } else if (key == "duty") {
                    c.burstDuty = std::stod(val);
                } else if (key == "amp") {
                    c.diurnalAmplitude = std::stod(val);
                } else {
                    fatal("unknown arrival spec key '%s'",
                          key.c_str());
                }
            }
        }
        fatal_if(c.ratePerSec <= 0.0,
                 "arrival class rate must be positive");
        fatal_if(c.weight == 0, "arrival class weight must be >= 1");
        fatal_if(c.burstPeriod == 0 || c.diurnalPeriod == 0,
                 "arrival class period must be >= 1");
        fatal_if(c.burstDuty <= 0.0 || c.burstDuty >= 1.0,
                 "arrival class duty must be in (0,1)");
        mix.classes.push_back(c);
        mix.totalWeight += c.weight;
    }
    fatal_if(mix.classes.empty(),
             "arrival mix spec '%s' defines no classes",
             spec.c_str());
    return mix;
}

ArrivalMix
ArrivalMix::fromEnv(const std::string &fallback_spec)
{
    const char *spec = std::getenv("DSASIM_ARRIVALS");
    return parse(spec && *spec ? spec : fallback_spec);
}

std::size_t
ArrivalMix::classIndexFor(std::uint64_t tenant) const
{
    // Weighted round-robin on the tenant index: class shares follow
    // the weights exactly and never depend on construction order.
    std::uint64_t slot = tenant % totalWeight;
    for (std::size_t i = 0; i < classes.size(); ++i) {
        if (slot < classes[i].weight)
            return i;
        slot -= classes[i].weight;
    }
    return classes.size() - 1;
}

const ArrivalClass &
ArrivalMix::classFor(std::uint64_t tenant) const
{
    return classes[classIndexFor(tenant)];
}

Tick
ArrivalStream::interarrival(std::uint64_t k) const
{
    double scale = 1.0;
    switch (cls.pattern) {
      case ArrivalPattern::Poisson:
        break;
      case ArrivalPattern::Bursty: {
        // On/off cycle indexed by arrival count. The off-phase rate
        // is chosen so the cycle's mean rate stays ratePerSec; when
        // the on-phase alone exceeds the mean the off scale clamps
        // at a floor and the class runs slightly hot (documented in
        // EXPERIMENTS.md).
        const double on = static_cast<double>(cls.burstPeriod) *
                          cls.burstDuty;
        const bool inBurst =
            static_cast<double>(k % cls.burstPeriod) < on;
        const double offScale = std::max(
            0.05, (1.0 - cls.burstDuty * cls.burstFactor) /
                      (1.0 - cls.burstDuty));
        scale = inBurst ? cls.burstFactor : offScale;
        break;
      }
      case ArrivalPattern::Diurnal: {
        constexpr double kTwoPi = 6.283185307179586;
        const double phase =
            static_cast<double>(k % cls.diurnalPeriod) /
            static_cast<double>(cls.diurnalPeriod);
        scale = std::max(
            0.05, 1.0 + cls.diurnalAmplitude * std::sin(kTwoPi *
                                                        phase));
        break;
      }
    }
    const double meanTicks =
        static_cast<double>(ticksPerSec) / (cls.ratePerSec * scale);
    const double gap = meanTicks * rng.expAt(k);
    return std::max<Tick>(1, static_cast<Tick>(gap));
}

unsigned
tenantCountFromEnv(unsigned fallback)
{
    const char *s = std::getenv("DSASIM_TENANTS");
    if (!s || !*s)
        return fallback;
    unsigned long n = std::strtoul(s, nullptr, 0);
    return n ? static_cast<unsigned>(n) : fallback;
}

} // namespace dsasim
