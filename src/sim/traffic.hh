/**
 * @file
 * Deterministic open-loop traffic generation for multi-tenant
 * serving scenarios.
 *
 * The serving roadmap item needs thousands of tenants submitting
 * independently across partitioned sockets, with the N=1 and N=k
 * `DSASIM_PARTITIONS` event streams bit-identical even mid-overload.
 * A stateful generator (sim/random.hh's Rng) cannot provide that:
 * its draw order would depend on how tenant coroutines interleave.
 * Arrival streams here are therefore *counter-based*: the k-th
 * variate of tenant t is a pure function of (seed, t, k), so any
 * execution order — or partitioning — observes the same stream.
 * simlint's `tenant-rng` rule enforces the discipline for this
 * translation unit.
 *
 * Arrival-mix grammar (DSASIM_ARRIVALS), mirroring DSASIM_FAULTS:
 *
 *   pattern[:key=value[,key=value]...][;pattern:...]
 *
 *   patterns: poisson | bursty | diurnal
 *   keys:     rate=<arrivals/sec>   mean arrival rate (all patterns)
 *             weight=<N>            share of tenants on this class
 *             bytes=<N>             mean request payload size
 *             factor=<F>            bursty: on-phase rate multiplier
 *             period=<N>            bursty/diurnal: arrivals per cycle
 *             duty=<0..1>           bursty: on fraction of the cycle
 *             amp=<0..1>            diurnal: rate swing fraction
 *
 * Example:
 *   DSASIM_ARRIVALS="poisson:rate=2000,weight=14;bursty:rate=500,
 *                    factor=16,weight=2"
 */

#ifndef DSASIM_SIM_TRAFFIC_HH
#define DSASIM_SIM_TRAFFIC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/ticks.hh"

namespace dsasim
{

/**
 * Stateless counter-based random source (SplitMix64-style mixing).
 * Draw k of stream s is a pure function of (seed, s, k): there is no
 * mutable position, so concurrent readers and replays always agree.
 */
class CounterRng
{
  public:
    constexpr CounterRng(std::uint64_t seed, std::uint64_t stream)
        : base(mix(seed ^ kGolden * (stream + 1)))
    {}

    /** The k-th 64-bit draw. */
    constexpr std::uint64_t
    at(std::uint64_t k) const
    {
        return mix(base + kGolden * (k + 1));
    }

    /** The k-th draw in [0, 1). */
    constexpr double
    uniformAt(std::uint64_t k) const
    {
        return static_cast<double>(at(k) >> 11) * 0x1.0p-53;
    }

    /** The k-th draw in [0, bound) via Lemire reduction. */
    constexpr std::uint64_t
    belowAt(std::uint64_t k, std::uint64_t bound) const
    {
        using u128 = unsigned __int128;
        return static_cast<std::uint64_t>(
            (static_cast<u128>(at(k)) * bound) >> 64);
    }

    /** The k-th unit-mean exponential variate (strictly positive). */
    double expAt(std::uint64_t k) const;

  private:
    static constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;

    static constexpr std::uint64_t
    mix(std::uint64_t x)
    {
        x ^= x >> 30;
        x *= 0xbf58476d1ce4e5b9ULL;
        x ^= x >> 27;
        x *= 0x94d049bb133111ebULL;
        x ^= x >> 31;
        return x;
    }

    std::uint64_t base;
};

enum class ArrivalPattern : std::uint8_t
{
    Poisson, ///< memoryless: exponential inter-arrivals
    Bursty,  ///< on/off: on-phase rate scaled by burstFactor
    Diurnal, ///< sinusoidal rate modulation over diurnalPeriod
};

const char *arrivalPatternName(ArrivalPattern p);

/** One tenant class of the arrival mix. */
struct ArrivalClass
{
    ArrivalPattern pattern = ArrivalPattern::Poisson;
    double ratePerSec = 1000.0;  ///< mean arrivals per second
    unsigned weight = 1;         ///< share of tenants on this class
    std::uint64_t payloadBytes = 4096; ///< mean request payload

    /// @name Bursty shape (rate-preserving on/off cycle).
    /// @{
    double burstFactor = 8.0;  ///< on-phase rate multiplier
    unsigned burstPeriod = 64; ///< arrivals per on+off cycle
    double burstDuty = 0.25;   ///< on fraction of the cycle
    /// @}

    /// @name Diurnal shape.
    /// @{
    double diurnalAmplitude = 0.5; ///< rate swing fraction in [0,1]
    unsigned diurnalPeriod = 256;  ///< arrivals per "day"
    /// @}
};

/**
 * A parsed arrival mix: tenants map onto classes deterministically
 * by weighted round-robin (tenant % total-weight), so the assignment
 * is independent of construction order or partitioning.
 */
class ArrivalMix
{
  public:
    /** Parse a mix spec (see file header); malformed is fatal. */
    static ArrivalMix parse(const std::string &spec);

    /** $DSASIM_ARRIVALS, or @p fallback_spec when unset/empty. */
    static ArrivalMix fromEnv(const std::string &fallback_spec);

    const ArrivalClass &classFor(std::uint64_t tenant) const;
    std::size_t classIndexFor(std::uint64_t tenant) const;

    std::size_t classCount() const { return classes.size(); }
    const ArrivalClass &at(std::size_t i) const { return classes[i]; }

  private:
    std::vector<ArrivalClass> classes;
    unsigned totalWeight = 0;
};

/**
 * The arrival stream of one tenant: inter-arrival k is a pure
 * function of (seed, tenant, k). Offered load never adapts to
 * completions — the generator is open-loop by construction.
 */
class ArrivalStream
{
  public:
    ArrivalStream(std::uint64_t seed, std::uint64_t tenant,
                  const ArrivalClass &c)
        : rng(seed, tenant), cls(c)
    {}

    /** Ticks between arrival k-1 and arrival k (always >= 1). */
    Tick interarrival(std::uint64_t k) const;

    const ArrivalClass &arrivalClass() const { return cls; }

  private:
    CounterRng rng;
    ArrivalClass cls;
};

/** $DSASIM_TENANTS, or @p fallback when unset/empty/zero. */
unsigned tenantCountFromEnv(unsigned fallback);

} // namespace dsasim

#endif // DSASIM_SIM_TRAFFIC_HH
