// Fixture: acct-loop rule. Note-level, so the exit stays 0 even
// with a live diagnostic. Linted as if at src/apps/acct_loop.cc --
// inside src/, outside the mem/cache.* exemption.

using Addr = unsigned long long;
constexpr Addr cacheLineSize = 64;

unsigned long long
perLineWalk(Addr pa, Addr end)
{
    unsigned long long lines = 0;
    // Fires: per-line accounting walk in the for-header.
    for (Addr a = pa; a < end; a += cacheLineSize)
        ++lines;
    // Does not fire: the stride is applied in the body, not the
    // header (chunked functional copies look like this).
    for (Addr a = pa; a < end;) {
        a += cacheLineSize;
        ++lines;
    }
    // Suppressed: the sanctioned per-victim occupy() idiom.
    for (Addr a = pa; a < end;
         a += cacheLineSize) // simlint:allow(acct-loop)
        ++lines;
    return lines;
}
