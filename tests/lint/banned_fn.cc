// Fixture: banned-fn rule (applies everywhere, no --treat-as
// needed).
#include <cstdio>
#include <cstring>

void
format(char *dst, const char *src)
{
    strcpy(dst, src);
    sprintf(dst, "%s", src);
}
