# Driver for the simlint lint-cache test: copies the cross-TU
# fixture into the build tree, lints it three times with --cache —
# cold (store), warm (hit, byte-identical replay), and after a
# content change (store again).
#
#   cmake -DSIMLINT=... -DFIXTURE_DIR=... -DWORK_DIR=...
#         -P check_cache.cmake

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})
file(COPY ${FIXTURE_DIR}/xtu DESTINATION ${WORK_DIR})
set(cache ${WORK_DIR}/lint.cache)

execute_process(
    COMMAND ${SIMLINT} --root=xtu --cache=${cache} xtu
    WORKING_DIRECTORY ${WORK_DIR}
    OUTPUT_VARIABLE cold_out
    ERROR_VARIABLE cold_err
    RESULT_VARIABLE cold_status)

if(NOT cold_status EQUAL 1)
    message(FATAL_ERROR "cold run: exit ${cold_status}, expected 1")
endif()
if(NOT cold_err MATCHES "cache store")
    message(FATAL_ERROR "cold run did not store:\n${cold_err}")
endif()

execute_process(
    COMMAND ${SIMLINT} --root=xtu --cache=${cache} xtu
    WORKING_DIRECTORY ${WORK_DIR}
    OUTPUT_VARIABLE warm_out
    ERROR_VARIABLE warm_err
    RESULT_VARIABLE warm_status)

if(NOT warm_status EQUAL 1)
    message(FATAL_ERROR "warm run: exit ${warm_status}, expected 1")
endif()
if(NOT warm_err MATCHES "cache hit")
    message(FATAL_ERROR "warm run missed the cache:\n${warm_err}")
endif()
if(NOT warm_out STREQUAL cold_out)
    message(FATAL_ERROR "cache replay differs from the cold run\n"
        "--- cold ---\n${cold_out}\n--- warm ---\n${warm_out}")
endif()

# Any content change invalidates the whole-tree key.
file(APPEND ${WORK_DIR}/xtu/src/mem/page_table.hh
     "// cache-buster\n")

execute_process(
    COMMAND ${SIMLINT} --root=xtu --cache=${cache} xtu
    WORKING_DIRECTORY ${WORK_DIR}
    ERROR_VARIABLE busted_err
    OUTPUT_QUIET
    RESULT_VARIABLE busted_status)

if(NOT busted_status EQUAL 1)
    message(FATAL_ERROR
        "post-edit run: exit ${busted_status}, expected 1")
endif()
if(NOT busted_err MATCHES "cache store")
    message(FATAL_ERROR
        "edit did not invalidate the cache:\n${busted_err}")
endif()
