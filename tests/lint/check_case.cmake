# Driver for one simlint fixture test: runs simlint on INPUT (from
# the fixture directory, so paths in diagnostics are relative) and
# asserts the stdout matches EXPECTED byte-for-byte and the exit
# status matches WANT_EXIT.
#
#   cmake -DSIMLINT=... -DFIXTURE_DIR=... -DINPUT=... -DEXPECTED=...
#         [-DTREAT_AS=...] [-DROOT=...] -DWANT_EXIT=0|1|2
#         -P check_case.cmake
#
# ROOT mode (cross-TU fixtures): INPUT is a directory; --root strips
# the prefix so fixture files lint under their logical src/ paths.

if(TREAT_AS)
    set(extra_args "--treat-as=${TREAT_AS}")
elseif(ROOT)
    set(extra_args "--root=${ROOT}")
else()
    set(extra_args "")
endif()

execute_process(
    COMMAND ${SIMLINT} ${extra_args} ${INPUT}
    WORKING_DIRECTORY ${FIXTURE_DIR}
    OUTPUT_VARIABLE got
    ERROR_VARIABLE got_err
    RESULT_VARIABLE status)

file(READ ${FIXTURE_DIR}/${EXPECTED} want)

if(NOT status EQUAL WANT_EXIT)
    message(FATAL_ERROR
        "simlint ${INPUT}: exit ${status}, expected ${WANT_EXIT}\n"
        "stdout:\n${got}\nstderr:\n${got_err}")
endif()
if(NOT got STREQUAL want)
    message(FATAL_ERROR
        "simlint ${INPUT}: diagnostic output mismatch\n"
        "--- expected ---\n${want}\n--- got ---\n${got}")
endif()
