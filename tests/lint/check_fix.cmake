# Driver for the simlint --fix test: copies the wrong-guard fixture
# into the build tree, applies --fix, and asserts the guard rename
# leaves only the (non-mechanical) "../" include diagnostic behind.
#
#   cmake -DSIMLINT=... -DFIXTURE_DIR=... -DWORK_DIR=...
#         -P check_fix.cmake

file(MAKE_DIRECTORY ${WORK_DIR})
configure_file(${FIXTURE_DIR}/include_hygiene.hh
               ${WORK_DIR}/include_hygiene.hh COPYONLY)

execute_process(
    COMMAND ${SIMLINT} --fix --treat-as=src/sim/include_hygiene.hh
            include_hygiene.hh
    WORKING_DIRECTORY ${WORK_DIR}
    OUTPUT_VARIABLE got
    RESULT_VARIABLE status)

file(READ ${WORK_DIR}/include_hygiene.hh fixed)
if(NOT fixed MATCHES "#ifndef DSASIM_SIM_INCLUDE_HYGIENE_HH")
    message(FATAL_ERROR
        "--fix did not rewrite the #ifndef guard:\n${fixed}")
endif()
if(NOT fixed MATCHES "#define DSASIM_SIM_INCLUDE_HYGIENE_HH")
    message(FATAL_ERROR
        "--fix did not rewrite the #define guard:\n${fixed}")
endif()
if(NOT fixed MATCHES "#endif // DSASIM_SIM_INCLUDE_HYGIENE_HH")
    message(FATAL_ERROR
        "--fix did not rewrite the #endif comment:\n${fixed}")
endif()
if(got MATCHES "include guard")
    message(FATAL_ERROR
        "guard diagnostic still reported after --fix:\n${got}")
endif()
if(NOT got MATCHES "parent-relative")
    message(FATAL_ERROR
        "expected the non-mechanical ../ diagnostic to remain:\n"
        "${got}")
endif()

# The cross-TU rule families have no mechanical rewrite: --fix must
# leave the file byte-identical and keep reporting.
configure_file(${FIXTURE_DIR}/domain_escape.cc
               ${WORK_DIR}/domain_escape.cc COPYONLY)
file(READ ${WORK_DIR}/domain_escape.cc before)

execute_process(
    COMMAND ${SIMLINT} --fix --treat-as=src/dsa/domain_escape.cc
            domain_escape.cc
    WORKING_DIRECTORY ${WORK_DIR}
    OUTPUT_VARIABLE got
    RESULT_VARIABLE status)

file(READ ${WORK_DIR}/domain_escape.cc after)
if(NOT before STREQUAL after)
    message(FATAL_ERROR
        "--fix rewrote a domain-escape fixture:\n${after}")
endif()
if(NOT status EQUAL 1)
    message(FATAL_ERROR
        "--fix on domain-escape: exit ${status}, expected 1")
endif()
if(NOT got MATCHES "domain-escape")
    message(FATAL_ERROR
        "domain-escape diagnostics vanished under --fix:\n${got}")
endif()
