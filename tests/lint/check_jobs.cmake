# Driver for the simlint --jobs test: parallel scanning must be a
# pure speedup — diagnostics, order and exit status identical for
# any worker count.
#
#   cmake -DSIMLINT=... -DFIXTURE_DIR=... -P check_jobs.cmake

execute_process(
    COMMAND ${SIMLINT} --root=xtu --jobs=1 xtu
    WORKING_DIRECTORY ${FIXTURE_DIR}
    OUTPUT_VARIABLE serial_out
    RESULT_VARIABLE serial_status)

execute_process(
    COMMAND ${SIMLINT} --root=xtu --jobs=4 xtu
    WORKING_DIRECTORY ${FIXTURE_DIR}
    OUTPUT_VARIABLE parallel_out
    RESULT_VARIABLE parallel_status)

if(NOT serial_status EQUAL parallel_status)
    message(FATAL_ERROR "--jobs changed the exit status: "
        "${serial_status} vs ${parallel_status}")
endif()
if(NOT serial_out STREQUAL parallel_out)
    message(FATAL_ERROR "--jobs changed the diagnostics\n"
        "--- jobs=1 ---\n${serial_out}\n"
        "--- jobs=4 ---\n${parallel_out}")
endif()
