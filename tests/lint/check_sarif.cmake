# Driver for the simlint --sarif test: lints the cross-TU fixture
# directory with --sarif and validates the emitted JSON — SARIF
# 2.1.0 envelope, driver name, and one result per text diagnostic
# (the xtu fixture produces 6).
#
#   cmake -DSIMLINT=... -DFIXTURE_DIR=... -DWORK_DIR=...
#         -P check_sarif.cmake

file(MAKE_DIRECTORY ${WORK_DIR})
set(sarif ${WORK_DIR}/out.sarif)

execute_process(
    COMMAND ${SIMLINT} --root=xtu --sarif=${sarif} xtu
    WORKING_DIRECTORY ${FIXTURE_DIR}
    OUTPUT_VARIABLE got
    RESULT_VARIABLE status)

if(NOT status EQUAL 1)
    message(FATAL_ERROR "expected exit 1 with findings, got "
                        "${status}")
endif()

file(READ ${sarif} doc)

string(JSON version GET "${doc}" version)
if(NOT version STREQUAL "2.1.0")
    message(FATAL_ERROR "SARIF version ${version}, expected 2.1.0")
endif()

string(JSON driver GET "${doc}" runs 0 tool driver name)
if(NOT driver STREQUAL "simlint")
    message(FATAL_ERROR "driver name ${driver}, expected simlint")
endif()

string(JSON nresults LENGTH "${doc}" runs 0 results)
if(NOT nresults EQUAL 6)
    message(FATAL_ERROR "${nresults} SARIF results, expected 6")
endif()

# Every result carries a ruleId, a message and a physical location.
math(EXPR last "${nresults} - 1")
foreach(i RANGE ${last})
    string(JSON rid GET "${doc}" runs 0 results ${i} ruleId)
    if(rid STREQUAL "")
        message(FATAL_ERROR "result ${i} has an empty ruleId")
    endif()
    string(JSON msg GET "${doc}" runs 0 results ${i} message text)
    if(msg STREQUAL "")
        message(FATAL_ERROR "result ${i} has an empty message")
    endif()
    string(JSON uri GET "${doc}" runs 0 results ${i} locations 0
           physicalLocation artifactLocation uri)
    if(uri STREQUAL "")
        message(FATAL_ERROR "result ${i} has an empty location uri")
    endif()
endforeach()

# The four v2 rule families all appear in the result set.
foreach(rule observer-purity domain-escape seed-flow layer-hygiene)
    if(NOT doc MATCHES "\"ruleId\": \"${rule}\"")
        message(FATAL_ERROR "rule ${rule} missing from SARIF output")
    endif()
endforeach()
