// Fixture: counter-mutation — registered stats::Counter/Gauge
// metrics change only through the typed interface (Counter::add/inc,
// Gauge::set); direct field writes bypass the registry's
// monotonicity and checkpoint contracts. Linted as if at
// src/dsa/counter_mutation.cc.

namespace dsasim
{

namespace stats
{

class Counter
{
  public:
    void add(unsigned long d) { cell += d; }
    void inc() { cell += 1; }
    unsigned long value() const { return cell; }

  private:
    unsigned long cell = 0;
};

class Gauge
{
  public:
    void set(double v) { cell = v; }
    double value() const { return cell; }

  private:
    double cell = 0.0;
};

} // namespace stats

class Engine
{
  public:
    // Constructor-init-list binding is the registration idiom and
    // never trips the rule (init lists sit outside the body range).
    Engine(stats::Counter &b, stats::Counter &o, stats::Gauge &g)
        : bytesCtr(b), opsCtr(o), depthGauge(g)
    {}

    void
    work(unsigned long n)
    {
        bytesCtr.add(n); // the typed interface: fine
        opsCtr.inc();    // fine
        depthGauge.set(static_cast<double>(n)); // fine

        bytesCtr += n;    // direct compound write
        ++opsCtr;         // direct increment
        opsCtr++;         // direct post-increment
        depthGauge = {};  // direct assignment
    }

  private:
    stats::Counter &bytesCtr;
    stats::Counter &opsCtr;
    stats::Gauge &depthGauge;
};

} // namespace dsasim
