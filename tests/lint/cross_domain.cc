// Fixture: cross-domain rule. Linted as if at src/sim/cross_domain.cc
// (the rule skips sim/partition.*, the sanctioned threading layer).
#include <atomic>
#include <mutex>
#include <thread>

// Unqualified model identifiers that happen to share a primitive's
// name stay legal: only the std::-qualified form is host threading.
struct barrier;
int latch = 0;

struct Racy
{
    std::mutex lock;
    std::atomic<int> shared{0};
    static thread_local int scratch;
};

int
spawn(Racy &r)
{
    std::thread t([&r] { r.shared.fetch_add(1); });
    std::lock_guard<std::mutex> g(r.lock);
    t.join();
    return r.shared.load() + latch;
}
