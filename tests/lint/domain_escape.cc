// Fixture: domain-escape — handles to another domain's Simulation
// may be used inline but not stored outside the partition boundary
// (sim/partition.*, mem/remote_port.*, driver/cluster.*). Linted as
// if at src/dsa/domain_escape.cc.

namespace dsasim
{

class Simulation;

class Cluster
{
  public:
    Simulation &domainSim(unsigned s);
};

class Bridge
{
  public:
    void
    attach(Cluster &cl)
    {
        // Binding a peer domain's calendar through a pointer.
        peer = &cl.domainSim(1);
    }

  private:
    Simulation *peer = nullptr; // cross-domain field off-boundary
};

} // namespace dsasim
