// Fixture: entropy rule. Linted as if at src/dsa/entropy.cc.
#include <cstdlib>
#include <random>

int
hostEntropy()
{
    std::random_device rd;
    std::mt19937 gen(rd());
    return rand() + static_cast<int>(gen());
}
