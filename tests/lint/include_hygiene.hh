// Fixture: include-hygiene rule. Linted as if at
// src/sim/include_hygiene.hh (expected guard
// DSASIM_SIM_INCLUDE_HYGIENE_HH).
#ifndef WRONG_GUARD_HH
#define WRONG_GUARD_HH

#include "../mem/types.hh"

inline int
answer()
{
    return 42;
}

#endif // WRONG_GUARD_HH
