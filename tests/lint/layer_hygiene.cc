// Fixture: layer-hygiene — the event kernel (sim/) sits below every
// model layer and must not include upward (driver/, dml/, ...).
// Linted as if at src/sim/layer_hygiene.cc.

#include "driver/platform.hh"
#include "dml/serving.hh"

namespace dsasim
{

int
touchUpperLayers()
{
    return 0;
}

} // namespace dsasim
