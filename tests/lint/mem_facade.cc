// Fixture: layer-hygiene (facade arm) — mem/ internals (cache,
// page_table, phys_mem, iommu) stay behind the mem_system /
// address_space facades outside src/mem. Linted as if at
// src/dsa/mem_facade.cc.

#include "mem/cache.hh"
#include "mem/page_table.hh"
#include "mem/mem_system.hh" // facade: fine

namespace dsasim
{

int
touchMemInternals()
{
    return 0;
}

} // namespace dsasim
