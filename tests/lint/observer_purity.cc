// Fixture: observer-purity — code reachable from a declared
// `// simlint:observer` surface must stay read-only: no non-const
// member calls on simulated components, no const_cast, no writes to
// namespace-scope state. Linted as if at src/sim/observer_purity.cc.

namespace dsasim
{

long totalSampled = 0;

class Device
{
  public:
    void bump() { ++ticks; } // non-const, no const overload
    long ticks = 0;
};

class Probe
{
  public:
    // simlint:observer
    long
    sample()
    {
        dev.bump();                    // non-const member call
        totalSampled = totalSampled + 1; // namespace-scope write
        return helper();
    }

  private:
    long
    helper()
    {
        // const_cast two hops down the observer call graph.
        long *p = const_cast<long *>(&frozen);
        return *p + dev.ticks;
    }

    Device dev;
    const long frozen = 0;
};

} // namespace dsasim
