// Fixture: raw-alloc rule. Linted as if at src/sim/raw_alloc.cc.
#include <cstdlib>
#include <new>

struct Cell
{
    Cell() = default;
    Cell(const Cell &) = delete; // deleted fn, not a deallocation
    int v = 0;
};

int
churn(void *slot)
{
    Cell *c = new Cell;            // heap allocation in the hot path
    Cell *p = ::new (slot) Cell(); // placement new stays legal
    int v = c->v + p->v;
    delete c;
    void *raw = std::malloc(16);
    std::free(raw);
    return v;
}
