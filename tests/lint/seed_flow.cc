// Fixture: seed-flow — stateful Rng must not be reachable from an
// open-loop traffic entry (`// simlint:traffic-entry`): arrival-
// driven paths stay counter-based so variates are independent of
// event interleaving. Linted as if at src/dml/seed_flow.cc.

namespace dsasim
{

class Rng
{
  public:
    explicit Rng(unsigned long seed);
    double uniform();
};

class LoadGenerator
{
  public:
    // simlint:traffic-entry
    void
    onArrival(unsigned long k)
    {
        jitter(k);
    }

  private:
    void
    jitter(unsigned long k)
    {
        // Stateful draw two hops from the arrival path.
        Rng r(k);
        scale = r.uniform();
    }

    double scale = 0.0;
};

} // namespace dsasim
