// Fixture: every rule fires here, and every instance carries a
// simlint:allow suppression — expected output is empty, exit 0.
// Linted as if at src/sim/suppressed.cc.
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <unordered_map>

// simlint:allow(layer-hygiene)
#include "driver/platform.hh"
// simlint:allow(layer-hygiene)
#include "mem/cache.hh"

// simlint:allow(volatile-sync)
volatile bool gate = false;
// simlint:allow(cross-domain)
std::atomic<int> counter{0};

long
everything(char *dst, const char *src)
{
    long t = time(nullptr); // simlint:allow(wall-clock)
    int e = rand();         // simlint:allow(entropy)
    int *p = new int(3);    // simlint:allow(raw-alloc)
    std::unordered_map<int, int> m;
    long total = 0;
    // simlint:allow(unordered-iter)
    for (const auto &kv : m)
        total += kv.second;
    strcpy(dst, src); // simlint:allow(banned-fn)
    const long cacheLineSize = 64;
    for (long a = 0; a < t;
         a += cacheLineSize) // simlint:allow(acct-loop)
        total += a;
    total += t + e + *p + counter.load();
    delete p; // simlint:allow(raw-alloc)
    return total + static_cast<long>(gate);
}

class Simulation;

class Cluster
{
  public:
    Simulation &domainSim(unsigned s);
};

namespace stats
{
class Counter
{
  public:
    void inc() { cell += 1; }

  private:
    unsigned long cell = 0;
};
} // namespace stats

class Gadget
{
  public:
    void poke() { ++n; } // non-const, no const overload
    long n = 0;
};

class CrossRules
{
  public:
    void
    attach(Cluster &cl)
    {
        peer = &cl.domainSim(0); // simlint:allow(domain-escape)
    }

    // simlint:observer
    long
    sample()
    {
        dev.poke(); // simlint:allow(observer-purity)
        return dev.n;
    }

    // simlint:traffic-entry
    void
    onArrival(unsigned long k)
    {
        Rng r{k}; // simlint:allow(seed-flow)
        (void)r;
    }

    void
    bump()
    {
        opsCtr++; // simlint:allow(counter-mutation)
    }

  private:
    struct Rng
    {
        unsigned long s;
    };
    stats::Counter &opsCtr;
    // simlint:allow(domain-escape)
    Simulation *peer = nullptr;
    Gadget dev;
};
