// Fixture: every rule fires here, and every instance carries a
// simlint:allow suppression — expected output is empty, exit 0.
// Linted as if at src/sim/suppressed.cc.
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <unordered_map>

// simlint:allow(volatile-sync)
volatile bool gate = false;
// simlint:allow(cross-domain)
std::atomic<int> counter{0};

long
everything(char *dst, const char *src)
{
    long t = time(nullptr); // simlint:allow(wall-clock)
    int e = rand();         // simlint:allow(entropy)
    int *p = new int(3);    // simlint:allow(raw-alloc)
    std::unordered_map<int, int> m;
    long total = 0;
    // simlint:allow(unordered-iter)
    for (const auto &kv : m)
        total += kv.second;
    strcpy(dst, src); // simlint:allow(banned-fn)
    const long cacheLineSize = 64;
    for (long a = 0; a < t;
         a += cacheLineSize) // simlint:allow(acct-loop)
        total += a;
    total += t + e + *p + counter.load();
    delete p; // simlint:allow(raw-alloc)
    return total + static_cast<long>(gate);
}
