// Fixture: tenant-rng rule. Linted as if at src/sim/traffic_fixture.cc.
#include "sim/random.hh"
#include "sim/traffic.hh"

double
statefulInterarrival(unsigned long long seed)
{
    // The k-th draw depends on who drew before it: banned here.
    dsasim::Rng rng(seed);
    return rng.uniform();
}

double
counterInterarrival(unsigned long long seed, unsigned long long k)
{
    // Pure function of (seed, k): the sanctioned idiom.
    dsasim::CounterRng rng(seed, 0);
    return rng.uniformAt(k);
}
