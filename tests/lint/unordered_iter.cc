// Fixture: unordered-iter rule. Linted as if at
// src/mem/unordered_iter.cc.
#include <cstdint>
#include <unordered_map>

std::uint64_t
sumAll(const std::unordered_map<int, std::uint64_t> &other)
{
    std::unordered_map<int, std::uint64_t> lines;
    std::uint64_t total = 0;
    for (const auto &kv : lines) // order is unspecified
        total += kv.second;
    for (auto it = lines.begin(); it != lines.end(); ++it)
        total += it->second;
    // Keyed lookups stay legal: find()/end() is the sentinel idiom.
    auto it = lines.find(3);
    if (it != lines.end())
        total += it->second;
    return total + other.size();
}
