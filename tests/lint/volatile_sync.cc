// Fixture: volatile-sync rule (applies everywhere).
volatile bool ready = false;

void
spin()
{
    while (!ready) {
    }
}
