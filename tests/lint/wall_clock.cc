// Fixture: wall-clock rule. Linted as if at src/sim/wall_clock.cc.
#include <chrono>
#include <ctime>

long
hostTime()
{
    auto t = std::chrono::system_clock::now();
    long s = time(nullptr);
    return s + std::chrono::steady_clock::now().time_since_epoch().count() +
           t.time_since_epoch().count();
}
