// Cross-TU fixture: the arrival path crosses three TUs before it
// touches a stateful Rng (gen.hh decl -> gen.cc body -> stats.cc).

#include "dml/gen.hh"

#include "sim/stats.hh"

namespace dsasim
{

void
OpenLoop::onArrival(unsigned long k)
{
    hub->mix(k);
}

} // namespace dsasim
