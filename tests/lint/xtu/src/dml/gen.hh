// Cross-TU fixture: the open-loop traffic entry is declared here;
// its body (gen.cc) reaches the stateful Rng in sim/stats.cc.

#ifndef DSASIM_DML_GEN_HH
#define DSASIM_DML_GEN_HH

namespace dsasim
{

class StatsHub;

class OpenLoop
{
  public:
    // simlint:traffic-entry
    void onArrival(unsigned long k);

  private:
    StatsHub *hub = nullptr;
};

} // namespace dsasim

#endif // DSASIM_DML_GEN_HH
