// Cross-TU fixture: stores the result of the marked accessor from
// widget.hh (domain-escape, both arms) and reaches through the mem/
// facade (layer-hygiene).

#include "dsa/widget.hh"

#include "mem/page_table.hh"

namespace dsasim
{

class EngineCtl
{
  public:
    void
    bind(Registry &reg)
    {
        cal = &reg.lookup(1); // stored marked-accessor result
    }

  private:
    Simulation *cal = nullptr; // cross-domain field off-boundary
};

} // namespace dsasim
