// Cross-TU fixture: defines the non-const method the sim-layer
// observer calls, and a marked cross-domain accessor whose results
// other TUs must not store.

#ifndef DSASIM_DSA_WIDGET_HH
#define DSASIM_DSA_WIDGET_HH

namespace dsasim
{

class Simulation;

struct Rng
{
    unsigned long s;
};

class Widget
{
  public:
    void tweak() { ++n; } // non-const, no const overload
    long n = 0;
};

class Registry
{
  public:
    // simlint:domain-accessor
    Simulation &lookup(unsigned id);
};

} // namespace dsasim

#endif // DSASIM_DSA_WIDGET_HH
