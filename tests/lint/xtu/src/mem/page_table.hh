// Cross-TU fixture: a mem/ internal header — legal to exist, legal
// to include from inside src/mem, flagged anywhere else.

#ifndef DSASIM_MEM_PAGE_TABLE_HH
#define DSASIM_MEM_PAGE_TABLE_HH

namespace dsasim
{

struct PageTableEntry
{
    unsigned long pfn = 0;
    bool present = false;
};

} // namespace dsasim

#endif // DSASIM_MEM_PAGE_TABLE_HH
