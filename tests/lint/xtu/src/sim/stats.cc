// Cross-TU fixture: the observer body lives here; the non-const
// method it calls is indexed from dsa/widget.hh (another TU). The
// dsa/ include is itself a layering violation (sim < dsa).

#include "sim/stats.hh"

#include "dsa/widget.hh"

namespace dsasim
{

long
StatsHub::snapshot() const
{
    dev->tweak(); // non-const, defined in another TU
    return 0;
}

void
StatsHub::mix(unsigned long k)
{
    Rng r{k}; // stateful draw, reached from dml/gen.cc
    blend = blend + static_cast<double>(r.s + k);
}

} // namespace dsasim
