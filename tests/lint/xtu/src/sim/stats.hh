// Cross-TU fixture: observer surface declared here, body in
// stats.cc, mutated component defined in dsa/widget.hh.

#ifndef DSASIM_SIM_STATS_HH
#define DSASIM_SIM_STATS_HH

namespace dsasim
{

class Widget;

class StatsHub
{
  public:
    // simlint:observer
    long snapshot() const;

    /** Stateful blend helper (called from the open-loop path). */
    void mix(unsigned long k);

  private:
    Widget *dev = nullptr;
    double blend = 0.0;
};

} // namespace dsasim

#endif // DSASIM_SIM_STATS_HH
