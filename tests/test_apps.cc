/**
 * @file
 * Integration tests for the case-study applications: data integrity
 * and ordering in the vhost path, cache-service correctness through
 * DTO, NVMe/TCP digest correctness, fabric message fidelity, and
 * X-Mem latency behavior.
 */

#include <gtest/gtest.h>

#include "apps/fabric.hh"
#include "ops/dif.hh"
#include "apps/minicache.hh"
#include "apps/nvmetcp.hh"
#include "apps/vhost.hh"
#include "apps/xmem.hh"
#include "tests/util.hh"

namespace dsasim
{
namespace
{

using test::Bench;

struct AppBench : Bench
{
    explicit AppBench(unsigned engines = 2)
    {
        Platform::configureBasic(plat.dsa(0), 32, engines);
        dml::ExecutorConfig ec;
        ec.path = dml::Path::Hardware;
        exec = std::make_unique<dml::Executor>(
            sim, plat.mem(), plat.kernels(),
            std::vector<DsaDevice *>{&plat.dsa(0)}, ec);
    }
    std::unique_ptr<dml::Executor> exec;
};

TEST(Vhost, CpuPathDeliversInOrder)
{
    AppBench b;
    apps::Virtqueue vq(256);
    apps::VhostSwitch::Config cfg;
    cfg.useDsa = false;
    cfg.packetBytes = 512;
    apps::VhostSwitch host(b.plat, *b.as, b.plat.core(0), nullptr,
                           vq, cfg);
    apps::GuestDriver guest(b.plat, *b.as, b.plat.core(1), vq, 2048,
                            128);
    host.run(fromUs(200));
    guest.run(fromUs(200));
    b.sim.runUntil(fromUs(200));
    EXPECT_GT(guest.received(), 500u);
    EXPECT_EQ(guest.orderViolations(), 0u);
    EXPECT_EQ(guest.payloadErrors(), 0u);
}

TEST(Vhost, DsaPipelineKeepsOrderAndData)
{
    AppBench b;
    apps::Virtqueue vq(256);
    apps::VhostSwitch::Config cfg;
    cfg.useDsa = true;
    cfg.packetBytes = 1024;
    apps::VhostSwitch host(b.plat, *b.as, b.plat.core(0),
                           b.exec.get(), vq, cfg);
    apps::GuestDriver guest(b.plat, *b.as, b.plat.core(1), vq, 2048,
                            128);
    host.run(fromUs(300));
    guest.run(fromUs(300));
    b.sim.runUntil(fromUs(300));
    EXPECT_GT(guest.received(), 1000u);
    EXPECT_EQ(guest.orderViolations(), 0u);
    EXPECT_EQ(guest.payloadErrors(), 0u);
    // The copies really went through the device.
    EXPECT_GT(b.plat.dsa(0).descriptorsProcessed(), 30u);
}

TEST(Vhost, DsaFasterForLargePackets)
{
    double mpps[2] = {0, 0};
    for (int dsa = 0; dsa < 2; ++dsa) {
        AppBench b;
        apps::Virtqueue vq(512);
        apps::VhostSwitch::Config cfg;
        cfg.useDsa = dsa == 1;
        cfg.packetBytes = 1518;
        apps::VhostSwitch host(b.plat, *b.as, b.plat.core(0),
                               b.exec.get(), vq, cfg);
        apps::GuestDriver guest(b.plat, *b.as, b.plat.core(1), vq,
                                2048, 256);
        host.run(fromUs(400));
        guest.run(fromUs(400));
        b.sim.runUntil(fromUs(400));
        mpps[dsa] = static_cast<double>(host.packetsForwarded()) /
                    toUs(b.sim.now());
    }
    EXPECT_GT(mpps[1], mpps[0] * 1.3);
}


TEST(Vhost, DequeueDirectionVerifiesAtHost)
{
    for (bool dsa : {false, true}) {
        AppBench b;
        apps::Virtqueue vq(256);
        apps::VhostSwitch::Config cfg;
        cfg.direction = apps::VhostSwitch::Direction::Dequeue;
        cfg.useDsa = dsa;
        cfg.packetBytes = 512;
        apps::VhostSwitch host(b.plat, *b.as, b.plat.core(0),
                               b.exec.get(), vq, cfg);
        apps::GuestTxDriver guest(b.plat, *b.as, b.plat.core(1), vq,
                                  2048, 128);
        host.run(fromUs(250));
        guest.run(fromUs(250));
        b.sim.runUntil(fromUs(250));
        EXPECT_GT(host.packetsForwarded(), 500u) << "dsa=" << dsa;
        EXPECT_EQ(host.hostOrderViolations(), 0u) << "dsa=" << dsa;
        EXPECT_EQ(host.hostPayloadErrors(), 0u) << "dsa=" << dsa;
    }
}


TEST(Vhost, BidirectionalSwitchesShareOneDevice)
{
    // Enqueue and dequeue switches on separate cores, both
    // offloading to the same DSA instance — the paper's real
    // deployment shape (multiple virtqueues per device, G6).
    AppBench b;
    apps::Virtqueue rx(256), tx(256);

    apps::VhostSwitch::Config rx_cfg;
    rx_cfg.useDsa = true;
    rx_cfg.packetBytes = 1024;
    apps::VhostSwitch rx_switch(b.plat, *b.as, b.plat.core(0),
                                b.exec.get(), rx, rx_cfg);
    apps::GuestDriver rx_guest(b.plat, *b.as, b.plat.core(1), rx,
                               2048, 128);

    apps::VhostSwitch::Config tx_cfg;
    tx_cfg.direction = apps::VhostSwitch::Direction::Dequeue;
    tx_cfg.useDsa = true;
    tx_cfg.packetBytes = 1024;
    apps::VhostSwitch tx_switch(b.plat, *b.as, b.plat.core(2),
                                b.exec.get(), tx, tx_cfg);
    apps::GuestTxDriver tx_guest(b.plat, *b.as, b.plat.core(3), tx,
                                 2048, 128);

    const Tick horizon = fromUs(300);
    rx_switch.run(horizon);
    rx_guest.run(horizon);
    tx_switch.run(horizon);
    tx_guest.run(horizon);
    b.sim.runUntil(horizon);

    EXPECT_GT(rx_switch.packetsForwarded(), 800u);
    EXPECT_GT(tx_switch.packetsForwarded(), 800u);
    EXPECT_EQ(rx_guest.orderViolations(), 0u);
    EXPECT_EQ(rx_guest.payloadErrors(), 0u);
    EXPECT_EQ(tx_switch.hostOrderViolations(), 0u);
    EXPECT_EQ(tx_switch.hostPayloadErrors(), 0u);
}


TEST(Vhost, DsaLowersTailLatencyNearTheKnee)
{
    // Offered load near the CPU path's capacity for 1518B packets:
    // queueing inflates the CPU tail while DSA absorbs it (§6.4).
    double p99[2] = {0, 0};
    for (int dsa = 0; dsa < 2; ++dsa) {
        AppBench b;
        apps::Virtqueue vq(1024);
        apps::VhostSwitch::Config cfg;
        cfg.useDsa = dsa == 1;
        cfg.packetBytes = 1518;
        cfg.offeredMpps = 4.5;
        apps::VhostSwitch host(b.plat, *b.as, b.plat.core(0),
                               b.exec.get(), vq, cfg);
        apps::GuestDriver guest(b.plat, *b.as, b.plat.core(1), vq,
                                2048, 512);
        const Tick horizon = fromUs(1500);
        host.run(horizon);
        guest.run(horizon);
        b.sim.runUntil(fromUs(400)); // warm up
        host.latencyHistogram().reset();
        b.sim.runUntil(horizon);
        p99[dsa] = host.latencyHistogram().percentile(99);
        EXPECT_EQ(host.drops(), 0u);
    }
    EXPECT_LT(p99[1], p99[0] / 3);
}

TEST(MiniCache, GetReturnsWhatSetStored)
{
    AppBench b;
    Dto dto(*b.exec, b.plat.kernels());
    apps::MiniCache cache(b.plat, *b.as, dto, {});
    Addr in = b.as->alloc(64 << 10);
    Addr out = b.as->alloc(64 << 10);
    b.randomize(in, 64 << 10, 5);

    struct Drv
    {
        static SimTask
        go(AppBench &ab, apps::MiniCache &c, Addr src, Addr dst,
           bool &fin, bool &hit, std::uint64_t &len)
        {
            co_await c.set(ab.plat.core(0), 42, src, 40000);
            co_await c.get(ab.plat.core(0), 42, dst, len, hit);
            fin = true;
        }
    };
    bool fin = false, hit = false;
    std::uint64_t len = 0;
    Drv::go(b, cache, in, out, fin, hit, len);
    b.sim.run();
    ASSERT_TRUE(fin);
    EXPECT_TRUE(hit);
    EXPECT_EQ(len, 40000u);
    EXPECT_TRUE(b.as->equal(in, out, 40000));
    EXPECT_EQ(cache.itemCount(), 1u);
}

TEST(MiniCache, MissThenEvictions)
{
    AppBench b;
    Dto dto(*b.exec, b.plat.kernels());
    apps::MiniCache::Config cc;
    cc.capacityBytes = 1 << 20; // tiny: force evictions
    apps::MiniCache cache(b.plat, *b.as, dto, cc);
    Addr buf = b.as->alloc(256 << 10);

    struct Drv
    {
        static SimTask
        go(AppBench &ab, apps::MiniCache &c, Addr scratch, bool &fin)
        {
            bool hit = true;
            std::uint64_t len = 0;
            co_await c.get(ab.plat.core(0), 999, scratch, len, hit);
            EXPECT_FALSE(hit);
            for (std::uint64_t k = 0; k < 40; ++k)
                co_await c.set(ab.plat.core(0), k, scratch,
                               64 << 10);
            fin = true;
        }
    };
    bool fin = false;
    Drv::go(b, cache, buf, fin);
    b.sim.run();
    ASSERT_TRUE(fin);
    EXPECT_GT(cache.evictions(), 0u);
    EXPECT_LE(cache.bytesCached(), 1u << 20);
}

TEST(NvmeTcp, DigestsVerifyEndToEnd)
{
    for (auto mode : {apps::NvmeTcpTarget::Digest::IsaL,
                      apps::NvmeTcpTarget::Digest::Dsa}) {
        AppBench b;
        apps::NvmeTcpTarget::Config cfg;
        cfg.digest = mode;
        cfg.targetCores = 2;
        cfg.queueDepth = 32;
        cfg.ioBytes = 16 << 10;
        apps::NvmeTcpTarget target(b.plat, *b.as, b.exec.get(), cfg);
        target.run(fromUs(800));
        b.sim.run();
        EXPECT_GT(target.completedIos(), 100u);
        EXPECT_EQ(target.crcMismatches(), 0u);
    }
}

TEST(NvmeTcp, DsaDigestBeatsIsal)
{
    double iops[2] = {0, 0};
    int i = 0;
    for (auto mode : {apps::NvmeTcpTarget::Digest::IsaL,
                      apps::NvmeTcpTarget::Digest::Dsa}) {
        AppBench b;
        apps::NvmeTcpTarget::Config cfg;
        cfg.digest = mode;
        cfg.targetCores = 2;
        cfg.ioBytes = 16 << 10;
        apps::NvmeTcpTarget target(b.plat, *b.as, b.exec.get(), cfg);
        target.run(fromMs(2));
        b.sim.run();
        iops[i++] = target.iops();
    }
    EXPECT_GT(iops[1], iops[0] * 1.05);
}


TEST(NvmeTcp, WritePathProtectsWithDif)
{
    for (auto mode : {apps::NvmeTcpTarget::Digest::IsaL,
                      apps::NvmeTcpTarget::Digest::Dsa}) {
        AppBench b;
        apps::NvmeTcpTarget::Config cfg;
        cfg.kind = apps::NvmeTcpTarget::Kind::Write;
        cfg.digest = mode;
        cfg.targetCores = 2;
        cfg.queueDepth = 16;
        cfg.ioBytes = 8 << 10;
        apps::NvmeTcpTarget target(b.plat, *b.as, b.exec.get(), cfg);
        target.run(fromUs(600));
        b.sim.run();
        EXPECT_GT(target.completedIos(), 50u);

        // Every staged slot holds valid T10-DIF protected blocks.
        const std::uint64_t nblocks = cfg.ioBytes / cfg.difBlock;
        for (std::uint64_t slot = 0; slot < cfg.queueDepth; ++slot) {
            Addr prot = target.protectedPool() +
                        slot * target.protectedStride();
            std::vector<std::uint8_t> data(
                target.protectedStride());
            b.as->read(prot, data.data(), data.size());
            auto chk = difCheck(
                data.data(), cfg.difBlock, nblocks, 0,
                static_cast<std::uint32_t>(slot * nblocks));
            EXPECT_TRUE(chk.ok) << "slot " << slot;
        }
    }
}

TEST(NvmeTcp, DsaDifInsertBeatsIsalOnWrites)
{
    double iops[2] = {0, 0};
    int i = 0;
    for (auto mode : {apps::NvmeTcpTarget::Digest::IsaL,
                      apps::NvmeTcpTarget::Digest::Dsa}) {
        AppBench b;
        apps::NvmeTcpTarget::Config cfg;
        cfg.kind = apps::NvmeTcpTarget::Kind::Write;
        cfg.digest = mode;
        cfg.targetCores = 2;
        cfg.ioBytes = 16 << 10;
        apps::NvmeTcpTarget target(b.plat, *b.as, b.exec.get(), cfg);
        target.run(fromMs(2));
        b.sim.run();
        iops[i++] = target.iops();
    }
    EXPECT_GT(iops[1], iops[0] * 1.05);
}

TEST(Fabric, TransferMovesBytesBothModes)
{
    for (bool dsa : {false, true}) {
        AppBench b;
        apps::FabricChannel::Config cfg;
        cfg.useDsa = dsa;
        apps::FabricChannel ch(b.plat, *b.as, b.exec.get(),
                               b.plat.core(0), b.plat.core(1), cfg);
        const std::uint64_t n = 300 << 10; // not segment-aligned
        Addr src = b.as->alloc(n);
        Addr dst = b.as->alloc(n);
        b.randomize(src, n, 6);
        struct Drv
        {
            static SimTask
            go(apps::FabricChannel &c, Addr s, Addr d,
               std::uint64_t len, bool &fin)
            {
                co_await c.transfer(s, d, len);
                fin = true;
            }
        };
        bool fin = false;
        Drv::go(ch, src, dst, n, fin);
        b.sim.run();
        ASSERT_TRUE(fin);
        EXPECT_TRUE(b.as->equal(src, dst, n));
        EXPECT_EQ(ch.messagesSent(), 1u);
        EXPECT_EQ(ch.bytesSent(), n);
    }
}

TEST(Fabric, DsaFasterForLargeMessages)
{
    Tick elapsed[2] = {0, 0};
    for (int dsa = 0; dsa < 2; ++dsa) {
        AppBench b;
        apps::FabricChannel::Config cfg;
        cfg.useDsa = dsa == 1;
        apps::FabricChannel ch(b.plat, *b.as, b.exec.get(),
                               b.plat.core(0), b.plat.core(1), cfg);
        const std::uint64_t n = 4 << 20;
        Addr src = b.as->alloc(n);
        Addr dst = b.as->alloc(n);
        struct Drv
        {
            static SimTask
            go(Bench &bb, apps::FabricChannel &c, Addr s, Addr d,
               std::uint64_t len, Tick &el)
            {
                Tick t0 = bb.sim.now();
                co_await c.transfer(s, d, len);
                el = bb.sim.now() - t0;
            }
        };
        Drv::go(b, ch, src, dst, n, elapsed[dsa]);
        b.sim.run();
    }
    EXPECT_LT(elapsed[1], elapsed[0] / 2);
}

TEST(Fabric, AllReduceConverges)
{
    AppBench b;
    apps::RingAllReduce::Config cfg;
    cfg.channel.useDsa = true;
    apps::RingAllReduce ar(b.plat, *b.as, b.exec.get(), 4, cfg);
    struct Drv
    {
        static SimTask
        go(apps::RingAllReduce &a, bool &fin)
        {
            co_await a.run(1 << 20);
            fin = true;
        }
    };
    bool fin = false;
    Drv::go(ar, fin);
    b.sim.run();
    EXPECT_TRUE(fin);
}

TEST(XMem, LatencyTracksWorkingSet)
{
    Bench b; // 8MB LLC in the test config
    Histogram small_h, large_h;
    {
        apps::XMemProbe probe(b.plat, *b.as, b.plat.core(0),
                              1 << 20, 1);
        probe.warmAll();
        probe.run(fromUs(200), small_h);
        b.sim.run();
    }
    {
        apps::XMemProbe probe(b.plat, *b.as, b.plat.core(1),
                              64 << 20, 2);
        probe.run(b.sim.now() + fromUs(200), large_h);
        b.sim.run();
    }
    // 1MB fits the LLC (hits ~35ns); 64MB does not (~95ns+).
    EXPECT_LT(small_h.mean(), 45.0);
    EXPECT_GT(large_h.mean(), 80.0);
}

} // namespace
} // namespace dsasim
