/**
 * @file
 * Differential tests for the batched span-granular cache accounting
 * (DESIGN.md §13): the batched implementation must be
 * state-identical — per-line directory contents, LRU clock values,
 * occupancy gauges and returned aggregates — to the line-at-a-time
 * oracle kept behind `DSASIM_CACHE_ACCT=line`. Also covers the
 * closed-form per-set span geometry (set wrap, start-offset
 * corrections) and the stale-epoch victim reclaim gauge regression.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "mem/cache.hh"
#include "sim/random.hh"

namespace dsasim
{
namespace
{

using Acct = CacheModel::AcctMode;

CacheModel::Config
smallCfg(unsigned sets, unsigned ways, unsigned ddio)
{
    CacheModel::Config cfg;
    cfg.sizeBytes =
        static_cast<std::uint64_t>(sets) * ways * cacheLineSize;
    cfg.ways = ways;
    cfg.ddioWays = ddio;
    return cfg;
}

/** Closed-form lines-per-set for a span of @p n lines from set s0. */
std::uint64_t
spanLinesInSet(std::uint64_t s, std::uint64_t s0, std::uint64_t n,
               std::uint64_t sets)
{
    std::uint64_t d = (s + sets - s0) % sets;
    return n / sets + (d < n % sets ? 1 : 0);
}

/** Valid-line count per set, recovered from the sparse state. */
std::vector<std::uint64_t>
residentPerSet(const CacheModel &c)
{
    std::vector<std::uint64_t> per(c.numSets(), 0);
    for (const auto &[idx, line] : c.saveState().validLines)
        ++per[idx / c.numWays()];
    return per;
}

void
expectSameState(const CacheModel &a, const CacheModel &b)
{
    CacheModel::State sa = a.saveState();
    CacheModel::State sb = b.saveState();
    ASSERT_EQ(sa.useClock, sb.useClock);
    ASSERT_EQ(sa.validLines.size(), sb.validLines.size());
    for (std::size_t i = 0; i < sa.validLines.size(); ++i) {
        const auto &[ia, la] = sa.validLines[i];
        const auto &[ib, lb] = sb.validLines[i];
        ASSERT_EQ(ia, ib) << "way index diverged at entry " << i;
        EXPECT_EQ(la.tag, lb.tag);
        EXPECT_EQ(la.lastUse, lb.lastUse);
        EXPECT_EQ(la.owner, lb.owner);
        EXPECT_EQ(la.dirty, lb.dirty);
    }
    EXPECT_EQ(a.totalOccupancyBytes(), b.totalOccupancyBytes());
    for (int owner = 0; owner < 8; ++owner)
        EXPECT_EQ(a.occupancyBytes(owner), b.occupancyBytes(owner));
}

TEST(CacheAcct, DefaultModeIsBatched)
{
    if (std::getenv("DSASIM_CACHE_ACCT"))
        GTEST_SKIP() << "mode pinned by environment";
    CacheModel c(smallCfg(64, 4, 2));
    EXPECT_EQ(c.acctMode(), Acct::Batched);
}

// Span geometry: a contiguous span touches each set floor(n/sets) or
// ceil(n/sets) times, offset from the starting set. ways are sized so
// every touched line installs, making per-set occupancy the count.
TEST(CacheAcct, SpanSetDistributionGolden)
{
    const unsigned sets = 96, ways = 8;
    struct Case
    {
        std::uint64_t start_line;
        std::uint64_t n;
    } cases[] = {
        {0, 1},          // single line
        {5, 40},         // interior, no wrap
        {94, 5},         // wraps past the last set
        {17, 96},        // exactly one full revolution
        {90, 2 * 96 + 7} // multiple revolutions + remainder
    };
    for (const Case &tc : cases) {
        CacheModel c(smallCfg(sets, ways, 0));
        c.setAcctMode(Acct::Batched);
        Addr pa = tc.start_line * cacheLineSize;
        CacheModel::SpanResult r =
            c.fillSpan(pa, tc.n * cacheLineSize, 1);
        EXPECT_EQ(r.missBytes, tc.n * cacheLineSize);
        EXPECT_EQ(r.hitBytes, 0u);
        auto per = residentPerSet(c);
        std::uint64_t s0 = tc.start_line % sets;
        for (std::uint64_t s = 0; s < sets; ++s) {
            // Same tag never installs twice, so residency counts
            // distinct lines: exactly the closed-form touch count
            // (n <= ways * sets in every case here).
            EXPECT_EQ(per[s], spanLinesInSet(s, s0, tc.n, sets))
                << "set " << s << " start " << tc.start_line
                << " n " << tc.n;
        }
    }
}

// Unaligned spans cover [lineAlignDown(pa), lineAlignUp(pa+size)):
// partial head/tail lines count exactly once.
TEST(CacheAcct, StartOffsetCorrection)
{
    for (Acct mode : {Acct::Batched, Acct::Line}) {
        CacheModel c(smallCfg(64, 4, 2));
        c.setAcctMode(mode);
        // Bytes [100, 130) straddle lines 1 and 2.
        CacheModel::SpanResult r = c.probeSpan(100, 30);
        EXPECT_EQ(r.missBytes, 2 * cacheLineSize);
        EXPECT_EQ(r.hitBytes, 0u);
        // One byte, mid-line: exactly one line.
        r = c.fillSpan(999, 1, 0);
        EXPECT_EQ(r.missBytes, 1 * cacheLineSize);
        EXPECT_TRUE(c.probe(lineAlignDown(999)));
        // Aligned end: no phantom tail line.
        r = c.probeSpan(0, 2 * cacheLineSize);
        EXPECT_EQ(r.hitBytes + r.missBytes, 2 * cacheLineSize);
    }
}

TEST(CacheAcct, FlushSpanReportsDirtyWritebacks)
{
    for (Acct mode : {Acct::Batched, Acct::Line}) {
        CacheModel c(smallCfg(64, 4, 2));
        c.setAcctMode(mode);
        c.fillSpan(0, 10 * cacheLineSize, 1); // dirty DDIO fills
        CacheModel::SpanResult r = c.flushSpan(0, 10 * cacheLineSize);
        EXPECT_EQ(r.writebackBytes, 10 * cacheLineSize);
        EXPECT_EQ(c.totalOccupancyBytes(), 0u);
        // Second flush: nothing present, nothing owed.
        r = c.flushSpan(0, 10 * cacheLineSize);
        EXPECT_EQ(r.writebackBytes, 0u);
    }
}

TEST(CacheAcct, EvictSpanDropsDirtyLinesSilently)
{
    for (Acct mode : {Acct::Batched, Acct::Line}) {
        CacheModel c(smallCfg(64, 4, 2));
        c.setAcctMode(mode);
        c.fillSpan(0, 6 * cacheLineSize, 1);
        CacheModel::SpanResult r = c.evictSpan(0, 6 * cacheLineSize);
        // The device write updates memory itself: dropped dirty
        // copies owe no writeback (matches deviceWrite !alloc_hint).
        EXPECT_EQ(r.writebackBytes, 0u);
        EXPECT_EQ(c.totalOccupancyBytes(), 0u);
    }
}

// Satellite regression: victim()'s stale-epoch free-way reclaim must
// route through dropLine so validLines/ownerLines can never drift
// across invalidateAll epochs.
TEST(CacheAcct, StaleEpochVictimReclaimKeepsGaugesExact)
{
    for (Acct mode : {Acct::Batched, Acct::Line}) {
        CacheModel c(smallCfg(8, 4, 2));
        c.setAcctMode(mode);
        // Fill every way of every set with dirty CPU lines.
        for (unsigned s = 0; s < 8; ++s)
            for (unsigned w = 0; w < 4; ++w)
                c.cpuAccess((s + w * 8ull) * cacheLineSize, 7, true);
        ASSERT_EQ(c.totalOccupancyBytes(),
                  8 * 4 * std::uint64_t{cacheLineSize});
        c.invalidateAll();
        ASSERT_EQ(c.totalOccupancyBytes(), 0u);
        ASSERT_EQ(c.occupancyBytes(7), 0u);
        // Every install now reclaims a raw-valid stale way.
        for (unsigned s = 0; s < 8; ++s) {
            auto res = c.deviceWrite(s * cacheLineSize, 3, true);
            EXPECT_TRUE(res.allocated);
            // The stale victim is free space, not an eviction.
            EXPECT_FALSE(res.evictedDirty);
            EXPECT_FALSE(res.evictedOther);
        }
        EXPECT_EQ(c.totalOccupancyBytes(),
                  8 * std::uint64_t{cacheLineSize});
        EXPECT_EQ(c.occupancyBytes(3),
                  8 * std::uint64_t{cacheLineSize});
        EXPECT_EQ(c.occupancyBytes(7), 0u);
        // CPU path reclaims stale ways too; then real LRU evictions
        // at full occupancy keep the gauges balanced.
        for (unsigned s = 0; s < 8; ++s)
            for (unsigned w = 0; w < 6; ++w)
                c.cpuAccess((s + (w + 1) * 8ull) * cacheLineSize, 5,
                            true);
        EXPECT_EQ(c.totalOccupancyBytes(),
                  8 * 4 * std::uint64_t{cacheLineSize});
        EXPECT_EQ(c.occupancyBytes(5) + c.occupancyBytes(3),
                  c.totalOccupancyBytes());
        // Stale lines never appear in a checkpoint.
        for (const auto &[idx, line] : c.saveState().validLines)
            EXPECT_TRUE(line.valid);
    }
}

// The oracle contract: randomized span/scalar op sequences leave the
// batched and line-mode models in byte-identical states and return
// identical aggregates.
void
differentialFuzz(std::uint32_t seed, CacheModel::Config cfg)
{
    CacheModel batched(cfg), oracle(cfg);
    batched.setAcctMode(Acct::Batched);
    oracle.setAcctMode(Acct::Line);
    Rng rng(seed);
    const std::uint64_t sets = batched.numSets();
    // A PA window ~2x the cache forces conflicts and LRU churn;
    // spans up to ~3 revolutions exercise the set wrap.
    const std::uint64_t window = 2 * cfg.sizeBytes;
    const std::uint64_t max_span = 3 * sets * cacheLineSize;

    auto expectSameResult = [](const CacheModel::SpanResult &a,
                               const CacheModel::SpanResult &b) {
        EXPECT_EQ(a.hitBytes, b.hitBytes);
        EXPECT_EQ(a.missBytes, b.missBytes);
        EXPECT_EQ(a.writebackBytes, b.writebackBytes);
        EXPECT_EQ(a.lastEvictedPa, b.lastEvictedPa);
    };

    for (int op = 0; op < 4000; ++op) {
        Addr pa = rng.range(0, window);
        std::uint64_t size = rng.range(1, max_span);
        int owner = static_cast<int>(rng.range(0, 4));
        switch (rng.range(0, 10)) {
          case 0:
          case 1: {
            expectSameResult(batched.probeSpan(pa, size),
                             oracle.probeSpan(pa, size));
            break;
          }
          case 2:
          case 3: {
            expectSameResult(batched.fillSpan(pa, size, owner),
                             oracle.fillSpan(pa, size, owner));
            break;
          }
          case 4: {
            expectSameResult(batched.evictSpan(pa, size),
                             oracle.evictSpan(pa, size));
            break;
          }
          case 5: {
            expectSameResult(batched.flushSpan(pa, size),
                             oracle.flushSpan(pa, size));
            break;
          }
          case 6: {
            Addr line = lineAlignDown(pa);
            bool wr = rng.range(0, 2) == 0;
            auto ra = batched.cpuAccess(line, owner, wr);
            auto rb = oracle.cpuAccess(line, owner, wr);
            EXPECT_EQ(ra.hit, rb.hit);
            EXPECT_EQ(ra.evictedDirty, rb.evictedDirty);
            EXPECT_EQ(ra.evictedPa, rb.evictedPa);
            break;
          }
          case 7: {
            Addr line = lineAlignDown(pa);
            bool hint = rng.range(0, 2) == 0;
            auto ra = batched.deviceWrite(line, owner, hint);
            auto rb = oracle.deviceWrite(line, owner, hint);
            EXPECT_EQ(ra.hit, rb.hit);
            EXPECT_EQ(ra.evictedDirty, rb.evictedDirty);
            break;
          }
          case 8: {
            if (rng.range(0, 8) == 0) {
                batched.invalidateAll();
                oracle.invalidateAll();
            } else {
                EXPECT_EQ(batched.deviceRead(lineAlignDown(pa)).hit,
                          oracle.deviceRead(lineAlignDown(pa)).hit);
            }
            break;
          }
          case 9: {
            // Checkpoint round-trip mid-stream: masks and gauges
            // must rebuild identically.
            if (rng.range(0, 16) == 0) {
                batched.restoreState(batched.saveState());
                oracle.restoreState(oracle.saveState());
            } else {
                EXPECT_EQ(batched.probe(lineAlignDown(pa)),
                          oracle.probe(lineAlignDown(pa)));
            }
            break;
          }
        }
        if (op % 50 == 0)
            expectSameState(batched, oracle);
        if (::testing::Test::HasFailure()) {
            ADD_FAILURE() << "diverged at op " << op << " seed "
                          << seed;
            return;
        }
    }
    expectSameState(batched, oracle);
}

TEST(CacheAcct, DifferentialFuzzSprShape)
{
    // SPR-like associativity, scaled-down set count, DDIO partition.
    differentialFuzz(1, smallCfg(64, 15, 2));
}

TEST(CacheAcct, DifferentialFuzzNoDdio)
{
    // ddioWays == 0: device fills may use every way.
    differentialFuzz(2, smallCfg(96, 5, 0));
}

TEST(CacheAcct, DifferentialFuzzTinySets)
{
    // Tiny set count: nearly every span wraps multiple times.
    differentialFuzz(3, smallCfg(8, 4, 2));
}

} // namespace
} // namespace dsasim
