/**
 * @file
 * Calibration regression guards: the paper's headline quantitative
 * anchors, expressed as tests so that future model changes cannot
 * silently break the reproduced shapes.
 *
 *  - sync offload break-even vs one core between 2 KB and 16 KB
 *  - async offload break-even between 128 B and 1 KB
 *  - single-PE streaming saturates at the ~30 GB/s fabric limit
 *  - UMWAIT holds the majority of cycles from 4 KB up (Fig. 11)
 *  - CXL writes are slower than CXL reads (Fig. 6b)
 *  - remote-socket sync latency exceeds local by about one UPI hop
 */

#include <gtest/gtest.h>

#include "tests/util.hh"

namespace dsasim
{
namespace
{

using test::Bench;

struct CalBench : Bench
{
    CalBench()
    {
        Platform::configureBasic(plat.dsa(0));
        dml::ExecutorConfig ec;
        ec.path = dml::Path::Hardware;
        exec = std::make_unique<dml::Executor>(
            sim, plat.mem(), plat.kernels(),
            std::vector<DsaDevice *>{&plat.dsa(0)}, ec);
    }

    /** Mean sync latency of one path over a few flushed iters. */
    Tick
    syncLatency(bool hw, const WorkDescriptor &d, int iters = 12)
    {
        Tick total = 0;
        struct Drv
        {
            static SimTask
            go(CalBench &cb, WorkDescriptor wd, bool hw_path,
               int n, Tick &sum)
            {
                for (int i = 0; i < n; ++i) {
                    cb.plat.mem().cache().invalidateAll();
                    dml::OpResult r;
                    if (hw_path)
                        co_await cb.exec->executeHardware(
                            cb.plat.core(0), wd, r);
                    else
                        co_await cb.exec->executeSoftware(
                            cb.plat.core(1), wd, r);
                    sum += r.latency;
                }
            }
        };
        Drv::go(*this, d, hw, iters, total);
        sim.run();
        return total / static_cast<Tick>(iters);
    }

    /** Async streaming throughput at depth 16, ring of 8 buffers. */
    double
    asyncGbps(std::uint64_t ts, int jobs = 96)
    {
        Addr src = as->alloc(ts * 8);
        Addr dst = as->alloc(ts * 8);
        Tick elapsed = 0;
        struct Drv
        {
            static SimTask
            go(CalBench &cb, Addr s, Addr d, std::uint64_t len,
               int count, Tick &el)
            {
                Tick t0 = cb.sim.now();
                Semaphore window(cb.sim, 16);
                Latch all(cb.sim,
                          static_cast<std::uint64_t>(count));
                struct W
                {
                    static SimTask
                    drain(std::unique_ptr<dml::Job> j,
                          Semaphore &win, Latch &a)
                    {
                        if (!j->cr.isDone())
                            co_await j->cr.done.wait();
                        win.release();
                        a.arrive();
                    }
                };
                for (int i = 0; i < count; ++i) {
                    co_await window.acquire();
                    auto job = cb.exec->prepare(
                        dml::Executor::memMove(
                            *cb.as,
                            d + static_cast<Addr>(i % 8) * len,
                            s + static_cast<Addr>(i % 8) * len,
                            len));
                    co_await cb.exec->submit(cb.plat.core(0), *job);
                    W::drain(std::move(job), window, all);
                }
                co_await all.wait();
                el = cb.sim.now() - t0;
            }
        };
        Drv::go(*this, src, dst, ts, jobs, elapsed);
        sim.run();
        return achievedGBps(static_cast<std::uint64_t>(jobs) * ts,
                            elapsed);
    }

    std::unique_ptr<dml::Executor> exec;
};

TEST(Calibration, SyncBreakEvenSitsNearFourKb)
{
    CalBench b;
    Addr src = b.as->alloc(64 << 10);
    Addr dst = b.as->alloc(64 << 10);

    // Below the break-even band the core must win...
    Tick hw1k = b.syncLatency(
        true, dml::Executor::memMove(*b.as, dst, src, 1 << 10));
    Tick sw1k = b.syncLatency(
        false, dml::Executor::memMove(*b.as, dst, src, 1 << 10));
    EXPECT_LT(sw1k, hw1k);

    // ...and above it DSA must win (paper: 4-10 KB band).
    Tick hw16k = b.syncLatency(
        true, dml::Executor::memMove(*b.as, dst, src, 16 << 10));
    Tick sw16k = b.syncLatency(
        false, dml::Executor::memMove(*b.as, dst, src, 16 << 10));
    EXPECT_GT(sw16k, hw16k);
}

TEST(Calibration, AsyncBreakEvenSitsNear256B)
{
    CalBench b;
    // CPU cold-copy throughput for the same sizes.
    Addr src = b.as->alloc(8 << 10);
    Addr dst = b.as->alloc(8 << 10);
    auto cpu_gbps = [&](std::uint64_t ts) {
        Tick lat = b.syncLatency(
            false, dml::Executor::memMove(*b.as, dst, src, ts));
        return static_cast<double>(ts) / toNs(lat);
    };
    // 64 B: the core wins; 1 KB: DSA wins (crossover ~256 B).
    EXPECT_LT(b.asyncGbps(64), cpu_gbps(64));
    EXPECT_GT(b.asyncGbps(1 << 10), cpu_gbps(1 << 10));
}

TEST(Calibration, StreamingSaturatesAtTheFabricLimit)
{
    CalBench b;
    double gbps = b.asyncGbps(256 << 10, 48);
    double fabric = b.plat.dsa(0).params().fabricGBps;
    EXPECT_GT(gbps, 0.95 * fabric);
    EXPECT_LE(gbps, 1.005 * fabric);
}

TEST(Calibration, UmwaitMajorityFromFourKb)
{
    CalBench b;
    Core &core = b.plat.core(0);
    Addr src = b.as->alloc(4 << 10);
    Addr dst = b.as->alloc(4 << 10);
    core.resetAccounting();
    struct Drv
    {
        static SimTask
        go(CalBench &cb, Addr s, Addr d)
        {
            for (int i = 0; i < 20; ++i) {
                dml::OpResult r;
                co_await cb.exec->executeHardware(
                    cb.plat.core(0),
                    dml::Executor::memMove(*cb.as, d, s, 4 << 10),
                    r);
            }
        }
    };
    Tick t0 = b.sim.now();
    Drv::go(b, src, dst);
    b.sim.run();
    double frac = static_cast<double>(core.umwaitTicks()) /
                  static_cast<double>(b.sim.now() - t0);
    EXPECT_GT(frac, 0.5); // "majority of cycles" (Fig. 11)
}

TEST(Calibration, CxlReadsBeatCxlWrites)
{
    // (C src, D dst) must out-run (D src, C dst): CXL write
    // bandwidth/latency is the weaker direction (Fig. 6b).
    double from_cxl = 0, to_cxl = 0;
    {
        CalBench b;
        Addr src = b.as->alloc(8 << 20, MemKind::Cxl);
        Addr dst = b.as->alloc(8 << 20, MemKind::DramLocal);
        Tick lat = b.syncLatency(
            true, dml::Executor::memMove(*b.as, dst, src, 1 << 20),
            6);
        from_cxl = static_cast<double>(1 << 20) / toNs(lat);
    }
    {
        CalBench b;
        Addr src = b.as->alloc(8 << 20, MemKind::DramLocal);
        Addr dst = b.as->alloc(8 << 20, MemKind::Cxl);
        Tick lat = b.syncLatency(
            true, dml::Executor::memMove(*b.as, dst, src, 1 << 20),
            6);
        to_cxl = static_cast<double>(1 << 20) / toNs(lat);
    }
    EXPECT_GT(from_cxl, 1.3 * to_cxl);
}

TEST(Calibration, RemoteSyncLatencyAddsRoughlyOneUpiHop)
{
    CalBench b;
    Addr local = b.as->alloc(64 << 10, MemKind::DramLocal);
    Addr remote = b.as->alloc(64 << 10, MemKind::DramRemote);
    Addr dst = b.as->alloc(64 << 10, MemKind::DramLocal);
    Tick l = b.syncLatency(
        true, dml::Executor::memMove(*b.as, dst, local, 16 << 10));
    Tick r = b.syncLatency(
        true, dml::Executor::memMove(*b.as, dst, remote, 16 << 10));
    Tick upi = b.plat.mem().cfg().upiLatency;
    EXPECT_GT(r, l);
    EXPECT_LT(r, l + 3 * upi);
}

} // namespace
} // namespace dsasim
