/**
 * @file
 * Tests for the CBDMA baseline: functional copies/fills, the
 * pinned-physical-memory contract, ring backpressure, and the
 * throughput relationship to DSA that underpins the paper's 2.1x
 * generational claim.
 */

#include <gtest/gtest.h>

#include "cbdma/cbdma.hh"
#include "tests/util.hh"

namespace dsasim
{
namespace
{

using test::Bench;

PlatformConfig
icxSmall()
{
    PlatformConfig cfg = PlatformConfig::icx();
    cfg.numCores = 4;
    cfg.mem.llc.sizeBytes = 8 << 20;
    cfg.mem.llc.ways = 8;
    for (auto &n : cfg.mem.nodes)
        n.capacityBytes = 2ull << 30;
    return cfg;
}

SimTask
copyOnce(Bench &b, CbdmaDevice &dev, Addr src, Addr dst,
         std::uint64_t n, bool &fin)
{
    auto ssegs = CbdmaDevice::pinRange(*b.as, src, n);
    auto dsegs = CbdmaDevice::pinRange(*b.as, dst, n);
    CompletionRecord cr(b.sim);
    CbdmaDescriptor d;
    d.srcPa = ssegs.front().first;
    d.dstPa = dsegs.front().first;
    d.size = n;
    d.completion = &cr;
    EXPECT_TRUE(dev.post(0, d));
    co_await cr.done.wait();
    fin = true;
}

TEST(Cbdma, CopyMovesBytes)
{
    Bench b(icxSmall());
    CbdmaDevice &dev = b.plat.cbdma(0);
    const std::uint64_t n = 64 << 10;
    Addr src = b.as->alloc(n);
    Addr dst = b.as->alloc(n);
    b.randomize(src, n);
    bool fin = false;
    copyOnce(b, dev, src, dst, n, fin);
    b.sim.run();
    ASSERT_TRUE(fin);
    EXPECT_TRUE(b.as->equal(src, dst, n));
    EXPECT_EQ(dev.descriptorsProcessed, 1u);
    EXPECT_EQ(dev.bytesCopied, n);
}

TEST(Cbdma, FillWritesPattern)
{
    Bench b(icxSmall());
    CbdmaDevice &dev = b.plat.cbdma(0);
    Addr dst = b.as->alloc(4096);
    auto segs = CbdmaDevice::pinRange(*b.as, dst, 4096);
    CompletionRecord cr(b.sim);
    CbdmaDescriptor d;
    d.op = CbdmaDescriptor::Op::Fill;
    d.dstPa = segs.front().first;
    d.size = 4096;
    d.pattern = 0x1122334455667788ull;
    d.completion = &cr;
    ASSERT_TRUE(dev.post(3, d));
    b.sim.run();
    EXPECT_TRUE(cr.isDone());
    EXPECT_EQ(b.as->byteAt(dst), 0x88);
    EXPECT_EQ(b.as->byteAt(dst + 7), 0x11);
}

TEST(Cbdma, PinRangeCoalescesContiguousPages)
{
    Bench b(icxSmall());
    Addr va = b.as->alloc(64 << 10); // 16 contiguous 4K frames
    auto segs = CbdmaDevice::pinRange(*b.as, va, 64 << 10);
    EXPECT_EQ(segs.size(), 1u);
    EXPECT_EQ(segs.front().second, 64u << 10);
}

TEST(CbdmaDeathTest, PinRejectsPagedOutMemory)
{
    Bench b(icxSmall());
    Addr va = b.as->alloc(16 << 10);
    b.as->evictPage(va + 4096);
    EXPECT_DEATH(CbdmaDevice::pinRange(*b.as, va, 16 << 10),
                 "pinned");
}

TEST(Cbdma, RingBackpressure)
{
    Bench b(icxSmall());
    CbdmaDevice &dev = b.plat.cbdma(0);
    const unsigned ring = dev.params().ringEntries;
    Addr src = b.as->alloc(1 << 20);
    Addr dst = b.as->alloc(1 << 20);
    CbdmaDescriptor d;
    d.srcPa = b.as->translate(src);
    d.dstPa = b.as->translate(dst);
    d.size = 1 << 20;
    // Fill the ring without running the simulation.
    unsigned accepted = 0;
    for (unsigned i = 0; i < ring + 8; ++i) {
        if (dev.post(0, d))
            ++accepted;
    }
    EXPECT_EQ(accepted, ring);
    b.sim.run(); // drains without deadlock
    EXPECT_EQ(dev.descriptorsProcessed, ring);
}

TEST(Cbdma, SlowerThanDsaOnSameWork)
{
    // One CBDMA channel vs one DSA PE, same 1MB copy, both async
    // pipelines of depth 8.
    const std::uint64_t n = 1 << 20;

    // CBDMA side.
    Tick cbdma_elapsed = 0;
    {
        Bench b(icxSmall());
        CbdmaDevice &dev = b.plat.cbdma(0);
        Addr src = b.as->alloc(8 * n);
        Addr dst = b.as->alloc(8 * n);
        struct Drv
        {
            static SimTask
            go(Bench &bb, CbdmaDevice &cb, Addr s, Addr d,
               std::uint64_t len, Tick &el)
            {
                Tick t0 = bb.sim.now();
                std::vector<std::unique_ptr<CompletionRecord>> crs;
                for (int i = 0; i < 8; ++i) {
                    crs.push_back(
                        std::make_unique<CompletionRecord>(bb.sim));
                    CbdmaDescriptor cd;
                    cd.srcPa = bb.as->translate(
                        s + static_cast<Addr>(i) * len);
                    cd.dstPa = bb.as->translate(
                        d + static_cast<Addr>(i) * len);
                    cd.size = len;
                    cd.completion = crs.back().get();
                    cb.post(0, cd);
                }
                for (auto &cr : crs)
                    if (!cr->isDone())
                        co_await cr->done.wait();
                el = bb.sim.now() - t0;
            }
        };
        Drv::go(b, dev, src, dst, n, cbdma_elapsed);
        b.sim.run();
    }

    // DSA side.
    Tick dsa_elapsed = 0;
    {
        Bench b;
        Platform::configureBasic(b.plat.dsa(0));
        dml::ExecutorConfig ec;
        ec.path = dml::Path::Hardware;
        dml::Executor exec(b.sim, b.plat.mem(), b.plat.kernels(),
                           {&b.plat.dsa(0)}, ec);
        Addr src = b.as->alloc(8 * n);
        Addr dst = b.as->alloc(8 * n);
        struct Drv
        {
            static SimTask
            go(Bench &bb, dml::Executor &ex, Addr s, Addr d,
               std::uint64_t len, Tick &el)
            {
                Tick t0 = bb.sim.now();
                std::vector<std::unique_ptr<dml::Job>> jobs;
                for (int i = 0; i < 8; ++i) {
                    auto job = ex.prepare(dml::Executor::memMove(
                        *bb.as, d + static_cast<Addr>(i) * len,
                        s + static_cast<Addr>(i) * len, len));
                    co_await ex.submit(bb.plat.core(0), *job);
                    jobs.push_back(std::move(job));
                }
                dml::OpResult r;
                for (auto &j : jobs)
                    co_await ex.wait(bb.plat.core(0), *j, r);
                el = bb.sim.now() - t0;
            }
        };
        Drv::go(b, exec, src, dst, n, dsa_elapsed);
        b.sim.run();
    }

    double ratio = static_cast<double>(cbdma_elapsed) /
                   static_cast<double>(dsa_elapsed);
    EXPECT_GT(ratio, 1.8); // ~2.1x per the paper
    EXPECT_LT(ratio, 2.5);
}

} // namespace
} // namespace dsasim
