/**
 * @file
 * Tests for the CPU core model and software kernels: functional
 * correctness of every operation and first-order timing properties
 * (cold vs warm, local vs remote vs CXL, size monotonicity).
 */

#include <gtest/gtest.h>

#include "ops/crc32.hh"
#include "ops/delta.hh"
#include "tests/util.hh"

namespace dsasim
{
namespace
{

using test::Bench;

TEST(CpuKernels, MemcpyMovesBytes)
{
    Bench b;
    Addr src = b.as->alloc(64 << 10);
    Addr dst = b.as->alloc(64 << 10);
    b.randomize(src, 64 << 10);
    auto r = b.plat.kernels().memcpyOp(b.plat.core(0), *b.as, dst, src,
                                       64 << 10);
    EXPECT_GT(r.duration, 0u);
    EXPECT_TRUE(b.as->equal(src, dst, 64 << 10));
}

TEST(CpuKernels, MemcpyPollutesLlc)
{
    Bench b;
    const std::uint64_t n = 1 << 20;
    Addr src = b.as->alloc(n);
    Addr dst = b.as->alloc(n);
    b.randomize(src, n);
    EXPECT_EQ(b.plat.mem().cache().occupancyBytes(0), 0u);
    b.plat.kernels().memcpyOp(b.plat.core(0), *b.as, dst, src, n);
    // Copying through the core allocates both streams in the LLC.
    EXPECT_GT(b.plat.mem().cache().occupancyBytes(0), n);
}

TEST(CpuKernels, WarmCopyIsFasterThanCold)
{
    Bench b;
    const std::uint64_t n = 256 << 10;
    Addr src = b.as->alloc(n);
    Addr dst = b.as->alloc(n);
    b.randomize(src, n);
    auto cold =
        b.plat.kernels().memcpyOp(b.plat.core(0), *b.as, dst, src, n);
    auto warm =
        b.plat.kernels().memcpyOp(b.plat.core(0), *b.as, dst, src, n);
    EXPECT_LT(warm.duration, cold.duration);
}

TEST(CpuKernels, RemoteAndCxlCopiesAreSlower)
{
    Bench b;
    const std::uint64_t n = 1 << 20;
    Addr src_l = b.as->alloc(n, MemKind::DramLocal);
    Addr src_r = b.as->alloc(n, MemKind::DramRemote);
    Addr src_c = b.as->alloc(n, MemKind::Cxl);
    Addr dst = b.as->alloc(n, MemKind::DramLocal);
    auto &k = b.plat.kernels();
    auto &core = b.plat.core(0);
    auto local = k.memcpyOp(core, *b.as, dst, src_l, n);
    b.plat.mem().cache().invalidateAll();
    auto remote = k.memcpyOp(core, *b.as, dst, src_r, n);
    b.plat.mem().cache().invalidateAll();
    auto cxl = k.memcpyOp(core, *b.as, dst, src_c, n);
    EXPECT_LT(local.duration, remote.duration);
    EXPECT_LT(remote.duration, cxl.duration);
}

TEST(CpuKernels, DurationScalesWithSize)
{
    Bench b;
    auto &k = b.plat.kernels();
    auto &core = b.plat.core(0);
    Tick prev = 0;
    for (std::uint64_t n = 4096; n <= (1 << 20); n <<= 2) {
        Addr src = b.as->alloc(n);
        Addr dst = b.as->alloc(n);
        auto r = k.memcpyOp(core, *b.as, dst, src, n);
        EXPECT_GT(r.duration, prev);
        prev = r.duration;
    }
}

TEST(CpuKernels, MemsetFillsPattern)
{
    Bench b;
    Addr dst = b.as->alloc(4096);
    b.plat.kernels().memsetOp(b.plat.core(0), *b.as, dst,
                              0x1122334455667788ull, 4096, false);
    auto data = b.bytes(dst, 16);
    EXPECT_EQ(data[0], 0x88);
    EXPECT_EQ(data[7], 0x11);
    EXPECT_EQ(data[8], 0x88);
}

TEST(CpuKernels, NtFillAvoidsCachePollution)
{
    Bench b;
    const std::uint64_t n = 1 << 20;
    Addr d1 = b.as->alloc(n);
    Addr d2 = b.as->alloc(n);
    auto &k = b.plat.kernels();
    k.memsetOp(b.plat.core(0), *b.as, d1, 0, n, /*nontemporal=*/false);
    std::uint64_t after_reg =
        b.plat.mem().cache().occupancyBytes(0);
    b.plat.mem().cache().invalidateAll();
    k.memsetOp(b.plat.core(0), *b.as, d2, 0, n, /*nontemporal=*/true);
    std::uint64_t after_nt = b.plat.mem().cache().occupancyBytes(0);
    EXPECT_GT(after_reg, n / 2);
    EXPECT_EQ(after_nt, 0u);
}

TEST(CpuKernels, MemcmpFindsFirstDifference)
{
    Bench b;
    Addr a = b.as->alloc(8192);
    Addr c = b.as->alloc(8192);
    b.randomize(a, 8192, 1);
    std::vector<std::uint8_t> buf(8192);
    b.as->read(a, buf.data(), buf.size());
    b.as->write(c, buf.data(), buf.size());
    auto eq = b.plat.kernels().memcmpOp(b.plat.core(0), *b.as, a, c,
                                        8192);
    EXPECT_TRUE(eq.ok);
    buf[5000] ^= 1;
    b.as->write(c, buf.data(), buf.size());
    auto ne = b.plat.kernels().memcmpOp(b.plat.core(0), *b.as, a, c,
                                        8192);
    EXPECT_FALSE(ne.ok);
    EXPECT_EQ(ne.diffOffset, 5000u);
}


TEST(CpuKernels, MemcmpEarlyExitIsCheaper)
{
    Bench b;
    const std::uint64_t n = 1 << 20;
    Addr x = b.as->alloc(n);
    Addr y = b.as->alloc(n);
    b.randomize(x, n, 31);
    auto buf = b.bytes(x, n);
    b.as->write(y, buf.data(), n);
    auto &k = b.plat.kernels();
    auto &core = b.plat.core(0);

    b.plat.mem().cache().invalidateAll();
    auto full = k.memcmpOp(core, *b.as, x, y, n);
    ASSERT_TRUE(full.ok);

    buf[100] ^= 1; // difference near the start
    b.as->write(y, buf.data(), n);
    b.plat.mem().cache().invalidateAll();
    auto early = k.memcmpOp(core, *b.as, x, y, n);
    ASSERT_FALSE(early.ok);
    EXPECT_EQ(early.diffOffset, 100u);
    EXPECT_LT(early.duration, full.duration / 10);
}

TEST(CpuKernels, ComparePattern)
{
    Bench b;
    Addr a = b.as->alloc(4096);
    b.plat.kernels().memsetOp(b.plat.core(0), *b.as, a,
                              0xabcdabcdabcdabcdull, 4096, false);
    auto ok = b.plat.kernels().comparePatternOp(
        b.plat.core(0), *b.as, a, 0xabcdabcdabcdabcdull, 4096);
    EXPECT_TRUE(ok.ok);
    auto bad = b.plat.kernels().comparePatternOp(
        b.plat.core(0), *b.as, a, 0xabcdabcdabcdabceull, 4096);
    EXPECT_FALSE(bad.ok);
    EXPECT_EQ(bad.diffOffset, 0u);
}

TEST(CpuKernels, Crc32MatchesReference)
{
    Bench b;
    const std::uint64_t n = 10000;
    Addr a = b.as->alloc(n);
    b.randomize(a, n, 7);
    auto buf = b.bytes(a, n);
    auto r = b.plat.kernels().crc32Op(b.plat.core(0), *b.as, a, n,
                                      crc32cInit);
    EXPECT_EQ(r.crc, crc32cFull(buf.data(), buf.size()));
}

TEST(CpuKernels, CopyCrcMovesAndChecksums)
{
    Bench b;
    const std::uint64_t n = 32 << 10;
    Addr src = b.as->alloc(n);
    Addr dst = b.as->alloc(n);
    b.randomize(src, n, 9);
    auto r = b.plat.kernels().copyCrcOp(b.plat.core(0), *b.as, dst,
                                        src, n, crc32cInit);
    EXPECT_TRUE(b.as->equal(src, dst, n));
    auto buf = b.bytes(src, n);
    EXPECT_EQ(r.crc, crc32cFull(buf.data(), buf.size()));
}

TEST(CpuKernels, DualcastWritesBoth)
{
    Bench b;
    const std::uint64_t n = 16 << 10;
    Addr src = b.as->alloc(n);
    Addr d1 = b.as->alloc(n);
    Addr d2 = b.as->alloc(n);
    b.randomize(src, n, 11);
    b.plat.kernels().dualcastOp(b.plat.core(0), *b.as, d1, d2, src, n);
    EXPECT_TRUE(b.as->equal(src, d1, n));
    EXPECT_TRUE(b.as->equal(src, d2, n));
}

TEST(CpuKernels, DeltaCreateApplyRoundTrip)
{
    Bench b;
    const std::uint64_t n = 64 << 10;
    Addr orig = b.as->alloc(n);
    Addr mod = b.as->alloc(n);
    Addr rec = b.as->alloc(n * 2);
    b.randomize(orig, n, 13);
    auto buf = b.bytes(orig, n);
    buf[100] ^= 0xff;
    buf[50000] ^= 0x0f;
    b.as->write(mod, buf.data(), buf.size());

    auto cr = b.plat.kernels().deltaCreateOp(b.plat.core(0), *b.as,
                                             orig, mod, n, rec, n * 2);
    EXPECT_FALSE(cr.ok); // differences exist
    EXPECT_TRUE(cr.recordFits);
    EXPECT_EQ(cr.recordBytes, 2 * deltaEntryBytes);

    // Apply onto a copy of the original.
    Addr target = b.as->alloc(n);
    auto obuf = b.bytes(orig, n);
    b.as->write(target, obuf.data(), obuf.size());
    auto ar = b.plat.kernels().deltaApplyOp(b.plat.core(0), *b.as,
                                            target, rec,
                                            cr.recordBytes, n);
    EXPECT_TRUE(ar.ok);
    EXPECT_TRUE(b.as->equal(target, mod, n));
}

TEST(CpuKernels, DifInsertCheckStrip)
{
    Bench b;
    const std::uint64_t block = 512, nblocks = 16;
    Addr src = b.as->alloc(block * nblocks);
    Addr prot = b.as->alloc((block + 8) * nblocks);
    Addr out = b.as->alloc(block * nblocks);
    b.randomize(src, block * nblocks, 17);
    auto &k = b.plat.kernels();
    auto &core = b.plat.core(0);

    k.difInsertOp(core, *b.as, src, prot, block, nblocks, 7, 1000);
    auto chk = k.difCheckOp(core, *b.as, prot, block, nblocks, 7,
                            1000);
    EXPECT_TRUE(chk.ok);
    auto bad = k.difCheckOp(core, *b.as, prot, block, nblocks, 8,
                            1000);
    EXPECT_FALSE(bad.ok);
    k.difStripOp(core, *b.as, prot, out, block, nblocks);
    EXPECT_TRUE(b.as->equal(src, out, block * nblocks));
}

TEST(CpuKernels, CacheFlushEvicts)
{
    Bench b;
    const std::uint64_t n = 64 << 10;
    Addr a = b.as->alloc(n);
    Addr d = b.as->alloc(n);
    b.plat.kernels().memcpyOp(b.plat.core(0), *b.as, d, a, n);
    Addr pa = b.as->translate(d);
    EXPECT_TRUE(b.plat.mem().cache().probe(pa));
    b.plat.kernels().cacheFlushOp(b.plat.core(0), *b.as, d, n);
    EXPECT_FALSE(b.plat.mem().cache().probe(pa));
}

TEST(CpuKernels, CrcSlowerThanPlainRead)
{
    Bench b;
    const std::uint64_t n = 1 << 20;
    Addr a = b.as->alloc(n);
    auto &k = b.plat.kernels();
    auto &core = b.plat.core(0);
    auto cmp = k.comparePatternOp(core, *b.as, a, 0, n);
    b.plat.mem().cache().invalidateAll();
    auto crc = k.crc32Op(core, *b.as, a, n, crc32cInit);
    EXPECT_GT(crc.duration, cmp.duration);
}

TEST(Core, CycleAccounting)
{
    Bench b;
    auto &core = b.plat.core(0);
    core.chargeBusy(fromNs(100));
    core.chargeUmwait(fromNs(300));
    core.chargeSpin(fromNs(50));
    EXPECT_EQ(core.busyTicks(), fromNs(100));
    EXPECT_EQ(core.umwaitTicks(), fromNs(300));
    EXPECT_EQ(core.spinTicks(), fromNs(50));
    EXPECT_NEAR(core.cycleAccount().fraction("umwait"), 0.666, 0.01);
    core.resetAccounting();
    EXPECT_EQ(core.busyTicks(), 0u);
}

TEST(Core, TlbWalksChargedForLargeFootprints)
{
    Bench b;
    auto &core = b.plat.core(0);
    // Footprint far beyond the TLB reach (1536 x 4K = 6 MB).
    const std::uint64_t n = 16 << 20;
    Addr src = b.as->alloc(n);
    Addr dst = b.as->alloc(n);
    std::uint64_t misses_before = core.tlb().misses();
    b.plat.kernels().memcpyOp(core, *b.as, dst, src, n);
    EXPECT_GT(core.tlb().misses(), misses_before + 1000);
}

} // namespace
} // namespace dsasim
